package loadctl

import (
	"sync"
	"time"
)

// TokenBucket is a lazily-refilled token bucket: tokens accrue at the
// configured rate up to the burst capacity, and each admitted request
// spends one. Refill happens on access from the caller-supplied time,
// so the bucket never reads a clock itself and stays deterministic
// under a simulated Clock. Safe for concurrent use.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // capacity
	tokens float64
	last   time.Time
}

// NewTokenBucket returns a full bucket. rate is tokens per second,
// burst the capacity; now seeds the refill reference.
func NewTokenBucket(rate, burst float64, now time.Time) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// refillLocked accrues tokens for the time elapsed since the last
// access. A now before last (concurrent callers racing on a coarse
// clock) accrues nothing.
func (b *TokenBucket) refillLocked(now time.Time) {
	elapsed := now.Sub(b.last)
	if elapsed > 0 {
		b.tokens += b.rate * elapsed.Seconds()
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
}

// Take spends one token if available.
func (b *TokenBucket) Take(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Level returns the current token level.
func (b *TokenBucket) Level(now time.Time) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	return b.tokens
}
