package loadctl

import (
	"testing"

	"whisper/internal/leakcheck"
)

// TestMain fails the package when admission goroutines (queued waiters
// awaiting a grant) outlive the tests that started them.
func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
