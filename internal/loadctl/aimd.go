package loadctl

import "time"

// aimd is the adaptive concurrency limit, Vegas/AIMD style: the
// congestion signal is the gradient of observed latency over the
// minimum RTT (plus outright infrastructure failures); on congestion
// the limit decreases multiplicatively, and while the limiter is the
// binding constraint it increases additively by ~1 per limit-many
// clean samples (≈ +1 per RTT, like TCP congestion avoidance).
//
// aimd carries no lock: the Controller operates it under its own
// mutex. minRTT is tracked over a sliding sample window so a slow
// drift in base latency (topology change, re-binding to a farther
// coordinator) re-anchors the reference instead of poisoning it
// forever.
type aimd struct {
	limit     float64
	min, max  float64
	tolerance float64 // congestion when rtt > tolerance×minRTT
	backoff   float64 // multiplicative decrease factor

	minRTT    time.Duration
	windowMin time.Duration
	samples   int

	// decreaseHold suppresses further decreases until the sample that
	// triggered the last one has drained: without it one congested
	// burst craters the limit to the floor in a single RTT.
	decreaseHold int
}

// minRTTWindow is how many clean samples one minRTT reference lives.
const minRTTWindow = 256

func newAIMD(initial, min, max, tolerance, backoff float64) aimd {
	return aimd{limit: initial, min: min, max: max, tolerance: tolerance, backoff: backoff}
}

// floor is the integer concurrency the limit currently allows.
func (a *aimd) floor() int {
	n := int(a.limit)
	if n < 1 {
		n = 1
	}
	return n
}

// observe feeds one completed call into the limit. demand is the
// number of calls still in flight or queued, used to gate additive
// increase to times the limiter is actually the constraint.
func (a *aimd) observe(rtt time.Duration, failed bool, demand int) {
	if a.decreaseHold > 0 {
		a.decreaseHold--
	}
	if !failed && rtt > 0 {
		if a.windowMin == 0 || rtt < a.windowMin {
			a.windowMin = rtt
		}
		if a.minRTT == 0 || rtt < a.minRTT {
			a.minRTT = rtt
		}
		a.samples++
		if a.samples >= minRTTWindow {
			a.minRTT = a.windowMin
			a.windowMin = 0
			a.samples = 0
		}
	}

	congested := failed
	if !congested && a.minRTT > 0 && rtt > 0 {
		congested = float64(rtt) > a.tolerance*float64(a.minRTT)
	}
	switch {
	case congested:
		if a.decreaseHold == 0 {
			a.limit *= a.backoff
			if a.limit < a.min {
				a.limit = a.min
			}
			// Hold for roughly the calls already admitted under the old
			// limit: they were launched before the decrease and would
			// otherwise each re-trigger it.
			a.decreaseHold = a.floor()
		}
	case demand >= a.floor():
		a.limit += 1 / a.limit
		if a.limit > a.max {
			a.limit = a.max
		}
	}
}
