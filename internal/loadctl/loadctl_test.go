package loadctl

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced Clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

// newFakeClock starts at the wall clock so context.WithDeadline
// contexts built against fake-clock instants do not fire immediately;
// only Advance moves it afterwards.
func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Now()}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestTokenBucketRefill(t *testing.T) {
	clock := newFakeClock()
	b := NewTokenBucket(10, 2, clock.Now())
	if !b.Take(clock.Now()) || !b.Take(clock.Now()) {
		t.Fatal("burst of 2 should admit two immediate takes")
	}
	if b.Take(clock.Now()) {
		t.Fatal("empty bucket must reject")
	}
	clock.Advance(100 * time.Millisecond) // 10/s × 100ms = 1 token
	if !b.Take(clock.Now()) {
		t.Fatal("refilled token should admit")
	}
	if b.Take(clock.Now()) {
		t.Fatal("only one token accrued")
	}
	clock.Advance(time.Minute)
	if got := b.Level(clock.Now()); got != 2 {
		t.Fatalf("level capped at burst: got %v, want 2", got)
	}
}

func TestAIMDDecreaseOnCongestion(t *testing.T) {
	a := newAIMD(8, 1, 64, 2, 0.5)
	// Establish a minimum RTT.
	a.observe(time.Millisecond, false, 0)
	if a.minRTT != time.Millisecond {
		t.Fatalf("minRTT = %v, want 1ms", a.minRTT)
	}
	// 3× the minimum exceeds tolerance 2 → multiplicative decrease.
	a.observe(3*time.Millisecond, false, 0)
	if a.limit != 4 {
		t.Fatalf("limit after decrease = %v, want 4", a.limit)
	}
	// The hold suppresses immediate further decreases.
	a.observe(3*time.Millisecond, false, 0)
	if a.limit != 4 {
		t.Fatalf("limit during hold = %v, want 4", a.limit)
	}
	// A failure is congestion even with a healthy RTT (once unheld).
	for i := 0; i < 4; i++ {
		a.observe(time.Millisecond, false, 0)
	}
	a.observe(time.Millisecond, true, 0)
	if a.limit != 2 {
		t.Fatalf("limit after failure = %v, want 2", a.limit)
	}
}

func TestAIMDAdditiveIncreaseNeedsDemand(t *testing.T) {
	a := newAIMD(4, 1, 64, 2, 0.5)
	a.observe(time.Millisecond, false, 0) // no demand: no growth
	if a.limit != 4 {
		t.Fatalf("limit grew without demand: %v", a.limit)
	}
	for i := 0; i < 16; i++ {
		a.observe(time.Millisecond, false, 8)
	}
	if a.limit <= 4 || a.limit > 64 {
		t.Fatalf("limit should grow additively under demand: %v", a.limit)
	}
	// ~1/limit per sample ⇒ 16 samples from 4 stays well under +16.
	if a.limit > 8 {
		t.Fatalf("increase is additive per RTT, not per sample: %v", a.limit)
	}
}

func TestAdmitRateLimitsPerClient(t *testing.T) {
	clock := newFakeClock()
	c := NewController(Config{Clock: clock, Rate: 1, Burst: 1, InitialLimit: 16})
	ctx := context.Background()
	release, err := c.Admit(ctx, "alice", false)
	if err != nil {
		t.Fatalf("first take: %v", err)
	}
	release(time.Millisecond, false)
	if _, err := c.Admit(ctx, "alice", false); err == nil {
		t.Fatal("alice's bucket is empty, want rejection")
	} else {
		var rej *RejectionError
		if !errors.As(err, &rej) || rej.Reason != ReasonRate || !errors.Is(err, ErrRejected) {
			t.Fatalf("want typed rate rejection, got %v", err)
		}
	}
	// An independent client has its own bucket.
	if release, err := c.Admit(ctx, "bob", false); err != nil {
		t.Fatalf("bob should have his own bucket: %v", err)
	} else {
		release(time.Millisecond, false)
	}
}

func TestAdmitRejectsDeadOnArrival(t *testing.T) {
	clock := newFakeClock()
	c := NewController(Config{Clock: clock, InitialLimit: 4})
	ctx := context.Background()
	// Warm the service estimate to ~50ms.
	for i := 0; i < 20; i++ {
		release, err := c.Admit(ctx, "", false)
		if err != nil {
			t.Fatalf("warm admit: %v", err)
		}
		release(50*time.Millisecond, false)
	}
	if est := c.Estimate(); est != 50*time.Millisecond {
		t.Fatalf("estimate = %v, want 50ms", est)
	}
	// 10ms of remaining deadline cannot cover a 50ms estimate.
	dctx, cancel := context.WithDeadline(ctx, clock.Now().Add(10*time.Millisecond))
	defer cancel()
	_, err := c.Admit(dctx, "", false)
	var rej *RejectionError
	if !errors.As(err, &rej) || rej.Reason != ReasonDeadline {
		t.Fatalf("want deadline rejection, got %v", err)
	}
	// A generous deadline is admitted.
	gctx, cancel2 := context.WithDeadline(ctx, clock.Now().Add(time.Second))
	defer cancel2()
	release, err := c.Admit(gctx, "", false)
	if err != nil {
		t.Fatalf("generous deadline rejected: %v", err)
	}
	release(50*time.Millisecond, false)
}

func TestAdmitQueueFullRejectsImmediately(t *testing.T) {
	clock := newFakeClock()
	c := NewController(Config{Clock: clock, InitialLimit: 1, MinLimit: 1, MaxLimit: 1, MaxQueue: -1})
	ctx := context.Background()
	release, err := c.Admit(ctx, "", false)
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}
	_, err = c.Admit(ctx, "", false)
	var rej *RejectionError
	if !errors.As(err, &rej) || rej.Reason != ReasonQueueFull {
		t.Fatalf("want queue-full rejection with queueing disabled, got %v", err)
	}
	release(time.Millisecond, false)
	st := c.Snapshot()
	if st.Admitted != 1 || st.Sheds[ReasonQueueFull] != 1 {
		t.Fatalf("counters: %+v", st)
	}
}

func TestQueueGrantsEarliestDeadlineFirst(t *testing.T) {
	clock := newFakeClock()
	c := NewController(Config{Clock: clock, InitialLimit: 1, MinLimit: 1, MaxLimit: 1, MaxWait: time.Minute})
	ctx := context.Background()
	hold, err := c.Admit(ctx, "", false)
	if err != nil {
		t.Fatalf("holder: %v", err)
	}

	type outcome struct {
		name    string
		release ReleaseFunc
		err     error
	}
	results := make(chan outcome, 2)
	enqueue := func(name string, deadline time.Duration) {
		dctx, cancel := context.WithDeadline(ctx, clock.Now().Add(deadline))
		go func() {
			defer cancel()
			release, err := c.Admit(dctx, name, false)
			results <- outcome{name, release, err}
		}()
	}
	enqueue("late", 40*time.Second)
	// Wait until the first waiter is queued so EDF ordering, not
	// arrival order, decides the grant.
	waitFor(t, func() bool { return c.Snapshot().QueueDepth == 1 })
	enqueue("early", 10*time.Second)
	waitFor(t, func() bool { return c.Snapshot().QueueDepth == 2 })

	hold(time.Millisecond, false)
	first := <-results
	if first.err != nil {
		t.Fatalf("first grant errored: %v", first.err)
	}
	if first.name != "early" {
		t.Fatalf("EDF queue granted %q first, want \"early\"", first.name)
	}
	first.release(time.Millisecond, false)
	second := <-results
	if second.err != nil {
		t.Fatalf("second grant errored: %v", second.err)
	}
	second.release(time.Millisecond, false)
}

func TestProbeBypassesSaturatedPipeline(t *testing.T) {
	clock := newFakeClock()
	c := NewController(Config{Clock: clock, Rate: 1, Burst: 1, InitialLimit: 1, MinLimit: 1, MaxLimit: 1, MaxQueue: -1})
	ctx := context.Background()
	// Saturate: bucket empty, the only slot held.
	hold, err := c.Admit(ctx, "alice", false)
	if err != nil {
		t.Fatalf("saturating admit: %v", err)
	}
	if _, err := c.Admit(ctx, "alice", false); err == nil {
		t.Fatal("pipeline should be saturated")
	}
	release, err := c.Admit(ctx, "alice", true)
	if err != nil {
		t.Fatalf("probe must never be shed: %v", err)
	}
	release(time.Millisecond, false)
	hold(time.Millisecond, false)
	if st := c.Snapshot(); st.Probes != 1 {
		t.Fatalf("probes = %d, want 1", st.Probes)
	}
}

func TestReleaseIsIdempotent(t *testing.T) {
	clock := newFakeClock()
	c := NewController(Config{Clock: clock, InitialLimit: 2})
	release, err := c.Admit(context.Background(), "", false)
	if err != nil {
		t.Fatal(err)
	}
	release(time.Millisecond, false)
	release(time.Millisecond, false) // ignored
	if st := c.Snapshot(); st.Inflight != 0 {
		t.Fatalf("inflight = %d after double release, want 0", st.Inflight)
	}
}

func TestControllerConcurrentHammer(t *testing.T) {
	c := NewController(Config{Rate: 1e6, InitialLimit: 8, MaxQueue: 32, MaxWait: 50 * time.Millisecond})
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := string(rune('a' + g%4))
			for i := 0; i < 200; i++ {
				release, err := c.Admit(ctx, client, i%50 == 0)
				if err != nil {
					continue
				}
				release(time.Duration(1+i%3)*time.Millisecond, i%17 == 0)
			}
		}(g)
	}
	wg.Wait()
	st := c.Snapshot()
	if st.Inflight != 0 {
		t.Fatalf("inflight = %d after drain, want 0", st.Inflight)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("queue depth = %d after drain, want 0", st.QueueDepth)
	}
	if st.Admitted+st.Probes+st.ShedTotal() != 16*200 {
		t.Fatalf("every request must be classified once: %+v", st)
	}
}

// waitFor polls cond briefly (the queue handoff crosses goroutines).
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
