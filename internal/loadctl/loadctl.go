// Package loadctl implements the proxy's overload-protection pipeline:
// admission → queue → limiter → breaker. A request entering the proxy
// passes, in order, (1) a per-client token bucket (rate fairness),
// (2) a deadline-aware admission check that rejects the request before
// any pipe I/O when its remaining context deadline cannot cover the
// current p95 service estimate, and (3) an AIMD adaptive concurrency
// limiter (Vegas-style: gradient of observed latency against the
// minimum RTT) whose overflow waits in an earliest-deadline-first
// queue. Only admitted requests ever reach the circuit breaker and the
// wire, so work is never spent on calls that are already dead on
// arrival — the property that keeps goodput at the knee instead of
// collapsing past saturation.
//
// The package is deterministic by construction: every time read goes
// through an injected simnet.Clock and the package draws no global
// randomness, so simulated runs are reproducible from a seed.
package loadctl

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"whisper/internal/metrics"
	"whisper/internal/simnet"
)

// ErrRejected is the sentinel all admission rejections unwrap to. The
// proxy classifies it as non-retryable: a shed is a deliberate local
// decision, so retrying it in a tight loop (or falling through to the
// next matching group) would only feed the overload it protects from.
var ErrRejected = errors.New("loadctl: rejected")

// Reason says which stage of the pipeline shed a request.
type Reason string

const (
	// ReasonRate: the client's token bucket was empty.
	ReasonRate Reason = "rate"
	// ReasonDeadline: the remaining context deadline cannot cover the
	// current p95 service estimate — the request is dead on arrival.
	ReasonDeadline Reason = "deadline"
	// ReasonQueueFull: the concurrency limit is reached and the wait
	// queue is at capacity.
	ReasonQueueFull Reason = "queue-full"
	// ReasonQueueTimeout: the request waited for a slot until its
	// deadline budget ran out.
	ReasonQueueTimeout Reason = "queue-timeout"
)

// RejectionError is a typed shed decision; it unwraps to ErrRejected.
type RejectionError struct {
	// Reason is the pipeline stage that shed the request.
	Reason Reason
	// Client is the rate-limiting identity the request carried.
	Client string
}

// Error implements error.
func (e *RejectionError) Error() string {
	return fmt.Sprintf("loadctl: rejected (%s, client %q)", e.Reason, e.Client)
}

// Unwrap lets errors.Is(err, ErrRejected) classify any shed.
func (e *RejectionError) Unwrap() error { return ErrRejected }

// clientKey carries the rate-limiting identity through a context.
type clientKey struct{}

// ContextWithClient attaches the per-client rate-limiting identity
// (e.g. the SOAP caller or loadgen client name) to the context.
func ContextWithClient(ctx context.Context, client string) context.Context {
	return context.WithValue(ctx, clientKey{}, client)
}

// ClientFromContext returns the identity set by ContextWithClient, or
// "" (all anonymous callers share one bucket).
func ClientFromContext(ctx context.Context) string {
	if v, ok := ctx.Value(clientKey{}).(string); ok {
		return v
	}
	return ""
}

// Config assembles a Controller.
type Config struct {
	// Clock supplies time; nil selects the wall clock.
	Clock simnet.Clock
	// Rate is the per-client token refill rate in requests per second;
	// <=0 disables per-client rate limiting.
	Rate float64
	// Burst is the per-client bucket capacity in tokens; <=0 selects
	// max(Rate, 1).
	Burst float64
	// InitialLimit seeds the AIMD concurrency limit; <=0 selects 4.
	InitialLimit float64
	// MinLimit floors the limit under multiplicative decrease; <=0
	// selects 1.
	MinLimit float64
	// MaxLimit caps additive increase; <=0 selects 256.
	MaxLimit float64
	// Tolerance is the latency inflation (observed RTT over minimum
	// RTT) treated as congestion; <=0 selects 2.
	Tolerance float64
	// Backoff is the multiplicative-decrease factor applied on
	// congestion; outside (0,1) selects 0.75.
	Backoff float64
	// MaxQueue bounds requests waiting for a concurrency slot; 0
	// selects 64, negative disables queueing (immediate rejection when
	// the limit is reached).
	MaxQueue int
	// EstimatePercentile is the service-time percentile used by the
	// deadline admission check; <=0 selects 95.
	EstimatePercentile float64
	// MaxWait bounds queue waiting for requests without a context
	// deadline; <=0 selects 1s.
	MaxWait time.Duration
}

func (c *Config) applyDefaults() {
	if c.Clock == nil {
		c.Clock = simnet.WallClock{}
	}
	if c.Burst <= 0 {
		c.Burst = c.Rate
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.InitialLimit <= 0 {
		c.InitialLimit = 4
	}
	if c.MinLimit <= 0 {
		c.MinLimit = 1
	}
	if c.MaxLimit <= 0 {
		c.MaxLimit = 256
	}
	if c.MaxLimit < c.MinLimit {
		c.MaxLimit = c.MinLimit
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 2
	}
	if c.Backoff <= 0 || c.Backoff >= 1 {
		c.Backoff = 0.75
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.EstimatePercentile <= 0 {
		c.EstimatePercentile = 95
	}
	if c.MaxWait <= 0 {
		c.MaxWait = time.Second
	}
}

// waiter is one queued request waiting for a concurrency slot, ordered
// earliest-deadline-first so the scarcest budgets are served first.
type waiter struct {
	deadline time.Time // latest instant a grant is still useful
	ch       chan struct{}
	index    int
	decided  bool // a decision (grant or expiry) has been published
	granted  bool // the decision was a grant (inflight already counted)
}

// waitQueue is a container/heap min-heap on waiter deadlines.
type waitQueue []*waiter

func (q waitQueue) Len() int            { return len(q) }
func (q waitQueue) Less(i, j int) bool  { return q[i].deadline.Before(q[j].deadline) }
func (q waitQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i]; q[i].index = i; q[j].index = j }
func (q *waitQueue) Push(x interface{}) { w := x.(*waiter); w.index = len(*q); *q = append(*q, w) }
func (q *waitQueue) Pop() interface{} {
	old := *q
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return w
}

// Controller is the admission pipeline. All methods are safe for
// concurrent use.
type Controller struct {
	cfg Config

	// svc samples the service time of successful admitted calls; its
	// configured percentile is the deadline-admission estimate.
	svc *metrics.Histogram

	mu       sync.Mutex
	buckets  map[string]*TokenBucket
	limiter  aimd
	inflight int
	queue    waitQueue

	admitted int64
	probes   int64
	sheds    map[Reason]int64
}

// NewController builds a Controller from the config.
func NewController(cfg Config) *Controller {
	cfg.applyDefaults()
	return &Controller{
		cfg:     cfg,
		svc:     metrics.NewHistogram(),
		buckets: make(map[string]*TokenBucket),
		limiter: newAIMD(cfg.InitialLimit, cfg.MinLimit, cfg.MaxLimit, cfg.Tolerance, cfg.Backoff),
		sheds:   make(map[Reason]int64),
	}
}

// ReleaseFunc reports the outcome of an admitted call: its round-trip
// time and whether it failed for infrastructure reasons (which the
// limiter treats as a congestion signal). Each ReleaseFunc must be
// called exactly once; extra calls are ignored.
type ReleaseFunc func(rtt time.Duration, failed bool)

// Estimate returns the current service-time estimate (the configured
// percentile of successful admitted calls), or 0 before any sample.
func (c *Controller) Estimate() time.Duration {
	if c.svc.Count() == 0 {
		return 0
	}
	return c.svc.Percentile(c.cfg.EstimatePercentile)
}

// Admit runs the admission pipeline for one request. client is the
// rate-limiting identity (see ContextWithClient); probe marks a
// circuit-breaker half-open probe, which bypasses every stage — a
// probe is how the proxy learns a condemned group recovered, so it
// must never be shed. On admission the returned ReleaseFunc must be
// called when the call completes; on rejection the error unwraps to
// ErrRejected.
func (c *Controller) Admit(ctx context.Context, client string, probe bool) (ReleaseFunc, error) {
	if probe {
		c.mu.Lock()
		c.probes++
		c.inflight++
		c.mu.Unlock()
		return c.releaseFunc(), nil
	}
	now := c.cfg.Clock.Now()

	// Stage 1: per-client rate fairness.
	if c.cfg.Rate > 0 {
		c.mu.Lock()
		b, ok := c.buckets[client]
		if !ok {
			b = NewTokenBucket(c.cfg.Rate, c.cfg.Burst, now)
			c.buckets[client] = b
		}
		c.mu.Unlock()
		if !b.Take(now) {
			return nil, c.shed(ReasonRate, client)
		}
	}

	// Stage 2: deadline-aware admission. budget is how long the
	// request can afford to wait for a slot and still finish an
	// estimate-length call before its deadline.
	budget := c.cfg.MaxWait
	if deadline, ok := ctx.Deadline(); ok {
		remaining := deadline.Sub(now)
		est := c.Estimate()
		if remaining <= est {
			return nil, c.shed(ReasonDeadline, client)
		}
		if wait := remaining - est; wait < budget {
			budget = wait
		}
	}

	// Stage 3: adaptive concurrency. The fast path takes a free slot
	// only when nobody with an earlier deadline is already waiting.
	c.mu.Lock()
	if c.inflight < c.limiter.floor() && len(c.queue) == 0 {
		c.inflight++
		c.admitted++
		c.mu.Unlock()
		return c.releaseFunc(), nil
	}
	if c.cfg.MaxQueue < 0 || len(c.queue) >= c.cfg.MaxQueue {
		c.sheds[ReasonQueueFull]++
		c.mu.Unlock()
		return nil, &RejectionError{Reason: ReasonQueueFull, Client: client}
	}
	w := &waiter{deadline: now.Add(budget), ch: make(chan struct{})}
	heap.Push(&c.queue, w)
	c.mu.Unlock()

	timer := time.NewTimer(budget)
	defer timer.Stop()
	select {
	case <-w.ch:
		// Decision published: either a slot grant or an expiry swept
		// while granting.
		c.mu.Lock()
		granted := w.granted
		if granted {
			c.admitted++
		} else {
			c.sheds[ReasonQueueTimeout]++
		}
		c.mu.Unlock()
		if granted {
			return c.releaseFunc(), nil
		}
		return nil, &RejectionError{Reason: ReasonQueueTimeout, Client: client}
	case <-timer.C:
		if release, ok := c.abandon(w, ReasonQueueTimeout); ok {
			return release, nil
		}
		return nil, &RejectionError{Reason: ReasonQueueTimeout, Client: client}
	case <-ctx.Done():
		if release, ok := c.abandon(w, ReasonDeadline); ok {
			return release, nil
		}
		return nil, &RejectionError{Reason: ReasonDeadline, Client: client}
	}
}

// abandon removes a waiter after a timeout or context cancellation.
// When the grant raced ahead of the wakeup the slot is kept and the
// request proceeds as admitted (first return true).
func (c *Controller) abandon(w *waiter, reason Reason) (ReleaseFunc, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w.decided {
		if w.granted {
			c.admitted++
			return c.releaseFunc(), true
		}
		c.sheds[reason]++
		return nil, false
	}
	w.decided = true
	heap.Remove(&c.queue, w.index)
	c.sheds[reason]++
	return nil, false
}

// shed counts and builds a rejection.
func (c *Controller) shed(reason Reason, client string) error {
	c.mu.Lock()
	c.sheds[reason]++
	c.mu.Unlock()
	return &RejectionError{Reason: reason, Client: client}
}

// releaseFunc hands the caller its one-shot completion callback.
func (c *Controller) releaseFunc() ReleaseFunc {
	var once sync.Once
	return func(rtt time.Duration, failed bool) {
		once.Do(func() { c.release(rtt, failed) })
	}
}

// release returns a concurrency slot, feeds the outcome to the AIMD
// limiter and the service estimate, then grants freed slots to the
// earliest-deadline waiters.
func (c *Controller) release(rtt time.Duration, failed bool) {
	if !failed {
		c.svc.Observe(rtt)
	}
	c.mu.Lock()
	c.inflight--
	c.limiter.observe(rtt, failed, c.inflight+len(c.queue))
	c.grantLocked()
	c.mu.Unlock()
}

// grantLocked moves waiters into freed slots, earliest deadline first.
// Waiters whose budget already elapsed are swept as expired — granting
// them would admit a request that can no longer meet its deadline.
func (c *Controller) grantLocked() {
	now := c.cfg.Clock.Now()
	for c.inflight < c.limiter.floor() && len(c.queue) > 0 {
		w := heap.Pop(&c.queue).(*waiter)
		w.decided = true
		if now.After(w.deadline) {
			close(w.ch) // expired: granted stays false
			continue
		}
		w.granted = true
		c.inflight++
		close(w.ch)
	}
}

// Status is a point-in-time snapshot of the pipeline, served by the
// proxy's loadctl.status resolver (peerctl loadctl).
type Status struct {
	// Limit is the current AIMD concurrency limit.
	Limit float64
	// Inflight is the number of admitted calls in flight.
	Inflight int
	// QueueDepth / QueueCapacity describe the wait queue.
	QueueDepth    int
	QueueCapacity int
	// MinRTT is the limiter's current minimum-RTT reference.
	MinRTT time.Duration
	// Estimate is the service-time estimate used by deadline admission.
	Estimate time.Duration
	// Admitted and Probes count grants; Sheds counts rejections per
	// pipeline stage.
	Admitted int64
	Probes   int64
	Sheds    map[Reason]int64
	// Buckets is the current token level per client.
	Buckets map[string]float64
}

// ShedTotal sums rejections across all stages.
func (s Status) ShedTotal() int64 {
	var total int64
	for _, n := range s.Sheds {
		total += n
	}
	return total
}

// Snapshot returns the current Status.
func (c *Controller) Snapshot() Status {
	now := c.cfg.Clock.Now()
	est := c.Estimate()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		Limit:         c.limiter.limit,
		Inflight:      c.inflight,
		QueueDepth:    len(c.queue),
		QueueCapacity: c.cfg.MaxQueue,
		MinRTT:        c.limiter.minRTT,
		Estimate:      est,
		Admitted:      c.admitted,
		Probes:        c.probes,
		Sheds:         make(map[Reason]int64, len(c.sheds)),
		Buckets:       make(map[string]float64, len(c.buckets)),
	}
	for r, n := range c.sheds {
		st.Sheds[r] = n
	}
	for client, b := range c.buckets {
		st.Buckets[client] = b.Level(now)
	}
	return st
}

// String renders the status as sorted "key value" lines (the resolver
// wire format).
func (s Status) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "limit %.2f\n", s.Limit)
	fmt.Fprintf(&b, "inflight %d\n", s.Inflight)
	fmt.Fprintf(&b, "queue.depth %d\n", s.QueueDepth)
	fmt.Fprintf(&b, "queue.capacity %d\n", s.QueueCapacity)
	fmt.Fprintf(&b, "minrtt %s\n", s.MinRTT)
	fmt.Fprintf(&b, "estimate %s\n", s.Estimate)
	fmt.Fprintf(&b, "admitted %d\n", s.Admitted)
	fmt.Fprintf(&b, "probes %d\n", s.Probes)
	fmt.Fprintf(&b, "shed.total %d\n", s.ShedTotal())
	reasons := make([]string, 0, len(s.Sheds))
	for r := range s.Sheds {
		reasons = append(reasons, string(r))
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(&b, "shed.%s %d\n", r, s.Sheds[Reason(r)])
	}
	clients := make([]string, 0, len(s.Buckets))
	for client := range s.Buckets {
		clients = append(clients, client)
	}
	sort.Strings(clients)
	for _, client := range clients {
		name := client
		if name == "" {
			name = "(anonymous)"
		}
		fmt.Fprintf(&b, "bucket.%s %.2f\n", name, s.Buckets[client])
	}
	return b.String()
}
