package bpeer

import (
	"context"
	"fmt"
	"testing"
	"time"

	"whisper/internal/qos"
)

// addSlowDetectPeer adds a replica whose heartbeat failure detection is
// far too slow to matter inside the test window, so any fast
// coordinator hand-off must come from the graceful resignation path,
// not from detection.
func (d *deployment) addSlowDetectPeer(t *testing.T, i int) *BPeer {
	t.Helper()
	name := fmt.Sprintf("bp%d", i)
	port, err := d.net.NewPort(name)
	if err != nil {
		t.Fatalf("port %s: %v", name, err)
	}
	bp, err := New(port, Config{
		Name:              name,
		Rank:              int64(i + 1),
		GroupID:           d.gid,
		GroupName:         "StudentManagement",
		Signature:         studentSig(),
		QoS:               qos.Profile{LatencyMillis: 5, Reliability: 0.99, Availability: 0.99},
		RendezvousAddr:    "rdv",
		Handler:           echoHandler(name),
		IDGen:             d.gen,
		HeartbeatInterval: 5 * time.Second,
		HeartbeatTimeout:  60 * time.Second,
		ElectionTimeout:   40 * time.Millisecond,
		LeaseInterval:     200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("new bpeer %s: %v", name, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := bp.Start(ctx); err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	t.Cleanup(func() { _ = bp.Close() })
	d.peers = append(d.peers, bp)
	return bp
}

func newSlowDetectDeployment(t *testing.T, replicas int) *deployment {
	t.Helper()
	d := newDeployment(t, 0)
	for i := 0; i < replicas; i++ {
		d.addSlowDetectPeer(t, i)
	}
	return d
}

// TestGracefulCloseHandsOffImmediately: a coordinator that Closes
// resigns — it leaves the rendezvous group and challenges the
// survivors — so a new coordinator emerges within election time even
// though failure detection would take a minute to notice.
func TestGracefulCloseHandsOffImmediately(t *testing.T) {
	d := newSlowDetectDeployment(t, 3)
	waitCoordinator(t, d.peers, 3*time.Second)

	coord := d.peers[2] // rank 3 wins
	if !coord.IsCoordinator() {
		t.Fatalf("expected rank 3 to coordinate, got %s", d.peers[0].Coordinator())
	}
	if err := coord.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if coord.Crashed() {
		t.Error("graceful close must not report Crashed()")
	}

	want := d.peers[1].Addr() // rank 2 takes over
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if d.peers[0].Coordinator() == want && d.peers[1].Coordinator() == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("hand-off never happened: survivors report %s / %s, want %s",
		d.peers[0].Coordinator(), d.peers[1].Coordinator(), want)
}

// TestCrashGivesNoFarewell: a crashed coordinator sends nothing, so
// with slow failure detection the survivors keep believing in the dead
// coordinator — the crash is only discoverable through heartbeat
// timeouts (exercised with fast detection in
// TestCoordinatorFailoverElectsNext).
func TestCrashGivesNoFarewell(t *testing.T) {
	d := newSlowDetectDeployment(t, 3)
	waitCoordinator(t, d.peers, 3*time.Second)

	coord := d.peers[2]
	dead := coord.Addr()
	if err := coord.Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	if !coord.Crashed() {
		t.Error("Crash() must report Crashed()")
	}
	if coord.Running() {
		t.Error("crashed replica still Running()")
	}

	// No resignation traffic: well past election time, the survivors
	// still believe in the dead coordinator.
	time.Sleep(500 * time.Millisecond)
	for _, p := range d.peers[:2] {
		if got := p.Coordinator(); got != dead {
			t.Errorf("%s switched to %s, but a crash sends no farewell", p.Name(), got)
		}
	}
}

// TestRestartRejoinsGroup: a crashed replica restarts on a fresh
// transport, rejoins the rendezvous group under its stable peer ID,
// re-publishes its advertisement and serves again.
func TestRestartRejoinsGroup(t *testing.T) {
	d := newDeployment(t, 2)
	waitCoordinator(t, d.peers, 3*time.Second)

	bp := d.peers[1] // rank 2, the coordinator
	if err := bp.Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	// The survivor takes over.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && d.peers[0].Coordinator() != d.peers[0].Addr() {
		time.Sleep(10 * time.Millisecond)
	}

	port, err := d.net.NewPort(bp.Name())
	if err != nil {
		t.Fatalf("fresh port: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := bp.Restart(ctx, port); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if !bp.Running() || bp.Crashed() {
		t.Fatalf("restarted replica: Running=%v Crashed=%v", bp.Running(), bp.Crashed())
	}

	// The restarted replica has the highest rank and must reclaim
	// coordinatorship via the election it triggers on start.
	want := bp.Addr()
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if d.peers[0].Coordinator() == want && bp.Coordinator() == want {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if d.peers[0].Coordinator() != want {
		t.Fatalf("survivor still reports %s, want restarted %s", d.peers[0].Coordinator(), want)
	}

	// The group keeps exactly one membership entry per replica: the
	// stable peer ID means the rejoin overwrote the stale record.
	if got := d.rdvSvc.MemberCount(d.gid); got != 2 {
		t.Errorf("membership has %d entries after rejoin, want 2", got)
	}

	status, _, out := d.rawCall(t, bp.ServicePipe(), "Op", []byte("z"))
	if status != statusOK || string(out) != "bp1:Op:z" {
		t.Errorf("status=%s out=%q", status, out)
	}
}
