package bpeer

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"whisper/internal/p2p"
)

// countingHandler counts executions per payload and returns an echo.
func countingHandler(execs *atomic.Int64) func(name string) Handler {
	return func(name string) Handler {
		return HandlerFunc(func(_ context.Context, op string, payload []byte) ([]byte, error) {
			execs.Add(1)
			return []byte(name + ":" + op + ":" + string(payload)), nil
		})
	}
}

// keyedCall sends one keyed request and returns the decoded response
// without asserting success.
func (d *deployment) keyedCall(t *testing.T, pipe *p2p.PipeAdvertisement, op, key string, payload []byte) (status, errMsg string, out []byte) {
	t.Helper()
	port, err := d.net.NewPort(fmt.Sprintf("client-%s-%s-%d", op, key, time.Now().UnixNano()))
	if err != nil {
		t.Fatalf("client port: %v", err)
	}
	client := p2p.NewPeer("client", d.gen.New(p2p.PeerIDKind), port)
	client.Start()
	t.Cleanup(func() { _ = client.Close() })
	pipes := p2p.NewPipeService(client, d.gen)

	req, err := EncodeRequest(op, payload, key)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := pipes.Call(ctx, pipe, req)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	st, _, _, em, body, err := DecodeResponse(resp)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return st, em, body
}

// coordOf waits until the live peers agree on a running coordinator
// (excluding any addresses in not, e.g. a just-crashed one) and returns it.
func coordOf(t *testing.T, d *deployment, not ...string) *BPeer {
	t.Helper()
	live := make([]*BPeer, 0, len(d.peers))
	for _, p := range d.peers {
		if p.Running() {
			live = append(live, p)
		}
	}
	excluded := func(addr string) bool {
		for _, n := range not {
			if addr == n {
				return true
			}
		}
		return false
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		addr := live[0].Coordinator()
		agreed := addr != "" && !excluded(addr)
		for _, p := range live[1:] {
			if p.Coordinator() != addr {
				agreed = false
				break
			}
		}
		if agreed {
			for _, p := range live {
				if p.Addr() == addr {
					return p
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("live peers never agreed on a (new) coordinator")
	return nil
}

func TestJournalDedupesRetriedKey(t *testing.T) {
	var execs atomic.Int64
	d := newDeploymentWithHandler(t, 3, countingHandler(&execs))
	coord := coordOf(t, d)
	pipe := coord.ServicePipe()

	st, em, out := d.keyedCall(t, pipe, "Op", "key-1", []byte("<p/>"))
	if st != statusOK {
		t.Fatalf("first call: %s %s", st, em)
	}
	// The same key retried: served from the journal cache, the handler
	// runs exactly once.
	st2, em2, out2 := d.keyedCall(t, pipe, "Op", "key-1", []byte("<p/>"))
	if st2 != statusOK {
		t.Fatalf("retry: %s %s", st2, em2)
	}
	if string(out) != string(out2) {
		t.Fatalf("cached reply %q != original %q", out2, out)
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("handler executed %d times, want exactly 1", n)
	}
	// A different key executes independently.
	if st, em, _ := d.keyedCall(t, pipe, "Op", "key-2", []byte("<p/>")); st != statusOK {
		t.Fatalf("second key: %s %s", st, em)
	}
	if n := execs.Load(); n != 2 {
		t.Fatalf("handler executed %d times, want 2", n)
	}
}

func TestJournalKeyReuseWithDifferentPayloadRejected(t *testing.T) {
	var execs atomic.Int64
	d := newDeploymentWithHandler(t, 1, countingHandler(&execs))
	coord := coordOf(t, d)
	pipe := coord.ServicePipe()

	if st, em, _ := d.keyedCall(t, pipe, "Op", "key-1", []byte("<a/>")); st != statusOK {
		t.Fatalf("first call: %s %s", st, em)
	}
	st, em, _ := d.keyedCall(t, pipe, "Op", "key-1", []byte("<b/>"))
	if st != statusError {
		t.Fatalf("conflicting payload: status=%s, want error", st)
	}
	if em == ErrMsgOutcomeUnknown || em == ErrMsgNoCoordinator {
		t.Fatalf("conflict produced infrastructure error %q, want application error", em)
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("handler executed %d times, want 1", n)
	}
}

func TestJournalReplicatesReplyToSurvivors(t *testing.T) {
	var execs atomic.Int64
	d := newDeploymentWithHandler(t, 3, countingHandler(&execs))
	coord := coordOf(t, d)
	pipe := coord.ServicePipe()

	st, em, out := d.keyedCall(t, pipe, "Op", "key-1", []byte("<p/>"))
	if st != statusOK {
		t.Fatalf("first call: %s %s", st, em)
	}
	// Kill the coordinator that executed the operation. The COMMIT was
	// replicated before the ack, so the new coordinator must answer the
	// retry from its copy of the journal — zero re-executions.
	if err := coord.Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	next := coordOf(t, d, coord.Addr())
	st2, em2, out2 := d.keyedCall(t, next.ServicePipe(), "Op", "key-1", []byte("<p/>"))
	if st2 != statusOK {
		t.Fatalf("retry after failover: %s %s", st2, em2)
	}
	if string(out2) != string(out) {
		t.Fatalf("failover reply %q != original %q (cached reply must survive the coordinator)", out2, out)
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("handler executed %d times across failover, want exactly 1", n)
	}
}

func TestJournalSurvivesCrashRestart(t *testing.T) {
	var execs atomic.Int64
	d := newDeploymentWithHandler(t, 1, countingHandler(&execs))
	coord := coordOf(t, d)

	st, em, out := d.keyedCall(t, coord.ServicePipe(), "Op", "key-1", []byte("<p/>"))
	if st != statusOK {
		t.Fatalf("first call: %s %s", st, em)
	}
	if err := coord.Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	port, err := d.net.NewPort(coord.Name())
	if err != nil {
		t.Fatalf("restart port: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := coord.Restart(ctx, port); err != nil {
		t.Fatalf("restart: %v", err)
	}
	back := coordOf(t, d)
	// The journal models a disk log: it survives the crash, so the
	// retry is a cache hit even with every other replica gone.
	st2, em2, out2 := d.keyedCall(t, back.ServicePipe(), "Op", "key-1", []byte("<p/>"))
	if st2 != statusOK {
		t.Fatalf("retry after restart: %s %s", st2, em2)
	}
	if string(out2) != string(out) {
		t.Fatalf("post-restart reply %q != original %q", out2, out)
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("handler executed %d times across restart, want exactly 1", n)
	}
}

func TestJournalCachesApplicationErrors(t *testing.T) {
	var execs atomic.Int64
	reject := errors.New("insufficient funds")
	d := newDeploymentWithHandler(t, 1, func(name string) Handler {
		return HandlerFunc(func(_ context.Context, op string, payload []byte) ([]byte, error) {
			execs.Add(1)
			return nil, reject
		})
	})
	coord := coordOf(t, d)
	for i := 0; i < 2; i++ {
		st, em, _ := d.keyedCall(t, coord.ServicePipe(), "Op", "key-1", []byte("<p/>"))
		if st != statusError || em != reject.Error() {
			t.Fatalf("call %d: %s %q, want cached application error", i, st, em)
		}
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("handler executed %d times, want 1 (the rejection replays from the journal)", n)
	}
}

func TestUnkeyedRequestBypassesJournal(t *testing.T) {
	var execs atomic.Int64
	d := newDeploymentWithHandler(t, 1, countingHandler(&execs))
	coord := coordOf(t, d)
	// Legacy unkeyed requests keep their at-least-once semantics.
	for i := 0; i < 2; i++ {
		if st, _, _ := d.keyedCall(t, coord.ServicePipe(), "Op", "", []byte("<p/>")); st != statusOK {
			t.Fatalf("call %d failed", i)
		}
	}
	if n := execs.Load(); n != 2 {
		t.Fatalf("handler executed %d times, want 2 (no dedup without a key)", n)
	}
	if st := coord.Journal().Stats(); st.Live != 0 || st.Snapshotted != 0 {
		t.Fatalf("journal recorded unkeyed traffic: %+v", st)
	}
}

func TestQueryJournalReportsState(t *testing.T) {
	var execs atomic.Int64
	d := newDeploymentWithHandler(t, 1, countingHandler(&execs))
	coord := coordOf(t, d)
	if st, em, _ := d.keyedCall(t, coord.ServicePipe(), "Op", "key-1", []byte("<p/>")); st != statusOK {
		t.Fatalf("call: %s %s", st, em)
	}
	port, err := d.net.NewPort("journal-query-client")
	if err != nil {
		t.Fatalf("port: %v", err)
	}
	client := p2p.NewPeer("journal-query-client", d.gen.New(p2p.PeerIDKind), port)
	client.Start()
	t.Cleanup(func() { _ = client.Close() })
	r := p2p.NewResolverOn(client, ProtoBinding)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	report, err := QueryJournal(ctx, r, coord.Addr())
	if err != nil {
		t.Fatalf("QueryJournal: %v", err)
	}
	for _, want := range []string{"highest_committed=1", "key=key-1", "status=committed"} {
		if !strings.Contains(report, want) {
			t.Errorf("journal report missing %q:\n%s", want, report)
		}
	}
}
