package bpeer

import (
	"testing"

	"whisper/internal/leakcheck"
)

// TestMain fails the package when replica loops (lease, serve,
// election, heartbeat) outlive the tests that started them.
func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
