package bpeer

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"whisper/internal/p2p"
	"whisper/internal/replog"
)

// newReadDeployment deploys replicas with "Read" configured read-only.
func newReadDeployment(t *testing.T, replicas int) *deployment {
	t.Helper()
	d := newBareDeployment(t, nil)
	d.readOps = []string{"Read"}
	for i := 0; i < replicas; i++ {
		d.addPeer(t, i)
	}
	return d
}

// readCall sends one marked read to the given pipe and returns the
// fully decoded response.
func (d *deployment) readCall(t *testing.T, pipe *p2p.PipeAdvertisement, op string, timeout time.Duration) (Response, error) {
	t.Helper()
	port, err := d.net.NewPort(fmt.Sprintf("rclient-%d", time.Now().UnixNano()))
	if err != nil {
		t.Fatalf("client port: %v", err)
	}
	client := p2p.NewPeer("rclient", d.gen.New(p2p.PeerIDKind), port)
	client.Start()
	t.Cleanup(func() { _ = client.Close() })
	pipes := p2p.NewPipeService(client, d.gen)

	req, err := EncodeReadRequest(op, []byte("<q/>"))
	if err != nil {
		t.Fatalf("encode read: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	raw, err := pipes.Call(ctx, pipe, req)
	if err != nil {
		return Response{}, err
	}
	resp, err := DecodeResponseFull(raw)
	if err != nil {
		t.Fatalf("decode read response: %v", err)
	}
	return resp, nil
}

// follower returns a running non-coordinator replica.
func follower(t *testing.T, d *deployment, coord *BPeer) *BPeer {
	t.Helper()
	for _, p := range d.peers {
		if p.Running() && p.Addr() != coord.Addr() {
			return p
		}
	}
	t.Fatal("no running follower")
	return nil
}

// TestFollowerServesMarkedRead: a marked read sent to a follower is
// served locally (not redirected) and satisfies ReadSeq >= ReadIndex.
func TestFollowerServesMarkedRead(t *testing.T) {
	d := newReadDeployment(t, 3)
	coord := coordOf(t, d)

	// One committed write so the read index is non-zero.
	if st, em, _ := d.keyedCall(t, coord.ServicePipe(), "Op", "w1", []byte("<p/>")); st != statusOK {
		t.Fatalf("write: %s %s", st, em)
	}

	f := follower(t, d, coord)
	resp, err := d.readCall(t, f.ServicePipe(), "Read", 2*time.Second)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if resp.Status != statusOK {
		t.Fatalf("read status %s (err %s), want ok", resp.Status, resp.Error)
	}
	if !strings.HasPrefix(string(resp.Payload), f.Name()+":") {
		t.Fatalf("read served by %q, want locally by follower %s", resp.Payload, f.Name())
	}
	if resp.ReadIndex < 1 {
		t.Fatalf("ReadIndex = %d, want >= 1 after a committed write", resp.ReadIndex)
	}
	if resp.ReadSeq < resp.ReadIndex {
		t.Fatalf("staleness violation: ReadSeq %d < ReadIndex %d", resp.ReadSeq, resp.ReadIndex)
	}

	// The same op WITHOUT the read mark still redirects to the
	// coordinator — marking is the client's opt-in.
	st, _, _, _, _, err := func() (string, string, string, string, []byte, error) {
		port, _ := d.net.NewPort("plainclient")
		client := p2p.NewPeer("plainclient", d.gen.New(p2p.PeerIDKind), port)
		client.Start()
		t.Cleanup(func() { _ = client.Close() })
		pipes := p2p.NewPipeService(client, d.gen)
		req, _ := EncodeRequest("Read", []byte("<q/>"), "")
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		raw, err := pipes.Call(ctx, f.ServicePipe(), req)
		if err != nil {
			return "", "", "", "", nil, err
		}
		return DecodeResponse(raw)
	}()
	if err != nil {
		t.Fatalf("plain call: %v", err)
	}
	if st != statusRedirect {
		t.Fatalf("unmarked request to follower: status %s, want redirect", st)
	}

	// A marked read for an op outside ReadOnlyOps is not served
	// locally either (defense against misconfigured clients).
	resp2, err := d.readCall(t, f.ServicePipe(), "Op", 2*time.Second)
	if err != nil {
		t.Fatalf("non-read-op read: %v", err)
	}
	if resp2.Status != statusRedirect {
		t.Fatalf("marked read for non-read op: status %s, want redirect", resp2.Status)
	}
}

// TestFollowerReadLagBlocks is the staleness regression: a follower
// whose apply loop lags the coordinator's committed prefix must BLOCK
// the read at the barrier — not serve stale — until the commit reaches
// it.
func TestFollowerReadLagBlocks(t *testing.T) {
	d := newReadDeployment(t, 2)
	coord := coordOf(t, d)
	f := follower(t, d, coord)

	// Seed one replicated commit so both journals sit at seq 1.
	if st, em, _ := d.keyedCall(t, coord.ServicePipe(), "Op", "w1", []byte("<p/>")); st != statusOK {
		t.Fatalf("write: %s %s", st, em)
	}

	// Advance the coordinator's journal WITHOUT replication, simulating
	// a follower apply loop that has fallen behind.
	cj := coord.Journal()
	res := cj.Begin("w2", "Op", replog.Digest([]byte("<p2/>")))
	if res.Decision != replog.BeginNew {
		t.Fatalf("Begin(w2) = %v", res.Decision)
	}
	if err := cj.MarkExecuting("w2"); err != nil {
		t.Fatalf("MarkExecuting: %v", err)
	}
	if err := cj.MarkExecuted("w2", []byte("r2"), ""); err != nil {
		t.Fatalf("MarkExecuted: %v", err)
	}
	if err := cj.MarkCommitted("w2"); err != nil {
		t.Fatalf("MarkCommitted: %v", err)
	}
	lagSeq := cj.ReadIndex()
	if fi := f.Journal().ReadIndex(); fi >= lagSeq {
		t.Fatalf("follower index %d not lagging coordinator %d", fi, lagSeq)
	}

	done := make(chan Response, 1)
	go func() {
		resp, err := d.readCall(t, f.ServicePipe(), "Read", 5*time.Second)
		if err != nil {
			resp = Response{Status: statusError, Error: err.Error()}
		}
		done <- resp
	}()

	// The read must be parked at the barrier, not answered stale.
	select {
	case resp := <-done:
		t.Fatalf("lagging follower answered read early: %+v", resp)
	case <-time.After(300 * time.Millisecond):
	}

	// Deliver the missing commit; the barrier releases.
	entry, ok := cj.Entry("w2")
	if !ok {
		t.Fatal("coordinator lost entry w2")
	}
	f.Journal().ApplyCommit(entry)

	select {
	case resp := <-done:
		if resp.Status != statusOK {
			t.Fatalf("read after catch-up: %s (%s)", resp.Status, resp.Error)
		}
		if resp.ReadIndex != lagSeq {
			t.Fatalf("ReadIndex = %d, want %d", resp.ReadIndex, lagSeq)
		}
		if resp.ReadSeq < resp.ReadIndex {
			t.Fatalf("staleness violation: ReadSeq %d < ReadIndex %d", resp.ReadSeq, resp.ReadIndex)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("read never released after the commit reached the follower")
	}
}

// TestQueryReadIndex exercises the operator-facing readindex query
// against coordinator and follower.
func TestQueryReadIndex(t *testing.T) {
	d := newReadDeployment(t, 2)
	coord := coordOf(t, d)
	if st, em, _ := d.keyedCall(t, coord.ServicePipe(), "Op", "w1", []byte("<p/>")); st != statusOK {
		t.Fatalf("write: %s %s", st, em)
	}

	port, err := d.net.NewPort("qclient")
	if err != nil {
		t.Fatalf("port: %v", err)
	}
	client := p2p.NewPeer("qclient", d.gen.New(p2p.PeerIDKind), port)
	client.Start()
	t.Cleanup(func() { _ = client.Close() })
	r := p2p.NewResolverOn(client, ProtoBinding)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for _, p := range d.peers {
		idx, err := QueryReadIndex(ctx, r, p.Addr())
		if err != nil {
			t.Fatalf("QueryReadIndex(%s): %v", p.Name(), err)
		}
		if idx < 1 {
			t.Fatalf("QueryReadIndex(%s) = %d, want >= 1", p.Name(), idx)
		}
	}
}
