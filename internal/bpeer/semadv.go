// Package bpeer implements Whisper's b-peers and b-peer groups (paper
// §4): replicated service peers organized into logical semantic
// groups, advertised with semantic advertisements (an extension of the
// JXTA advertisement, §4.3), coordinated through the Bully algorithm,
// and serving Web-service requests forwarded by SWS-proxies.
package bpeer

import (
	"encoding/xml"
	"strings"
	"sync"

	"whisper/internal/ontology"
	"whisper/internal/p2p"
	"whisper/internal/qos"
)

// SemanticAdvType is the document type of Whisper's semantic
// advertisement.
const SemanticAdvType = "whisper:SemAdv"

// Group service policies advertised in semantic advertisements.
const (
	// PolicyCoordinated is the paper's default: the Bully-elected
	// coordinator serves every request (static redundancy).
	PolicyCoordinated = "coordinated"
	// PolicyLoadSharing lets every live replica serve requests, the
	// load-sharing variant §4 mentions ("the redundancy mechanism of
	// Whisper makes possible to also address scalability requirements
	// through load-sharing"). Suitable for idempotent, read-mostly
	// services.
	PolicyLoadSharing = "load-sharing"
)

// SemanticAdvertisement is the "new type of advertisement that uses
// semantic information to describe our semantic peer groups" (§4.3):
// it extends the peer-group advertisement with the group's functional
// concept (action), data concepts (inputs/outputs) and an aggregate
// QoS profile.
type SemanticAdvertisement struct {
	XMLName xml.Name `xml:"whisper SemAdv"`
	// GID identifies the advertised b-peer group.
	GID p2p.ID `xml:"GID"`
	// Name is the group's human-readable name.
	Name string `xml:"Name"`
	// Action is the functional-semantics concept URI (§2.3).
	Action string `xml:"Action"`
	// Inputs and Outputs are data-semantics concept URIs (§2.2).
	Inputs  []string `xml:"Input"`
	Outputs []string `xml:"Output"`
	// QoS is the group's advertised quality profile (§2.4).
	QoS qos.Profile `xml:"QoS"`
	// Policy is the group's serving policy (PolicyCoordinated when
	// empty).
	Policy string `xml:"Policy,omitempty"`
	// ReadOps lists the group's read-only operations: ops a proxy may
	// send to ANY replica (marked read-only) instead of the
	// coordinator, served behind the read-index barrier.
	ReadOps []string `xml:"ReadOp,omitempty"`
	// Desc is optional free text.
	Desc string `xml:"Desc,omitempty"`
}

var _ p2p.Advertisement = (*SemanticAdvertisement)(nil)

// AdvType implements p2p.Advertisement.
func (a *SemanticAdvertisement) AdvType() string { return SemanticAdvType }

// AdvID implements p2p.Advertisement.
func (a *SemanticAdvertisement) AdvID() p2p.ID { return a.GID }

// Attributes implements p2p.Advertisement. The "action" attribute is
// the index the SWS-proxy's discovery query uses
// (getLocalAdvertisements(ADV, "action", sws.get_sem_action())).
func (a *SemanticAdvertisement) Attributes() map[string]string {
	return map[string]string{
		"Name":   a.Name,
		"GID":    string(a.GID),
		"action": a.Action,
		"input":  strings.Join(a.Inputs, " "),
		"output": strings.Join(a.Outputs, " "),
		"policy": a.EffectivePolicy(),
	}
}

// MarshalAdv implements p2p.Advertisement.
func (a *SemanticAdvertisement) MarshalAdv() ([]byte, error) {
	body, err := xml.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(xml.Header)+len(body)+1)
	out = append(out, xml.Header...)
	out = append(out, body...)
	out = append(out, '\n')
	return out, nil
}

// UnmarshalAdv implements p2p.Advertisement.
func (a *SemanticAdvertisement) UnmarshalAdv(data []byte) error {
	return xml.Unmarshal(data, a)
}

// IsReadOp reports whether op is advertised read-only (servable by any
// replica behind the read-index barrier).
func (a *SemanticAdvertisement) IsReadOp(op string) bool {
	for _, ro := range a.ReadOps {
		if ro == op {
			return true
		}
	}
	return false
}

// EffectivePolicy returns the policy, defaulting to coordinated.
func (a *SemanticAdvertisement) EffectivePolicy() string {
	if a.Policy == "" {
		return PolicyCoordinated
	}
	return a.Policy
}

// Signature returns the advertisement's semantic signature.
func (a *SemanticAdvertisement) Signature() ontology.Signature {
	return ontology.Signature{
		Action:  a.Action,
		Inputs:  append([]string(nil), a.Inputs...),
		Outputs: append([]string(nil), a.Outputs...),
	}
}

// NewSemanticAdvertisement builds a semantic advertisement from a
// signature.
func NewSemanticAdvertisement(gid p2p.ID, name string, sig ontology.Signature, profile qos.Profile) *SemanticAdvertisement {
	return &SemanticAdvertisement{
		GID:     gid,
		Name:    name,
		Action:  sig.Action,
		Inputs:  append([]string(nil), sig.Inputs...),
		Outputs: append([]string(nil), sig.Outputs...),
		QoS:     profile,
	}
}

var registerOnce sync.Once

// EnsureAdvTypes registers Whisper's advertisement extensions with the
// p2p registry (idempotent).
func EnsureAdvTypes() {
	p2p.EnsureBuiltinAdvTypes()
	registerOnce.Do(func() {
		p2p.RegisterAdvType(SemanticAdvType, func() p2p.Advertisement { return &SemanticAdvertisement{} })
	})
}
