package bpeer

import (
	"context"
	"encoding/xml"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"whisper/internal/election"
	"whisper/internal/gossip"
	"whisper/internal/ontology"
	"whisper/internal/p2p"
	"whisper/internal/qos"
	"whisper/internal/replog"
	"whisper/internal/simnet"
	"whisper/internal/trace"
)

// ProtoBinding tags coordinator-lookup traffic: the "new binding
// between the SWS-proxy and the elected b-peer" whose cost the paper's
// §5 calls out as one of the two worst-case RTT components.
const ProtoBinding = "binding"

// coordinatorHandler is the binding resolver handler name.
const coordinatorHandler = "bpeer.coordinator"

// pipeHandler answers a replica's own service-pipe location, used by
// proxies to build load-sharing bindings.
const pipeHandler = "bpeer.pipe"

// Handler executes a service request at a b-peer. Implementations
// wrap backends (operational DB, data warehouse, claim processor...).
type Handler interface {
	// Invoke processes operation op with the given request payload and
	// returns the response payload.
	Invoke(ctx context.Context, op string, payload []byte) ([]byte, error)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(ctx context.Context, op string, payload []byte) ([]byte, error)

var _ Handler = HandlerFunc(nil)

// Invoke implements Handler.
func (f HandlerFunc) Invoke(ctx context.Context, op string, payload []byte) ([]byte, error) {
	return f(ctx, op, payload)
}

// Config assembles a b-peer.
type Config struct {
	// Name is the peer's human-readable name.
	Name string
	// Rank is the Bully priority; must be unique in the group.
	Rank int64
	// GroupID identifies the b-peer group this replica belongs to
	// (shared across replicas of the same functionality).
	GroupID p2p.ID
	// GroupName is the group's advertised name.
	GroupName string
	// Signature is the group's semantic signature (action, inputs,
	// outputs) used in the semantic advertisement.
	Signature ontology.Signature
	// QoS is this replica's advertised quality profile.
	QoS qos.Profile
	// RendezvousAddr is the rendezvous peer's transport address.
	RendezvousAddr string
	// ShardAddrs, when non-empty, switches advertisement publication
	// from flood-republish at the rendezvous to a one-shot gossip
	// publish at the consistent-hash owner shard (the epidemic spread
	// to the other shards is the fleet's job, not this replica's).
	// Group membership (join/leave/members) stays at RendezvousAddr.
	ShardAddrs []string
	// ShardReplicas tunes owner fan-out on publish failure; zero
	// selects p2p.DefaultShardReplicas.
	ShardReplicas int
	// Handler implements the service functionality.
	Handler Handler
	// IDGen mints IDs (shared per deployment for determinism).
	IDGen *p2p.IDGen
	// HeartbeatInterval/HeartbeatTimeout tune coordinator failure
	// detection; zero values select 100ms/400ms.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// ElectionTimeout is the Bully answer timeout; zero selects 150ms.
	ElectionTimeout time.Duration
	// LeaseInterval is how often membership and the semantic
	// advertisement are refreshed at the rendezvous; zero selects 1s.
	LeaseInterval time.Duration
	// LoadSharing opts the replica into PolicyLoadSharing: it serves
	// requests whether or not it is the coordinator. All replicas of a
	// group must agree on this setting.
	LoadSharing bool
	// NoJournal disables the replicated operation journal (exactly-once
	// execution of keyed requests, internal/replog). Load-sharing
	// groups never journal — they have no single coordinator to order
	// operations. All replicas of a group must agree on this setting.
	NoJournal bool
	// ReadOnlyOps lists the operations that do not mutate backend
	// state. On journaling groups, requests marked read-only for one of
	// these operations are served locally by ANY replica — follower or
	// coordinator — behind the read-index barrier (see read.go),
	// instead of being redirected to the coordinator. Handlers for
	// these operations must tolerate concurrent invocation: reads are
	// served off the request loop. All replicas of a group should agree
	// on this setting.
	ReadOnlyOps []string
	// ReadLease is how long a follower may reuse a read index fetched
	// from the coordinator before asking again (the clock-bounded lease
	// that amortises the read-index round-trip). Zero selects 25ms.
	ReadLease time.Duration
	// FailStop, when non-nil, classifies handler errors that mean the
	// replica's backend is gone (e.g. backend.ErrUnavailable). The
	// replica then answers the triggering request with a retryable
	// infrastructure error and takes itself offline (fail-stop), so
	// the Bully election promotes a semantically equivalent replica —
	// the paper's §4.1 database→warehouse scenario.
	FailStop func(error) bool
	// Tracer records request-serving spans ("bpeer.request" with a
	// "backend" child) joined to the proxy's trace via the pipe
	// envelope's trace context; nil disables tracing.
	Tracer *trace.Tracer
}

func (c *Config) applyDefaults() {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 100 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 4 * c.HeartbeatInterval
	}
	if c.ElectionTimeout <= 0 {
		c.ElectionTimeout = 150 * time.Millisecond
	}
	if c.LeaseInterval <= 0 {
		c.LeaseInterval = time.Second
	}
	if c.ReadLease <= 0 {
		c.ReadLease = 25 * time.Millisecond
	}
	if c.IDGen == nil {
		c.IDGen = p2p.NewIDGen(0)
	}
}

// BPeer is one replica in a b-peer group: it serves requests when it
// is the coordinator, redirects to the coordinator otherwise, watches
// the coordinator's health and participates in Bully elections. A
// replica taken down by Crash or Close can come back with Restart.
type BPeer struct {
	cfg   Config
	pid   p2p.ID // stable across restarts: the same logical replica
	peer  *p2p.Peer
	disco *p2p.DiscoveryService
	pipes *p2p.PipeService
	rdv   *p2p.RendezvousClient
	bind  *p2p.Resolver
	elect *election.Node
	fd    *p2p.FailureDetector
	input *p2p.InputPipe

	// Sharded-discovery publication state (nil on the legacy
	// flood-republish path). gossipPub survives Crash/Restart so the
	// replica's entry versions stay monotone across its lifetimes.
	shards    *p2p.ShardRouter
	gossipCli *p2p.GossipClient
	gossipPub *gossip.Publisher

	// journal is the replicated operation journal. Unlike the protocol
	// services it is created once in New and survives Crash/Restart —
	// it models a disk-backed log, the same durability assumption the
	// backends make.
	journal  *replog.Journal
	replogIn *p2p.InputPipe
	replMu   sync.Mutex
	replAdvs map[string]*p2p.PipeAdvertisement

	// lease caches the coordinator's read index for cfg.ReadLease
	// (follower read protocol, read.go). Rebuilt on restart.
	lease *readLease

	mu       sync.Mutex
	watching string // coordinator address currently monitored
	started  bool
	closed   bool
	crashed  bool

	// runCtx is the replica's lifecycle context: derived in Start from
	// the caller's context (minus its cancellation — the replica's
	// lifetime is governed by Close/Crash, not by the Start call's
	// deadline) and cancelled in teardown. Background loops and
	// farewell traffic derive their per-operation timeouts from it.
	runCtx    context.Context
	runCancel context.CancelFunc

	stopLease  chan struct{}
	leaseDone  chan struct{}
	serveDone  chan struct{}
	replogDone chan struct{}
}

// New assembles a b-peer over the given transport. Call Start to make
// it live.
func New(tr simnet.Transport, cfg Config) (*BPeer, error) {
	if cfg.Handler == nil {
		return nil, fmt.Errorf("bpeer: config requires a Handler")
	}
	if cfg.GroupID == "" {
		return nil, fmt.Errorf("bpeer: config requires a GroupID")
	}
	if cfg.RendezvousAddr == "" {
		return nil, fmt.Errorf("bpeer: config requires a RendezvousAddr")
	}
	cfg.applyDefaults()
	EnsureAdvTypes()

	b := &BPeer{
		cfg:        cfg,
		pid:        cfg.IDGen.New(p2p.PeerIDKind),
		stopLease:  make(chan struct{}),
		leaseDone:  make(chan struct{}),
		serveDone:  make(chan struct{}),
		replogDone: make(chan struct{}),
	}
	if !cfg.NoJournal && !cfg.LoadSharing {
		b.journal = replog.New(cfg.Name, cfg.Name)
	}
	if len(cfg.ShardAddrs) > 0 {
		b.shards = p2p.NewShardRouter(cfg.ShardAddrs, cfg.ShardReplicas)
		b.gossipPub = gossip.NewPublisher(cfg.Name, nil)
	}
	b.assemble(tr)
	return b, nil
}

// assemble builds (or rebuilds, on restart) every protocol service over
// the given transport endpoint.
func (b *BPeer) assemble(tr simnet.Transport) {
	cfg := b.cfg
	b.peer = p2p.NewPeer(cfg.Name, b.pid, tr)
	b.peer.SetTracer(cfg.Tracer)
	if col := cfg.Tracer.Collector(); col != nil {
		p2p.ServeTraces(b.peer, col)
	}
	b.disco = p2p.NewDiscoveryService(b.peer)
	if b.shards != nil {
		b.gossipCli = p2p.NewGossipClient(b.peer)
	}
	b.pipes = p2p.NewPipeService(b.peer, cfg.IDGen)
	b.rdv = p2p.NewRendezvousClient(b.peer, cfg.RendezvousAddr)
	b.bind = p2p.NewResolverOn(b.peer, ProtoBinding)
	b.bind.RegisterHandler(coordinatorHandler, b.answerCoordinator)
	b.bind.RegisterHandler(pipeHandler, b.answerPipe)
	b.input = b.pipes.Bind(cfg.GroupName+"/service", p2p.UnicastPipe)
	if b.journal != nil {
		b.bind.RegisterHandler(replogPipeHandler, b.answerReplogPipe)
		b.bind.RegisterHandler(replogStateHandler, b.answerReplogState)
		b.bind.RegisterHandler(replogResolveHandler, b.answerReplogResolve)
		b.bind.RegisterHandler(replogStatusHandler, b.answerReplogStatus)
		b.bind.RegisterHandler(readIndexHandler, b.answerReadIndex)
		b.lease = &readLease{}
		b.replogIn = b.pipes.Bind(cfg.GroupName+"/replog", p2p.PropagatePipe)
		b.replMu.Lock()
		b.replAdvs = make(map[string]*p2p.PipeAdvertisement)
		b.replMu.Unlock()
	}

	b.elect = election.NewNode(b.peer, cfg.Rank, b.electionMembers, election.Config{
		AnswerTimeout: cfg.ElectionTimeout,
		OnCoordinator: b.onCoordinator,
		Barrier:       b.journalBarrier,
	})
	b.fd = p2p.NewFailureDetector(b.peer, p2p.FailureDetectorConfig{
		Interval:  cfg.HeartbeatInterval,
		Timeout:   cfg.HeartbeatTimeout,
		OnFailure: b.onPeerFailure,
	})
}

// Addr returns the b-peer's transport address.
func (b *BPeer) Addr() string { return b.peer.Addr() }

// Name returns the b-peer's name.
func (b *BPeer) Name() string { return b.cfg.Name }

// Rank returns the b-peer's election priority.
func (b *BPeer) Rank() int64 { return b.cfg.Rank }

// GroupID returns the b-peer group ID.
func (b *BPeer) GroupID() p2p.ID { return b.cfg.GroupID }

// IsCoordinator reports whether this replica is the elected
// coordinator.
func (b *BPeer) IsCoordinator() bool { return b.elect.IsCoordinator() }

// Coordinator returns the currently known coordinator address ("" when
// unknown).
func (b *BPeer) Coordinator() string { return b.elect.Coordinator() }

// ServicePipe returns the advertisement of this replica's request
// pipe.
func (b *BPeer) ServicePipe() *p2p.PipeAdvertisement { return b.input.Advertisement() }

// SemanticAdvertisement builds the group's semantic advertisement as
// this replica publishes it.
func (b *BPeer) SemanticAdvertisement() *SemanticAdvertisement {
	adv := NewSemanticAdvertisement(b.cfg.GroupID, b.cfg.GroupName, b.cfg.Signature, b.cfg.QoS)
	if b.cfg.LoadSharing {
		adv.Policy = PolicyLoadSharing
	}
	if b.journal != nil {
		adv.ReadOps = append([]string(nil), b.cfg.ReadOnlyOps...)
	}
	return adv
}

// advertisement returns this peer's membership advertisement with its
// rank.
func (b *BPeer) advertisement() *p2p.PeerAdvertisement {
	adv := b.peer.Advertisement()
	adv.Rank = b.cfg.Rank
	return adv
}

// Start brings the replica online: join the group at the rendezvous,
// publish the semantic advertisement, start heartbeats, the lease
// renewal loop, the request-serving loop, and trigger an initial
// election.
func (b *BPeer) Start(ctx context.Context) error {
	b.mu.Lock()
	if b.started || b.closed {
		b.mu.Unlock()
		return fmt.Errorf("bpeer %s: already started or closed", b.cfg.Name)
	}
	b.started = true
	b.runCtx, b.runCancel = context.WithCancel(context.WithoutCancel(ctx))
	b.mu.Unlock()

	b.peer.Start()
	if err := b.rdv.Join(ctx, b.cfg.GroupID, b.advertisement()); err != nil {
		return fmt.Errorf("bpeer %s: initial join: %w", b.cfg.Name, err)
	}
	if err := b.publishSemanticAdv(ctx); err != nil {
		return fmt.Errorf("bpeer %s: publish semantic adv: %w", b.cfg.Name, err)
	}
	// Cache the group advertisement locally too (peers answer remote
	// discovery queries from their own caches).
	if err := b.disco.Publish(b.SemanticAdvertisement(), 0); err != nil {
		return fmt.Errorf("bpeer %s: local publish: %w", b.cfg.Name, err)
	}
	b.fd.Start()
	go b.leaseLoop()
	go b.serveLoop()
	if b.journal != nil {
		go b.replogLoop()
		// Rejoin state transfer: merge whatever the live members know
		// (committed replies, pending claims) before the first election
		// this replica can win. Best-effort — a lone first boot finds
		// nobody and proceeds with its empty journal.
		catchCtx, catchCancel := context.WithTimeout(b.runCtx, b.cfg.HeartbeatTimeout)
		b.journalCatchUp(catchCtx)
		catchCancel()
	}
	b.elect.Trigger()
	return nil
}

// Close takes the replica offline gracefully: it deregisters from the
// rendezvous group and, if it is the coordinator, resigns — challenging
// the surviving members so the hand-off election starts immediately
// instead of waiting for heartbeat failure detection. Safe to call more
// than once.
func (b *BPeer) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	started := b.started
	b.mu.Unlock()

	if started {
		// Farewell traffic while the transport is still up: leave the
		// group first so hand-off elections exclude this replica.
		ctx, cancel := context.WithTimeout(b.lifecycleCtx(), b.cfg.HeartbeatTimeout)
		_ = b.rdv.Leave(ctx, b.cfg.GroupID, b.pid)
		if b.shards != nil {
			// Last replica out unpublishes the group: a tombstone at the
			// owner shard propagates epidemically and blocks stale
			// copies from resurrecting the dead advertisement. Earlier
			// leavers keep quiet — surviving replicas still renew it.
			if members, err := b.rdv.Members(ctx, b.cfg.GroupID); err == nil && len(members) == 0 {
				adv := b.SemanticAdvertisement()
				_ = b.gossipSend(ctx, adv, b.gossipPub.Tombstone(string(adv.AdvID())))
			}
		}
		cancel()
		b.elect.Resign()
	}
	return b.teardown(started)
}

// Crash simulates a hard failure: the replica drops off the network
// abruptly — no resignation, no rendezvous leave, no farewell traffic
// of any kind. Survivors only learn of the death through heartbeat
// timeouts, exactly like a power failure. Safe to call more than once;
// a crashed replica can come back with Restart.
func (b *BPeer) Crash() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	b.crashed = true
	started := b.started
	b.mu.Unlock()
	return b.teardown(started)
}

// lifecycleCtx returns the replica's run context. Every caller runs
// strictly after Start (loops it spawned, elections it triggered, the
// started branch of Close), so the context is always non-nil.
func (b *BPeer) lifecycleCtx() context.Context {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.runCtx
}

// teardown stops every loop and service. Callers must have set closed.
func (b *BPeer) teardown(started bool) error {
	b.mu.Lock()
	cancel := b.runCancel
	b.mu.Unlock()
	if cancel != nil {
		// Abort in-flight handler invocations and lease renewals; the
		// transport under them is about to go away regardless.
		cancel()
	}
	b.elect.Close()
	if started {
		close(b.stopLease)
		<-b.leaseDone
	}
	b.fd.Stop()
	b.input.Close()
	if b.replogIn != nil {
		b.replogIn.Close()
	}
	err := b.peer.Close()
	if started {
		<-b.serveDone
		if b.journal != nil {
			<-b.replogDone
		}
	}
	return err
}

// Restart brings a crashed (or closed) replica back online over a
// fresh transport endpoint: it rebuilds every protocol service, rejoins
// its group at the rendezvous, re-publishes the semantic advertisement
// and re-enters the Bully election as a challenger. The replica keeps
// its identity (name, rank, peer ID), so a restarted high-rank peer can
// win a subsequent election.
func (b *BPeer) Restart(ctx context.Context, tr simnet.Transport) error {
	b.mu.Lock()
	if !b.closed {
		b.mu.Unlock()
		return fmt.Errorf("bpeer %s: restart of a running replica", b.cfg.Name)
	}
	b.closed = false
	b.crashed = false
	b.started = false
	b.watching = ""
	b.stopLease = make(chan struct{})
	b.leaseDone = make(chan struct{})
	b.serveDone = make(chan struct{})
	b.replogDone = make(chan struct{})
	b.mu.Unlock()

	b.assemble(tr)
	return b.Start(ctx)
}

// Running reports whether the replica is live (started and not yet
// crashed or closed).
func (b *BPeer) Running() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.started && !b.closed
}

// Crashed reports whether the replica went down abruptly via Crash (as
// opposed to a graceful Close).
func (b *BPeer) Crashed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.crashed
}

// --- membership & election wiring --------------------------------------

// electionMembers supplies the Bully node with the rendezvous's
// current view of the group.
func (b *BPeer) electionMembers() []election.Member {
	ctx, cancel := context.WithTimeout(b.lifecycleCtx(), b.cfg.HeartbeatTimeout)
	defer cancel()
	advs, err := b.rdv.Members(ctx, b.cfg.GroupID)
	if err != nil {
		// Rendezvous unreachable: fall back to self, so a lone
		// survivor still elects itself.
		return []election.Member{{Addr: b.peer.Addr(), Rank: b.cfg.Rank}}
	}
	members := make([]election.Member, 0, len(advs))
	seenSelf := false
	for _, adv := range advs {
		members = append(members, election.Member{Addr: adv.Addr, Rank: adv.Rank})
		if adv.Addr == b.peer.Addr() {
			seenSelf = true
		}
	}
	if !seenSelf {
		members = append(members, election.Member{Addr: b.peer.Addr(), Rank: b.cfg.Rank})
	}
	return members
}

// onCoordinator re-points the failure detector at the new coordinator.
func (b *BPeer) onCoordinator(addr string) {
	b.mu.Lock()
	prev := b.watching
	self := b.peer.Addr()
	if addr == self {
		b.watching = ""
	} else {
		b.watching = addr
	}
	watch := b.watching
	b.mu.Unlock()

	if prev != "" && prev != watch {
		b.fd.Unwatch(prev)
	}
	if watch != "" && watch != prev {
		b.fd.Watch(watch)
	}
}

// onPeerFailure reacts to the coordinator's death: invalidate and
// re-elect (§4.2: "If one replica fails another replica is elected
// using the Bully algorithm").
func (b *BPeer) onPeerFailure(addr string) {
	b.mu.Lock()
	isCoord := addr == b.watching
	b.mu.Unlock()
	if !isCoord {
		return
	}
	b.fd.Unwatch(addr)
	b.elect.InvalidateCoordinator()
	b.elect.Trigger()
}

// leaseLoop renews membership at the rendezvous and the semantic
// advertisement in the discovery plane.
func (b *BPeer) leaseLoop() {
	defer close(b.leaseDone)
	ticker := time.NewTicker(b.cfg.LeaseInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			ctx, cancel := context.WithTimeout(b.lifecycleCtx(), b.cfg.LeaseInterval)
			// Renewal failures are transient (rendezvous may be
			// restarting); the next tick retries.
			_ = b.rdv.Join(ctx, b.cfg.GroupID, b.advertisement())
			_ = b.publishSemanticAdv(ctx)
			cancel()
		case <-b.stopLease:
			return
		}
	}
}

// publishSemanticAdv pushes the group's semantic advertisement into
// the discovery plane with a 3×LeaseInterval lifetime. On the sharded
// path this is ONE gossip publish to the advertisement's owner shard
// (falling back through the replica owners if it is down) — the
// epidemic spread to the remaining shards is the fleet's job. The
// legacy path flood-republishes to the single rendezvous.
func (b *BPeer) publishSemanticAdv(ctx context.Context) error {
	adv := b.SemanticAdvertisement()
	lifetime := 3 * b.cfg.LeaseInterval
	if b.shards == nil {
		return b.disco.RemotePublish(ctx, b.cfg.RendezvousAddr, adv, lifetime)
	}
	raw, err := adv.MarshalAdv()
	if err != nil {
		return fmt.Errorf("bpeer %s: marshal semantic adv: %w", b.cfg.Name, err)
	}
	entry := b.gossipPub.Entry(string(adv.AdvID()), raw, lifetime)
	return b.gossipSend(ctx, adv, entry)
}

// gossipSend delivers one entry to every replica owner of the
// advertisement's ring slot and succeeds when at least one accepted.
// Writing all k owners is what makes a publish durable: a single
// accepting shard that crashes before its first gossip round would
// take the only copy with it.
func (b *BPeer) gossipSend(ctx context.Context, adv *SemanticAdvertisement, entry gossip.Entry) error {
	owners := b.shards.AppendOwners(nil, adv.AdvType(), "action", adv.Action)
	var lastErr error
	accepted := 0
	for _, owner := range owners {
		if _, err := b.gossipCli.Publish(ctx, owner, entry); err == nil {
			accepted++
		} else {
			lastErr = err
		}
	}
	if accepted > 0 {
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("bpeer %s: no shard owners for %q", b.cfg.Name, adv.Action)
	}
	return lastErr
}

// --- request serving ----------------------------------------------------

// peerRequest is the pipe payload carrying one service request.
type peerRequest struct {
	XMLName xml.Name `xml:"PeerRequest"`
	Op      string   `xml:"Op,attr"`
	// Key is the client's idempotency key (the SOAP MessageID). Keyed
	// requests on journaling groups get exactly-once execution; an
	// empty key selects the legacy at-most-once-per-attempt path.
	Key string `xml:"Key,attr,omitempty"`
	// ReadOnly marks the request as a read: the receiving replica may
	// serve it locally behind the read-index barrier instead of
	// redirecting to the coordinator, provided the op is in its
	// configured ReadOnlyOps set.
	ReadOnly bool   `xml:"ReadOnly,attr,omitempty"`
	Payload  []byte `xml:"Payload"`
}

// peerResponse statuses.
const (
	statusOK       = "ok"
	statusError    = "error"
	statusRedirect = "redirect"
)

// handlerTimeout bounds one backend invocation.
const handlerTimeout = 10 * time.Second

// Retryable infrastructure error messages (recognized by the proxy).
const (
	// ErrMsgNoCoordinator is returned while no coordinator is elected.
	ErrMsgNoCoordinator = "no coordinator elected"
	// ErrMsgFailingOver is returned when a replica fail-stops because
	// its backend became unavailable.
	ErrMsgFailingOver = "replica failing over"
)

// IsInfraErrMsg reports whether a wire error message names a transient
// infrastructure condition (no coordinator, failover in progress,
// unknown journal outcome, read index unavailable) rather than a
// service-level failure. Callers outside this package must use this
// helper instead of comparing the ErrMsg* strings directly: the
// messages are wire format owned here, and identity checks scattered
// across packages would break silently if one were reworded.
func IsInfraErrMsg(msg string) bool {
	switch msg {
	case ErrMsgNoCoordinator, ErrMsgFailingOver, ErrMsgOutcomeUnknown, ErrMsgReadUnavailable:
		return true
	}
	return false
}

// peerResponse is the pipe payload carrying one service response.
type peerResponse struct {
	XMLName xml.Name `xml:"PeerResponse"`
	Status  string   `xml:"Status,attr"`
	// Coordinator and Pipe are set on redirects so the caller can
	// re-bind.
	Coordinator string `xml:"Coordinator,omitempty"`
	Pipe        string `xml:"Pipe,omitempty"`
	// Error is the failure message when Status is "error".
	Error string `xml:"Error,omitempty"`
	// ReadIndex and ReadSeq are set on follower-served reads: the
	// committed sequence the read was issued at, and the local
	// committed sequence when it executed. The staleness invariant is
	// ReadSeq >= ReadIndex.
	ReadIndex uint64 `xml:"ReadIndex,attr,omitempty"`
	ReadSeq   uint64 `xml:"ReadSeq,attr,omitempty"`
	// Payload is the service response when Status is "ok".
	Payload []byte `xml:"Payload,omitempty"`
}

// EncodeRequest builds the wire form of a service request (exported
// for the proxy). key is the idempotency key, "" for unkeyed requests.
func EncodeRequest(op string, payload []byte, key string) ([]byte, error) {
	return xml.Marshal(peerRequest{Op: op, Key: key, Payload: payload})
}

// EncodeReadRequest builds the wire form of a read-only request.
// Reads are unkeyed (they never enter the journal) and carry the
// ReadOnly mark that lets a follower serve them locally.
func EncodeReadRequest(op string, payload []byte) ([]byte, error) {
	return xml.Marshal(peerRequest{Op: op, ReadOnly: true, Payload: payload})
}

// Response is the decoded form of a service response, including the
// follower-read staleness fields.
type Response struct {
	Status      string
	Coordinator string
	Pipe        string
	Error       string
	Payload     []byte
	// ReadIndex/ReadSeq are non-zero only on follower-served reads.
	ReadIndex uint64
	ReadSeq   uint64
}

// DecodeResponse parses the wire form of a service response (exported
// for the proxy).
func DecodeResponse(data []byte) (status, coordinator, pipeID, errMsg string, payload []byte, err error) {
	resp, err := DecodeResponseFull(data)
	if err != nil {
		return "", "", "", "", nil, err
	}
	return resp.Status, resp.Coordinator, resp.Pipe, resp.Error, resp.Payload, nil
}

// DecodeResponseFull parses the wire form of a service response into a
// Response, preserving the read-index staleness fields.
func DecodeResponseFull(data []byte) (Response, error) {
	var resp peerResponse
	if err := xml.Unmarshal(data, &resp); err != nil {
		return Response{}, fmt.Errorf("bpeer: decode response: %w", err)
	}
	return Response{
		Status:      resp.Status,
		Coordinator: resp.Coordinator,
		Pipe:        resp.Pipe,
		Error:       resp.Error,
		Payload:     resp.Payload,
		ReadIndex:   resp.ReadIndex,
		ReadSeq:     resp.ReadSeq,
	}, nil
}

// serveLoop answers requests on the service pipe.
func (b *BPeer) serveLoop() {
	defer close(b.serveDone)
	for {
		select {
		case pm := <-b.input.Messages():
			b.handleRequest(pm)
		case <-b.input.Done():
			return
		}
	}
}

func (b *BPeer) handleRequest(pm p2p.PipeMessage) {
	var req peerRequest
	// The span joins the proxy's trace via the pipe envelope's trace
	// context (a zero pm.Trace yields a detached root, which BuildTree
	// reports as an orphan).
	span := b.cfg.Tracer.StartRemote(pm.Trace, "bpeer.request")
	span.SetAttr("peer", b.cfg.Name)
	resp := peerResponse{Status: statusError}
	reply := func() {
		if resp.Status == statusError {
			span.SetAttr("error", resp.Error)
		}
		span.SetAttr("status", resp.Status)
		span.End()
		b.reply(pm, resp)
	}
	if err := xml.Unmarshal(pm.Payload, &req); err != nil {
		resp.Error = fmt.Sprintf("bad request: %v", err)
		reply()
		return
	}
	span.SetAttr("op", req.Op)
	if req.ReadOnly && b.journal != nil && b.isReadOnlyOp(req.Op) {
		// Marked read on a journaling group: any replica serves it
		// locally behind the read-index barrier. Served off the request
		// loop so a barrier wait (lagging apply) never blocks writes or
		// other reads.
		go b.serveRead(span, pm, req)
		return //lint:allow spanend span ownership transfers to serveRead, which ends it on every reply path
	}
	// §4.2: "the b-peer found may not be the coordinator. Therefore,
	// additional processing may need to be done to find the current
	// coordinator." Load-sharing groups serve from any live replica.
	if !b.cfg.LoadSharing && !b.elect.IsCoordinator() {
		coord := b.elect.Coordinator()
		if coord == "" {
			resp.Error = ErrMsgNoCoordinator
			reply()
			return
		}
		resp.Status = statusRedirect
		resp.Coordinator = coord
		reply()
		return
	}
	if b.journal != nil && req.Key != "" {
		// Keyed request on a journaling group: the exactly-once path
		// (claim → replicate → execute once → replicate → ack)
		// computes the response; the reply closure above acks it.
		var failingOver bool
		resp, failingOver = b.journaledResponse(span, req)
		reply()
		if failingOver {
			go func() { _ = b.Close() }()
		}
		return
	}
	ctx, cancel := context.WithTimeout(trace.ContextWith(b.lifecycleCtx(), span), handlerTimeout)
	defer cancel()
	hctx, hspan := b.cfg.Tracer.StartSpan(ctx, "backend")
	out, err := b.cfg.Handler.Invoke(hctx, req.Op, req.Payload)
	hspan.EndWith(err)
	if err != nil {
		if b.cfg.FailStop != nil && b.cfg.FailStop(err) {
			// Backend gone: answer retryably and fail-stop so the
			// election promotes a replica with a working backend.
			resp.Error = ErrMsgFailingOver
			reply()
			go func() { _ = b.Close() }()
			return
		}
		resp.Error = err.Error()
		reply()
		return
	}
	resp.Status = statusOK
	resp.Payload = out
	reply()
}

func (b *BPeer) reply(pm p2p.PipeMessage, resp peerResponse) {
	data, err := xml.Marshal(resp)
	if err != nil {
		return
	}
	// Best effort: the caller may have timed out.
	_ = b.input.Reply(pm, data)
}

// answerCoordinator serves coordinator-lookup queries from proxies and
// other peers: it returns "<addr> <rank> <pipeID>" for the current
// coordinator, or an error while no coordinator is known.
func (b *BPeer) answerCoordinator(_ string, _ []byte) ([]byte, error) {
	coord := b.elect.Coordinator()
	if coord == "" {
		return nil, fmt.Errorf("no coordinator elected")
	}
	if coord == b.peer.Addr() {
		return []byte(coord + " " + strconv.FormatInt(b.cfg.Rank, 10) + " " + string(b.input.Advertisement().PipeID)), nil
	}
	// Not the coordinator: report its address; the caller asks it
	// directly for the pipe.
	return []byte(coord), nil
}

// answerPipe serves this replica's own service-pipe location.
func (b *BPeer) answerPipe(_ string, _ []byte) ([]byte, error) {
	return []byte(b.peer.Addr() + " " + string(b.input.Advertisement().PipeID)), nil
}

// QueryServicePipe asks a replica for its own service pipe (the
// load-sharing binding path).
func QueryServicePipe(ctx context.Context, r *p2p.Resolver, memberAddr string) (*p2p.PipeAdvertisement, error) {
	payload, err := r.Query(ctx, memberAddr, pipeHandler, nil)
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(string(payload))
	if len(fields) != 2 {
		return nil, fmt.Errorf("bpeer: malformed pipe answer %q", payload)
	}
	return &p2p.PipeAdvertisement{
		PipeID: p2p.ID(fields[1]),
		Kind:   p2p.UnicastPipe,
		Addr:   fields[0],
	}, nil
}

// QueryCoordinator asks a group member for the current coordinator.
// It returns the coordinator's address and, when the queried member IS
// the coordinator, its service pipe ID.
func QueryCoordinator(ctx context.Context, r *p2p.Resolver, memberAddr string) (coordAddr string, pipeID p2p.ID, err error) {
	payload, err := r.Query(ctx, memberAddr, coordinatorHandler, nil)
	if err != nil {
		return "", "", err
	}
	fields := strings.Fields(string(payload))
	switch len(fields) {
	case 1:
		return fields[0], "", nil
	case 3:
		return fields[0], p2p.ID(fields[2]), nil
	default:
		return "", "", fmt.Errorf("bpeer: malformed coordinator answer %q", payload)
	}
}
