package bpeer

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"whisper/internal/p2p"
	"whisper/internal/trace"
)

// Follower read serving (the read-index/lease protocol).
//
// The paper routes every request through the Bully-elected coordinator,
// capping group throughput at one node. The replicated journal gives
// every replica a consistent committed prefix, which makes follower
// reads safe under one barrier: a read must not execute until the local
// prefix has reached the committed sequence the read was issued at.
//
//	follower                         coordinator
//	   │  ── bpeer.readindex ──────────▶ │   (skipped while the
//	   │  ◀───── committed seq N ─────── │    lease is fresh)
//	   │ WaitCommitted(N)                │
//	   │ ...apply loop reaches N...      │
//	   │ execute read locally            │
//	   ▼ reply {ReadIndex:N, ReadSeq:M}  │   invariant: M >= N
//
// A clock-bounded lease (Config.ReadLease) lets the follower reuse a
// fetched index for a short window, amortising the round-trip across
// many reads. The lease only ever makes the index OLDER than the
// coordinator's current prefix, which keeps the staleness invariant
// intact — it trades recency, never consistency.

// readIndexHandler answers the coordinator's (or any replica's)
// current committed sequence; registered on ProtoBinding.
const readIndexHandler = "bpeer.readindex"

// ErrMsgReadUnavailable is returned when a follower cannot obtain a
// read index (coordinator unreachable mid-election) or cannot reach it
// before the handler deadline (apply loop lagging too far). It is a
// retryable infrastructure error: the proxy redirects the read to
// another replica.
const ErrMsgReadUnavailable = "read index unavailable"

// readLease caches the last coordinator-issued read index.
type readLease struct {
	mu sync.Mutex
	// coord is the coordinator the index was fetched from; a
	// coordinator change invalidates the lease immediately.
	coord string
	idx   uint64
	at    time.Time
}

// isReadOnlyOp reports whether op is in the configured read-only set.
func (b *BPeer) isReadOnlyOp(op string) bool {
	for _, ro := range b.cfg.ReadOnlyOps {
		if ro == op {
			return true
		}
	}
	return false
}

// serveRead serves one marked read locally: obtain a read index, wait
// for the local committed prefix to reach it, execute the handler, and
// reply with the (index, observed seq) pair the staleness invariant is
// checked against. Runs on its own goroutine — the caller's serve loop
// must never block on a lagging apply loop.
func (b *BPeer) serveRead(span *trace.Span, pm p2p.PipeMessage, req peerRequest) {
	resp := peerResponse{Status: statusError}
	span.SetAttr("read", "local")
	reply := func() {
		if resp.Status == statusError {
			span.SetAttr("error", resp.Error)
		}
		span.SetAttr("status", resp.Status)
		span.End()
		b.reply(pm, resp)
	}
	ctx, cancel := context.WithTimeout(trace.ContextWith(b.lifecycleCtx(), span), handlerTimeout)
	defer cancel()

	idx, err := b.readIndex(ctx)
	if err != nil {
		resp.Error = err.Error()
		reply()
		return
	}
	span.SetAttr("read.index", strconv.FormatUint(idx, 10))
	if err := b.journal.WaitCommitted(ctx, idx); err != nil {
		// Barrier not reached before the deadline: the apply loop is
		// lagging badly. Never serve stale — answer retryably so the
		// proxy redirects to a caught-up replica.
		resp.Error = ErrMsgReadUnavailable
		reply()
		return
	}
	// The prefix only grows, so sampling after the barrier gives the
	// smallest sequence this read could have observed.
	seq := b.journal.ReadIndex()

	hctx, hspan := b.cfg.Tracer.StartSpan(ctx, "backend")
	out, err := b.cfg.Handler.Invoke(hctx, req.Op, req.Payload)
	hspan.EndWith(err)
	if err != nil {
		if b.cfg.FailStop != nil && b.cfg.FailStop(err) {
			resp.Error = ErrMsgFailingOver
			reply()
			go func() { _ = b.Close() }()
			return
		}
		resp.Error = err.Error()
		reply()
		return
	}
	resp.Status = statusOK
	resp.Payload = out
	resp.ReadIndex = idx
	resp.ReadSeq = seq
	reply()
}

// readIndex returns the committed sequence a read issued now must
// observe. The coordinator answers from its own journal; a follower
// asks the coordinator, reusing a lease-fresh answer when it has one.
func (b *BPeer) readIndex(ctx context.Context) (uint64, error) {
	if b.elect.IsCoordinator() {
		return b.journal.ReadIndex(), nil
	}
	coord := b.elect.Coordinator()
	if coord == "" {
		return 0, fmt.Errorf("%s", ErrMsgNoCoordinator)
	}
	lease := b.lease
	lease.mu.Lock()
	if lease.coord == coord && time.Since(lease.at) < b.cfg.ReadLease {
		idx := lease.idx
		lease.mu.Unlock()
		return idx, nil
	}
	lease.mu.Unlock()

	idx, err := QueryReadIndex(ctx, b.bind, coord)
	if err != nil {
		return 0, fmt.Errorf("%s", ErrMsgReadUnavailable)
	}
	lease.mu.Lock()
	// Another fetch may have raced ahead; keep the largest index so a
	// lease never moves backwards under a fixed coordinator.
	if lease.coord != coord || idx >= lease.idx {
		lease.coord = coord
		lease.idx = idx
		lease.at = time.Now()
	}
	lease.mu.Unlock()
	return idx, nil
}

// answerReadIndex serves this replica's current committed sequence.
// Followers answer too — their (lagging) index is what peerctl uses to
// display replication lag — but the read protocol only ever queries
// the peer it believes is the coordinator.
func (b *BPeer) answerReadIndex(_ string, _ []byte) ([]byte, error) {
	if b.journal == nil {
		return nil, fmt.Errorf("journal disabled")
	}
	return []byte(strconv.FormatUint(b.journal.ReadIndex(), 10)), nil
}

// QueryReadIndex asks a replica for its current committed sequence
// (the read-index protocol; also the peerctl "readindex" subcommand).
func QueryReadIndex(ctx context.Context, r *p2p.Resolver, memberAddr string) (uint64, error) {
	payload, err := r.Query(ctx, memberAddr, readIndexHandler, nil)
	if err != nil {
		return 0, err
	}
	idx, err := strconv.ParseUint(string(payload), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bpeer: malformed read index %q", payload)
	}
	return idx, nil
}
