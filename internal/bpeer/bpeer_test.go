package bpeer

import (
	"context"
	"fmt"
	"testing"
	"time"

	"whisper/internal/ontology"
	"whisper/internal/p2p"
	"whisper/internal/qos"
	"whisper/internal/simnet"
)

// deployment is a rendezvous plus a group of b-peer replicas on a
// zero-latency simulated network.
type deployment struct {
	net     *simnet.Network
	gen     *p2p.IDGen
	rdvPeer *p2p.Peer
	rdvSvc  *p2p.RendezvousService
	rdvDsc  *p2p.DiscoveryService
	gid     p2p.ID
	peers   []*BPeer

	// handler overrides the per-replica handler factory (echoHandler
	// when nil).
	handler func(name string) Handler
	// readOps configures ReadOnlyOps on every replica (set before
	// peers are added; see newBareDeployment).
	readOps []string
}

func echoHandler(name string) Handler {
	return HandlerFunc(func(_ context.Context, op string, payload []byte) ([]byte, error) {
		return []byte(name + ":" + op + ":" + string(payload)), nil
	})
}

func studentSig() ontology.Signature {
	return ontology.Signature{
		Action:  ontology.ConceptStudentInformation,
		Inputs:  []string{ontology.ConceptStudentID},
		Outputs: []string{ontology.ConceptStudentInfo},
	}
}

func newDeployment(t *testing.T, replicas int) *deployment {
	t.Helper()
	return newDeploymentWithHandler(t, replicas, nil)
}

// newDeploymentWithHandler deploys with a custom handler factory.
func newDeploymentWithHandler(t *testing.T, replicas int, handler func(name string) Handler) *deployment {
	t.Helper()
	d := newBareDeployment(t, handler)
	for i := 0; i < replicas; i++ {
		d.addPeer(t, i)
	}
	return d
}

// newBareDeployment builds the network and rendezvous without any
// replicas, so tests can tweak deployment-wide config (readOps) before
// calling addPeer.
func newBareDeployment(t *testing.T, handler func(name string) Handler) *deployment {
	t.Helper()
	d := &deployment{
		net:     simnet.NewNetwork(simnet.WithLatency(simnet.ZeroLatency()), simnet.WithSeed(1)),
		gen:     p2p.NewIDGen(1),
		handler: handler,
	}
	t.Cleanup(func() { _ = d.net.Close() })

	port, err := d.net.NewPort("rdv")
	if err != nil {
		t.Fatalf("rdv port: %v", err)
	}
	d.rdvPeer = p2p.NewPeer("rdv", d.gen.New(p2p.PeerIDKind), port)
	d.rdvSvc = p2p.NewRendezvousService(d.rdvPeer, 2*time.Second)
	d.rdvDsc = p2p.NewDiscoveryService(d.rdvPeer)
	d.rdvPeer.Start()
	t.Cleanup(func() { _ = d.rdvPeer.Close() })

	d.gid = d.gen.New(p2p.GroupIDKind)
	return d
}

func (d *deployment) addPeer(t *testing.T, i int) *BPeer {
	t.Helper()
	name := fmt.Sprintf("bp%d", i)
	port, err := d.net.NewPort(name)
	if err != nil {
		t.Fatalf("port %s: %v", name, err)
	}
	mkHandler := d.handler
	if mkHandler == nil {
		mkHandler = echoHandler
	}
	bp, err := New(port, Config{
		Name:              name,
		Rank:              int64(i + 1),
		GroupID:           d.gid,
		GroupName:         "StudentManagement",
		Signature:         studentSig(),
		QoS:               qos.Profile{LatencyMillis: 5, Reliability: 0.99, Availability: 0.99},
		RendezvousAddr:    "rdv",
		Handler:           mkHandler(name),
		IDGen:             d.gen,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  80 * time.Millisecond,
		ElectionTimeout:   40 * time.Millisecond,
		LeaseInterval:     200 * time.Millisecond,
		ReadOnlyOps:       d.readOps,
	})
	if err != nil {
		t.Fatalf("new bpeer %s: %v", name, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := bp.Start(ctx); err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	t.Cleanup(func() { _ = bp.Close() })
	d.peers = append(d.peers, bp)
	return bp
}

// waitCoordinator blocks until every live peer in the list agrees on a
// coordinator and returns it.
func waitCoordinator(t *testing.T, peers []*BPeer, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		coord := peers[0].Coordinator()
		if coord != "" {
			agreed := true
			for _, p := range peers[1:] {
				if p.Coordinator() != coord {
					agreed = false
					break
				}
			}
			if agreed {
				return coord
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("peers never agreed on a coordinator")
	return ""
}

// rawCall sends a service request directly over a fresh client peer.
func (d *deployment) rawCall(t *testing.T, pipe *p2p.PipeAdvertisement, op string, payload []byte) (string, string, []byte) {
	t.Helper()
	port, err := d.net.NewPort("client-" + op + "-" + string(pipe.PipeID))
	if err != nil {
		t.Fatalf("client port: %v", err)
	}
	client := p2p.NewPeer("client", d.gen.New(p2p.PeerIDKind), port)
	client.Start()
	t.Cleanup(func() { _ = client.Close() })
	pipes := p2p.NewPipeService(client, d.gen)

	req, err := EncodeRequest(op, payload, "")
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := pipes.Call(ctx, pipe, req)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	status, coord, _, errMsg, out, err := DecodeResponse(resp)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if status == statusError {
		t.Fatalf("error response: %s", errMsg)
	}
	return status, coord, out
}

func TestSemanticAdvertisementRoundTrip(t *testing.T) {
	EnsureAdvTypes()
	adv := NewSemanticAdvertisement("urn:jxta:group-1", "StudentManagement", studentSig(),
		qos.Profile{LatencyMillis: 5, CostPerCall: 0.1, Reliability: 0.99, Availability: 0.999})
	raw, err := adv.MarshalAdv()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	parsed, err := p2p.ParseAdvertisement(raw)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	back, ok := parsed.(*SemanticAdvertisement)
	if !ok {
		t.Fatalf("parsed type %T", parsed)
	}
	if back.GID != adv.GID || back.Action != adv.Action {
		t.Errorf("mismatch: %+v", back)
	}
	if !back.Signature().Equal(adv.Signature()) {
		t.Errorf("signature lost: %+v vs %+v", back.Signature(), adv.Signature())
	}
	if back.QoS != adv.QoS {
		t.Errorf("qos lost: %+v vs %+v", back.QoS, adv.QoS)
	}
	if got := back.Attributes()["action"]; got != adv.Action {
		t.Errorf("action attribute = %q", got)
	}
}

func TestBPeerConfigValidation(t *testing.T) {
	net := simnet.NewNetwork(simnet.WithLatency(simnet.ZeroLatency()))
	t.Cleanup(func() { _ = net.Close() })
	port, err := net.NewPort("x")
	if err != nil {
		t.Fatalf("port: %v", err)
	}
	if _, err := New(port, Config{GroupID: "g", RendezvousAddr: "r"}); err == nil {
		t.Error("expected error without handler")
	}
	if _, err := New(port, Config{Handler: echoHandler("x"), RendezvousAddr: "r"}); err == nil {
		t.Error("expected error without group ID")
	}
	if _, err := New(port, Config{Handler: echoHandler("x"), GroupID: "g"}); err == nil {
		t.Error("expected error without rendezvous")
	}
}

func TestSingleBPeerBecomesCoordinatorAndServes(t *testing.T) {
	d := newDeployment(t, 1)
	bp := d.peers[0]
	waitCoordinator(t, d.peers, 3*time.Second)
	if !bp.IsCoordinator() {
		t.Fatal("single replica should be coordinator")
	}
	status, _, out := d.rawCall(t, bp.ServicePipe(), "StudentInformation", []byte("S1"))
	if status != statusOK {
		t.Fatalf("status = %s", status)
	}
	if string(out) != "bp0:StudentInformation:S1" {
		t.Errorf("out = %q", out)
	}
}

func TestGroupElectsHighestRankAndRedirects(t *testing.T) {
	d := newDeployment(t, 3)
	coord := waitCoordinator(t, d.peers, 3*time.Second)
	if coord != d.peers[2].Addr() {
		t.Fatalf("coordinator = %s, want %s (highest rank)", coord, d.peers[2].Addr())
	}
	// A request to a non-coordinator must redirect.
	status, redirect, _ := d.rawCall(t, d.peers[0].ServicePipe(), "Op", nil)
	if status != statusRedirect {
		t.Fatalf("status = %s, want redirect", status)
	}
	if redirect != coord {
		t.Errorf("redirect = %s, want %s", redirect, coord)
	}
	// A request to the coordinator is served.
	status, _, out := d.rawCall(t, d.peers[2].ServicePipe(), "Op", []byte("x"))
	if status != statusOK || string(out) != "bp2:Op:x" {
		t.Errorf("status=%s out=%q", status, out)
	}
}

func TestCoordinatorFailoverElectsNext(t *testing.T) {
	d := newDeployment(t, 3)
	waitCoordinator(t, d.peers, 3*time.Second)

	// Crash the coordinator (rank 3).
	if err := d.peers[2].Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	survivors := d.peers[:2]
	deadline := time.Now().Add(5 * time.Second)
	want := d.peers[1].Addr() // rank 2 takes over
	for time.Now().Before(deadline) {
		if survivors[0].Coordinator() == want && survivors[1].Coordinator() == want {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if survivors[0].Coordinator() != want || survivors[1].Coordinator() != want {
		t.Fatalf("survivors disagree: %s / %s, want %s",
			survivors[0].Coordinator(), survivors[1].Coordinator(), want)
	}
	// The new coordinator serves.
	status, _, out := d.rawCall(t, d.peers[1].ServicePipe(), "Op", []byte("y"))
	if status != statusOK || string(out) != "bp1:Op:y" {
		t.Errorf("status=%s out=%q", status, out)
	}
}

func TestSemanticAdvPublishedAtRendezvous(t *testing.T) {
	d := newDeployment(t, 2)
	waitCoordinator(t, d.peers, 3*time.Second)
	advs := d.rdvDsc.GetLocalAdvertisements(SemanticAdvType, "action", ontology.ConceptStudentInformation)
	if len(advs) != 1 {
		t.Fatalf("rendezvous cache has %d semantic advs, want 1", len(advs))
	}
	if advs[0].AdvID() != d.gid {
		t.Errorf("adv GID = %s, want %s", advs[0].AdvID(), d.gid)
	}
}

func TestQueryCoordinatorFromMemberAndCoordinator(t *testing.T) {
	d := newDeployment(t, 2)
	coord := waitCoordinator(t, d.peers, 3*time.Second)

	port, err := d.net.NewPort("querier")
	if err != nil {
		t.Fatalf("port: %v", err)
	}
	qp := p2p.NewPeer("querier", d.gen.New(p2p.PeerIDKind), port)
	qp.Start()
	t.Cleanup(func() { _ = qp.Close() })
	res := p2p.NewResolverOn(qp, ProtoBinding)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	// Ask the non-coordinator: get address only.
	gotCoord, pipeID, err := QueryCoordinator(ctx, res, d.peers[0].Addr())
	if err != nil {
		t.Fatalf("query member: %v", err)
	}
	if gotCoord != coord || pipeID != "" {
		t.Errorf("member answer = %s/%s, want %s/<empty>", gotCoord, pipeID, coord)
	}
	// Ask the coordinator: get address and pipe.
	gotCoord, pipeID, err = QueryCoordinator(ctx, res, coord)
	if err != nil {
		t.Fatalf("query coordinator: %v", err)
	}
	if gotCoord != coord || pipeID != d.peers[1].ServicePipe().PipeID {
		t.Errorf("coordinator answer = %s/%s", gotCoord, pipeID)
	}
}

func TestRequestResponseCodecRoundTrip(t *testing.T) {
	req, err := EncodeRequest("Op", []byte("<payload/>"), "")
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	// Feed through the serve-side struct by decoding as peerRequest.
	var pr peerRequest
	if derr := decodeXML(req, &pr); derr != nil {
		t.Fatalf("decode request: %v", derr)
	}
	if pr.Op != "Op" || string(pr.Payload) != "<payload/>" {
		t.Errorf("request = %+v", pr)
	}

	status, coord, pipe, errMsg, payload, err := DecodeResponse(mustXML(t, peerResponse{
		Status: statusOK, Payload: []byte("data"),
	}))
	if err != nil || status != statusOK || string(payload) != "data" || coord != "" || pipe != "" || errMsg != "" {
		t.Errorf("decoded = %s %s %s %s %q %v", status, coord, pipe, errMsg, payload, err)
	}
	if _, _, _, _, _, err := DecodeResponse([]byte("garbage")); err == nil {
		t.Error("expected decode error")
	}
}

func TestBPeerDoubleCloseAndRestartRejected(t *testing.T) {
	d := newDeployment(t, 1)
	bp := d.peers[0]
	if err := bp.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := bp.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := bp.Start(context.Background()); err == nil {
		t.Error("start after close should fail")
	}
}

func TestLoadSharingReplicaServesWithoutBeingCoordinator(t *testing.T) {
	d := newDeployment(t, 0)
	// Build two load-sharing replicas by hand.
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("ls%d", i)
		port, err := d.net.NewPort(name)
		if err != nil {
			t.Fatalf("port: %v", err)
		}
		bp, err := New(port, Config{
			Name:              name,
			Rank:              int64(i + 1),
			GroupID:           d.gid,
			GroupName:         "Shared",
			Signature:         studentSig(),
			RendezvousAddr:    "rdv",
			Handler:           echoHandler(name),
			IDGen:             d.gen,
			HeartbeatInterval: 20 * time.Millisecond,
			HeartbeatTimeout:  80 * time.Millisecond,
			ElectionTimeout:   40 * time.Millisecond,
			LeaseInterval:     200 * time.Millisecond,
			LoadSharing:       true,
		})
		if err != nil {
			t.Fatalf("new: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := bp.Start(ctx); err != nil {
			cancel()
			t.Fatalf("start: %v", err)
		}
		cancel()
		t.Cleanup(func() { _ = bp.Close() })
		d.peers = append(d.peers, bp)
	}
	waitCoordinator(t, d.peers, 3*time.Second)

	// The NON-coordinator must serve directly (no redirect).
	var follower *BPeer
	for _, p := range d.peers {
		if !p.IsCoordinator() {
			follower = p
		}
	}
	if follower == nil {
		t.Fatal("no follower found")
	}
	status, _, out := d.rawCall(t, follower.ServicePipe(), "Op", []byte("x"))
	if status != statusOK {
		t.Fatalf("status = %s, want ok (load-sharing follower serves)", status)
	}
	if string(out) != follower.Name()+":Op:x" {
		t.Errorf("out = %q", out)
	}
	// The advertisement carries the policy.
	adv := follower.SemanticAdvertisement()
	if adv.EffectivePolicy() != PolicyLoadSharing {
		t.Errorf("policy = %q", adv.EffectivePolicy())
	}
	if adv.Attributes()["policy"] != PolicyLoadSharing {
		t.Errorf("policy attribute = %q", adv.Attributes()["policy"])
	}
}

func TestQueryServicePipe(t *testing.T) {
	d := newDeployment(t, 2)
	waitCoordinator(t, d.peers, 3*time.Second)

	port, err := d.net.NewPort("pipequerier")
	if err != nil {
		t.Fatalf("port: %v", err)
	}
	qp := p2p.NewPeer("pipequerier", d.gen.New(p2p.PeerIDKind), port)
	qp.Start()
	t.Cleanup(func() { _ = qp.Close() })
	res := p2p.NewResolverOn(qp, ProtoBinding)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	pipe, err := QueryServicePipe(ctx, res, d.peers[0].Addr())
	if err != nil {
		t.Fatalf("query pipe: %v", err)
	}
	if pipe.Addr != d.peers[0].Addr() || pipe.PipeID != d.peers[0].ServicePipe().PipeID {
		t.Errorf("pipe = %+v", pipe)
	}
}

func TestCoordinatedPolicyIsDefaultInAdvertisement(t *testing.T) {
	adv := NewSemanticAdvertisement("urn:g", "G", studentSig(), qos.Profile{})
	if adv.EffectivePolicy() != PolicyCoordinated {
		t.Errorf("default policy = %q", adv.EffectivePolicy())
	}
	raw, err := adv.MarshalAdv()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	back := &SemanticAdvertisement{}
	if uerr := back.UnmarshalAdv(raw); uerr != nil {
		t.Fatalf("unmarshal: %v", uerr)
	}
	if back.EffectivePolicy() != PolicyCoordinated {
		t.Errorf("round-trip policy = %q", back.EffectivePolicy())
	}
	adv.Policy = PolicyLoadSharing
	raw, err = adv.MarshalAdv()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	back = &SemanticAdvertisement{}
	if err := back.UnmarshalAdv(raw); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.EffectivePolicy() != PolicyLoadSharing {
		t.Errorf("round-trip load-sharing policy = %q", back.EffectivePolicy())
	}
}
