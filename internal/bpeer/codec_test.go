package bpeer

import (
	"encoding/xml"
	"testing"
)

// decodeXML and mustXML are small test helpers shared by the codec
// tests.
func decodeXML(data []byte, v any) error { return xml.Unmarshal(data, v) }

func mustXML(t *testing.T, v any) []byte {
	t.Helper()
	data, err := xml.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return data
}
