package bpeer

import (
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"strings"

	"whisper/internal/p2p"
	"whisper/internal/replog"
	"whisper/internal/trace"
)

// Journal resolver handlers (registered on ProtoBinding alongside the
// coordinator/pipe handlers).
const (
	// replogPipeHandler answers this replica's journal-replication pipe
	// location ("addr pipeID").
	replogPipeHandler = "bpeer.replog.pipe"
	// replogStateHandler answers the full encoded journal for state
	// transfer (election catch-up, post-restart rejoin).
	replogStateHandler = "bpeer.replog.state"
	// replogResolveHandler resolves a pending entry at its origin: the
	// origin atomically aborts a still-Prepared claim and reports the
	// final status (with the cached reply when executed).
	replogResolveHandler = "bpeer.replog.resolve"
	// replogStatusHandler answers a human-readable journal summary for
	// operator tooling (peerctl journal).
	replogStatusHandler = "bpeer.replog.status"
)

// ErrMsgOutcomeUnknown is returned when a keyed operation's outcome
// cannot be determined (coordinator crashed mid-execution, or the
// preparing origin is unreachable). It is a retryable infrastructure
// error: the client keeps its idempotency key and retries, and the
// journal guarantees the operation never runs twice.
const ErrMsgOutcomeUnknown = "operation outcome unknown"

// Replicated journal message kinds.
const (
	replKindPrepare = "prepare"
	replKindCommit  = "commit"
	replKindAbort   = "abort"
)

// replMsg is the replication-pipe payload carrying one journal entry.
type replMsg struct {
	XMLName xml.Name     `xml:"ReplogMsg"`
	Kind    string       `xml:"Kind,attr"`
	Entry   replog.Entry `xml:"Entry"`
}

// resolveAnswer is the reply to a replogResolveHandler query.
type resolveAnswer struct {
	XMLName xml.Name `xml:"ResolveAnswer"`
	Status  int      `xml:"Status,attr"`
	AppErr  string   `xml:"AppErr,attr,omitempty"`
	Reply   []byte   `xml:"Reply,omitempty"`
}

// Journal returns the replica's operation journal (nil when journaling
// is disabled via NoJournal or LoadSharing).
func (b *BPeer) Journal() *replog.Journal { return b.journal }

// --- follower apply loop ------------------------------------------------

// replogLoop applies replicated journal entries arriving on the
// dedicated replication pipe and acks each one (the coordinator's
// CallAll fan-out waits for these acks before answering the client).
func (b *BPeer) replogLoop() {
	defer close(b.replogDone)
	for {
		select {
		case pm := <-b.replogIn.Messages():
			b.applyReplicated(pm)
		case <-b.replogIn.Done():
			return
		}
	}
}

func (b *BPeer) applyReplicated(pm p2p.PipeMessage) {
	span := b.cfg.Tracer.StartRemote(pm.Trace, "replog.apply")
	span.SetAttr("peer", b.cfg.Name)
	var msg replMsg
	if err := xml.Unmarshal(pm.Payload, &msg); err != nil {
		span.EndWith(err)
		return
	}
	span.SetAttr("kind", msg.Kind)
	span.SetAttr("key", msg.Entry.Key)
	switch msg.Kind {
	case replKindPrepare:
		b.journal.ApplyPrepare(msg.Entry)
	case replKindCommit:
		b.journal.ApplyCommit(msg.Entry)
	case replKindAbort:
		b.journal.ApplyAbort(msg.Entry)
	}
	span.End()
	_ = b.replogIn.Reply(pm, []byte(statusOK))
}

// --- coordinator replication --------------------------------------------

// replicate fans one journal entry out to every live follower and waits
// for their acks (bounded by ctx). Unreachable followers are skipped —
// they catch up via state transfer when they rejoin; the entry is
// already durable in the coordinator's own journal.
func (b *BPeer) replicate(ctx context.Context, kind, key string) {
	entry, ok := b.journal.Entry(key)
	if !ok {
		return
	}
	ctx, span := b.cfg.Tracer.StartSpan(ctx, "replog.replicate")
	span.SetAttr("kind", kind)
	span.SetAttr("key", key)
	defer span.End()

	advs := b.followerReplogPipes(ctx)
	span.SetAttr("followers", fmt.Sprintf("%d", len(advs)))
	if len(advs) == 0 {
		return
	}
	payload, err := xml.Marshal(replMsg{Kind: kind, Entry: entry})
	if err != nil {
		return
	}
	for _, r := range b.pipes.CallAll(ctx, advs, payload) {
		if r.Err != nil {
			// The follower is likely down; drop its cached pipe so the
			// next replication re-resolves (it gets a fresh pipe ID on
			// restart).
			b.replMu.Lock()
			delete(b.replAdvs, r.Addr)
			b.replMu.Unlock()
			b.journal.Counters().Add("replicate.miss", 1)
		}
	}
}

// followerReplogPipes resolves the replication-pipe advertisements of
// every live group member except self, with a per-address cache.
func (b *BPeer) followerReplogPipes(ctx context.Context) []*p2p.PipeAdvertisement {
	members := b.electionMembers()
	self := b.peer.Addr()
	var advs []*p2p.PipeAdvertisement
	for _, m := range members {
		if m.Addr == self {
			continue
		}
		b.replMu.Lock()
		adv := b.replAdvs[m.Addr]
		b.replMu.Unlock()
		if adv == nil {
			payload, err := b.bind.Query(ctx, m.Addr, replogPipeHandler, nil)
			if err != nil {
				continue
			}
			fields := strings.Fields(string(payload))
			if len(fields) != 2 {
				continue
			}
			adv = &p2p.PipeAdvertisement{
				PipeID: p2p.ID(fields[1]),
				Kind:   p2p.PropagatePipe,
				Addr:   fields[0],
			}
			b.replMu.Lock()
			b.replAdvs[m.Addr] = adv
			b.replMu.Unlock()
		}
		advs = append(advs, adv)
	}
	return advs
}

// --- journaled request serving ------------------------------------------

// journaledResponse serves one keyed request through the journal: claim
// the key (dedup), replicate the claim, execute exactly once, replicate
// the outcome. The caller sends the response and ends the request span;
// failingOver asks it to fail-stop the replica after replying.
func (b *BPeer) journaledResponse(span *trace.Span, req peerRequest) (resp peerResponse, failingOver bool) {
	resp = peerResponse{Status: statusError}
	ctx, cancel := context.WithTimeout(trace.ContextWith(b.lifecycleCtx(), span), handlerTimeout)
	defer cancel()

	digest := replog.Digest(req.Payload)
	res := b.journal.Begin(req.Key, req.Op, digest)
	if res.Decision == replog.BeginPending {
		res = b.resolvePending(ctx, req, res)
	}
	switch res.Decision {
	case replog.BeginCached:
		span.SetAttr("replog", "cached")
		if res.AppErr != "" {
			resp.Error = res.AppErr
		} else {
			resp.Status = statusOK
			resp.Payload = res.Reply
		}
		return resp, false
	case replog.BeginConflict:
		resp.Error = fmt.Sprintf("idempotency key %s reused with a different payload", req.Key)
		return resp, false
	case replog.BeginPoisoned:
		span.SetAttr("replog", "poisoned")
		resp.Error = ErrMsgOutcomeUnknown
		return resp, false
	case replog.BeginNew:
		// fall through to execution
	}

	// Replicate the PREPARE before executing, so a successor learns the
	// claim even if we die mid-execution (and must then resolve it with
	// us — or poison it — before the key can run anywhere).
	replCtx, replCancel := context.WithTimeout(ctx, b.cfg.HeartbeatTimeout)
	b.replicate(replCtx, replKindPrepare, req.Key)
	replCancel()

	if err := b.journal.MarkExecuting(req.Key); err != nil {
		// Lost ownership between Begin and here (a resolver abort from
		// a deposed-coordinator race): never execute.
		resp.Error = ErrMsgOutcomeUnknown
		return resp, false
	}

	hctx, hspan := b.cfg.Tracer.StartSpan(ctx, "backend")
	out, err := b.cfg.Handler.Invoke(hctx, req.Op, req.Payload)
	hspan.EndWith(err)
	if err != nil {
		if b.cfg.FailStop != nil && b.cfg.FailStop(err) {
			// The fail-stop contract means the backend operation did
			// not execute: abort the claim (locally and on the
			// followers) so a surviving replica can re-own the key,
			// then take this replica offline.
			_ = b.journal.MarkAborted(req.Key)
			abortCtx, abortCancel := context.WithTimeout(b.lifecycleCtx(), b.cfg.HeartbeatTimeout)
			b.replicate(abortCtx, replKindAbort, req.Key)
			abortCancel()
			resp.Error = ErrMsgFailingOver
			return resp, true
		}
		if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Interrupted mid-execution (the replica is going down or
			// the handler timed out): the outcome is unknown. Leave the
			// entry Executing — the post-restart revisit poisons it —
			// and answer retryably without caching anything.
			resp.Error = ErrMsgOutcomeUnknown
			return resp, false
		}
		// A deterministic application error is an outcome: journal it
		// so every retry replays the same rejection instead of
		// re-executing.
		if mErr := b.journal.MarkExecuted(req.Key, nil, err.Error()); mErr != nil {
			resp.Error = ErrMsgOutcomeUnknown
			return resp, false
		}
		b.commitAndReplicate(ctx, req.Key)
		resp.Error = err.Error()
		return resp, false
	}
	if mErr := b.journal.MarkExecuted(req.Key, out, ""); mErr != nil {
		resp.Error = ErrMsgOutcomeUnknown
		return resp, false
	}
	b.commitAndReplicate(ctx, req.Key)
	resp.Status = statusOK
	resp.Payload = out
	return resp, false
}

// commitAndReplicate replicates the COMMIT (with the cached reply) to
// the followers and finalises the local entry. The fan-out is bounded
// but runs before the client ack: a retry hitting a failed-over
// follower finds the cached reply there.
func (b *BPeer) commitAndReplicate(ctx context.Context, key string) {
	if err := b.journal.MarkCommitted(key); err != nil {
		return
	}
	replCtx, cancel := context.WithTimeout(ctx, b.cfg.HeartbeatTimeout)
	defer cancel()
	b.replicate(replCtx, replKindCommit, key)
}

// resolvePending resolves a key prepared by another coordinator: ask
// the origin (which atomically aborts its claim if it never started
// executing). The origin's durable journal survives its crash, so an
// unreachable origin keeps the key retryably unknown until it rejoins.
func (b *BPeer) resolvePending(ctx context.Context, req peerRequest, pending replog.BeginResult) replog.BeginResult {
	ctx, span := b.cfg.Tracer.StartSpan(ctx, "replog.resolve")
	span.SetAttr("key", req.Key)
	span.SetAttr("origin", pending.Origin)
	defer span.End()

	addr := b.originAddr(ctx, pending)
	if addr == "" || addr == b.peer.Addr() {
		// The origin is gone from the group view (or is ourselves with
		// a stale entry): we cannot prove the outcome.
		span.SetAttr("result", "unreachable")
		return replog.BeginResult{Decision: replog.BeginPoisoned, Seq: pending.Seq}
	}
	rctx, cancel := context.WithTimeout(ctx, b.cfg.HeartbeatTimeout)
	payload, err := b.bind.Query(rctx, addr, replogResolveHandler, []byte(req.Key))
	cancel()
	if err != nil {
		// Origin unreachable: do NOT poison — it may rejoin with its
		// durable journal and prove the outcome. Retryable for now.
		span.SetAttr("result", "query-failed")
		return replog.BeginResult{Decision: replog.BeginPoisoned, Seq: pending.Seq}
	}
	var ans resolveAnswer
	if err := xml.Unmarshal(payload, &ans); err != nil {
		span.SetAttr("result", "bad-answer")
		return replog.BeginResult{Decision: replog.BeginPoisoned, Seq: pending.Seq}
	}
	switch replog.Status(ans.Status) {
	case replog.StatusExecuted, replog.StatusCommitted:
		span.SetAttr("result", "adopted")
		b.journal.AdoptReply(req.Key, ans.Reply, ans.AppErr)
		return replog.BeginResult{Decision: replog.BeginCached, Seq: pending.Seq, Reply: ans.Reply, AppErr: ans.AppErr}
	case replog.StatusAborted:
		// The origin provably never executed it: take ownership.
		span.SetAttr("result", "reowned")
		if err := b.journal.Reown(req.Key); err != nil {
			return replog.BeginResult{Decision: replog.BeginPoisoned, Seq: pending.Seq}
		}
		return replog.BeginResult{Decision: replog.BeginNew, Seq: pending.Seq}
	default:
		// Executing or poisoned at the origin: permanently unknown.
		span.SetAttr("result", "poisoned")
		b.journal.MarkPoisoned(req.Key)
		return replog.BeginResult{Decision: replog.BeginPoisoned, Seq: pending.Seq}
	}
}

// originAddr locates the preparing origin: prefer the current
// rendezvous view (the origin may have restarted on a fresh transport),
// fall back to the address stored in the entry.
func (b *BPeer) originAddr(ctx context.Context, pending replog.BeginResult) string {
	advs, err := b.rdv.Members(ctx, b.cfg.GroupID)
	if err == nil {
		for _, adv := range advs {
			if adv.Name == pending.Origin {
				return adv.Addr
			}
		}
	}
	return pending.OriginAddr
}

// --- catch-up / state transfer ------------------------------------------

// journalBarrier is the election catch-up barrier: before a freshly
// elected coordinator announces itself, it state-transfers the journal
// from the surviving members so it knows every committed reply and
// every pending claim. Best-effort by design — unreachable members are
// crash-stopped and re-merge their durable journals when they rejoin —
// so it never fails the election.
func (b *BPeer) journalBarrier() error {
	if b.journal == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(b.lifecycleCtx(), b.cfg.HeartbeatTimeout)
	defer cancel()
	b.journalCatchUp(ctx)
	return nil
}

// journalCatchUp merges the journal state of every reachable group
// member into the local journal.
func (b *BPeer) journalCatchUp(ctx context.Context) {
	ctx, span := b.cfg.Tracer.StartSpan(ctx, "replog.catchup")
	span.SetAttr("peer", b.cfg.Name)
	defer span.End()

	advs, err := b.rdv.Members(ctx, b.cfg.GroupID)
	if err != nil {
		span.SetAttr("result", "no-members")
		return
	}
	self := b.peer.Addr()
	var targets []string
	for _, adv := range advs {
		if adv.Addr != self {
			targets = append(targets, adv.Addr)
		}
	}
	if len(targets) == 0 {
		span.SetAttr("result", "alone")
		return
	}
	ch, err := b.bind.Propagate(targets, replogStateHandler, nil)
	if err != nil {
		span.SetAttr("result", "propagate-failed")
		return
	}
	merged := 0
	for i := 0; i < len(targets); i++ {
		select {
		case resp := <-ch:
			if resp.Err != nil || resp.Payload == nil {
				continue
			}
			if n, err := b.journal.MergeState(resp.Payload); err == nil {
				merged += n
			}
		case <-ctx.Done():
			span.SetAttr("result", "timeout")
			span.SetAttr("merged", fmt.Sprintf("%d", merged))
			return
		}
	}
	span.SetAttr("merged", fmt.Sprintf("%d", merged))
}

// --- resolver handlers ---------------------------------------------------

// answerReplogPipe serves this replica's replication-pipe location.
func (b *BPeer) answerReplogPipe(_ string, _ []byte) ([]byte, error) {
	if b.journal == nil {
		return nil, fmt.Errorf("journal disabled")
	}
	return []byte(b.peer.Addr() + " " + string(b.replogIn.Advertisement().PipeID)), nil
}

// answerReplogState serves the encoded journal for state transfer.
func (b *BPeer) answerReplogState(_ string, _ []byte) ([]byte, error) {
	if b.journal == nil {
		return nil, fmt.Errorf("journal disabled")
	}
	return b.journal.EncodeState()
}

// answerReplogResolve resolves one key for a successor coordinator,
// atomically aborting a still-Prepared local claim.
func (b *BPeer) answerReplogResolve(_ string, payload []byte) ([]byte, error) {
	if b.journal == nil {
		return nil, fmt.Errorf("journal disabled")
	}
	key := string(payload)
	st := b.journal.Resolve(key)
	ans := resolveAnswer{Status: int(st)}
	if st == replog.StatusExecuted || st == replog.StatusCommitted {
		if reply, appErr, ok := b.journal.CachedReply(key); ok {
			ans.Reply = reply
			ans.AppErr = appErr
		}
	}
	return xml.Marshal(ans)
}

// answerReplogStatus serves a human-readable journal summary.
func (b *BPeer) answerReplogStatus(_ string, _ []byte) ([]byte, error) {
	if b.journal == nil {
		return nil, fmt.Errorf("journal disabled")
	}
	st := b.journal.Stats()
	var sb strings.Builder
	fmt.Fprintf(&sb, "peer=%s coordinator=%v next_seq=%d highest_committed=%d live=%d snapshotted=%d snapshot_up_to=%d\n",
		b.cfg.Name, b.elect.IsCoordinator(), st.NextSeq, st.HighestCommitted, st.Live, st.Snapshotted, st.SnapshotUpTo)
	for status, n := range st.ByStatus {
		fmt.Fprintf(&sb, "status %s: %d\n", status, n)
	}
	for _, line := range b.journal.StatusLines() {
		sb.WriteString(line)
		sb.WriteString("\n")
	}
	return []byte(sb.String()), nil
}

// QueryJournal asks a replica for its journal summary (the peerctl
// "journal" subcommand).
func QueryJournal(ctx context.Context, r *p2p.Resolver, memberAddr string) (string, error) {
	payload, err := r.Query(ctx, memberAddr, replogStatusHandler, nil)
	if err != nil {
		return "", err
	}
	return string(payload), nil
}
