package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"whisper/internal/bpeer"
	"whisper/internal/faults"
	"whisper/internal/ontology"
	"whisper/internal/wsdl"
)

// claimsWSDL builds a second, unrelated semantic service description.
func claimsWSDL() *wsdl.Definitions {
	d := wsdl.New("ClaimProcessing", "http://example.org/services/claims")
	d.DeclareNamespace("b2b", ontology.B2BNS)
	itf := d.AddInterface("ClaimPort")
	itf.AddOperation("ProcessClaim", "b2b:ClaimProcessing",
		[]wsdl.MessageRef{wsdl.In("claim", "b2b:ClaimID")},
		[]wsdl.MessageRef{wsdl.Out("status", "b2b:ClaimStatus")},
	)
	return d
}

func claimSig() ontology.Signature {
	return ontology.Signature{
		Action:  ontology.ConceptClaimProcessing,
		Inputs:  []string{ontology.ConceptClaimID},
		Outputs: []string{ontology.ConceptClaimStatus},
	}
}

// TestTwoServicesDoNotCrossRoute deploys the student and claims
// domains side by side and verifies each service only ever reaches its
// own semantically matching group.
func TestTwoServicesDoNotCrossRoute(t *testing.T) {
	d := newSimDeployment(t)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	deployStudentGroup(t, d, 2)
	if _, err := d.DeployGroup(ctx, GroupSpec{
		Name:      "Claims",
		Signature: claimSig(),
		Handler: bpeer.HandlerFunc(func(_ context.Context, _ string, _ []byte) ([]byte, error) {
			return []byte("<ClaimStatus>approved</ClaimStatus>"), nil
		}),
		Count: 2,
	}); err != nil {
		t.Fatalf("deploy claims: %v", err)
	}

	students, err := d.DeployService(wsdl.StudentManagement(), ServiceOptions{})
	if err != nil {
		t.Fatalf("deploy students: %v", err)
	}
	claims, err := d.DeployService(claimsWSDL(), ServiceOptions{})
	if err != nil {
		t.Fatalf("deploy claims service: %v", err)
	}

	out, err := students.Invoke(ctx, "StudentInformation", studentRequestXML("S0005"))
	if err != nil {
		t.Fatalf("student invoke: %v", err)
	}
	if !strings.Contains(string(out), "<ID>S0005</ID>") {
		t.Errorf("student out = %q", out)
	}
	out, err = claims.Invoke(ctx, "ProcessClaim", []byte("<ProcessClaim><ClaimID>C1</ClaimID></ProcessClaim>"))
	if err != nil {
		t.Fatalf("claim invoke: %v", err)
	}
	if !strings.Contains(string(out), "approved") {
		t.Errorf("claim out = %q", out)
	}
	// Cross-check: the student service must not route to Claims even
	// if asked for an operation whose payload looks like a claim.
	if _, err := claims.Invoke(ctx, "StudentInformation", studentRequestXML("S1")); err == nil {
		t.Error("claims service should not expose the student operation")
	}
}

// TestSoakUnderRepeatedCrashes drives load while a fault schedule
// crashes two coordinators in sequence; the service must keep
// answering throughout (with elevated latency during elections).
func TestSoakUnderRepeatedCrashes(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	d := newSimDeployment(t)
	g := deployStudentGroup(t, d, 4)
	svc, err := d.DeployService(wsdl.StudentManagement(), ServiceOptions{})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := svc.Invoke(ctx, "StudentInformation", studentRequestXML("S0001")); err != nil {
		t.Fatalf("warm-up: %v", err)
	}

	sched := faults.NewSchedule()
	sched.Add(100*time.Millisecond, "crash coordinator #1", func() error {
		_, err := g.CrashCoordinator()
		return err
	})
	sched.Add(700*time.Millisecond, "crash coordinator #2", func() error {
		_, err := g.CrashCoordinator()
		return err
	})
	done := sched.RunAsync(ctx)

	failures := 0
	for i := 0; i < 100; i++ {
		if _, err := svc.Invoke(ctx, "StudentInformation", studentRequestXML("S0002")); err != nil {
			failures++
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := <-done; err != nil {
		t.Fatalf("schedule: %v", err)
	}
	for _, ev := range sched.Events() {
		if ev.Err != nil {
			t.Fatalf("fault %q failed: %v", ev.Label, ev.Err)
		}
	}
	if failures > 0 {
		t.Errorf("%d/100 requests failed across two coordinator crashes", failures)
	}
	// Two survivors left; the group still has a coordinator.
	if g.Coordinator() == "" {
		t.Error("no coordinator after soak")
	}
	if got := len(g.Peers()); got != 2 {
		t.Errorf("surviving peers = %d, want 2", got)
	}
}
