package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"whisper/internal/bpeer"
	"whisper/internal/simnet"
	"whisper/internal/wsdl"
)

// newShardedDeployment builds a deployment whose discovery index is
// spread over n gossip-replicated shards (shard 0 riding the
// rendezvous peer).
func newShardedDeployment(t *testing.T, n int) *Deployment {
	t.Helper()
	net := simnet.NewNetwork(simnet.WithLatency(simnet.ZeroLatency()), simnet.WithSeed(1))
	t.Cleanup(func() { _ = net.Close() })
	timings := fastTimings()
	timings.GossipInterval = 5 * time.Millisecond
	d, err := NewDeployment(Config{
		Transport:     SimulatedTransport(net),
		Seed:          1,
		Timings:       timings,
		Shards:        n,
		ShardReplicas: 2,
	})
	if err != nil {
		t.Fatalf("deployment: %v", err)
	}
	t.Cleanup(func() { _ = d.Close() })
	return d
}

// waitAdvEverywhere polls until the semantic advertisement set is
// (in)visible on every *running* shard's local index.
func waitAdvEverywhere(t *testing.T, d *Deployment, name string, want bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, s := range d.Shards() {
			if !s.Running() {
				continue
			}
			visible := len(s.Discovery().GetLocalAdvertisements(
				bpeer.SemanticAdvType, "Name", name)) > 0
			if visible != want {
				all = false
				break
			}
		}
		if all {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("advertisement %q visible=%v never reached all running shards", name, want)
}

// TestShardedDeploymentDisseminates: a group's one-shot gossip publish
// at its owner shard spreads to every shard's ordinary discovery
// index, and the service keeps working end-to-end through the sharded
// discovery path.
func TestShardedDeploymentDisseminates(t *testing.T) {
	d := newShardedDeployment(t, 4)
	if got := len(d.ShardAddrs()); got != 4 {
		t.Fatalf("shard fleet = %d, want 4", got)
	}
	g := deployStudentGroup(t, d, 2)
	waitAdvEverywhere(t, d, g.Name(), true)

	svc, err := d.DeployService(wsdl.StudentManagement(), ServiceOptions{})
	if err != nil {
		t.Fatalf("deploy service: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	out, err := svc.Invoke(ctx, "StudentInformation", studentRequestXML("S0001"))
	if err != nil {
		t.Fatalf("invoke through sharded discovery: %v", err)
	}
	if !strings.Contains(string(out), "<ID>S0001</ID>") {
		t.Errorf("invoke out = %q", out)
	}
}

// TestShardCrashRestartRepopulates: a crashed shard restarts with an
// empty index and anti-entropy reconciliation refills it from the
// surviving fleet — without any republish from the group.
func TestShardCrashRestartRepopulates(t *testing.T) {
	d := newShardedDeployment(t, 4)
	g := deployStudentGroup(t, d, 2)
	waitAdvEverywhere(t, d, g.Name(), true)

	if err := d.CrashShard(2); err != nil {
		t.Fatalf("crash shard: %v", err)
	}
	if err := d.CrashShard(2); err == nil {
		t.Fatal("double crash not rejected")
	}
	if err := d.CrashShard(0); err == nil {
		t.Fatal("crashing the rendezvous shard not rejected")
	}
	// The fleet keeps serving (lease renewals route around the crash).
	waitAdvEverywhere(t, d, g.Name(), true)

	if err := d.RestartShard(2); err != nil {
		t.Fatalf("restart shard: %v", err)
	}
	s := d.Shards()[2]
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if len(s.Discovery().GetLocalAdvertisements(bpeer.SemanticAdvType, "Name", g.Name())) > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("restarted shard never repopulated via anti-entropy")
}

// TestShardedGroupCloseTombstones: the last replica leaving gracefully
// tombstones the group advertisement, and the tombstone spreads — the
// dead group disappears from every shard and stays dead.
func TestShardedGroupCloseTombstones(t *testing.T) {
	d := newShardedDeployment(t, 3)
	g := deployStudentGroup(t, d, 2)
	waitAdvEverywhere(t, d, g.Name(), true)

	if err := g.Close(); err != nil {
		t.Fatalf("close group: %v", err)
	}
	waitAdvEverywhere(t, d, g.Name(), false)
	// No resurrection: stale live copies must keep losing to the
	// tombstone even after further gossip rounds.
	time.Sleep(100 * time.Millisecond)
	for _, s := range d.Shards() {
		if got := len(s.Discovery().GetLocalAdvertisements(bpeer.SemanticAdvType, "Name", g.Name())); got != 0 {
			t.Errorf("shard %s resurrected the closed group (%d advs)", s.Name(), got)
		}
	}
}
