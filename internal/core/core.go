// Package core assembles the full Whisper architecture: a rendezvous
// peer, semantic b-peer groups, SWS-proxies and SOAP-fronted semantic
// Web services over a pluggable transport (the simulated LAN or real
// TCP). It is the facade the public whisper package re-exports.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"whisper/internal/bpeer"
	"whisper/internal/loadctl"
	"whisper/internal/ontology"
	"whisper/internal/p2p"
	"whisper/internal/proxy"
	"whisper/internal/qos"
	"whisper/internal/simnet"
	"whisper/internal/trace"
)

// TransportFactory opens a transport endpoint for a named component.
type TransportFactory func(name string) (simnet.Transport, error)

// SimulatedTransport returns a factory over a simulated network; the
// component name doubles as the address.
func SimulatedTransport(net *simnet.Network) TransportFactory {
	return func(name string) (simnet.Transport, error) { return net.NewPort(name) }
}

// TCPTransport returns a factory over real loopback TCP; each
// component gets its own listener on the host (use "127.0.0.1:0").
func TCPTransport(listenHost string) TransportFactory {
	return func(string) (simnet.Transport, error) { return simnet.NewTCPTransport(listenHost) }
}

// Timings bundles the protocol timeouts of a deployment. The zero
// value selects defaults suitable for LAN-scale latencies.
type Timings struct {
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	ElectionTimeout   time.Duration
	LeaseInterval     time.Duration
	RendezvousLease   time.Duration
	BindTimeout       time.Duration
	CallTimeout       time.Duration
	RetryDelay        time.Duration
	// RetryMaxDelay caps the proxy's exponential backoff; zero selects
	// the proxy default (16×RetryDelay).
	RetryMaxDelay time.Duration
	// BreakerThreshold opens a proxy's per-group circuit breaker after
	// this many consecutive infrastructure failures; zero selects the
	// proxy default (5), negative disables circuit breaking.
	BreakerThreshold int
	// BreakerCooldown is the open → half-open probe delay; zero
	// selects the proxy default (10×RetryDelay).
	BreakerCooldown time.Duration
	// GossipInterval / GossipReconcileInterval tune the shard fleet's
	// rumor and anti-entropy cadences; zero selects the gossip engine
	// defaults (25ms / 8×interval).
	GossipInterval          time.Duration
	GossipReconcileInterval time.Duration
}

func (t *Timings) applyDefaults() {
	if t.HeartbeatInterval <= 0 {
		t.HeartbeatInterval = 100 * time.Millisecond
	}
	if t.HeartbeatTimeout <= 0 {
		t.HeartbeatTimeout = 4 * t.HeartbeatInterval
	}
	if t.ElectionTimeout <= 0 {
		t.ElectionTimeout = 150 * time.Millisecond
	}
	if t.LeaseInterval <= 0 {
		t.LeaseInterval = time.Second
	}
	if t.RendezvousLease <= 0 {
		t.RendezvousLease = 3 * t.LeaseInterval
	}
	if t.BindTimeout <= 0 {
		t.BindTimeout = 500 * time.Millisecond
	}
	if t.CallTimeout <= 0 {
		t.CallTimeout = 2 * time.Second
	}
	if t.RetryDelay <= 0 {
		t.RetryDelay = 100 * time.Millisecond
	}
}

// Config assembles a Deployment.
type Config struct {
	// Transport opens endpoints; required.
	Transport TransportFactory
	// Ontology is the domain ontology; nil selects the combined
	// University+B2B ontology.
	Ontology *ontology.Ontology
	// Seed makes IDs deterministic when non-zero.
	Seed int64
	// Timings tunes protocol timeouts.
	Timings Timings
	// Tracing equips the deployment with a shared trace collector:
	// every peer (rendezvous, b-peers, proxies) and SOAP server records
	// spans into it, and peers answer remote trace dumps on the
	// "tracing" protocol. Off by default.
	Tracing bool
	// TraceCapacity bounds the trace ring; zero selects
	// trace.DefaultCapacity.
	TraceCapacity int
	// Shards deploys the discovery index over this many shard nodes
	// replicating advertisements via gossip: the rendezvous peer doubles
	// as shard 0 (group membership stays there), plus Shards-1 dedicated
	// shard peers. Zero keeps the paper's single-rendezvous layout.
	Shards int
	// ShardReplicas is how many ring owners each exact discovery query
	// consults; zero selects p2p.DefaultShardReplicas.
	ShardReplicas int
}

// Deployment is one Whisper installation: a rendezvous, any number of
// b-peer groups and SWS-proxy-backed services.
type Deployment struct {
	cfg      Config
	gen      *p2p.IDGen
	reasoner *ontology.Reasoner
	tracer   *trace.Tracer

	rdvPeer *p2p.Peer
	rdvSvc  *p2p.RendezvousService
	rdvDsc  *p2p.DiscoveryService

	// shards is the gossip-replicated discovery fleet (nil when
	// cfg.Shards == 0); shards[0] rides the rendezvous peer.
	shards     []*ShardNode
	shardAddrs []string

	mu       sync.Mutex
	groups   map[string]*Group
	services map[string]*Service
	closed   bool
}

// ShardNode is one discovery shard: a peer carrying a shard-local
// discovery index kept converged with the rest of the fleet by its
// gossip engine. Shard 0 is the rendezvous peer itself — membership
// stays centralized while the advertisement index is partitioned.
type ShardNode struct {
	idx  int
	name string

	mu    sync.Mutex
	peer  *p2p.Peer
	disco *p2p.DiscoveryService
	gsvc  *p2p.GossipService
	down  bool
}

// Name returns the shard's component name.
func (s *ShardNode) Name() string { return s.name }

// Addr returns the shard's transport address.
func (s *ShardNode) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peer.Addr()
}

// Gossip returns the shard's gossip service.
func (s *ShardNode) Gossip() *p2p.GossipService {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gsvc
}

// Discovery returns the shard's discovery index.
func (s *ShardNode) Discovery() *p2p.DiscoveryService {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.disco
}

// Running reports whether the shard is up.
func (s *ShardNode) Running() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.down
}

// NewDeployment starts a deployment with its rendezvous peer online.
func NewDeployment(cfg Config) (*Deployment, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("core: config requires a Transport factory")
	}
	cfg.Timings.applyDefaults()
	if cfg.Ontology == nil {
		cfg.Ontology = ontology.Combined()
	}
	bpeer.EnsureAdvTypes()

	d := &Deployment{
		cfg:      cfg,
		gen:      p2p.NewIDGen(cfg.Seed),
		reasoner: ontology.NewReasoner(cfg.Ontology),
		groups:   make(map[string]*Group),
		services: make(map[string]*Service),
	}
	if cfg.Tracing {
		capacity := cfg.TraceCapacity
		if capacity <= 0 {
			capacity = trace.DefaultCapacity
		}
		col := trace.NewCollector(capacity)
		if cfg.Seed != 0 {
			d.tracer = trace.NewSeeded(col, cfg.Seed)
		} else {
			d.tracer = trace.New(col)
		}
	}
	tr, err := cfg.Transport("rendezvous")
	if err != nil {
		return nil, fmt.Errorf("core: rendezvous transport: %w", err)
	}
	d.rdvPeer = p2p.NewPeer("rendezvous", d.gen.New(p2p.PeerIDKind), tr)
	d.rdvPeer.SetTracer(d.tracer)
	if col := d.tracer.Collector(); col != nil {
		p2p.ServeTraces(d.rdvPeer, col)
	}
	d.rdvSvc = p2p.NewRendezvousService(d.rdvPeer, cfg.Timings.RendezvousLease)
	d.rdvDsc = p2p.NewDiscoveryService(d.rdvPeer)
	if cfg.Shards > 0 {
		if err := d.deployShards(); err != nil {
			_ = d.rdvPeer.Close()
			return nil, err
		}
	}
	d.rdvPeer.Start()
	for _, s := range d.shards[min(1, len(d.shards)):] {
		s.peer.Start()
	}
	for _, s := range d.shards {
		s.gsvc.SetPeers(d.shardAddrs)
		s.gsvc.Run()
	}
	return d, nil
}

// deployShards builds the gossip fleet: shard 0 attaches to the
// rendezvous peer, the rest get their own peers. Called before any
// peer starts.
func (d *Deployment) deployShards() error {
	cfg := d.cfg
	for i := 0; i < cfg.Shards; i++ {
		node := &ShardNode{idx: i}
		if i == 0 {
			node.name = "rendezvous"
			node.peer = d.rdvPeer
			node.disco = d.rdvDsc
		} else {
			node.name = fmt.Sprintf("shard-%d", i)
			tr, err := cfg.Transport(node.name)
			if err != nil {
				return fmt.Errorf("core: shard transport %s: %w", node.name, err)
			}
			node.peer = p2p.NewPeer(node.name, d.gen.New(p2p.PeerIDKind), tr)
			node.peer.SetTracer(d.tracer)
			node.disco = p2p.NewDiscoveryService(node.peer)
		}
		gsvc, err := p2p.NewGossipService(node.peer, p2p.GossipConfig{
			Disco:             node.disco,
			Seed:              cfg.Seed + int64(i),
			Interval:          cfg.Timings.GossipInterval,
			ReconcileInterval: cfg.Timings.GossipReconcileInterval,
		})
		if err != nil {
			return fmt.Errorf("core: shard %s gossip: %w", node.name, err)
		}
		node.gsvc = gsvc
		d.shards = append(d.shards, node)
		d.shardAddrs = append(d.shardAddrs, node.peer.Addr())
	}
	return nil
}

// ShardAddrs returns the shard fleet's transport addresses (nil on an
// unsharded deployment). Callers must not mutate the slice.
func (d *Deployment) ShardAddrs() []string { return d.shardAddrs }

// Shards returns the shard nodes (nil on an unsharded deployment).
func (d *Deployment) Shards() []*ShardNode { return d.shards }

// CrashShard abruptly takes shard i offline: its gossip engine stops
// and its transport closes without farewell traffic, so the surviving
// fleet only notices through failed exchanges. Shard 0 (the
// rendezvous) cannot be crashed — membership would die with it.
func (d *Deployment) CrashShard(i int) error {
	if i <= 0 || i >= len(d.shards) {
		return fmt.Errorf("core: no crashable shard %d", i)
	}
	s := d.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return fmt.Errorf("core: shard %s already down", s.name)
	}
	s.down = true
	s.gsvc.Stop()
	return s.peer.Close()
}

// RestartShard revives a crashed shard on a fresh transport endpoint
// with an empty index; anti-entropy reconciliation repopulates it from
// the surviving fleet.
func (d *Deployment) RestartShard(i int) error {
	if i <= 0 || i >= len(d.shards) {
		return fmt.Errorf("core: no restartable shard %d", i)
	}
	s := d.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.down {
		return fmt.Errorf("core: shard %s is running", s.name)
	}
	tr, err := d.cfg.Transport(s.name)
	if err != nil {
		return fmt.Errorf("core: shard transport %s: %w", s.name, err)
	}
	s.peer = p2p.NewPeer(s.name, d.gen.New(p2p.PeerIDKind), tr)
	s.peer.SetTracer(d.tracer)
	s.disco = p2p.NewDiscoveryService(s.peer)
	gsvc, err := p2p.NewGossipService(s.peer, p2p.GossipConfig{
		Disco:             s.disco,
		Seed:              d.cfg.Seed + int64(s.idx),
		Interval:          d.cfg.Timings.GossipInterval,
		ReconcileInterval: d.cfg.Timings.GossipReconcileInterval,
	})
	if err != nil {
		return fmt.Errorf("core: shard %s gossip: %w", s.name, err)
	}
	s.gsvc = gsvc
	s.peer.Start()
	s.gsvc.SetPeers(d.shardAddrs)
	s.gsvc.Run()
	s.down = false
	return nil
}

// Tracer returns the deployment's shared tracer (nil without Tracing;
// nil is a valid no-op tracer).
func (d *Deployment) Tracer() *trace.Tracer { return d.tracer }

// TraceCollector returns the shared span collector (nil without
// Tracing).
func (d *Deployment) TraceCollector() *trace.Collector { return d.tracer.Collector() }

// Reasoner returns the deployment's compiled ontology reasoner.
func (d *Deployment) Reasoner() *ontology.Reasoner { return d.reasoner }

// RendezvousAddr returns the rendezvous transport address.
func (d *Deployment) RendezvousAddr() string { return d.rdvPeer.Addr() }

// Rendezvous returns the rendezvous service (introspection).
func (d *Deployment) Rendezvous() *p2p.RendezvousService { return d.rdvSvc }

// IDGen returns the deployment's ID generator.
func (d *Deployment) IDGen() *p2p.IDGen { return d.gen }

// Close shuts every service, group and the rendezvous down.
func (d *Deployment) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	groups := make([]*Group, 0, len(d.groups))
	for _, g := range d.groups {
		groups = append(groups, g)
	}
	services := make([]*Service, 0, len(d.services))
	for _, s := range d.services {
		services = append(services, s)
	}
	d.mu.Unlock()

	var firstErr error
	for _, s := range services {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, g := range groups {
		if err := g.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, s := range d.shards {
		s.mu.Lock()
		if !s.down {
			s.down = true
			s.gsvc.Stop()
			if s.idx > 0 {
				if err := s.peer.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		s.mu.Unlock()
	}
	if err := d.rdvPeer.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// ReplicaSpec describes one b-peer replica.
type ReplicaSpec struct {
	// Name names the replica; empty derives "<group>-<index>".
	Name string
	// QoS is the advertised profile (shared group default when zero).
	QoS qos.Profile
	// Handler implements the replica's functionality; required unless
	// GroupSpec.Handler is set.
	Handler bpeer.Handler
	// FailStop classifies handler errors that should fail-stop the
	// replica (see bpeer.Config.FailStop); nil inherits the group's.
	FailStop func(error) bool
}

// GroupSpec describes a b-peer group to deploy.
type GroupSpec struct {
	// Name names the group (also its advertised Name).
	Name string
	// Signature is the group's semantic signature.
	Signature ontology.Signature
	// QoS is the default advertised profile for replicas.
	QoS qos.Profile
	// Handler is the default handler for replicas without their own.
	Handler bpeer.Handler
	// FailStop is the default fail-stop classifier for replicas.
	FailStop func(error) bool
	// LoadSharing deploys the group with bpeer.PolicyLoadSharing:
	// every replica serves requests (read-mostly services).
	LoadSharing bool
	// NoJournal disables the replicated operation journal for the
	// group (exactly-once keyed execution is on by default for
	// coordinator-serving groups; see internal/replog).
	NoJournal bool
	// ReadOnlyOps lists operations every replica may serve locally
	// behind the read-index barrier (see internal/bpeer/read.go).
	// Requires the journal; handlers for these ops must tolerate
	// concurrent invocation.
	ReadOnlyOps []string
	// ReadLease bounds how long a follower reuses a fetched read
	// index before asking the coordinator again; zero selects the
	// bpeer default.
	ReadLease time.Duration
	// Replicas lists the replicas; Replicas==nil with Count>0 deploys
	// Count uniform replicas.
	Replicas []ReplicaSpec
	// Count is the uniform replica count when Replicas is nil.
	Count int
}

// Group is a deployed b-peer group.
type Group struct {
	name      string
	gid       p2p.ID
	transport TransportFactory // for crash–restart churn

	mu     sync.Mutex
	peers  []*bpeer.BPeer
	closed bool
}

// DeployGroup starts the group's replicas and waits for them to agree
// on a coordinator.
func (d *Deployment) DeployGroup(ctx context.Context, spec GroupSpec) (*Group, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("core: group requires a name")
	}
	replicas := spec.Replicas
	if replicas == nil {
		if spec.Count <= 0 {
			return nil, fmt.Errorf("core: group %s has no replicas", spec.Name)
		}
		replicas = make([]ReplicaSpec, spec.Count)
	}
	d.mu.Lock()
	if _, exists := d.groups[spec.Name]; exists {
		d.mu.Unlock()
		return nil, fmt.Errorf("core: group %s already deployed", spec.Name)
	}
	d.mu.Unlock()

	g := &Group{name: spec.Name, gid: d.gen.New(p2p.GroupIDKind), transport: d.cfg.Transport}
	for i, rs := range replicas {
		name := rs.Name
		if name == "" {
			name = fmt.Sprintf("%s-%d", spec.Name, i)
		}
		handler := rs.Handler
		if handler == nil {
			handler = spec.Handler
		}
		if handler == nil {
			return nil, fmt.Errorf("core: replica %s has no handler", name)
		}
		profile := rs.QoS
		if profile == (qos.Profile{}) {
			profile = spec.QoS
		}
		failStop := rs.FailStop
		if failStop == nil {
			failStop = spec.FailStop
		}
		tr, err := d.cfg.Transport(name)
		if err != nil {
			return nil, fmt.Errorf("core: transport %s: %w", name, err)
		}
		bp, err := bpeer.New(tr, bpeer.Config{
			Name:              name,
			Rank:              int64(i + 1),
			GroupID:           g.gid,
			GroupName:         spec.Name,
			Signature:         spec.Signature,
			QoS:               profile,
			RendezvousAddr:    d.rdvPeer.Addr(),
			ShardAddrs:        d.shardAddrs,
			ShardReplicas:     d.cfg.ShardReplicas,
			Handler:           handler,
			IDGen:             d.gen,
			HeartbeatInterval: d.cfg.Timings.HeartbeatInterval,
			HeartbeatTimeout:  d.cfg.Timings.HeartbeatTimeout,
			ElectionTimeout:   d.cfg.Timings.ElectionTimeout,
			LeaseInterval:     d.cfg.Timings.LeaseInterval,
			LoadSharing:       spec.LoadSharing,
			NoJournal:         spec.NoJournal,
			ReadOnlyOps:       spec.ReadOnlyOps,
			ReadLease:         spec.ReadLease,
			FailStop:          failStop,
			Tracer:            d.tracer,
		})
		if err != nil {
			return nil, fmt.Errorf("core: bpeer %s: %w", name, err)
		}
		if err := bp.Start(ctx); err != nil {
			return nil, fmt.Errorf("core: start %s: %w", name, err)
		}
		g.peers = append(g.peers, bp)
	}
	if err := g.WaitReady(ctx); err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.groups[spec.Name] = g
	d.mu.Unlock()
	return g, nil
}

// Name returns the group name.
func (g *Group) Name() string { return g.name }

// ID returns the group ID.
func (g *Group) ID() p2p.ID { return g.gid }

// Peers returns the group's replicas, including crashed ones that may
// be restarted.
func (g *Group) Peers() []*bpeer.BPeer {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*bpeer.BPeer(nil), g.peers...)
}

// RunningPeers returns only the replicas that are currently up.
func (g *Group) RunningPeers() []*bpeer.BPeer {
	var out []*bpeer.BPeer
	for _, p := range g.Peers() {
		if p.Running() {
			out = append(out, p)
		}
	}
	return out
}

// Coordinator returns the address of the current coordinator ("" when
// unknown). Only running replicas are consulted: a crashed replica
// still reports its last known (stale) coordinator.
func (g *Group) Coordinator() string {
	for _, p := range g.RunningPeers() {
		if c := p.Coordinator(); c != "" {
			return c
		}
	}
	return ""
}

// WaitReady blocks until all running replicas agree on a coordinator
// that is itself one of the running replicas.
func (g *Group) WaitReady(ctx context.Context) error {
	for {
		peers := g.RunningPeers()
		if len(peers) > 0 {
			coord := peers[0].Coordinator()
			agreed := coord != ""
			live := false
			for _, p := range peers {
				if p.Coordinator() != coord {
					agreed = false
					break
				}
				if p.Addr() == coord {
					live = true
				}
			}
			if agreed && live {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("core: group %s not ready: %w", g.name, ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// CrashPeer abruptly crashes the named replica (no farewell traffic).
// Unlike CrashCoordinator it keeps the replica in the group so it can
// later be revived with RestartPeer; the chaos engine drives churn
// through this pair.
func (g *Group) CrashPeer(name string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, p := range g.peers {
		if p.Name() == name {
			if !p.Running() {
				return fmt.Errorf("core: replica %s is not running", name)
			}
			return p.Crash()
		}
	}
	return fmt.Errorf("core: replica %s not found in group %s", name, g.name)
}

// RestartPeer revives a crashed (or gracefully closed) replica on a
// fresh transport endpoint: it rejoins the rendezvous, re-publishes
// its advertisements and re-enters the Bully election.
func (g *Group) RestartPeer(ctx context.Context, name string) error {
	g.mu.Lock()
	var target *bpeer.BPeer
	for _, p := range g.peers {
		if p.Name() == name {
			target = p
			break
		}
	}
	transport := g.transport
	g.mu.Unlock()
	if target == nil {
		return fmt.Errorf("core: replica %s not found in group %s", name, g.name)
	}
	if target.Running() {
		return fmt.Errorf("core: replica %s is already running", name)
	}
	tr, err := transport(name)
	if err != nil {
		return fmt.Errorf("core: transport %s: %w", name, err)
	}
	return target.Restart(ctx, tr)
}

// CrashCoordinator crashes the current coordinator replica and returns
// its name; the experiment harness uses it to measure failover.
func (g *Group) CrashCoordinator() (string, error) {
	coord := g.Coordinator()
	if coord == "" {
		return "", fmt.Errorf("core: group %s has no coordinator", g.name)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, p := range g.peers {
		if p.Addr() == coord {
			name := p.Name()
			if err := p.Crash(); err != nil {
				return "", err
			}
			g.peers = append(g.peers[:i], g.peers[i+1:]...)
			return name, nil
		}
	}
	return "", fmt.Errorf("core: coordinator %s not found among replicas", coord)
}

// Close shuts all replicas down.
func (g *Group) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	peers := append([]*bpeer.BPeer(nil), g.peers...)
	g.mu.Unlock()
	var firstErr error
	for _, p := range peers {
		if err := p.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// NewProxy creates a standalone SWS-proxy on this deployment (services
// create their own; experiments sometimes want a bare proxy).
func (d *Deployment) NewProxy(name string, opts ProxyOptions) (*proxy.SWSProxy, error) {
	tr, err := d.cfg.Transport(name)
	if err != nil {
		return nil, fmt.Errorf("core: proxy transport: %w", err)
	}
	p, err := proxy.New(tr, proxy.Config{
		Name:             name,
		RendezvousAddr:   d.rdvPeer.Addr(),
		ShardAddrs:       d.shardAddrs,
		ShardReplicas:    d.cfg.ShardReplicas,
		Reasoner:         d.reasoner,
		MinDegree:        opts.MinDegree,
		Translator:       opts.Translator,
		IDGen:            d.gen,
		BindTimeout:      d.cfg.Timings.BindTimeout,
		CallTimeout:      d.cfg.Timings.CallTimeout,
		RetryDelay:       d.cfg.Timings.RetryDelay,
		RetryMaxDelay:    d.cfg.Timings.RetryMaxDelay,
		MaxAttempts:      opts.MaxAttempts,
		BreakerThreshold: d.cfg.Timings.BreakerThreshold,
		BreakerCooldown:  d.cfg.Timings.BreakerCooldown,
		Admission:        opts.Admission,
		ReadObserver:     opts.ReadObserver,
		Seed:             d.cfg.Seed,
		Tracer:           d.tracer,
	})
	if err != nil {
		return nil, err
	}
	p.Start()
	return p, nil
}

// ProxyOptions tunes a proxy created through the deployment.
type ProxyOptions struct {
	MinDegree   ontology.MatchDegree
	Translator  proxy.Translator
	MaxAttempts int
	// Admission is the overload-protection pipeline placed in front of
	// the proxy's circuit breakers; nil disables admission control.
	Admission *loadctl.Controller
	// ReadObserver is called for every follower-served read with the
	// read-index it was issued at and the committed sequence the
	// serving replica observed — wire it to chaos.Checker.RecordRead
	// to check the staleness invariant.
	ReadObserver func(replica string, readIndex, readSeq uint64)
}
