package core

import (
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"whisper/internal/backend"
	"whisper/internal/bpeer"
	"whisper/internal/ontology"
	"whisper/internal/proxy"
	"whisper/internal/qos"
	"whisper/internal/simnet"
	"whisper/internal/soap"
	"whisper/internal/wsdl"
)

// fastTimings keeps protocol timeouts short for tests.
func fastTimings() Timings {
	return Timings{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  80 * time.Millisecond,
		ElectionTimeout:   40 * time.Millisecond,
		LeaseInterval:     200 * time.Millisecond,
		RendezvousLease:   2 * time.Second,
		BindTimeout:       500 * time.Millisecond,
		CallTimeout:       500 * time.Millisecond,
		RetryDelay:        50 * time.Millisecond,
	}
}

func newSimDeployment(t *testing.T) *Deployment {
	t.Helper()
	net := simnet.NewNetwork(simnet.WithLatency(simnet.ZeroLatency()), simnet.WithSeed(1))
	t.Cleanup(func() { _ = net.Close() })
	d, err := NewDeployment(Config{
		Transport: SimulatedTransport(net),
		Seed:      1,
		Timings:   fastTimings(),
	})
	if err != nil {
		t.Fatalf("deployment: %v", err)
	}
	t.Cleanup(func() { _ = d.Close() })
	return d
}

func studentSig() ontology.Signature {
	return ontology.Signature{
		Action:  ontology.ConceptStudentInformation,
		Inputs:  []string{ontology.ConceptStudentID},
		Outputs: []string{ontology.ConceptStudentInfo},
	}
}

// studentHandler wraps a StudentStore as a b-peer handler speaking the
// StudentInformation request/response XML.
func studentHandler(store backend.StudentStore) bpeer.Handler {
	return bpeer.HandlerFunc(func(_ context.Context, _ string, payload []byte) ([]byte, error) {
		var req struct {
			XMLName   xml.Name `xml:"StudentInformation"`
			StudentID string   `xml:"StudentID"`
		}
		if err := xml.Unmarshal(payload, &req); err != nil {
			return nil, fmt.Errorf("bad request: %w", err)
		}
		rec, err := store.Student(req.StudentID)
		if err != nil {
			return nil, err
		}
		return xml.Marshal(struct {
			XMLName xml.Name `xml:"StudentInfo"`
			backend.StudentRecord
		}{StudentRecord: rec})
	})
}

func deployStudentGroup(t *testing.T, d *Deployment, replicas int) *Group {
	t.Helper()
	records := backend.SeedStudents(20, 1)
	specs := make([]ReplicaSpec, replicas)
	for i := range specs {
		// Odd replicas answer from the warehouse, even ones from the
		// operational DB — semantically equivalent backends (§4.1).
		var store backend.StudentStore
		if i%2 == 0 {
			store = backend.NewOperationalDB(records, 0)
		} else {
			store = backend.NewDataWarehouse(records, 0)
		}
		specs[i] = ReplicaSpec{Handler: studentHandler(store)}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	g, err := d.DeployGroup(ctx, GroupSpec{
		Name:      "StudentManagement",
		Signature: studentSig(),
		QoS:       qos.Profile{LatencyMillis: 5, Reliability: 0.99, Availability: 0.99},
		Replicas:  specs,
	})
	if err != nil {
		t.Fatalf("deploy group: %v", err)
	}
	return g
}

func studentRequestXML(id string) []byte {
	return []byte(`<StudentInformation><StudentID>` + id + `</StudentID></StudentInformation>`)
}

func TestEndToEndStudentScenario(t *testing.T) {
	d := newSimDeployment(t)
	deployStudentGroup(t, d, 3)
	svc, err := d.DeployService(wsdl.StudentManagement(), ServiceOptions{})
	if err != nil {
		t.Fatalf("deploy service: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	out, err := svc.Invoke(ctx, "StudentInformation", studentRequestXML("S0007"))
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	s := string(out)
	if !strings.Contains(s, "<ID>S0007</ID>") {
		t.Errorf("response missing student: %q", s)
	}
	if !strings.HasPrefix(s, "<StudentInfo") {
		t.Errorf("response root should be StudentInfo (translated): %q", s)
	}
}

func TestEndToEndOverSOAPHTTP(t *testing.T) {
	d := newSimDeployment(t)
	deployStudentGroup(t, d, 2)
	svc, err := d.DeployService(wsdl.StudentManagement(), ServiceOptions{})
	if err != nil {
		t.Fatalf("deploy service: %v", err)
	}

	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	client := soap.NewClient(ts.URL)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	env, err := client.CallRaw(ctx, "StudentInformation", studentRequestXML("S0003"))
	if err != nil {
		t.Fatalf("soap call: %v", err)
	}
	if env.Fault != nil {
		t.Fatalf("fault: %v", env.Fault)
	}
	if !strings.Contains(string(env.BodyXML), "<ID>S0003</ID>") {
		t.Errorf("body = %q", env.BodyXML)
	}
}

func TestEndToEndSOAPFaultForUnknownStudent(t *testing.T) {
	d := newSimDeployment(t)
	deployStudentGroup(t, d, 2)
	svc, err := d.DeployService(wsdl.StudentManagement(), ServiceOptions{})
	if err != nil {
		t.Fatalf("deploy service: %v", err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	client := soap.NewClient(ts.URL)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	env, err := client.CallRaw(ctx, "StudentInformation", studentRequestXML("S9999"))
	if err != nil {
		t.Fatalf("soap call: %v", err)
	}
	if env.Fault == nil {
		t.Fatalf("expected soap:Fault, got %q", env.BodyXML)
	}
	if !strings.Contains(env.Fault.Reason, "not found") {
		t.Errorf("fault reason = %q", env.Fault.Reason)
	}
}

func TestEndToEndFailover(t *testing.T) {
	d := newSimDeployment(t)
	g := deployStudentGroup(t, d, 3)
	svc, err := d.DeployService(wsdl.StudentManagement(), ServiceOptions{})
	if err != nil {
		t.Fatalf("deploy service: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if _, werr := svc.Invoke(ctx, "StudentInformation", studentRequestXML("S0001")); werr != nil {
		t.Fatalf("warm-up: %v", werr)
	}

	crashed, err := g.CrashCoordinator()
	if err != nil {
		t.Fatalf("crash coordinator: %v", err)
	}
	t.Logf("crashed coordinator %s", crashed)

	out, err := svc.Invoke(ctx, "StudentInformation", studentRequestXML("S0002"))
	if err != nil {
		t.Fatalf("invoke after crash: %v", err)
	}
	if !strings.Contains(string(out), "<ID>S0002</ID>") {
		t.Errorf("out = %q", out)
	}
	if svc.Proxy().Rebinds() == 0 {
		t.Error("expected a re-binding after coordinator crash")
	}
}

func TestEndToEndBackendFailover(t *testing.T) {
	// §4.1 scenario: DB peer fails (the whole replica crashes), the
	// warehouse replica transparently answers the same request.
	d := newSimDeployment(t)
	records := backend.SeedStudents(10, 1)
	db := backend.NewOperationalDB(records, 0)
	wh := backend.NewDataWarehouse(records, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	g, err := d.DeployGroup(ctx, GroupSpec{
		Name:      "StudentManagement",
		Signature: studentSig(),
		Replicas: []ReplicaSpec{
			{Name: "warehouse-peer", Handler: studentHandler(wh)},
			{Name: "db-peer", Handler: studentHandler(db)}, // higher rank → coordinator
		},
	})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	svc, err := d.DeployService(wsdl.StudentManagement(), ServiceOptions{})
	if err != nil {
		t.Fatalf("deploy service: %v", err)
	}

	out, err := svc.Invoke(ctx, "StudentInformation", studentRequestXML("S0004"))
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if !strings.Contains(string(out), "operational-db") {
		t.Errorf("first answer should come from the DB peer: %q", out)
	}

	if _, cerr := g.CrashCoordinator(); cerr != nil {
		t.Fatalf("crash: %v", cerr)
	}
	out, err = svc.Invoke(ctx, "StudentInformation", studentRequestXML("S0004"))
	if err != nil {
		t.Fatalf("invoke after crash: %v", err)
	}
	if !strings.Contains(string(out), "data-warehouse") {
		t.Errorf("failover answer should come from the warehouse: %q", out)
	}
}

func TestEndToEndOverTCP(t *testing.T) {
	d, err := NewDeployment(Config{
		Transport: TCPTransport("127.0.0.1:0"),
		Seed:      1,
		Timings:   fastTimings(),
	})
	if err != nil {
		t.Fatalf("deployment: %v", err)
	}
	t.Cleanup(func() { _ = d.Close() })

	records := backend.SeedStudents(5, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if _, derr := d.DeployGroup(ctx, GroupSpec{
		Name:      "StudentManagement",
		Signature: studentSig(),
		Handler:   studentHandler(backend.NewOperationalDB(records, 0)),
		Count:     2,
	}); derr != nil {
		t.Fatalf("deploy group: %v", derr)
	}
	svc, err := d.DeployService(wsdl.StudentManagement(), ServiceOptions{})
	if err != nil {
		t.Fatalf("deploy service: %v", err)
	}
	out, err := svc.Invoke(ctx, "StudentInformation", studentRequestXML("S0002"))
	if err != nil {
		t.Fatalf("invoke over TCP: %v", err)
	}
	if !strings.Contains(string(out), "<ID>S0002</ID>") {
		t.Errorf("out = %q", out)
	}
}

func TestDeployGroupValidation(t *testing.T) {
	d := newSimDeployment(t)
	ctx := context.Background()
	if _, err := d.DeployGroup(ctx, GroupSpec{Signature: studentSig(), Count: 1}); err == nil {
		t.Error("expected error for unnamed group")
	}
	if _, err := d.DeployGroup(ctx, GroupSpec{Name: "g", Signature: studentSig()}); err == nil {
		t.Error("expected error for zero replicas")
	}
	if _, err := d.DeployGroup(ctx, GroupSpec{Name: "g", Signature: studentSig(), Count: 1}); err == nil {
		t.Error("expected error for replica without handler")
	}
}

func TestDeployServiceValidation(t *testing.T) {
	d := newSimDeployment(t)
	// No semantic operations.
	defs := wsdl.New("Plain", "http://x")
	itf := defs.AddInterface("I")
	itf.AddOperation("Op", "", nil, nil)
	if _, err := d.DeployService(defs, ServiceOptions{}); err == nil {
		t.Error("expected error for non-semantic service")
	}
	// Duplicate deployment.
	deployStudentGroup(t, d, 1)
	if _, err := d.DeployService(wsdl.StudentManagement(), ServiceOptions{}); err != nil {
		t.Fatalf("first deploy: %v", err)
	}
	if _, err := d.DeployService(wsdl.StudentManagement(), ServiceOptions{}); err == nil {
		t.Error("expected error for duplicate service")
	}
}

func TestServiceUnknownOperation(t *testing.T) {
	d := newSimDeployment(t)
	deployStudentGroup(t, d, 1)
	svc, err := d.DeployService(wsdl.StudentManagement(), ServiceOptions{})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	if _, err := svc.Invoke(context.Background(), "Nope", nil); err == nil {
		t.Error("expected error for unknown operation")
	}
}

func TestServiceInvokeNoGroup(t *testing.T) {
	d := newSimDeployment(t)
	svc, err := d.DeployService(wsdl.StudentManagement(), ServiceOptions{})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err = svc.Invoke(ctx, "StudentInformation", studentRequestXML("S1"))
	if !errors.Is(err, proxy.ErrNoMatch) {
		t.Errorf("err = %v, want proxy.ErrNoMatch", err)
	}
}

func TestDeploymentCloseIdempotent(t *testing.T) {
	d := newSimDeployment(t)
	deployStudentGroup(t, d, 1)
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
