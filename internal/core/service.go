package core

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"whisper/internal/loadctl"
	"whisper/internal/ontology"
	"whisper/internal/proxy"
	"whisper/internal/soap"
	"whisper/internal/wsdl"
)

// Service is a deployed semantic Web service: a SOAP endpoint whose
// operations are annotated with WSDL-S semantics and executed by
// b-peer groups through an SWS-proxy (the full front half of Figure 2
// in the paper: client → Web service → SWS-proxy → P2P).
type Service struct {
	defs  *wsdl.Definitions
	proxy *proxy.SWSProxy
	soap  *soap.Server
	sigs  map[string]ontology.Signature

	mu     sync.Mutex
	closed bool
}

// ServiceOptions tunes a deployed service.
type ServiceOptions struct {
	// MinDegree is the proxy's semantic acceptance threshold.
	MinDegree ontology.MatchDegree
	// Translator adapts peer payloads to the service schema; nil
	// derives an element-renaming translator from the WSDL-S output
	// annotations.
	Translator proxy.Translator
	// Admission is the overload-protection pipeline applied by the
	// service's proxy; nil disables admission control.
	Admission *loadctl.Controller
	// ReadObserver is forwarded to the service's proxy (see
	// ProxyOptions.ReadObserver).
	ReadObserver func(replica string, readIndex, readSeq uint64)
}

// DeployService publishes a semantic Web service described by the
// WSDL-S document. Every semantic operation becomes a SOAP operation
// forwarded through a fresh SWS-proxy.
func (d *Deployment) DeployService(defs *wsdl.Definitions, opts ServiceOptions) (*Service, error) {
	if err := defs.Validate(); err != nil {
		return nil, fmt.Errorf("core: deploy service: %w", err)
	}
	sigs := make(map[string]ontology.Signature)
	for _, op := range defs.Operations() {
		if !op.IsSemantic() {
			continue
		}
		sig, err := defs.Signature(op.Name)
		if err != nil {
			return nil, fmt.Errorf("core: deploy service: %w", err)
		}
		sigs[op.Name] = sig
	}
	if len(sigs) == 0 {
		return nil, fmt.Errorf("core: service %s has no semantic operations", defs.Name)
	}

	translator := opts.Translator
	if translator == nil {
		translator = translatorFromWSDL(defs)
	}
	p, err := d.NewProxy("proxy-"+defs.Name, ProxyOptions{
		MinDegree:    opts.MinDegree,
		Translator:   translator,
		Admission:    opts.Admission,
		ReadObserver: opts.ReadObserver,
	})
	if err != nil {
		return nil, err
	}

	s := &Service{
		defs:  defs,
		proxy: p,
		soap:  soap.NewServer(),
		sigs:  sigs,
	}
	s.soap.SetTracer(d.tracer)
	for opName, sig := range sigs {
		s.soap.Register(opName, s.operationHandler(opName, sig))
	}
	d.mu.Lock()
	if _, exists := d.services[defs.Name]; exists {
		d.mu.Unlock()
		_ = p.Close()
		return nil, fmt.Errorf("core: service %s already deployed", defs.Name)
	}
	d.services[defs.Name] = s
	d.mu.Unlock()
	return s, nil
}

// translatorFromWSDL derives the element-rename mapping from the
// WSDL-S output annotations: concept URI → local element name.
func translatorFromWSDL(defs *wsdl.Definitions) proxy.Translator {
	mapping := make(map[string]string)
	for _, op := range defs.Operations() {
		for _, out := range op.Outputs {
			uri, err := defs.ResolveQName(out.Element)
			if err != nil {
				continue
			}
			mapping[uri] = localName(out.Element)
		}
	}
	return &proxy.ElementRenameTranslator{ElementForConcept: mapping}
}

// localName strips a QName prefix.
func localName(q string) string {
	for i := len(q) - 1; i >= 0; i-- {
		if q[i] == ':' || q[i] == '#' || q[i] == '/' {
			return q[i+1:]
		}
	}
	return q
}

// operationHandler adapts one semantic operation to the SOAP server.
func (s *Service) operationHandler(opName string, sig ontology.Signature) soap.OperationHandler {
	return func(ctx context.Context, bodyXML []byte) (any, error) {
		out, err := s.proxy.Invoke(ctx, sig, opName, bodyXML)
		if err != nil {
			var appErr *proxy.ApplicationError
			if errors.As(err, &appErr) {
				return nil, soap.ServerFault(errors.New(appErr.Msg))
			}
			return nil, soap.ServerFault(err)
		}
		return out, nil
	}
}

// Name returns the service name.
func (s *Service) Name() string { return s.defs.Name }

// Definitions returns the service's WSDL-S document.
func (s *Service) Definitions() *wsdl.Definitions { return s.defs }

// Proxy exposes the service's SWS-proxy (metrics, rebind counters).
func (s *Service) Proxy() *proxy.SWSProxy { return s.proxy }

// Handler returns the SOAP HTTP handler for mounting on a server.
func (s *Service) Handler() http.Handler { return s.soap }

// Invoke calls a semantic operation directly (without HTTP), taking
// and returning raw body XML. The examples and benchmarks use it to
// exercise the full semantic path without a web server in between.
func (s *Service) Invoke(ctx context.Context, opName string, bodyXML []byte) ([]byte, error) {
	sig, ok := s.sigs[opName]
	if !ok {
		return nil, fmt.Errorf("core: service %s: unknown operation %q", s.defs.Name, opName)
	}
	return s.proxy.Invoke(ctx, sig, opName, bodyXML)
}

// Operations lists the service's semantic operation names.
func (s *Service) Operations() []string {
	out := make([]string, 0, len(s.sigs))
	for op := range s.sigs {
		out = append(out, op)
	}
	return out
}

// Close shuts the service's proxy down.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	return s.proxy.Close()
}
