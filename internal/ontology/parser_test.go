package ontology

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOWL = `<?xml version="1.0"?>
<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
         xmlns:rdfs="http://www.w3.org/2000/01/rdf-schema#"
         xmlns:owl="http://www.w3.org/2002/07/owl#"
         xml:base="http://example.org/zoo">
  <owl:Ontology rdf:about="http://example.org/zoo"><rdfs:label>Zoo</rdfs:label></owl:Ontology>
  <owl:Class rdf:about="#Animal"><rdfs:label>Animal</rdfs:label></owl:Class>
  <owl:Class rdf:about="#Mammal">
    <rdfs:subClassOf rdf:resource="#Animal"/>
  </owl:Class>
  <owl:Class rdf:about="#Dog">
    <rdfs:subClassOf rdf:resource="#Mammal"/>
    <owl:disjointWith rdf:resource="#Cat"/>
  </owl:Class>
  <owl:Class rdf:about="#Canine">
    <owl:equivalentClass rdf:resource="#Dog"/>
  </owl:Class>
  <owl:Class rdf:about="#Cat">
    <rdfs:subClassOf rdf:resource="#Mammal"/>
  </owl:Class>
  <owl:ObjectProperty rdf:about="#eats">
    <rdfs:domain rdf:resource="#Animal"/>
    <rdfs:range rdf:resource="#Animal"/>
  </owl:ObjectProperty>
  <owl:DatatypeProperty rdf:about="#name">
    <rdfs:domain rdf:resource="#Animal"/>
    <rdfs:range rdf:resource="http://www.w3.org/2001/XMLSchema#string"/>
  </owl:DatatypeProperty>
  <owl:NamedIndividual rdf:about="#rex">
    <rdf:type rdf:resource="#Dog"/>
  </owl:NamedIndividual>
</rdf:RDF>`

func TestParseOWL(t *testing.T) {
	o, err := ParseString(sampleOWL, "")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if o.BaseURI != "http://example.org/zoo" {
		t.Errorf("base = %q", o.BaseURI)
	}
	if o.Label != "Zoo" {
		t.Errorf("label = %q, want Zoo", o.Label)
	}
	if c := o.Class("Dog"); c == nil {
		t.Fatal("Dog class missing")
	} else if len(c.SubClassOf) != 1 || c.SubClassOf[0] != o.Term("Mammal") {
		t.Errorf("Dog.SubClassOf = %v", c.SubClassOf)
	}
	if c := o.Class("Canine"); c == nil || len(c.EquivalentTo) != 1 {
		t.Fatalf("Canine equivalence missing")
	}
	if p := o.Property("eats"); p == nil || p.Kind != ObjectProperty {
		t.Fatal("eats property missing or wrong kind")
	}
	if p := o.Property("name"); p == nil || p.Kind != DatatypeProperty {
		t.Fatal("name property missing or wrong kind")
	}
	if ind := o.Individual("rex"); ind == nil || len(ind.Types) != 1 {
		t.Fatal("rex individual missing")
	}
	if err := o.Validate(); err != nil {
		t.Errorf("validate: %v", err)
	}

	r := NewReasoner(o)
	if !r.IsSubClassOf("Dog", "Animal") {
		t.Error("parsed ontology: Dog should be subclass of Animal")
	}
	if !r.AreEquivalent("Canine", "Dog") {
		t.Error("parsed ontology: Canine ≡ Dog")
	}
	if !r.AreDisjoint("Dog", "Cat") {
		t.Error("parsed ontology: Dog ⊥ Cat")
	}
}

func TestParseRequiresBase(t *testing.T) {
	owl := `<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	          xmlns:owl="http://www.w3.org/2002/07/owl#"></rdf:RDF>`
	if _, err := ParseString(owl, ""); err == nil {
		t.Error("expected error without base URI")
	}
	if _, err := ParseString(owl, "http://fallback.example"); err != nil {
		t.Errorf("fallback base should work: %v", err)
	}
}

func TestParseRejectsAnonymousClass(t *testing.T) {
	owl := `<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	          xmlns:owl="http://www.w3.org/2002/07/owl#" xml:base="http://x">
	          <owl:Class/></rdf:RDF>`
	if _, err := ParseString(owl, ""); err == nil {
		t.Error("expected error for owl:Class without rdf:about")
	}
}

func TestParseMalformedXML(t *testing.T) {
	if _, err := ParseString("<rdf:RDF", "http://x"); err == nil {
		t.Error("expected XML parse error")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	src := University()
	data := src.Serialize()
	back, err := Parse(bytes.NewReader(data), "")
	if err != nil {
		t.Fatalf("round-trip parse: %v\n%s", err, data)
	}
	// Every class and its axioms must survive.
	for _, c := range src.Classes() {
		got := back.Class(c.URI)
		if got == nil {
			t.Fatalf("class %s lost in round trip", c.URI)
		}
		if len(got.SubClassOf) != len(c.SubClassOf) {
			t.Errorf("%s SubClassOf: got %v, want %v", c.URI, got.SubClassOf, c.SubClassOf)
		}
		if len(got.EquivalentTo) != len(c.EquivalentTo) {
			t.Errorf("%s EquivalentTo: got %v, want %v", c.URI, got.EquivalentTo, c.EquivalentTo)
		}
		if len(got.DisjointWith) != len(c.DisjointWith) {
			t.Errorf("%s DisjointWith: got %v, want %v", c.URI, got.DisjointWith, c.DisjointWith)
		}
		if got.Label != c.Label {
			t.Errorf("%s label: got %q, want %q", c.URI, got.Label, c.Label)
		}
	}
	if got, want := len(back.Properties()), len(src.Properties()); got != want {
		t.Errorf("properties: got %d, want %d", got, want)
	}
	// Reasoning results must be identical.
	rs, rb := NewReasoner(src), NewReasoner(back)
	for _, a := range src.Classes() {
		for _, b := range src.Classes() {
			if rs.IsSubClassOf(a.URI, b.URI) != rb.IsSubClassOf(a.URI, b.URI) {
				t.Fatalf("subsumption disagreement on (%s, %s) after round trip", a.URI, b.URI)
			}
		}
	}
}

func TestSerializeEscapesLabels(t *testing.T) {
	o := New("http://x")
	o.AddClass("A", WithLabel(`<evil> & "quotes"`))
	data := o.Serialize()
	if bytes.Contains(data, []byte("<evil>")) {
		t.Error("label not escaped in serialization")
	}
	back, err := Parse(bytes.NewReader(data), "")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got := back.Class("A").Label; !strings.Contains(got, "<evil>") {
		t.Errorf("label = %q, want unescaped round trip", got)
	}
}
