package ontology

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// XML namespaces of the OWL serialization.
const (
	nsRDF  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	nsRDFS = "http://www.w3.org/2000/01/rdf-schema#"
	nsOWL  = "http://www.w3.org/2002/07/owl#"
)

// --- parsing ---------------------------------------------------------

type xmlResource struct {
	Resource string `xml:"http://www.w3.org/1999/02/22-rdf-syntax-ns# resource,attr"`
}

type xmlClass struct {
	About        string        `xml:"http://www.w3.org/1999/02/22-rdf-syntax-ns# about,attr"`
	Label        string        `xml:"http://www.w3.org/2000/01/rdf-schema# label"`
	Comment      string        `xml:"http://www.w3.org/2000/01/rdf-schema# comment"`
	SubClassOf   []xmlResource `xml:"http://www.w3.org/2000/01/rdf-schema# subClassOf"`
	Equivalent   []xmlResource `xml:"http://www.w3.org/2002/07/owl# equivalentClass"`
	DisjointWith []xmlResource `xml:"http://www.w3.org/2002/07/owl# disjointWith"`
}

type xmlProperty struct {
	About  string        `xml:"http://www.w3.org/1999/02/22-rdf-syntax-ns# about,attr"`
	Label  string        `xml:"http://www.w3.org/2000/01/rdf-schema# label"`
	Domain []xmlResource `xml:"http://www.w3.org/2000/01/rdf-schema# domain"`
	Range  []xmlResource `xml:"http://www.w3.org/2000/01/rdf-schema# range"`
}

type xmlIndividual struct {
	About string        `xml:"http://www.w3.org/1999/02/22-rdf-syntax-ns# about,attr"`
	Types []xmlResource `xml:"http://www.w3.org/1999/02/22-rdf-syntax-ns# type"`
}

type xmlOntologyHeader struct {
	About string `xml:"http://www.w3.org/1999/02/22-rdf-syntax-ns# about,attr"`
	Label string `xml:"http://www.w3.org/2000/01/rdf-schema# label"`
}

type xmlRDF struct {
	XMLName     xml.Name           `xml:"http://www.w3.org/1999/02/22-rdf-syntax-ns# RDF"`
	Base        string             `xml:"http://www.w3.org/XML/1998/namespace base,attr"`
	Header      *xmlOntologyHeader `xml:"http://www.w3.org/2002/07/owl# Ontology"`
	Classes     []xmlClass         `xml:"http://www.w3.org/2002/07/owl# Class"`
	ObjectProps []xmlProperty      `xml:"http://www.w3.org/2002/07/owl# ObjectProperty"`
	DataProps   []xmlProperty      `xml:"http://www.w3.org/2002/07/owl# DatatypeProperty"`
	Individuals []xmlIndividual    `xml:"http://www.w3.org/2002/07/owl# NamedIndividual"`
}

// Parse reads an ontology from its OWL/XML serialization. Relative
// URIs ("#Student") are resolved against the xml:base attribute, or
// against fallbackBase when no xml:base is present.
func Parse(r io.Reader, fallbackBase string) (*Ontology, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("ontology: read: %w", err)
	}
	var doc xmlRDF
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("ontology: parse OWL: %w", err)
	}
	base := doc.Base
	if base == "" {
		base = fallbackBase
	}
	if base == "" {
		return nil, fmt.Errorf("ontology: no xml:base and no fallback base URI")
	}
	base = strings.TrimSuffix(base, "#")

	o := New(base)
	if doc.Header != nil {
		o.Label = doc.Header.Label
	}
	resolve := func(uri string) string {
		if strings.HasPrefix(uri, "#") {
			return base + uri
		}
		return uri
	}
	for _, c := range doc.Classes {
		if c.About == "" {
			return nil, fmt.Errorf("ontology: owl:Class without rdf:about")
		}
		opts := []ClassOption{}
		if c.Label != "" {
			opts = append(opts, WithLabel(strings.TrimSpace(c.Label)))
		}
		if c.Comment != "" {
			opts = append(opts, WithComment(strings.TrimSpace(c.Comment)))
		}
		cls := o.AddClass(resolve(c.About), opts...)
		for _, s := range c.SubClassOf {
			if s.Resource != "" {
				o.AddClass(resolve(s.Resource))
				cls.SubClassOf = appendUnique(cls.SubClassOf, resolve(s.Resource))
			}
		}
		for _, e := range c.Equivalent {
			if e.Resource != "" {
				o.AddClass(resolve(e.Resource))
				cls.EquivalentTo = appendUnique(cls.EquivalentTo, resolve(e.Resource))
			}
		}
		for _, d := range c.DisjointWith {
			if d.Resource != "" {
				o.AddClass(resolve(d.Resource))
				cls.DisjointWith = appendUnique(cls.DisjointWith, resolve(d.Resource))
			}
		}
	}
	addProps := func(props []xmlProperty, kind PropertyKind) error {
		for _, p := range props {
			if p.About == "" {
				return fmt.Errorf("ontology: %v without rdf:about", kind)
			}
			var domain, rng []string
			for _, d := range p.Domain {
				if d.Resource != "" {
					domain = append(domain, resolve(d.Resource))
				}
			}
			for _, r := range p.Range {
				if r.Resource != "" {
					rng = append(rng, resolve(r.Resource))
				}
			}
			prop := o.AddProperty(resolve(p.About), kind, domain, rng)
			prop.Label = strings.TrimSpace(p.Label)
		}
		return nil
	}
	if err := addProps(doc.ObjectProps, ObjectProperty); err != nil {
		return nil, err
	}
	if err := addProps(doc.DataProps, DatatypeProperty); err != nil {
		return nil, err
	}
	for _, ind := range doc.Individuals {
		if ind.About == "" {
			return nil, fmt.Errorf("ontology: owl:NamedIndividual without rdf:about")
		}
		var types []string
		for _, t := range ind.Types {
			if t.Resource != "" {
				types = append(types, resolve(t.Resource))
			}
		}
		o.AddIndividual(resolve(ind.About), types...)
	}
	return o, nil
}

// ParseString is Parse over a string.
func ParseString(s, fallbackBase string) (*Ontology, error) {
	return Parse(strings.NewReader(s), fallbackBase)
}

// --- serialization ---------------------------------------------------

// Serialize writes the ontology as OWL/XML with conventional prefixes.
// The output parses back via Parse (round-trip safe for classes,
// properties and individual types).
func (o *Ontology) Serialize() []byte {
	var b bytes.Buffer
	b.WriteString(xml.Header)
	fmt.Fprintf(&b, `<rdf:RDF xmlns:rdf=%q xmlns:rdfs=%q xmlns:owl=%q xml:base=%q>`+"\n",
		nsRDF, nsRDFS, nsOWL, o.BaseURI)
	fmt.Fprintf(&b, "  <owl:Ontology rdf:about=%q>", o.BaseURI)
	if o.Label != "" {
		fmt.Fprintf(&b, "<rdfs:label>%s</rdfs:label>", escape(o.Label))
	}
	b.WriteString("</owl:Ontology>\n")

	ref := func(uri string) string {
		if rest, ok := strings.CutPrefix(uri, o.BaseURI+"#"); ok {
			return "#" + rest
		}
		return uri
	}

	for _, c := range o.Classes() {
		fmt.Fprintf(&b, "  <owl:Class rdf:about=%q>\n", ref(c.URI))
		if c.Label != "" {
			fmt.Fprintf(&b, "    <rdfs:label>%s</rdfs:label>\n", escape(c.Label))
		}
		if c.Comment != "" {
			fmt.Fprintf(&b, "    <rdfs:comment>%s</rdfs:comment>\n", escape(c.Comment))
		}
		for _, s := range sorted(c.SubClassOf) {
			fmt.Fprintf(&b, "    <rdfs:subClassOf rdf:resource=%q/>\n", ref(s))
		}
		for _, e := range sorted(c.EquivalentTo) {
			fmt.Fprintf(&b, "    <owl:equivalentClass rdf:resource=%q/>\n", ref(e))
		}
		for _, d := range sorted(c.DisjointWith) {
			fmt.Fprintf(&b, "    <owl:disjointWith rdf:resource=%q/>\n", ref(d))
		}
		b.WriteString("  </owl:Class>\n")
	}
	for _, p := range o.Properties() {
		tag := "owl:ObjectProperty"
		if p.Kind == DatatypeProperty {
			tag = "owl:DatatypeProperty"
		}
		fmt.Fprintf(&b, "  <%s rdf:about=%q>\n", tag, ref(p.URI))
		if p.Label != "" {
			fmt.Fprintf(&b, "    <rdfs:label>%s</rdfs:label>\n", escape(p.Label))
		}
		for _, d := range sorted(p.Domain) {
			fmt.Fprintf(&b, "    <rdfs:domain rdf:resource=%q/>\n", ref(d))
		}
		for _, r := range sorted(p.Range) {
			fmt.Fprintf(&b, "    <rdfs:range rdf:resource=%q/>\n", ref(r))
		}
		fmt.Fprintf(&b, "  </%s>\n", tag)
	}
	for _, ind := range o.Individuals() {
		fmt.Fprintf(&b, "  <owl:NamedIndividual rdf:about=%q>\n", ref(ind.URI))
		for _, t := range sorted(ind.Types) {
			fmt.Fprintf(&b, "    <rdf:type rdf:resource=%q/>\n", ref(t))
		}
		b.WriteString("  </owl:NamedIndividual>\n")
	}
	b.WriteString("</rdf:RDF>\n")
	return b.Bytes()
}

func sorted(ss []string) []string {
	out := append([]string(nil), ss...)
	sort.Strings(out)
	return out
}

func escape(s string) string {
	var b bytes.Buffer
	_ = xml.EscapeText(&b, []byte(s))
	return b.String()
}
