// Package ontology implements the OWL subset Whisper uses for semantic
// data and functional integration (paper §2.1–2.3).
//
// The model covers named classes with subClassOf / equivalentClass /
// disjointWith axioms, object and datatype properties with domain and
// range, and named individuals. A Reasoner computes the subsumption
// closure and exposes the match degrees (exact / plugin / subsume /
// fail) used to match semantic advertisements against WSDL-S
// annotations during discovery.
package ontology

import (
	"fmt"
	"sort"
	"strings"
)

// Thing is the implicit root class of every ontology (owl:Thing).
const Thing = "http://www.w3.org/2002/07/owl#Thing"

// PropertyKind distinguishes object from datatype properties.
type PropertyKind int

// Property kinds.
const (
	ObjectProperty PropertyKind = iota + 1
	DatatypeProperty
)

func (k PropertyKind) String() string {
	switch k {
	case ObjectProperty:
		return "ObjectProperty"
	case DatatypeProperty:
		return "DatatypeProperty"
	default:
		return "UnknownProperty"
	}
}

// Class is a named OWL class.
type Class struct {
	// URI is the full identifier of the class.
	URI string
	// Label is an optional human-readable label.
	Label string
	// Comment is an optional rdfs:comment.
	Comment string
	// SubClassOf lists direct superclass URIs.
	SubClassOf []string
	// EquivalentTo lists classes declared equivalent to this one.
	EquivalentTo []string
	// DisjointWith lists classes declared disjoint with this one.
	DisjointWith []string
}

// Property is a named OWL property.
type Property struct {
	URI    string
	Kind   PropertyKind
	Label  string
	Domain []string
	Range  []string
}

// Individual is a named OWL individual.
type Individual struct {
	URI   string
	Types []string
	// Values maps property URI to asserted values (URIs or literals).
	Values map[string][]string
}

// Ontology is a mutable collection of OWL axioms. It is not safe for
// concurrent mutation; build it up front, then share the (immutable)
// Reasoner compiled from it.
type Ontology struct {
	// BaseURI is the namespace the ontology's own terms live in.
	BaseURI string
	// Label names the ontology.
	Label string

	classes     map[string]*Class
	properties  map[string]*Property
	individuals map[string]*Individual
}

// New creates an empty ontology with the given base URI.
func New(baseURI string) *Ontology {
	return &Ontology{
		BaseURI:     baseURI,
		classes:     make(map[string]*Class),
		properties:  make(map[string]*Property),
		individuals: make(map[string]*Individual),
	}
}

// Term returns baseURI#name, a convenience for building concept URIs.
func (o *Ontology) Term(name string) string {
	if strings.ContainsAny(name, ":/#") {
		return name // already a full URI
	}
	return o.BaseURI + "#" + name
}

// AddClass registers a class (idempotent) and returns it.
func (o *Ontology) AddClass(uri string, opts ...ClassOption) *Class {
	uri = o.Term(uri)
	c, ok := o.classes[uri]
	if !ok {
		c = &Class{URI: uri}
		o.classes[uri] = c
	}
	for _, opt := range opts {
		opt(o, c)
	}
	return c
}

// ClassOption configures a class as it is added.
type ClassOption func(*Ontology, *Class)

// WithLabel sets the class label.
func WithLabel(label string) ClassOption {
	return func(_ *Ontology, c *Class) { c.Label = label }
}

// WithComment sets the class comment.
func WithComment(comment string) ClassOption {
	return func(_ *Ontology, c *Class) { c.Comment = comment }
}

// SubOf declares the class a subclass of each given class (created on
// demand).
func SubOf(supers ...string) ClassOption {
	return func(o *Ontology, c *Class) {
		for _, s := range supers {
			su := o.Term(s)
			if su == c.URI {
				continue
			}
			o.AddClass(su)
			c.SubClassOf = appendUnique(c.SubClassOf, su)
		}
	}
}

// EquivalentTo declares the class equivalent to each given class.
func EquivalentTo(others ...string) ClassOption {
	return func(o *Ontology, c *Class) {
		for _, e := range others {
			eu := o.Term(e)
			if eu == c.URI {
				continue
			}
			o.AddClass(eu)
			c.EquivalentTo = appendUnique(c.EquivalentTo, eu)
		}
	}
}

// DisjointWith declares the class disjoint with each given class.
func DisjointWith(others ...string) ClassOption {
	return func(o *Ontology, c *Class) {
		for _, d := range others {
			du := o.Term(d)
			if du == c.URI {
				continue
			}
			o.AddClass(du)
			c.DisjointWith = appendUnique(c.DisjointWith, du)
		}
	}
}

// AddSubClassAxiom declares sub ⊑ super outside of AddClass.
func (o *Ontology) AddSubClassAxiom(sub, super string) {
	o.AddClass(sub, SubOf(super))
}

// AddEquivalentAxiom declares a ≡ b outside of AddClass.
func (o *Ontology) AddEquivalentAxiom(a, b string) {
	o.AddClass(a, EquivalentTo(b))
}

// AddProperty registers a property.
func (o *Ontology) AddProperty(uri string, kind PropertyKind, domain, rng []string) *Property {
	uri = o.Term(uri)
	p, ok := o.properties[uri]
	if !ok {
		p = &Property{URI: uri, Kind: kind}
		o.properties[uri] = p
	}
	for _, d := range domain {
		du := o.Term(d)
		o.AddClass(du)
		p.Domain = appendUnique(p.Domain, du)
	}
	for _, r := range rng {
		ru := o.Term(r)
		if kind == ObjectProperty {
			o.AddClass(ru)
		}
		p.Range = appendUnique(p.Range, ru)
	}
	return p
}

// AddIndividual registers a named individual with the given types.
func (o *Ontology) AddIndividual(uri string, types ...string) *Individual {
	uri = o.Term(uri)
	ind, ok := o.individuals[uri]
	if !ok {
		ind = &Individual{URI: uri, Values: make(map[string][]string)}
		o.individuals[uri] = ind
	}
	for _, t := range types {
		tu := o.Term(t)
		o.AddClass(tu)
		ind.Types = appendUnique(ind.Types, tu)
	}
	return ind
}

// Class returns the class with the given URI (resolving short names
// against the base URI), or nil.
func (o *Ontology) Class(uri string) *Class { return o.classes[o.Term(uri)] }

// Property returns the named property, or nil.
func (o *Ontology) Property(uri string) *Property { return o.properties[o.Term(uri)] }

// Individual returns the named individual, or nil.
func (o *Ontology) Individual(uri string) *Individual { return o.individuals[o.Term(uri)] }

// Classes returns all classes sorted by URI.
func (o *Ontology) Classes() []*Class {
	out := make([]*Class, 0, len(o.classes))
	for _, c := range o.classes {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URI < out[j].URI })
	return out
}

// Properties returns all properties sorted by URI.
func (o *Ontology) Properties() []*Property {
	out := make([]*Property, 0, len(o.properties))
	for _, p := range o.properties {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URI < out[j].URI })
	return out
}

// Individuals returns all individuals sorted by URI.
func (o *Ontology) Individuals() []*Individual {
	out := make([]*Individual, 0, len(o.individuals))
	for _, ind := range o.individuals {
		out = append(out, ind)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URI < out[j].URI })
	return out
}

// Merge copies every axiom of other into o. Classes present in both
// are unioned axiom-wise. Useful to combine domain ontologies.
func (o *Ontology) Merge(other *Ontology) {
	if other == nil {
		return
	}
	for _, c := range other.classes {
		dst := o.AddClass(c.URI)
		if dst.Label == "" {
			dst.Label = c.Label
		}
		if dst.Comment == "" {
			dst.Comment = c.Comment
		}
		for _, s := range c.SubClassOf {
			o.AddClass(s)
			dst.SubClassOf = appendUnique(dst.SubClassOf, s)
		}
		for _, e := range c.EquivalentTo {
			o.AddClass(e)
			dst.EquivalentTo = appendUnique(dst.EquivalentTo, e)
		}
		for _, d := range c.DisjointWith {
			o.AddClass(d)
			dst.DisjointWith = appendUnique(dst.DisjointWith, d)
		}
	}
	for _, p := range other.properties {
		o.AddProperty(p.URI, p.Kind, p.Domain, p.Range)
	}
	for _, ind := range other.individuals {
		dst := o.AddIndividual(ind.URI, ind.Types...)
		for prop, vals := range ind.Values {
			for _, v := range vals {
				dst.Values[prop] = appendUnique(dst.Values[prop], v)
			}
		}
	}
}

// Validate checks referential integrity: every URI referenced by an
// axiom must be a registered class. The builder maintains this
// invariant; Validate guards ontologies built by the parser.
func (o *Ontology) Validate() error {
	var problems []string
	check := func(ctx, uri string) {
		if uri == Thing {
			return
		}
		if _, ok := o.classes[uri]; !ok {
			problems = append(problems, fmt.Sprintf("%s references unknown class %s", ctx, uri))
		}
	}
	for _, c := range o.classes {
		for _, s := range c.SubClassOf {
			check(c.URI, s)
		}
		for _, e := range c.EquivalentTo {
			check(c.URI, e)
		}
		for _, d := range c.DisjointWith {
			check(c.URI, d)
		}
	}
	for _, p := range o.properties {
		for _, d := range p.Domain {
			check(p.URI, d)
		}
		if p.Kind == ObjectProperty {
			for _, r := range p.Range {
				check(p.URI, r)
			}
		}
	}
	for _, ind := range o.individuals {
		for _, t := range ind.Types {
			check(ind.URI, t)
		}
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		return fmt.Errorf("ontology: invalid: %s", strings.Join(problems, "; "))
	}
	return nil
}

func appendUnique(dst []string, v string) []string {
	for _, x := range dst {
		if x == v {
			return dst
		}
	}
	return append(dst, v)
}
