package ontology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// animal ontology used across reasoner tests:
//
//	Thing > Animal > Mammal > {Dog ≡ Canine, Cat}, Dog ⊥ Cat
//	Thing > Animal > Bird
//	Thing > Plant  ⊥ Animal
func animalOntology() *Ontology {
	o := New("http://example.org/animals")
	o.AddClass("Animal")
	o.AddClass("Plant", DisjointWith("Animal"))
	o.AddClass("Mammal", SubOf("Animal"))
	o.AddClass("Bird", SubOf("Animal"))
	o.AddClass("Dog", SubOf("Mammal"))
	o.AddClass("Canine", EquivalentTo("Dog"))
	o.AddClass("Cat", SubOf("Mammal"), DisjointWith("Dog"))
	return o
}

func TestSubsumptionBasics(t *testing.T) {
	r := NewReasoner(animalOntology())
	tests := []struct {
		sub, super string
		want       bool
	}{
		{"Dog", "Mammal", true},
		{"Dog", "Animal", true},
		{"Dog", "Dog", true},
		{"Canine", "Mammal", true}, // through equivalence
		{"Mammal", "Dog", false},
		{"Dog", "Bird", false},
		{"Dog", Thing, true},
		{"Plant", Thing, true},
		{"Cat", "Animal", true},
	}
	for _, tt := range tests {
		if got := r.IsSubClassOf(tt.sub, tt.super); got != tt.want {
			t.Errorf("IsSubClassOf(%s, %s) = %v, want %v", tt.sub, tt.super, got, tt.want)
		}
	}
}

func TestEquivalence(t *testing.T) {
	r := NewReasoner(animalOntology())
	if !r.AreEquivalent("Dog", "Canine") {
		t.Error("Dog and Canine should be equivalent")
	}
	if !r.AreEquivalent("Canine", "Dog") {
		t.Error("equivalence must be symmetric")
	}
	if r.AreEquivalent("Dog", "Cat") {
		t.Error("Dog and Cat must not be equivalent")
	}
}

func TestSubClassCycleImpliesEquivalence(t *testing.T) {
	o := New("http://example.org/cyc")
	o.AddClass("A", SubOf("B"))
	o.AddClass("B", SubOf("C"))
	o.AddClass("C", SubOf("A"))
	o.AddClass("D", SubOf("A"))
	r := NewReasoner(o)
	if !r.AreEquivalent("A", "B") || !r.AreEquivalent("B", "C") {
		t.Error("classes on a subClassOf cycle must become equivalent")
	}
	if !r.IsSubClassOf("D", "C") {
		t.Error("D ⊑ A and A ≡ C, so D ⊑ C")
	}
	if r.AreEquivalent("D", "A") {
		t.Error("D is a proper subclass, not equivalent")
	}
}

func TestDisjointness(t *testing.T) {
	r := NewReasoner(animalOntology())
	tests := []struct {
		a, b string
		want bool
	}{
		{"Dog", "Cat", true},
		{"Cat", "Dog", true},
		{"Animal", "Plant", true},
		{"Mammal", "Plant", true}, // inherited: Mammal ⊑ Animal ⊥ Plant
		{"Dog", "Plant", true},
		{"Dog", "Bird", false}, // siblings but not declared disjoint
		{"Dog", "Dog", false},
		{"Canine", "Cat", true}, // through equivalence with Dog
	}
	for _, tt := range tests {
		if got := r.AreDisjoint(tt.a, tt.b); got != tt.want {
			t.Errorf("AreDisjoint(%s, %s) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestAncestorsDescendants(t *testing.T) {
	o := animalOntology()
	r := NewReasoner(o)
	anc := r.Ancestors("Dog")
	found := map[string]bool{}
	for _, a := range anc {
		found[a] = true
	}
	if !found[o.Term("Mammal")] || !found[o.Term("Animal")] {
		t.Errorf("Dog ancestors = %v, want Mammal and Animal", anc)
	}
	desc := r.Descendants("Animal")
	foundD := map[string]bool{}
	for _, d := range desc {
		foundD[d] = true
	}
	if !foundD[r.repOf("Dog")] || !foundD[r.repOf("Bird")] {
		t.Errorf("Animal descendants = %v, want Dog and Bird reps", desc)
	}
}

func TestDepthAndLCA(t *testing.T) {
	r := NewReasoner(animalOntology())
	if d := r.Depth(Thing); d != 0 {
		t.Errorf("Depth(Thing) = %d, want 0", d)
	}
	if d := r.Depth("Animal"); d != 1 {
		t.Errorf("Depth(Animal) = %d, want 1", d)
	}
	if d := r.Depth("Dog"); d != 3 {
		t.Errorf("Depth(Dog) = %d, want 3", d)
	}
	lca, depth := r.LeastCommonAncestor("Dog", "Cat")
	if lca != r.repOf("Mammal") || depth != 2 {
		t.Errorf("LCA(Dog, Cat) = %s@%d, want Mammal@2", lca, depth)
	}
	lca, depth = r.LeastCommonAncestor("Dog", "Plant")
	if depth != 0 {
		t.Errorf("LCA(Dog, Plant) = %s@%d, want Thing@0", lca, depth)
	}
}

func TestSimilarity(t *testing.T) {
	r := NewReasoner(animalOntology())
	if s := r.Similarity("Dog", "Canine"); s != 1 {
		t.Errorf("Similarity(Dog, Canine) = %v, want 1", s)
	}
	if s := r.Similarity("Dog", "Bird"); s <= 0 || s >= 1 {
		t.Errorf("Similarity(Dog, Bird) = %v, want in (0,1)", s)
	}
	if s := r.Similarity("Dog", "Plant"); s != 0 {
		t.Errorf("Similarity(Dog, Plant) = %v, want 0 (disjoint)", s)
	}
	if s := r.Similarity("Dog", "Cat"); s != 0 {
		t.Errorf("Similarity(Dog, Cat) = %v, want 0 (declared disjoint)", s)
	}
	mammalBird := r.Similarity("Mammal", "Bird")
	dogBird := r.Similarity("Dog", "Bird")
	if mammalBird <= dogBird {
		t.Errorf("Similarity(Mammal,Bird)=%v should exceed Similarity(Dog,Bird)=%v — deeper mismatch dilutes similarity", mammalBird, dogBird)
	}
}

func TestUnknownConceptsDegradeGracefully(t *testing.T) {
	r := NewReasoner(animalOntology())
	if r.IsSubClassOf("http://x/Unknown", "Animal") {
		t.Error("unknown concept must not be subsumed by Animal")
	}
	if !r.AreEquivalent("http://x/Unknown", "http://x/Unknown") {
		t.Error("unknown concept should be equivalent to itself")
	}
	if r.Knows("http://x/Unknown") {
		t.Error("Knows should be false for unknown concepts")
	}
	if s := r.Similarity("http://x/Unknown", "Animal"); s != 0 {
		t.Errorf("similarity with unknown = %v, want 0", s)
	}
}

// --- property tests --------------------------------------------------

// randomOntology builds a random DAG-ish ontology for property tests.
func randomOntology(rng *rand.Rand, n int) *Ontology {
	o := New("http://example.org/rand")
	names := make([]string, n)
	for i := range names {
		names[i] = "C" + string(rune('A'+i%26)) + string(rune('0'+i/26))
		o.AddClass(names[i])
	}
	for i := 1; i < n; i++ {
		// Each class gets 1-2 superclasses among earlier classes
		// (guarantees a DAG before the reasoner even runs).
		for k := 0; k < 1+rng.Intn(2); k++ {
			j := rng.Intn(i)
			o.AddClass(names[i], SubOf(names[j]))
		}
	}
	// Sprinkle equivalences.
	for k := 0; k < n/4; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			o.AddClass(names[a], EquivalentTo(names[b]))
		}
	}
	return o
}

func TestSubsumptionIsPartialOrderProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(15)
		o := randomOntology(rng, n)
		r := NewReasoner(o)
		classes := o.Classes()
		// Reflexivity.
		for _, c := range classes {
			if !r.IsSubClassOf(c.URI, c.URI) {
				return false
			}
		}
		// Transitivity + antisymmetry-up-to-equivalence on a sample.
		for i := 0; i < 50; i++ {
			a := classes[rng.Intn(len(classes))].URI
			b := classes[rng.Intn(len(classes))].URI
			c := classes[rng.Intn(len(classes))].URI
			if r.IsSubClassOf(a, b) && r.IsSubClassOf(b, c) && !r.IsSubClassOf(a, c) {
				return false
			}
			if r.IsSubClassOf(a, b) && r.IsSubClassOf(b, a) && !r.AreEquivalent(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSimilaritySymmetricAndBoundedProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := randomOntology(rng, 5+rng.Intn(15))
		r := NewReasoner(o)
		classes := o.Classes()
		for i := 0; i < 30; i++ {
			a := classes[rng.Intn(len(classes))].URI
			b := classes[rng.Intn(len(classes))].URI
			sab, sba := r.Similarity(a, b), r.Similarity(b, a)
			if sab != sba || sab < 0 || sab > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEquivalenceIsCongruenceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := randomOntology(rng, 5+rng.Intn(15))
		r := NewReasoner(o)
		classes := o.Classes()
		for i := 0; i < 30; i++ {
			a := classes[rng.Intn(len(classes))].URI
			b := classes[rng.Intn(len(classes))].URI
			c := classes[rng.Intn(len(classes))].URI
			if r.AreEquivalent(a, b) {
				// a and b must behave identically under subsumption.
				if r.IsSubClassOf(a, c) != r.IsSubClassOf(b, c) {
					return false
				}
				if r.IsSubClassOf(c, a) != r.IsSubClassOf(c, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
