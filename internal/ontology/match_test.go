package ontology

import "testing"

func TestMatchConceptsDegrees(t *testing.T) {
	r := NewReasoner(animalOntology())
	tests := []struct {
		advertised, requested string
		want                  MatchDegree
	}{
		{"Dog", "Dog", MatchExact},
		{"Canine", "Dog", MatchExact},
		{"Dog", "Mammal", MatchPlugin},      // more specific than asked
		{"Mammal", "Dog", MatchSubsume},     // more general than asked
		{"Dog", "Cat", MatchFail},           // disjoint siblings
		{"Dog", "Bird", MatchIntersection},  // share Animal
		{"Dog", "Plant", MatchFail},         // inherited disjointness
		{"Dog", "http://x/Nope", MatchFail}, // unknown concept
	}
	for _, tt := range tests {
		if got := r.MatchConcepts(tt.advertised, tt.requested); got != tt.want {
			t.Errorf("MatchConcepts(%s, %s) = %v, want %v",
				tt.advertised, tt.requested, got, tt.want)
		}
	}
}

func TestMatchDegreeOrderingAndScores(t *testing.T) {
	order := []MatchDegree{MatchExact, MatchPlugin, MatchSubsume, MatchIntersection, MatchFail}
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Errorf("degree %v should sort before %v", order[i-1], order[i])
		}
		if order[i-1].Score() <= order[i].Score() {
			t.Errorf("score of %v should exceed %v", order[i-1], order[i])
		}
	}
	if !MatchPlugin.Satisfies(MatchSubsume) {
		t.Error("plugin should satisfy a subsume threshold")
	}
	if MatchSubsume.Satisfies(MatchExact) {
		t.Error("subsume must not satisfy an exact threshold")
	}
}

func TestMatchDegreeString(t *testing.T) {
	tests := map[MatchDegree]string{
		MatchExact:        "exact",
		MatchPlugin:       "plugin",
		MatchSubsume:      "subsume",
		MatchIntersection: "intersection",
		MatchFail:         "fail",
	}
	for d, want := range tests {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(d), got, want)
		}
	}
}

func TestMatchSignatureExact(t *testing.T) {
	o := University()
	r := NewReasoner(o)
	adv := Signature{
		Action:  ConceptStudentInformation,
		Inputs:  []string{ConceptStudentID},
		Outputs: []string{ConceptStudentInfo},
	}
	m := r.MatchSignature(adv, adv.Clone())
	if m.Degree != MatchExact {
		t.Errorf("self-match degree = %v, want exact", m.Degree)
	}
	if m.Score != 1 {
		t.Errorf("self-match score = %v, want 1", m.Score)
	}
}

func TestMatchSignatureThroughEquivalence(t *testing.T) {
	o := University()
	r := NewReasoner(o)
	// The peer advertises synonyms: StudentLookup ≡ StudentInformation,
	// MatriculationNumber ≡ StudentID, StudentRecord ≡ StudentInfo.
	adv := Signature{
		Action:  o.Term("StudentLookup"),
		Inputs:  []string{o.Term("MatriculationNumber")},
		Outputs: []string{o.Term("StudentRecord")},
	}
	req := Signature{
		Action:  ConceptStudentInformation,
		Inputs:  []string{ConceptStudentID},
		Outputs: []string{ConceptStudentInfo},
	}
	m := r.MatchSignature(adv, req)
	if m.Degree != MatchExact {
		t.Errorf("synonym match degree = %v, want exact (pairs: %v)", m.Degree, m.Pairs)
	}
}

func TestMatchSignaturePlugin(t *testing.T) {
	o := University()
	r := NewReasoner(o)
	// Peer produces TranscriptInfo ⊑ StudentInfo via the more specific
	// TranscriptRetrieval ⊑ StudentInformation action.
	adv := Signature{
		Action:  o.Term("TranscriptRetrieval"),
		Inputs:  []string{ConceptStudentID},
		Outputs: []string{o.Term("TranscriptInfo")},
	}
	req := Signature{
		Action:  ConceptStudentInformation,
		Inputs:  []string{ConceptStudentID},
		Outputs: []string{ConceptStudentInfo},
	}
	m := r.MatchSignature(adv, req)
	if m.Degree != MatchPlugin {
		t.Errorf("degree = %v, want plugin (pairs: %v)", m.Degree, m.Pairs)
	}
}

func TestMatchSignatureFailsOnDisjointAction(t *testing.T) {
	o := University()
	r := NewReasoner(o)
	adv := Signature{
		Action:  o.Term("GradeSubmission"), // disjoint with StudentInformation
		Inputs:  []string{ConceptStudentID},
		Outputs: []string{ConceptStudentInfo},
	}
	req := Signature{
		Action:  ConceptStudentInformation,
		Inputs:  []string{ConceptStudentID},
		Outputs: []string{ConceptStudentInfo},
	}
	m := r.MatchSignature(adv, req)
	if m.Degree != MatchFail {
		t.Errorf("degree = %v, want fail", m.Degree)
	}
	if m.Score != 0 {
		t.Errorf("failed match score = %v, want 0", m.Score)
	}
}

func TestMatchSignatureMissingOutputFails(t *testing.T) {
	o := University()
	r := NewReasoner(o)
	adv := Signature{
		Action: ConceptStudentInformation,
		Inputs: []string{ConceptStudentID},
		// No outputs advertised at all.
	}
	req := Signature{
		Action:  ConceptStudentInformation,
		Inputs:  []string{ConceptStudentID},
		Outputs: []string{ConceptStudentInfo},
	}
	if m := r.MatchSignature(adv, req); m.Degree != MatchFail {
		t.Errorf("degree = %v, want fail when provider lacks the output", m.Degree)
	}
}

func TestMatchSignatureExtraRequestedInputIsFine(t *testing.T) {
	o := University()
	r := NewReasoner(o)
	adv := Signature{
		Action:  ConceptStudentInformation,
		Inputs:  []string{ConceptStudentID},
		Outputs: []string{ConceptStudentInfo},
	}
	req := Signature{
		Action:  ConceptStudentInformation,
		Inputs:  []string{ConceptStudentID, o.Term("ContactInfo")}, // extra supply
		Outputs: []string{ConceptStudentInfo},
	}
	if m := r.MatchSignature(adv, req); m.Degree != MatchExact {
		t.Errorf("degree = %v, want exact — extra requester inputs are harmless", m.Degree)
	}
}

func TestSignatureEqualAndClone(t *testing.T) {
	s := Signature{Action: "a", Inputs: []string{"i1", "i2"}, Outputs: []string{"o"}}
	c := s.Clone()
	if !s.Equal(c) {
		t.Error("clone should equal original")
	}
	c.Inputs[0] = "changed"
	if s.Inputs[0] == "changed" {
		t.Error("clone must be deep")
	}
	perm := Signature{Action: "a", Inputs: []string{"i2", "i1"}, Outputs: []string{"o"}}
	if !s.Equal(perm) {
		t.Error("Equal should be order-insensitive on concept sets")
	}
	diff := Signature{Action: "b", Inputs: []string{"i1", "i2"}, Outputs: []string{"o"}}
	if s.Equal(diff) {
		t.Error("different actions must not be equal")
	}
}
