package ontology

import "testing"

// inferenceOntology: Person > Student; enrolledIn: Student → Course;
// teaches: Teacher → Course. Student ⊥ Course.
func inferenceOntology() *Ontology {
	o := New("http://example.org/campus")
	o.AddClass("Person")
	o.AddClass("Student", SubOf("Person"))
	o.AddClass("Teacher", SubOf("Person"))
	o.AddClass("Course", DisjointWith("Person"))
	o.AddProperty("enrolledIn", ObjectProperty, []string{"Student"}, []string{"Course"})
	o.AddProperty("name", DatatypeProperty, []string{"Person"}, []string{"http://www.w3.org/2001/XMLSchema#string"})
	return o
}

func TestInferredTypesFromAssertion(t *testing.T) {
	o := inferenceOntology()
	o.AddIndividual("ana", "Student")
	r := NewReasoner(o)
	if !r.IsInstanceOf("ana", "Student") {
		t.Error("asserted type missing")
	}
	if !r.IsInstanceOf("ana", "Person") {
		t.Error("superclass type not inferred")
	}
	if r.IsInstanceOf("ana", "Course") {
		t.Error("unrelated type inferred")
	}
}

func TestInferredTypesFromDomain(t *testing.T) {
	o := inferenceOntology()
	ind := o.AddIndividual("bob") // no asserted type
	ind.Values[o.Term("enrolledIn")] = []string{o.Term("algebra")}
	o.AddIndividual("algebra")
	r := NewReasoner(o)
	if !r.IsInstanceOf("bob", "Student") {
		t.Error("domain inference failed: bob enrolledIn → Student")
	}
	if !r.IsInstanceOf("bob", "Person") {
		t.Error("inferred type's superclasses missing")
	}
}

func TestInferredTypesFromRange(t *testing.T) {
	o := inferenceOntology()
	bob := o.AddIndividual("bob", "Student")
	bob.Values[o.Term("enrolledIn")] = []string{o.Term("algebra")}
	o.AddIndividual("algebra") // no asserted type
	r := NewReasoner(o)
	if !r.IsInstanceOf("algebra", "Course") {
		t.Error("range inference failed: value of enrolledIn → Course")
	}
}

func TestDatatypePropertyDoesNotRangeInfer(t *testing.T) {
	o := inferenceOntology()
	bob := o.AddIndividual("bob", "Student")
	bob.Values[o.Term("name")] = []string{"Bob"}
	o.AddIndividual("Bob") // an individual that happens to share the literal
	r := NewReasoner(o)
	if got := r.InferredTypes("Bob"); len(got) != 0 {
		t.Errorf("datatype property must not trigger range inference: %v", got)
	}
}

func TestConsistentIndividual(t *testing.T) {
	o := inferenceOntology()
	o.AddIndividual("ok", "Student")
	// Broken: asserted as both Person-subclass and the disjoint Course.
	o.AddIndividual("broken", "Student", "Course")
	r := NewReasoner(o)
	if !r.ConsistentIndividual("ok") {
		t.Error("ok individual reported inconsistent")
	}
	if r.ConsistentIndividual("broken") {
		t.Error("disjoint-typed individual reported consistent")
	}
}

func TestInferredTypesUnknownIndividual(t *testing.T) {
	r := NewReasoner(inferenceOntology())
	if got := r.InferredTypes("ghost"); got != nil {
		t.Errorf("unknown individual types = %v, want nil", got)
	}
	if r.IsInstanceOf("ghost", "Person") {
		t.Error("unknown individual should not be an instance of anything")
	}
}
