package ontology

import "sort"

// InferredTypes computes the full set of classes an individual belongs
// to, applying the OWL-lite inferences Whisper's data integration
// relies on:
//
//   - asserted types and all their superclasses,
//   - rdfs:domain — if the individual asserts property p and p has
//     domain D, the individual is a D,
//   - rdfs:range — if the individual appears as the value of an object
//     property p with range R (in any other individual's assertions),
//     the individual is an R.
//
// The result contains representative URIs and is sorted. An unknown
// individual yields nil.
func (r *Reasoner) InferredTypes(individualURI string) []string {
	ind := r.onto.Individual(individualURI)
	if ind == nil {
		return nil
	}
	types := make(map[string]bool)
	addWithAncestors := func(classURI string) {
		rep := r.repOf(classURI)
		if _, known := r.ancestors[rep]; !known {
			return
		}
		types[rep] = true
		for anc := range r.ancestors[rep] {
			types[anc] = true
		}
	}
	// Asserted types.
	for _, t := range ind.Types {
		addWithAncestors(t)
	}
	// Domain inference from the individual's own property assertions.
	for propURI := range ind.Values {
		prop := r.onto.Property(propURI)
		if prop == nil {
			continue
		}
		for _, d := range prop.Domain {
			addWithAncestors(d)
		}
	}
	// Range inference: scan other individuals' object-property values.
	for _, other := range r.onto.Individuals() {
		for propURI, vals := range other.Values {
			prop := r.onto.Property(propURI)
			if prop == nil || prop.Kind != ObjectProperty {
				continue
			}
			for _, v := range vals {
				if r.onto.Term(v) != ind.URI {
					continue
				}
				for _, rng := range prop.Range {
					addWithAncestors(rng)
				}
			}
		}
	}
	out := make([]string, 0, len(types))
	for t := range types {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// IsInstanceOf reports whether the individual is (inferably) an
// instance of the class.
func (r *Reasoner) IsInstanceOf(individualURI, classURI string) bool {
	rep := r.repOf(classURI)
	for _, t := range r.InferredTypes(individualURI) {
		if t == rep {
			return true
		}
	}
	return false
}

// ConsistentIndividual reports whether the individual's inferred types
// contain no declared-disjoint pair; an inconsistent individual
// signals a modeling error in the annotations.
func (r *Reasoner) ConsistentIndividual(individualURI string) bool {
	types := r.InferredTypes(individualURI)
	for i := 0; i < len(types); i++ {
		for j := i + 1; j < len(types); j++ {
			if r.AreDisjoint(types[i], types[j]) {
				return false
			}
		}
	}
	return true
}
