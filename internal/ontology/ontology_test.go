package ontology

import "testing"

func TestTermResolution(t *testing.T) {
	o := New("http://example.org/base")
	if got := o.Term("Student"); got != "http://example.org/base#Student" {
		t.Errorf("Term(Student) = %q", got)
	}
	full := "http://other.org/onto#Thing2"
	if got := o.Term(full); got != full {
		t.Errorf("Term(full URI) = %q, want unchanged", got)
	}
}

func TestAddClassIdempotent(t *testing.T) {
	o := New("http://x")
	a := o.AddClass("A", WithLabel("first"))
	b := o.AddClass("A")
	if a != b {
		t.Error("AddClass should return the same class instance")
	}
	if b.Label != "first" {
		t.Error("re-adding must not wipe existing fields")
	}
	if len(o.Classes()) != 1 {
		t.Errorf("classes = %d, want 1", len(o.Classes()))
	}
}

func TestSubOfIgnoresSelfLoop(t *testing.T) {
	o := New("http://x")
	c := o.AddClass("A", SubOf("A"))
	if len(c.SubClassOf) != 0 {
		t.Errorf("self subclass recorded: %v", c.SubClassOf)
	}
}

func TestSubOfCreatesReferencedClasses(t *testing.T) {
	o := New("http://x")
	o.AddClass("Sub", SubOf("Super"))
	if o.Class("Super") == nil {
		t.Error("SubOf should create the superclass")
	}
	if err := o.Validate(); err != nil {
		t.Errorf("validate after builder use: %v", err)
	}
}

func TestValidateCatchesDanglingRefs(t *testing.T) {
	o := New("http://x")
	c := o.AddClass("A")
	c.SubClassOf = append(c.SubClassOf, "http://x#Ghost") // bypass builder
	if err := o.Validate(); err == nil {
		t.Error("expected validation error for dangling subclass reference")
	}
}

func TestMergeUnionsAxioms(t *testing.T) {
	a := New("http://a")
	a.AddClass("X", WithLabel("x"), SubOf("Y"))
	b := New("http://b")
	b.AddClass("Z", SubOf("W"))
	b.AddProperty("p", ObjectProperty, []string{"Z"}, []string{"W"})
	b.AddIndividual("i", "Z")

	merged := New("http://m")
	merged.Merge(a)
	merged.Merge(b)
	merged.Merge(nil) // no-op

	if merged.Class("http://a#X") == nil || merged.Class("http://b#Z") == nil {
		t.Fatal("merged ontology missing classes")
	}
	if merged.Property("http://b#p") == nil {
		t.Error("merged ontology missing property")
	}
	if merged.Individual("http://b#i") == nil {
		t.Error("merged ontology missing individual")
	}
	if err := merged.Validate(); err != nil {
		t.Errorf("merged validate: %v", err)
	}
}

func TestDomainOntologiesValid(t *testing.T) {
	for _, tt := range []struct {
		name string
		o    *Ontology
	}{
		{"University", University()},
		{"B2B", B2B()},
		{"Combined", Combined()},
	} {
		if err := tt.o.Validate(); err != nil {
			t.Errorf("%s: %v", tt.name, err)
		}
		if len(tt.o.Classes()) == 0 {
			t.Errorf("%s: no classes", tt.name)
		}
	}
}

func TestUniversityScenarioSemantics(t *testing.T) {
	r := NewReasoner(University())
	// The paper's scenario concepts must be wired.
	if !r.Knows(ConceptStudentID) || !r.Knows(ConceptStudentInfo) || !r.Knows(ConceptStudentInformation) {
		t.Fatal("scenario concepts missing")
	}
	if !r.AreEquivalent("StudentRecord", "StudentInfo") {
		t.Error("StudentRecord ≡ StudentInfo expected")
	}
	if !r.IsSubClassOf("TranscriptInfo", "StudentInfo") {
		t.Error("TranscriptInfo ⊑ StudentInfo expected")
	}
	if !r.AreDisjoint("EmployeeInfo", "StudentInfo") {
		t.Error("EmployeeInfo ⊥ StudentInfo expected")
	}
}

func TestB2BScenarioSemantics(t *testing.T) {
	r := NewReasoner(B2B())
	if !r.AreEquivalent("CreditRequest", "LoanApplication") {
		t.Error("CreditRequest ≡ LoanApplication expected")
	}
	if !r.AreDisjoint("ClaimProcessing", "LoanApproval") {
		t.Error("ClaimProcessing ⊥ LoanApproval expected")
	}
	if !r.IsSubClassOf("CreditScoring", "LoanApproval") {
		t.Error("CreditScoring ⊑ LoanApproval expected")
	}
}

func TestCombinedKeepsBothDomains(t *testing.T) {
	r := NewReasoner(Combined())
	if !r.IsSubClassOf(ConceptStudentID, UniversityNS+"#Identifier") {
		t.Error("combined: university axioms lost")
	}
	if !r.IsSubClassOf(ConceptClaimID, B2BNS+"#Identifier") {
		t.Error("combined: b2b axioms lost")
	}
}
