package ontology

import "testing"

func BenchmarkReasonerCompile(b *testing.B) {
	o := Combined()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewReasoner(o)
	}
}

func BenchmarkIsSubClassOf(b *testing.B) {
	r := NewReasoner(Combined())
	sub := UniversityNS + "#GradeReport"
	super := UniversityNS + "#PersonInfo"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.IsSubClassOf(sub, super)
	}
}

func BenchmarkMatchSignature(b *testing.B) {
	o := University()
	r := NewReasoner(o)
	adv := Signature{
		Action:  o.Term("StudentLookup"),
		Inputs:  []string{o.Term("MatriculationNumber")},
		Outputs: []string{o.Term("StudentRecord")},
	}
	req := Signature{
		Action:  ConceptStudentInformation,
		Inputs:  []string{ConceptStudentID},
		Outputs: []string{ConceptStudentInfo},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.MatchSignature(adv, req)
	}
}

func BenchmarkSimilarity(b *testing.B) {
	r := NewReasoner(University())
	a := UniversityNS + "#GradeReport"
	c := UniversityNS + "#EnrollmentInfo"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Similarity(a, c)
	}
}

func BenchmarkSerializeParse(b *testing.B) {
	o := Combined()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data := o.Serialize()
		if _, err := ParseString(string(data), ""); err != nil {
			b.Fatal(err)
		}
	}
}
