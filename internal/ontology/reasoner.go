package ontology

import (
	"sort"
	"sync/atomic"
)

// reasonerVersions mints a unique version per compiled Reasoner, so
// downstream caches (the proxy's semantic match cache) can detect an
// ontology change by comparing versions instead of deep-comparing
// ontologies.
var reasonerVersions atomic.Uint64

// Reasoner is an immutable compiled view of an ontology supporting
// subsumption, equivalence, disjointness and similarity queries. It is
// safe for concurrent use.
//
// The compilation handles the usual OWL-lite corner cases:
//
//   - equivalentClass axioms are symmetric and transitive (union-find),
//   - a cycle of subClassOf axioms makes all classes on the cycle
//     equivalent (strongly connected components are merged),
//   - every class is implicitly a subclass of owl:Thing,
//   - disjointness is inherited downward: if A ⊥ B then every subclass
//     of A is disjoint with every subclass of B.
type Reasoner struct {
	onto    *Ontology
	version uint64

	// rep maps class URI to its equivalence-group representative.
	rep map[string]string
	// members maps representative to the URIs in its group.
	members map[string][]string
	// ancestors maps representative to the set of representative
	// ancestors (reflexive: includes itself; always includes Thing).
	ancestors map[string]map[string]bool
	// depth maps representative to its depth below Thing (Thing = 0).
	depth map[string]int
	// disjoint maps representative to directly-declared disjoint reps.
	disjoint map[string]map[string]bool
}

// NewReasoner compiles an ontology. The ontology must not be mutated
// afterwards (compile a new reasoner if it is).
func NewReasoner(o *Ontology) *Reasoner {
	r := &Reasoner{
		onto:      o,
		version:   reasonerVersions.Add(1),
		rep:       make(map[string]string),
		members:   make(map[string][]string),
		ancestors: make(map[string]map[string]bool),
		depth:     make(map[string]int),
		disjoint:  make(map[string]map[string]bool),
	}
	r.compile()
	return r
}

// Ontology returns the source ontology.
func (r *Reasoner) Ontology() *Ontology { return r.onto }

// Version identifies this compiled reasoner: every NewReasoner call
// yields a distinct version, so two reasoners with equal versions are
// the same object. Caches keyed on (signature, Version) are thereby
// invalidated whenever the ontology is recompiled.
func (r *Reasoner) Version() uint64 { return r.version }

// --- compilation -----------------------------------------------------

type unionFind struct{ parent map[string]string }

func newUnionFind() *unionFind { return &unionFind{parent: make(map[string]string)} }

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	root := u.find(p)
	u.parent[x] = root
	return root
}

func (u *unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		// Deterministic representative: lexicographically smallest.
		if rb < ra {
			ra, rb = rb, ra
		}
		u.parent[rb] = ra
	}
}

func (r *Reasoner) compile() {
	uf := newUnionFind()
	uris := make([]string, 0, len(r.onto.classes)+1)
	for uri := range r.onto.classes {
		uris = append(uris, uri)
	}
	uris = append(uris, Thing)
	sort.Strings(uris)
	for _, uri := range uris {
		uf.find(uri)
	}

	// 1. Union equivalence axioms.
	for _, uri := range uris {
		c := r.onto.classes[uri]
		if c == nil {
			continue
		}
		for _, e := range c.EquivalentTo {
			uf.union(uri, e)
		}
	}

	// 2. Collapse subClassOf cycles: iterate SCC merging until fixpoint.
	// Ontologies are tiny (hundreds of classes), so the simple
	// quadratic fixpoint is more than fast enough and far easier to
	// audit than Tarjan over a mutating quotient graph.
	for {
		merged := false
		edges := r.quotientEdges(uf, uris)
		// Detect cycles via DFS on the quotient graph.
		for _, cyc := range findCycles(edges) {
			for i := 1; i < len(cyc); i++ {
				if uf.find(cyc[0]) != uf.find(cyc[i]) {
					uf.union(cyc[0], cyc[i])
					merged = true
				}
			}
		}
		if !merged {
			break
		}
	}

	// 3. Freeze representatives and membership.
	for _, uri := range uris {
		rep := uf.find(uri)
		r.rep[uri] = rep
		r.members[rep] = append(r.members[rep], uri)
	}
	for rep := range r.members {
		sort.Strings(r.members[rep])
	}

	// 4. Ancestor closure over the acyclic quotient graph.
	edges := r.quotientEdges(uf, uris)
	thingRep := r.rep[Thing]
	var ancOf func(rep string) map[string]bool
	visiting := make(map[string]bool)
	ancOf = func(rep string) map[string]bool {
		if a, ok := r.ancestors[rep]; ok {
			return a
		}
		if visiting[rep] {
			// Defensive: cycles were merged above, but never recurse
			// forever if an edge survived.
			return map[string]bool{rep: true}
		}
		visiting[rep] = true
		defer delete(visiting, rep)
		a := map[string]bool{rep: true, thingRep: true}
		for _, super := range edges[rep] {
			for anc := range ancOf(super) {
				a[anc] = true
			}
		}
		r.ancestors[rep] = a
		return a
	}
	for rep := range r.members {
		ancOf(rep)
	}

	// 5. Depth below Thing: longest path from Thing, computed from the
	// ancestor sets (depth = |proper ancestors on the longest chain|).
	// Using longest path makes Wu-Palmer similarity favour specific
	// concepts, matching intuition on deep domain ontologies.
	var depthOf func(rep string) int
	depthMemo := make(map[string]int)
	depthVisiting := make(map[string]bool)
	depthOf = func(rep string) int {
		if d, ok := depthMemo[rep]; ok {
			return d
		}
		if rep == thingRep || depthVisiting[rep] {
			return 0
		}
		depthVisiting[rep] = true
		defer delete(depthVisiting, rep)
		best := 0
		for _, super := range edges[rep] {
			if d := depthOf(super); d > best {
				best = d
			}
		}
		// A class with no declared superclasses sits directly below
		// Thing at depth 1.
		d := best + 1
		depthMemo[rep] = d
		return d
	}
	for rep := range r.members {
		r.depth[rep] = depthOf(rep)
	}
	r.depth[thingRep] = 0

	// 6. Declared disjointness between representatives.
	for _, uri := range uris {
		c := r.onto.classes[uri]
		if c == nil {
			continue
		}
		for _, d := range c.DisjointWith {
			ra, rb := r.rep[uri], r.rep[d]
			if ra == rb {
				continue
			}
			if r.disjoint[ra] == nil {
				r.disjoint[ra] = make(map[string]bool)
			}
			if r.disjoint[rb] == nil {
				r.disjoint[rb] = make(map[string]bool)
			}
			r.disjoint[ra][rb] = true
			r.disjoint[rb][ra] = true
		}
	}
}

// quotientEdges returns superclass edges between representatives.
func (r *Reasoner) quotientEdges(uf *unionFind, uris []string) map[string][]string {
	edges := make(map[string][]string)
	for _, uri := range uris {
		c := r.onto.classes[uri]
		if c == nil {
			continue
		}
		from := uf.find(uri)
		for _, super := range c.SubClassOf {
			to := uf.find(super)
			if from != to {
				edges[from] = appendUnique(edges[from], to)
			}
		}
	}
	for from := range edges {
		sort.Strings(edges[from])
	}
	return edges
}

// findCycles returns one representative cycle per strongly connected
// component with more than one node (or a self-loop).
func findCycles(edges map[string][]string) [][]string {
	// Tarjan's SCC.
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var counter int
	var sccs [][]string

	nodes := make([]string, 0, len(edges))
	seen := make(map[string]bool)
	for from, tos := range edges {
		if !seen[from] {
			nodes = append(nodes, from)
			seen[from] = true
		}
		for _, to := range tos {
			if !seen[to] {
				nodes = append(nodes, to)
				seen[to] = true
			}
		}
	}
	sort.Strings(nodes)

	var strongconnect func(v string)
	strongconnect = func(v string) {
		counter++
		index[v] = counter
		low[v] = counter
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range edges[v] {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sccs = append(sccs, scc)
			}
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}
	return sccs
}

// --- queries ---------------------------------------------------------

// repOf resolves a URI (short names allowed) to its representative.
// Unknown classes are their own representative, so queries on unknown
// concepts degrade gracefully to identity semantics.
func (r *Reasoner) repOf(uri string) string {
	uri = r.onto.Term(uri)
	if rep, ok := r.rep[uri]; ok {
		return rep
	}
	return uri
}

// Knows reports whether the concept is declared in the ontology.
func (r *Reasoner) Knows(uri string) bool {
	uri = r.onto.Term(uri)
	_, ok := r.rep[uri]
	return ok
}

// AreEquivalent reports whether a and b denote the same concept.
func (r *Reasoner) AreEquivalent(a, b string) bool {
	return r.repOf(a) == r.repOf(b)
}

// IsSubClassOf reports whether sub ⊑ super (reflexive, transitive,
// through equivalence). Every known class is a subclass of owl:Thing.
func (r *Reasoner) IsSubClassOf(sub, super string) bool {
	rs, rp := r.repOf(sub), r.repOf(super)
	if rs == rp {
		return true
	}
	if rp == r.repOf(Thing) && r.Knows(sub) {
		return true
	}
	anc, ok := r.ancestors[rs]
	if !ok {
		return false
	}
	return anc[rp]
}

// AreDisjoint reports whether a and b are disjoint, including
// disjointness inherited from any pair of ancestors.
func (r *Reasoner) AreDisjoint(a, b string) bool {
	ra, rb := r.repOf(a), r.repOf(b)
	if ra == rb {
		return false
	}
	ancA, okA := r.ancestors[ra]
	ancB, okB := r.ancestors[rb]
	if !okA || !okB {
		return false
	}
	for x := range ancA {
		dx := r.disjoint[x]
		if dx == nil {
			continue
		}
		for y := range ancB {
			if dx[y] {
				return true
			}
		}
	}
	return false
}

// Ancestors returns the proper ancestors of the concept (excluding its
// own equivalence group, including Thing), sorted.
func (r *Reasoner) Ancestors(uri string) []string {
	rep := r.repOf(uri)
	anc, ok := r.ancestors[rep]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(anc))
	for a := range anc {
		if a != rep {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}

// Descendants returns the proper descendants of the concept, sorted.
func (r *Reasoner) Descendants(uri string) []string {
	rep := r.repOf(uri)
	var out []string
	for other, anc := range r.ancestors {
		if other != rep && anc[rep] {
			out = append(out, other)
		}
	}
	sort.Strings(out)
	return out
}

// Depth returns the concept's depth below owl:Thing (Thing = 0).
// Unknown concepts report 0.
func (r *Reasoner) Depth(uri string) int { return r.depth[r.repOf(uri)] }

// LeastCommonAncestor returns the deepest concept that subsumes both a
// and b (owl:Thing in the worst case) and its depth.
func (r *Reasoner) LeastCommonAncestor(a, b string) (string, int) {
	ra, rb := r.repOf(a), r.repOf(b)
	ancA, okA := r.ancestors[ra]
	ancB, okB := r.ancestors[rb]
	if !okA || !okB {
		return Thing, 0
	}
	best, bestDepth := r.repOf(Thing), -1
	for x := range ancA {
		if !ancB[x] {
			continue
		}
		if d := r.depth[x]; d > bestDepth {
			best, bestDepth = x, d
		}
	}
	if bestDepth < 0 {
		return Thing, 0
	}
	return best, bestDepth
}

// Similarity returns the Wu–Palmer similarity in [0,1]:
// 2·depth(LCA) / (depth(a)+depth(b)). Equivalent concepts score 1,
// concepts sharing no ancestor but Thing score 0. Disjoint concepts
// always score 0.
func (r *Reasoner) Similarity(a, b string) float64 {
	if r.AreEquivalent(a, b) {
		if r.Knows(a) || r.onto.Term(a) == r.onto.Term(b) {
			return 1
		}
	}
	if r.AreDisjoint(a, b) {
		return 0
	}
	_, lcaDepth := r.LeastCommonAncestor(a, b)
	da, db := r.Depth(a), r.Depth(b)
	if da+db == 0 {
		return 0
	}
	return 2 * float64(lcaDepth) / float64(da+db)
}
