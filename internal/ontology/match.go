package ontology

import (
	"fmt"
	"sort"
)

// MatchDegree grades how well an advertised concept satisfies a
// requested concept, following the classic semantic-matchmaking
// hierarchy (exact > plugin > subsume > intersection > fail) used by
// METEOR-S style discovery, which the paper builds on.
type MatchDegree int

// Match degrees, strongest first.
const (
	// MatchExact: advertised and requested concepts are equivalent.
	MatchExact MatchDegree = iota + 1
	// MatchPlugin: the advertised concept is more specific than the
	// requested one (advertised ⊑ requested); the provider delivers at
	// least what was asked for.
	MatchPlugin
	// MatchSubsume: the advertised concept is more general than the
	// requested one (requested ⊑ advertised); the provider may deliver
	// what was asked for.
	MatchSubsume
	// MatchIntersection: the concepts share a common ancestor below
	// owl:Thing and are not disjoint.
	MatchIntersection
	// MatchFail: no semantic relationship.
	MatchFail
)

func (d MatchDegree) String() string {
	switch d {
	case MatchExact:
		return "exact"
	case MatchPlugin:
		return "plugin"
	case MatchSubsume:
		return "subsume"
	case MatchIntersection:
		return "intersection"
	case MatchFail:
		return "fail"
	default:
		return fmt.Sprintf("MatchDegree(%d)", int(d))
	}
}

// Score maps a degree to a numeric quality in [0,1] for ranking.
func (d MatchDegree) Score() float64 {
	switch d {
	case MatchExact:
		return 1.0
	case MatchPlugin:
		return 0.8
	case MatchSubsume:
		return 0.6
	case MatchIntersection:
		return 0.3
	default:
		return 0
	}
}

// Satisfies reports whether the degree is at least as strong as min.
func (d MatchDegree) Satisfies(min MatchDegree) bool { return d <= min && d != 0 }

// MatchConcepts grades advertised against requested.
func (r *Reasoner) MatchConcepts(advertised, requested string) MatchDegree {
	switch {
	case r.AreEquivalent(advertised, requested):
		return MatchExact
	case r.IsSubClassOf(advertised, requested):
		return MatchPlugin
	case r.IsSubClassOf(requested, advertised):
		return MatchSubsume
	case r.AreDisjoint(advertised, requested):
		return MatchFail
	}
	lca, depth := r.LeastCommonAncestor(advertised, requested)
	if depth > 0 && lca != Thing {
		return MatchIntersection
	}
	return MatchFail
}

// SignatureMatch is the result of matching a full service signature
// (action + inputs + outputs) against a request.
type SignatureMatch struct {
	// Degree is the weakest degree across all matched pairs; the
	// signature is only as good as its weakest component.
	Degree MatchDegree
	// Score is the average pairwise score, for ranking candidates of
	// equal Degree.
	Score float64
	// Pairs records each requested concept and the advertised concept
	// chosen for it.
	Pairs []ConceptPair
}

// ConceptPair records one requested-to-advertised concept assignment.
type ConceptPair struct {
	Requested  string
	Advertised string
	Degree     MatchDegree
}

// Signature is the semantic signature of a service operation: the
// functional concept (action) plus input and output data concepts,
// exactly the three annotation points WSDL-S attaches to an operation.
type Signature struct {
	// Action is the functional-semantics concept URI (§2.3).
	Action string
	// Inputs are data-semantics concept URIs for the operation inputs.
	Inputs []string
	// Outputs are data-semantics concept URIs for the outputs.
	Outputs []string
}

// Clone returns a deep copy of the signature.
func (s Signature) Clone() Signature {
	out := Signature{Action: s.Action}
	out.Inputs = append([]string(nil), s.Inputs...)
	out.Outputs = append([]string(nil), s.Outputs...)
	return out
}

// Equal reports structural equality (order-insensitive on concept
// sets).
func (s Signature) Equal(o Signature) bool {
	if s.Action != o.Action || len(s.Inputs) != len(o.Inputs) || len(s.Outputs) != len(o.Outputs) {
		return false
	}
	eq := func(a, b []string) bool {
		as := append([]string(nil), a...)
		bs := append([]string(nil), b...)
		sort.Strings(as)
		sort.Strings(bs)
		for i := range as {
			if as[i] != bs[i] {
				return false
			}
		}
		return true
	}
	return eq(s.Inputs, o.Inputs) && eq(s.Outputs, o.Outputs)
}

// MatchSignature grades an advertised signature against a requested
// one. Direction matters and follows matchmaking convention:
//
//   - action: graded directly (advertised vs. requested),
//   - outputs: the provider must produce what the requester wants, so
//     each requested output is matched against the best advertised
//     output,
//   - inputs: the requester must be able to feed the provider, so each
//     advertised input is matched against the best requested input
//     (with roles flipped: the requester's concept is the "advertised"
//     side of the pairwise test).
//
// The overall degree is the weakest pairwise degree; an unmatchable
// concept yields MatchFail.
func (r *Reasoner) MatchSignature(advertised, requested Signature) SignatureMatch {
	result := SignatureMatch{Degree: MatchExact}
	var total float64
	var count int

	consider := func(requestedConcept, advertisedConcept string, d MatchDegree) {
		result.Pairs = append(result.Pairs, ConceptPair{
			Requested:  requestedConcept,
			Advertised: advertisedConcept,
			Degree:     d,
		})
		if d > result.Degree {
			result.Degree = d
		}
		total += d.Score()
		count++
	}

	// Functional semantics.
	consider(requested.Action, advertised.Action, r.MatchConcepts(advertised.Action, requested.Action))

	// Outputs: every requested output needs a best advertised output.
	for _, want := range requested.Outputs {
		best, bestDeg := "", MatchFail
		for _, have := range advertised.Outputs {
			if d := r.MatchConcepts(have, want); d < bestDeg || best == "" {
				best, bestDeg = have, d
			}
		}
		consider(want, best, bestDeg)
	}

	// Inputs: every advertised (required) input must be suppliable
	// from the requested inputs.
	for _, need := range advertised.Inputs {
		best, bestDeg := "", MatchFail
		for _, have := range requested.Inputs {
			if d := r.MatchConcepts(have, need); d < bestDeg || best == "" {
				best, bestDeg = have, d
			}
		}
		consider(best, need, bestDeg)
	}

	if count > 0 {
		result.Score = total / float64(count)
	}
	if result.Degree == MatchFail {
		result.Score = 0
	}
	return result
}
