package ontology

// Domain ontologies used by the examples, tests and benchmarks.
//
// University mirrors the paper's running scenario (§3.1): a
// StudentManagement Web service whose StudentInformation operation is
// annotated with sm:StudentID (input), sm:StudentInfo (output) and
// sm:StudentInformation (action). B2B covers the motivating domains
// from the paper's introduction: insurance claim processing, bank loan
// management and healthcare.

// University namespace (the "sm" prefix in the paper's WSDL-S sample).
const UniversityNS = "http://uma.pt/ontologies/StudentManagement"

// Frequently used University concept URIs.
const (
	ConceptStudentID          = UniversityNS + "#StudentID"
	ConceptStudentInfo        = UniversityNS + "#StudentInfo"
	ConceptStudentInformation = UniversityNS + "#StudentInformation"
)

// University builds the student-management ontology of the paper's
// running example. It deliberately includes synonym and homonym traps
// (e.g. Record vs. StudentRecord, TranscriptInfo) that defeat purely
// syntactic matching, which experiment E5 exploits.
func University() *Ontology {
	o := New(UniversityNS)
	o.Label = "Student Management"

	// Top-level data concepts.
	o.AddClass("Identifier", WithLabel("Identifier"))
	o.AddClass("PersonInfo", WithLabel("Person information"))
	o.AddClass("AcademicAction", WithLabel("Academic action"))

	// Identifiers.
	o.AddClass("StudentID", WithLabel("Student identifier"), SubOf("Identifier"))
	o.AddClass("EmployeeID", WithLabel("Employee identifier"), SubOf("Identifier"), DisjointWith("StudentID"))
	o.AddClass("MatriculationNumber", WithLabel("Matriculation number"), EquivalentTo("StudentID"))

	// Student data.
	o.AddClass("StudentInfo", WithLabel("Student information"), SubOf("PersonInfo"))
	o.AddClass("StudentRecord", WithLabel("Student record"), EquivalentTo("StudentInfo"))
	o.AddClass("ContactInfo", WithLabel("Contact information"), SubOf("PersonInfo"))
	o.AddClass("EnrollmentInfo", WithLabel("Enrollment information"), SubOf("StudentInfo"))
	o.AddClass("TranscriptInfo", WithLabel("Transcript"), SubOf("StudentInfo"))
	o.AddClass("GradeReport", WithLabel("Grade report"), SubOf("TranscriptInfo"))
	o.AddClass("EmployeeInfo", WithLabel("Employee information"), SubOf("PersonInfo"), DisjointWith("StudentInfo"))

	// Functional (action) concepts.
	o.AddClass("StudentInformation", WithLabel("Retrieve student information"), SubOf("AcademicAction"))
	o.AddClass("StudentLookup", WithLabel("Student lookup"), EquivalentTo("StudentInformation"))
	o.AddClass("TranscriptRetrieval", WithLabel("Transcript retrieval"), SubOf("StudentInformation"))
	o.AddClass("EnrollmentManagement", WithLabel("Enrollment management"), SubOf("AcademicAction"))
	o.AddClass("GradeSubmission", WithLabel("Grade submission"), SubOf("AcademicAction"), DisjointWith("StudentInformation"))

	// Properties tie data concepts together.
	o.AddProperty("hasID", ObjectProperty, []string{"StudentInfo"}, []string{"StudentID"})
	o.AddProperty("hasContact", ObjectProperty, []string{"PersonInfo"}, []string{"ContactInfo"})
	o.AddProperty("name", DatatypeProperty, []string{"PersonInfo"}, []string{"http://www.w3.org/2001/XMLSchema#string"})

	return o
}

// B2BNS is the namespace of the B2B integration ontology.
const B2BNS = "http://uma.pt/ontologies/B2B"

// Frequently used B2B concept URIs.
const (
	ConceptClaimID         = B2BNS + "#ClaimID"
	ConceptClaimStatus     = B2BNS + "#ClaimStatus"
	ConceptClaimProcessing = B2BNS + "#ClaimProcessing"
	ConceptLoanApplication = B2BNS + "#LoanApplication"
	ConceptLoanDecision    = B2BNS + "#LoanDecision"
	ConceptLoanApproval    = B2BNS + "#LoanApproval"
	ConceptPatientID       = B2BNS + "#PatientID"
	ConceptTreatmentPlan   = B2BNS + "#TreatmentPlan"
	ConceptCarePlanning    = B2BNS + "#CarePlanning"
)

// B2B builds the business-to-business ontology covering the paper's
// motivating applications: insurance claim processing, bank loan
// management and healthcare processes.
func B2B() *Ontology {
	o := New(B2BNS)
	o.Label = "B2B Integration"

	o.AddClass("BusinessDocument", WithLabel("Business document"))
	o.AddClass("BusinessAction", WithLabel("Business action"))
	o.AddClass("Identifier", WithLabel("Identifier"))

	// Insurance.
	o.AddClass("ClaimID", WithLabel("Claim identifier"), SubOf("Identifier"))
	o.AddClass("ClaimForm", WithLabel("Claim form"), SubOf("BusinessDocument"))
	o.AddClass("ClaimStatus", WithLabel("Claim status"), SubOf("BusinessDocument"))
	o.AddClass("ClaimSettlement", WithLabel("Claim settlement"), SubOf("ClaimStatus"))
	o.AddClass("ClaimProcessing", WithLabel("Insurance claim processing"), SubOf("BusinessAction"))
	o.AddClass("ClaimAdjudication", WithLabel("Claim adjudication"), SubOf("ClaimProcessing"))

	// Banking.
	o.AddClass("LoanApplication", WithLabel("Loan application"), SubOf("BusinessDocument"))
	o.AddClass("CreditRequest", WithLabel("Credit request"), EquivalentTo("LoanApplication"))
	o.AddClass("LoanDecision", WithLabel("Loan decision"), SubOf("BusinessDocument"))
	o.AddClass("LoanOffer", WithLabel("Loan offer"), SubOf("LoanDecision"))
	o.AddClass("LoanApproval", WithLabel("Bank loan management"), SubOf("BusinessAction"), DisjointWith("ClaimProcessing"))
	o.AddClass("CreditScoring", WithLabel("Credit scoring"), SubOf("LoanApproval"))

	// Healthcare.
	o.AddClass("PatientID", WithLabel("Patient identifier"), SubOf("Identifier"))
	o.AddClass("MedicalRecord", WithLabel("Medical record"), SubOf("BusinessDocument"))
	o.AddClass("TreatmentPlan", WithLabel("Treatment plan"), SubOf("MedicalRecord"))
	o.AddClass("CarePlanning", WithLabel("Healthcare process"), SubOf("BusinessAction"),
		DisjointWith("ClaimProcessing", "LoanApproval"))

	o.AddProperty("concerns", ObjectProperty, []string{"BusinessDocument"}, []string{"Identifier"})
	o.AddProperty("amount", DatatypeProperty, []string{"LoanApplication"}, []string{"http://www.w3.org/2001/XMLSchema#decimal"})

	return o
}

// Combined merges the University and B2B ontologies into a single
// ontology, as a Whisper deployment hosting several service domains
// would load.
func Combined() *Ontology {
	o := New("http://uma.pt/ontologies/Whisper")
	o.Label = "Whisper combined domain ontology"
	o.Merge(University())
	o.Merge(B2B())
	return o
}
