package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Mean(); got != 50*time.Millisecond+500*time.Microsecond {
		t.Errorf("mean = %v", got)
	}
	if got := h.Min(); got != time.Millisecond {
		t.Errorf("min = %v", got)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Errorf("max = %v", got)
	}
	p50 := h.Percentile(50)
	if p50 < 50*time.Millisecond || p50 > 51*time.Millisecond {
		t.Errorf("p50 = %v", p50)
	}
	if got := h.Percentile(0); got != time.Millisecond {
		t.Errorf("p0 = %v", got)
	}
	if got := h.Percentile(100); got != 100*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Second)
	h.Reset()
	if h.Count() != 0 {
		t.Error("reset did not clear samples")
	}
}

func TestHistogramSummaryNonEmpty(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	if h.Summary() == "" {
		t.Error("summary empty")
	}
}

func TestHistogramPercentileMonotoneProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram()
		for i := 0; i < 50+rng.Intn(100); i++ {
			h.Observe(time.Duration(rng.Intn(1_000_000)))
		}
		prev := time.Duration(-1)
		for p := 0.0; p <= 100; p += 5 {
			cur := h.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return h.Min() <= h.Mean() && h.Mean() <= h.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestHistogramReservoirBoundsMemory overflows a small reservoir with
// a known uniform distribution and checks that memory stays bounded
// while the aggregate queries remain exact (mean/min/max/count) or
// within tolerance (percentiles, estimated from the uniform sample).
func TestHistogramReservoirBoundsMemory(t *testing.T) {
	const capacity = 512
	const total = 100_000
	h := NewHistogramSize(capacity)
	var sum time.Duration
	for i := 1; i <= total; i++ {
		d := time.Duration(i) * time.Microsecond
		h.Observe(d)
		sum += d
	}

	h.mu.Lock()
	stored := len(h.samples)
	h.mu.Unlock()
	if stored != capacity {
		t.Errorf("reservoir holds %d samples, want %d", stored, capacity)
	}
	if h.Count() != total {
		t.Errorf("count = %d, want %d", h.Count(), total)
	}
	if got, want := h.Mean(), sum/total; got != want {
		t.Errorf("mean = %v, want exact %v", got, want)
	}
	if h.Min() != time.Microsecond {
		t.Errorf("min = %v", h.Min())
	}
	if h.Max() != total*time.Microsecond {
		t.Errorf("max = %v", h.Max())
	}
	// With 512 uniform samples of U(0, 100ms] the p-th percentile
	// estimate concentrates around p; 10% of the range is ~5 sigma.
	for _, p := range []float64{25, 50, 75, 90} {
		got := float64(h.Percentile(p))
		want := p / 100 * float64(total*time.Microsecond)
		if diff := math.Abs(got - want); diff > 0.10*float64(total*time.Microsecond) {
			t.Errorf("p%.0f = %v, want ~%v", p, time.Duration(got), time.Duration(want))
		}
	}
	if h.Percentile(0) != h.Min() || h.Percentile(100) != h.Max() {
		t.Error("percentile endpoints must stay exact after overflow")
	}

	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("reset did not clear aggregates")
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Add("discovery", 3)
	c.Add("discovery", 2)
	c.Add("election", 1)
	if got := c.Get("discovery"); got != 5 {
		t.Errorf("discovery = %d", got)
	}
	if got := c.Get("missing"); got != 0 {
		t.Errorf("missing = %d", got)
	}
	snap := c.Snapshot()
	snap["discovery"] = 999
	if c.Get("discovery") != 5 {
		t.Error("snapshot not a copy")
	}
	if s := c.String(); s != "discovery=5 election=1" {
		t.Errorf("String() = %q", s)
	}
}

func TestRTTMonitor(t *testing.T) {
	m := NewRTTMonitor()
	now := time.Unix(0, 0)
	m.now = func() time.Time { return now }

	m.StampRequest("r1")
	if m.InFlight() != 1 {
		t.Errorf("inflight = %d", m.InFlight())
	}
	now = now.Add(3 * time.Millisecond)
	rtt, ok := m.StampReply("r1")
	if !ok || rtt != 3*time.Millisecond {
		t.Errorf("rtt = %v, ok = %v", rtt, ok)
	}
	if m.InFlight() != 0 {
		t.Errorf("inflight after reply = %d", m.InFlight())
	}
	if m.Histogram().Count() != 1 {
		t.Errorf("histogram count = %d", m.Histogram().Count())
	}
}

func TestRTTMonitorUnknownReply(t *testing.T) {
	m := NewRTTMonitor()
	if _, ok := m.StampReply("ghost"); ok {
		t.Error("unknown reply should not match")
	}
	if m.Histogram().Count() != 0 {
		t.Error("unknown reply recorded a sample")
	}
}

func TestRTTMonitorAbandon(t *testing.T) {
	m := NewRTTMonitor()
	m.StampRequest("r1")
	m.Abandon("r1")
	if m.InFlight() != 0 {
		t.Error("abandon did not clear in-flight")
	}
	if _, ok := m.StampReply("r1"); ok {
		t.Error("abandoned request matched a reply")
	}
}

// TestRTTMonitorConcurrent hammers the monitor from many goroutines
// with interleaved request/reply/abandon traffic (run under -race).
// Each worker replies to two thirds of its requests and abandons the
// rest mid-flight, so the final histogram count and in-flight size are
// exactly predictable.
func TestRTTMonitorConcurrent(t *testing.T) {
	const workers = 8
	const perWorker = 300 // divisible by 3
	m := NewRTTMonitor()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := fmt.Sprintf("w%d-r%d", w, i)
				m.StampRequest(id)
				switch i % 3 {
				case 0, 1:
					if _, ok := m.StampReply(id); !ok {
						t.Errorf("reply %s did not match its request", id)
					}
				default:
					m.Abandon(id)
					// An abandoned in-flight request must never match a
					// late reply.
					if _, ok := m.StampReply(id); ok {
						t.Errorf("abandoned %s matched a reply", id)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if m.InFlight() != 0 {
		t.Errorf("in-flight = %d after all workers drained", m.InFlight())
	}
	want := workers * perWorker * 2 / 3
	if got := m.Histogram().Count(); got != want {
		t.Errorf("histogram count = %d, want %d (abandoned requests must not record samples)", got, want)
	}
}

func TestHistogramPercentileEmpty(t *testing.T) {
	h := NewHistogram()
	for _, p := range []float64{0, 50, 99, 100} {
		if got := h.Percentile(p); got != 0 {
			t.Errorf("empty Percentile(%v) = %v, want 0", p, got)
		}
	}
	if h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Errorf("empty aggregates = min=%v max=%v mean=%v, want zeros", h.Min(), h.Max(), h.Mean())
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram()
	h.Observe(42 * time.Millisecond)
	for _, p := range []float64{0, 25, 50, 99, 100} {
		if got := h.Percentile(p); got != 42*time.Millisecond {
			t.Errorf("Percentile(%v) = %v, want 42ms", p, got)
		}
	}
	if h.Min() != 42*time.Millisecond || h.Max() != 42*time.Millisecond {
		t.Errorf("min/max = %v/%v, want 42ms both", h.Min(), h.Max())
	}
}

func TestHistogramObserveAfterReset(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Second)
	}
	h.Reset()
	if h.Count() != 0 {
		t.Fatalf("count after reset = %d", h.Count())
	}
	// Samples observed after a Reset must not be contaminated by the
	// pre-Reset population.
	h.Observe(5 * time.Millisecond)
	h.Observe(7 * time.Millisecond)
	if got := h.Count(); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
	if got := h.Max(); got != 7*time.Millisecond {
		t.Errorf("max = %v, want 7ms (stale pre-reset max leaked)", got)
	}
	if got := h.Min(); got != 5*time.Millisecond {
		t.Errorf("min = %v, want 5ms", got)
	}
	if got := h.Percentile(100); got != 7*time.Millisecond {
		t.Errorf("p100 = %v, want 7ms", got)
	}
	if got := h.Mean(); got != 6*time.Millisecond {
		t.Errorf("mean = %v, want 6ms", got)
	}
}

func TestCounterSnapshotMutationIsolation(t *testing.T) {
	c := NewCounter()
	c.Add("a", 1)
	c.Add("b", 2)
	snap := c.Snapshot()
	// Mutating the snapshot must not affect the counter, and
	// vice versa: later Adds must not show up in an older snapshot.
	snap["a"] = 100
	snap["c"] = 7
	if got := c.Get("a"); got != 1 {
		t.Errorf("Get(a) = %d after snapshot mutation, want 1", got)
	}
	if got := c.Get("c"); got != 0 {
		t.Errorf("Get(c) = %d, want 0 (snapshot write leaked in)", got)
	}
	c.Add("b", 10)
	if got := snap["b"]; got != 2 {
		t.Errorf("snapshot b = %d after later Add, want 2", got)
	}
}

// TestRTTMonitorSweepsStaleStamps is the regression test for the
// crashed-coordinator leak: a request stamped before the coordinator
// died never gets a reply (and the failure path may miss Abandon), so
// without an age bound the stamp lives in the in-flight map forever.
func TestRTTMonitorSweepsStaleStamps(t *testing.T) {
	m := NewRTTMonitor()
	clock := time.Unix(1000, 0)
	m.now = func() time.Time { return clock }
	m.SetMaxAge(time.Second)

	m.StampRequest("crashed-coordinator-call")
	clock = clock.Add(5 * time.Second)
	m.StampRequest("live-call")
	if got := m.InFlight(); got != 2 {
		t.Fatalf("in-flight = %d, want 2 before sweep", got)
	}
	if dropped := m.Sweep(); dropped != 1 {
		t.Fatalf("Sweep dropped %d, want 1", dropped)
	}
	if got := m.InFlight(); got != 1 {
		t.Fatalf("in-flight = %d after sweep, want only the live call", got)
	}
	// The fresh stamp still measures normally.
	clock = clock.Add(10 * time.Millisecond)
	rtt, ok := m.StampReply("live-call")
	if !ok || rtt != 10*time.Millisecond {
		t.Fatalf("StampReply = (%v, %v), want 10ms", rtt, ok)
	}
	// The swept stamp is gone: a late reply does not record a bogus RTT.
	if _, ok := m.StampReply("crashed-coordinator-call"); ok {
		t.Fatal("swept stamp answered a late reply")
	}
}

func TestRTTMonitorAutoSweepBoundsMap(t *testing.T) {
	m := NewRTTMonitor()
	clock := time.Unix(1000, 0)
	m.now = func() time.Time { return clock }
	m.SetMaxAge(time.Second)

	// Leak sweepCheckThreshold stamps, then age them all out; the next
	// StampRequest must sweep opportunistically without an explicit
	// Sweep call.
	for i := 0; i < sweepCheckThreshold; i++ {
		m.StampRequest(fmt.Sprintf("leak-%d", i))
	}
	clock = clock.Add(time.Minute)
	m.StampRequest("fresh")
	if got := m.InFlight(); got != 1 {
		t.Fatalf("in-flight = %d, want 1 (auto-sweep reclaimed the leak)", got)
	}
}

func TestRTTMonitorSweepDisabledByDefault(t *testing.T) {
	m := NewRTTMonitor()
	clock := time.Unix(1000, 0)
	m.now = func() time.Time { return clock }
	m.StampRequest("old")
	clock = clock.Add(24 * time.Hour)
	if dropped := m.Sweep(); dropped != 0 {
		t.Fatalf("Sweep dropped %d with no max age, want 0", dropped)
	}
	if got := m.InFlight(); got != 1 {
		t.Fatalf("in-flight = %d, want 1", got)
	}
}
