// Package metrics provides the measurement primitives behind the
// benchmark harness: counters, latency histograms with percentile
// queries, and an RTT monitor that timestamps request/reply pairs the
// way the paper's monitor does ("RTT is defined as the time interval
// from the moment at which a request packet is time-stamped by the
// monitor to the moment at which a reply packet is time-stamped").
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Histogram records duration samples and answers mean/percentile/min/
// max queries. It stores raw samples (benchmark scale is thousands of
// points), which keeps percentiles exact. Safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = append(h.samples, d)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean returns the average sample, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var total time.Duration
	for _, s := range h.samples {
		total += s
	}
	return total / time.Duration(len(h.samples))
}

// Percentile returns the p-th percentile (p in [0,100]), or 0 when
// empty.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSorted()
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	rank := p / 100 * float64(len(h.samples)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return h.samples[lo]
	}
	frac := rank - float64(lo)
	return h.samples[lo] + time.Duration(frac*float64(h.samples[hi]-h.samples[lo]))
}

// Min returns the smallest sample, or 0 when empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSorted()
	return h.samples[0]
}

// Max returns the largest sample, or 0 when empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSorted()
	return h.samples[len(h.samples)-1]
}

// Reset drops all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = h.samples[:0]
	h.sorted = false
}

// Summary renders count/mean/p50/p99/max on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v min=%v max=%v",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(99), h.Min(), h.Max())
}

// ensureSorted must be called with the lock held.
func (h *Histogram) ensureSorted() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Counter is a labeled set of monotonically increasing counters.
type Counter struct {
	mu     sync.Mutex
	counts map[string]int64
}

// NewCounter creates an empty counter set.
func NewCounter() *Counter { return &Counter{counts: make(map[string]int64)} }

// Add increments the labeled counter by delta.
func (c *Counter) Add(label string, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts[label] += delta
}

// Get returns the labeled counter's value.
func (c *Counter) Get(label string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[label]
}

// Snapshot returns a copy of all counters.
func (c *Counter) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.counts))
	for k, v := range c.counts {
		out[k] = v
	}
	return out
}

// String renders the counters sorted by label.
func (c *Counter) String() string {
	snap := c.Snapshot()
	labels := make([]string, 0, len(snap))
	for l := range snap {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", l, snap[l])
	}
	return b.String()
}

// RTTMonitor stamps requests and matches replies to measure round-trip
// times, mirroring the monitor in the paper's §5.
type RTTMonitor struct {
	mu       sync.Mutex
	inflight map[string]time.Time
	hist     *Histogram
	now      func() time.Time
}

// NewRTTMonitor creates a monitor.
func NewRTTMonitor() *RTTMonitor {
	return &RTTMonitor{
		inflight: make(map[string]time.Time),
		hist:     NewHistogram(),
		now:      time.Now,
	}
}

// StampRequest records the departure of the request with the given
// correlation ID.
func (m *RTTMonitor) StampRequest(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inflight[id] = m.now()
}

// StampReply records the arrival of the matching reply and returns the
// measured RTT. Unknown IDs return (0, false).
func (m *RTTMonitor) StampReply(id string) (time.Duration, bool) {
	m.mu.Lock()
	start, ok := m.inflight[id]
	if ok {
		delete(m.inflight, id)
	}
	now := m.now()
	m.mu.Unlock()
	if !ok {
		return 0, false
	}
	rtt := now.Sub(start)
	m.hist.Observe(rtt)
	return rtt, true
}

// Abandon drops an in-flight request without recording a sample (the
// request failed rather than completed).
func (m *RTTMonitor) Abandon(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.inflight, id)
}

// InFlight returns the number of outstanding requests.
func (m *RTTMonitor) InFlight() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.inflight)
}

// Histogram exposes the recorded RTT distribution.
func (m *RTTMonitor) Histogram() *Histogram { return m.hist }
