// Package metrics provides the measurement primitives behind the
// benchmark harness: counters, latency histograms with percentile
// queries, and an RTT monitor that timestamps request/reply pairs the
// way the paper's monitor does ("RTT is defined as the time interval
// from the moment at which a request packet is time-stamped by the
// monitor to the moment at which a reply packet is time-stamped").
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultReservoirSize bounds a histogram's sample memory: up to this
// many samples are kept raw (so percentiles on benchmark-scale runs
// stay exact), and beyond it the histogram switches to uniform
// reservoir sampling (Vitter's Algorithm R).
const DefaultReservoirSize = 4096

// Histogram records duration samples and answers mean/percentile/min/
// max queries from bounded memory: count, sum, min and max are exact
// running aggregates, while percentiles come from a fixed-size uniform
// reservoir of the observed samples. Safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration // reservoir, ≤ capacity entries
	sorted  bool
	cap     int
	rng     *rand.Rand

	n        int64 // total observations (≥ len(samples))
	sum      time.Duration
	min, max time.Duration
}

// NewHistogram creates an empty histogram with the default reservoir
// size.
func NewHistogram() *Histogram { return NewHistogramSize(DefaultReservoirSize) }

// NewHistogramSize creates an empty histogram whose reservoir holds at
// most capacity samples (minimum 1). The generator seed is fixed, so
// sampling decisions — and therefore benchmark percentiles — are
// reproducible.
func NewHistogramSize(capacity int) *Histogram {
	if capacity < 1 {
		capacity = 1
	}
	return &Histogram{cap: capacity, rng: rand.New(rand.NewSource(int64(capacity)))}
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 || d < h.min {
		h.min = d
	}
	if h.n == 0 || d > h.max {
		h.max = d
	}
	h.n++
	h.sum += d
	if len(h.samples) < h.cap {
		h.samples = append(h.samples, d)
		h.sorted = false
		return
	}
	// Algorithm R: replace a random slot with probability cap/n, so
	// the reservoir stays a uniform sample of everything observed.
	if j := h.rng.Int63n(h.n); j < int64(h.cap) {
		h.samples[j] = d
		h.sorted = false
	}
}

// Count returns the number of observations (not bounded by the
// reservoir).
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.n)
}

// Mean returns the exact average of all observations, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// Percentile returns the p-th percentile (p in [0,100]), or 0 when
// empty. Percentiles are exact until the reservoir overflows and
// estimates (from the uniform sample) after; the endpoints stay exact.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	h.ensureSorted()
	rank := p / 100 * float64(len(h.samples)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return h.samples[lo]
	}
	frac := rank - float64(lo)
	return h.samples[lo] + time.Duration(frac*float64(h.samples[hi]-h.samples[lo]))
}

// Min returns the smallest observation (exact), or 0 when empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation (exact), or 0 when empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Reset drops all samples and aggregates.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = h.samples[:0]
	h.sorted = false
	h.n, h.sum, h.min, h.max = 0, 0, 0, 0
}

// Summary renders count/mean/p50/p99/max on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v min=%v max=%v",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(99), h.Min(), h.Max())
}

// ensureSorted must be called with the lock held.
func (h *Histogram) ensureSorted() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Counter is a labeled set of monotonically increasing counters.
type Counter struct {
	mu     sync.Mutex
	counts map[string]int64
}

// NewCounter creates an empty counter set.
func NewCounter() *Counter { return &Counter{counts: make(map[string]int64)} }

// Add increments the labeled counter by delta.
func (c *Counter) Add(label string, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts[label] += delta
}

// Get returns the labeled counter's value.
func (c *Counter) Get(label string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[label]
}

// Snapshot returns a copy of all counters.
func (c *Counter) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.counts))
	for k, v := range c.counts {
		out[k] = v
	}
	return out
}

// String renders the counters sorted by label.
func (c *Counter) String() string {
	snap := c.Snapshot()
	labels := make([]string, 0, len(snap))
	for l := range snap {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%d", l, snap[l])
	}
	return b.String()
}

// sweepCheckThreshold is the in-flight map size at which StampRequest
// opportunistically sweeps expired stamps, so a monitor with an age
// bound never grows without limit even if Sweep is never called.
const sweepCheckThreshold = 1024

// RTTMonitor stamps requests and matches replies to measure round-trip
// times, mirroring the monitor in the paper's §5.
//
// A request whose reply never arrives (a crashed coordinator, a client
// that gave up without calling Abandon) would otherwise leave its stamp
// in the in-flight map forever. SetMaxAge bounds that: stamps older
// than the bound are swept, either explicitly via Sweep or
// opportunistically once the map grows past an internal threshold.
type RTTMonitor struct {
	mu       sync.Mutex
	inflight map[string]time.Time
	hist     *Histogram
	maxAge   time.Duration
	now      func() time.Time
}

// NewRTTMonitor creates a monitor.
func NewRTTMonitor() *RTTMonitor {
	return &RTTMonitor{
		inflight: make(map[string]time.Time),
		hist:     NewHistogram(),
		now:      time.Now,
	}
}

// SetMaxAge bounds how long an unanswered stamp may linger. Zero (the
// default) disables sweeping.
func (m *RTTMonitor) SetMaxAge(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.maxAge = d
}

// Sweep drops every in-flight stamp older than the configured max age
// and returns how many were dropped. A no-op when no max age is set.
func (m *RTTMonitor) Sweep() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sweepLocked()
}

// sweepLocked must be called with the lock held.
func (m *RTTMonitor) sweepLocked() int {
	if m.maxAge <= 0 {
		return 0
	}
	cutoff := m.now().Add(-m.maxAge)
	dropped := 0
	for id, start := range m.inflight {
		if start.Before(cutoff) {
			delete(m.inflight, id)
			dropped++
		}
	}
	return dropped
}

// StampRequest records the departure of the request with the given
// correlation ID.
func (m *RTTMonitor) StampRequest(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.maxAge > 0 && len(m.inflight) >= sweepCheckThreshold {
		m.sweepLocked()
	}
	m.inflight[id] = m.now()
}

// StampReply records the arrival of the matching reply and returns the
// measured RTT. Unknown IDs return (0, false).
func (m *RTTMonitor) StampReply(id string) (time.Duration, bool) {
	m.mu.Lock()
	start, ok := m.inflight[id]
	if ok {
		delete(m.inflight, id)
	}
	now := m.now()
	m.mu.Unlock()
	if !ok {
		return 0, false
	}
	rtt := now.Sub(start)
	m.hist.Observe(rtt)
	return rtt, true
}

// Abandon drops an in-flight request without recording a sample (the
// request failed rather than completed).
func (m *RTTMonitor) Abandon(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.inflight, id)
}

// InFlight returns the number of outstanding requests.
func (m *RTTMonitor) InFlight() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.inflight)
}

// Histogram exposes the recorded RTT distribution.
func (m *RTTMonitor) Histogram() *Histogram { return m.hist }
