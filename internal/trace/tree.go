package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Node is one span in an assembled trace tree.
type Node struct {
	Record   SpanRecord
	Children []*Node
}

// BuildTree assembles the spans of one trace into a tree. Spans whose
// parent is missing from records (lost to ring wrap or another
// process) become additional roots; when several roots exist the
// earliest-starting one is returned and the others grafted beneath it
// is NOT attempted — they are simply listed as its siblings via the
// returned extra slice.
func BuildTree(records []SpanRecord, traceID ID) (root *Node, orphans []*Node) {
	nodes := make(map[ID]*Node)
	for _, r := range records {
		if r.TraceID != traceID {
			continue
		}
		nodes[r.SpanID] = &Node{Record: r}
	}
	var roots []*Node
	for _, n := range nodes {
		if p, ok := nodes[n.Record.ParentID]; ok && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	for _, n := range nodes {
		sort.Slice(n.Children, func(i, j int) bool {
			return n.Children[i].Record.Start.Before(n.Children[j].Record.Start)
		})
	}
	if len(roots) == 0 {
		return nil, nil
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Record.Start.Before(roots[j].Record.Start) })
	return roots[0], roots[1:]
}

// Find returns the first node (pre-order) whose span name matches, or
// nil.
func (n *Node) Find(name string) *Node {
	if n == nil {
		return nil
	}
	if n.Record.Name == name {
		return n
	}
	for _, c := range n.Children {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// Walk visits the tree pre-order.
func (n *Node) Walk(fn func(*Node)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Format renders the tree with durations and offsets relative to the
// root's start, one span per line:
//
//	proxy.invoke                       1.204s  @0s
//	├─ discovery                         41µs  @12µs
//	└─ call                             1.02s  @55µs  error=...
func (n *Node) Format() string {
	var b strings.Builder
	n.format(&b, "", "", n.Record.Start)
	return b.String()
}

func (n *Node) format(b *strings.Builder, prefix, branch string, epoch time.Time) {
	rec := n.Record
	fmt.Fprintf(b, "%s%s%-*s %10v  @%v", prefix, branch,
		max(1, 36-len(prefix)-len(branch)), rec.Name,
		rec.Duration().Round(time.Microsecond), rec.Start.Sub(epoch).Round(time.Microsecond))
	for _, k := range sortedKeys(rec.Attrs) {
		fmt.Fprintf(b, "  %s=%s", k, rec.Attrs[k])
	}
	b.WriteString("\n")
	childPrefix := prefix
	switch branch {
	case "├─ ":
		childPrefix += "│  "
	case "└─ ":
		childPrefix += "   "
	}
	for i, c := range n.Children {
		cb := "├─ "
		if i == len(n.Children)-1 {
			cb = "└─ "
		}
		c.format(b, childPrefix, cb, epoch)
	}
}

func sortedKeys(m map[string]string) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Phase is one aggregated line of a breakdown: the total time spent in
// spans of the same name.
type Phase struct {
	Name  string
	Total time.Duration
	Count int
}

// Breakdown aggregates the direct children of n by span name, in
// first-occurrence order. Applied to the proxy's invoke span this
// attributes a request's RTT to discovery vs bind vs election-wait vs
// re-bind vs call — the per-request decomposition of the paper's E3
// worst-case-RTT explanation.
func (n *Node) Breakdown() []Phase {
	if n == nil {
		return nil
	}
	idx := make(map[string]int)
	var out []Phase
	for _, c := range n.Children {
		name := c.Record.Name
		i, ok := idx[name]
		if !ok {
			i = len(out)
			idx[name] = i
			out = append(out, Phase{Name: name})
		}
		out[i].Total += c.Record.Duration()
		out[i].Count++
	}
	return out
}
