// Package trace provides end-to-end distributed tracing for the
// Whisper invocation path. The paper's §5 explains the worst-case RTT
// ("several seconds" against a ~0.5 ms steady state) as the sum of
// coordinator-election time and SWS-proxy re-binding time — a claim
// that aggregate counters cannot attribute per request. This package
// records per-request spans (discovery, bind, election-wait, re-bind,
// call, backend) connected into one trace across the SOAP front end,
// the SWS-proxy, the P2P pipes and the coordinator b-peer, so any
// single request's latency decomposes into its phases.
//
// The design is deliberately small: a Span is a named interval with
// attributes and point events; a Tracer mints spans and hands finished
// ones to a lock-cheap bounded ring Collector; SpanContext is the wire
// form propagated through SOAP headers and p2p message envelopes. All
// entry points are nil-safe so instrumented code paths need no
// "tracing enabled?" branches.
package trace

import (
	"strings"
)

// ID identifies a trace or a span. IDs minted by a Tracer match
// [A-Za-z0-9.-]+ and never contain the wire separator.
type ID string

// sep separates trace and span IDs in the wire form.
const sep = "/"

// HeaderKey is the message-header key (p2p envelopes) and the SOAP
// header element name under which a SpanContext travels.
const HeaderKey = "trace"

// SoapHeaderElement is the local name of the SOAP header block that
// carries a SpanContext.
const SoapHeaderElement = "TraceContext"

// SpanContext is the propagated reference to a span: enough for a
// remote component to parent its own spans into the same trace.
type SpanContext struct {
	// TraceID identifies the whole request tree.
	TraceID ID
	// SpanID identifies the parent span at the sender.
	SpanID ID
}

// Valid reports whether both IDs are present and wire-safe.
func (sc SpanContext) Valid() bool {
	return sc.TraceID != "" && sc.SpanID != "" &&
		!strings.Contains(string(sc.TraceID), sep) &&
		!strings.Contains(string(sc.SpanID), sep)
}

// String renders the wire form "traceID/spanID" ("" when invalid).
func (sc SpanContext) String() string {
	if !sc.Valid() {
		return ""
	}
	return string(sc.TraceID) + sep + string(sc.SpanID)
}

// Parse decodes the wire form produced by String.
func Parse(s string) (SpanContext, bool) {
	i := strings.Index(s, sep)
	if i <= 0 || i == len(s)-1 {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: ID(s[:i]), SpanID: ID(s[i+1:])}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}
