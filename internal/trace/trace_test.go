package trace

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanContextWireRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: "t1234-1", SpanID: "s1234-7"}
	got, ok := Parse(sc.String())
	if !ok || got != sc {
		t.Fatalf("Parse(%q) = %+v, %v", sc.String(), got, ok)
	}
	for _, bad := range []string{"", "noslash", "/x", "x/", "a/b/c"} {
		if _, ok := Parse(bad); ok {
			t.Errorf("Parse(%q) unexpectedly ok", bad)
		}
	}
	if (SpanContext{TraceID: "a/b", SpanID: "c"}).Valid() {
		t.Error("ID containing the separator must not be valid")
	}
}

func TestTracerParentChild(t *testing.T) {
	col := NewCollector(16)
	tr := NewSeeded(col, 42)

	ctx, root := tr.StartSpan(context.Background(), "root")
	_, child := tr.StartSpan(ctx, "child")
	child.SetAttr("k", "v")
	child.End()
	root.End()

	recs := col.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	// Completion order: child first.
	c, r := recs[0], recs[1]
	if c.Name != "child" || r.Name != "root" {
		t.Fatalf("order: %q, %q", c.Name, r.Name)
	}
	if c.TraceID != r.TraceID {
		t.Error("child not in parent's trace")
	}
	if c.ParentID != r.SpanID {
		t.Error("child's parent is not root")
	}
	if c.Attrs["k"] != "v" {
		t.Error("attribute lost")
	}
}

func TestRemoteParenting(t *testing.T) {
	col := NewCollector(16)
	tr := NewSeeded(col, 1)
	_, root := tr.StartSpan(context.Background(), "client")
	wire := root.Context().String()

	// Another tracer (another process) continues the trace.
	col2 := NewCollector(16)
	tr2 := NewSeeded(col2, 2)
	sc, ok := Parse(wire)
	if !ok {
		t.Fatal("wire context did not parse")
	}
	s := tr2.StartRemote(sc, "server")
	s.End()
	root.End()

	if got := col2.Snapshot()[0]; got.TraceID != root.Context().TraceID || got.ParentID != root.Context().SpanID {
		t.Errorf("remote span not parented: %+v", got)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, s := tr.StartSpan(context.Background(), "x")
	if s != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	s.SetAttr("a", "b")
	s.Event("e")
	s.SetError(errors.New("boom"))
	s.EndWith(nil)
	s.End()
	if s.Context().Valid() {
		t.Error("nil span context must be invalid")
	}
	if ContextString(ctx) != "" {
		t.Error("nil span must not inject")
	}
	if tr.StartRemote(SpanContext{}, "y") != nil {
		t.Error("nil tracer StartRemote must be nil")
	}
	var col *Collector
	if col.Len() != 0 || col.Snapshot() != nil {
		t.Error("nil collector must be empty")
	}
}

func TestEndIdempotent(t *testing.T) {
	col := NewCollector(8)
	tr := NewSeeded(col, 3)
	_, s := tr.StartSpan(context.Background(), "once")
	s.End()
	s.End()
	s.EndWith(errors.New("late"))
	if col.Len() != 1 {
		t.Fatalf("span recorded %d times", col.Len())
	}
	if col.Snapshot()[0].Attrs["error"] != "" {
		t.Error("attribute set after End must be dropped")
	}
}

func TestCollectorRingWraps(t *testing.T) {
	col := NewCollector(4)
	tr := NewSeeded(col, 4)
	for i := 0; i < 10; i++ {
		_, s := tr.StartSpan(context.Background(), fmt.Sprintf("s%d", i))
		s.End()
	}
	recs := col.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("retained %d, want 4", len(recs))
	}
	if recs[0].Name != "s6" || recs[3].Name != "s9" {
		t.Errorf("oldest-first order wrong: %q .. %q", recs[0].Name, recs[3].Name)
	}
	if col.Len() != 4 || col.Capacity() != 4 {
		t.Errorf("Len=%d Cap=%d", col.Len(), col.Capacity())
	}
	col.Reset()
	if col.Len() != 0 {
		t.Error("reset did not clear")
	}
}

func TestCollectorConcurrent(t *testing.T) {
	col := NewCollector(128)
	tr := NewSeeded(col, 5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx, s := tr.StartSpan(context.Background(), "hot")
				_, c := tr.StartSpan(ctx, "child")
				c.End()
				s.End()
				col.Snapshot()
			}
		}()
	}
	wg.Wait()
	if col.Len() != 128 {
		t.Errorf("Len = %d", col.Len())
	}
}

func TestExportImportJSON(t *testing.T) {
	col := NewCollector(8)
	tr := NewSeeded(col, 6)
	_, s := tr.StartSpan(context.Background(), "exported")
	s.SetAttr("phase", "test")
	s.Event("midpoint")
	s.End()
	data, err := col.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ImportJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Name != "exported" || recs[0].Attrs["phase"] != "test" || len(recs[0].Events) != 1 {
		t.Errorf("round-tripped record = %+v", recs)
	}
}

func TestBuildTreeAndBreakdown(t *testing.T) {
	col := NewCollector(32)
	tr := NewSeeded(col, 7)
	ctx, root := tr.StartSpan(context.Background(), "proxy.invoke")
	_, d := tr.StartSpan(ctx, "discovery")
	time.Sleep(time.Millisecond)
	d.End()
	for i := 0; i < 2; i++ {
		_, c := tr.StartSpan(ctx, "call")
		time.Sleep(time.Millisecond)
		c.End()
	}
	root.End()

	// An orphan from a lost parent.
	orphan := tr.StartRemote(SpanContext{TraceID: root.Context().TraceID, SpanID: "s-gone-1"}, "stray")
	orphan.End()

	tree, extras := BuildTree(col.Snapshot(), root.Context().TraceID)
	if tree == nil || tree.Record.Name != "proxy.invoke" {
		t.Fatalf("root = %+v", tree)
	}
	if len(tree.Children) != 3 {
		t.Fatalf("children = %d", len(tree.Children))
	}
	if len(extras) != 1 || extras[0].Record.Name != "stray" {
		t.Errorf("orphans = %+v", extras)
	}
	if tree.Find("discovery") == nil || tree.Find("nope") != nil {
		t.Error("Find misbehaves")
	}
	phases := tree.Breakdown()
	if len(phases) != 2 || phases[0].Name != "discovery" || phases[1].Name != "call" || phases[1].Count != 2 {
		t.Errorf("breakdown = %+v", phases)
	}
	if phases[1].Total < 2*time.Millisecond {
		t.Errorf("call total = %v", phases[1].Total)
	}
	out := tree.Format()
	for _, want := range []string{"proxy.invoke", "├─ ", "└─ ", "discovery", "call"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q in:\n%s", want, out)
		}
	}
	var visited int
	tree.Walk(func(*Node) { visited++ })
	if visited != 4 {
		t.Errorf("walk visited %d", visited)
	}
}
