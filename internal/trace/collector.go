package trace

import (
	"encoding/json"
	"sync/atomic"
)

// DefaultCapacity is the ring size NewCollector uses for capacity <= 0.
const DefaultCapacity = 4096

// Collector stores finished spans in a bounded ring. Writes are
// lock-free (one atomic increment plus one atomic pointer store), so
// tracing stays cheap on the hot request path even under the heavy
// concurrency the ROADMAP targets; when the ring wraps, the oldest
// spans are overwritten.
type Collector struct {
	slots []atomic.Pointer[SpanRecord]
	next  atomic.Uint64
}

// NewCollector creates a ring holding up to capacity spans
// (DefaultCapacity when capacity <= 0).
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Collector{slots: make([]atomic.Pointer[SpanRecord], capacity)}
}

// add stores one finished span, overwriting the oldest on wrap.
func (c *Collector) add(r *SpanRecord) {
	if c == nil {
		return
	}
	i := c.next.Add(1) - 1
	c.slots[i%uint64(len(c.slots))].Store(r)
}

// Len returns the number of spans currently retained.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	n := c.next.Load()
	if n > uint64(len(c.slots)) {
		return len(c.slots)
	}
	return int(n)
}

// Capacity returns the ring size.
func (c *Collector) Capacity() int {
	if c == nil {
		return 0
	}
	return len(c.slots)
}

// Snapshot returns the retained spans, oldest first. Concurrent with
// writers; a snapshot taken mid-write may miss the newest spans.
func (c *Collector) Snapshot() []SpanRecord {
	if c == nil {
		return nil
	}
	n := c.next.Load()
	size := uint64(len(c.slots))
	start := uint64(0)
	count := n
	if n > size {
		start = n % size
		count = size
	}
	out := make([]SpanRecord, 0, count)
	for i := uint64(0); i < count; i++ {
		if r := c.slots[(start+i)%size].Load(); r != nil {
			out = append(out, *r)
		}
	}
	return out
}

// Trace returns the retained spans of one trace, oldest first.
func (c *Collector) Trace(id ID) []SpanRecord {
	var out []SpanRecord
	for _, r := range c.Snapshot() {
		if r.TraceID == id {
			out = append(out, r)
		}
	}
	return out
}

// TraceIDs returns the distinct trace IDs retained, most recent last.
func (c *Collector) TraceIDs() []ID {
	seen := make(map[ID]bool)
	var out []ID
	for _, r := range c.Snapshot() {
		if !seen[r.TraceID] {
			seen[r.TraceID] = true
			out = append(out, r.TraceID)
		}
	}
	return out
}

// Reset drops all retained spans.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	for i := range c.slots {
		c.slots[i].Store(nil)
	}
	c.next.Store(0)
}

// ExportJSON serializes the retained spans (oldest first) as a JSON
// array — the wire format peerctl's trace subcommand consumes.
func (c *Collector) ExportJSON() ([]byte, error) {
	return json.Marshal(c.Snapshot())
}

// ImportJSON parses the array ExportJSON produces.
func ImportJSON(data []byte) ([]SpanRecord, error) {
	var out []SpanRecord
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, err
	}
	return out, nil
}
