package trace

import (
	"sync"
	"time"
)

// Event is a timestamped point annotation within a span.
type Event struct {
	At  time.Time `json:"at"`
	Msg string    `json:"msg"`
}

// SpanRecord is the immutable, exportable form of a finished span.
type SpanRecord struct {
	TraceID  ID                `json:"trace"`
	SpanID   ID                `json:"span"`
	ParentID ID                `json:"parent,omitempty"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	End      time.Time         `json:"end"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Events   []Event           `json:"events,omitempty"`
}

// Duration returns the span's elapsed time.
func (r SpanRecord) Duration() time.Duration { return r.End.Sub(r.Start) }

// Span is one in-progress named interval of a trace. All methods are
// safe on a nil receiver (the no-op span a nil Tracer hands out) and
// safe for concurrent use.
type Span struct {
	tracer *Tracer

	mu    sync.Mutex
	rec   SpanRecord
	ended bool
}

// Context returns the span's propagation context.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return SpanContext{TraceID: s.rec.TraceID, SpanID: s.rec.SpanID}
}

// SetAttr sets a string attribute on the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.rec.Attrs == nil {
		s.rec.Attrs = make(map[string]string, 4)
	}
	s.rec.Attrs[key] = value
}

// Event appends a timestamped point annotation.
func (s *Span) Event(msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	s.rec.Events = append(s.rec.Events, Event{At: time.Now(), Msg: msg})
}

// SetError records err under the "error" attribute (no-op on nil err).
func (s *Span) SetError(err error) {
	if err == nil {
		return
	}
	s.SetAttr("error", err.Error())
}

// End finishes the span and hands it to the collector. Idempotent;
// only the first End is recorded.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.rec.End = time.Now()
	rec := s.rec
	s.mu.Unlock()
	if s.tracer != nil && s.tracer.col != nil {
		s.tracer.col.add(&rec)
	}
}

// EndWith records err (when non-nil) and ends the span.
func (s *Span) EndWith(err error) {
	s.SetError(err)
	s.End()
}
