package trace

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"sync/atomic"
	"time"
)

// Tracer mints spans into a Collector. A nil Tracer is valid and
// produces no-op spans, so components can be instrumented
// unconditionally and pay (almost) nothing when tracing is off.
type Tracer struct {
	col    *Collector
	prefix string
	ctr    atomic.Uint64
}

// New creates a tracer over the collector with a process-random ID
// prefix (so traces from different processes never collide).
func New(col *Collector) *Tracer {
	return NewSeeded(col, time.Now().UnixNano()^int64(rand.Uint64()))
}

// NewSeeded creates a tracer whose ID prefix derives from seed;
// deterministic deployments use it so trace IDs are reproducible.
func NewSeeded(col *Collector, seed int64) *Tracer {
	return &Tracer{col: col, prefix: fmt.Sprintf("%08x", uint64(seed)*0x9e3779b97f4a7c15>>32)}
}

// Collector returns the tracer's span sink (nil on a nil tracer).
func (t *Tracer) Collector() *Collector {
	if t == nil {
		return nil
	}
	return t.col
}

func (t *Tracer) newID(kind string) ID {
	return ID(kind + t.prefix + "-" + strconv.FormatUint(t.ctr.Add(1), 10))
}

// StartSpan starts a span named name. When ctx already carries a span
// the new one becomes its child within the same trace; otherwise a new
// trace root is started. The returned context carries the new span.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	var parent SpanContext
	if ps := FromContext(ctx); ps != nil {
		parent = ps.Context()
	}
	s := t.start(parent, name)
	return ContextWith(ctx, s), s
}

// StartRemote starts a span whose parent arrived over the wire. An
// invalid (zero) SpanContext starts a new trace root instead.
func (t *Tracer) StartRemote(parent SpanContext, name string) *Span {
	if t == nil {
		return nil
	}
	return t.start(parent, name)
}

func (t *Tracer) start(parent SpanContext, name string) *Span {
	s := &Span{tracer: t}
	s.rec.Name = name
	s.rec.Start = time.Now()
	s.rec.SpanID = t.newID("s")
	if parent.Valid() {
		s.rec.TraceID = parent.TraceID
		s.rec.ParentID = parent.SpanID
	} else {
		s.rec.TraceID = t.newID("t")
	}
	return s
}

type ctxKey struct{}

// ContextWith returns ctx carrying the span.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// ContextString returns the wire form of the span carried by ctx (""
// when none) — the one-liner instrumented senders inject into message
// headers.
func ContextString(ctx context.Context) string {
	return FromContext(ctx).Context().String()
}
