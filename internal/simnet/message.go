// Package simnet provides an in-process simulated LAN used as the
// transport substrate for the Whisper P2P overlay, plus a real TCP
// loopback transport with the same interface.
//
// The simulated network models per-link latency, jitter, loss and
// partitions, and keeps per-protocol message and byte counters. The
// paper's evaluation (Figure 4 and the RTT analysis in §5) measures
// exactly these two quantities, so the network exposes them as a
// first-class Stats snapshot.
package simnet

import (
	"fmt"
	"time"
)

// Message is the unit of exchange between transport endpoints.
//
// Proto tags the protocol that produced the message (for example
// "discovery", "election", "heartbeat", "pipe"); the network accounts
// messages and bytes per tag so benchmarks can break down traffic the
// way Figure 4 of the paper does.
type Message struct {
	// Proto is the protocol category used for traffic accounting.
	Proto string
	// Kind is the message type within the protocol (for example
	// "query", "response", "election", "coordinator").
	Kind string
	// Src and Dst are transport addresses.
	Src string
	Dst string
	// Headers carries small string metadata (correlation IDs and the
	// like). It may be nil.
	Headers map[string]string
	// Payload is the opaque body, typically XML.
	Payload []byte
	// SentAt is stamped by the transport when the message is sent.
	SentAt time.Time
	// Hops counts relay traversals in multi-hop routing.
	Hops int
}

// Size returns the accounted wire size of the message in bytes: payload
// plus an approximation of header overhead. It is deliberately simple
// and deterministic so benchmark byte counts are reproducible.
func (m *Message) Size() int {
	n := len(m.Payload) + len(m.Proto) + len(m.Kind) + len(m.Src) + len(m.Dst) + 16
	for k, v := range m.Headers {
		n += len(k) + len(v) + 2
	}
	return n
}

// Header returns the named header or "" when absent.
func (m *Message) Header(key string) string {
	if m.Headers == nil {
		return ""
	}
	return m.Headers[key]
}

// WithHeader returns a shallow copy of the message with the header set.
// The original message is not modified.
func (m Message) WithHeader(key, value string) Message {
	hs := make(map[string]string, len(m.Headers)+1)
	for k, v := range m.Headers {
		hs[k] = v
	}
	hs[key] = value
	m.Headers = hs
	return m
}

func (m *Message) String() string {
	return fmt.Sprintf("%s/%s %s->%s (%dB)", m.Proto, m.Kind, m.Src, m.Dst, m.Size())
}
