package simnet

import (
	"testing"
	"time"
)

func newTestNet(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork(WithLatency(ZeroLatency()), WithSeed(42))
	t.Cleanup(func() { _ = n.Close() })
	return n
}

func mustPort(t *testing.T, n *Network, addr string) *Port {
	t.Helper()
	p, err := n.NewPort(addr)
	if err != nil {
		t.Fatalf("NewPort(%q): %v", addr, err)
	}
	return p
}

func recvTimeout(t *testing.T, p *Port, d time.Duration) Message {
	t.Helper()
	select {
	case msg, ok := <-p.Recv():
		if !ok {
			t.Fatalf("recv channel closed")
		}
		return msg
	case <-time.After(d):
		t.Fatalf("timed out waiting for message on %s", p.Addr())
	}
	return Message{}
}

func TestNetworkDelivery(t *testing.T) {
	n := newTestNet(t)
	a := mustPort(t, n, "a")
	b := mustPort(t, n, "b")

	want := Message{Proto: "test", Kind: "ping", Payload: []byte("hello")}
	if err := a.Send("b", want); err != nil {
		t.Fatalf("send: %v", err)
	}
	got := recvTimeout(t, b, time.Second)
	if got.Src != "a" || got.Dst != "b" {
		t.Errorf("src/dst = %s/%s, want a/b", got.Src, got.Dst)
	}
	if string(got.Payload) != "hello" {
		t.Errorf("payload = %q, want %q", got.Payload, "hello")
	}
	if got.Proto != "test" || got.Kind != "ping" {
		t.Errorf("proto/kind = %s/%s", got.Proto, got.Kind)
	}
}

func TestNetworkDuplicateAddr(t *testing.T) {
	n := newTestNet(t)
	mustPort(t, n, "a")
	if _, err := n.NewPort("a"); err == nil {
		t.Fatal("expected error registering duplicate address")
	}
}

func TestNetworkUnknownDestination(t *testing.T) {
	n := newTestNet(t)
	a := mustPort(t, n, "a")
	err := a.Send("ghost", Message{Proto: "test"})
	if err == nil {
		t.Fatal("expected error sending to unknown address")
	}
}

func TestNetworkStatsAccounting(t *testing.T) {
	n := newTestNet(t)
	a := mustPort(t, n, "a")
	b := mustPort(t, n, "b")

	for i := 0; i < 5; i++ {
		if err := a.Send("b", Message{Proto: "discovery", Kind: "query"}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := b.Send("a", Message{Proto: "heartbeat", Kind: "hb"}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	for i := 0; i < 5; i++ {
		recvTimeout(t, b, time.Second)
	}
	for i := 0; i < 3; i++ {
		recvTimeout(t, a, time.Second)
	}

	st := n.Stats()
	if got := st.PerProto["discovery"].Messages; got != 5 {
		t.Errorf("discovery messages = %d, want 5", got)
	}
	if got := st.PerProto["heartbeat"].Messages; got != 3 {
		t.Errorf("heartbeat messages = %d, want 3", got)
	}
	if st.Total.Messages != 8 {
		t.Errorf("total messages = %d, want 8", st.Total.Messages)
	}
	if st.Total.Bytes <= 0 {
		t.Errorf("total bytes = %d, want > 0", st.Total.Bytes)
	}

	n.ResetStats()
	if got := n.Stats().Total.Messages; got != 0 {
		t.Errorf("after reset total = %d, want 0", got)
	}
}

func TestNetworkPartition(t *testing.T) {
	n := newTestNet(t)
	a := mustPort(t, n, "a")
	b := mustPort(t, n, "b")

	n.Partition("a", "b")
	if err := a.Send("b", Message{Proto: "test"}); err != nil {
		t.Fatalf("send into partition should not error: %v", err)
	}
	select {
	case <-b.Recv():
		t.Fatal("message crossed a partition")
	case <-time.After(50 * time.Millisecond):
	}
	if got := n.Stats().Total.Dropped; got != 1 {
		t.Errorf("dropped = %d, want 1", got)
	}

	n.Heal("a", "b")
	if err := a.Send("b", Message{Proto: "test"}); err != nil {
		t.Fatalf("send after heal: %v", err)
	}
	recvTimeout(t, b, time.Second)
}

func TestNetworkIsolateRejoin(t *testing.T) {
	n := newTestNet(t)
	a := mustPort(t, n, "a")
	b := mustPort(t, n, "b")
	c := mustPort(t, n, "c")

	n.Isolate("a")
	_ = a.Send("b", Message{Proto: "t"})
	_ = a.Send("c", Message{Proto: "t"})
	_ = b.Send("c", Message{Proto: "t"})
	recvTimeout(t, c, time.Second) // b->c still flows
	select {
	case <-b.Recv():
		t.Fatal("message escaped isolated node")
	case <-time.After(50 * time.Millisecond):
	}

	n.Rejoin("a")
	_ = a.Send("b", Message{Proto: "t"})
	recvTimeout(t, b, time.Second)
}

func TestNetworkDropRate(t *testing.T) {
	n := NewNetwork(WithLatency(ZeroLatency()), WithSeed(7), WithDropRate(1.0))
	t.Cleanup(func() { _ = n.Close() })
	a := mustPort(t, n, "a")
	b := mustPort(t, n, "b")
	for i := 0; i < 10; i++ {
		if err := a.Send("b", Message{Proto: "t"}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	select {
	case <-b.Recv():
		t.Fatal("message survived 100% drop rate")
	case <-time.After(50 * time.Millisecond):
	}
	if got := n.Stats().Total.Dropped; got != 10 {
		t.Errorf("dropped = %d, want 10", got)
	}
}

func TestNetworkLinkDelay(t *testing.T) {
	n := newTestNet(t)
	a := mustPort(t, n, "a")
	b := mustPort(t, n, "b")
	n.SetLinkDelay("a", "b", 80*time.Millisecond)

	start := time.Now()
	if err := a.Send("b", Message{Proto: "t"}); err != nil {
		t.Fatalf("send: %v", err)
	}
	recvTimeout(t, b, time.Second)
	if elapsed := time.Since(start); elapsed < 70*time.Millisecond {
		t.Errorf("delivery took %v, want >= ~80ms link delay", elapsed)
	}

	n.SetLinkDelay("a", "b", 0)
	start = time.Now()
	_ = a.Send("b", Message{Proto: "t"})
	recvTimeout(t, b, time.Second)
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Errorf("delivery after clearing delay took %v", elapsed)
	}
}

func TestPortCloseReleasesAddress(t *testing.T) {
	n := newTestNet(t)
	a := mustPort(t, n, "a")
	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Recv channel must be closed.
	if _, ok := <-a.Recv(); ok {
		t.Error("recv channel still open after close")
	}
	// Address is reusable.
	mustPort(t, n, "a")
	// Sending on a closed port errors.
	if err := a.Send("a", Message{Proto: "t"}); err == nil {
		t.Error("send on closed port should error")
	}
}

func TestPortDoubleCloseIsIdempotent(t *testing.T) {
	n := newTestNet(t)
	a := mustPort(t, n, "a")
	if err := a.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestSendToClosedPortIsSwallowed(t *testing.T) {
	n := newTestNet(t)
	a := mustPort(t, n, "a")
	b := mustPort(t, n, "b")
	if err := b.Close(); err != nil {
		t.Fatalf("close b: %v", err)
	}
	// b's address is gone, so this is an unknown-address error.
	if err := a.Send("b", Message{Proto: "t"}); err == nil {
		t.Error("expected unknown address error after close")
	}
}

func TestNetworkCloseShutsDownPorts(t *testing.T) {
	n := NewNetwork(WithLatency(ZeroLatency()))
	a, err := n.NewPort("a")
	if err != nil {
		t.Fatalf("NewPort: %v", err)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("network close: %v", err)
	}
	if _, ok := <-a.Recv(); ok {
		t.Error("port recv still open after network close")
	}
	if _, err := n.NewPort("x"); err == nil {
		t.Error("NewPort on closed network should error")
	}
}
