package simnet

import (
	"testing"
	"testing/quick"
)

func TestMessageSizePositive(t *testing.T) {
	prop := func(proto, kind, src, dst string, payload []byte) bool {
		m := Message{Proto: proto, Kind: kind, Src: src, Dst: dst, Payload: payload}
		return m.Size() >= len(payload)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMessageSizeMonotonicInPayload(t *testing.T) {
	prop := func(payload []byte, extra []byte) bool {
		m1 := Message{Proto: "p", Payload: payload}
		m2 := Message{Proto: "p", Payload: append(append([]byte{}, payload...), extra...)}
		return m2.Size() >= m1.Size()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestWithHeaderDoesNotMutateOriginal(t *testing.T) {
	orig := Message{Proto: "p", Headers: map[string]string{"a": "1"}}
	derived := orig.WithHeader("b", "2")
	if orig.Header("b") != "" {
		t.Error("WithHeader mutated the original message")
	}
	if derived.Header("b") != "2" || derived.Header("a") != "1" {
		t.Errorf("derived headers wrong: %v", derived.Headers)
	}
}

func TestHeaderOnNilMap(t *testing.T) {
	var m Message
	if got := m.Header("missing"); got != "" {
		t.Errorf("Header on nil map = %q, want empty", got)
	}
}

func TestMessageString(t *testing.T) {
	m := Message{Proto: "pipe", Kind: "req", Src: "a", Dst: "b", Payload: []byte("xy")}
	if got := m.String(); got == "" {
		t.Error("String() returned empty")
	}
}
