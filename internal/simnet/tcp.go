package simnet

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
)

// TCPTransport implements Transport over real loopback TCP sockets.
// It is used by the runnable examples and the whisperd daemon so the
// same protocol stack exercised under simulation also runs over the
// operating system's network stack. One TCP connection is opened per
// message; this mirrors the connection-per-exchange behaviour of the
// paper's HTTP-era stack and keeps the implementation honest about
// connection setup costs.
type TCPTransport struct {
	ln   net.Listener
	addr string

	mu     sync.Mutex
	closed bool

	out  chan Message
	done chan struct{}
	wg   sync.WaitGroup
}

var _ Transport = (*TCPTransport)(nil)

// NewTCPTransport listens on the given address ("host:port", empty
// port picks a free one) and starts accepting inbound messages.
func NewTCPTransport(listen string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("simnet: tcp listen: %w", err)
	}
	t := &TCPTransport{
		ln:   ln,
		addr: ln.Addr().String(),
		out:  make(chan Message),
		done: make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr implements Transport; it returns the bound listen address,
// which doubles as the peer's identity on the wire.
func (t *TCPTransport) Addr() string { return t.addr }

// Send implements Transport. The destination must be a dialable
// "host:port" address.
func (t *TCPTransport) Send(to string, msg Message) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	t.mu.Unlock()
	msg.Src = t.addr
	msg.Dst = to
	conn, err := net.Dial("tcp", to)
	if err != nil {
		return fmt.Errorf("simnet: tcp dial %s: %w", to, err)
	}
	defer func() { _ = conn.Close() }()
	if err := gob.NewEncoder(conn).Encode(&msg); err != nil {
		return fmt.Errorf("simnet: tcp encode: %w", err)
	}
	return nil
}

// Recv implements Transport.
func (t *TCPTransport) Recv() <-chan Message { return t.out }

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	close(t.done)
	err := t.ln.Close()
	t.wg.Wait()
	close(t.out)
	return err
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			select {
			case <-t.done:
				return
			default:
				continue
			}
		}
		t.wg.Add(1)
		go t.handle(conn)
	}
}

func (t *TCPTransport) handle(conn net.Conn) {
	defer t.wg.Done()
	defer func() { _ = conn.Close() }()
	var msg Message
	if err := gob.NewDecoder(conn).Decode(&msg); err != nil {
		return
	}
	select {
	case t.out <- msg:
	case <-t.done:
	}
}
