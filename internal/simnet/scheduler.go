package simnet

import (
	"container/heap"
	"runtime"
	"sync"
	"time"
)

// scheduler delivers scheduled callbacks with sub-millisecond accuracy.
// Go timers on stock Linux kernels fire with ~1ms granularity, which
// would quadruple the LAN model's 250µs one-way delays; the scheduler
// therefore sleeps on a coarse timer until close to the deadline and
// spins (yielding) for the final stretch. A single goroutine serves
// all deliveries of a network.
type scheduler struct {
	mu    sync.Mutex
	items deliveryHeap
	seq   uint64
	clock Clock

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
}

// spinWindow is how close to the deadline the scheduler switches from
// sleeping to spinning. It should exceed the platform timer
// granularity.
const spinWindow = 2 * time.Millisecond

type delivery struct {
	due time.Time
	seq uint64 // FIFO tie-breaker for equal deadlines
	fn  func()
}

type deliveryHeap []delivery

func (h deliveryHeap) Len() int { return len(h) }
func (h deliveryHeap) Less(i, j int) bool {
	if h[i].due.Equal(h[j].due) {
		return h[i].seq < h[j].seq
	}
	return h[i].due.Before(h[j].due)
}
func (h deliveryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *deliveryHeap) Push(x any)   { *h = append(*h, x.(delivery)) }
func (h *deliveryHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

func newScheduler(clock Clock) *scheduler {
	s := &scheduler{
		clock: clock,
		wake:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go s.loop()
	return s
}

// schedule enqueues fn to run at due. fn is always eventually invoked,
// even on shutdown (deliveries to closed ports are no-ops), so senders
// can rely on paired bookkeeping.
func (s *scheduler) schedule(due time.Time, fn func()) {
	s.mu.Lock()
	s.seq++
	heap.Push(&s.items, delivery{due: due, seq: s.seq, fn: fn})
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// close stops the loop, flushing remaining deliveries immediately.
func (s *scheduler) close() {
	select {
	case <-s.stop:
		return // already closed
	default:
	}
	close(s.stop)
	<-s.done
}

func (s *scheduler) loop() {
	defer close(s.done)
	for {
		s.mu.Lock()
		if len(s.items) == 0 {
			s.mu.Unlock()
			select {
			case <-s.wake:
				continue
			case <-s.stop:
				s.flush()
				return
			}
		}
		next := s.items[0].due
		wait := next.Sub(s.clock.Now())
		if wait > spinWindow {
			s.mu.Unlock()
			t := time.NewTimer(wait - spinWindow)
			select {
			case <-t.C:
			case <-s.wake:
			case <-s.stop:
				t.Stop()
				s.flush()
				return
			}
			t.Stop()
			continue
		}
		if wait > 0 {
			s.mu.Unlock()
			// Final stretch: yield-spin to beat the timer granularity.
			runtime.Gosched()
			select {
			case <-s.stop:
				s.flush()
				return
			default:
			}
			continue
		}
		item := heap.Pop(&s.items).(delivery)
		s.mu.Unlock()
		item.fn()
	}
}

// flush runs every pending delivery immediately (shutdown path).
func (s *scheduler) flush() {
	s.mu.Lock()
	items := s.items
	s.items = nil
	s.mu.Unlock()
	for _, it := range items {
		it.fn()
	}
}
