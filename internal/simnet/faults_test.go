package simnet

import (
	"bytes"
	"testing"
	"time"
)

func TestNetworkDuplicateRate(t *testing.T) {
	n := NewNetwork(WithLatency(ZeroLatency()), WithSeed(7), WithDuplicateRate(1.0))
	t.Cleanup(func() { _ = n.Close() })
	a := mustPort(t, n, "a")
	b := mustPort(t, n, "b")
	const sends = 5
	for i := 0; i < sends; i++ {
		if err := a.Send("b", Message{Proto: "t", Payload: []byte("x")}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	// Every message is delivered twice.
	got := 0
	deadline := time.After(time.Second)
	for got < 2*sends {
		select {
		case <-b.Recv():
			got++
		case <-deadline:
			t.Fatalf("received %d messages, want %d (each duplicated)", got, 2*sends)
		}
	}
	st := n.Stats()
	if st.Total.Duplicated != sends {
		t.Errorf("duplicated = %d, want %d", st.Total.Duplicated, sends)
	}
	if st.Total.Messages != 2*sends {
		t.Errorf("messages = %d, want %d (each duplicate counts)", st.Total.Messages, 2*sends)
	}
}

func TestNetworkCorruptRate(t *testing.T) {
	n := NewNetwork(WithLatency(ZeroLatency()), WithSeed(7), WithCorruptRate(1.0))
	t.Cleanup(func() { _ = n.Close() })
	a := mustPort(t, n, "a")
	b := mustPort(t, n, "b")
	payload := []byte("hello, world")
	if err := a.Send("b", Message{Proto: "t", Payload: append([]byte(nil), payload...)}); err != nil {
		t.Fatalf("send: %v", err)
	}
	msg := recvTimeout(t, b, time.Second)
	if bytes.Equal(msg.Payload, payload) {
		t.Error("payload survived 100% corruption rate unchanged")
	}
	if len(msg.Payload) != len(payload) {
		t.Errorf("corruption changed the length: %d != %d (bit flips only)", len(msg.Payload), len(payload))
	}
	if got := n.Stats().Total.Corrupted; got != 1 {
		t.Errorf("corrupted = %d, want 1", got)
	}
}

func TestLinkDuplicateAndCorruptOverrides(t *testing.T) {
	n := NewNetwork(WithLatency(ZeroLatency()), WithSeed(7))
	t.Cleanup(func() { _ = n.Close() })
	a := mustPort(t, n, "a")
	b := mustPort(t, n, "b")
	c := mustPort(t, n, "c")

	n.SetLinkDuplicateRate("a", "b", 1.0)
	n.SetLinkCorruptRate("a", "c", 1.0)

	// a->b duplicates; a->c corrupts; each override is per-link.
	if err := a.Send("b", Message{Proto: "t", Payload: []byte("dup")}); err != nil {
		t.Fatalf("send: %v", err)
	}
	recvTimeout(t, b, time.Second)
	recvTimeout(t, b, time.Second)

	if err := a.Send("c", Message{Proto: "t", Payload: []byte("intact?")}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if msg := recvTimeout(t, c, time.Second); bytes.Equal(msg.Payload, []byte("intact?")) {
		t.Error("a->c payload not corrupted despite the link override")
	}

	// Negative removes the overrides; traffic is clean again.
	n.SetLinkDuplicateRate("a", "b", -1)
	n.SetLinkCorruptRate("a", "c", -1)
	if err := a.Send("c", Message{Proto: "t", Payload: []byte("intact?")}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if msg := recvTimeout(t, c, time.Second); !bytes.Equal(msg.Payload, []byte("intact?")) {
		t.Error("a->c payload corrupted after the override was removed")
	}
	if err := a.Send("b", Message{Proto: "t", Payload: []byte("once")}); err != nil {
		t.Fatalf("send: %v", err)
	}
	recvTimeout(t, b, time.Second)
	select {
	case <-b.Recv():
		t.Error("a->b still duplicating after the override was removed")
	case <-time.After(50 * time.Millisecond):
	}
}
