package simnet

import "errors"

// Transport is the endpoint abstraction shared by the simulated network
// and the real TCP loopback transport. Higher layers (the P2P overlay,
// election, pipes) are written against this interface only, so the same
// protocol code runs on both substrates.
type Transport interface {
	// Addr returns the endpoint's stable address.
	Addr() string
	// Send enqueues a message for delivery to the given address. It
	// returns an error if the endpoint is closed or the destination is
	// not reachable at all; silent loss (drop rate, partition) is NOT
	// an error — it models the network eating the packet.
	Send(to string, msg Message) error
	// Recv returns the channel on which inbound messages are
	// delivered. The channel is closed when the endpoint closes.
	Recv() <-chan Message
	// Close shuts the endpoint down and releases its address.
	Close() error
}

// Errors shared by transport implementations.
var (
	// ErrClosed is returned when operating on a closed endpoint.
	ErrClosed = errors.New("simnet: endpoint closed")
	// ErrUnknownAddr is returned when the destination address is not
	// registered on the network.
	ErrUnknownAddr = errors.New("simnet: unknown address")
)
