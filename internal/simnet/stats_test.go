package simnet

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// TestStatsTotalsEqualPerProtoSums checks the accounting invariant:
// the Total row always equals the sum over protocols, regardless of
// traffic mix or loss.
func TestStatsTotalsEqualPerProtoSums(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := NewNetwork(WithLatency(ZeroLatency()), WithSeed(seed), WithDropRate(0.3))
		defer func() { _ = n.Close() }()
		a, err := n.NewPort("a")
		if err != nil {
			return false
		}
		if _, err := n.NewPort("b"); err != nil {
			return false
		}
		protos := []string{"p1", "p2", "p3"}
		for i := 0; i < 50; i++ {
			_ = a.Send("b", Message{Proto: protos[rng.Intn(len(protos))]})
		}
		// Let in-flight deliveries settle.
		time.Sleep(20 * time.Millisecond)
		st := n.Stats()
		var msgs, bytes, dropped int64
		for _, ps := range st.PerProto {
			msgs += ps.Messages
			bytes += ps.Bytes
			dropped += ps.Dropped
		}
		return msgs == st.Total.Messages &&
			bytes == st.Total.Bytes &&
			dropped == st.Total.Dropped &&
			msgs+dropped == 50
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestStatsStringStable(t *testing.T) {
	n := NewNetwork(WithLatency(ZeroLatency()))
	t.Cleanup(func() { _ = n.Close() })
	a, err := n.NewPort("a")
	if err != nil {
		t.Fatalf("port: %v", err)
	}
	b, err := n.NewPort("b")
	if err != nil {
		t.Fatalf("port: %v", err)
	}
	_ = a.Send("b", Message{Proto: "zeta"})
	_ = a.Send("b", Message{Proto: "alpha"})
	<-b.Recv()
	<-b.Recv()
	s := n.Stats().String()
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "zeta") || !strings.Contains(s, "TOTAL") {
		t.Errorf("stats string = %q", s)
	}
	if strings.Index(s, "alpha") > strings.Index(s, "zeta") {
		t.Error("protocol rows should be sorted")
	}
}

// TestConcurrentSendersAccounting hammers the network from several
// goroutines and checks nothing is lost or double counted.
func TestConcurrentSendersAccounting(t *testing.T) {
	n := NewNetwork(WithLatency(ZeroLatency()))
	t.Cleanup(func() { _ = n.Close() })
	const senders = 8
	const perSender = 100
	sink, err := n.NewPort("sink")
	if err != nil {
		t.Fatalf("port: %v", err)
	}
	received := make(chan struct{}, senders*perSender)
	go func() {
		for range sink.Recv() {
			received <- struct{}{}
		}
	}()

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		port, err := n.NewPort(fmt.Sprintf("s%d", s))
		if err != nil {
			t.Fatalf("port: %v", err)
		}
		wg.Add(1)
		go func(p *Port) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if err := p.Send("sink", Message{Proto: "load"}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(port)
	}
	wg.Wait()

	deadline := time.After(5 * time.Second)
	for i := 0; i < senders*perSender; i++ {
		select {
		case <-received:
		case <-deadline:
			t.Fatalf("received %d/%d", i, senders*perSender)
		}
	}
	if got := n.Stats().PerProto["load"].Messages; got != senders*perSender {
		t.Errorf("accounted %d, want %d", got, senders*perSender)
	}
}
