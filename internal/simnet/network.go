package simnet

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Network is an in-process simulated LAN. Endpoints are created with
// NewPort; messages are delivered asynchronously after a delay computed
// by the latency model, subject to loss, per-link faults and
// partitions. All methods are safe for concurrent use.
type Network struct {
	mu          sync.Mutex
	ports       map[string]*Port
	latency     LatencyModel
	dropRate    float64
	dupRate     float64
	corruptRate float64
	rng         *rand.Rand
	partitions  map[linkKey]struct{}
	linkDelay   map[linkKey]time.Duration
	linkDrop    map[linkKey]float64
	linkDup     map[linkKey]float64
	linkCorrupt map[linkKey]float64
	closed      bool
	wg          sync.WaitGroup
	sched       *scheduler
	clock       Clock

	stats *statsCollector
}

type linkKey struct{ a, b string }

func orderedLink(a, b string) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a: a, b: b}
}

// Option configures a Network.
type Option func(*Network)

// WithLatency sets the latency model. The default is NewLANModel(1).
func WithLatency(m LatencyModel) Option {
	return func(n *Network) { n.latency = m }
}

// WithDropRate sets the global probability in [0,1) that any message is
// silently lost.
func WithDropRate(p float64) Option {
	return func(n *Network) { n.dropRate = p }
}

// WithDuplicateRate sets the global probability in [0,1) that any
// message is delivered twice (the second copy with its own latency
// sample), modelling at-least-once links and retransmitting NICs.
func WithDuplicateRate(p float64) Option {
	return func(n *Network) { n.dupRate = p }
}

// WithCorruptRate sets the global probability in [0,1) that a message's
// payload is bit-flipped in flight. Corrupted payloads reach the
// destination; detecting and rejecting them is the receiver's job.
func WithCorruptRate(p float64) Option {
	return func(n *Network) { n.corruptRate = p }
}

// WithSeed seeds the network's random source (loss decisions).
func WithSeed(seed int64) Option {
	return func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) }
}

// WithClock injects the network's time source (timestamping and
// delivery scheduling). The default is WallClock.
func WithClock(c Clock) Option {
	return func(n *Network) { n.clock = c }
}

// NewNetwork creates an empty simulated network.
func NewNetwork(opts ...Option) *Network {
	n := &Network{
		ports:       make(map[string]*Port),
		latency:     NewLANModel(1),
		rng:         rand.New(rand.NewSource(1)),
		partitions:  make(map[linkKey]struct{}),
		linkDelay:   make(map[linkKey]time.Duration),
		linkDrop:    make(map[linkKey]float64),
		linkDup:     make(map[linkKey]float64),
		linkCorrupt: make(map[linkKey]float64),
		stats:       newStatsCollector(),
		clock:       WallClock{},
	}
	for _, opt := range opts {
		opt(n)
	}
	// The scheduler reads the injected clock, so it is built after the
	// options have run.
	n.sched = newScheduler(n.clock)
	return n
}

// NewPort registers a new endpoint under the given address.
func (n *Network) NewPort(addr string) (*Port, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, exists := n.ports[addr]; exists {
		return nil, fmt.Errorf("simnet: address %q already in use", addr)
	}
	p := newPort(n, addr)
	n.ports[addr] = p
	return p, nil
}

// Stats returns a snapshot of delivered/dropped traffic per protocol.
func (n *Network) Stats() Stats { return n.stats.snapshot() }

// ResetStats zeroes all traffic counters. Benchmarks call this between
// the warm-up and the measured phase.
func (n *Network) ResetStats() { n.stats.reset() }

// Partition blocks all traffic between the two addresses, in both
// directions, until Heal is called.
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitions[orderedLink(a, b)] = struct{}{}
}

// Heal removes a partition between two addresses.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitions, orderedLink(a, b))
}

// Isolate partitions addr from every currently registered port.
func (n *Network) Isolate(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for other := range n.ports {
		if other != addr {
			n.partitions[orderedLink(addr, other)] = struct{}{}
		}
	}
}

// Rejoin heals every partition involving addr.
func (n *Network) Rejoin(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for key := range n.partitions {
		if key.a == addr || key.b == addr {
			delete(n.partitions, key)
		}
	}
}

// SetLinkDelay adds a fixed extra one-way delay on the link between two
// addresses (both directions). A zero duration removes the override.
func (n *Network) SetLinkDelay(a, b string, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := orderedLink(a, b)
	if d <= 0 {
		delete(n.linkDelay, key)
		return
	}
	n.linkDelay[key] = d
}

// SetLinkDropRate sets a per-link loss probability overriding the
// global rate. A negative value removes the override.
func (n *Network) SetLinkDropRate(a, b string, p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := orderedLink(a, b)
	if p < 0 {
		delete(n.linkDrop, key)
		return
	}
	n.linkDrop[key] = p
}

// SetLinkDuplicateRate sets a per-link duplication probability
// overriding the global rate. A negative value removes the override.
func (n *Network) SetLinkDuplicateRate(a, b string, p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := orderedLink(a, b)
	if p < 0 {
		delete(n.linkDup, key)
		return
	}
	n.linkDup[key] = p
}

// SetLinkCorruptRate sets a per-link payload-corruption probability
// overriding the global rate. A negative value removes the override.
func (n *Network) SetLinkCorruptRate(a, b string, p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := orderedLink(a, b)
	if p < 0 {
		delete(n.linkCorrupt, key)
		return
	}
	n.linkCorrupt[key] = p
}

// Close shuts down the network and every registered port, and waits
// for all in-flight deliveries to settle.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	ports := make([]*Port, 0, len(n.ports))
	for _, p := range n.ports {
		ports = append(ports, p)
	}
	n.mu.Unlock()
	for _, p := range ports {
		_ = p.Close()
	}
	// Flush scheduled deliveries (they land on closed ports and are
	// swallowed) so the wait group settles.
	n.sched.close()
	n.wg.Wait()
	return nil
}

// send is called by ports. It applies loss/partition policy, computes
// the delay and schedules asynchronous delivery.
func (n *Network) send(msg Message) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	dst, ok := n.ports[msg.Dst]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("simnet: send to %q: %w", msg.Dst, ErrUnknownAddr)
	}
	key := orderedLink(msg.Src, msg.Dst)
	if _, cut := n.partitions[key]; cut {
		n.mu.Unlock()
		n.stats.recordDropped(msg.Proto)
		return nil
	}
	drop := n.dropRate
	if p, ok := n.linkDrop[key]; ok {
		drop = p
	}
	if drop > 0 && n.rng.Float64() < drop {
		n.mu.Unlock()
		n.stats.recordDropped(msg.Proto)
		return nil
	}
	dup := n.dupRate
	if p, ok := n.linkDup[key]; ok {
		dup = p
	}
	duplicated := dup > 0 && n.rng.Float64() < dup
	corrupt := n.corruptRate
	if p, ok := n.linkCorrupt[key]; ok {
		corrupt = p
	}
	if corrupt > 0 && len(msg.Payload) > 0 && n.rng.Float64() < corrupt {
		msg.Payload = corruptPayload(msg.Payload, n.rng)
		n.stats.recordCorrupted(msg.Proto)
	}
	extra := n.linkDelay[key]
	n.mu.Unlock()

	msg.SentAt = n.clock.Now()
	size := msg.Size()
	n.deliverAfter(msg, dst, n.latency.Delay(msg.Src, msg.Dst, size)+extra)
	n.stats.recordDelivered(msg.Proto, size)
	if duplicated {
		// The duplicate takes its own latency sample, so copies can
		// arrive out of order — receivers must tolerate replays.
		n.deliverAfter(msg, dst, n.latency.Delay(msg.Src, msg.Dst, size)+extra)
		n.stats.recordDelivered(msg.Proto, size)
		n.stats.recordDuplicated(msg.Proto)
	}
	return nil
}

// deliverAfter schedules one asynchronous delivery of msg to dst.
func (n *Network) deliverAfter(msg Message, dst *Port, delay time.Duration) {
	n.wg.Add(1)
	deliver := func() {
		defer n.wg.Done()
		// Re-check the destination: it may have closed while the
		// message was in flight; a closed port swallows the message,
		// exactly like a dead NIC.
		n.mu.Lock()
		cur, ok := n.ports[msg.Dst]
		n.mu.Unlock()
		if ok && cur == dst {
			dst.enqueue(msg)
		}
	}
	if delay <= 0 {
		go deliver()
	} else {
		// The scheduler beats the platform's ~1ms timer granularity,
		// which matters for the LAN model's 250µs one-way delays.
		n.sched.schedule(msg.SentAt.Add(delay), deliver)
	}
}

// corruptPayload returns a copy of the payload with one to three bytes
// bit-flipped at positions drawn from rng (called with the network lock
// held, so corruption decisions stay seed-deterministic).
func corruptPayload(payload []byte, rng *rand.Rand) []byte {
	out := append([]byte(nil), payload...)
	flips := 1 + rng.Intn(3)
	for i := 0; i < flips; i++ {
		out[rng.Intn(len(out))] ^= 0xFF
	}
	return out
}

// release removes a closed port from the address table.
func (n *Network) release(addr string, p *Port) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if cur, ok := n.ports[addr]; ok && cur == p {
		delete(n.ports, addr)
	}
}

// Addrs returns the currently registered addresses, in no particular
// order.
func (n *Network) Addrs() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.ports))
	for a := range n.ports {
		out = append(out, a)
	}
	return out
}
