package simnet

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ProtoStats aggregates traffic for one protocol tag.
type ProtoStats struct {
	// Messages is the number of messages delivered.
	Messages int64
	// Bytes is the accounted wire bytes delivered.
	Bytes int64
	// Dropped is the number of messages lost to drop rate, partition
	// or link faults.
	Dropped int64
	// Duplicated is the number of messages delivered twice (each extra
	// copy is also counted under Messages).
	Duplicated int64
	// Corrupted is the number of messages whose payload was bit-flipped
	// in flight.
	Corrupted int64
}

// Stats is a point-in-time snapshot of network traffic, broken down by
// protocol tag. This is the measurement surface behind Figure 4 of the
// paper (messages exchanged vs. number of b-peers).
type Stats struct {
	// PerProto maps protocol tag to its counters.
	PerProto map[string]ProtoStats
	// Total aggregates across all protocols.
	Total ProtoStats
}

// String renders the snapshot as a stable, sorted table row set.
func (s Stats) String() string {
	tags := make([]string, 0, len(s.PerProto))
	for tag := range s.PerProto {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	var b strings.Builder
	for _, tag := range tags {
		ps := s.PerProto[tag]
		fmt.Fprintf(&b, "%-12s msgs=%-8d bytes=%-10d dropped=%-6d dup=%-6d corrupt=%d\n",
			tag, ps.Messages, ps.Bytes, ps.Dropped, ps.Duplicated, ps.Corrupted)
	}
	fmt.Fprintf(&b, "%-12s msgs=%-8d bytes=%-10d dropped=%-6d dup=%-6d corrupt=%d\n",
		"TOTAL", s.Total.Messages, s.Total.Bytes, s.Total.Dropped, s.Total.Duplicated, s.Total.Corrupted)
	return b.String()
}

// statsCollector is the mutable accumulator behind Stats snapshots.
type statsCollector struct {
	mu       sync.Mutex
	perProto map[string]*ProtoStats
	total    ProtoStats
}

func newStatsCollector() *statsCollector {
	return &statsCollector{perProto: make(map[string]*ProtoStats)}
}

func (c *statsCollector) proto(tag string) *ProtoStats {
	ps, ok := c.perProto[tag]
	if !ok {
		ps = &ProtoStats{}
		c.perProto[tag] = ps
	}
	return ps
}

func (c *statsCollector) recordDelivered(tag string, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ps := c.proto(tag)
	ps.Messages++
	ps.Bytes += int64(size)
	c.total.Messages++
	c.total.Bytes += int64(size)
}

func (c *statsCollector) recordDropped(tag string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.proto(tag).Dropped++
	c.total.Dropped++
}

func (c *statsCollector) recordDuplicated(tag string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.proto(tag).Duplicated++
	c.total.Duplicated++
}

func (c *statsCollector) recordCorrupted(tag string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.proto(tag).Corrupted++
	c.total.Corrupted++
}

// snapshot returns a deep copy of the counters.
func (c *statsCollector) snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := Stats{PerProto: make(map[string]ProtoStats, len(c.perProto)), Total: c.total}
	for tag, ps := range c.perProto {
		out.PerProto[tag] = *ps
	}
	return out
}

// reset zeroes all counters.
func (c *statsCollector) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.perProto = make(map[string]*ProtoStats)
	c.total = ProtoStats{}
}
