package simnet

import (
	"math/rand"
	"sync"
	"time"
)

// LatencyModel computes the one-way delivery delay for a message.
// Implementations must be safe for concurrent use.
type LatencyModel interface {
	// Delay returns the one-way latency for a message of the given
	// size between src and dst.
	Delay(src, dst string, size int) time.Duration
}

// LatencyFunc adapts a function to the LatencyModel interface.
type LatencyFunc func(src, dst string, size int) time.Duration

var _ LatencyModel = LatencyFunc(nil)

// Delay implements LatencyModel.
func (f LatencyFunc) Delay(src, dst string, size int) time.Duration {
	return f(src, dst, size)
}

// LANModel models the paper's testbed: a 100 Mbit/s switched Ethernet
// LAN between identical machines. The paper reports an average
// message RTT of roughly 0.5 ms, so the default one-way base delay is
// 250 µs with small jitter, plus serialization delay at the link rate.
type LANModel struct {
	// Base is the one-way propagation plus switching delay.
	Base time.Duration
	// Jitter is the maximum uniform random jitter added per message.
	Jitter time.Duration
	// BitsPerSecond is the link rate used for serialization delay.
	// Zero disables the size-dependent component.
	BitsPerSecond int64

	mu  sync.Mutex
	rng *rand.Rand
}

var _ LatencyModel = (*LANModel)(nil)

// NewLANModel returns a latency model calibrated to the paper's
// 100 Mbit/s LAN testbed, seeded for reproducibility.
func NewLANModel(seed int64) *LANModel {
	return &LANModel{
		Base:          250 * time.Microsecond,
		Jitter:        50 * time.Microsecond,
		BitsPerSecond: 100_000_000,
		rng:           rand.New(rand.NewSource(seed)),
	}
}

// Delay implements LatencyModel.
func (m *LANModel) Delay(src, dst string, size int) time.Duration {
	if src == dst {
		return 0
	}
	d := m.Base
	if m.BitsPerSecond > 0 {
		bits := int64(size) * 8
		d += time.Duration(bits * int64(time.Second) / m.BitsPerSecond)
	}
	if m.Jitter > 0 {
		m.mu.Lock()
		if m.rng == nil {
			m.rng = rand.New(rand.NewSource(1))
		}
		j := time.Duration(m.rng.Int63n(int64(m.Jitter)))
		m.mu.Unlock()
		d += j
	}
	return d
}

// ZeroLatency is a model that delivers instantly; useful in unit tests
// that only care about message ordering and counts.
func ZeroLatency() LatencyModel {
	return LatencyFunc(func(string, string, int) time.Duration { return 0 })
}

// FixedLatency returns a model with a constant one-way delay.
func FixedLatency(d time.Duration) LatencyModel {
	return LatencyFunc(func(string, string, int) time.Duration { return d })
}
