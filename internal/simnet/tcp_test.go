package simnet

import (
	"testing"
	"time"
)

func TestTCPTransportRoundTrip(t *testing.T) {
	a, err := NewTCPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatalf("transport a: %v", err)
	}
	t.Cleanup(func() { _ = a.Close() })
	b, err := NewTCPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatalf("transport b: %v", err)
	}
	t.Cleanup(func() { _ = b.Close() })

	want := Message{
		Proto:   "pipe",
		Kind:    "request",
		Headers: map[string]string{"corr": "42"},
		Payload: []byte("<soap/>"),
	}
	if err := a.Send(b.Addr(), want); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case got := <-b.Recv():
		if string(got.Payload) != "<soap/>" {
			t.Errorf("payload = %q", got.Payload)
		}
		if got.Header("corr") != "42" {
			t.Errorf("header corr = %q, want 42", got.Header("corr"))
		}
		if got.Src != a.Addr() {
			t.Errorf("src = %q, want %q", got.Src, a.Addr())
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for TCP delivery")
	}
}

func TestTCPTransportSendToDeadAddr(t *testing.T) {
	a, err := NewTCPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatalf("transport: %v", err)
	}
	t.Cleanup(func() { _ = a.Close() })
	if err := a.Send("127.0.0.1:1", Message{Proto: "t"}); err == nil {
		t.Error("expected dial error sending to dead address")
	}
}

func TestTCPTransportClose(t *testing.T) {
	a, err := NewTCPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatalf("transport: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := a.Send("127.0.0.1:1", Message{}); err == nil {
		t.Error("send after close should error")
	}
	if _, ok := <-a.Recv(); ok {
		t.Error("recv open after close")
	}
}
