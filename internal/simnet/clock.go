package simnet

import "time"

// Clock abstracts the time source of the deterministic engines
// (simnet, chaos, faults). The engines never read the wall clock
// directly — they go through an injected Clock, so a simulated run can
// virtualize time and a seed fully determines behaviour. Production
// and the benchmarks use WallClock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
}

// WallClock is the Clock backed by the operating system clock.
type WallClock struct{}

// Now implements Clock.
func (WallClock) Now() time.Time {
	return time.Now() //lint:allow detrand WallClock is the one sanctioned wall-clock read the engines inject
}
