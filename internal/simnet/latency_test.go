package simnet

import (
	"testing"
	"time"
)

func TestLANModelCalibration(t *testing.T) {
	m := NewLANModel(1)
	// A small message should take roughly the base delay: the paper
	// reports ~0.5ms RTT, i.e. ~250us one-way.
	d := m.Delay("a", "b", 100)
	if d < 200*time.Microsecond || d > 400*time.Microsecond {
		t.Errorf("small-message delay = %v, want within [200us, 400us]", d)
	}
}

func TestLANModelSerializationDelay(t *testing.T) {
	m := &LANModel{Base: 0, Jitter: 0, BitsPerSecond: 100_000_000}
	// 125000 bytes = 1e6 bits = 10ms at 100Mbit/s.
	d := m.Delay("a", "b", 125000)
	if d != 10*time.Millisecond {
		t.Errorf("serialization delay = %v, want 10ms", d)
	}
}

func TestLANModelLoopbackIsFree(t *testing.T) {
	m := NewLANModel(1)
	if d := m.Delay("a", "a", 1000); d != 0 {
		t.Errorf("loopback delay = %v, want 0", d)
	}
}

func TestLANModelJitterBounded(t *testing.T) {
	m := &LANModel{Base: time.Millisecond, Jitter: 100 * time.Microsecond}
	for i := 0; i < 100; i++ {
		d := m.Delay("a", "b", 0)
		if d < time.Millisecond || d >= time.Millisecond+100*time.Microsecond {
			t.Fatalf("delay %v outside [base, base+jitter)", d)
		}
	}
}

func TestFixedLatency(t *testing.T) {
	m := FixedLatency(7 * time.Millisecond)
	if d := m.Delay("x", "y", 12345); d != 7*time.Millisecond {
		t.Errorf("fixed delay = %v, want 7ms", d)
	}
}

func TestZeroLatency(t *testing.T) {
	if d := ZeroLatency().Delay("x", "y", 999); d != 0 {
		t.Errorf("zero latency = %v, want 0", d)
	}
}
