package simnet

import "sync"

// Port is an endpoint on a simulated Network. Inbound messages are
// buffered in an unbounded queue and pumped to the Recv channel by a
// dedicated goroutine, so slow consumers never deadlock the network's
// delivery timers.
type Port struct {
	net  *Network
	addr string

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool

	out  chan Message
	stop chan struct{}
	done chan struct{}
}

var _ Transport = (*Port)(nil)

func newPort(n *Network, addr string) *Port {
	p := &Port{
		net:  n,
		addr: addr,
		out:  make(chan Message),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	go p.pump()
	return p
}

// Addr implements Transport.
func (p *Port) Addr() string { return p.addr }

// Send implements Transport.
func (p *Port) Send(to string, msg Message) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.mu.Unlock()
	msg.Src = p.addr
	msg.Dst = to
	return p.net.send(msg)
}

// Recv implements Transport.
func (p *Port) Recv() <-chan Message { return p.out }

// Close implements Transport. It unregisters the address and closes
// the Recv channel once the pump exits.
func (p *Port) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.stop)
	p.cond.Broadcast()
	p.mu.Unlock()
	p.net.release(p.addr, p)
	<-p.done
	return nil
}

// enqueue is called by the network's delivery timers.
func (p *Port) enqueue(msg Message) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.queue = append(p.queue, msg)
	p.cond.Signal()
}

// pump moves messages from the unbounded queue to the out channel.
func (p *Port) pump() {
	defer close(p.done)
	defer close(p.out)
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		msg := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()
		select {
		case p.out <- msg:
		case <-p.stop:
			return
		}
	}
}
