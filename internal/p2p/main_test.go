package p2p

import (
	"testing"

	"whisper/internal/leakcheck"
)

// TestMain fails the package when peers, pipes, detectors or resolver
// goroutines outlive the tests that started them.
func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
