package p2p

import (
	"context"
	"testing"
	"time"
)

func TestPipeOneWaySend(t *testing.T) {
	h := newHarness(t, 2)
	sender := NewPipeService(h.peers[0], h.gen)
	receiver := NewPipeService(h.peers[1], h.gen)
	in := receiver.Bind("inbox", UnicastPipe)
	for _, p := range h.peers {
		p.Start()
	}

	if err := sender.Send(in.Advertisement(), []byte("hello")); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case pm := <-in.Messages():
		if string(pm.Payload) != "hello" {
			t.Errorf("payload = %q", pm.Payload)
		}
		if pm.CorrID != "" {
			t.Errorf("one-way message has corr id %q", pm.CorrID)
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
}

func TestPipeRequestResponse(t *testing.T) {
	h := newHarness(t, 2)
	client := NewPipeService(h.peers[0], h.gen)
	server := NewPipeService(h.peers[1], h.gen)
	in := server.Bind("svc", UnicastPipe)
	for _, p := range h.peers {
		p.Start()
	}

	go func() {
		select {
		case pm := <-in.Messages():
			_ = in.Reply(pm, append([]byte("re:"), pm.Payload...))
		case <-in.Done():
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := client.Call(ctx, in.Advertisement(), []byte("req"))
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if string(resp) != "re:req" {
		t.Errorf("resp = %q", resp)
	}
}

func TestPipeCallTimeoutWhenUnserved(t *testing.T) {
	h := newHarness(t, 2)
	client := NewPipeService(h.peers[0], h.gen)
	server := NewPipeService(h.peers[1], h.gen)
	in := server.Bind("svc", UnicastPipe) // nobody consumes
	for _, p := range h.peers {
		p.Start()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := client.Call(ctx, in.Advertisement(), []byte("req")); err == nil {
		t.Error("expected timeout")
	}
}

func TestPipeSendToUnboundPipeIsLost(t *testing.T) {
	h := newHarness(t, 2)
	client := NewPipeService(h.peers[0], h.gen)
	server := NewPipeService(h.peers[1], h.gen)
	in := server.Bind("svc", UnicastPipe)
	adv := in.Advertisement()
	in.Close()
	for _, p := range h.peers {
		p.Start()
	}
	// The send itself succeeds (the transport delivers), the pipe
	// layer drops it, like JXTA.
	if err := client.Send(adv, []byte("x")); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case <-in.Messages():
		t.Error("message delivered on closed pipe")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestPipeReplyToOneWayFails(t *testing.T) {
	h := newHarness(t, 1)
	svc := NewPipeService(h.peers[0], h.gen)
	in := svc.Bind("x", UnicastPipe)
	if err := in.Reply(PipeMessage{From: "a"}, nil); err == nil {
		t.Error("expected error replying to one-way message")
	}
}

func TestPipePropagate(t *testing.T) {
	h := newHarness(t, 4)
	sender := NewPipeService(h.peers[0], h.gen)
	var pipes []*InputPipe
	var advs []*PipeAdvertisement
	for _, p := range h.peers[1:] {
		svc := NewPipeService(p, h.gen)
		in := svc.Bind("grp", PropagatePipe)
		pipes = append(pipes, in)
		advs = append(advs, in.Advertisement())
	}
	for _, p := range h.peers {
		p.Start()
	}

	if err := sender.Propagate(advs, []byte("bcast")); err != nil {
		t.Fatalf("propagate: %v", err)
	}
	for i, in := range pipes {
		select {
		case pm := <-in.Messages():
			if string(pm.Payload) != "bcast" {
				t.Errorf("pipe %d payload = %q", i, pm.Payload)
			}
		case <-time.After(time.Second):
			t.Fatalf("pipe %d did not receive propagate", i)
		}
	}
}

func TestPipeCloseIdempotent(t *testing.T) {
	h := newHarness(t, 1)
	svc := NewPipeService(h.peers[0], h.gen)
	in := svc.Bind("x", UnicastPipe)
	in.Close()
	in.Close()
	select {
	case <-in.Done():
	default:
		t.Error("Done not closed after Close")
	}
}

func TestPipeCallAllAckedFanOut(t *testing.T) {
	h := newHarness(t, 4)
	sender := NewPipeService(h.peers[0], h.gen)
	var advs []*PipeAdvertisement
	for _, p := range h.peers[1:] {
		svc := NewPipeService(p, h.gen)
		in := svc.Bind("grp/replog", PropagatePipe)
		advs = append(advs, in.Advertisement())
		t.Cleanup(in.Close)
		go func(in *InputPipe) {
			for {
				select {
				case pm := <-in.Messages():
					_ = in.Reply(pm, []byte("ok:"+in.svc.peer.Addr()))
				case <-in.Done():
					return
				}
			}
		}(in)
	}
	for _, p := range h.peers {
		p.Start()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	results := sender.CallAll(ctx, advs, []byte("entry"))
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("result %d: %v", i, r.Err)
		}
		if r.Addr != advs[i].Addr {
			t.Errorf("result %d addr = %s, want %s (order preserved)", i, r.Addr, advs[i].Addr)
		}
		if string(r.Payload) != "ok:"+advs[i].Addr {
			t.Errorf("result %d payload = %q", i, r.Payload)
		}
	}
}

func TestPipeCallAllReportsPerTargetErrors(t *testing.T) {
	h := newHarness(t, 3)
	sender := NewPipeService(h.peers[0], h.gen)
	svcOK := NewPipeService(h.peers[1], h.gen)
	okPipe := svcOK.Bind("grp/replog", PropagatePipe)
	t.Cleanup(okPipe.Close)
	go func() {
		select {
		case pm := <-okPipe.Messages():
			_ = okPipe.Reply(pm, []byte("ok"))
		case <-okPipe.Done():
		}
	}()
	svcDead := NewPipeService(h.peers[2], h.gen)
	deadPipe := svcDead.Bind("grp/replog", PropagatePipe) // bound, never served
	for _, p := range h.peers {
		p.Start()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	results := sender.CallAll(ctx, []*PipeAdvertisement{okPipe.Advertisement(), deadPipe.Advertisement()}, []byte("entry"))
	if results[0].Err != nil || string(results[0].Payload) != "ok" {
		t.Fatalf("live target: %+v", results[0])
	}
	if results[1].Err == nil {
		t.Fatal("dead target must report an error, not block the fan-out")
	}
}
