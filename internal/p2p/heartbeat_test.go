package p2p

import (
	"sync"
	"testing"
	"time"
)

func TestFailureDetectorHealthyPeerStaysHealthy(t *testing.T) {
	h := newHarness(t, 2)
	a, b := h.peers[0], h.peers[1]
	da := NewFailureDetector(a, FailureDetectorConfig{Interval: 20 * time.Millisecond})
	NewFailureDetector(b, FailureDetectorConfig{Interval: 20 * time.Millisecond})
	a.Start()
	b.Start()
	da.Watch(b.Addr())
	da.Start()
	t.Cleanup(da.Stop)

	time.Sleep(200 * time.Millisecond)
	if !da.Healthy(b.Addr()) {
		t.Error("responsive peer marked failed")
	}
}

func TestFailureDetectorDetectsCrash(t *testing.T) {
	h := newHarness(t, 2)
	a, b := h.peers[0], h.peers[1]

	failed := make(chan string, 1)
	da := NewFailureDetector(a, FailureDetectorConfig{
		Interval:  20 * time.Millisecond,
		Timeout:   80 * time.Millisecond,
		OnFailure: func(addr string) { failed <- addr },
	})
	NewFailureDetector(b, FailureDetectorConfig{Interval: 20 * time.Millisecond})
	a.Start()
	b.Start()
	da.Watch(b.Addr())
	da.Start()
	t.Cleanup(da.Stop)

	time.Sleep(100 * time.Millisecond) // establish health
	bAddr := b.Addr()
	_ = b.Close() // crash

	select {
	case addr := <-failed:
		if addr != bAddr {
			t.Errorf("failed addr = %s, want %s", addr, bAddr)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("failure never detected")
	}
	if da.Healthy(bAddr) {
		t.Error("crashed peer still healthy")
	}
}

func TestFailureDetectorRecovery(t *testing.T) {
	h := newHarness(t, 2)
	a, b := h.peers[0], h.peers[1]

	var mu sync.Mutex
	events := []string{}
	record := func(tag string) func(string) {
		return func(string) {
			mu.Lock()
			events = append(events, tag)
			mu.Unlock()
		}
	}
	da := NewFailureDetector(a, FailureDetectorConfig{
		Interval:   20 * time.Millisecond,
		Timeout:    80 * time.Millisecond,
		OnFailure:  record("fail"),
		OnRecovery: record("recover"),
	})
	NewFailureDetector(b, FailureDetectorConfig{Interval: 20 * time.Millisecond})
	a.Start()
	b.Start()
	da.Watch(b.Addr())
	da.Start()
	t.Cleanup(da.Stop)

	// Partition b away, wait for failure, then heal.
	h.net.Partition(a.Addr(), b.Addr())
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(events)
		mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	h.net.Heal(a.Addr(), b.Addr())
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if da.Healthy(b.Addr()) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(events) < 2 || events[0] != "fail" || events[len(events)-1] != "recover" {
		t.Errorf("events = %v, want fail then recover", events)
	}
}

func TestFailureDetectorUnwatch(t *testing.T) {
	h := newHarness(t, 2)
	a, b := h.peers[0], h.peers[1]
	da := NewFailureDetector(a, FailureDetectorConfig{Interval: 20 * time.Millisecond})
	a.Start()
	b.Start()
	da.Watch(b.Addr())
	if got := len(da.Watched()); got != 1 {
		t.Fatalf("watched = %d, want 1", got)
	}
	da.Unwatch(b.Addr())
	if got := len(da.Watched()); got != 0 {
		t.Fatalf("after unwatch = %d, want 0", got)
	}
	if da.Healthy(b.Addr()) {
		t.Error("unwatched address should not report healthy")
	}
}

func TestFailureDetectorStopWithoutStart(t *testing.T) {
	h := newHarness(t, 1)
	d := NewFailureDetector(h.peers[0], FailureDetectorConfig{})
	d.Stop() // must not deadlock or panic
	d.Stop()
	d.Start() // no-op after stop
}
