package p2p

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"whisper/internal/simnet"
	"whisper/internal/trace"
)

// wireCtx generates SpanContexts from the alphabet Tracer-minted IDs
// use, for quick property tests.
type wireCtx trace.SpanContext

const idAlphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789.-"

func randomID(rng *rand.Rand) trace.ID {
	n := 1 + rng.Intn(24)
	b := make([]byte, n)
	for i := range b {
		b[i] = idAlphabet[rng.Intn(len(idAlphabet))]
	}
	return trace.ID(b)
}

// Generate implements quick.Generator.
func (wireCtx) Generate(rng *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(wireCtx{TraceID: randomID(rng), SpanID: randomID(rng)})
}

// TestTraceEnvelopeRoundTripProperty checks that any tracer-shaped
// span context injected into a p2p message envelope extracts back
// unchanged — the p2p half of the propagation contract (the SOAP half
// lives in internal/soap).
func TestTraceEnvelopeRoundTripProperty(t *testing.T) {
	prop := func(w wireCtx) bool {
		sc := trace.SpanContext(w)
		msg := simnet.Message{Proto: ProtoPipe, Kind: "request"}
		msg = msg.WithHeader(trace.HeaderKey, sc.String())
		got, ok := trace.Parse(msg.Header(trace.HeaderKey))
		return ok && got == sc
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPipeCallPropagatesTraceContext(t *testing.T) {
	h := newHarness(t, 2)
	client := NewPipeService(h.peers[0], h.gen)
	server := NewPipeService(h.peers[1], h.gen)
	in := server.Bind("svc", UnicastPipe)
	for _, p := range h.peers {
		p.Start()
	}

	tr := trace.NewSeeded(trace.NewCollector(16), 1)
	ctx, span := tr.StartSpan(context.Background(), "client.request")
	defer span.End()

	gotTrace := make(chan trace.SpanContext, 1)
	go func() {
		select {
		case pm := <-in.Messages():
			gotTrace <- pm.Trace
			_ = in.Reply(pm, []byte("ok"))
		case <-in.Done():
		}
	}()

	callCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if _, err := client.Call(callCtx, in.Advertisement(), []byte("req")); err != nil {
		t.Fatalf("call: %v", err)
	}
	select {
	case sc := <-gotTrace:
		if sc != span.Context() {
			t.Errorf("server saw %+v, want %+v", sc, span.Context())
		}
	case <-time.After(time.Second):
		t.Fatal("no request seen")
	}
}

func TestResolverQueryRecordsServerSpan(t *testing.T) {
	h := newHarness(t, 2)
	qr := NewResolver(h.peers[0])
	sr := NewResolver(h.peers[1])
	serverCol := trace.NewCollector(16)
	h.peers[1].SetTracer(trace.NewSeeded(serverCol, 2))
	sr.RegisterHandler("echo", func(_ string, payload []byte) ([]byte, error) {
		return payload, nil
	})
	for _, p := range h.peers {
		p.Start()
	}

	tr := trace.NewSeeded(trace.NewCollector(16), 3)
	ctx, span := tr.StartSpan(context.Background(), "op")
	callCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if _, err := qr.Query(callCtx, h.peers[1].Addr(), "echo", []byte("x")); err != nil {
		t.Fatalf("query: %v", err)
	}
	span.End()

	recs := serverCol.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("server recorded %d spans, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Name != "resolver.echo" || rec.TraceID != span.Context().TraceID || rec.ParentID != span.Context().SpanID {
		t.Errorf("server span = %+v", rec)
	}
}

func TestServeAndQueryTraces(t *testing.T) {
	h := newHarness(t, 2)
	col := trace.NewCollector(16)
	tr := trace.NewSeeded(col, 4)
	_, s := tr.StartSpan(context.Background(), "remembered")
	s.End()
	ServeTraces(h.peers[1], col)
	client := NewTraceClient(h.peers[0])
	for _, p := range h.peers {
		p.Start()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	recs, err := QueryTraces(ctx, client, h.peers[1].Addr())
	if err != nil {
		t.Fatalf("query traces: %v", err)
	}
	if len(recs) != 1 || recs[0].Name != "remembered" {
		t.Errorf("dump = %+v", recs)
	}
}
