package p2p

import (
	"encoding/xml"
	"fmt"
	"sync"
	"time"
)

// Advertisement is the JXTA metadata document describing a network
// resource (peer, peer group, pipe, service). Advertisements serialize
// to XML and are indexed by the discovery service on their Attributes.
//
// New advertisement types (such as Whisper's semantic advertisement)
// register a factory with RegisterAdvType; Parse then round-trips them.
type Advertisement interface {
	// AdvType is the XML document type, e.g. "jxta:PGA".
	AdvType() string
	// AdvID uniquely identifies the advertised resource.
	AdvID() ID
	// Attributes returns the flat searchable index of the
	// advertisement, mirroring JXTA's attribute/value discovery API.
	Attributes() map[string]string
	// MarshalAdv serializes the advertisement to XML.
	MarshalAdv() ([]byte, error)
	// UnmarshalAdv parses the XML produced by MarshalAdv.
	UnmarshalAdv(data []byte) error
}

// DefaultLifetime is the default advertisement lifetime in the local
// cache, mirroring JXTA's default expiration.
const DefaultLifetime = 2 * time.Hour

// --- registry --------------------------------------------------------

var (
	advRegistryMu sync.RWMutex
	advRegistry   = map[string]func() Advertisement{}
)

// RegisterAdvType registers a factory for an advertisement document
// type. It is safe to call from package init of extension packages;
// re-registration overwrites.
func RegisterAdvType(advType string, factory func() Advertisement) {
	advRegistryMu.Lock()
	defer advRegistryMu.Unlock()
	advRegistry[advType] = factory
}

// ParseAdvertisement sniffs the root element of the XML document and
// decodes it with the registered factory.
func ParseAdvertisement(data []byte) (Advertisement, error) {
	root, err := rootElement(data)
	if err != nil {
		return nil, fmt.Errorf("p2p: parse advertisement: %w", err)
	}
	advRegistryMu.RLock()
	factory, ok := advRegistry[root]
	advRegistryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("p2p: unknown advertisement type %q", root)
	}
	adv := factory()
	if err := adv.UnmarshalAdv(data); err != nil {
		return nil, fmt.Errorf("p2p: decode %s: %w", root, err)
	}
	return adv, nil
}

func rootElement(data []byte) (string, error) {
	dec := xml.NewDecoder(bytesReader(data))
	for {
		tok, err := dec.Token()
		if err != nil {
			return "", err
		}
		if se, ok := tok.(xml.StartElement); ok {
			if se.Name.Space != "" {
				return se.Name.Space + ":" + se.Name.Local, nil
			}
			return se.Name.Local, nil
		}
	}
}

// --- concrete advertisements ----------------------------------------

// Advertisement document types.
const (
	PeerAdvType      = "jxta:PA"
	PeerGroupAdvType = "jxta:PGA"
	PipeAdvType      = "jxta:PipeAdv"
	ServiceAdvType   = "jxta:SvcAdv"
)

// PeerAdvertisement describes a peer and its transport address. Rank
// carries the peer's Bully election priority so group members learn
// each other's ranks from the rendezvous membership view.
type PeerAdvertisement struct {
	XMLName xml.Name `xml:"jxta PA"`
	PID     ID       `xml:"PID"`
	Name    string   `xml:"Name"`
	Addr    string   `xml:"Addr"`
	Rank    int64    `xml:"Rank,omitempty"`
	Desc    string   `xml:"Desc,omitempty"`
}

var _ Advertisement = (*PeerAdvertisement)(nil)

// AdvType implements Advertisement.
func (a *PeerAdvertisement) AdvType() string { return PeerAdvType }

// AdvID implements Advertisement.
func (a *PeerAdvertisement) AdvID() ID { return a.PID }

// Attributes implements Advertisement.
func (a *PeerAdvertisement) Attributes() map[string]string {
	return map[string]string{"Name": a.Name, "PID": string(a.PID), "Addr": a.Addr}
}

// MarshalAdv implements Advertisement.
func (a *PeerAdvertisement) MarshalAdv() ([]byte, error) { return marshalAdv(a) }

// UnmarshalAdv implements Advertisement.
func (a *PeerAdvertisement) UnmarshalAdv(data []byte) error { return unmarshalAdv(data, a) }

// PeerGroupAdvertisement describes a peer group.
type PeerGroupAdvertisement struct {
	XMLName xml.Name `xml:"jxta PGA"`
	GID     ID       `xml:"GID"`
	Name    string   `xml:"Name"`
	Desc    string   `xml:"Desc,omitempty"`
}

var _ Advertisement = (*PeerGroupAdvertisement)(nil)

// AdvType implements Advertisement.
func (a *PeerGroupAdvertisement) AdvType() string { return PeerGroupAdvType }

// AdvID implements Advertisement.
func (a *PeerGroupAdvertisement) AdvID() ID { return a.GID }

// Attributes implements Advertisement.
func (a *PeerGroupAdvertisement) Attributes() map[string]string {
	return map[string]string{"Name": a.Name, "GID": string(a.GID)}
}

// MarshalAdv implements Advertisement.
func (a *PeerGroupAdvertisement) MarshalAdv() ([]byte, error) { return marshalAdv(a) }

// UnmarshalAdv implements Advertisement.
func (a *PeerGroupAdvertisement) UnmarshalAdv(data []byte) error { return unmarshalAdv(data, a) }

// PipeKind enumerates pipe delivery semantics.
type PipeKind string

// Pipe kinds.
const (
	UnicastPipe   PipeKind = "JxtaUnicast"
	PropagatePipe PipeKind = "JxtaPropagate"
)

// PipeAdvertisement describes a communication pipe bound at a peer.
type PipeAdvertisement struct {
	XMLName xml.Name `xml:"jxta PipeAdv"`
	PipeID  ID       `xml:"Id"`
	Kind    PipeKind `xml:"Type"`
	Name    string   `xml:"Name"`
	// Addr is the transport address where the input end is bound.
	Addr string `xml:"Addr"`
}

var _ Advertisement = (*PipeAdvertisement)(nil)

// AdvType implements Advertisement.
func (a *PipeAdvertisement) AdvType() string { return PipeAdvType }

// AdvID implements Advertisement.
func (a *PipeAdvertisement) AdvID() ID { return a.PipeID }

// Attributes implements Advertisement.
func (a *PipeAdvertisement) Attributes() map[string]string {
	return map[string]string{"Name": a.Name, "Id": string(a.PipeID), "Type": string(a.Kind)}
}

// MarshalAdv implements Advertisement.
func (a *PipeAdvertisement) MarshalAdv() ([]byte, error) { return marshalAdv(a) }

// UnmarshalAdv implements Advertisement.
func (a *PipeAdvertisement) UnmarshalAdv(data []byte) error { return unmarshalAdv(data, a) }

// ServiceAdvertisement describes a plain (syntactic) service offered
// by a peer: name, operation signature strings, and the pipe to call.
type ServiceAdvertisement struct {
	XMLName xml.Name `xml:"jxta SvcAdv"`
	SvcID   ID       `xml:"SvcID"`
	Name    string   `xml:"Name"`
	// Operation is the syntactic operation name.
	Operation string `xml:"Operation"`
	// PipeID and Addr locate the service's input pipe.
	PipeID ID     `xml:"PipeID"`
	Addr   string `xml:"Addr"`
	Desc   string `xml:"Desc,omitempty"`
}

var _ Advertisement = (*ServiceAdvertisement)(nil)

// AdvType implements Advertisement.
func (a *ServiceAdvertisement) AdvType() string { return ServiceAdvType }

// AdvID implements Advertisement.
func (a *ServiceAdvertisement) AdvID() ID { return a.SvcID }

// Attributes implements Advertisement.
func (a *ServiceAdvertisement) Attributes() map[string]string {
	return map[string]string{
		"Name":      a.Name,
		"SvcID":     string(a.SvcID),
		"Operation": a.Operation,
	}
}

// MarshalAdv implements Advertisement.
func (a *ServiceAdvertisement) MarshalAdv() ([]byte, error) { return marshalAdv(a) }

// UnmarshalAdv implements Advertisement.
func (a *ServiceAdvertisement) UnmarshalAdv(data []byte) error { return unmarshalAdv(data, a) }

// registerBuiltinAdvTypes wires the concrete types into the registry.
func registerBuiltinAdvTypes() {
	RegisterAdvType(PeerAdvType, func() Advertisement { return &PeerAdvertisement{} })
	RegisterAdvType(PeerGroupAdvType, func() Advertisement { return &PeerGroupAdvertisement{} })
	RegisterAdvType(PipeAdvType, func() Advertisement { return &PipeAdvertisement{} })
	RegisterAdvType(ServiceAdvType, func() Advertisement { return &ServiceAdvertisement{} })
}

var registerBuiltinOnce sync.Once

// EnsureBuiltinAdvTypes registers the built-in advertisement types.
// Every entry point that parses advertisements calls it; it is
// idempotent and cheap.
func EnsureBuiltinAdvTypes() {
	registerBuiltinOnce.Do(registerBuiltinAdvTypes)
}
