package p2p

import (
	"sync"
	"time"

	"whisper/internal/simnet"
)

// FailureDetector is a ping/ack failure detector: it periodically pings
// every watched address and declares an address failed when no ack
// arrives within the timeout. It also answers inbound pings, so every
// peer that attaches a FailureDetector is observable. The b-peers use
// it to detect coordinator crashes and trigger Bully elections; its
// traffic is what the paper's Figure 4 accounts under steady-state
// group maintenance.
type FailureDetector struct {
	peer     *Peer
	interval time.Duration
	timeout  time.Duration

	mu      sync.Mutex
	watched map[string]*watchState
	// onFailure and onRecovery are invoked outside the lock.
	onFailure  func(addr string)
	onRecovery func(addr string)

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	started  bool
	stopped  bool
}

type watchState struct {
	lastAck time.Time
	failed  bool
}

// Heartbeat message kinds.
const (
	kindPing = "ping"
	kindPong = "pong"
)

// FailureDetectorConfig tunes the detector.
type FailureDetectorConfig struct {
	// Interval between pings to each watched address.
	Interval time.Duration
	// Timeout after which a silent address is declared failed. Must
	// exceed Interval; typical configurations use 3-4 intervals.
	Timeout time.Duration
	// OnFailure is invoked once when a watched address transitions to
	// failed. Optional.
	OnFailure func(addr string)
	// OnRecovery is invoked once when a failed address acks again.
	// Optional.
	OnRecovery func(addr string)
}

// NewFailureDetector attaches a failure detector to the peer. Call
// Start to begin pinging; Stop to shut down.
func NewFailureDetector(peer *Peer, cfg FailureDetectorConfig) *FailureDetector {
	if cfg.Interval <= 0 {
		cfg.Interval = 200 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 3 * cfg.Interval
	}
	d := &FailureDetector{
		peer:       peer,
		interval:   cfg.Interval,
		timeout:    cfg.Timeout,
		watched:    make(map[string]*watchState),
		onFailure:  cfg.OnFailure,
		onRecovery: cfg.OnRecovery,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	peer.Handle(ProtoHeartbeat, d.handleMessage)
	return d
}

// Watch begins monitoring the address. The address starts healthy.
func (d *FailureDetector) Watch(addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.watched[addr]; !ok {
		d.watched[addr] = &watchState{lastAck: time.Now()}
	}
}

// Unwatch stops monitoring the address.
func (d *FailureDetector) Unwatch(addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.watched, addr)
}

// Watched returns the monitored addresses.
func (d *FailureDetector) Watched() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.watched))
	for a := range d.watched {
		out = append(out, a)
	}
	return out
}

// Healthy reports whether the address is currently considered alive.
// Unwatched addresses report false.
func (d *FailureDetector) Healthy(addr string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.watched[addr]
	return ok && !st.failed
}

// Start launches the ping loop. Idempotent.
func (d *FailureDetector) Start() {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.mu.Unlock()
	go d.loop()
}

// Stop terminates the ping loop and waits for it to exit. Safe to
// call concurrently and more than once; Start after Stop is a no-op.
func (d *FailureDetector) Stop() {
	d.mu.Lock()
	waitForLoop := d.started && !d.stopped
	d.stopped = true
	d.started = true // prevent a later Start
	d.mu.Unlock()
	d.stopOnce.Do(func() { close(d.stop) })
	if waitForLoop {
		<-d.done
	}
}

func (d *FailureDetector) loop() {
	defer close(d.done)
	ticker := time.NewTicker(d.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			d.tick()
		case <-d.stop:
			return
		}
	}
}

func (d *FailureDetector) tick() {
	now := time.Now()
	var failures []string

	d.mu.Lock()
	targets := make([]string, 0, len(d.watched))
	for addr, st := range d.watched {
		if !st.failed && now.Sub(st.lastAck) > d.timeout {
			st.failed = true
			failures = append(failures, addr)
		}
		targets = append(targets, addr)
	}
	d.mu.Unlock()

	for _, addr := range targets {
		// Ping regardless of failed state so recovery is observable.
		_ = d.peer.Send(addr, simnet.Message{Proto: ProtoHeartbeat, Kind: kindPing})
	}
	for _, addr := range failures {
		if d.onFailure != nil {
			d.onFailure(addr)
		}
	}
}

func (d *FailureDetector) handleMessage(msg simnet.Message) {
	switch msg.Kind {
	case kindPing:
		_ = d.peer.Send(msg.Src, simnet.Message{Proto: ProtoHeartbeat, Kind: kindPong})
	case kindPong:
		var recovered bool
		d.mu.Lock()
		if st, ok := d.watched[msg.Src]; ok {
			st.lastAck = time.Now()
			if st.failed {
				st.failed = false
				recovered = true
			}
		}
		d.mu.Unlock()
		if recovered && d.onRecovery != nil {
			d.onRecovery(msg.Src)
		}
	}
}
