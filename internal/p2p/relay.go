package p2p

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"whisper/internal/simnet"
)

// The paper's §5 credits JXTA with "enabling multi-hop routing of
// messages, and traversing firewall or NAT equipment that isolates
// peers from public networks". This file reproduces that capability:
// a RelayService runs on a publicly reachable peer (typically the
// rendezvous) and forwards opaque messages between peers that cannot
// reach each other directly; RelayTransport wraps a peer's transport
// so selected (or all) destinations are reached through the relay,
// transparently to every protocol above it.

// ProtoRelay tags relay forwarding traffic.
const ProtoRelay = "relay"

// Relay message kinds.
const (
	kindRelayForward = "fwd"
	kindRelayDeliver = "dlv"
)

// MaxRelayHops bounds forwarding chains (loop protection).
const MaxRelayHops = 8

// RelayService forwards wrapped messages to their final destination.
// Attach it to a publicly reachable peer.
type RelayService struct {
	peer *Peer
}

// NewRelayService attaches the relay role to the peer.
func NewRelayService(peer *Peer) *RelayService {
	s := &RelayService{peer: peer}
	peer.Handle(ProtoRelay, s.handleMessage)
	return s
}

func (s *RelayService) handleMessage(msg simnet.Message) {
	if msg.Kind != kindRelayForward {
		return
	}
	inner, err := decodeRelayed(msg.Payload)
	if err != nil {
		return // malformed envelope; drop like a router would
	}
	inner.Hops++
	if inner.Hops > MaxRelayHops {
		return // loop protection
	}
	wrapped, err := encodeRelayed(inner)
	if err != nil {
		return
	}
	// Best effort: the destination may be gone.
	_ = s.peer.Send(inner.Dst, simnet.Message{
		Proto:   ProtoRelay,
		Kind:    kindRelayDeliver,
		Payload: wrapped,
	})
}

func encodeRelayed(msg simnet.Message) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&msg); err != nil {
		return nil, fmt.Errorf("p2p: encode relayed message: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeRelayed(data []byte) (simnet.Message, error) {
	var msg simnet.Message
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&msg); err != nil {
		return simnet.Message{}, fmt.Errorf("p2p: decode relayed message: %w", err)
	}
	return msg, nil
}

// RelayPolicy decides whether a destination is reached via the relay.
type RelayPolicy func(dst string) bool

// RelayAlways routes every destination through the relay (a peer fully
// isolated behind NAT).
func RelayAlways() RelayPolicy { return func(string) bool { return true } }

// RelayFor routes only the listed destinations through the relay.
func RelayFor(dsts ...string) RelayPolicy {
	set := make(map[string]bool, len(dsts))
	for _, d := range dsts {
		set[d] = true
	}
	return func(dst string) bool { return set[dst] }
}

// RelayTransport wraps a transport so destinations selected by the
// policy are reached via a relay peer. Inbound relayed envelopes are
// unwrapped transparently, so protocol code sees the original message
// (original Src, incremented Hops). Both endpoints of a relayed
// exchange must use a RelayTransport (replies route back through the
// relay by the same policy).
type RelayTransport struct {
	inner     simnet.Transport
	relayAddr string
	policy    RelayPolicy

	out  chan simnet.Message
	done chan struct{}

	mu     sync.Mutex
	closed bool
}

var _ simnet.Transport = (*RelayTransport)(nil)

// NewRelayTransport wraps inner. relayAddr is the relay peer's
// address; policy selects which destinations are relayed.
func NewRelayTransport(inner simnet.Transport, relayAddr string, policy RelayPolicy) *RelayTransport {
	if policy == nil {
		policy = func(string) bool { return false }
	}
	t := &RelayTransport{
		inner:     inner,
		relayAddr: relayAddr,
		policy:    policy,
		out:       make(chan simnet.Message),
		done:      make(chan struct{}),
	}
	go t.pump()
	return t
}

// Addr implements simnet.Transport.
func (t *RelayTransport) Addr() string { return t.inner.Addr() }

// Send implements simnet.Transport.
func (t *RelayTransport) Send(to string, msg simnet.Message) error {
	if !t.policy(to) || to == t.relayAddr {
		return t.inner.Send(to, msg)
	}
	msg.Src = t.inner.Addr()
	msg.Dst = to
	wrapped, err := encodeRelayed(msg)
	if err != nil {
		return err
	}
	return t.inner.Send(t.relayAddr, simnet.Message{
		Proto:   ProtoRelay,
		Kind:    kindRelayForward,
		Payload: wrapped,
	})
}

// Recv implements simnet.Transport.
func (t *RelayTransport) Recv() <-chan simnet.Message { return t.out }

// Close implements simnet.Transport.
func (t *RelayTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.inner.Close()
	<-t.done
	return err
}

// pump unwraps relayed deliveries and passes everything else through.
func (t *RelayTransport) pump() {
	defer close(t.done)
	defer close(t.out)
	for msg := range t.inner.Recv() {
		if msg.Proto == ProtoRelay && msg.Kind == kindRelayDeliver {
			inner, err := decodeRelayed(msg.Payload)
			if err != nil {
				continue
			}
			msg = inner
		}
		t.out <- msg
	}
}
