package p2p

import (
	"context"
	"encoding/xml"
	"fmt"
	"sort"
	"sync"
	"time"
)

// RendezvousService runs on a designated peer and maintains the group
// membership index: edge peers join groups with a lease and query the
// rendezvous for the current member set. Combined with the peer's
// DiscoveryService cache (which edge peers push advertisements into
// via RemotePublish), this reproduces the JXTA rendezvous/SRDI role.
type RendezvousService struct {
	peer     *Peer
	resolver *Resolver

	mu     sync.Mutex
	groups map[ID]map[ID]*memberEntry
	now    func() time.Time
	lease  time.Duration
}

type memberEntry struct {
	adv     *PeerAdvertisement
	expires time.Time
}

// Rendezvous resolver handler names.
const (
	rdvJoinHandler    = "rdv.join"
	rdvLeaveHandler   = "rdv.leave"
	rdvMembersHandler = "rdv.members"
)

// DefaultLease is how long a membership lasts without renewal.
const DefaultLease = 30 * time.Second

// NewRendezvousService attaches the rendezvous role to the peer.
func NewRendezvousService(peer *Peer, lease time.Duration) *RendezvousService {
	if lease <= 0 {
		lease = DefaultLease
	}
	s := &RendezvousService{
		peer:     peer,
		resolver: NewResolverOn(peer, ProtoRdv),
		groups:   make(map[ID]map[ID]*memberEntry),
		now:      time.Now,
		lease:    lease,
	}
	s.resolver.RegisterHandler(rdvJoinHandler, s.handleJoin)
	s.resolver.RegisterHandler(rdvLeaveHandler, s.handleLeave)
	s.resolver.RegisterHandler(rdvMembersHandler, s.handleMembers)
	return s
}

type rdvJoinDoc struct {
	XMLName xml.Name `xml:"RdvJoin"`
	GID     ID       `xml:"GID"`
	PeerAdv []byte   `xml:"PeerAdv"`
}

type rdvLeaveDoc struct {
	XMLName xml.Name `xml:"RdvLeave"`
	GID     ID       `xml:"GID"`
	PID     ID       `xml:"PID"`
}

type rdvMembersQuery struct {
	XMLName xml.Name `xml:"RdvMembers"`
	GID     ID       `xml:"GID"`
}

type rdvMembersResponse struct {
	XMLName xml.Name `xml:"RdvMembersResponse"`
	Members [][]byte `xml:"Member"`
}

func (s *RendezvousService) handleJoin(_ string, payload []byte) ([]byte, error) {
	var doc rdvJoinDoc
	if err := xml.Unmarshal(payload, &doc); err != nil {
		return nil, fmt.Errorf("bad join: %w", err)
	}
	adv := &PeerAdvertisement{}
	if err := adv.UnmarshalAdv(doc.PeerAdv); err != nil {
		return nil, fmt.Errorf("bad peer adv: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.groups[doc.GID]
	if !ok {
		g = make(map[ID]*memberEntry)
		s.groups[doc.GID] = g
	}
	g[adv.PID] = &memberEntry{adv: adv, expires: s.now().Add(s.lease)}
	return []byte("ok"), nil
}

func (s *RendezvousService) handleLeave(_ string, payload []byte) ([]byte, error) {
	var doc rdvLeaveDoc
	if err := xml.Unmarshal(payload, &doc); err != nil {
		return nil, fmt.Errorf("bad leave: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if g, ok := s.groups[doc.GID]; ok {
		delete(g, doc.PID)
	}
	return []byte("ok"), nil
}

func (s *RendezvousService) handleMembers(_ string, payload []byte) ([]byte, error) {
	var q rdvMembersQuery
	if err := xml.Unmarshal(payload, &q); err != nil {
		return nil, fmt.Errorf("bad members query: %w", err)
	}
	s.mu.Lock()
	now := s.now()
	var advs []*PeerAdvertisement
	if g, ok := s.groups[q.GID]; ok {
		for pid, e := range g {
			if e.expires.Before(now) {
				delete(g, pid)
				continue
			}
			advs = append(advs, e.adv)
		}
	}
	s.mu.Unlock()

	sort.Slice(advs, func(i, j int) bool { return advs[i].PID < advs[j].PID })
	resp := rdvMembersResponse{}
	for _, adv := range advs {
		raw, err := adv.MarshalAdv()
		if err != nil {
			continue
		}
		resp.Members = append(resp.Members, raw)
	}
	return xml.Marshal(resp)
}

// MemberCount reports the live member count of a group (testing and
// introspection).
func (s *RendezvousService) MemberCount(gid ID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	n := 0
	for pid, e := range s.groups[gid] {
		if e.expires.Before(now) {
			delete(s.groups[gid], pid)
			continue
		}
		_ = pid
		n++
	}
	return n
}

// RendezvousClient is the edge-peer side of the rendezvous protocol.
type RendezvousClient struct {
	resolver *Resolver
	rdvAddr  string
}

// NewRendezvousClient attaches a rendezvous client to the peer,
// pointed at the rendezvous peer's address.
func NewRendezvousClient(peer *Peer, rdvAddr string) *RendezvousClient {
	return &RendezvousClient{resolver: NewResolverOn(peer, ProtoRdv), rdvAddr: rdvAddr}
}

// RendezvousAddr returns the configured rendezvous address.
func (c *RendezvousClient) RendezvousAddr() string { return c.rdvAddr }

// Join registers the peer advertisement as a member of the group.
// Renew by calling Join again before the lease expires.
func (c *RendezvousClient) Join(ctx context.Context, gid ID, self *PeerAdvertisement) error {
	raw, err := self.MarshalAdv()
	if err != nil {
		return fmt.Errorf("rendezvous: marshal self adv: %w", err)
	}
	doc, err := xml.Marshal(rdvJoinDoc{GID: gid, PeerAdv: raw})
	if err != nil {
		return fmt.Errorf("rendezvous: marshal join: %w", err)
	}
	if _, err := c.resolver.Query(ctx, c.rdvAddr, rdvJoinHandler, doc); err != nil {
		return fmt.Errorf("rendezvous: join: %w", err)
	}
	return nil
}

// Leave removes the peer from the group.
func (c *RendezvousClient) Leave(ctx context.Context, gid, pid ID) error {
	doc, err := xml.Marshal(rdvLeaveDoc{GID: gid, PID: pid})
	if err != nil {
		return fmt.Errorf("rendezvous: marshal leave: %w", err)
	}
	if _, err := c.resolver.Query(ctx, c.rdvAddr, rdvLeaveHandler, doc); err != nil {
		return fmt.Errorf("rendezvous: leave: %w", err)
	}
	return nil
}

// Members returns the current live members of the group.
func (c *RendezvousClient) Members(ctx context.Context, gid ID) ([]*PeerAdvertisement, error) {
	q, err := xml.Marshal(rdvMembersQuery{GID: gid})
	if err != nil {
		return nil, fmt.Errorf("rendezvous: marshal members query: %w", err)
	}
	payload, err := c.resolver.Query(ctx, c.rdvAddr, rdvMembersHandler, q)
	if err != nil {
		return nil, fmt.Errorf("rendezvous: members: %w", err)
	}
	var resp rdvMembersResponse
	if err := xml.Unmarshal(payload, &resp); err != nil {
		return nil, fmt.Errorf("rendezvous: bad members response: %w", err)
	}
	out := make([]*PeerAdvertisement, 0, len(resp.Members))
	for _, raw := range resp.Members {
		adv := &PeerAdvertisement{}
		if err := adv.UnmarshalAdv(raw); err != nil {
			continue
		}
		out = append(out, adv)
	}
	return out, nil
}
