package p2p

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"whisper/internal/gossip"
)

// gossipHarness wires n shard peers, each with a discovery index and a
// gossip service, plus one client peer for publishes.
type gossipHarness struct {
	*testHarness
	discos []*DiscoveryService
	svcs   []*GossipService
	client *GossipClient
}

func newGossipHarness(t *testing.T, n int) *gossipHarness {
	t.Helper()
	g := &gossipHarness{testHarness: newHarness(t, n)}
	addrs := make([]string, n)
	for i, p := range g.peers {
		addrs[i] = p.Addr()
	}
	for i, p := range g.peers {
		d := NewDiscoveryService(p)
		svc, err := NewGossipService(p, GossipConfig{
			Disco:    d,
			Seed:     int64(i + 1),
			Interval: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("gossip service %d: %v", i, err)
		}
		g.discos = append(g.discos, d)
		g.svcs = append(g.svcs, svc)
		p.Start()
	}
	for _, svc := range g.svcs {
		svc.SetPeers(addrs)
		svc.Run()
	}
	t.Cleanup(func() {
		for _, svc := range g.svcs {
			svc.Stop()
		}
	})
	ctl := g.addPeer(t, "ctl")
	ctl.Start()
	g.client = NewGossipClient(ctl)
	return g
}

func svcEntry(pub *gossip.Publisher, id, name string, lifetime time.Duration) gossip.Entry {
	adv := &ServiceAdvertisement{SvcID: ID(id), Name: name}
	raw, err := adv.MarshalAdv()
	if err != nil {
		panic(err)
	}
	return pub.Entry(id, raw, lifetime)
}

// waitVisible polls until the advertisement is queryable on every
// shard's discovery index (the tentpole's visibility invariant).
func (g *gossipHarness) waitVisible(t *testing.T, name string, want bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, d := range g.discos {
			visible := len(d.GetLocalAdvertisements(ServiceAdvType, "Name", name)) > 0
			if visible != want {
				all = false
				break
			}
		}
		if all {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("advertisement %q visible=%v not reached on all shards", name, want)
}

// TestGossipServiceSpreadsPublish: one publish at one shard becomes
// visible on every shard's ordinary discovery index, and the graceful
// tombstone removes it everywhere.
func TestGossipServiceSpreadsPublish(t *testing.T) {
	g := newGossipHarness(t, 3)
	pub := gossip.NewPublisher("origin-1", nil)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	applied, err := g.client.Publish(ctx, g.peers[0].Addr(), svcEntry(pub, "urn:svc:1", "Students", time.Hour))
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	if !applied {
		t.Fatal("fresh publish reported stale")
	}
	g.waitVisible(t, "Students", true)

	// Tombstone at a DIFFERENT shard: the epidemic must still beat the
	// stale live copies everywhere (no resurrection).
	if _, err := g.client.Publish(ctx, g.peers[2].Addr(), pub.Tombstone("urn:svc:1")); err != nil {
		t.Fatalf("tombstone: %v", err)
	}
	g.waitVisible(t, "Students", false)
}

// TestGossipServiceRejectsStaleVersion: a shard holding version v
// answers "stale" to any publish with version <= v.
func TestGossipServiceRejectsStaleVersion(t *testing.T) {
	g := newGossipHarness(t, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	pub := gossip.NewPublisher("origin-1", nil)
	old := svcEntry(pub, "urn:svc:1", "Students", time.Hour)
	fresh := svcEntry(pub, "urn:svc:1", "Students", time.Hour)
	if applied, err := g.client.Publish(ctx, g.peers[0].Addr(), fresh); err != nil || !applied {
		t.Fatalf("fresh publish: applied=%v err=%v", applied, err)
	}
	if applied, err := g.client.Publish(ctx, g.peers[0].Addr(), old); err != nil || applied {
		t.Fatalf("stale publish: applied=%v err=%v, want rejected", applied, err)
	}
}

// TestGossipServiceStats: the stats handler answers sorted key=value
// lines with the counters peerctl renders.
func TestGossipServiceStats(t *testing.T) {
	g := newGossipHarness(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	pub := gossip.NewPublisher("origin-1", nil)
	if _, err := g.client.Publish(ctx, g.peers[0].Addr(), svcEntry(pub, "urn:svc:1", "Students", time.Hour)); err != nil {
		t.Fatalf("publish: %v", err)
	}
	out, err := g.client.Stats(ctx, g.peers[0].Addr())
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	for _, key := range []string{"rounds=", "entries=", "live=", "checksum=", "queue_depth=", "peers="} {
		if !strings.Contains(out, key) {
			t.Errorf("stats report missing %q:\n%s", key, out)
		}
	}
}

// TestShardRouterOwnership: ownership is deterministic, the replica
// set has k distinct members led by the owner, and removing a shard
// only moves the triples it owned.
func TestShardRouterOwnership(t *testing.T) {
	addrs := []string{"shard-a", "shard-b", "shard-c", "shard-d"}
	r1 := NewShardRouter(addrs, 2)
	r2 := NewShardRouter([]string{"shard-d", "shard-c", "shard-b", "shard-a"}, 2)

	moved := 0
	shrunk := NewShardRouter(addrs[:3], 2)
	for i := 0; i < 200; i++ {
		value := fmt.Sprintf("action-%d", i)
		owner := r1.Owner("jxta:SvcAdv", "action", value)
		if got := r2.Owner("jxta:SvcAdv", "action", value); got != owner {
			t.Fatalf("ownership depends on membership order: %s vs %s", owner, got)
		}
		owners := r1.AppendOwners(nil, "jxta:SvcAdv", "action", value)
		if len(owners) != 2 || owners[0] != owner || owners[1] == owner {
			t.Fatalf("replica set %v, want owner-led pair", owners)
		}
		after := shrunk.Owner("jxta:SvcAdv", "action", value)
		if owner == "shard-d" {
			if after == "shard-d" {
				t.Fatal("removed shard still owns a triple")
			}
		} else if after != owner {
			moved++
		}
	}
	// Consistent hashing: triples not owned by the removed shard
	// mostly stay put.
	if moved > 20 {
		t.Errorf("%d/200 unrelated triples moved on shard removal", moved)
	}
}

// TestShardRouterConcurrentUpdate hammers routing against membership
// churn (run under -race): readers always resolve against a consistent
// ring, old or new, never a torn one.
func TestShardRouterConcurrentUpdate(t *testing.T) {
	r := NewShardRouter([]string{"s0", "s1", "s2", "s3"}, 2)
	stop := make(chan struct{})
	var wg, updaterWG sync.WaitGroup
	updaterWG.Add(1)
	go func() {
		defer updaterWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			n := 2 + i%4
			addrs := make([]string, n)
			for j := range addrs {
				addrs[j] = fmt.Sprintf("s%d", j)
			}
			r.Update(addrs)
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var dst []string
			for i := 0; i < 2000; i++ {
				value := fmt.Sprintf("act-%d-%d", w, i)
				if owner := r.Owner("jxta:SvcAdv", "action", value); owner == "" {
					t.Error("empty owner with a populated fleet")
					return
				}
				dst = r.AppendOwners(dst[:0], "jxta:SvcAdv", "action", value)
				if len(dst) == 0 || r.All() == nil {
					t.Error("empty routing result with a populated fleet")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	updaterWG.Wait()
}
