package p2p

import (
	"context"
	"encoding/xml"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"whisper/internal/gossip"
)

// DiscoveryService implements JXTA's discovery protocol: a local
// advertisement cache with expirations, remote publication, and remote
// queries answered from other peers' caches. Queries select by
// advertisement type plus an optional attribute/value predicate, where
// the value may use a leading or trailing '*' wildcard — exactly the
// getLocalAdvertisements(type, attr, value) surface the paper's
// SWS-proxy pseudocode is written against.
//
// The cache keeps two secondary structures (the SRDI-style index):
// entries grouped by advertisement type, and an exact-match index keyed
// by (advType, attr, value) over every attribute an advertisement
// exposes. Exact queries are answered from the index without scanning;
// wildcard queries scan only the requested type's entries. Expired
// entries are evicted lazily on lookup and proactively by a jittered
// janitor tied to the peer's lifetime, so the index never serves a
// stale advertisement.
type DiscoveryService struct {
	peer     *Peer
	resolver *Resolver

	mu     sync.Mutex
	cache  map[ID]*cacheEntry
	byType map[string]map[ID]*cacheEntry
	index  map[indexKey]map[ID]*cacheEntry
	// Generations are split so derived caches can validate at the right
	// granularity: memberGen moves on membership-shaped mutations
	// (publish, explicit flush), while expiry churn only moves the
	// generation of the evicted entry's action partition. A hot shard
	// evicting thousands of leases per sweep then invalidates only the
	// match-cache results that could actually contain them, not the
	// whole cache.
	memberGen uint64
	partGen   [GenPartitions]uint64
	stats     DiscoveryStats
	now       func() time.Time
}

// GenPartitions is how many expiry-generation partitions the cache
// tracks. Entries hash onto a partition by their (advType, action)
// pair — see ActionPartition.
const GenPartitions = 16

// ActionPartition maps an (advType, action-attribute) pair onto its
// expiry-generation partition. Derived caches stamp their results with
// the partitions of the advertisements they contain and revalidate
// against PartitionGen.
func ActionPartition(advType, action string) uint32 {
	return uint32(gossip.HashTriple(advType, "action", action) % GenPartitions)
}

type cacheEntry struct {
	adv Advertisement
	raw []byte
	// attrs caches adv.Attributes() from publish time: every
	// implementation builds a fresh map per call, so wildcard scans
	// (which probe one attribute per cached entry) would otherwise
	// allocate a map per entry per query.
	attrs   map[string]string
	expires time.Time
}

// indexKey addresses one exact-match posting set of the secondary
// index.
type indexKey struct {
	advType string
	attr    string
	value   string
}

// DiscoveryStats snapshots the cache's index effectiveness counters
// (peerctl's cache command reports them).
type DiscoveryStats struct {
	// Size is the number of live cached advertisements.
	Size int
	// IndexKeys is the number of (advType, attr, value) posting sets.
	IndexKeys int
	// Hits counts queries answered entirely from the secondary index.
	Hits uint64
	// Misses counts queries that fell back to scanning (wildcard values
	// or untyped queries).
	Misses uint64
	// Expired counts entries evicted because their lifetime passed.
	Expired uint64
	// Flushed counts entries removed by explicit Flush.
	Flushed uint64
	// Sweeps counts FlushExpired runs (janitor ticks included).
	Sweeps uint64
}

// Discovery resolver handler names.
const (
	discoveryQueryHandler   = "discovery.query"
	discoveryPublishHandler = "discovery.publish"
)

// DefaultJanitorInterval is the base period of the expired-entry
// sweeper; each tick is jittered ±25% so co-located peers don't sweep
// in lockstep.
const DefaultJanitorInterval = time.Second

// NewDiscoveryService attaches a discovery service to the peer. It
// claims the ProtoDiscovery protocol tag so discovery traffic is
// accounted separately from other resolver traffic, and starts the
// expired-advertisement janitor, which stops when the peer closes.
func NewDiscoveryService(peer *Peer) *DiscoveryService {
	return newDiscoveryService(peer, DefaultJanitorInterval)
}

func newDiscoveryService(peer *Peer, janitorEvery time.Duration) *DiscoveryService {
	EnsureBuiltinAdvTypes()
	d := &DiscoveryService{
		peer:     peer,
		resolver: NewResolverOn(peer, ProtoDiscovery),
		cache:    make(map[ID]*cacheEntry),
		byType:   make(map[string]map[ID]*cacheEntry),
		index:    make(map[indexKey]map[ID]*cacheEntry),
		now:      time.Now,
	}
	d.resolver.RegisterHandler(discoveryQueryHandler, d.answerQuery)
	d.resolver.RegisterHandler(discoveryPublishHandler, d.acceptPublish)
	if janitorEvery > 0 {
		go d.janitor(janitorEvery)
	}
	return d
}

// janitor sweeps expired advertisements on a jittered ticker so an
// entry whose lifetime passed is removed from the index even when no
// query ever touches it. The jitter is seeded from the peer's ID, so a
// deployment of many peers spreads its sweeps deterministically.
func (d *DiscoveryService) janitor(every time.Duration) {
	h := fnv.New64a()
	_, _ = h.Write([]byte(d.peer.ID()))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	for {
		// every ± 25% jitter.
		jitter := time.Duration(rng.Int63n(int64(every)/2+1)) - every/4
		t := time.NewTimer(every + jitter)
		select {
		case <-t.C:
			d.FlushExpired()
		case <-d.peer.Done():
			t.Stop()
			return
		}
	}
}

// Publish stores the advertisement in the local cache for the given
// lifetime (DefaultLifetime if zero) and indexes it under every
// attribute it exposes.
func (d *DiscoveryService) Publish(adv Advertisement, lifetime time.Duration) error {
	raw, err := adv.MarshalAdv()
	if err != nil {
		return fmt.Errorf("discovery: marshal %s: %w", adv.AdvType(), err)
	}
	if lifetime <= 0 {
		lifetime = DefaultLifetime
	}
	id := adv.AdvID()
	d.mu.Lock()
	defer d.mu.Unlock()
	if old, ok := d.cache[id]; ok {
		// Re-publication may change attributes: unindex the old entry
		// so the index never holds dangling postings.
		d.unindexLocked(id, old)
	}
	e := &cacheEntry{adv: adv, raw: raw, attrs: adv.Attributes(), expires: d.now().Add(lifetime)}
	d.cache[id] = e
	d.indexLocked(id, e)
	d.memberGen++
	return nil
}

// indexLocked inserts the entry into the type set and the exact-match
// index. Callers hold d.mu.
func (d *DiscoveryService) indexLocked(id ID, e *cacheEntry) {
	advType := e.adv.AdvType()
	ts := d.byType[advType]
	if ts == nil {
		ts = make(map[ID]*cacheEntry)
		d.byType[advType] = ts
	}
	ts[id] = e
	for attr, value := range e.attrs {
		k := indexKey{advType: advType, attr: attr, value: value}
		set := d.index[k]
		if set == nil {
			set = make(map[ID]*cacheEntry)
			d.index[k] = set
		}
		set[id] = e
	}
}

// unindexLocked removes the entry from the cache, the type set and the
// exact-match index. Callers hold d.mu and bump the generation
// matching the mutation's cause (memberGen for publish/flush, the
// entry's action partition for expiry).
func (d *DiscoveryService) unindexLocked(id ID, e *cacheEntry) {
	delete(d.cache, id)
	advType := e.adv.AdvType()
	if ts := d.byType[advType]; ts != nil {
		delete(ts, id)
		if len(ts) == 0 {
			delete(d.byType, advType)
		}
	}
	for attr, value := range e.attrs {
		k := indexKey{advType: advType, attr: attr, value: value}
		if set := d.index[k]; set != nil {
			delete(set, id)
			if len(set) == 0 {
				delete(d.index, k)
			}
		}
	}
}

// expireLocked evicts an entry whose lifetime passed: only the entry's
// action partition generation moves. Callers hold d.mu.
func (d *DiscoveryService) expireLocked(id ID, e *cacheEntry) {
	d.unindexLocked(id, e)
	d.partGen[ActionPartition(e.adv.AdvType(), e.attrs["action"])]++
	d.stats.Expired++
}

// Flush removes the advertisement with the given ID from the cache and
// the index.
func (d *DiscoveryService) Flush(id ID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if e, ok := d.cache[id]; ok {
		d.unindexLocked(id, e)
		d.memberGen++
		d.stats.Flushed++
	}
}

// FlushExpired drops expired entries and reports how many were
// removed.
func (d *DiscoveryService) FlushExpired() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Sweeps++
	now := d.now()
	removed := 0
	for id, e := range d.cache {
		if e.expires.Before(now) {
			d.expireLocked(id, e)
			removed++
		}
	}
	return removed
}

// Gen returns the cache's aggregate generation: a counter that moves
// on every mutation (publish, flush, expiry). Callers wanting coarse
// "did anything change" validation use it; callers that can afford
// finer invalidation combine MemberGen with PartitionGen instead.
func (d *DiscoveryService) Gen() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	g := d.memberGen
	for _, p := range d.partGen {
		g += p
	}
	return g
}

// MemberGen returns the membership generation: bumped on publish and
// explicit flush, but not on expiry.
func (d *DiscoveryService) MemberGen() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.memberGen
}

// PartitionGen returns the expiry generation of one action partition
// (see ActionPartition). part is taken modulo GenPartitions.
func (d *DiscoveryService) PartitionGen(part uint32) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.partGen[part%GenPartitions]
}

// Stats snapshots the cache counters.
func (d *DiscoveryService) Stats() DiscoveryStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats
	s.Size = len(d.cache)
	s.IndexKeys = len(d.index)
	return s
}

// GetLocalAdvertisements returns live cached advertisements of the
// given type matching the attribute predicate. Empty attr matches
// everything of the type. Results are sorted by advertisement ID for
// determinism.
//
// Exact attribute queries — the hot path of the proxy's
// findPeerGroupAdv — are answered from the (advType, attr, value)
// index in O(results). Wildcard values scan only the type's entries;
// an empty advType scans the whole cache (introspection tooling only).
func (d *DiscoveryService) GetLocalAdvertisements(advType, attr, value string) []Advertisement {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.now()

	collect := func(entries map[ID]*cacheEntry, check func(*cacheEntry) bool) []Advertisement {
		out := make([]Advertisement, 0, len(entries))
		for id, e := range entries {
			if e.expires.Before(now) {
				d.expireLocked(id, e)
				continue
			}
			if check != nil && !check(e) {
				continue
			}
			out = append(out, e.adv)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].AdvID() < out[j].AdvID() })
		return out
	}

	switch {
	case advType == "":
		// Untyped query: full scan (peerctl-style introspection).
		d.stats.Misses++
		return collect(d.cache, func(e *cacheEntry) bool { return matchAttr(e.attrs, attr, value) })
	case attr == "":
		// Type-only query: the type set IS the result set.
		d.stats.Hits++
		return collect(d.byType[advType], nil)
	case hasWildcard(value):
		// Wildcard value: scan the type's entries only.
		d.stats.Misses++
		return collect(d.byType[advType], func(e *cacheEntry) bool { return matchAttr(e.attrs, attr, value) })
	default:
		// Exact query: straight index lookup.
		d.stats.Hits++
		return collect(d.index[indexKey{advType: advType, attr: attr, value: value}], nil)
	}
}

// hasWildcard reports whether the predicate value uses '*' matching.
func hasWildcard(value string) bool {
	return value == "*" || strings.HasPrefix(value, "*") || strings.HasSuffix(value, "*")
}

// matchAttr evaluates the attribute predicate with '*' wildcards at
// either end of the value, against the publish-time attribute cache
// (Advertisement.Attributes builds a fresh map per call; on the
// wildcard scan path that would be one map per entry per query).
func matchAttr(attrs map[string]string, attr, value string) bool {
	if attr == "" {
		return true
	}
	got, ok := attrs[attr]
	if !ok {
		return false
	}
	switch {
	case value == "*":
		return true
	case strings.HasPrefix(value, "*") && strings.HasSuffix(value, "*") && len(value) >= 2:
		return strings.Contains(got, value[1:len(value)-1])
	case strings.HasPrefix(value, "*"):
		return strings.HasSuffix(got, value[1:])
	case strings.HasSuffix(value, "*"):
		return strings.HasPrefix(got, value[:len(value)-1])
	default:
		return got == value
	}
}

// --- remote operations ------------------------------------------------

type discoveryQueryDoc struct {
	XMLName xml.Name `xml:"DiscoveryQuery"`
	Type    string   `xml:"Type"`
	Attr    string   `xml:"Attr,omitempty"`
	Value   string   `xml:"Value,omitempty"`
	Limit   int      `xml:"Limit,omitempty"`
}

type discoveryResponseDoc struct {
	XMLName xml.Name `xml:"DiscoveryResponse"`
	Advs    [][]byte `xml:"Adv"`
}

type discoveryPublishDoc struct {
	XMLName  xml.Name `xml:"DiscoveryPublish"`
	Adv      []byte   `xml:"Adv"`
	Lifetime int64    `xml:"LifetimeMillis"`
}

// RemoteGetAdvertisements queries the target peers' caches and returns
// up to limit unique advertisements (0 = unlimited), waiting for
// responses until every target answered or ctx expires.
func (d *DiscoveryService) RemoteGetAdvertisements(
	ctx context.Context,
	targets []string,
	advType, attr, value string,
	limit int,
) ([]Advertisement, error) {
	if len(targets) == 0 {
		return nil, nil
	}
	q, err := xml.Marshal(discoveryQueryDoc{Type: advType, Attr: attr, Value: value, Limit: limit})
	if err != nil {
		return nil, fmt.Errorf("discovery: marshal query: %w", err)
	}
	ch, err := d.resolver.Propagate(targets, discoveryQueryHandler, q)
	if err != nil {
		return nil, fmt.Errorf("discovery: propagate: %w", err)
	}
	seen := make(map[ID]bool)
	var out []Advertisement
	for answered := 0; answered < len(targets); answered++ {
		select {
		case resp := <-ch:
			if resp.Err != nil {
				continue
			}
			var doc discoveryResponseDoc
			if err := xml.Unmarshal(resp.Payload, &doc); err != nil {
				continue
			}
			for _, raw := range doc.Advs {
				adv, err := ParseAdvertisement(raw)
				if err != nil || seen[adv.AdvID()] {
					continue
				}
				seen[adv.AdvID()] = true
				out = append(out, adv)
				if limit > 0 && len(out) >= limit {
					return out, nil
				}
			}
		case <-ctx.Done():
			if len(out) > 0 {
				return out, nil
			}
			return nil, fmt.Errorf("discovery: remote query: %w", ctx.Err())
		}
	}
	return out, nil
}

// RemotePublish pushes the advertisement into the target peer's cache
// (the JXTA SRDI push to a rendezvous).
func (d *DiscoveryService) RemotePublish(ctx context.Context, target string, adv Advertisement, lifetime time.Duration) error {
	raw, err := adv.MarshalAdv()
	if err != nil {
		return fmt.Errorf("discovery: marshal %s: %w", adv.AdvType(), err)
	}
	if lifetime <= 0 {
		lifetime = DefaultLifetime
	}
	doc, err := xml.Marshal(discoveryPublishDoc{Adv: raw, Lifetime: lifetime.Milliseconds()})
	if err != nil {
		return fmt.Errorf("discovery: marshal publish: %w", err)
	}
	if _, err := d.resolver.Query(ctx, target, discoveryPublishHandler, doc); err != nil {
		return err
	}
	return nil
}

// answerQuery serves a remote discovery query from the local cache.
func (d *DiscoveryService) answerQuery(_ string, payload []byte) ([]byte, error) {
	var q discoveryQueryDoc
	if err := xml.Unmarshal(payload, &q); err != nil {
		return nil, fmt.Errorf("bad discovery query: %w", err)
	}
	advs := d.GetLocalAdvertisements(q.Type, q.Attr, q.Value)
	if q.Limit > 0 && len(advs) > q.Limit {
		advs = advs[:q.Limit]
	}
	resp := discoveryResponseDoc{}
	for _, adv := range advs {
		raw, err := adv.MarshalAdv()
		if err != nil {
			continue
		}
		resp.Advs = append(resp.Advs, raw)
	}
	return xml.Marshal(resp)
}

// acceptPublish stores a remotely pushed advertisement.
func (d *DiscoveryService) acceptPublish(_ string, payload []byte) ([]byte, error) {
	var doc discoveryPublishDoc
	if err := xml.Unmarshal(payload, &doc); err != nil {
		return nil, fmt.Errorf("bad publish: %w", err)
	}
	adv, err := ParseAdvertisement(doc.Adv)
	if err != nil {
		return nil, err
	}
	if err := d.Publish(adv, time.Duration(doc.Lifetime)*time.Millisecond); err != nil {
		return nil, err
	}
	return []byte("ok"), nil
}
