package p2p

import (
	"context"
	"encoding/xml"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// DiscoveryService implements JXTA's discovery protocol: a local
// advertisement cache with expirations, remote publication, and remote
// queries answered from other peers' caches. Queries select by
// advertisement type plus an optional attribute/value predicate, where
// the value may use a leading or trailing '*' wildcard — exactly the
// getLocalAdvertisements(type, attr, value) surface the paper's
// SWS-proxy pseudocode is written against.
type DiscoveryService struct {
	peer     *Peer
	resolver *Resolver

	mu    sync.Mutex
	cache map[ID]*cacheEntry
	now   func() time.Time
}

type cacheEntry struct {
	adv     Advertisement
	raw     []byte
	expires time.Time
}

// Discovery resolver handler names.
const (
	discoveryQueryHandler   = "discovery.query"
	discoveryPublishHandler = "discovery.publish"
)

// NewDiscoveryService attaches a discovery service to the peer. It
// claims the ProtoDiscovery protocol tag so discovery traffic is
// accounted separately from other resolver traffic.
func NewDiscoveryService(peer *Peer) *DiscoveryService {
	EnsureBuiltinAdvTypes()
	d := &DiscoveryService{
		peer:     peer,
		resolver: NewResolverOn(peer, ProtoDiscovery),
		cache:    make(map[ID]*cacheEntry),
		now:      time.Now,
	}
	d.resolver.RegisterHandler(discoveryQueryHandler, d.answerQuery)
	d.resolver.RegisterHandler(discoveryPublishHandler, d.acceptPublish)
	return d
}

// Publish stores the advertisement in the local cache for the given
// lifetime (DefaultLifetime if zero).
func (d *DiscoveryService) Publish(adv Advertisement, lifetime time.Duration) error {
	raw, err := adv.MarshalAdv()
	if err != nil {
		return fmt.Errorf("discovery: marshal %s: %w", adv.AdvType(), err)
	}
	if lifetime <= 0 {
		lifetime = DefaultLifetime
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cache[adv.AdvID()] = &cacheEntry{adv: adv, raw: raw, expires: d.now().Add(lifetime)}
	return nil
}

// Flush removes the advertisement with the given ID from the cache.
func (d *DiscoveryService) Flush(id ID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.cache, id)
}

// FlushExpired drops expired entries and reports how many were
// removed.
func (d *DiscoveryService) FlushExpired() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.now()
	removed := 0
	for id, e := range d.cache {
		if e.expires.Before(now) {
			delete(d.cache, id)
			removed++
		}
	}
	return removed
}

// GetLocalAdvertisements returns live cached advertisements of the
// given type matching the attribute predicate. Empty attr matches
// everything of the type. Results are sorted by advertisement ID for
// determinism.
func (d *DiscoveryService) GetLocalAdvertisements(advType, attr, value string) []Advertisement {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.now()
	var out []Advertisement
	for id, e := range d.cache {
		if e.expires.Before(now) {
			delete(d.cache, id)
			continue
		}
		if advType != "" && e.adv.AdvType() != advType {
			continue
		}
		if !matchAttr(e.adv, attr, value) {
			continue
		}
		out = append(out, e.adv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AdvID() < out[j].AdvID() })
	return out
}

// matchAttr evaluates the attribute predicate with '*' wildcards at
// either end of the value.
func matchAttr(adv Advertisement, attr, value string) bool {
	if attr == "" {
		return true
	}
	got, ok := adv.Attributes()[attr]
	if !ok {
		return false
	}
	switch {
	case value == "*":
		return true
	case strings.HasPrefix(value, "*") && strings.HasSuffix(value, "*") && len(value) >= 2:
		return strings.Contains(got, value[1:len(value)-1])
	case strings.HasPrefix(value, "*"):
		return strings.HasSuffix(got, value[1:])
	case strings.HasSuffix(value, "*"):
		return strings.HasPrefix(got, value[:len(value)-1])
	default:
		return got == value
	}
}

// --- remote operations ------------------------------------------------

type discoveryQueryDoc struct {
	XMLName xml.Name `xml:"DiscoveryQuery"`
	Type    string   `xml:"Type"`
	Attr    string   `xml:"Attr,omitempty"`
	Value   string   `xml:"Value,omitempty"`
	Limit   int      `xml:"Limit,omitempty"`
}

type discoveryResponseDoc struct {
	XMLName xml.Name `xml:"DiscoveryResponse"`
	Advs    [][]byte `xml:"Adv"`
}

type discoveryPublishDoc struct {
	XMLName  xml.Name `xml:"DiscoveryPublish"`
	Adv      []byte   `xml:"Adv"`
	Lifetime int64    `xml:"LifetimeMillis"`
}

// RemoteGetAdvertisements queries the target peers' caches and returns
// up to limit unique advertisements (0 = unlimited), waiting for
// responses until every target answered or ctx expires.
func (d *DiscoveryService) RemoteGetAdvertisements(
	ctx context.Context,
	targets []string,
	advType, attr, value string,
	limit int,
) ([]Advertisement, error) {
	if len(targets) == 0 {
		return nil, nil
	}
	q, err := xml.Marshal(discoveryQueryDoc{Type: advType, Attr: attr, Value: value, Limit: limit})
	if err != nil {
		return nil, fmt.Errorf("discovery: marshal query: %w", err)
	}
	ch, err := d.resolver.Propagate(targets, discoveryQueryHandler, q)
	if err != nil {
		return nil, fmt.Errorf("discovery: propagate: %w", err)
	}
	seen := make(map[ID]bool)
	var out []Advertisement
	for answered := 0; answered < len(targets); answered++ {
		select {
		case resp := <-ch:
			if resp.Err != nil {
				continue
			}
			var doc discoveryResponseDoc
			if err := xml.Unmarshal(resp.Payload, &doc); err != nil {
				continue
			}
			for _, raw := range doc.Advs {
				adv, err := ParseAdvertisement(raw)
				if err != nil || seen[adv.AdvID()] {
					continue
				}
				seen[adv.AdvID()] = true
				out = append(out, adv)
				if limit > 0 && len(out) >= limit {
					return out, nil
				}
			}
		case <-ctx.Done():
			if len(out) > 0 {
				return out, nil
			}
			return nil, fmt.Errorf("discovery: remote query: %w", ctx.Err())
		}
	}
	return out, nil
}

// RemotePublish pushes the advertisement into the target peer's cache
// (the JXTA SRDI push to a rendezvous).
func (d *DiscoveryService) RemotePublish(ctx context.Context, target string, adv Advertisement, lifetime time.Duration) error {
	raw, err := adv.MarshalAdv()
	if err != nil {
		return fmt.Errorf("discovery: marshal %s: %w", adv.AdvType(), err)
	}
	if lifetime <= 0 {
		lifetime = DefaultLifetime
	}
	doc, err := xml.Marshal(discoveryPublishDoc{Adv: raw, Lifetime: lifetime.Milliseconds()})
	if err != nil {
		return fmt.Errorf("discovery: marshal publish: %w", err)
	}
	if _, err := d.resolver.Query(ctx, target, discoveryPublishHandler, doc); err != nil {
		return err
	}
	return nil
}

// answerQuery serves a remote discovery query from the local cache.
func (d *DiscoveryService) answerQuery(_ string, payload []byte) ([]byte, error) {
	var q discoveryQueryDoc
	if err := xml.Unmarshal(payload, &q); err != nil {
		return nil, fmt.Errorf("bad discovery query: %w", err)
	}
	advs := d.GetLocalAdvertisements(q.Type, q.Attr, q.Value)
	if q.Limit > 0 && len(advs) > q.Limit {
		advs = advs[:q.Limit]
	}
	resp := discoveryResponseDoc{}
	for _, adv := range advs {
		raw, err := adv.MarshalAdv()
		if err != nil {
			continue
		}
		resp.Advs = append(resp.Advs, raw)
	}
	return xml.Marshal(resp)
}

// acceptPublish stores a remotely pushed advertisement.
func (d *DiscoveryService) acceptPublish(_ string, payload []byte) ([]byte, error) {
	var doc discoveryPublishDoc
	if err := xml.Unmarshal(payload, &doc); err != nil {
		return nil, fmt.Errorf("bad publish: %w", err)
	}
	adv, err := ParseAdvertisement(doc.Adv)
	if err != nil {
		return nil, err
	}
	if err := d.Publish(adv, time.Duration(doc.Lifetime)*time.Millisecond); err != nil {
		return nil, err
	}
	return []byte("ok"), nil
}
