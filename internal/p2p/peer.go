package p2p

import (
	"fmt"
	"sync"

	"whisper/internal/simnet"
	"whisper/internal/trace"
)

// Protocol tags used on the wire. The network's traffic accounting is
// keyed on these, which is what makes Figure 4's per-protocol
// breakdown possible.
const (
	ProtoResolver  = "resolver"
	ProtoDiscovery = "discovery"
	ProtoPipe      = "pipe"
	ProtoHeartbeat = "heartbeat"
	ProtoElection  = "election"
	ProtoRdv       = "rendezvous"
	ProtoGossip    = "gossip"
)

// Handler processes an inbound message for one protocol.
type Handler func(msg simnet.Message)

// Peer is a node in the overlay: it owns a transport, runs the receive
// loop and dispatches inbound messages to protocol handlers. All
// higher-level services (resolver, discovery, pipes, election,
// heartbeat) attach to a Peer.
type Peer struct {
	id   ID
	name string
	tr   simnet.Transport

	mu       sync.RWMutex
	handlers map[string]Handler
	tracer   *trace.Tracer
	started  bool
	closed   bool

	done chan struct{}
}

// NewPeer creates a peer over the given transport. Call Start after
// attaching protocol handlers.
func NewPeer(name string, id ID, tr simnet.Transport) *Peer {
	return &Peer{
		id:       id,
		name:     name,
		tr:       tr,
		handlers: make(map[string]Handler),
		done:     make(chan struct{}),
	}
}

// ID returns the peer's identifier.
func (p *Peer) ID() ID { return p.id }

// Name returns the peer's human-readable name.
func (p *Peer) Name() string { return p.name }

// Addr returns the transport address.
func (p *Peer) Addr() string { return p.tr.Addr() }

// Advertisement returns this peer's own peer advertisement.
func (p *Peer) Advertisement() *PeerAdvertisement {
	return &PeerAdvertisement{PID: p.id, Name: p.name, Addr: p.Addr()}
}

// SetTracer attaches a tracer to the node; services attached to the
// peer (pipes, resolver, election) pick it up to record spans. A nil
// tracer (the default) disables span recording.
func (p *Peer) SetTracer(t *trace.Tracer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tracer = t
}

// Tracer returns the node's tracer (nil when tracing is off; a nil
// *trace.Tracer is itself safe to use).
func (p *Peer) Tracer() *trace.Tracer {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.tracer
}

// Handle registers the handler for a protocol tag. Handlers must be
// registered before Start; registering after Start is allowed but
// racy deliveries to the old handler may occur.
func (p *Peer) Handle(proto string, h Handler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.handlers[proto] = h
}

// Start launches the receive loop. It is idempotent.
func (p *Peer) Start() {
	p.mu.Lock()
	if p.started || p.closed {
		p.mu.Unlock()
		return
	}
	p.started = true
	p.mu.Unlock()
	go p.recvLoop()
}

// recvLoop dispatches every inbound message on its own goroutine, so a
// handler that itself performs a blocking query (the rendezvous relay
// path, for example) can never deadlock the receive loop. Close waits
// for all in-flight handlers via the wait group.
func (p *Peer) recvLoop() {
	defer close(p.done)
	var wg sync.WaitGroup
	for msg := range p.tr.Recv() {
		p.mu.RLock()
		h := p.handlers[msg.Proto]
		p.mu.RUnlock()
		if h == nil {
			continue
		}
		wg.Add(1)
		go func(m simnet.Message) {
			defer wg.Done()
			h(m)
		}(msg)
	}
	wg.Wait()
}

// Done returns a channel that is closed once the peer has shut down
// (the receive loop has drained after Close). Long-running maintenance
// goroutines owned by services attached to the peer — the discovery
// cache janitor, for example — select on it to stop with the peer.
func (p *Peer) Done() <-chan struct{} { return p.done }

// Send transmits a message to the given transport address.
func (p *Peer) Send(to string, msg simnet.Message) error {
	if err := p.tr.Send(to, msg); err != nil {
		return fmt.Errorf("peer %s: %w", p.name, err)
	}
	return nil
}

// Close shuts down the transport and waits for the receive loop to
// drain. Safe to call more than once.
func (p *Peer) Close() error {
	p.mu.Lock()
	if p.closed {
		started := p.started
		p.mu.Unlock()
		if started {
			<-p.done
		}
		return nil
	}
	p.closed = true
	started := p.started
	p.mu.Unlock()
	err := p.tr.Close()
	if started {
		<-p.done
	} else {
		close(p.done)
	}
	return err
}
