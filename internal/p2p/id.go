// Package p2p implements a JXTA-like peer-to-peer overlay: peers with
// protocol dispatch, XML advertisements with an extensible type
// registry, a resolver (query/response), a discovery service with a
// local advertisement cache and remote queries, rendezvous indexing,
// unicast and propagate pipes, and a heartbeat failure detector.
//
// The paper deploys Whisper on JXTA 2.3; this package reproduces the
// protocol surface Whisper uses (discovery, advertisements, pipes,
// peer groups) over the simnet.Transport abstraction, so the overlay
// runs identically on the simulated LAN and on real TCP.
package p2p

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strconv"
	"sync"
)

// ID is a JXTA-style URN identifying a peer, group or pipe.
type ID string

// String returns the URN form.
func (id ID) String() string { return string(id) }

// IDKind enumerates the resource kinds that carry IDs.
type IDKind int

// Resource kinds.
const (
	PeerIDKind IDKind = iota + 1
	GroupIDKind
	PipeIDKind
)

func (k IDKind) prefix() string {
	switch k {
	case PeerIDKind:
		return "urn:jxta:peer"
	case GroupIDKind:
		return "urn:jxta:group"
	case PipeIDKind:
		return "urn:jxta:pipe"
	default:
		return "urn:jxta:id"
	}
}

// IDGen mints unique IDs. With a zero seed it uses crypto/rand; with a
// non-zero seed it is deterministic (useful in tests and benchmarks).
type IDGen struct {
	mu      sync.Mutex
	seed    int64
	counter int64
}

// NewIDGen returns a generator. seed==0 selects random IDs.
func NewIDGen(seed int64) *IDGen { return &IDGen{seed: seed} }

// New mints an ID of the given kind.
func (g *IDGen) New(kind IDKind) ID {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.counter++
	if g.seed != 0 {
		return ID(fmt.Sprintf("%s-uuid-%016x%016x", kind.prefix(), uint64(g.seed), uint64(g.counter)))
	}
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to
		// the counter so IDs stay unique within the process.
		return ID(kind.prefix() + "-uuid-fallback" + strconv.FormatInt(g.counter, 16))
	}
	return ID(kind.prefix() + "-uuid-" + hex.EncodeToString(buf[:]))
}
