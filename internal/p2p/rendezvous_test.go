package p2p

import (
	"context"
	"testing"
	"time"
)

func TestRendezvousJoinMembers(t *testing.T) {
	h := newHarness(t, 3)
	rdvPeer := h.peers[0]
	rdv := NewRendezvousService(rdvPeer, time.Hour)
	c1 := NewRendezvousClient(h.peers[1], rdvPeer.Addr())
	c2 := NewRendezvousClient(h.peers[2], rdvPeer.Addr())
	for _, p := range h.peers {
		p.Start()
	}
	gid := ID("urn:jxta:group-students")

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := c1.Join(ctx, gid, h.peers[1].Advertisement()); err != nil {
		t.Fatalf("join 1: %v", err)
	}
	if err := c2.Join(ctx, gid, h.peers[2].Advertisement()); err != nil {
		t.Fatalf("join 2: %v", err)
	}
	if n := rdv.MemberCount(gid); n != 2 {
		t.Errorf("member count = %d, want 2", n)
	}

	members, err := c1.Members(ctx, gid)
	if err != nil {
		t.Fatalf("members: %v", err)
	}
	if len(members) != 2 {
		t.Fatalf("members = %d, want 2", len(members))
	}
	addrs := map[string]bool{}
	for _, m := range members {
		addrs[m.Addr] = true
	}
	if !addrs[h.peers[1].Addr()] || !addrs[h.peers[2].Addr()] {
		t.Errorf("member addrs = %v", addrs)
	}
}

func TestRendezvousLeave(t *testing.T) {
	h := newHarness(t, 2)
	rdv := NewRendezvousService(h.peers[0], time.Hour)
	c := NewRendezvousClient(h.peers[1], h.peers[0].Addr())
	for _, p := range h.peers {
		p.Start()
	}
	gid := ID("urn:g")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := c.Join(ctx, gid, h.peers[1].Advertisement()); err != nil {
		t.Fatalf("join: %v", err)
	}
	if err := c.Leave(ctx, gid, h.peers[1].ID()); err != nil {
		t.Fatalf("leave: %v", err)
	}
	if n := rdv.MemberCount(gid); n != 0 {
		t.Errorf("member count after leave = %d, want 0", n)
	}
}

func TestRendezvousLeaseExpiry(t *testing.T) {
	h := newHarness(t, 2)
	rdv := NewRendezvousService(h.peers[0], 50*time.Millisecond)
	now := time.Now()
	rdv.now = func() time.Time { return now }
	c := NewRendezvousClient(h.peers[1], h.peers[0].Addr())
	for _, p := range h.peers {
		p.Start()
	}
	gid := ID("urn:g")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := c.Join(ctx, gid, h.peers[1].Advertisement()); err != nil {
		t.Fatalf("join: %v", err)
	}
	if n := rdv.MemberCount(gid); n != 1 {
		t.Fatalf("member count = %d, want 1", n)
	}
	now = now.Add(time.Second) // lease expired
	if n := rdv.MemberCount(gid); n != 0 {
		t.Errorf("member count after lease expiry = %d, want 0", n)
	}
	// Rejoin renews.
	if err := c.Join(ctx, gid, h.peers[1].Advertisement()); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if n := rdv.MemberCount(gid); n != 1 {
		t.Errorf("member count after rejoin = %d, want 1", n)
	}
}

func TestRendezvousMembersOfUnknownGroup(t *testing.T) {
	h := newHarness(t, 2)
	NewRendezvousService(h.peers[0], time.Hour)
	c := NewRendezvousClient(h.peers[1], h.peers[0].Addr())
	for _, p := range h.peers {
		p.Start()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	members, err := c.Members(ctx, "urn:nope")
	if err != nil {
		t.Fatalf("members: %v", err)
	}
	if len(members) != 0 {
		t.Errorf("members = %d, want 0", len(members))
	}
}
