package p2p

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"whisper/internal/simnet"
)

// testHarness wires N peers on a zero-latency simulated network.
type testHarness struct {
	net   *simnet.Network
	gen   *IDGen
	peers []*Peer
}

func newHarness(t *testing.T, n int) *testHarness {
	t.Helper()
	h := &testHarness{
		net: simnet.NewNetwork(simnet.WithLatency(simnet.ZeroLatency()), simnet.WithSeed(1)),
		gen: NewIDGen(1),
	}
	t.Cleanup(func() { _ = h.net.Close() })
	for i := 0; i < n; i++ {
		h.peers = append(h.peers, h.addPeer(t, string(rune('a'+i))))
	}
	return h
}

func (h *testHarness) addPeer(t *testing.T, name string) *Peer {
	t.Helper()
	port, err := h.net.NewPort(name)
	if err != nil {
		t.Fatalf("port %s: %v", name, err)
	}
	p := NewPeer(name, h.gen.New(PeerIDKind), port)
	t.Cleanup(func() { _ = p.Close() })
	return p
}

func TestPeerDispatch(t *testing.T) {
	h := newHarness(t, 2)
	a, b := h.peers[0], h.peers[1]

	got := make(chan simnet.Message, 1)
	b.Handle("custom", func(m simnet.Message) { got <- m })
	a.Start()
	b.Start()

	if err := a.Send(b.Addr(), simnet.Message{Proto: "custom", Kind: "x", Payload: []byte("hi")}); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case m := <-got:
		if string(m.Payload) != "hi" {
			t.Errorf("payload = %q", m.Payload)
		}
	case <-time.After(time.Second):
		t.Fatal("handler not invoked")
	}
}

func TestPeerIgnoresUnknownProto(t *testing.T) {
	h := newHarness(t, 2)
	a, b := h.peers[0], h.peers[1]
	var count atomic.Int64
	b.Handle("known", func(simnet.Message) { count.Add(1) })
	a.Start()
	b.Start()
	_ = a.Send(b.Addr(), simnet.Message{Proto: "unknown"})
	_ = a.Send(b.Addr(), simnet.Message{Proto: "known"})
	deadline := time.Now().Add(time.Second)
	for count.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if count.Load() != 1 {
		t.Errorf("handler invocations = %d, want 1", count.Load())
	}
}

func TestPeerAdvertisement(t *testing.T) {
	h := newHarness(t, 1)
	adv := h.peers[0].Advertisement()
	if adv.Addr != h.peers[0].Addr() || adv.PID != h.peers[0].ID() || adv.Name != h.peers[0].Name() {
		t.Errorf("advertisement mismatch: %+v", adv)
	}
}

func TestPeerCloseBeforeStart(t *testing.T) {
	h := newHarness(t, 1)
	if err := h.peers[0].Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := h.peers[0].Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestResolverQueryResponse(t *testing.T) {
	h := newHarness(t, 2)
	a, b := h.peers[0], h.peers[1]
	ra := NewResolver(a)
	rb := NewResolver(b)
	rb.RegisterHandler("echo", func(from string, payload []byte) ([]byte, error) {
		return append([]byte("echo:"), payload...), nil
	})
	a.Start()
	b.Start()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := ra.Query(ctx, b.Addr(), "echo", []byte("ping"))
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if string(resp) != "echo:ping" {
		t.Errorf("resp = %q", resp)
	}
}

func TestResolverHandlerError(t *testing.T) {
	h := newHarness(t, 2)
	a, b := h.peers[0], h.peers[1]
	ra := NewResolver(a)
	rb := NewResolver(b)
	rb.RegisterHandler("boom", func(string, []byte) ([]byte, error) {
		return nil, context.DeadlineExceeded
	})
	a.Start()
	b.Start()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := ra.Query(ctx, b.Addr(), "boom", nil); err == nil {
		t.Error("expected handler error to surface")
	}
}

func TestResolverNoSuchHandler(t *testing.T) {
	h := newHarness(t, 2)
	a, b := h.peers[0], h.peers[1]
	ra := NewResolver(a)
	NewResolver(b) // resolver attached but no handler registered
	a.Start()
	b.Start()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := ra.Query(ctx, b.Addr(), "missing", nil); err == nil {
		t.Error("expected error for missing handler")
	}
}

func TestResolverQueryTimeout(t *testing.T) {
	h := newHarness(t, 2)
	a, b := h.peers[0], h.peers[1]
	ra := NewResolver(a)
	// b never starts, so the query is never answered.
	_ = b
	a.Start()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := ra.Query(ctx, b.Addr(), "echo", nil); err == nil {
		t.Error("expected timeout")
	}
}

func TestResolverPropagateCollectsAll(t *testing.T) {
	h := newHarness(t, 4)
	querier := h.peers[0]
	rq := NewResolver(querier)
	var targets []string
	for _, p := range h.peers[1:] {
		r := NewResolver(p)
		name := p.Name()
		r.RegisterHandler("who", func(string, []byte) ([]byte, error) {
			return []byte(name), nil
		})
		targets = append(targets, p.Addr())
	}
	for _, p := range h.peers {
		p.Start()
	}

	ch, err := rq.Propagate(targets, "who", nil)
	if err != nil {
		t.Fatalf("propagate: %v", err)
	}
	got := map[string]bool{}
	timeout := time.After(2 * time.Second)
	for i := 0; i < len(targets); i++ {
		select {
		case resp := <-ch:
			if resp.Err != nil {
				t.Fatalf("response error: %v", resp.Err)
			}
			got[string(resp.Payload)] = true
		case <-timeout:
			t.Fatalf("collected %d/%d responses", len(got), len(targets))
		}
	}
	if len(got) != 3 {
		t.Errorf("unique responders = %d, want 3", len(got))
	}
}
