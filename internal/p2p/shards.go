package p2p

import (
	"sync"

	"whisper/internal/gossip"
)

// DefaultShardReplicas is how many shards own each (advType, attr,
// value) triple when the caller does not say otherwise: the owner plus
// one replica keeps exact-match queries available through a single
// shard crash without scatter-gathering the whole fleet.
const DefaultShardReplicas = 2

// ShardRouter maps discovery index triples onto the shard fleet via a
// consistent-hash ring. It is the read-side counterpart of the gossip
// replication: gossip makes every shard eventually hold every
// advertisement, while the router decides which shard is the freshest
// authority for a given triple — publishes land on the owner first, so
// exact-match queries routed to the owners see new advertisements
// before the epidemic has finished spreading them.
//
// Update swaps in a new ring atomically; concurrent readers keep the
// ring they resolved, so routing during a membership change is always
// against a consistent (old or new) view, never a torn one.
type ShardRouter struct {
	replicas int

	mu   sync.RWMutex
	ring *gossip.Ring
}

// NewShardRouter builds a router over the shard addresses. replicas <=
// 0 selects DefaultShardReplicas.
func NewShardRouter(addrs []string, replicas int) *ShardRouter {
	if replicas <= 0 {
		replicas = DefaultShardReplicas
	}
	return &ShardRouter{
		replicas: replicas,
		ring:     gossip.NewRing(addrs, gossip.DefaultVnodes),
	}
}

// Update rebuilds the ring over the new membership. Deterministic:
// every router fed the same membership computes the same ownership.
func (r *ShardRouter) Update(addrs []string) {
	ring := gossip.NewRing(addrs, gossip.DefaultVnodes)
	r.mu.Lock()
	r.ring = ring
	r.mu.Unlock()
}

// Replicas returns the configured replica count.
func (r *ShardRouter) Replicas() int { return r.replicas }

func (r *ShardRouter) current() *gossip.Ring {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring
}

// Owner returns the shard owning the triple ("" when the fleet is
// empty).
func (r *ShardRouter) Owner(advType, attr, value string) string {
	return r.current().Owner(advType, attr, value)
}

// AppendOwners appends the triple's replica set (owner first) onto dst
// and returns the extended slice.
func (r *ShardRouter) AppendOwners(dst []string, advType, attr, value string) []string {
	return r.current().AppendOwners(dst, advType, attr, value, r.replicas)
}

// All returns the full shard membership (sorted), for scatter-gather
// wildcard queries. Callers must not mutate the slice.
func (r *ShardRouter) All() []string {
	return r.current().Members()
}
