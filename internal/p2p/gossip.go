package p2p

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"time"

	"whisper/internal/gossip"
	"whisper/internal/simnet"
)

// GossipService runs one shard's side of the epidemic advertisement
// dissemination: a gossip.Engine replicating the advertisement set
// across the shard fleet, served over the resolver on ProtoGossip so
// every rumor, digest and delta frame is accounted in the network's
// per-protocol traffic breakdown.
//
// The service mirrors the replicated store into the shard's local
// DiscoveryService: a live entry becomes a published advertisement
// whose lifetime is the remaining time to the entry's absolute expiry;
// a death (tombstone, expiry, GC) flushes it. Queries then hit the
// ordinary discovery index, so the proxy's findPeerGroupAdv path is
// unchanged — only the routing above it knows about shards.
type GossipService struct {
	peer     *Peer
	resolver *Resolver
	disco    *DiscoveryService
	engine   *gossip.Engine
	clock    simnet.Clock
}

// Gossip resolver handler names.
const (
	gossipPushHandler    = "gossip.push"
	gossipSyncHandler    = "gossip.sync"
	gossipDeltaHandler   = "gossip.delta"
	gossipPublishHandler = "gossip.publish"
	gossipStatsHandler   = "gossip.stats"
)

// GossipConfig tunes a GossipService.
type GossipConfig struct {
	// Disco receives the mirrored advertisement set; required.
	Disco *DiscoveryService
	// Clock supplies time; nil selects the wall clock.
	Clock simnet.Clock
	// Seed makes the engine's peer selection and jitter deterministic.
	Seed int64
	// Interval / ReconcileInterval / Fanout tune the engine (zero
	// values select the engine defaults).
	Interval          time.Duration
	ReconcileInterval time.Duration
	Fanout            int
	// TombstoneTTL bounds how long tombstones are retained (zero
	// selects gossip.DefaultTombstoneTTL).
	TombstoneTTL time.Duration
}

// NewGossipService attaches a gossip service to the peer. Call Run to
// start the engine's rounds and SetPeers on membership changes.
func NewGossipService(peer *Peer, cfg GossipConfig) (*GossipService, error) {
	if cfg.Disco == nil {
		return nil, fmt.Errorf("gossip service: config requires a DiscoveryService")
	}
	clock := cfg.Clock
	if clock == nil {
		clock = simnet.WallClock{}
	}
	g := &GossipService{
		peer:     peer,
		resolver: NewResolverOn(peer, ProtoGossip),
		disco:    cfg.Disco,
		clock:    clock,
	}
	store := gossip.NewStore(clock, cfg.TombstoneTTL)
	store.OnApply(g.mirror)
	engine, err := gossip.NewEngine(gossip.Config{
		Self:              peer.Addr(),
		Transport:         resolverTransport{res: g.resolver},
		Store:             store,
		Clock:             clock,
		Seed:              cfg.Seed,
		Interval:          cfg.Interval,
		ReconcileInterval: cfg.ReconcileInterval,
		Fanout:            cfg.Fanout,
	})
	if err != nil {
		return nil, err
	}
	g.engine = engine
	g.resolver.RegisterHandler(gossipPushHandler, g.servePush)
	g.resolver.RegisterHandler(gossipSyncHandler, g.serveSync)
	g.resolver.RegisterHandler(gossipDeltaHandler, g.serveDelta)
	g.resolver.RegisterHandler(gossipPublishHandler, g.servePublish)
	g.resolver.RegisterHandler(gossipStatsHandler, g.serveStats)
	return g, nil
}

// mirror projects store state changes into the local discovery cache.
// Called with the store lock held (see Store.OnApply): it must not call
// back into the store, and the discovery service never does.
func (g *GossipService) mirror(e gossip.Entry, live bool) {
	id := ID(e.Key)
	if !live {
		g.disco.Flush(id)
		return
	}
	adv, err := ParseAdvertisement(e.Payload)
	if err != nil {
		return
	}
	lifetime := time.Duration(e.Expire - g.clock.Now().UnixNano())
	if lifetime <= 0 {
		return
	}
	_ = g.disco.Publish(adv, lifetime)
}

// Engine returns the underlying gossip engine.
func (g *GossipService) Engine() *gossip.Engine { return g.engine }

// Run starts the engine's rumor and reconciliation rounds.
func (g *GossipService) Run() { g.engine.Run() }

// Stop halts the engine.
func (g *GossipService) Stop() { g.engine.Stop() }

// SetPeers replaces the gossip peer set (the shard fleet's addresses;
// self is filtered by the engine).
func (g *GossipService) SetPeers(addrs []string) { g.engine.SetPeers(addrs) }

// Learn merges a locally originated entry (the publish path on the
// owning shard calls this directly).
func (g *GossipService) Learn(e gossip.Entry) gossip.ApplyResult { return g.engine.Learn(e) }

// servePush / serveSync / serveDelta adapt the engine's frame handlers
// onto resolver queries.
func (g *GossipService) servePush(_ string, payload []byte) ([]byte, error) {
	return g.engine.HandlePush(payload)
}

func (g *GossipService) serveSync(_ string, payload []byte) ([]byte, error) {
	return g.engine.HandleSync(payload)
}

func (g *GossipService) serveDelta(_ string, payload []byte) ([]byte, error) {
	return g.engine.HandleDelta(payload)
}

// servePublish accepts one wire-encoded entry from a publishing client
// (a back-end peer's lease refresh, or its graceful-leave tombstone).
func (g *GossipService) servePublish(_ string, payload []byte) ([]byte, error) {
	e, _, err := gossip.DecodeEntry(payload)
	if err != nil {
		return nil, fmt.Errorf("gossip: bad publish frame: %w", err)
	}
	res := g.engine.Learn(e)
	if res.Applied {
		return []byte("applied"), nil
	}
	return []byte("stale"), nil
}

// serveStats renders engine and store counters as sorted key=value
// lines (peerctl's gossip command prints them verbatim).
func (g *GossipService) serveStats(_ string, _ []byte) ([]byte, error) {
	es := g.engine.Stats()
	ss := g.engine.Store().Stats()
	kv := map[string]uint64{
		"rounds":         es.Rounds,
		"reconciles":     es.Reconciles,
		"queue_depth":    uint64(es.QueueDepth),
		"rumors_queued":  es.RumorsQueued,
		"rumors_retired": es.RumorsRetired,
		"pushes_sent":    es.PushesSent,
		"push_failures":  es.PushFailures,
		"entries_pushed": es.EntriesPushed,
		"delta_sent":     es.DeltaSent,
		"delta_recv":     es.DeltaRecv,
		"peers":          uint64(es.Peers),
		"entries":        uint64(ss.Entries),
		"live":           uint64(ss.Live),
		"origins":        uint64(ss.Origins),
		"applied":        uint64(ss.Applied),
		"rejected":       uint64(ss.Rejected),
		"expired":        ss.Expired,
		"collected":      ss.Collected,
		"checksum":       ss.Checksum,
	}
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []byte
	for _, k := range keys {
		out = append(out, k...)
		out = append(out, '=')
		out = strconv.AppendUint(out, kv[k], 10)
		out = append(out, '\n')
	}
	return out, nil
}

// resolverTransport carries gossip exchanges as resolver queries on
// ProtoGossip.
type resolverTransport struct{ res *Resolver }

func (t resolverTransport) Exchange(ctx context.Context, to, kind string, payload []byte) ([]byte, error) {
	return t.res.Query(ctx, to, "gossip."+kind, payload)
}

// GossipClient is the publish-side client used by peers that are not
// themselves shards: back-end peers push their semantic advertisement
// (and, on graceful leave, its tombstone) to the owning shard, and
// peerctl fetches shard stats.
type GossipClient struct {
	res *Resolver
}

// NewGossipClient attaches a gossip client to the peer. The peer must
// not also run a GossipService (both claim ProtoGossip).
func NewGossipClient(peer *Peer) *GossipClient {
	return &GossipClient{res: NewResolverOn(peer, ProtoGossip)}
}

// Publish pushes one entry to a shard. The returned bool is true when
// the shard applied it (false means the shard already held a newer
// version — a stale publisher should re-mint and retry).
func (c *GossipClient) Publish(ctx context.Context, shard string, e gossip.Entry) (bool, error) {
	frame := gossip.AppendEntry(nil, &e)
	reply, err := c.res.Query(ctx, shard, gossipPublishHandler, frame)
	if err != nil {
		return false, err
	}
	return string(reply) == "applied", nil
}

// Stats fetches a shard's gossip counters as key=value lines.
func (c *GossipClient) Stats(ctx context.Context, shard string) (string, error) {
	reply, err := c.res.Query(ctx, shard, gossipStatsHandler, nil)
	if err != nil {
		return "", err
	}
	return string(reply), nil
}
