package p2p

import (
	"context"
	"fmt"

	"whisper/internal/trace"
)

// ProtoTrace tags trace-dump query traffic.
const ProtoTrace = "tracing"

// traceDumpHandler answers with the serving node's recent spans.
const traceDumpHandler = "trace.dump"

// ServeTraces exposes the collector's retained spans over a resolver
// on ProtoTrace, so tooling (peerctl trace) can dump recent traces
// from a running node. Returns the resolver for symmetry with other
// services; callers normally ignore it.
func ServeTraces(peer *Peer, col *trace.Collector) *Resolver {
	r := NewResolverOn(peer, ProtoTrace)
	r.RegisterHandler(traceDumpHandler, func(string, []byte) ([]byte, error) {
		data, err := col.ExportJSON()
		if err != nil {
			return nil, fmt.Errorf("trace: export: %w", err)
		}
		return data, nil
	})
	return r
}

// NewTraceClient attaches a resolver suitable for QueryTraces to the
// peer.
func NewTraceClient(peer *Peer) *Resolver { return NewResolverOn(peer, ProtoTrace) }

// QueryTraces fetches the recent spans retained by the node at addr
// (which must be serving them via ServeTraces).
func QueryTraces(ctx context.Context, r *Resolver, addr string) ([]trace.SpanRecord, error) {
	data, err := r.Query(ctx, addr, traceDumpHandler, nil)
	if err != nil {
		return nil, err
	}
	recs, err := trace.ImportJSON(data)
	if err != nil {
		return nil, fmt.Errorf("trace: decode dump from %s: %w", addr, err)
	}
	return recs, nil
}
