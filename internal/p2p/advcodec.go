package p2p

import (
	"bytes"
	"encoding/xml"
	"io"
)

// marshalAdv serializes an advertisement struct with an XML header.
func marshalAdv(v any) ([]byte, error) {
	body, err := xml.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(xml.Header)+len(body)+1)
	out = append(out, xml.Header...)
	out = append(out, body...)
	out = append(out, '\n')
	return out, nil
}

// unmarshalAdv parses XML into the advertisement struct.
func unmarshalAdv(data []byte, v any) error {
	return xml.Unmarshal(data, v)
}

func bytesReader(data []byte) io.Reader { return bytes.NewReader(data) }
