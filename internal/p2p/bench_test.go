package p2p

import (
	"context"
	"fmt"
	"testing"
	"time"

	"whisper/internal/simnet"
)

func BenchmarkAdvertisementRoundTrip(b *testing.B) {
	EnsureBuiltinAdvTypes()
	adv := &ServiceAdvertisement{
		SvcID:     "urn:jxta:id-bench",
		Name:      "StudentManagement",
		Operation: "StudentInformation",
		PipeID:    "urn:jxta:pipe-bench",
		Addr:      "host:1234",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := adv.MarshalAdv()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ParseAdvertisement(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDiscovery builds a discovery cache holding n service
// advertisements.
func benchDiscovery(b *testing.B, n int) *DiscoveryService {
	b.Helper()
	net := simnet.NewNetwork(simnet.WithLatency(simnet.ZeroLatency()))
	b.Cleanup(func() { _ = net.Close() })
	port, err := net.NewPort("d")
	if err != nil {
		b.Fatal(err)
	}
	peer := NewPeer("d", "urn:p", port)
	b.Cleanup(func() { _ = peer.Close() })
	d := NewDiscoveryService(peer)
	for i := 0; i < n; i++ {
		_ = d.Publish(&ServiceAdvertisement{
			SvcID: ID(fmt.Sprintf("urn:svc-%d", i)),
			Name:  fmt.Sprintf("Service%d", i),
		}, time.Hour)
	}
	return d
}

// BenchmarkDiscoveryLocalQuery is the proxy's discovery hot path: an
// exact attribute query against a 1k-advertisement cache, answered
// from the (advType, attr, value) index without scanning.
func BenchmarkDiscoveryLocalQuery(b *testing.B) {
	d := benchDiscovery(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := d.GetLocalAdvertisements(ServiceAdvType, "Name", "Service42"); len(got) != 1 {
			b.Fatalf("got %d", len(got))
		}
	}
}

// BenchmarkDiscoveryLocalQueryWildcard is the fallback scan path:
// wildcard values cannot use the exact index and scan the type's
// entries.
func BenchmarkDiscoveryLocalQueryWildcard(b *testing.B) {
	d := benchDiscovery(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := d.GetLocalAdvertisements(ServiceAdvType, "Name", "Service42*"); len(got) == 0 {
			b.Fatal("no results")
		}
	}
}

// BenchmarkDiscoveryPublish measures insert+index cost.
func BenchmarkDiscoveryPublish(b *testing.B) {
	d := benchDiscovery(b, 0)
	adv := &ServiceAdvertisement{SvcID: "urn:svc-bench", Name: "ServiceBench"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Publish(adv, time.Hour); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResolverQueryZeroLatency(b *testing.B) {
	net := simnet.NewNetwork(simnet.WithLatency(simnet.ZeroLatency()))
	defer func() { _ = net.Close() }()
	gen := NewIDGen(1)
	mk := func(name string) *Peer {
		port, err := net.NewPort(name)
		if err != nil {
			b.Fatal(err)
		}
		p := NewPeer(name, gen.New(PeerIDKind), port)
		p.Start()
		return p
	}
	a, c := mk("a"), mk("c")
	defer func() { _ = a.Close() }()
	defer func() { _ = c.Close() }()
	ra := NewResolver(a)
	rc := NewResolver(c)
	rc.RegisterHandler("echo", func(_ string, payload []byte) ([]byte, error) { return payload, nil })

	ctx := context.Background()
	payload := []byte("benchmark-payload")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ra.Query(ctx, c.Addr(), "echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}
