package p2p

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func TestDiscoveryLocalPublishAndQuery(t *testing.T) {
	h := newHarness(t, 1)
	d := NewDiscoveryService(h.peers[0])

	adv1 := &ServiceAdvertisement{SvcID: "urn:1", Name: "StudentManagement", Operation: "StudentInformation"}
	adv2 := &ServiceAdvertisement{SvcID: "urn:2", Name: "ClaimService", Operation: "ProcessClaim"}
	grp := &PeerGroupAdvertisement{GID: "urn:g1", Name: "students"}
	for _, adv := range []Advertisement{adv1, adv2, grp} {
		if err := d.Publish(adv, 0); err != nil {
			t.Fatalf("publish: %v", err)
		}
	}

	if got := d.GetLocalAdvertisements(ServiceAdvType, "", ""); len(got) != 2 {
		t.Errorf("all services = %d, want 2", len(got))
	}
	if got := d.GetLocalAdvertisements(ServiceAdvType, "Name", "StudentManagement"); len(got) != 1 {
		t.Errorf("by name = %d, want 1", len(got))
	}
	if got := d.GetLocalAdvertisements(PeerGroupAdvType, "", ""); len(got) != 1 {
		t.Errorf("groups = %d, want 1", len(got))
	}
	if got := d.GetLocalAdvertisements(ServiceAdvType, "Name", "nope"); len(got) != 0 {
		t.Errorf("no match = %d, want 0", len(got))
	}
}

func TestDiscoveryWildcards(t *testing.T) {
	h := newHarness(t, 1)
	d := NewDiscoveryService(h.peers[0])
	_ = d.Publish(&ServiceAdvertisement{SvcID: "urn:1", Name: "StudentManagement"}, 0)
	_ = d.Publish(&ServiceAdvertisement{SvcID: "urn:2", Name: "StudentRegistry"}, 0)
	_ = d.Publish(&ServiceAdvertisement{SvcID: "urn:3", Name: "ClaimManagement"}, 0)

	tests := []struct {
		value string
		want  int
	}{
		{"Student*", 2},
		{"*Management", 2},
		{"*ent*", 3}, // StudentManagement, StudentRegistry, ClaimManagement
		{"*", 3},
		{"StudentManagement", 1},
	}
	for _, tt := range tests {
		if got := len(d.GetLocalAdvertisements(ServiceAdvType, "Name", tt.value)); got != tt.want {
			t.Errorf("value %q matched %d, want %d", tt.value, got, tt.want)
		}
	}
}

func TestDiscoveryExpiration(t *testing.T) {
	h := newHarness(t, 1)
	d := NewDiscoveryService(h.peers[0])
	now := time.Now()
	d.now = func() time.Time { return now }

	_ = d.Publish(&ServiceAdvertisement{SvcID: "urn:1", Name: "ephemeral"}, 100*time.Millisecond)
	_ = d.Publish(&ServiceAdvertisement{SvcID: "urn:2", Name: "durable"}, time.Hour)

	if got := len(d.GetLocalAdvertisements(ServiceAdvType, "", "")); got != 2 {
		t.Fatalf("pre-expiry = %d, want 2", got)
	}
	now = now.Add(time.Second)
	got := d.GetLocalAdvertisements(ServiceAdvType, "", "")
	if len(got) != 1 || got[0].Attributes()["Name"] != "durable" {
		t.Errorf("post-expiry = %v, want only durable", got)
	}
}

func TestDiscoveryFlushExpired(t *testing.T) {
	h := newHarness(t, 1)
	d := NewDiscoveryService(h.peers[0])
	now := time.Now()
	d.now = func() time.Time { return now }
	_ = d.Publish(&ServiceAdvertisement{SvcID: "urn:1"}, 10*time.Millisecond)
	_ = d.Publish(&ServiceAdvertisement{SvcID: "urn:2"}, time.Hour)
	now = now.Add(time.Minute)
	if removed := d.FlushExpired(); removed != 1 {
		t.Errorf("FlushExpired = %d, want 1", removed)
	}
}

func TestDiscoveryFlushByID(t *testing.T) {
	h := newHarness(t, 1)
	d := NewDiscoveryService(h.peers[0])
	_ = d.Publish(&ServiceAdvertisement{SvcID: "urn:1"}, 0)
	d.Flush("urn:1")
	if got := len(d.GetLocalAdvertisements(ServiceAdvType, "", "")); got != 0 {
		t.Errorf("after flush = %d, want 0", got)
	}
}

func TestDiscoveryRemoteQuery(t *testing.T) {
	h := newHarness(t, 3)
	querier := NewDiscoveryService(h.peers[0])
	d1 := NewDiscoveryService(h.peers[1])
	d2 := NewDiscoveryService(h.peers[2])
	_ = d1.Publish(&ServiceAdvertisement{SvcID: "urn:1", Name: "StudentManagement"}, 0)
	_ = d2.Publish(&ServiceAdvertisement{SvcID: "urn:2", Name: "StudentManagement"}, 0)
	_ = d2.Publish(&ServiceAdvertisement{SvcID: "urn:3", Name: "Other"}, 0)
	for _, p := range h.peers {
		p.Start()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	got, err := querier.RemoteGetAdvertisements(ctx,
		[]string{h.peers[1].Addr(), h.peers[2].Addr()},
		ServiceAdvType, "Name", "StudentManagement", 0)
	if err != nil {
		t.Fatalf("remote query: %v", err)
	}
	if len(got) != 2 {
		t.Errorf("remote advs = %d, want 2", len(got))
	}
}

func TestDiscoveryRemoteQueryLimit(t *testing.T) {
	h := newHarness(t, 2)
	querier := NewDiscoveryService(h.peers[0])
	d1 := NewDiscoveryService(h.peers[1])
	for i := 0; i < 5; i++ {
		_ = d1.Publish(&ServiceAdvertisement{SvcID: ID(rune('0' + i)), Name: "S"}, 0)
	}
	for _, p := range h.peers {
		p.Start()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	got, err := querier.RemoteGetAdvertisements(ctx, []string{h.peers[1].Addr()},
		ServiceAdvType, "Name", "S", 2)
	if err != nil {
		t.Fatalf("remote query: %v", err)
	}
	if len(got) != 2 {
		t.Errorf("limited advs = %d, want 2", len(got))
	}
}

func TestDiscoveryRemoteQueryDeduplicates(t *testing.T) {
	h := newHarness(t, 3)
	querier := NewDiscoveryService(h.peers[0])
	d1 := NewDiscoveryService(h.peers[1])
	d2 := NewDiscoveryService(h.peers[2])
	same := &ServiceAdvertisement{SvcID: "urn:dup", Name: "S"}
	_ = d1.Publish(same, 0)
	_ = d2.Publish(same, 0)
	for _, p := range h.peers {
		p.Start()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	got, err := querier.RemoteGetAdvertisements(ctx,
		[]string{h.peers[1].Addr(), h.peers[2].Addr()}, ServiceAdvType, "", "", 0)
	if err != nil {
		t.Fatalf("remote query: %v", err)
	}
	if len(got) != 1 {
		t.Errorf("deduped advs = %d, want 1", len(got))
	}
}

func TestDiscoveryRemotePublish(t *testing.T) {
	h := newHarness(t, 2)
	edge := NewDiscoveryService(h.peers[0])
	rdv := NewDiscoveryService(h.peers[1])
	for _, p := range h.peers {
		p.Start()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	adv := &ServiceAdvertisement{SvcID: "urn:push", Name: "Pushed"}
	if err := edge.RemotePublish(ctx, h.peers[1].Addr(), adv, time.Hour); err != nil {
		t.Fatalf("remote publish: %v", err)
	}
	if got := rdv.GetLocalAdvertisements(ServiceAdvType, "Name", "Pushed"); len(got) != 1 {
		t.Errorf("rendezvous cache = %d, want 1", len(got))
	}
}

func TestDiscoveryRemoteQueryNoTargets(t *testing.T) {
	h := newHarness(t, 1)
	d := NewDiscoveryService(h.peers[0])
	got, err := d.RemoteGetAdvertisements(context.Background(), nil, ServiceAdvType, "", "", 0)
	if err != nil || got != nil {
		t.Errorf("no targets: got %v, %v; want nil, nil", got, err)
	}
}

func TestDiscoveryConcurrentPublishQuery(t *testing.T) {
	h := newHarness(t, 1)
	d := NewDiscoveryService(h.peers[0])
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = d.Publish(&ServiceAdvertisement{
				SvcID: ID(fmt.Sprintf("urn:c%d", i)),
				Name:  "Concurrent",
			}, time.Hour)
		}
	}()
	for i := 0; i < 200; i++ {
		_ = d.GetLocalAdvertisements(ServiceAdvType, "Name", "Concurrent")
		d.FlushExpired()
	}
	<-done
	if got := len(d.GetLocalAdvertisements(ServiceAdvType, "Name", "Concurrent")); got != 200 {
		t.Errorf("final advs = %d, want 200", got)
	}
}
