package p2p

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestDiscoveryLocalPublishAndQuery(t *testing.T) {
	h := newHarness(t, 1)
	d := NewDiscoveryService(h.peers[0])

	adv1 := &ServiceAdvertisement{SvcID: "urn:1", Name: "StudentManagement", Operation: "StudentInformation"}
	adv2 := &ServiceAdvertisement{SvcID: "urn:2", Name: "ClaimService", Operation: "ProcessClaim"}
	grp := &PeerGroupAdvertisement{GID: "urn:g1", Name: "students"}
	for _, adv := range []Advertisement{adv1, adv2, grp} {
		if err := d.Publish(adv, 0); err != nil {
			t.Fatalf("publish: %v", err)
		}
	}

	if got := d.GetLocalAdvertisements(ServiceAdvType, "", ""); len(got) != 2 {
		t.Errorf("all services = %d, want 2", len(got))
	}
	if got := d.GetLocalAdvertisements(ServiceAdvType, "Name", "StudentManagement"); len(got) != 1 {
		t.Errorf("by name = %d, want 1", len(got))
	}
	if got := d.GetLocalAdvertisements(PeerGroupAdvType, "", ""); len(got) != 1 {
		t.Errorf("groups = %d, want 1", len(got))
	}
	if got := d.GetLocalAdvertisements(ServiceAdvType, "Name", "nope"); len(got) != 0 {
		t.Errorf("no match = %d, want 0", len(got))
	}
}

func TestDiscoveryWildcards(t *testing.T) {
	h := newHarness(t, 1)
	d := NewDiscoveryService(h.peers[0])
	_ = d.Publish(&ServiceAdvertisement{SvcID: "urn:1", Name: "StudentManagement"}, 0)
	_ = d.Publish(&ServiceAdvertisement{SvcID: "urn:2", Name: "StudentRegistry"}, 0)
	_ = d.Publish(&ServiceAdvertisement{SvcID: "urn:3", Name: "ClaimManagement"}, 0)

	tests := []struct {
		value string
		want  int
	}{
		{"Student*", 2},
		{"*Management", 2},
		{"*ent*", 3}, // StudentManagement, StudentRegistry, ClaimManagement
		{"*", 3},
		{"StudentManagement", 1},
	}
	for _, tt := range tests {
		if got := len(d.GetLocalAdvertisements(ServiceAdvType, "Name", tt.value)); got != tt.want {
			t.Errorf("value %q matched %d, want %d", tt.value, got, tt.want)
		}
	}
}

func TestDiscoveryExpiration(t *testing.T) {
	h := newHarness(t, 1)
	d := NewDiscoveryService(h.peers[0])
	now := time.Now()
	d.now = func() time.Time { return now }

	_ = d.Publish(&ServiceAdvertisement{SvcID: "urn:1", Name: "ephemeral"}, 100*time.Millisecond)
	_ = d.Publish(&ServiceAdvertisement{SvcID: "urn:2", Name: "durable"}, time.Hour)

	if got := len(d.GetLocalAdvertisements(ServiceAdvType, "", "")); got != 2 {
		t.Fatalf("pre-expiry = %d, want 2", got)
	}
	now = now.Add(time.Second)
	got := d.GetLocalAdvertisements(ServiceAdvType, "", "")
	if len(got) != 1 || got[0].Attributes()["Name"] != "durable" {
		t.Errorf("post-expiry = %v, want only durable", got)
	}
}

func TestDiscoveryFlushExpired(t *testing.T) {
	h := newHarness(t, 1)
	d := NewDiscoveryService(h.peers[0])
	now := time.Now()
	d.now = func() time.Time { return now }
	_ = d.Publish(&ServiceAdvertisement{SvcID: "urn:1"}, 10*time.Millisecond)
	_ = d.Publish(&ServiceAdvertisement{SvcID: "urn:2"}, time.Hour)
	now = now.Add(time.Minute)
	if removed := d.FlushExpired(); removed != 1 {
		t.Errorf("FlushExpired = %d, want 1", removed)
	}
}

func TestDiscoveryFlushByID(t *testing.T) {
	h := newHarness(t, 1)
	d := NewDiscoveryService(h.peers[0])
	_ = d.Publish(&ServiceAdvertisement{SvcID: "urn:1"}, 0)
	d.Flush("urn:1")
	if got := len(d.GetLocalAdvertisements(ServiceAdvType, "", "")); got != 0 {
		t.Errorf("after flush = %d, want 0", got)
	}
}

func TestDiscoveryRemoteQuery(t *testing.T) {
	h := newHarness(t, 3)
	querier := NewDiscoveryService(h.peers[0])
	d1 := NewDiscoveryService(h.peers[1])
	d2 := NewDiscoveryService(h.peers[2])
	_ = d1.Publish(&ServiceAdvertisement{SvcID: "urn:1", Name: "StudentManagement"}, 0)
	_ = d2.Publish(&ServiceAdvertisement{SvcID: "urn:2", Name: "StudentManagement"}, 0)
	_ = d2.Publish(&ServiceAdvertisement{SvcID: "urn:3", Name: "Other"}, 0)
	for _, p := range h.peers {
		p.Start()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	got, err := querier.RemoteGetAdvertisements(ctx,
		[]string{h.peers[1].Addr(), h.peers[2].Addr()},
		ServiceAdvType, "Name", "StudentManagement", 0)
	if err != nil {
		t.Fatalf("remote query: %v", err)
	}
	if len(got) != 2 {
		t.Errorf("remote advs = %d, want 2", len(got))
	}
}

func TestDiscoveryRemoteQueryLimit(t *testing.T) {
	h := newHarness(t, 2)
	querier := NewDiscoveryService(h.peers[0])
	d1 := NewDiscoveryService(h.peers[1])
	for i := 0; i < 5; i++ {
		_ = d1.Publish(&ServiceAdvertisement{SvcID: ID(rune('0' + i)), Name: "S"}, 0)
	}
	for _, p := range h.peers {
		p.Start()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	got, err := querier.RemoteGetAdvertisements(ctx, []string{h.peers[1].Addr()},
		ServiceAdvType, "Name", "S", 2)
	if err != nil {
		t.Fatalf("remote query: %v", err)
	}
	if len(got) != 2 {
		t.Errorf("limited advs = %d, want 2", len(got))
	}
}

func TestDiscoveryRemoteQueryDeduplicates(t *testing.T) {
	h := newHarness(t, 3)
	querier := NewDiscoveryService(h.peers[0])
	d1 := NewDiscoveryService(h.peers[1])
	d2 := NewDiscoveryService(h.peers[2])
	same := &ServiceAdvertisement{SvcID: "urn:dup", Name: "S"}
	_ = d1.Publish(same, 0)
	_ = d2.Publish(same, 0)
	for _, p := range h.peers {
		p.Start()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	got, err := querier.RemoteGetAdvertisements(ctx,
		[]string{h.peers[1].Addr(), h.peers[2].Addr()}, ServiceAdvType, "", "", 0)
	if err != nil {
		t.Fatalf("remote query: %v", err)
	}
	if len(got) != 1 {
		t.Errorf("deduped advs = %d, want 1", len(got))
	}
}

func TestDiscoveryRemotePublish(t *testing.T) {
	h := newHarness(t, 2)
	edge := NewDiscoveryService(h.peers[0])
	rdv := NewDiscoveryService(h.peers[1])
	for _, p := range h.peers {
		p.Start()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	adv := &ServiceAdvertisement{SvcID: "urn:push", Name: "Pushed"}
	if err := edge.RemotePublish(ctx, h.peers[1].Addr(), adv, time.Hour); err != nil {
		t.Fatalf("remote publish: %v", err)
	}
	if got := rdv.GetLocalAdvertisements(ServiceAdvType, "Name", "Pushed"); len(got) != 1 {
		t.Errorf("rendezvous cache = %d, want 1", len(got))
	}
}

func TestDiscoveryRemoteQueryNoTargets(t *testing.T) {
	h := newHarness(t, 1)
	d := NewDiscoveryService(h.peers[0])
	got, err := d.RemoteGetAdvertisements(context.Background(), nil, ServiceAdvType, "", "", 0)
	if err != nil || got != nil {
		t.Errorf("no targets: got %v, %v; want nil, nil", got, err)
	}
}

// TestDiscoveryRepublishReindexes: re-publishing an advertisement with
// changed attributes must update the index — the old attribute values
// must stop matching and the new ones must start.
func TestDiscoveryRepublishReindexes(t *testing.T) {
	h := newHarness(t, 1)
	d := NewDiscoveryService(h.peers[0])
	_ = d.Publish(&ServiceAdvertisement{SvcID: "urn:1", Name: "OldName"}, 0)
	_ = d.Publish(&ServiceAdvertisement{SvcID: "urn:1", Name: "NewName"}, 0)

	if got := len(d.GetLocalAdvertisements(ServiceAdvType, "Name", "OldName")); got != 0 {
		t.Errorf("old name still matches %d entries, want 0 (dangling index posting)", got)
	}
	if got := len(d.GetLocalAdvertisements(ServiceAdvType, "Name", "NewName")); got != 1 {
		t.Errorf("new name matches %d entries, want 1", got)
	}
	if got := d.Stats().Size; got != 1 {
		t.Errorf("cache size = %d, want 1 after republish", got)
	}
}

// TestDiscoveryIndexNeverServesExpired: an expired entry must not be
// returned from any query path — exact index, type set, wildcard scan
// or full scan — even before a sweep runs.
func TestDiscoveryIndexNeverServesExpired(t *testing.T) {
	h := newHarness(t, 1)
	d := NewDiscoveryService(h.peers[0])
	now := time.Now()
	d.now = func() time.Time { return now }
	_ = d.Publish(&ServiceAdvertisement{SvcID: "urn:1", Name: "Ephemeral"}, 50*time.Millisecond)
	now = now.Add(time.Minute)

	paths := []struct {
		name                 string
		advType, attr, value string
	}{
		{"exact", ServiceAdvType, "Name", "Ephemeral"},
		{"type", ServiceAdvType, "", ""},
		{"wildcard", ServiceAdvType, "Name", "Ephem*"},
		{"full-scan", "", "", ""},
	}
	for _, p := range paths {
		if got := len(d.GetLocalAdvertisements(p.advType, p.attr, p.value)); got != 0 {
			t.Errorf("%s path returned %d expired advertisements, want 0", p.name, got)
		}
	}
	if s := d.Stats(); s.Expired == 0 {
		t.Error("expired counter not incremented by lazy eviction")
	}
}

// TestDiscoveryGenerationAdvancesOnMutation: the generation counter
// must move on publish, flush and expiry (the proxy's match cache keys
// its validity on it) and stay put on pure queries.
func TestDiscoveryGenerationAdvancesOnMutation(t *testing.T) {
	h := newHarness(t, 1)
	d := NewDiscoveryService(h.peers[0])
	g0 := d.Gen()
	_ = d.Publish(&ServiceAdvertisement{SvcID: "urn:1", Name: "A"}, 0)
	g1 := d.Gen()
	if g1 == g0 {
		t.Error("generation did not advance on publish")
	}
	_ = d.GetLocalAdvertisements(ServiceAdvType, "Name", "A")
	if d.Gen() != g1 {
		t.Error("generation advanced on a pure query")
	}
	d.Flush("urn:1")
	if d.Gen() == g1 {
		t.Error("generation did not advance on flush")
	}
}

// TestDiscoveryJanitorSweepsExpired: the jittered janitor owned by the
// peer must evict expired advertisements without any query traffic.
func TestDiscoveryJanitorSweepsExpired(t *testing.T) {
	h := newHarness(t, 1)
	d := newDiscoveryService(h.peers[0], 10*time.Millisecond)
	_ = d.Publish(&ServiceAdvertisement{SvcID: "urn:1", Name: "Ephemeral"}, time.Millisecond)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s := d.Stats(); s.Size == 0 && s.Expired > 0 && s.Sweeps > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("janitor never evicted the expired advertisement: %+v", d.Stats())
}

// TestDiscoveryIndexConcurrency hammers publish, flush, expiry sweeps
// and every query path concurrently (run under -race).
func TestDiscoveryIndexConcurrency(t *testing.T) {
	h := newHarness(t, 1)
	d := newDiscoveryService(h.peers[0], 5*time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := ID(fmt.Sprintf("urn:w%d-%d", w, i%20))
				switch i % 4 {
				case 0:
					_ = d.Publish(&ServiceAdvertisement{SvcID: id, Name: fmt.Sprintf("Svc%d", i%20)}, time.Duration(1+i%3)*time.Millisecond)
				case 1:
					_ = d.GetLocalAdvertisements(ServiceAdvType, "Name", fmt.Sprintf("Svc%d", i%20))
				case 2:
					_ = d.GetLocalAdvertisements(ServiceAdvType, "Name", "Svc*")
				default:
					d.Flush(id)
				}
			}
		}(w)
	}
	wg.Wait()
	d.now = func() time.Time { return time.Now().Add(time.Hour) }
	d.FlushExpired()
	if got := d.Stats().Size; got != 0 {
		t.Errorf("cache size = %d after flushing everything, want 0", got)
	}
	if got := d.Stats().IndexKeys; got != 0 {
		t.Errorf("index keys = %d after flushing everything, want 0 (leaked postings)", got)
	}
}

func TestDiscoveryConcurrentPublishQuery(t *testing.T) {
	h := newHarness(t, 1)
	d := NewDiscoveryService(h.peers[0])
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = d.Publish(&ServiceAdvertisement{
				SvcID: ID(fmt.Sprintf("urn:c%d", i)),
				Name:  "Concurrent",
			}, time.Hour)
		}
	}()
	for i := 0; i < 200; i++ {
		_ = d.GetLocalAdvertisements(ServiceAdvType, "Name", "Concurrent")
		d.FlushExpired()
	}
	<-done
	if got := len(d.GetLocalAdvertisements(ServiceAdvType, "Name", "Concurrent")); got != 200 {
		t.Errorf("final advs = %d, want 200", got)
	}
}

// TestDiscoverySplitGenerations: publish and flush move the membership
// generation; expiry moves only the evicted entry's action partition,
// leaving the membership generation and unrelated partitions alone —
// so derived caches can evict per-result instead of flushing wholesale.
func TestDiscoverySplitGenerations(t *testing.T) {
	h := newHarness(t, 1)
	d := NewDiscoveryService(h.peers[0])
	now := time.Now()
	d.now = func() time.Time { return now }

	m0 := d.MemberGen()
	_ = d.Publish(&ServiceAdvertisement{SvcID: "urn:1", Name: "Ephemeral", Operation: "OpA"}, 100*time.Millisecond)
	_ = d.Publish(&ServiceAdvertisement{SvcID: "urn:2", Name: "Durable", Operation: "OpB"}, time.Hour)
	if d.MemberGen() != m0+2 {
		t.Fatalf("member gen = %d, want %d after two publishes", d.MemberGen(), m0+2)
	}

	part := ActionPartition(ServiceAdvType, "")
	p0 := d.PartitionGen(part)
	var others []uint64
	for i := uint32(0); i < GenPartitions; i++ {
		if i != part%GenPartitions {
			others = append(others, d.PartitionGen(i))
		}
	}
	g0 := d.Gen()

	// Lazy eviction on query: urn:1 expires.
	now = now.Add(time.Second)
	if got := len(d.GetLocalAdvertisements(ServiceAdvType, "", "")); got != 1 {
		t.Fatalf("post-expiry = %d, want 1", got)
	}
	if d.MemberGen() != m0+2 {
		t.Error("expiry moved the membership generation")
	}
	if d.PartitionGen(part) != p0+1 {
		t.Errorf("partition gen = %d, want %d after expiry", d.PartitionGen(part), p0+1)
	}
	idx := 0
	for i := uint32(0); i < GenPartitions; i++ {
		if i != part%GenPartitions {
			if d.PartitionGen(i) != others[idx] {
				t.Errorf("unrelated partition %d moved on expiry", i)
			}
			idx++
		}
	}
	// The aggregate generation still observes every mutation.
	if d.Gen() != g0+1 {
		t.Errorf("aggregate gen = %d, want %d", d.Gen(), g0+1)
	}
	d.Flush("urn:2")
	if d.MemberGen() != m0+3 {
		t.Error("flush did not move the membership generation")
	}
}

// TestDiscoveryJanitorBumpsPartitionGen: the janitor's background
// sweep attributes evictions to expiry partitions, not membership.
func TestDiscoveryJanitorBumpsPartitionGen(t *testing.T) {
	h := newHarness(t, 1)
	d := newDiscoveryService(h.peers[0], 10*time.Millisecond)
	m0 := d.MemberGen()
	_ = d.Publish(&ServiceAdvertisement{SvcID: "urn:1", Name: "Ephemeral"}, time.Millisecond)

	part := ActionPartition(ServiceAdvType, "")
	p0 := d.PartitionGen(part)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if d.PartitionGen(part) > p0 {
			if got := d.MemberGen(); got != m0+1 {
				t.Errorf("member gen = %d, want %d (publish only)", got, m0+1)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("janitor sweep never bumped the expiry partition: %+v", d.Stats())
}
