package p2p

import (
	"context"
	"testing"
	"time"

	"whisper/internal/simnet"
)

// relayFixture: peers a and b are partitioned from each other but both
// reach relay r.
type relayFixture struct {
	net      *simnet.Network
	gen      *IDGen
	relay    *Peer
	a, b     *Peer
	aTr, bTr *RelayTransport
}

func newRelayFixture(t *testing.T) *relayFixture {
	t.Helper()
	f := &relayFixture{
		net: simnet.NewNetwork(simnet.WithLatency(simnet.ZeroLatency()), simnet.WithSeed(1)),
		gen: NewIDGen(1),
	}
	t.Cleanup(func() { _ = f.net.Close() })

	rPort, err := f.net.NewPort("relay")
	if err != nil {
		t.Fatalf("relay port: %v", err)
	}
	f.relay = NewPeer("relay", f.gen.New(PeerIDKind), rPort)
	NewRelayService(f.relay)
	f.relay.Start()
	t.Cleanup(func() { _ = f.relay.Close() })

	mk := func(name, other string) (*Peer, *RelayTransport) {
		port, err := f.net.NewPort(name)
		if err != nil {
			t.Fatalf("%s port: %v", name, err)
		}
		tr := NewRelayTransport(port, "relay", RelayFor(other))
		p := NewPeer(name, f.gen.New(PeerIDKind), tr)
		p.Start()
		t.Cleanup(func() { _ = p.Close() })
		return p, tr
	}
	f.a, f.aTr = mk("a", "b")
	f.b, f.bTr = mk("b", "a")

	// a and b cannot talk directly — only via the relay.
	f.net.Partition("a", "b")
	return f
}

func TestRelayCrossesPartition(t *testing.T) {
	f := newRelayFixture(t)
	got := make(chan simnet.Message, 1)
	f.b.Handle("app", func(m simnet.Message) { got <- m })

	if err := f.a.Send("b", simnet.Message{Proto: "app", Kind: "x", Payload: []byte("over the wall")}); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case m := <-got:
		if string(m.Payload) != "over the wall" {
			t.Errorf("payload = %q", m.Payload)
		}
		if m.Src != "a" {
			t.Errorf("src = %q, want original sender a", m.Src)
		}
		if m.Hops != 1 {
			t.Errorf("hops = %d, want 1", m.Hops)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("relayed message never arrived")
	}
}

func TestRelayRoundTripQuery(t *testing.T) {
	f := newRelayFixture(t)
	ra := NewResolver(f.a)
	rb := NewResolver(f.b)
	rb.RegisterHandler("echo", func(_ string, payload []byte) ([]byte, error) {
		return append([]byte("re:"), payload...), nil
	})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	// The query goes a → relay → b; the response returns b → relay → a.
	resp, err := ra.Query(ctx, "b", "echo", []byte("ping"))
	if err != nil {
		t.Fatalf("query over relay: %v", err)
	}
	if string(resp) != "re:ping" {
		t.Errorf("resp = %q", resp)
	}
	// Without the relay the partition would have eaten the query:
	// verify relay traffic is accounted.
	if got := f.net.Stats().PerProto[ProtoRelay].Messages; got < 4 {
		t.Errorf("relay messages = %d, want >= 4 (fwd+dlv each way)", got)
	}
}

func TestRelayDirectDestinationsBypassRelay(t *testing.T) {
	f := newRelayFixture(t)
	got := make(chan simnet.Message, 1)
	f.relay.Handle("app", func(m simnet.Message) { got <- m })

	// a → relay is not in a's relay policy, so it goes direct.
	if err := f.a.Send("relay", simnet.Message{Proto: "app"}); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case m := <-got:
		if m.Hops != 0 {
			t.Errorf("direct message hops = %d", m.Hops)
		}
	case <-time.After(time.Second):
		t.Fatal("direct message lost")
	}
}

func TestRelayAlwaysPolicy(t *testing.T) {
	p := RelayAlways()
	if !p("anyone") || !p("") {
		t.Error("RelayAlways should match everything")
	}
	f := RelayFor("x", "y")
	if !f("x") || !f("y") || f("z") {
		t.Error("RelayFor set membership wrong")
	}
}

func TestRelayHopLimit(t *testing.T) {
	// A forwarded envelope already at the hop limit must be dropped.
	f := newRelayFixture(t)
	inner := simnet.Message{Proto: "app", Src: "a", Dst: "b", Hops: MaxRelayHops}
	wrapped, err := encodeRelayed(inner)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got := make(chan simnet.Message, 1)
	f.b.Handle("app", func(m simnet.Message) { got <- m })
	// Bypass the policy and hand the envelope to the relay directly.
	if err := f.a.Send("relay", simnet.Message{Proto: ProtoRelay, Kind: kindRelayForward, Payload: wrapped}); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case <-got:
		t.Error("over-hopped message was delivered")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestRelayTransportCloseIdempotent(t *testing.T) {
	net := simnet.NewNetwork(simnet.WithLatency(simnet.ZeroLatency()))
	t.Cleanup(func() { _ = net.Close() })
	port, err := net.NewPort("x")
	if err != nil {
		t.Fatalf("port: %v", err)
	}
	tr := NewRelayTransport(port, "relay", nil)
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if _, ok := <-tr.Recv(); ok {
		t.Error("recv open after close")
	}
}

func TestRelayMalformedEnvelopeDropped(t *testing.T) {
	f := newRelayFixture(t)
	// Garbage payload must not crash the relay.
	if err := f.a.Send("relay", simnet.Message{Proto: ProtoRelay, Kind: kindRelayForward, Payload: []byte("garbage")}); err != nil {
		t.Fatalf("send: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	// Relay is still alive.
	got := make(chan simnet.Message, 1)
	f.b.Handle("app", func(m simnet.Message) { got <- m })
	if err := f.a.Send("b", simnet.Message{Proto: "app", Payload: []byte("still works")}); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("relay died on malformed envelope")
	}
}
