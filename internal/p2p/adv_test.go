package p2p

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAdvertisementRoundTrips(t *testing.T) {
	EnsureBuiltinAdvTypes()
	advs := []Advertisement{
		&PeerAdvertisement{PID: "urn:jxta:peer-1", Name: "alpha", Addr: "a:1", Desc: "d"},
		&PeerGroupAdvertisement{GID: "urn:jxta:group-1", Name: "students", Desc: "grp"},
		&PipeAdvertisement{PipeID: "urn:jxta:pipe-1", Kind: UnicastPipe, Name: "svc", Addr: "a:1"},
		&ServiceAdvertisement{SvcID: "urn:jxta:id-1", Name: "StudentManagement",
			Operation: "StudentInformation", PipeID: "urn:jxta:pipe-1", Addr: "a:1"},
	}
	for _, adv := range advs {
		raw, err := adv.MarshalAdv()
		if err != nil {
			t.Fatalf("%s: marshal: %v", adv.AdvType(), err)
		}
		back, err := ParseAdvertisement(raw)
		if err != nil {
			t.Fatalf("%s: parse: %v\n%s", adv.AdvType(), err, raw)
		}
		if back.AdvType() != adv.AdvType() {
			t.Errorf("type: got %s, want %s", back.AdvType(), adv.AdvType())
		}
		if back.AdvID() != adv.AdvID() {
			t.Errorf("%s: id: got %s, want %s", adv.AdvType(), back.AdvID(), adv.AdvID())
		}
		for k, want := range adv.Attributes() {
			if got := back.Attributes()[k]; got != want {
				t.Errorf("%s: attr %s: got %q, want %q", adv.AdvType(), k, got, want)
			}
		}
	}
}

func TestParseAdvertisementUnknownType(t *testing.T) {
	EnsureBuiltinAdvTypes()
	if _, err := ParseAdvertisement([]byte(`<Mystery><X>1</X></Mystery>`)); err == nil {
		t.Error("expected error for unregistered advertisement type")
	}
}

func TestParseAdvertisementMalformed(t *testing.T) {
	EnsureBuiltinAdvTypes()
	if _, err := ParseAdvertisement([]byte(`not xml at all`)); err == nil {
		t.Error("expected error for malformed XML")
	}
}

func TestPeerAdvRoundTripProperty(t *testing.T) {
	EnsureBuiltinAdvTypes()
	prop := func(pid, name, addr string) bool {
		// XML cannot carry invalid UTF-8 or control chars; restrict.
		clean := func(s string) string {
			var b strings.Builder
			for _, r := range s {
				if r >= 0x20 && r != '<' && r != '&' && r != '>' {
					b.WriteRune(r)
				}
			}
			return b.String()
		}
		adv := &PeerAdvertisement{PID: ID("urn:x-" + clean(pid)), Name: clean(name), Addr: clean(addr)}
		raw, err := adv.MarshalAdv()
		if err != nil {
			return false
		}
		back := &PeerAdvertisement{}
		if err := back.UnmarshalAdv(raw); err != nil {
			return false
		}
		return back.PID == adv.PID && back.Name == adv.Name && back.Addr == adv.Addr
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestIDGenDeterministicWithSeed(t *testing.T) {
	g1, g2 := NewIDGen(7), NewIDGen(7)
	for i := 0; i < 10; i++ {
		a, b := g1.New(PeerIDKind), g2.New(PeerIDKind)
		if a != b {
			t.Fatalf("seeded generators diverged: %s vs %s", a, b)
		}
	}
}

func TestIDGenUnique(t *testing.T) {
	g := NewIDGen(0)
	seen := make(map[ID]bool)
	for i := 0; i < 1000; i++ {
		id := g.New(PipeIDKind)
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
}

func TestIDKindPrefixes(t *testing.T) {
	g := NewIDGen(1)
	tests := []struct {
		kind IDKind
		want string
	}{
		{PeerIDKind, "urn:jxta:peer"},
		{GroupIDKind, "urn:jxta:group"},
		{PipeIDKind, "urn:jxta:pipe"},
	}
	for _, tt := range tests {
		if id := g.New(tt.kind); !strings.HasPrefix(string(id), tt.want) {
			t.Errorf("New(%v) = %s, want prefix %s", tt.kind, id, tt.want)
		}
	}
}
