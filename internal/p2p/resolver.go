package p2p

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"whisper/internal/simnet"
	"whisper/internal/trace"
)

// QueryHandler answers a resolver query addressed to a named handler.
// Returning an error produces an error response at the querier.
type QueryHandler func(from string, payload []byte) ([]byte, error)

// Response is one answer to a propagated resolver query.
type Response struct {
	// From is the responder's transport address.
	From string
	// Payload is the answer body; nil on error.
	Payload []byte
	// Err is non-nil when the responder failed the query.
	Err error
}

// Resolver implements JXTA's generic query/response protocol: named
// handlers answer queries; queries can be sent to a single peer or
// propagated to many, with responses collected on a channel.
type Resolver struct {
	peer  *Peer
	proto string

	mu       sync.Mutex
	handlers map[string]QueryHandler
	pending  map[string]chan Response
	nextID   uint64
}

// Message kinds within the resolver protocol.
const (
	kindQuery    = "query"
	kindResponse = "response"
)

// Resolver message headers.
const (
	hdrHandler = "handler"
	hdrQueryID = "qid"
	hdrError   = "error"
)

// NewResolver attaches a resolver to the peer on the default resolver
// protocol tag.
func NewResolver(peer *Peer) *Resolver { return NewResolverOn(peer, ProtoResolver) }

// NewResolverOn attaches a resolver on a custom protocol tag, so each
// service's query traffic is accounted under its own protocol (the
// per-protocol breakdown in Figure 4 depends on this).
func NewResolverOn(peer *Peer, proto string) *Resolver {
	r := &Resolver{
		peer:     peer,
		proto:    proto,
		handlers: make(map[string]QueryHandler),
		pending:  make(map[string]chan Response),
	}
	peer.Handle(proto, r.handleMessage)
	return r
}

// RegisterHandler installs the handler answering queries for name.
func (r *Resolver) RegisterHandler(name string, h QueryHandler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.handlers[name] = h
}

// Query sends a query to one peer and waits for its response or ctx
// cancellation.
func (r *Resolver) Query(ctx context.Context, to, handler string, payload []byte) ([]byte, error) {
	ch, qid := r.newPending(1)
	defer r.dropPending(qid)
	headers := map[string]string{hdrHandler: handler, hdrQueryID: qid}
	if tc := trace.ContextString(ctx); tc != "" {
		headers[trace.HeaderKey] = tc
	}
	msg := simnet.Message{
		Proto:   r.proto,
		Kind:    kindQuery,
		Headers: headers,
		Payload: payload,
	}
	if err := r.peer.Send(to, msg); err != nil {
		return nil, err
	}
	select {
	case resp := <-ch:
		if resp.Err != nil {
			return nil, fmt.Errorf("resolver: query %s@%s: %w", handler, to, resp.Err)
		}
		return resp.Payload, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("resolver: query %s@%s: %w", handler, to, ctx.Err())
	}
}

// Propagate sends the query to every target and returns a channel on
// which up to len(targets) responses arrive. The channel is never
// closed; callers bound collection with the context.
func (r *Resolver) Propagate(targets []string, handler string, payload []byte) (<-chan Response, error) {
	ch, qid := r.newPending(len(targets))
	msg := simnet.Message{
		Proto:   r.proto,
		Kind:    kindQuery,
		Headers: map[string]string{hdrHandler: handler, hdrQueryID: qid},
		Payload: payload,
	}
	var firstErr error
	sent := 0
	for _, to := range targets {
		if err := r.peer.Send(to, msg); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		sent++
	}
	if sent == 0 && firstErr != nil {
		r.dropPending(qid)
		return nil, firstErr
	}
	return ch, nil
}

func (r *Resolver) newPending(buffer int) (chan Response, string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	qid := r.peer.Addr() + "/" + strconv.FormatUint(r.nextID, 10)
	if buffer < 1 {
		buffer = 1
	}
	ch := make(chan Response, buffer)
	r.pending[qid] = ch
	return ch, qid
}

func (r *Resolver) dropPending(qid string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.pending, qid)
}

func (r *Resolver) handleMessage(msg simnet.Message) {
	switch msg.Kind {
	case kindQuery:
		r.handleQuery(msg)
	case kindResponse:
		r.handleResponse(msg)
	}
}

func (r *Resolver) handleQuery(msg simnet.Message) {
	name := msg.Header(hdrHandler)
	r.mu.Lock()
	h := r.handlers[name]
	r.mu.Unlock()

	// Server-side span: queries from traced callers (proxy binding
	// lookups, rendezvous membership fetches) show up inside the
	// request trace with the handler that served them.
	var span *trace.Span
	if sc, ok := trace.Parse(msg.Header(trace.HeaderKey)); ok {
		span = r.peer.Tracer().StartRemote(sc, "resolver."+name)
		span.SetAttr("peer", r.peer.Name())
		defer span.End()
	}

	resp := simnet.Message{
		Proto: r.proto,
		Kind:  kindResponse,
		Headers: map[string]string{
			hdrHandler: name,
			hdrQueryID: msg.Header(hdrQueryID),
		},
	}
	if h == nil {
		resp.Headers[hdrError] = fmt.Sprintf("no handler %q", name)
	} else if out, err := h(msg.Src, msg.Payload); err != nil {
		resp.Headers[hdrError] = err.Error()
	} else {
		resp.Payload = out
	}
	if e := resp.Headers[hdrError]; e != "" {
		span.SetAttr("error", e)
	}
	// Best effort: the querier may be gone.
	_ = r.peer.Send(msg.Src, resp)
}

func (r *Resolver) handleResponse(msg simnet.Message) {
	qid := msg.Header(hdrQueryID)
	r.mu.Lock()
	ch := r.pending[qid]
	r.mu.Unlock()
	if ch == nil {
		return // late response for an abandoned query
	}
	resp := Response{From: msg.Src, Payload: msg.Payload}
	if e := msg.Header(hdrError); e != "" {
		resp.Err = fmt.Errorf("%s", e)
	}
	select {
	case ch <- resp:
	default:
		// Channel full: more responses than targets (duplicate
		// delivery); drop.
	}
}
