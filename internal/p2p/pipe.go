package p2p

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"whisper/internal/simnet"
	"whisper/internal/trace"
)

// PipeMessage is one payload received on an input pipe.
type PipeMessage struct {
	// From is the sender's transport address.
	From string
	// CorrID correlates a request with its reply ("" for one-way
	// data).
	CorrID string
	// Trace is the sender's trace context (zero when the sender was
	// not tracing); receivers parent their spans under it.
	Trace trace.SpanContext
	// Payload is the message body.
	Payload []byte
}

// PipeService implements JXTA pipes over the peer: unicast input/output
// pipes with optional request/response correlation, and propagate
// sends to a set of peers. One PipeService is attached per peer.
type PipeService struct {
	peer *Peer
	gen  *IDGen

	mu      sync.Mutex
	inputs  map[ID]*InputPipe
	pending map[string]chan []byte
	nextID  uint64
	closed  bool
}

// Pipe message kinds.
const (
	kindPipeData     = "data"
	kindPipeRequest  = "request"
	kindPipeResponse = "response"
)

// Pipe message headers.
const (
	hdrPipeID = "pipe"
	hdrCorrID = "corr"
)

// NewPipeService attaches a pipe service to the peer.
func NewPipeService(peer *Peer, gen *IDGen) *PipeService {
	s := &PipeService{
		peer:    peer,
		gen:     gen,
		inputs:  make(map[ID]*InputPipe),
		pending: make(map[string]chan []byte),
	}
	peer.Handle(ProtoPipe, s.handleMessage)
	return s
}

// InputPipe is the receiving end of a pipe bound at this peer.
// Consume messages with a select over Messages() and Done(); the
// message channel is never closed, Done() signals Close.
type InputPipe struct {
	svc *PipeService
	adv *PipeAdvertisement
	ch  chan PipeMessage

	done      chan struct{}
	closeOnce sync.Once
}

// Bind creates an input pipe with a fresh pipe ID and returns it. The
// returned pipe's advertisement can be published via discovery so
// remote peers can send to it.
func (s *PipeService) Bind(name string, kind PipeKind) *InputPipe {
	adv := &PipeAdvertisement{
		PipeID: s.gen.New(PipeIDKind),
		Kind:   kind,
		Name:   name,
		Addr:   s.peer.Addr(),
	}
	in := &InputPipe{
		svc: s,
		adv: adv,
		// Buffer a handful of messages so short bursts do not block
		// the dispatch goroutine behind a slow consumer.
		ch:   make(chan PipeMessage, 16),
		done: make(chan struct{}),
	}
	s.mu.Lock()
	s.inputs[adv.PipeID] = in
	s.mu.Unlock()
	return in
}

// Advertisement returns the pipe's advertisement.
func (p *InputPipe) Advertisement() *PipeAdvertisement { return p.adv }

// Messages returns the channel of inbound pipe messages. The channel
// is never closed; select on Done() to observe pipe shutdown.
func (p *InputPipe) Messages() <-chan PipeMessage { return p.ch }

// Done is closed when the pipe is closed.
func (p *InputPipe) Done() <-chan struct{} { return p.done }

// Close unbinds the pipe. Idempotent.
func (p *InputPipe) Close() {
	p.closeOnce.Do(func() {
		p.svc.mu.Lock()
		delete(p.svc.inputs, p.adv.PipeID)
		p.svc.mu.Unlock()
		close(p.done)
	})
}

// Reply answers a request received on this pipe.
func (p *InputPipe) Reply(to PipeMessage, payload []byte) error {
	if to.CorrID == "" {
		return fmt.Errorf("pipe: reply to one-way message")
	}
	return p.svc.peer.Send(to.From, simnet.Message{
		Proto:   ProtoPipe,
		Kind:    kindPipeResponse,
		Headers: map[string]string{hdrCorrID: to.CorrID},
		Payload: payload,
	})
}

// Send delivers a one-way payload to the pipe described by adv.
func (s *PipeService) Send(adv *PipeAdvertisement, payload []byte) error {
	return s.peer.Send(adv.Addr, simnet.Message{
		Proto: ProtoPipe,
		Kind:  kindPipeData,
		//lint:allow allocbudget the headers map escapes into the wire message and outlives the call; one two-entry map is the protocol cost per send
		Headers: map[string]string{hdrPipeID: string(adv.PipeID)},
		Payload: payload,
	})
}

// Propagate delivers a one-way payload to every pipe in advs (the
// JXTA propagate pipe behaviour over a known member set).
func (s *PipeService) Propagate(advs []*PipeAdvertisement, payload []byte) error {
	var firstErr error
	for _, adv := range advs {
		if err := s.Send(adv, payload); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// CallResult is one fan-out reply from CallAll.
type CallResult struct {
	// Addr is the callee's transport address (adv.Addr).
	Addr string
	// Payload is the reply body when Err is nil.
	Payload []byte
	Err     error
}

// CallAll sends the same request to every pipe in advs concurrently and
// waits for every reply (or ctx cancellation). Unlike Propagate this is
// an acked fan-out: each target's reply or error is reported in the
// result slice, ordered like advs. It is the replication primitive for
// the journal propagate pipe (internal/replog).
func (s *PipeService) CallAll(ctx context.Context, advs []*PipeAdvertisement, payload []byte) []CallResult {
	results := make([]CallResult, len(advs))
	var wg sync.WaitGroup
	for i, adv := range advs {
		wg.Add(1)
		go func(i int, adv *PipeAdvertisement) {
			defer wg.Done()
			body, err := s.Call(ctx, adv, payload)
			results[i] = CallResult{Addr: adv.Addr, Payload: body, Err: err}
		}(i, adv)
	}
	wg.Wait()
	return results
}

// Call sends a request to the pipe and waits for the reply or context
// cancellation.
func (s *PipeService) Call(ctx context.Context, adv *PipeAdvertisement, payload []byte) ([]byte, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, simnet.ErrClosed
	}
	s.nextID++
	corr := s.peer.Addr() + "/" + strconv.FormatUint(s.nextID, 10)
	ch := make(chan []byte, 1)
	s.pending[corr] = ch
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.pending, corr)
		s.mu.Unlock()
	}()

	headers := map[string]string{hdrPipeID: string(adv.PipeID), hdrCorrID: corr}
	if tc := trace.ContextString(ctx); tc != "" {
		headers[trace.HeaderKey] = tc
	}
	err := s.peer.Send(adv.Addr, simnet.Message{
		Proto:   ProtoPipe,
		Kind:    kindPipeRequest,
		Headers: headers,
		Payload: payload,
	})
	if err != nil {
		return nil, err
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("pipe: call %s: %w", adv.Name, ctx.Err())
	}
}

func (s *PipeService) handleMessage(msg simnet.Message) {
	switch msg.Kind {
	case kindPipeData, kindPipeRequest:
		pipeID := ID(msg.Header(hdrPipeID))
		s.mu.Lock()
		in := s.inputs[pipeID]
		s.mu.Unlock()
		if in == nil {
			return // pipe unbound; message is lost, like JXTA
		}
		pm := PipeMessage{From: msg.Src, Payload: msg.Payload}
		if msg.Kind == kindPipeRequest {
			pm.CorrID = msg.Header(hdrCorrID)
		}
		if sc, ok := trace.Parse(msg.Header(trace.HeaderKey)); ok {
			pm.Trace = sc
		}
		// Blocking send keeps backpressure on this message's dispatch
		// goroutine only; Done aborts delivery if the pipe closes.
		select {
		case in.ch <- pm:
		case <-in.done:
		}
	case kindPipeResponse:
		corr := msg.Header(hdrCorrID)
		s.mu.Lock()
		ch := s.pending[corr]
		s.mu.Unlock()
		if ch != nil {
			select {
			case ch <- msg.Payload:
			default:
			}
		}
	}
}
