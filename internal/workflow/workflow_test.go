package workflow

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"whisper/internal/qos"
)

func appendStep(tag string) Invoker {
	return func(_ context.Context, input []byte) ([]byte, error) {
		return append(append([]byte{}, input...), []byte(tag)...), nil
	}
}

func TestSequencePipesData(t *testing.T) {
	e := NewEngine()
	proc := Sequence{
		Activity{Name: "a", Invoke: appendStep("A")},
		Activity{Name: "b", Invoke: appendStep("B")},
		Activity{Name: "c", Invoke: appendStep("C")},
	}
	out, err := e.Run(context.Background(), proc, []byte(">"))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if string(out) != ">ABC" {
		t.Errorf("out = %q", out)
	}
	trace := e.Trace()
	if len(trace) != 3 || trace[0].Activity != "a" || trace[2].Activity != "c" {
		t.Errorf("trace = %+v", trace)
	}
}

func TestParallelRunsConcurrentlyAndJoins(t *testing.T) {
	e := NewEngine()
	var concurrent, peak atomic.Int32
	slowBranch := func(tag string) Invoker {
		return func(_ context.Context, _ []byte) ([]byte, error) {
			cur := concurrent.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(30 * time.Millisecond)
			concurrent.Add(-1)
			return []byte(tag), nil
		}
	}
	proc := Parallel{
		Branches: []Node{
			Activity{Name: "x", Invoke: slowBranch("X")},
			Activity{Name: "y", Invoke: slowBranch("Y")},
			Activity{Name: "z", Invoke: slowBranch("Z")},
		},
		Join: func(outs [][]byte) []byte {
			return []byte(strings.Join([]string{string(outs[0]), string(outs[1]), string(outs[2])}, "|"))
		},
	}
	start := time.Now()
	out, err := e.Run(context.Background(), proc, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if string(out) != "X|Y|Z" {
		t.Errorf("out = %q", out)
	}
	if peak.Load() < 2 {
		t.Errorf("branches did not overlap (peak=%d)", peak.Load())
	}
	if elapsed := time.Since(start); elapsed > 90*time.Millisecond {
		t.Errorf("parallel took %v, want ~30ms", elapsed)
	}
}

func TestParallelDefaultJoinConcatenates(t *testing.T) {
	e := NewEngine()
	proc := Parallel{Branches: []Node{
		Activity{Name: "x", Invoke: appendStep("X")},
		Activity{Name: "y", Invoke: appendStep("Y")},
	}}
	out, err := e.Run(context.Background(), proc, []byte("-"))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if string(out) != "-X-Y" {
		t.Errorf("out = %q", out)
	}
}

func TestFailureAbortsProcess(t *testing.T) {
	e := NewEngine()
	boom := errors.New("backend gone")
	ran := atomic.Bool{}
	proc := Sequence{
		Activity{Name: "first", Invoke: appendStep("A")},
		Activity{Name: "fails", Invoke: func(context.Context, []byte) ([]byte, error) { return nil, boom }},
		Activity{Name: "never", Invoke: func(context.Context, []byte) ([]byte, error) {
			ran.Store(true)
			return nil, nil
		}},
	}
	_, err := e.Run(context.Background(), proc, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), `"fails"`) {
		t.Errorf("error should name the activity: %v", err)
	}
	if ran.Load() {
		t.Error("activity after the failure still ran")
	}
}

func TestParallelFailureCancelsSiblings(t *testing.T) {
	e := NewEngine()
	cancelled := make(chan struct{})
	// The failing branch waits until the slow sibling is in flight, so
	// the test exercises in-flight cancellation rather than racing the
	// abort against the sibling's start.
	started := make(chan struct{})
	proc := Parallel{Branches: []Node{
		Activity{Name: "fails", Invoke: func(context.Context, []byte) ([]byte, error) {
			<-started
			return nil, errors.New("nope")
		}},
		Activity{Name: "slow", Invoke: func(ctx context.Context, _ []byte) ([]byte, error) {
			close(started)
			select {
			case <-ctx.Done():
				close(cancelled)
				return nil, ctx.Err()
			case <-time.After(5 * time.Second):
				return []byte("late"), nil
			}
		}},
	}}
	if _, err := e.Run(context.Background(), proc, nil); err == nil {
		t.Fatal("expected failure")
	}
	select {
	case <-cancelled:
	case <-time.After(time.Second):
		t.Error("sibling was not cancelled")
	}
}

func TestRunRespectsContext(t *testing.T) {
	e := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Run(ctx, Activity{Name: "a", Invoke: appendStep("A")}, nil); err == nil {
		t.Error("expected context error")
	}
}

func TestEstimateQoSAlgebra(t *testing.T) {
	a := Activity{Name: "a", QoS: qos.Profile{LatencyMillis: 10, CostPerCall: 1, Reliability: 0.9, Availability: 0.99}}
	b := Activity{Name: "b", QoS: qos.Profile{LatencyMillis: 30, CostPerCall: 2, Reliability: 0.8, Availability: 0.98}}

	seq := EstimateQoS(Sequence{a, b})
	if seq.LatencyMillis != 40 || seq.CostPerCall != 3 {
		t.Errorf("sequence time/cost = %v/%v", seq.LatencyMillis, seq.CostPerCall)
	}
	if math.Abs(seq.Reliability-0.72) > 1e-9 {
		t.Errorf("sequence reliability = %v, want 0.72", seq.Reliability)
	}

	par := EstimateQoS(Parallel{Branches: []Node{a, b}})
	if par.LatencyMillis != 30 {
		t.Errorf("parallel time = %v, want max(10,30)=30", par.LatencyMillis)
	}
	if par.CostPerCall != 3 {
		t.Errorf("parallel cost = %v, want 3", par.CostPerCall)
	}
	if math.Abs(par.Reliability-0.72) > 1e-9 {
		t.Errorf("parallel reliability = %v", par.Reliability)
	}
}

func TestEstimateQoSProperty(t *testing.T) {
	// Random trees: reliability/availability stay in [0,1], latency and
	// cost are non-negative, and a sequence is never faster than its
	// slowest child.
	var build func(rng *rand.Rand, depth int) Node
	build = func(rng *rand.Rand, depth int) Node {
		if depth <= 0 || rng.Intn(3) == 0 {
			return Activity{
				Name: "leaf",
				QoS: qos.Profile{
					LatencyMillis: float64(rng.Intn(100)),
					CostPerCall:   float64(rng.Intn(10)),
					Reliability:   rng.Float64(),
					Availability:  rng.Float64(),
				},
			}
		}
		n := 1 + rng.Intn(3)
		children := make([]Node, n)
		for i := range children {
			children[i] = build(rng, depth-1)
		}
		if rng.Intn(2) == 0 {
			return Sequence(children)
		}
		return Parallel{Branches: children}
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		root := build(rng, 3)
		p := EstimateQoS(root)
		if p.Reliability < 0 || p.Reliability > 1 || p.Availability < 0 || p.Availability > 1 {
			return false
		}
		if p.LatencyMillis < 0 || p.CostPerCall < 0 {
			return false
		}
		// Wrapping in a sequence with a zero-cost activity preserves
		// the estimate.
		identity := Activity{Name: "id", QoS: qos.Profile{Reliability: 1, Availability: 1}}
		q := EstimateQoS(Sequence{root, identity})
		return q.LatencyMillis == p.LatencyMillis && math.Abs(q.Reliability-p.Reliability) < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestValidateAndActivities(t *testing.T) {
	good := Sequence{
		Activity{Name: "a", Invoke: appendStep("A")},
		Parallel{Branches: []Node{
			Activity{Name: "b", Invoke: appendStep("B")},
			Activity{Name: "c", Invoke: appendStep("C")},
		}},
	}
	if err := Validate(good); err != nil {
		t.Errorf("validate good: %v", err)
	}
	names := Activities(good)
	if fmt.Sprint(names) != "[a b c]" {
		t.Errorf("activities = %v", names)
	}
	if err := Validate(Sequence{Activity{Name: ""}}); err == nil {
		t.Error("unnamed activity should fail validation")
	}
	if err := Validate(Sequence{Activity{Name: "x"}}); err == nil {
		t.Error("invoker-less activity should fail validation")
	}
	if err := Validate(nil); err == nil {
		t.Error("nil node should fail validation")
	}
}

func TestRunNilAndEmptyNodes(t *testing.T) {
	e := NewEngine()
	if _, err := e.Run(context.Background(), nil, nil); err == nil {
		t.Error("nil node should error")
	}
	out, err := e.Run(context.Background(), Parallel{}, []byte("in"))
	if err != nil || string(out) != "in" {
		t.Errorf("empty parallel = %q, %v", out, err)
	}
	out, err = e.Run(context.Background(), Sequence{}, []byte("in"))
	if err != nil || string(out) != "in" {
		t.Errorf("empty sequence = %q, %v", out, err)
	}
}
