// Package workflow implements the Web-process composition layer the
// paper's introduction motivates ("the downtime of services can easily
// incapacitate the completion of running business processes") and its
// references [10,11] formalize: processes composed of semantic service
// invocations, executed with sequential and parallel control flow, and
// analyzed with Cardoso's stepwise QoS reduction algebra (time and
// cost aggregate additively in sequences, reliability and availability
// multiplicatively; parallel blocks take the slowest branch's time).
package workflow

import (
	"bytes"
	"context"
	"fmt"
	"sync"

	"whisper/internal/qos"
)

// Invoker executes one service operation; in Whisper it is typically
// Service.Invoke or SWSProxy.Invoke wrapped in a closure.
type Invoker func(ctx context.Context, input []byte) ([]byte, error)

// Node is a process-tree node: Activity, Sequence or Parallel.
type Node interface {
	// node is the sealed-interface marker.
	node()
}

// Activity is a leaf: one service invocation with its advertised QoS.
type Activity struct {
	// Name identifies the activity in errors and traces.
	Name string
	// Invoke performs the work.
	Invoke Invoker
	// QoS is the activity's advertised profile, used by EstimateQoS.
	QoS qos.Profile
}

func (Activity) node() {}

// Sequence executes children in order, piping each output into the
// next child's input.
type Sequence []Node

func (Sequence) node() {}

// Parallel executes children concurrently on the same input and joins
// their outputs.
type Parallel struct {
	// Branches run concurrently.
	Branches []Node
	// Join merges branch outputs in branch order; nil concatenates.
	Join func(outputs [][]byte) []byte
}

func (Parallel) node() {}

// TraceEntry records one executed activity.
type TraceEntry struct {
	Activity string
	Err      error
}

// Engine executes process trees.
type Engine struct {
	mu    sync.Mutex
	trace []TraceEntry
}

// NewEngine creates an engine.
func NewEngine() *Engine { return &Engine{} }

// Trace returns the executed activities in completion order.
func (e *Engine) Trace() []TraceEntry {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]TraceEntry(nil), e.trace...)
}

// Run executes the process on the input and returns the final output.
// The first failing activity aborts the process (its error is
// wrapped with the activity name); parallel siblings are cancelled.
func (e *Engine) Run(ctx context.Context, root Node, input []byte) ([]byte, error) {
	return e.run(ctx, root, input)
}

func (e *Engine) run(ctx context.Context, n Node, input []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("workflow: %w", err)
	}
	switch node := n.(type) {
	case Activity:
		out, err := node.Invoke(ctx, input)
		e.mu.Lock()
		e.trace = append(e.trace, TraceEntry{Activity: node.Name, Err: err})
		e.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("workflow: activity %q: %w", node.Name, err)
		}
		return out, nil
	case Sequence:
		cur := input
		for _, child := range node {
			out, err := e.run(ctx, child, cur)
			if err != nil {
				return nil, err
			}
			cur = out
		}
		return cur, nil
	case Parallel:
		return e.runParallel(ctx, node, input)
	case nil:
		return nil, fmt.Errorf("workflow: nil node")
	default:
		return nil, fmt.Errorf("workflow: unknown node type %T", n)
	}
}

func (e *Engine) runParallel(ctx context.Context, p Parallel, input []byte) ([]byte, error) {
	if len(p.Branches) == 0 {
		return input, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	outputs := make([][]byte, len(p.Branches))
	errs := make([]error, len(p.Branches))
	var wg sync.WaitGroup
	for i, branch := range p.Branches {
		wg.Add(1)
		go func(i int, branch Node) {
			defer wg.Done()
			out, err := e.run(ctx, branch, input)
			outputs[i] = out
			errs[i] = err
			if err != nil {
				cancel() // abort siblings
			}
		}(i, branch)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if p.Join != nil {
		return p.Join(outputs), nil
	}
	return bytes.Join(outputs, nil), nil
}

// EstimateQoS computes the process's aggregate QoS with the stepwise
// reduction of Cardoso's workflow QoS model (paper refs [10,11]):
//
//	sequence: time += , cost += , reliability *= , availability *=
//	parallel: time = max(branches), cost += , reliability *= , availability *=
func EstimateQoS(n Node) qos.Profile {
	switch node := n.(type) {
	case Activity:
		return node.QoS
	case Sequence:
		out := qos.Profile{Reliability: 1, Availability: 1}
		for _, child := range node {
			p := EstimateQoS(child)
			out.LatencyMillis += p.LatencyMillis
			out.CostPerCall += p.CostPerCall
			out.Reliability *= p.Reliability
			out.Availability *= p.Availability
		}
		return out
	case Parallel:
		out := qos.Profile{Reliability: 1, Availability: 1}
		for _, child := range node.Branches {
			p := EstimateQoS(child)
			if p.LatencyMillis > out.LatencyMillis {
				out.LatencyMillis = p.LatencyMillis
			}
			out.CostPerCall += p.CostPerCall
			out.Reliability *= p.Reliability
			out.Availability *= p.Availability
		}
		return out
	default:
		return qos.Profile{}
	}
}

// Activities returns the process's activity names in tree order
// (validation and documentation).
func Activities(n Node) []string {
	switch node := n.(type) {
	case Activity:
		return []string{node.Name}
	case Sequence:
		var out []string
		for _, child := range node {
			out = append(out, Activities(child)...)
		}
		return out
	case Parallel:
		var out []string
		for _, child := range node.Branches {
			out = append(out, Activities(child)...)
		}
		return out
	default:
		return nil
	}
}

// Validate checks that every activity has a name and an invoker.
func Validate(n Node) error {
	switch node := n.(type) {
	case Activity:
		if node.Name == "" {
			return fmt.Errorf("workflow: activity without name")
		}
		if node.Invoke == nil {
			return fmt.Errorf("workflow: activity %q without invoker", node.Name)
		}
		return nil
	case Sequence:
		for _, child := range node {
			if err := Validate(child); err != nil {
				return err
			}
		}
		return nil
	case Parallel:
		for _, child := range node.Branches {
			if err := Validate(child); err != nil {
				return err
			}
		}
		return nil
	case nil:
		return fmt.Errorf("workflow: nil node")
	default:
		return fmt.Errorf("workflow: unknown node type %T", n)
	}
}
