package proxy

import (
	"strings"
	"testing"

	"whisper/internal/ontology"
)

func TestIdentityTranslator(t *testing.T) {
	var tr IdentityTranslator
	in := []byte("<X><Y>1</Y></X>")
	out, err := tr.TranslateResponse(ontology.Signature{}, ontology.Signature{}, in)
	if err != nil || string(out) != string(in) {
		t.Errorf("out = %q, %v", out, err)
	}
}

func TestElementRenameTranslator(t *testing.T) {
	tr := &ElementRenameTranslator{ElementForConcept: map[string]string{
		ontology.ConceptStudentInfo: "StudentInfo",
	}}
	requested := ontology.Signature{Outputs: []string{ontology.ConceptStudentInfo}}
	advertised := ontology.Signature{Outputs: []string{ontology.UniversityNS + "#StudentRecord"}}

	in := []byte(`<StudentRecord id="7"><Name>Ana</Name></StudentRecord>`)
	out, err := tr.TranslateResponse(requested, advertised, in)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	s := string(out)
	if !strings.HasPrefix(s, "<StudentInfo") || !strings.HasSuffix(s, "</StudentInfo>") {
		t.Errorf("root not renamed: %q", s)
	}
	if !strings.Contains(s, `id="7"`) || !strings.Contains(s, "<Name>Ana</Name>") {
		t.Errorf("content lost: %q", s)
	}
}

func TestElementRenameTranslatorNoMapping(t *testing.T) {
	tr := &ElementRenameTranslator{ElementForConcept: map[string]string{}}
	in := []byte("<A/>")
	out, err := tr.TranslateResponse(
		ontology.Signature{Outputs: []string{"http://x#Y"}}, ontology.Signature{}, in)
	if err != nil || string(out) != "<A/>" {
		t.Errorf("out = %q, %v", out, err)
	}
}

func TestElementRenameTranslatorEmptyPayload(t *testing.T) {
	tr := &ElementRenameTranslator{ElementForConcept: map[string]string{"c": "X"}}
	out, err := tr.TranslateResponse(ontology.Signature{Outputs: []string{"c"}}, ontology.Signature{}, nil)
	if err != nil || out != nil {
		t.Errorf("out = %q, %v", out, err)
	}
}

func TestRenameRootNested(t *testing.T) {
	out, err := renameRoot([]byte("<A><A>inner</A></A>"), "B")
	if err != nil {
		t.Fatalf("rename: %v", err)
	}
	s := string(out)
	if !strings.HasPrefix(s, "<B>") || !strings.HasSuffix(s, "</B>") {
		t.Errorf("outer not renamed: %q", s)
	}
	if !strings.Contains(s, "<A>inner</A>") {
		t.Errorf("inner element must keep its name: %q", s)
	}
}

func TestMappingTranslatorStructural(t *testing.T) {
	tr := &MappingTranslator{ForOutput: map[string]SchemaMapping{
		ontology.ConceptStudentInfo: {
			Root: "StudentInfo",
			Elements: map[string]string{
				"FullName":  "Name",
				"Programme": "Program",
			},
		},
	}}
	requested := ontology.Signature{Outputs: []string{ontology.ConceptStudentInfo}}
	in := []byte(`<StudentRecord id="9"><FullName>Rui Costa</FullName><Programme>Design</Programme><Year>2</Year></StudentRecord>`)
	out, err := tr.TranslateResponse(requested, ontology.Signature{}, in)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	s := string(out)
	for _, want := range []string{
		"<StudentInfo", "</StudentInfo>",
		"<Name>Rui Costa</Name>",
		"<Program>Design</Program>",
		"<Year>2</Year>", // unmapped elements pass through
		`id="9"`,         // attributes preserved
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q: %s", want, s)
		}
	}
	if strings.Contains(s, "FullName") || strings.Contains(s, "StudentRecord") {
		t.Errorf("source names leaked: %s", s)
	}
}

func TestMappingTranslatorNoMappingPassThrough(t *testing.T) {
	tr := &MappingTranslator{ForOutput: map[string]SchemaMapping{}}
	in := []byte("<A><B>x</B></A>")
	out, err := tr.TranslateResponse(ontology.Signature{Outputs: []string{"http://x#Y"}}, ontology.Signature{}, in)
	if err != nil || string(out) != string(in) {
		t.Errorf("out = %q, %v", out, err)
	}
}

func TestMappingTranslatorEmptyPayload(t *testing.T) {
	tr := &MappingTranslator{ForOutput: map[string]SchemaMapping{"c": {Root: "X"}}}
	out, err := tr.TranslateResponse(ontology.Signature{Outputs: []string{"c"}}, ontology.Signature{}, nil)
	if err != nil || out != nil {
		t.Errorf("out = %q, %v", out, err)
	}
}

func TestMappingTranslatorKeepsRootWhenUnset(t *testing.T) {
	tr := &MappingTranslator{ForOutput: map[string]SchemaMapping{
		"c": {Elements: map[string]string{"Old": "New"}},
	}}
	out, err := tr.TranslateResponse(ontology.Signature{Outputs: []string{"c"}}, ontology.Signature{}, []byte("<Keep><Old>1</Old></Keep>"))
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	s := string(out)
	if !strings.HasPrefix(s, "<Keep>") || !strings.Contains(s, "<New>1</New>") {
		t.Errorf("out = %q", s)
	}
}
