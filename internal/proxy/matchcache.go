package proxy

import (
	"sort"
	"strings"
	"sync"

	"whisper/internal/ontology"
)

// matchCache memoises matchLocal results so repeated invocations and
// failover re-binds skip re-running the reasoner over every semantic
// advertisement. Entries are keyed by the requested signature's
// (action, inputs, outputs) concept triple; the whole cache is keyed
// by the discovery cache generation and the reasoner (ontology)
// version, so any advertisement publish/flush/expiry or ontology
// recompilation invalidates every memoised result at once — semantic
// matches depend on the full advertisement set, not just the entries
// they returned, so per-key invalidation would serve stale misses.
type matchCache struct {
	mu      sync.Mutex
	gen     uint64
	version uint64
	entries map[string][]GroupMatch

	hits, misses, invalidations uint64
}

// MatchCacheStats snapshots the semantic match cache for
// introspection (peerctl cache).
type MatchCacheStats struct {
	// Entries is the number of memoised signatures.
	Entries int
	// Hits and Misses count lookups served from / past the cache.
	Hits, Misses uint64
	// Invalidations counts whole-cache flushes caused by discovery
	// generation or ontology version changes.
	Invalidations uint64
}

func newMatchCache() *matchCache {
	return &matchCache{entries: make(map[string][]GroupMatch)}
}

// sigKey canonicalises a signature: concept order within inputs and
// outputs does not affect matching, so sorted copies make equivalent
// signatures share one entry.
func sigKey(sig ontology.Signature) string {
	var b strings.Builder
	b.WriteString(sig.Action)
	joinSorted := func(sep byte, ss []string) {
		b.WriteByte(sep)
		if len(ss) > 1 {
			ss = append([]string(nil), ss...)
			sort.Strings(ss)
		}
		for i, s := range ss {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(s)
		}
	}
	joinSorted('\x00', sig.Inputs)
	joinSorted('\x01', sig.Outputs)
	return b.String()
}

// validateLocked flushes the cache when the world it was computed
// against (advertisement set generation, ontology version) has moved.
func (c *matchCache) validateLocked(gen, version uint64) {
	if c.gen == gen && c.version == version {
		return
	}
	if len(c.entries) > 0 {
		c.entries = make(map[string][]GroupMatch)
		c.invalidations++
	}
	c.gen, c.version = gen, version
}

// get returns a copy of the memoised matches for the key, valid at
// (gen, version). Copying matters: rank sorts the returned slice in
// place, and the cached backing array must stay untouched so
// concurrent readers never race.
func (c *matchCache) get(key string, gen, version uint64) ([]GroupMatch, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.validateLocked(gen, version)
	cached, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	return append([]GroupMatch(nil), cached...), true
}

// put memoises matches computed at (gen, version). Results are only
// stored while the cache is still validated at that same world — if
// an advertisement arrived or the ontology changed while the reasoner
// ran, the result is discarded rather than cached stale. The stored
// slice is a private copy for the same reason get copies on the way
// out.
func (c *matchCache) put(key string, gen, version uint64, matches []GroupMatch) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != gen || c.version != version {
		return
	}
	c.entries[key] = append([]GroupMatch(nil), matches...)
}

// stats snapshots the cache counters.
func (c *matchCache) stats() MatchCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return MatchCacheStats{
		Entries:       len(c.entries),
		Hits:          c.hits,
		Misses:        c.misses,
		Invalidations: c.invalidations,
	}
}
