package proxy

import (
	"sort"
	"strings"
	"sync"

	"whisper/internal/ontology"
)

// matchCache memoises matchLocal results so repeated invocations and
// failover re-binds skip re-running the reasoner over every semantic
// advertisement. Entries are keyed by the requested signature's
// (action, inputs, outputs) concept triple.
//
// Invalidation is two-tier, mirroring the discovery cache's split
// generations. Publishes and explicit flushes (the membership
// generation) flush the whole cache: a new advertisement can turn any
// memoised miss into a hit, so per-key invalidation would serve stale
// misses. Expiry, however, only ever removes advertisements — it can
// only invalidate results that contained the expired entry — so each
// memoised result carries the expiry-partition generations of the
// advertisements it holds and is evicted individually when one of
// those partitions moves. A hot shard churning through thousands of
// lease expiries no longer wipes every memoised match in the fleet.
type matchCache struct {
	mu      sync.Mutex
	gen     uint64
	version uint64
	entries map[string]*matchEntry

	hits, misses, invalidations, partitionEvictions uint64
}

// matchEntry is one memoised result plus the expiry-partition stamps
// it was computed against.
type matchEntry struct {
	matches []GroupMatch
	parts   []partStamp
}

// partStamp records one discovery expiry partition's generation at
// memoisation time.
type partStamp struct {
	part uint32
	gen  uint64
}

// MatchCacheStats snapshots the semantic match cache for
// introspection (peerctl cache).
type MatchCacheStats struct {
	// Entries is the number of memoised signatures.
	Entries int
	// Hits and Misses count lookups served from / past the cache.
	Hits, Misses uint64
	// Invalidations counts whole-cache flushes caused by discovery
	// membership generation or ontology version changes.
	Invalidations uint64
	// PartitionEvictions counts single results evicted because an
	// expiry partition they depended on moved.
	PartitionEvictions uint64
}

func newMatchCache() *matchCache {
	return &matchCache{entries: make(map[string]*matchEntry)}
}

// sigKey canonicalises a signature: concept order within inputs and
// outputs does not affect matching, so sorted copies make equivalent
// signatures share one entry.
func sigKey(sig ontology.Signature) string {
	var b strings.Builder
	b.WriteString(sig.Action)
	joinSorted := func(sep byte, ss []string) {
		b.WriteByte(sep)
		if len(ss) > 1 {
			ss = append([]string(nil), ss...)
			sort.Strings(ss)
		}
		for i, s := range ss {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(s)
		}
	}
	joinSorted('\x00', sig.Inputs)
	joinSorted('\x01', sig.Outputs)
	return b.String()
}

// validateLocked flushes the cache when the coarse world it was
// computed against (membership generation, ontology version) moved.
func (c *matchCache) validateLocked(gen, version uint64) {
	if c.gen == gen && c.version == version {
		return
	}
	if len(c.entries) > 0 {
		c.entries = make(map[string]*matchEntry)
		c.invalidations++
	}
	c.gen, c.version = gen, version
}

// get returns a copy of the memoised matches for the key, valid at
// (gen, version) and under the current expiry partition generations
// reported by partGen. Copying matters: rank sorts the returned slice
// in place, and the cached backing array must stay untouched so
// concurrent readers never race.
func (c *matchCache) get(key string, gen, version uint64, partGen func(uint32) uint64) ([]GroupMatch, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.validateLocked(gen, version)
	cached, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	for _, ps := range cached.parts {
		if partGen(ps.part) != ps.gen {
			delete(c.entries, key)
			c.partitionEvictions++
			c.misses++
			return nil, false
		}
	}
	c.hits++
	return append([]GroupMatch(nil), cached.matches...), true
}

// put memoises matches computed at (gen, version), stamped with the
// current generation of every expiry partition the result's
// advertisements hash to. Results are only stored while the cache is
// still validated at that same world — if an advertisement arrived or
// the ontology changed while the reasoner ran, the result is discarded
// rather than cached stale. The stored slice is a private copy for the
// same reason get copies on the way out.
func (c *matchCache) put(key string, gen, version uint64, matches []GroupMatch, partOf func(GroupMatch) uint32, partGen func(uint32) uint64) {
	var parts []partStamp
	for _, m := range matches {
		p := partOf(m)
		dup := false
		for _, ps := range parts {
			if ps.part == p {
				dup = true
				break
			}
		}
		if !dup {
			parts = append(parts, partStamp{part: p, gen: partGen(p)})
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != gen || c.version != version {
		return
	}
	c.entries[key] = &matchEntry{
		matches: append([]GroupMatch(nil), matches...),
		parts:   parts,
	}
}

// stats snapshots the cache counters.
func (c *matchCache) stats() MatchCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return MatchCacheStats{
		Entries:            len(c.entries),
		Hits:               c.hits,
		Misses:             c.misses,
		Invalidations:      c.invalidations,
		PartitionEvictions: c.partitionEvictions,
	}
}
