package proxy

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"whisper/internal/loadctl"
	"whisper/internal/p2p"
	"whisper/internal/qos"
)

// newQueryPeer starts a bare peer for resolver introspection queries.
func newQueryPeer(t *testing.T, f *fixture) *p2p.Peer {
	t.Helper()
	client := p2p.NewPeer("peerctl", f.gen.New(p2p.PeerIDKind), f.port(t, "peerctl"))
	client.Start()
	t.Cleanup(func() { _ = client.Close() })
	return client
}

// containsLine reports whether one of report's lines starts with want.
func containsLine(report, want string) bool {
	for _, line := range strings.Split(report, "\n") {
		if strings.HasPrefix(line, want) {
			return true
		}
	}
	return false
}

// saturatedController builds a one-slot, no-queue admission pipeline
// and occupies its only slot, so every non-probe admission is shed.
func saturatedController(t *testing.T) (*loadctl.Controller, loadctl.ReleaseFunc) {
	t.Helper()
	adm := loadctl.NewController(loadctl.Config{
		InitialLimit: 1, MinLimit: 1, MaxLimit: 1, MaxQueue: -1,
	})
	hold, err := adm.Admit(context.Background(), "holder", false)
	if err != nil {
		t.Fatalf("saturating admit: %v", err)
	}
	return adm, hold
}

// TestAdmissionShedsBeforePipeIO asserts the pipeline order the DESIGN
// S20 diagram promises: a rejection happens before any binding lookup
// or pipe call, and a shed is not a breaker failure.
func TestAdmissionShedsBeforePipeIO(t *testing.T) {
	f := newFixture(t)
	f.addGroup(t, "students", studentSig(), qos.Profile{Reliability: 0.99}, 2, echo("students"))
	adm := loadctl.NewController(loadctl.Config{InitialLimit: 1, MinLimit: 1, MaxLimit: 1, MaxQueue: -1})
	p := f.addProxy(t, Config{Admission: adm})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := p.Invoke(ctx, studentSig(), "StudentInformation", []byte("S1")); err != nil {
		t.Fatalf("warm invoke: %v", err)
	}
	attempted := p.Health().Get("calls.attempted")
	if attempted == 0 {
		t.Fatal("warm invoke should have attempted a call")
	}

	hold, err := adm.Admit(ctx, "holder", false)
	if err != nil {
		t.Fatalf("saturating admit: %v", err)
	}
	defer hold(time.Millisecond, false)

	_, err = p.Invoke(ctx, studentSig(), "StudentInformation", []byte("S2"))
	if !errors.Is(err, loadctl.ErrRejected) {
		t.Fatalf("want loadctl.ErrRejected, got %v", err)
	}
	if got := p.Health().Get("calls.attempted"); got != attempted {
		t.Fatalf("shed request reached the wire: %d pipe calls, want %d", got, attempted)
	}
	if got := p.Health().Get("loadctl.shed"); got != 1 {
		t.Fatalf("loadctl.shed = %d, want 1", got)
	}
	// A shed never counts against the group's breaker.
	for gid, state := range p.BreakerStates() {
		if state != BreakerClosed {
			t.Fatalf("breaker %s moved to %s on a shed", gid, state)
		}
	}
}

// TestAdmissionShedNotRetriedAcrossGroups asserts a shed returns
// immediately instead of falling through to other matching groups —
// re-driving a rejected request would feed the overload.
func TestAdmissionShedNotRetriedAcrossGroups(t *testing.T) {
	f := newFixture(t)
	f.addGroup(t, "students-a", studentSig(), qos.Profile{Reliability: 0.99}, 2, echo("a"))
	f.addGroup(t, "students-b", studentSig(), qos.Profile{Reliability: 0.99}, 2, echo("b"))
	adm, hold := saturatedController(t)
	defer hold(time.Millisecond, false)
	p := f.addProxy(t, Config{Admission: adm})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := p.Invoke(ctx, studentSig(), "StudentInformation", []byte("S1"))
	if !errors.Is(err, loadctl.ErrRejected) {
		t.Fatalf("want loadctl.ErrRejected, got %v", err)
	}
	if got := p.Health().Get("loadctl.shed"); got != 1 {
		t.Fatalf("loadctl.shed = %d: the shed was re-driven across groups, want exactly 1", got)
	}
	if got := p.Health().Get("calls.attempted"); got != 0 {
		t.Fatalf("shed request reached the wire %d times", got)
	}
}

// TestHalfOpenProbeBypassesAdmission asserts the one admission
// exception: when a group's breaker is due a half-open probe, the
// probe is admitted even through a fully saturated pipeline — it is
// the only way the breaker can learn the group recovered.
func TestHalfOpenProbeBypassesAdmission(t *testing.T) {
	f := newFixture(t)
	peers := f.addGroup(t, "students", studentSig(), qos.Profile{Reliability: 0.99}, 2, echo("students"))
	adm := loadctl.NewController(loadctl.Config{InitialLimit: 1, MinLimit: 1, MaxLimit: 1, MaxQueue: -1})
	p := f.addProxy(t, Config{
		Admission:        adm,
		BreakerThreshold: 1,
		BreakerCooldown:  100 * time.Millisecond,
		MaxAttempts:      1,
		CallTimeout:      300 * time.Millisecond,
		BindTimeout:      300 * time.Millisecond,
		RetryDelay:       10 * time.Millisecond,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := p.Invoke(ctx, studentSig(), "StudentInformation", []byte("S1")); err != nil {
		t.Fatalf("warm invoke: %v", err)
	}

	// Open the breaker: partition every replica and fail one attempt.
	for _, bp := range peers {
		f.net.Partition(p.Addr(), bp.Addr())
	}
	if _, err := p.Invoke(ctx, studentSig(), "StudentInformation", []byte("S2")); err == nil {
		t.Fatal("partitioned invoke should fail")
	}
	if p.Health().Get("breaker.opened") == 0 {
		t.Fatal("breaker never opened")
	}

	// Saturate admission, heal, and wait out the cooldown: the next
	// invoke is the group's recovery probe.
	hold, err := adm.Admit(ctx, "holder", false)
	if err != nil {
		t.Fatalf("saturating admit: %v", err)
	}
	defer hold(time.Millisecond, false)
	for _, bp := range peers {
		f.net.Heal(p.Addr(), bp.Addr())
	}
	time.Sleep(150 * time.Millisecond)

	out, err := p.Invoke(ctx, studentSig(), "StudentInformation", []byte("S3"))
	if err != nil {
		t.Fatalf("probe must bypass the saturated pipeline: %v", err)
	}
	if len(out) == 0 {
		t.Fatal("probe returned no payload")
	}
	if got := adm.Snapshot().Probes; got < 1 {
		t.Fatalf("probes = %d, want ≥1", got)
	}
}

// TestLoadctlStatusResolver exercises the live introspection surface
// behind peerctl loadctl.
func TestLoadctlStatusResolver(t *testing.T) {
	f := newFixture(t)
	f.addGroup(t, "students", studentSig(), qos.Profile{Reliability: 0.99}, 2, echo("students"))
	adm := loadctl.NewController(loadctl.Config{Rate: 100, Burst: 10, InitialLimit: 4})
	p := f.addProxy(t, Config{Admission: adm})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := p.Invoke(loadctl.ContextWithClient(ctx, "alice"), studentSig(), "StudentInformation", []byte("S1")); err != nil {
		t.Fatalf("invoke: %v", err)
	}

	client := newQueryPeer(t, f)
	status, err := QueryLoadctl(ctx, client, p.Addr())
	if err != nil {
		t.Fatalf("query loadctl: %v", err)
	}
	for _, want := range []string{"enabled true", "limit 4.00", "admitted 1", "bucket.alice"} {
		if !containsLine(status, want) {
			t.Fatalf("status missing %q:\n%s", want, status)
		}
	}

	// A proxy without admission control reports it plainly.
	plain := f.addProxy(t, Config{})
	status, err = QueryLoadctl(ctx, client, plain.Addr())
	if err != nil {
		t.Fatalf("query plain proxy: %v", err)
	}
	if !containsLine(status, "enabled false") {
		t.Fatalf("want 'enabled false', got:\n%s", status)
	}
}
