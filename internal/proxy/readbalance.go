package proxy

import (
	"context"
	"fmt"
	"sync"
	"time"

	"whisper/internal/bpeer"
	"whisper/internal/p2p"
	"whisper/internal/qos"
)

// Read balancing: read-only operations on journaling groups are served
// by ANY replica behind the read-index barrier (bpeer/read.go), so the
// proxy spreads them across the group's semantically equal members.
// Replicas are picked by weighted random draw over their QoS scores
// (§2.4 latency/reliability/availability blended with the tracker's
// observations), so a slow or flaky replica organically receives less
// read traffic without being cut off entirely. Each replica carries
// its own circuit breaker: an open breaker on one replica redirects
// the read to its siblings rather than failing the call.

// readReplica is one member of a group's read set.
type readReplica struct {
	addr string
	pipe *p2p.PipeAdvertisement
	br   *breaker
}

// readBalancer is a group's read-replica set. It persists across
// rebuilds (the per-replica breakers keep their failure history even
// when the pipe set is refreshed from the rendezvous).
type readBalancer struct {
	mu       sync.Mutex
	replicas []*readReplica
	// breakers survives replica churn keyed by address, so a replica
	// rediscovered after a crash re-enters half-open, not closed.
	breakers map[string]*breaker
}

func newReadBalancer() *readBalancer {
	return &readBalancer{breakers: make(map[string]*breaker)}
}

// dropAllPipes empties the replica set (breaker history is kept); the
// next read rebuilds it from the rendezvous.
func (rb *readBalancer) dropAllPipes() {
	rb.mu.Lock()
	rb.replicas = nil
	rb.mu.Unlock()
}

// dropPipe removes one failed replica from the set.
func (rb *readBalancer) dropPipe(addr string) {
	rb.mu.Lock()
	kept := rb.replicas[:0]
	for _, r := range rb.replicas {
		if r.addr != addr {
			kept = append(kept, r)
		}
	}
	rb.replicas = kept
	rb.mu.Unlock()
}

// snapshot returns the current replica list.
func (rb *readBalancer) snapshot() []*readReplica {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return append([]*readReplica(nil), rb.replicas...)
}

// readBalancerFor returns the group's balancer, creating it on first
// use.
func (p *SWSProxy) readBalancerFor(gid p2p.ID) *readBalancer {
	p.mu.Lock()
	defer p.mu.Unlock()
	rb, ok := p.reads[gid]
	if !ok {
		rb = newReadBalancer()
		p.reads[gid] = rb
	}
	return rb
}

// replicaBreaker returns the balancer's breaker for addr, minting one
// with the proxy's group-breaker tuning on first sight. Caller holds
// rb.mu. Returns nil when circuit breaking is disabled.
func (p *SWSProxy) replicaBreaker(rb *readBalancer, addr string) *breaker {
	if p.cfg.BreakerThreshold < 0 {
		return nil
	}
	br, ok := rb.breakers[addr]
	if !ok {
		br = newBreaker(p.cfg.BreakerThreshold, p.cfg.BreakerCooldown, func(_, to BreakerState) {
			switch to {
			case BreakerOpen:
				p.health.Add("read.breaker.opened", 1)
			case BreakerHalfOpen:
				p.health.Add("read.breaker.half_open", 1)
			case BreakerClosed:
				p.health.Add("read.breaker.closed", 1)
			}
		})
		rb.breakers[addr] = br
	}
	return br
}

// refreshReadReplicas rebuilds the group's read set from the
// rendezvous membership, querying each member for its service pipe.
func (p *SWSProxy) refreshReadReplicas(ctx context.Context, gid p2p.ID, rb *readBalancer) error {
	bindCtx, cancel := context.WithTimeout(ctx, p.cfg.BindTimeout)
	defer cancel()
	members, err := p.memberAddrs(bindCtx, gid)
	if err != nil {
		return err
	}
	var replicas []*readReplica
	var lastErr error
	for _, addr := range members {
		pipe, err := bpeer.QueryServicePipe(bindCtx, p.bindRes, addr)
		if err != nil {
			lastErr = err
			continue
		}
		replicas = append(replicas, &readReplica{addr: pipe.Addr, pipe: pipe})
	}
	if len(replicas) == 0 {
		if lastErr != nil {
			return fmt.Errorf("proxy: no reachable read replicas: %w", lastErr)
		}
		return ErrNoCoordinator
	}
	rb.mu.Lock()
	for _, r := range replicas {
		r.br = p.replicaBreaker(rb, r.addr)
	}
	rb.replicas = replicas
	rb.mu.Unlock()
	return nil
}

// pickReadReplica draws one replica, weighted by its QoS score, among
// those whose breakers admit an attempt now. The advertised profile is
// the group's (replicas advertise one aggregate §2.4 profile); what
// differentiates siblings is the tracker's per-address observations —
// a replica that has been answering slowly or failing scores lower and
// is drawn less often. Returns nil when every replica is condemned.
func (p *SWSProxy) pickReadReplica(rb *readBalancer, profile qos.Profile, now time.Time) *readReplica {
	replicas := rb.snapshot()
	type weighted struct {
		rep   *readReplica
		score float64
	}
	admitted := make([]weighted, 0, len(replicas))
	total := 0.0
	for _, r := range replicas {
		if r.br != nil && !r.br.Allow(now) {
			// Open breaker on this replica: redirect its share of reads
			// to the siblings instead of failing the call.
			p.health.Add("read.replica_skipped", 1)
			continue
		}
		score := p.sel.Score(qos.Candidate{Peer: r.addr, Profile: profile, SemanticScore: 1})
		admitted = append(admitted, weighted{rep: r, score: score})
		total += score
	}
	if len(admitted) == 0 {
		return nil
	}
	if total <= 0 {
		// Degenerate scores: fall back to a uniform draw.
		p.mu.Lock()
		i := p.rng.Intn(len(admitted))
		p.mu.Unlock()
		return admitted[i].rep
	}
	p.mu.Lock()
	draw := p.rng.Float64() * total
	p.mu.Unlock()
	for _, w := range admitted {
		draw -= w.score
		if draw <= 0 {
			return w.rep
		}
	}
	return admitted[len(admitted)-1].rep
}

// invokeReadBalanced drives one marked read through the replica set:
// pick a replica QoS-weighted, call it, and on infrastructure failure
// redirect to a sibling. Signature-compatible with invokeAttempts so
// invokeGroup can swap it in under the same admission envelope.
func (p *SWSProxy) invokeReadBalanced(ctx context.Context, adv *bpeer.SemanticAdvertisement, br *breaker, req []byte) ([]byte, error) {
	rb := p.readBalancerFor(adv.GID)
	var lastErr error = ErrNoCoordinator
	rebind := false
	for attempt := 0; attempt < p.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("proxy: invoke: %w", err)
		}
		if br != nil && !br.Allow(time.Now()) {
			p.health.Add("breaker.rejected", 1)
			return nil, fmt.Errorf("proxy: group %s: %w", adv.GID, ErrCircuitOpen)
		}
		bindName := "bind"
		if rebind {
			bindName = "re-bind"
		}
		if len(rb.snapshot()) == 0 {
			bctx, bspan := p.cfg.Tracer.StartSpan(ctx, bindName)
			err := p.refreshReadReplicas(bctx, adv.GID, rb)
			bspan.EndWith(err)
			if err != nil {
				lastErr = err
				br.failure()
				p.sleep(ctx, attempt)
				continue
			}
		}
		rep := p.pickReadReplica(rb, adv.QoS, time.Now())
		if rep == nil {
			// Every replica's breaker is open: wait out a cooldown slice
			// and retry (the group breaker tracks overall failure).
			lastErr = fmt.Errorf("proxy: group %s: %w (all read replicas)", adv.GID, ErrCircuitOpen)
			br.failure()
			p.sleep(ctx, attempt)
			continue
		}

		start := time.Now()
		cctx, cspan := p.cfg.Tracer.StartSpan(ctx, "call")
		cspan.SetAttr("replica", rep.addr)
		cspan.SetAttr("read", "balanced")
		callCtx, cancel := context.WithTimeout(cctx, p.cfg.CallTimeout)
		p.health.Add("calls.attempted", 1)
		p.health.Add("reads.balanced", 1)
		raw, err := p.pipes.Call(callCtx, rep.pipe, req)
		cancel()
		if err != nil {
			// Transport failure: the replica is likely down. Drop it and
			// redirect to a sibling immediately.
			cspan.EndWith(err)
			rebind = true
			rb.dropPipe(rep.addr)
			p.tracker.Observe(rep.addr, time.Since(start), false)
			rep.br.failure()
			br.failure()
			lastErr = fmt.Errorf("proxy: call read replica %s: %w", rep.addr, err)
			continue
		}
		resp, err := bpeer.DecodeResponseFull(raw)
		if err != nil {
			cspan.EndWith(err)
			rebind = true
			rb.dropPipe(rep.addr)
			rep.br.failure()
			br.failure()
			lastErr = err
			continue
		}
		cspan.SetAttr("status", resp.Status)
		cspan.End()
		switch resp.Status {
		case "ok":
			p.tracker.Observe(rep.addr, time.Since(start), true)
			rep.br.success()
			br.success()
			p.observeRead(rep.addr, resp.ReadIndex, resp.ReadSeq)
			return resp.Payload, nil
		case "redirect":
			// The replica did not recognise the op as read-only (stale
			// or divergent ReadOnlyOps config): drop it from the read
			// set and try a sibling.
			rebind = true
			rb.dropPipe(rep.addr)
			br.success()
			lastErr = fmt.Errorf("proxy: replica %s refused read for %s", rep.addr, adv.GID)
		case "error":
			p.tracker.Observe(rep.addr, time.Since(start), false)
			if isInfrastructureError(resp.Error) {
				// Read index unavailable / mid-election: redirect to a
				// sibling after a short pause.
				rebind = true
				rep.br.failure()
				br.failure()
				lastErr = fmt.Errorf("proxy: read replica %s: %s", rep.addr, resp.Error)
				p.sleep(ctx, attempt)
				continue
			}
			rep.br.success()
			br.success()
			return nil, &ApplicationError{Group: adv.GID, Msg: resp.Error}
		default:
			lastErr = fmt.Errorf("proxy: unknown response status %q", resp.Status)
		}
	}
	return nil, lastErr
}

// observeRead feeds one follower-served read into the health counters
// and the configured ReadObserver (the chaos staleness invariant).
func (p *SWSProxy) observeRead(replica string, readIndex, readSeq uint64) {
	p.health.Add("reads.served", 1)
	if readSeq < readIndex {
		p.health.Add("reads.stale", 1)
	}
	if p.cfg.ReadObserver != nil {
		p.cfg.ReadObserver(replica, readIndex, readSeq)
	}
}
