package proxy

import (
	"testing"

	"whisper/internal/leakcheck"
)

// TestMain fails the package when proxy goroutines (resolver calls,
// re-binding probes) outlive the tests that started them.
func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
