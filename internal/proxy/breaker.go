package proxy

import (
	"sync"
	"time"
)

// BreakerState is the circuit-breaker state for one b-peer group.
type BreakerState int

const (
	// BreakerClosed lets every attempt through (healthy group).
	BreakerClosed BreakerState = iota
	// BreakerOpen fails attempts fast after too many consecutive
	// infrastructure failures (group presumed down).
	BreakerOpen
	// BreakerHalfOpen lets a single probe through after the cooldown;
	// its outcome decides between Closed and Open.
	BreakerHalfOpen
)

// String renders the state for metrics and peerctl.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-group circuit breaker. Only infrastructure failures
// (transport errors, unreachable coordinators, "no coordinator
// elected") count against it; application-level errors prove the group
// is reachable and reset it. All methods are safe for concurrent use.
type breaker struct {
	mu          sync.Mutex
	threshold   int           // consecutive infra failures that open it
	cooldown    time.Duration // open → half-open delay
	state       BreakerState
	consecutive int
	openedAt    time.Time
	probing     bool // a half-open probe is in flight

	// onTransition observes state changes (metrics); called outside
	// the lock.
	onTransition func(from, to BreakerState)
}

func newBreaker(threshold int, cooldown time.Duration, onTransition func(from, to BreakerState)) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, onTransition: onTransition}
}

// Allow reports whether an attempt may proceed now. In the open state
// it fails fast until the cooldown elapses, then admits exactly one
// half-open probe at a time.
func (b *breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	switch b.state {
	case BreakerClosed:
		b.mu.Unlock()
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			b.mu.Unlock()
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		b.mu.Unlock()
		b.notify(BreakerOpen, BreakerHalfOpen)
		return true
	default: // BreakerHalfOpen
		if b.probing {
			b.mu.Unlock()
			return false
		}
		b.probing = true
		b.mu.Unlock()
		return true
	}
}

// Success records a successful attempt (or an application-level answer,
// which equally proves the group reachable) and closes the breaker.
func (b *breaker) Success() {
	b.mu.Lock()
	from := b.state
	b.state = BreakerClosed
	b.consecutive = 0
	b.probing = false
	b.mu.Unlock()
	if from != BreakerClosed {
		b.notify(from, BreakerClosed)
	}
}

// Failure records an infrastructure failure. A failed half-open probe
// reopens immediately; in the closed state the breaker opens once the
// consecutive-failure threshold is reached.
func (b *breaker) Failure(now time.Time) {
	b.mu.Lock()
	b.consecutive++
	from := b.state
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = now
		b.probing = false
	case BreakerClosed:
		if b.consecutive >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = now
		}
	}
	to := b.state
	b.mu.Unlock()
	if from != to {
		b.notify(from, to)
	}
}

// ProbePending reports whether the breaker's next Allow would admit a
// half-open probe: the group is condemned (open past its cooldown, or
// half-open with no probe in flight) and the next attempt is the one
// that decides recovery. The admission controller bypasses every shed
// stage for such attempts — a shed probe would leave the breaker open
// forever. Nil-safe: a nil breaker has no probes.
func (b *breaker) ProbePending(now time.Time) bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		return now.Sub(b.openedAt) >= b.cooldown
	case BreakerHalfOpen:
		return !b.probing
	}
	return false
}

// State returns the current state.
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

func (b *breaker) notify(from, to BreakerState) {
	if b.onTransition != nil {
		b.onTransition(from, to)
	}
}

// failure and success are nil-safe hooks for the invoke loops (a nil
// breaker means circuit breaking is disabled).
func (b *breaker) failure() {
	if b != nil {
		b.Failure(time.Now())
	}
}

func (b *breaker) success() {
	if b != nil {
		b.Success()
	}
}
