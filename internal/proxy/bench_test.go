package proxy

import (
	"fmt"
	"testing"
	"time"

	"whisper/internal/bpeer"
	"whisper/internal/ontology"
	"whisper/internal/p2p"
	"whisper/internal/qos"
	"whisper/internal/simnet"
)

// benchProxy builds a proxy whose local discovery cache holds n
// semantic group advertisements, all matching studentSig. No b-peers
// run: the benchmarks target the discovery + matchmaking path only.
func benchProxy(b *testing.B, n int) *SWSProxy {
	b.Helper()
	net := simnet.NewNetwork(simnet.WithLatency(simnet.ZeroLatency()))
	b.Cleanup(func() { _ = net.Close() })
	port, err := net.NewPort("bench-proxy")
	if err != nil {
		b.Fatal(err)
	}
	p, err := New(port, Config{
		Name:           "bench-proxy",
		RendezvousAddr: "rdv",
		Reasoner:       ontology.NewReasoner(ontology.Combined()),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = p.Close() })
	sig := studentSig()
	for i := 0; i < n; i++ {
		adv := bpeer.NewSemanticAdvertisement(
			p2p.ID(fmt.Sprintf("urn:whisper:bench-g%d", i)),
			fmt.Sprintf("bench-group-%d", i), sig, qos.Profile{})
		if err := p.disco.Publish(adv, time.Hour); err != nil {
			b.Fatal(err)
		}
	}
	return p
}

// BenchmarkSemanticMatchCached is the proxy's steady-state discovery
// path: the signature was matched before, the advertisement set has
// not moved, so the match cache answers without touching the
// reasoner.
func BenchmarkSemanticMatchCached(b *testing.B) {
	p := benchProxy(b, 50)
	sig := studentSig()
	if got := p.matchLocal(sig); len(got) != 50 {
		b.Fatalf("warm-up matched %d groups", len(got))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := p.matchLocal(sig); len(got) != 50 {
			b.Fatalf("matched %d groups", len(got))
		}
	}
}

// BenchmarkSemanticMatchUncached is the cold path the cache
// eliminates: every iteration runs the reasoner over each
// advertisement.
func BenchmarkSemanticMatchUncached(b *testing.B) {
	p := benchProxy(b, 50)
	r := p.Reasoner()
	sig := studentSig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := p.matchUncached(r, sig); len(got) != 50 {
			b.Fatalf("matched %d groups", len(got))
		}
	}
}

// BenchmarkFindPeerGroupAdv is the full local discovery call the
// paper's findPeerGroupAdv pseudocode describes: match (cached) plus
// QoS ranking.
func BenchmarkFindPeerGroupAdv(b *testing.B) {
	p := benchProxy(b, 50)
	sig := studentSig()
	ctx := b.Context()
	if _, err := p.FindPeerGroupAdv(ctx, sig); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.FindPeerGroupAdv(ctx, sig); err != nil {
			b.Fatal(err)
		}
	}
}
