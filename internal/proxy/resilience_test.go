package proxy

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"whisper/internal/bpeer"
	"whisper/internal/p2p"
	"whisper/internal/qos"
	"whisper/internal/replog"
)

// TestInvokeCancelledContextReturnsPromptly: an Invoke whose context is
// already cancelled must not spin through MaxAttempts × RetryDelay —
// the retry loop checks the context before every sleep and the sleep
// itself selects on ctx.Done().
func TestInvokeCancelledContextReturnsPromptly(t *testing.T) {
	f := newFixture(t)
	f.addGroup(t, "students", studentSig(), qos.Profile{}, 1, echo("students"))
	p := f.addProxy(t, Config{
		RetryDelay:  time.Second,
		MaxAttempts: 8,
	})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := p.Invoke(ctx, studentSig(), "StudentInformation", []byte("S1"))
	took := time.Since(start)
	if err == nil {
		t.Fatal("expected an error from a cancelled context")
	}
	if took > 500*time.Millisecond {
		t.Errorf("cancelled Invoke took %v, want a prompt return (8 attempts x 1s would be 8s)", took)
	}
}

// TestInvokeExpiringDeadlineBoundsBackoff: when the group is
// unreachable and the caller's deadline is short, the capped
// exponential backoff must be clipped to the remaining deadline — no
// full MaxAttempts spin past the caller's budget.
func TestInvokeExpiringDeadlineBoundsBackoff(t *testing.T) {
	f := newFixture(t)
	peers := f.addGroup(t, "students", studentSig(), qos.Profile{}, 1, echo("students"))
	p := f.addProxy(t, Config{
		BindTimeout: 100 * time.Millisecond,
		CallTimeout: 100 * time.Millisecond,
		RetryDelay:  time.Second,
		MaxAttempts: 8,
	})
	// Warm the advertisement cache, then partition the proxy from the
	// only replica so every attempt is an infrastructure failure.
	warmCtx, warmCancel := context.WithTimeout(context.Background(), 5*time.Second)
	if _, err := p.Invoke(warmCtx, studentSig(), "StudentInformation", []byte("S0")); err != nil {
		warmCancel()
		t.Fatalf("warm-up: %v", err)
	}
	warmCancel()
	f.net.Partition(p.Addr(), peers[0].Addr())

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := p.Invoke(ctx, studentSig(), "StudentInformation", []byte("S1"))
	took := time.Since(start)
	if err == nil {
		t.Fatal("expected an error while partitioned")
	}
	// Deadline 150ms plus one in-flight bind/call timeout of slack:
	// nowhere near the 8s a full unclipped retry spin would take.
	if took > time.Second {
		t.Errorf("Invoke with a 150ms deadline took %v, want it bounded by the deadline", took)
	}
}

// TestApplicationErrorShortCircuitsFallback: an application-level
// error is an authoritative answer, so the proxy must surface it
// instead of retrying the next matching group.
func TestApplicationErrorShortCircuitsFallback(t *testing.T) {
	f := newFixture(t)
	// The failing group advertises better QoS, so the proxy tries it
	// first; the healthy group must never see the request.
	f.addGroup(t, "students-err", studentSig(),
		qos.Profile{LatencyMillis: 1, Reliability: 0.999, Availability: 0.999}, 1,
		bpeer.HandlerFunc(func(_ context.Context, _ string, _ []byte) ([]byte, error) {
			return nil, errors.New("student not enrolled")
		}))
	var fallbackCalls atomic.Int64
	f.addGroup(t, "students-ok", studentSig(), qos.Profile{}, 1,
		bpeer.HandlerFunc(func(_ context.Context, op string, payload []byte) ([]byte, error) {
			fallbackCalls.Add(1)
			return []byte("ok:" + op + ":" + string(payload)), nil
		}))
	p := f.addProxy(t, Config{})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := p.Invoke(ctx, studentSig(), "StudentInformation", []byte("S1"))
	var appErr *ApplicationError
	if !errors.As(err, &appErr) {
		t.Fatalf("err = %v, want *ApplicationError", err)
	}
	if got := fallbackCalls.Load(); got != 0 {
		t.Errorf("fallback group served %d requests, want 0 (application errors are authoritative)", got)
	}
}

// TestBreakerOpensShedsAndRecovers drives the full circuit-breaker
// cycle: consecutive infrastructure failures open it, an open breaker
// fails fast without new attempts (load shedding), and after the
// cooldown a half-open probe against the healed group closes it again.
func TestBreakerOpensShedsAndRecovers(t *testing.T) {
	f := newFixture(t)
	peers := f.addGroup(t, "students", studentSig(), qos.Profile{}, 1, echo("students"))
	p := f.addProxy(t, Config{
		BindTimeout:      100 * time.Millisecond,
		CallTimeout:      200 * time.Millisecond,
		RetryDelay:       10 * time.Millisecond,
		MaxAttempts:      1,
		BreakerThreshold: 2,
		BreakerCooldown:  300 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if _, err := p.Invoke(ctx, studentSig(), "StudentInformation", []byte("S0")); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	gid := peers[0].GroupID()
	if got := p.BreakerStates()[gid]; got != BreakerClosed {
		t.Fatalf("breaker = %v after success, want closed", got)
	}

	f.net.Partition(p.Addr(), peers[0].Addr())
	// Two consecutive infrastructure failures reach the threshold.
	for i := 0; i < 2; i++ {
		if _, err := p.Invoke(ctx, studentSig(), "StudentInformation", []byte("S1")); err == nil {
			t.Fatal("expected failure while partitioned")
		}
	}
	if got := p.BreakerStates()[gid]; got != BreakerOpen {
		t.Fatalf("breaker = %v after %d failures, want open", got, 2)
	}

	// While open, calls are shed: no new pipe attempts, fast rejection.
	attemptsBefore := p.Health().Get("calls.attempted")
	start := time.Now()
	_, err := p.Invoke(ctx, studentSig(), "StudentInformation", []byte("S2"))
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if took := time.Since(start); took > 100*time.Millisecond {
		t.Errorf("open-breaker rejection took %v, want fast-fail", took)
	}
	if got := p.Health().Get("calls.attempted"); got != attemptsBefore {
		t.Errorf("attempts grew %d -> %d while open, want load shed", attemptsBefore, got)
	}
	if p.Health().Get("breaker.rejected") == 0 {
		t.Error("breaker.rejected not counted")
	}

	// Heal the link; after the cooldown the half-open probe succeeds
	// and the breaker closes.
	f.net.Heal(p.Addr(), peers[0].Addr())
	time.Sleep(350 * time.Millisecond)
	out, err := p.Invoke(ctx, studentSig(), "StudentInformation", []byte("S3"))
	if err != nil {
		t.Fatalf("probe invoke: %v", err)
	}
	if string(out) != "students:StudentInformation:S3" {
		t.Errorf("out = %q", out)
	}
	if got := p.BreakerStates()[gid]; got != BreakerClosed {
		t.Errorf("breaker = %v after successful probe, want closed", got)
	}
	h := p.Health()
	if h.Get("breaker.opened") == 0 || h.Get("breaker.half_open") == 0 || h.Get("breaker.closed") == 0 {
		t.Errorf("transition counters = opened:%d half_open:%d closed:%d, want all > 0",
			h.Get("breaker.opened"), h.Get("breaker.half_open"), h.Get("breaker.closed"))
	}
}

// TestHalfOpenProbeReusesIdempotencyKey: the breaker's half-open probe
// is a re-drive of the same logical call, so it must carry the original
// idempotency key. The first invocation executes but its reply is lost
// (the handler outlives CallTimeout), which opens the breaker; the
// retry after the cooldown is admitted as the half-open probe and —
// because it reuses the key — is answered from the group's journal
// instead of executing the non-idempotent operation a second time.
func TestHalfOpenProbeReusesIdempotencyKey(t *testing.T) {
	f := newFixture(t)
	var execs atomic.Int64
	f.addGroup(t, "payments", studentSig(), qos.Profile{}, 1,
		bpeer.HandlerFunc(func(_ context.Context, op string, payload []byte) ([]byte, error) {
			if execs.Add(1) == 1 {
				// Outlive the client's CallTimeout: the reply is lost,
				// but the operation executes and commits.
				time.Sleep(300 * time.Millisecond)
			}
			return []byte("receipt:" + string(payload)), nil
		}))
	p := f.addProxy(t, Config{
		BindTimeout:      time.Second,
		CallTimeout:      100 * time.Millisecond,
		RetryDelay:       10 * time.Millisecond,
		MaxAttempts:      1,
		BreakerThreshold: 1,
		BreakerCooldown:  400 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// The caller fixes the logical call's key up front, as the SOAP
	// MessageID header does.
	ctx = replog.ContextWithKey(ctx, "probe-key-1")

	if _, err := p.Invoke(ctx, studentSig(), "StudentInformation", []byte("P1")); err == nil {
		t.Fatal("first invoke: expected a lost-reply timeout")
	}
	// Let the slow first execution commit and the cooldown elapse so the
	// retry is admitted as the half-open probe.
	time.Sleep(600 * time.Millisecond)
	out, err := p.Invoke(ctx, studentSig(), "StudentInformation", []byte("P1"))
	if err != nil {
		t.Fatalf("probe invoke: %v", err)
	}
	if string(out) != "receipt:P1" {
		t.Errorf("out = %q, want the original receipt", out)
	}
	if n := execs.Load(); n != 1 {
		t.Errorf("operation executed %d times, want exactly 1 (probe must reuse the key and hit the journal)", n)
	}
	if p.Health().Get("breaker.half_open") == 0 {
		t.Error("breaker never went half-open: the retry was not a probe")
	}
	gid := p.BreakerStates()
	for _, st := range gid {
		if st != BreakerClosed {
			t.Errorf("breaker = %v after successful probe, want closed", st)
		}
	}
}

// TestBackoffDelayCappedAndJittered: the per-attempt delay grows
// exponentially from RetryDelay, never exceeds RetryMaxDelay, and
// carries upper-half jitter (delay ∈ [cap/2, cap] once saturated).
func TestBackoffDelayCappedAndJittered(t *testing.T) {
	f := newFixture(t)
	p := f.addProxy(t, Config{
		RetryDelay:    10 * time.Millisecond,
		RetryMaxDelay: 80 * time.Millisecond,
	})
	for attempt := 0; attempt < 64; attempt++ {
		d := p.backoffDelay(attempt)
		if d > 80*time.Millisecond {
			t.Fatalf("attempt %d: delay %v exceeds the 80ms cap", attempt, d)
		}
		if d < 5*time.Millisecond {
			t.Fatalf("attempt %d: delay %v below half the base delay", attempt, d)
		}
	}
	// Saturated attempts jitter within the upper half of the cap.
	for i := 0; i < 32; i++ {
		if d := p.backoffDelay(20); d < 40*time.Millisecond {
			t.Fatalf("saturated delay %v below cap/2", d)
		}
	}
}

// TestQueryBreakersOverNetwork: the peerctl introspection handler
// reports per-group breaker states and the resilience counters.
func TestQueryBreakersOverNetwork(t *testing.T) {
	f := newFixture(t)
	f.addGroup(t, "students", studentSig(), qos.Profile{}, 1, echo("students"))
	p := f.addProxy(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := p.Invoke(ctx, studentSig(), "StudentInformation", []byte("S1")); err != nil {
		t.Fatalf("invoke: %v", err)
	}

	port := f.port(t, "peerctl")
	client := p2p.NewPeer("peerctl", f.gen.New(p2p.PeerIDKind), port)
	client.Start()
	t.Cleanup(func() { _ = client.Close() })
	report, err := QueryBreakers(ctx, client, p.Addr())
	if err != nil {
		t.Fatalf("query breakers: %v", err)
	}
	if !strings.Contains(report, "closed") {
		t.Errorf("report %q does not mention the closed breaker", report)
	}
}
