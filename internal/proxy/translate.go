package proxy

import (
	"bytes"
	"encoding/xml"
	"fmt"

	"whisper/internal/ontology"
)

// Translator adapts response payloads between the peer's data schema
// and the Web service's expected schema — the paper's §4.2: "The proxy
// translates the data received to a suitable format and sends the
// results to the semantic Web service."
type Translator interface {
	// TranslateResponse converts a peer response produced under the
	// advertised signature into the form the requested signature
	// expects.
	TranslateResponse(requested, advertised ontology.Signature, payload []byte) ([]byte, error)
}

// IdentityTranslator passes payloads through unchanged.
type IdentityTranslator struct{}

var _ Translator = IdentityTranslator{}

// TranslateResponse implements Translator.
func (IdentityTranslator) TranslateResponse(_, _ ontology.Signature, payload []byte) ([]byte, error) {
	return payload, nil
}

// ElementRenameTranslator renames the response's root XML element when
// the peer's output concept differs from (but semantically matches)
// the service's expected concept. The mapping from concept URI to
// element name is supplied at construction — in Whisper it is derived
// from the WSDL-S output annotations.
type ElementRenameTranslator struct {
	// ElementForConcept maps output concept URIs to the XML element
	// name the service schema uses.
	ElementForConcept map[string]string
}

var _ Translator = (*ElementRenameTranslator)(nil)

// TranslateResponse implements Translator: if the requested output
// concept has a registered element name and the payload's root element
// differs, the root element is renamed in place (attributes and
// children preserved).
func (t *ElementRenameTranslator) TranslateResponse(requested, _ ontology.Signature, payload []byte) ([]byte, error) {
	if len(payload) == 0 || len(requested.Outputs) == 0 {
		return payload, nil
	}
	want := ""
	for _, out := range requested.Outputs {
		if name, ok := t.ElementForConcept[out]; ok {
			want = name
			break
		}
	}
	if want == "" {
		return payload, nil
	}
	return renameRoot(payload, want)
}

// SchemaMapping describes how one peer schema maps onto the service
// schema: the target root element name plus per-child element renames.
type SchemaMapping struct {
	// Root is the target root element name ("" keeps the source root).
	Root string
	// Elements maps source child-element names to target names.
	Elements map[string]string
}

// MappingTranslator performs structural translation between peer and
// service data schemas using per-concept schema mappings — the full
// version of the paper's §2.2 data integration: ontology concepts
// identify *what* the data means, the mapping says how each schema
// spells it.
type MappingTranslator struct {
	// ForOutput maps the requested output concept URI to the mapping
	// that produces the service schema.
	ForOutput map[string]SchemaMapping
}

var _ Translator = (*MappingTranslator)(nil)

// TranslateResponse implements Translator.
func (t *MappingTranslator) TranslateResponse(requested, _ ontology.Signature, payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return payload, nil
	}
	for _, out := range requested.Outputs {
		if m, ok := t.ForOutput[out]; ok {
			return rewriteElements(payload, m.Root, m.Elements)
		}
	}
	return payload, nil
}

// rewriteElements renames the root (when rootName != "") and any child
// elements found in renames, preserving attributes and content.
func rewriteElements(frag []byte, rootName string, renames map[string]string) ([]byte, error) {
	dec := xml.NewDecoder(bytes.NewReader(frag))
	var out bytes.Buffer
	enc := xml.NewEncoder(&out)
	depth := 0
	rename := func(local string, atRoot bool) string {
		if atRoot && rootName != "" {
			return rootName
		}
		if target, ok := renames[local]; ok {
			return target
		}
		return local
	}
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		switch el := tok.(type) {
		case xml.StartElement:
			depth++
			el.Name = xml.Name{Local: rename(el.Name.Local, depth == 1)}
			el.Attr = stripNSAttrs(el.Attr)
			if err := enc.EncodeToken(el); err != nil {
				return nil, fmt.Errorf("proxy: translate: %w", err)
			}
		case xml.EndElement:
			el.Name = xml.Name{Local: rename(el.Name.Local, depth == 1)}
			depth--
			if err := enc.EncodeToken(el); err != nil {
				return nil, fmt.Errorf("proxy: translate: %w", err)
			}
		default:
			if err := enc.EncodeToken(tok); err != nil {
				return nil, fmt.Errorf("proxy: translate: %w", err)
			}
		}
	}
	if err := enc.Flush(); err != nil {
		return nil, fmt.Errorf("proxy: translate: %w", err)
	}
	return out.Bytes(), nil
}

func stripNSAttrs(attrs []xml.Attr) []xml.Attr {
	var out []xml.Attr
	for _, a := range attrs {
		if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
			continue
		}
		out = append(out, xml.Attr{Name: xml.Name{Local: a.Name.Local}, Value: a.Value})
	}
	return out
}

// renameRoot rewrites the root element name of an XML fragment.
func renameRoot(frag []byte, newName string) ([]byte, error) {
	dec := xml.NewDecoder(bytes.NewReader(frag))
	var out bytes.Buffer
	enc := xml.NewEncoder(&out)
	depth := 0
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			if depth == 1 {
				t.Name = xml.Name{Local: newName}
				// Drop namespace attrs the decoder resolved; keep the
				// payload attributes.
				var attrs []xml.Attr
				for _, a := range t.Attr {
					if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
						continue
					}
					attrs = append(attrs, xml.Attr{Name: xml.Name{Local: a.Name.Local}, Value: a.Value})
				}
				t.Attr = attrs
			} else {
				t.Name = xml.Name{Local: t.Name.Local}
				var attrs []xml.Attr
				for _, a := range t.Attr {
					if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
						continue
					}
					attrs = append(attrs, xml.Attr{Name: xml.Name{Local: a.Name.Local}, Value: a.Value})
				}
				t.Attr = attrs
			}
			if err := enc.EncodeToken(t); err != nil {
				return nil, fmt.Errorf("proxy: translate: %w", err)
			}
		case xml.EndElement:
			if depth == 1 {
				t.Name = xml.Name{Local: newName}
			} else {
				t.Name = xml.Name{Local: t.Name.Local}
			}
			depth--
			if err := enc.EncodeToken(t); err != nil {
				return nil, fmt.Errorf("proxy: translate: %w", err)
			}
		default:
			if err := enc.EncodeToken(tok); err != nil {
				return nil, fmt.Errorf("proxy: translate: %w", err)
			}
		}
	}
	if err := enc.Flush(); err != nil {
		return nil, fmt.Errorf("proxy: translate: %w", err)
	}
	return out.Bytes(), nil
}
