package proxy

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"whisper/internal/bpeer"
	"whisper/internal/ontology"
	"whisper/internal/p2p"
	"whisper/internal/qos"
)

func TestSigKeyCanonical(t *testing.T) {
	a := ontology.Signature{Action: "Act", Inputs: []string{"A", "B"}, Outputs: []string{"X", "Y"}}
	b := ontology.Signature{Action: "Act", Inputs: []string{"B", "A"}, Outputs: []string{"Y", "X"}}
	if sigKey(a) != sigKey(b) {
		t.Error("concept order changed the cache key")
	}
	c := ontology.Signature{Action: "Other", Inputs: []string{"A", "B"}, Outputs: []string{"X", "Y"}}
	if sigKey(a) == sigKey(c) {
		t.Error("different actions share a cache key")
	}
	// Inputs must not bleed into outputs.
	d := ontology.Signature{Action: "Act", Inputs: []string{"A", "B", "X", "Y"}}
	if sigKey(a) == sigKey(d) {
		t.Error("inputs and outputs are not separated in the key")
	}
}

// Stubs for tests that do not care about expiry partitions.
func zeroPartGen(uint32) uint64    { return 0 }
func zeroPartOf(GroupMatch) uint32 { return 0 }

func TestMatchCacheGenAndVersionInvalidation(t *testing.T) {
	c := newMatchCache()
	m := []GroupMatch{{Adv: &bpeer.SemanticAdvertisement{GID: "urn:g1"}}}

	if _, ok := c.get("k", 1, 1, zeroPartGen); ok {
		t.Fatal("hit on empty cache")
	}
	c.put("k", 1, 1, m, zeroPartOf, zeroPartGen)
	if got, ok := c.get("k", 1, 1, zeroPartGen); !ok || len(got) != 1 {
		t.Fatal("expected hit at the same (gen, version)")
	}
	// Advertisement set moved: everything memoised must go.
	if _, ok := c.get("k", 2, 1, zeroPartGen); ok {
		t.Error("stale hit after generation bump")
	}
	// A result computed against the old world must not be cached.
	c.put("k", 1, 1, m, zeroPartOf, zeroPartGen)
	if _, ok := c.get("k", 2, 1, zeroPartGen); ok {
		t.Error("stale put survived into the new generation")
	}
	// Ontology change invalidates too.
	c.put("k", 2, 1, m, zeroPartOf, zeroPartGen)
	if _, ok := c.get("k", 2, 2, zeroPartGen); ok {
		t.Error("stale hit after ontology version change")
	}
	s := c.stats()
	if s.Invalidations < 2 {
		t.Errorf("invalidations = %d, want >= 2", s.Invalidations)
	}
	if s.Hits != 1 {
		t.Errorf("hits = %d, want 1", s.Hits)
	}
}

func TestMatchCacheHitsAreCopies(t *testing.T) {
	c := newMatchCache()
	c.get("k", 1, 1, zeroPartGen) // validate the cache at (1, 1) so put stores
	c.put("k", 1, 1, []GroupMatch{
		{Adv: &bpeer.SemanticAdvertisement{GID: "urn:a"}},
		{Adv: &bpeer.SemanticAdvertisement{GID: "urn:b"}},
	}, zeroPartOf, zeroPartGen)
	got1, _ := c.get("k", 1, 1, zeroPartGen)
	got1[0], got1[1] = got1[1], got1[0] // rank sorts in place
	got2, _ := c.get("k", 1, 1, zeroPartGen)
	if got2[0].Adv.GID != "urn:a" {
		t.Error("sorting a cache hit mutated the cached slice")
	}
}

// TestMatchCachePartitionEviction: expiry churn in a partition a result
// depends on evicts just that result; churn in unrelated partitions
// leaves the cache intact, and misses (which depend on no partition)
// survive any expiry.
func TestMatchCachePartitionEviction(t *testing.T) {
	c := newMatchCache()
	gens := map[uint32]uint64{}
	partGen := func(p uint32) uint64 { return gens[p] }
	partOf := func(m GroupMatch) uint32 {
		if m.Adv.GID == "urn:a" {
			return 3
		}
		return 7
	}

	c.get("a", 1, 1, partGen) // validate
	c.put("a", 1, 1, []GroupMatch{{Adv: &bpeer.SemanticAdvertisement{GID: "urn:a"}}}, partOf, partGen)
	c.put("b", 1, 1, []GroupMatch{{Adv: &bpeer.SemanticAdvertisement{GID: "urn:b"}}}, partOf, partGen)
	c.put("empty", 1, 1, nil, partOf, partGen)

	// Unrelated partition moves: everything still hits.
	gens[11]++
	for _, k := range []string{"a", "b", "empty"} {
		if _, ok := c.get(k, 1, 1, partGen); !ok {
			t.Errorf("%q evicted by unrelated partition churn", k)
		}
	}

	// Partition 3 moves: only "a" (whose match hashes there) goes.
	gens[3]++
	if _, ok := c.get("a", 1, 1, partGen); ok {
		t.Error("result survived expiry in its own partition")
	}
	if _, ok := c.get("b", 1, 1, partGen); !ok {
		t.Error("result in partition 7 evicted by partition 3 churn")
	}
	if _, ok := c.get("empty", 1, 1, partGen); !ok {
		t.Error("empty result evicted by expiry (only publishes can turn a miss into a hit)")
	}
	s := c.stats()
	if s.PartitionEvictions != 1 {
		t.Errorf("partition evictions = %d, want 1", s.PartitionEvictions)
	}
	if s.Invalidations != 0 {
		t.Errorf("whole-cache invalidations = %d, want 0", s.Invalidations)
	}
}

// TestProxyMatchCacheServesRepeatsAndInvalidates drives the cache
// through the real proxy: the second discovery is a hit, a newly
// published advertisement invalidates, and the fresh group appears in
// results (no stale negative).
func TestProxyMatchCacheServesRepeatsAndInvalidates(t *testing.T) {
	f := newFixture(t)
	f.addGroup(t, "students", studentSig(), qos.Profile{}, 1, echo("students"))
	p := f.addProxy(t, Config{})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		if _, err := p.FindPeerGroupAdv(ctx, studentSig()); err != nil {
			t.Fatalf("find %d: %v", i, err)
		}
	}
	s := p.MatchCacheStats()
	if s.Hits == 0 {
		t.Errorf("no match-cache hits after repeated discovery: %+v", s)
	}

	// A new advertisement lands in the local cache: the memoised
	// result must not mask it.
	_ = p.disco.Publish(bpeer.NewSemanticAdvertisement(
		"urn:whisper:fresh", "fresh", studentSig(), qos.Profile{}), time.Hour)
	matches, err := p.FindPeerGroupAdv(ctx, studentSig())
	if err != nil {
		t.Fatalf("find after publish: %v", err)
	}
	var sawFresh bool
	for _, m := range matches {
		if m.Adv.Name == "fresh" {
			sawFresh = true
		}
	}
	if !sawFresh {
		t.Error("newly published group missing: match cache served a stale result")
	}
	if p.MatchCacheStats().Invalidations == 0 {
		t.Error("publish did not invalidate the match cache")
	}
}

// TestProxySetReasonerInvalidatesMatches swaps the ontology and
// checks memoised results do not survive the swap.
func TestProxySetReasonerInvalidatesMatches(t *testing.T) {
	f := newFixture(t)
	f.addGroup(t, "students", studentSig(), qos.Profile{}, 1, echo("students"))
	p := f.addProxy(t, Config{})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 2; i++ {
		if _, err := p.FindPeerGroupAdv(ctx, studentSig()); err != nil {
			t.Fatalf("find %d: %v", i, err)
		}
	}
	before := p.MatchCacheStats()

	p.SetReasoner(ontology.NewReasoner(ontology.Combined()))
	if _, err := p.FindPeerGroupAdv(ctx, studentSig()); err != nil {
		t.Fatalf("find after reasoner swap: %v", err)
	}
	after := p.MatchCacheStats()
	if after.Invalidations <= before.Invalidations {
		t.Error("reasoner swap did not invalidate the match cache")
	}
}

// TestProxyMatchCacheConcurrency hammers matchLocal against
// concurrent advertisement publishes (run under -race).
func TestProxyMatchCacheConcurrency(t *testing.T) {
	f := newFixture(t)
	p := f.addProxy(t, Config{})
	sig := studentSig()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if w%2 == 0 {
					_ = p.disco.Publish(bpeer.NewSemanticAdvertisement(
						p2p.ID(fmt.Sprintf("urn:g%d-%d", w, i%10)),
						fmt.Sprintf("g%d", i%10), sig, qos.Profile{}), time.Hour)
				} else {
					got := p.matchLocal(sig)
					// rank sorts hits in place; it must never corrupt
					// the cache (hits are copies).
					p.rank(got)
				}
			}
		}(w)
	}
	wg.Wait()
	// Writers 0 and 2 each publish 10 distinct groups.
	if got := p.matchLocal(sig); len(got) != 20 {
		t.Errorf("final match count = %d, want 20", len(got))
	}
}

// TestProxyBreakerOpenDropsBinding: when a group's breaker opens, the
// cached coordinator binding must be dropped so the next admitted
// probe re-binds from scratch.
func TestProxyBreakerOpenDropsBinding(t *testing.T) {
	f := newFixture(t)
	peers := f.addGroup(t, "students", studentSig(), qos.Profile{}, 1, echo("students"))
	p := f.addProxy(t, Config{
		CallTimeout:      100 * time.Millisecond,
		BindTimeout:      100 * time.Millisecond,
		RetryDelay:       10 * time.Millisecond,
		BreakerThreshold: 2,
		MaxAttempts:      3,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := p.Invoke(ctx, studentSig(), "Op", []byte("warm")); err != nil {
		t.Fatalf("warm-up invoke: %v", err)
	}
	gid := peers[0].GroupID()
	p.mu.Lock()
	_, bound := p.bindings[gid]
	p.mu.Unlock()
	if !bound {
		t.Fatal("no binding cached after successful invoke")
	}

	// The lone replica dies; repeated failures open the breaker.
	if err := peers[0].Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	if _, err := p.Invoke(ctx, studentSig(), "Op", []byte("down")); err == nil {
		t.Fatal("invoke against a dead group succeeded")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if p.BreakerStates()[gid] == BreakerOpen {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := p.BreakerStates()[gid]; got != BreakerOpen {
		t.Fatalf("breaker state = %v, want open", got)
	}
	p.mu.Lock()
	_, bound = p.bindings[gid]
	p.mu.Unlock()
	if bound {
		t.Error("binding survived the breaker opening")
	}
}

// TestProxyFailoverInvalidatesStaleBinding asserts the binding cache
// is invalidated on coordinator crash: after re-election the proxy is
// bound to the new coordinator and never again calls the dead one.
func TestProxyFailoverInvalidatesStaleBinding(t *testing.T) {
	f := newFixture(t)
	peers := f.addGroup(t, "students", studentSig(), qos.Profile{}, 3, echo("students"))
	p := f.addProxy(t, Config{CallTimeout: 300 * time.Millisecond})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := p.Invoke(ctx, studentSig(), "Op", []byte("warm")); err != nil {
		t.Fatalf("warm-up invoke: %v", err)
	}
	gid := peers[0].GroupID()
	p.mu.Lock()
	oldCoord := p.bindings[gid].coordinator
	p.mu.Unlock()
	if oldCoord == "" {
		t.Fatal("no coordinator bound after warm-up")
	}

	// Crash the coordinator (highest rank) and invoke again.
	if err := peers[2].Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	if _, err := p.Invoke(ctx, studentSig(), "Op", []byte("after-crash")); err != nil {
		t.Fatalf("invoke after crash: %v", err)
	}
	p.mu.Lock()
	newCoord := p.bindings[gid].coordinator
	p.mu.Unlock()
	if newCoord == oldCoord {
		t.Errorf("still bound to the crashed coordinator %s", oldCoord)
	}
	if p.Rebinds() == 0 {
		t.Error("expected a re-binding after the coordinator crash")
	}

	// With the binding settled on the new coordinator, further calls
	// must not touch the dead address: tracked observations for the
	// old coordinator must not grow.
	_, _, callsBefore, _ := p.Tracker().Observed(oldCoord)
	for i := 0; i < 3; i++ {
		if _, err := p.Invoke(ctx, studentSig(), "Op", nil); err != nil {
			t.Fatalf("post-failover invoke %d: %v", i, err)
		}
	}
	_, _, callsAfter, _ := p.Tracker().Observed(oldCoord)
	if callsAfter > callsBefore {
		t.Errorf("proxy called the stale coordinator %d more times after re-election",
			callsAfter-callsBefore)
	}
}

// TestQueryCache exercises the peerctl-facing cache introspection
// round trip over the binding protocol.
func TestQueryCache(t *testing.T) {
	f := newFixture(t)
	f.addGroup(t, "students", studentSig(), qos.Profile{}, 1, echo("students"))
	p := f.addProxy(t, Config{})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 2; i++ {
		if _, err := p.Invoke(ctx, studentSig(), "Op", nil); err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}

	client := p2p.NewPeer("ctl", f.gen.New(p2p.PeerIDKind), f.port(t, "ctl"))
	client.Start()
	t.Cleanup(func() { _ = client.Close() })
	out, err := QueryCache(ctx, client, p.Addr())
	if err != nil {
		t.Fatalf("QueryCache: %v", err)
	}
	for _, want := range []string{
		"discovery.size", "discovery.hits", "match.entries",
		"match.hits", "bindings.coordinators",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("cache report missing %q:\n%s", want, out)
		}
	}
}
