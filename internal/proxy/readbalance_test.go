package proxy

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"whisper/internal/bpeer"
	"whisper/internal/p2p"
	"whisper/internal/qos"
)

// addReadGroup deploys a journaling group whose "StudentInformation"
// op is read-only, with per-replica handlers that echo the replica
// name (so tests can see which replica served a read).
func (f *fixture) addReadGroup(t *testing.T, name string, replicas int) []*bpeer.BPeer {
	t.Helper()
	gid := f.gen.New(p2p.GroupIDKind)
	var peers []*bpeer.BPeer
	for i := 0; i < replicas; i++ {
		rname := fmt.Sprintf("%s-%d", name, i)
		bp, err := bpeer.New(f.port(t, name), bpeer.Config{
			Name:              rname,
			Rank:              int64(i + 1),
			GroupID:           gid,
			GroupName:         name,
			Signature:         studentSig(),
			QoS:               qos.Profile{LatencyMillis: 5, Reliability: 0.99, Availability: 0.99},
			RendezvousAddr:    "rdv",
			Handler:           echo(rname),
			IDGen:             f.gen,
			HeartbeatInterval: 20 * time.Millisecond,
			HeartbeatTimeout:  80 * time.Millisecond,
			ElectionTimeout:   40 * time.Millisecond,
			LeaseInterval:     200 * time.Millisecond,
			ReadOnlyOps:       []string{"StudentInformation"},
		})
		if err != nil {
			t.Fatalf("bpeer %s: %v", rname, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := bp.Start(ctx); err != nil {
			cancel()
			t.Fatalf("start %s: %v", rname, err)
		}
		cancel()
		t.Cleanup(func() { _ = bp.Close() })
		peers = append(peers, bp)
	}
	f.groups[name] = peers
	f.waitGroupReady(t, peers)
	return peers
}

// TestReadsBalancedAcrossReplicas: marked reads spread across the
// group instead of all landing on the coordinator, every read
// satisfies ReadSeq >= ReadIndex, and the ReadObserver sees each one.
func TestReadsBalancedAcrossReplicas(t *testing.T) {
	f := newFixture(t)
	f.addReadGroup(t, "students", 3)

	var observed atomic.Int64
	var stale atomic.Int64
	p := f.addProxy(t, Config{
		ReadObserver: func(_ string, readIndex, readSeq uint64) {
			observed.Add(1)
			if readSeq < readIndex {
				stale.Add(1)
			}
		},
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// A write first, so the read index is non-zero.
	if _, err := p.Invoke(ctx, studentSig(), "UpdateStudent", []byte("S1")); err != nil {
		t.Fatalf("write: %v", err)
	}

	const reads = 60
	served := make(map[string]int)
	for i := 0; i < reads; i++ {
		out, err := p.Invoke(ctx, studentSig(), "StudentInformation", []byte("S1"))
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		// echo() answers "<replica>:<op>:<payload>".
		name := strings.SplitN(string(out), ":", 2)[0]
		served[name]++
	}
	if len(served) < 2 {
		t.Fatalf("reads served by %v, want spread across >= 2 replicas", served)
	}
	if got := observed.Load(); got != reads {
		t.Fatalf("ReadObserver saw %d reads, want %d", got, reads)
	}
	if got := stale.Load(); got != 0 {
		t.Fatalf("%d stale reads observed, want 0", got)
	}
	if got := p.Health().Get("reads.served"); got != reads {
		t.Fatalf("reads.served = %d, want %d", got, reads)
	}
	if got := p.Health().Get("reads.stale"); got != 0 {
		t.Fatalf("reads.stale = %d, want 0", got)
	}
}

// TestReadRedirectsAroundDeadReplica: a crashed replica redirects its
// reads to the siblings instead of failing calls.
func TestReadRedirectsAroundDeadReplica(t *testing.T) {
	f := newFixture(t)
	peers := f.addReadGroup(t, "students", 3)
	p := f.addProxy(t, Config{})

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := p.Invoke(ctx, studentSig(), "UpdateStudent", []byte("S1")); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Prime the read set.
	if _, err := p.Invoke(ctx, studentSig(), "StudentInformation", []byte("S1")); err != nil {
		t.Fatalf("prime read: %v", err)
	}

	// Crash a follower (not the coordinator, so the write path and the
	// read-index source stay up).
	var crashed *bpeer.BPeer
	for _, bp := range peers {
		if !bp.IsCoordinator() {
			crashed = bp
			break
		}
	}
	if crashed == nil {
		t.Fatal("no follower to crash")
	}
	if err := crashed.Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}

	for i := 0; i < 30; i++ {
		out, err := p.Invoke(ctx, studentSig(), "StudentInformation", []byte("S1"))
		if err != nil {
			t.Fatalf("read %d after crash: %v", i, err)
		}
		name := strings.SplitN(string(out), ":", 2)[0]
		if name == crashed.Name() {
			t.Fatalf("read %d served by crashed replica %s", i, name)
		}
	}
}

// TestConcurrentReadsAndWeightUpdates races the read-balanced invoke
// path against selector weight retuning — the -race regression for the
// replica selector.
func TestConcurrentReadsAndWeightUpdates(t *testing.T) {
	f := newFixture(t)
	f.addReadGroup(t, "students", 3)
	sel := qos.NewSelector(nil, qos.Weights{})
	p := f.addProxy(t, Config{Selector: sel})

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if _, err := p.Invoke(ctx, studentSig(), "UpdateStudent", []byte("S1")); err != nil {
		t.Fatalf("write: %v", err)
	}

	var readers sync.WaitGroup
	var updater sync.WaitGroup
	stop := make(chan struct{})
	updater.Add(1)
	go func() {
		defer updater.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			sel.SetWeights(qos.Weights{
				Latency:      float64(i%4) + 0.1,
				Reliability:  float64((i+1)%4) + 0.1,
				Availability: 0.3,
			})
			i++
			time.Sleep(time.Millisecond)
		}
	}()
	var failures atomic.Int64
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 25; i++ {
				if _, err := p.Invoke(ctx, studentSig(), "StudentInformation", []byte("S1")); err != nil {
					failures.Add(1)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	updater.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d reader goroutines failed", n)
	}
	if got := p.Health().Get("reads.stale"); got != 0 {
		t.Fatalf("reads.stale = %d, want 0", got)
	}
}
