// Package proxy implements Whisper's SWS-proxy (paper §3.2): the
// component behind a semantic Web service that locates a semantic
// b-peer group matching the service's WSDL-S annotations, binds to the
// group's elected coordinator, forwards requests over a pipe, and
// transparently re-binds (after a Bully election) when the coordinator
// fails.
package proxy

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"whisper/internal/bpeer"
	"whisper/internal/loadctl"
	"whisper/internal/metrics"
	"whisper/internal/ontology"
	"whisper/internal/p2p"
	"whisper/internal/qos"
	"whisper/internal/replog"
	"whisper/internal/simnet"
	"whisper/internal/trace"
)

// Errors returned by the proxy.
var (
	// ErrNoMatch is returned when no semantic peer group satisfies the
	// request's semantics at the configured threshold.
	ErrNoMatch = errors.New("proxy: no semantically matching peer group")
	// ErrNoCoordinator is returned when a matching group has no
	// reachable coordinator after all retries.
	ErrNoCoordinator = errors.New("proxy: no reachable coordinator")
	// ErrCircuitOpen is returned when a group's circuit breaker is open
	// (the group failed too many consecutive attempts and the cooldown
	// has not elapsed); the proxy sheds the call instead of probing.
	ErrCircuitOpen = errors.New("proxy: circuit open")
)

// Config assembles an SWS-proxy.
type Config struct {
	// Name names the proxy peer.
	Name string
	// RendezvousAddr is the rendezvous peer to discover through.
	RendezvousAddr string
	// ShardAddrs, when non-empty, enables sharded discovery: remote
	// queries route to the consistent-hash owners of the requested
	// (advType, attr, value) triple, falling back to scatter-gather
	// over every shard. Empty keeps the single-rendezvous path.
	ShardAddrs []string
	// ShardReplicas is how many shard owners each exact query consults;
	// zero selects p2p.DefaultShardReplicas.
	ShardReplicas int
	// Reasoner performs the semantic matching.
	Reasoner *ontology.Reasoner
	// MinDegree is the weakest acceptable signature match degree;
	// zero selects MatchSubsume.
	MinDegree ontology.MatchDegree
	// Selector ranks semantically acceptable groups by QoS; nil
	// selects a default selector backed by the proxy's own tracker.
	Selector *qos.Selector
	// Translator adapts response payloads between peer and service
	// data schemas; nil selects the identity translation.
	Translator Translator
	// IDGen mints IDs.
	IDGen *p2p.IDGen
	// BindTimeout bounds one coordinator lookup; zero selects 500ms.
	BindTimeout time.Duration
	// CallTimeout bounds one request round trip; zero selects 2s.
	CallTimeout time.Duration
	// RetryDelay is the base pause between re-binding attempts while an
	// election converges; zero selects 100ms. Successive attempts back
	// off exponentially (with jitter) from this base.
	RetryDelay time.Duration
	// RetryMaxDelay caps the exponential backoff; zero selects
	// 16×RetryDelay.
	RetryMaxDelay time.Duration
	// MaxAttempts bounds request attempts across re-bindings; zero
	// selects 8.
	MaxAttempts int
	// BreakerThreshold is the number of consecutive infrastructure
	// failures after which a group's circuit breaker opens; zero
	// selects 5, negative disables circuit breaking.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker fails fast before
	// admitting a half-open probe; zero selects 10×RetryDelay.
	BreakerCooldown time.Duration
	// Admission is the overload-protection pipeline (per-client rate
	// limiting, deadline-aware queueing, AIMD concurrency) applied in
	// front of the circuit breaker; nil disables admission control.
	Admission *loadctl.Controller
	// ReadObserver, when non-nil, observes every follower-served read:
	// the replica that answered, the read index the read was issued at
	// and the committed sequence it observed. The chaos staleness
	// invariant (no read observes a seq older than its read index)
	// hooks in here. Must be safe for concurrent calls.
	ReadObserver func(replica string, readIndex, readSeq uint64)
	// Seed drives the backoff jitter; zero selects 1 (deterministic).
	Seed int64
	// Tracer records per-request phase spans (discovery, bind,
	// election-wait, re-bind, call) into its collector; nil disables
	// tracing.
	Tracer *trace.Tracer
}

func (c *Config) applyDefaults() {
	if c.MinDegree == 0 {
		c.MinDegree = ontology.MatchSubsume
	}
	if c.IDGen == nil {
		c.IDGen = p2p.NewIDGen(0)
	}
	if c.BindTimeout <= 0 {
		c.BindTimeout = 500 * time.Millisecond
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 2 * time.Second
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = 100 * time.Millisecond
	}
	if c.RetryMaxDelay <= 0 {
		c.RetryMaxDelay = 16 * c.RetryDelay
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * c.RetryDelay
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Translator == nil {
		c.Translator = IdentityTranslator{}
	}
}

// binding caches the resolved coordinator for a group.
type binding struct {
	coordinator string
	pipe        *p2p.PipeAdvertisement
}

// SWSProxy forwards semantic Web service requests to b-peer groups.
type SWSProxy struct {
	cfg     Config
	peer    *p2p.Peer
	disco   *p2p.DiscoveryService
	shards  *p2p.ShardRouter
	pipes   *p2p.PipeService
	rdv     *p2p.RendezvousClient
	bindRes *p2p.Resolver
	tracker *qos.Tracker
	sel     *qos.Selector
	rtt     *metrics.RTTMonitor

	// reasoner is the live compiled ontology; SetReasoner swaps it
	// (invalidating the match cache via the version in its keys).
	reasoner atomic.Pointer[ontology.Reasoner]
	// matches memoises semantic match results per signature.
	matches *matchCache

	// health counts resilience events: breaker transitions and
	// rejections, backoff sleeps, call attempts.
	health *metrics.Counter

	mu       sync.Mutex
	bindings map[p2p.ID]*binding
	// lastCoord remembers the last bound coordinator per group so
	// re-bindings are countable even after an invalidation.
	lastCoord map[p2p.ID]string
	// shared caches the member pipes of load-sharing groups with a
	// round-robin cursor.
	shared map[p2p.ID]*sharedBinding
	// reads caches each group's read-replica set (QoS-weighted read
	// balancing across semantically equal peers).
	reads map[p2p.ID]*readBalancer
	// breakers holds each group's circuit breaker.
	breakers map[p2p.ID]*breaker
	// rng drives backoff jitter (seeded, so retries are reproducible).
	rng *rand.Rand
	// rebinds counts coordinator re-bindings (observable in benches).
	rebinds int64
	// keySeq mints fallback idempotency keys for contexts that carry
	// none (callers below the SOAP stack, e.g. Service.Invoke).
	keySeq atomic.Uint64
}

// sharedBinding is the load-sharing analogue of binding: every live
// replica's pipe, visited round-robin.
type sharedBinding struct {
	pipes []*p2p.PipeAdvertisement
	next  int
}

// New assembles a proxy over the transport. Call Start to go live.
func New(tr simnet.Transport, cfg Config) (*SWSProxy, error) {
	if cfg.Reasoner == nil {
		return nil, fmt.Errorf("proxy: config requires a Reasoner")
	}
	if cfg.RendezvousAddr == "" {
		return nil, fmt.Errorf("proxy: config requires a RendezvousAddr")
	}
	cfg.applyDefaults()
	bpeer.EnsureAdvTypes()

	p := &SWSProxy{
		cfg:       cfg,
		tracker:   qos.NewTracker(),
		rtt:       metrics.NewRTTMonitor(),
		health:    metrics.NewCounter(),
		matches:   newMatchCache(),
		bindings:  make(map[p2p.ID]*binding),
		lastCoord: make(map[p2p.ID]string),
		shared:    make(map[p2p.ID]*sharedBinding),
		reads:     make(map[p2p.ID]*readBalancer),
		breakers:  make(map[p2p.ID]*breaker),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
	p.reasoner.Store(cfg.Reasoner)
	p.peer = p2p.NewPeer(cfg.Name, cfg.IDGen.New(p2p.PeerIDKind), tr)
	p.peer.SetTracer(cfg.Tracer)
	if col := cfg.Tracer.Collector(); col != nil {
		p2p.ServeTraces(p.peer, col)
	}
	p.disco = p2p.NewDiscoveryService(p.peer)
	if len(cfg.ShardAddrs) > 0 {
		p.shards = p2p.NewShardRouter(cfg.ShardAddrs, cfg.ShardReplicas)
	}
	p.pipes = p2p.NewPipeService(p.peer, cfg.IDGen)
	p.rdv = p2p.NewRendezvousClient(p.peer, cfg.RendezvousAddr)
	p.bindRes = p2p.NewResolverOn(p.peer, bpeer.ProtoBinding)
	p.bindRes.RegisterHandler(breakersHandler, p.answerBreakers)
	p.bindRes.RegisterHandler(cacheHandler, p.answerCache)
	p.bindRes.RegisterHandler(loadctlHandler, p.answerLoadctl)
	if cfg.Selector != nil {
		p.sel = cfg.Selector
	} else {
		p.sel = qos.NewSelector(p.tracker, qos.Weights{})
	}
	// Bound the RTT monitor's in-flight map: a request whose coordinator
	// crashed may never see a reply stamp, so stale stamps are swept
	// once they are far older than any live call could be.
	p.rtt.SetMaxAge(4 * cfg.CallTimeout)
	return p, nil
}

// Start brings the proxy peer online.
func (p *SWSProxy) Start() { p.peer.Start() }

// Close shuts the proxy down.
func (p *SWSProxy) Close() error { return p.peer.Close() }

// Addr returns the proxy's transport address.
func (p *SWSProxy) Addr() string { return p.peer.Addr() }

// RTT exposes the proxy's request round-trip-time monitor (the
// measurement surface of the paper's §5 RTT analysis).
func (p *SWSProxy) RTT() *metrics.RTTMonitor { return p.rtt }

// Rebinds reports how many times the proxy had to re-bind to a new
// coordinator.
func (p *SWSProxy) Rebinds() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rebinds
}

// Tracker exposes the proxy's QoS observations.
func (p *SWSProxy) Tracker() *qos.Tracker { return p.tracker }

// Health exposes the proxy's resilience counters: breaker transitions
// ("breaker.opened", "breaker.half_open", "breaker.closed"), fast-failed
// attempts ("breaker.rejected"), admission rejections ("loadctl.shed"),
// backoff pauses ("backoff.sleeps") and actual pipe calls
// ("calls.attempted").
func (p *SWSProxy) Health() *metrics.Counter { return p.health }

// Admission exposes the proxy's overload-protection controller, or nil
// when admission control is disabled.
func (p *SWSProxy) Admission() *loadctl.Controller { return p.cfg.Admission }

// BreakerStates snapshots the circuit-breaker state per group.
func (p *SWSProxy) BreakerStates() map[p2p.ID]BreakerState {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[p2p.ID]BreakerState, len(p.breakers))
	for gid, br := range p.breakers {
		out[gid] = br.State()
	}
	return out
}

// breakerFor returns the group's circuit breaker, creating it on first
// use; nil when circuit breaking is disabled.
func (p *SWSProxy) breakerFor(gid p2p.ID) *breaker {
	if p.cfg.BreakerThreshold < 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	br, ok := p.breakers[gid]
	if !ok {
		br = newBreaker(p.cfg.BreakerThreshold, p.cfg.BreakerCooldown, func(_, to BreakerState) {
			switch to {
			case BreakerOpen:
				p.health.Add("breaker.opened", 1)
				// The group is failing hard: its cached coordinator
				// binding and replica pipes are no longer trustworthy,
				// so the next admitted probe re-binds from scratch
				// instead of re-calling a peer the breaker just
				// condemned. (The transition callback runs outside the
				// breaker lock, so taking p.mu here cannot deadlock.)
				p.dropGroupCaches(gid)
			case BreakerHalfOpen:
				p.health.Add("breaker.half_open", 1)
			case BreakerClosed:
				p.health.Add("breaker.closed", 1)
			}
		})
		p.breakers[gid] = br
	}
	return br
}

// dropGroupCaches forgets the group's coordinator binding and cached
// replica pipes (load-sharing groups and the read-balancer set).
func (p *SWSProxy) dropGroupCaches(gid p2p.ID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.bindings, gid)
	delete(p.shared, gid)
	if rb := p.reads[gid]; rb != nil {
		rb.dropAllPipes()
	}
}

// breakersHandler is the resolver handler name under which the proxy
// answers circuit-breaker introspection queries (peerctl breakers).
const breakersHandler = "proxy.breakers"

// answerBreakers serves one line per group ("<gid> <state>") followed
// by one line per resilience counter ("# <label>=<value>").
func (p *SWSProxy) answerBreakers(_ string, _ []byte) ([]byte, error) {
	states := p.BreakerStates()
	gids := make([]string, 0, len(states))
	for gid := range states {
		gids = append(gids, string(gid))
	}
	sort.Strings(gids)
	var b strings.Builder
	for _, gid := range gids {
		fmt.Fprintf(&b, "%s %s\n", gid, states[p2p.ID(gid)])
	}
	if counters := p.health.String(); counters != "" {
		fmt.Fprintf(&b, "# %s\n", counters)
	}
	return []byte(b.String()), nil
}

// QueryBreakers asks a proxy peer for its circuit-breaker states and
// resilience counters (the peerctl "breakers" command). The client
// peer must not already carry a resolver on the binding protocol.
func QueryBreakers(ctx context.Context, peer *p2p.Peer, proxyAddr string) (string, error) {
	r := p2p.NewResolverOn(peer, bpeer.ProtoBinding)
	payload, err := r.Query(ctx, proxyAddr, breakersHandler, nil)
	if err != nil {
		return "", err
	}
	return string(payload), nil
}

// loadctlHandler is the resolver handler name under which the proxy
// answers overload-protection introspection queries (peerctl loadctl).
const loadctlHandler = "loadctl.status"

// answerLoadctl serves the admission pipeline's live status: current
// AIMD limit, inflight count, queue depth, per-stage shed counters and
// per-client token levels ("key value" lines).
func (p *SWSProxy) answerLoadctl(_ string, _ []byte) ([]byte, error) {
	adm := p.cfg.Admission
	if adm == nil {
		return []byte("enabled false\n"), nil
	}
	return []byte("enabled true\n" + adm.Snapshot().String()), nil
}

// QueryLoadctl asks a proxy peer for its overload-protection status
// (the peerctl "loadctl" command). The client peer must not already
// carry a resolver on the binding protocol.
func QueryLoadctl(ctx context.Context, peer *p2p.Peer, proxyAddr string) (string, error) {
	r := p2p.NewResolverOn(peer, bpeer.ProtoBinding)
	payload, err := r.Query(ctx, proxyAddr, loadctlHandler, nil)
	if err != nil {
		return "", err
	}
	return string(payload), nil
}

// cacheHandler is the resolver handler name under which the proxy
// answers cache introspection queries (peerctl cache).
const cacheHandler = "proxy.cache"

// answerCache serves "key value" lines describing the discovery
// index, the semantic match cache and the binding cache.
func (p *SWSProxy) answerCache(_ string, _ []byte) ([]byte, error) {
	ds := p.disco.Stats()
	ms := p.matches.stats()
	p.mu.Lock()
	nBindings, nShared, nReads := len(p.bindings), len(p.shared), len(p.reads)
	p.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "discovery.size %d\n", ds.Size)
	fmt.Fprintf(&b, "discovery.index_keys %d\n", ds.IndexKeys)
	fmt.Fprintf(&b, "discovery.hits %d\n", ds.Hits)
	fmt.Fprintf(&b, "discovery.misses %d\n", ds.Misses)
	fmt.Fprintf(&b, "discovery.expired %d\n", ds.Expired)
	fmt.Fprintf(&b, "discovery.flushed %d\n", ds.Flushed)
	fmt.Fprintf(&b, "discovery.sweeps %d\n", ds.Sweeps)
	fmt.Fprintf(&b, "match.entries %d\n", ms.Entries)
	fmt.Fprintf(&b, "match.hits %d\n", ms.Hits)
	fmt.Fprintf(&b, "match.misses %d\n", ms.Misses)
	fmt.Fprintf(&b, "match.invalidations %d\n", ms.Invalidations)
	fmt.Fprintf(&b, "match.partition_evictions %d\n", ms.PartitionEvictions)
	fmt.Fprintf(&b, "bindings.coordinators %d\n", nBindings)
	fmt.Fprintf(&b, "bindings.shared_groups %d\n", nShared)
	fmt.Fprintf(&b, "bindings.read_groups %d\n", nReads)
	return []byte(b.String()), nil
}

// QueryCache asks a proxy peer for its cache statistics — discovery
// index size and hit/miss/eviction counters, match-cache counters,
// binding counts — over the binding protocol (the peerctl "cache"
// command). The client peer must not already carry a resolver on the
// binding protocol.
func QueryCache(ctx context.Context, peer *p2p.Peer, proxyAddr string) (string, error) {
	r := p2p.NewResolverOn(peer, bpeer.ProtoBinding)
	payload, err := r.Query(ctx, proxyAddr, cacheHandler, nil)
	if err != nil {
		return "", err
	}
	return string(payload), nil
}

// GroupMatch pairs a discovered semantic advertisement with its match
// result against the requested signature.
type GroupMatch struct {
	Adv   *bpeer.SemanticAdvertisement
	Match ontology.SignatureMatch
}

// FindPeerGroupAdv locates semantic peer-group advertisements matching
// the signature, mirroring the paper's findPeerGroupAdv pseudocode:
// first the local advertisement cache is searched by the action
// attribute, then input/output semantics are checked; a remote
// discovery against the rendezvous fills the cache on a miss. Results
// are sorted best-first by (degree, QoS-weighted score).
func (p *SWSProxy) FindPeerGroupAdv(ctx context.Context, sig ontology.Signature) ([]GroupMatch, error) {
	matches := p.matchLocal(sig)
	if len(matches) == 0 && p.shards != nil {
		// Sharded fleet: the exact action query routes to the triple's
		// ring owners — the shards publishes land on first, so they are
		// the freshest authority for that action.
		if err := p.fillFromRemote(ctx,
			p.shards.AppendOwners(nil, bpeer.SemanticAdvType, "action", sig.Action),
			"action", sig.Action); err != nil {
			return nil, err
		}
		matches = p.matchLocal(sig)
	}
	if len(matches) == 0 {
		// Cache miss (or synonym action living under another concept
		// URI): fetch the full set — scatter-gather over every shard,
		// or the single rendezvous on the legacy path — and re-match.
		if err := p.fillFromRemote(ctx, p.remoteTargets(), "", ""); err != nil {
			return nil, err
		}
		matches = p.matchLocal(sig)
	}
	if len(matches) == 0 {
		return nil, ErrNoMatch
	}
	p.rank(matches)
	return matches, nil
}

// remoteTargets returns the peers a full-set (wildcard) remote
// discovery consults: every shard, or the single rendezvous.
func (p *SWSProxy) remoteTargets() []string {
	if p.shards != nil {
		return p.shards.All()
	}
	return []string{p.cfg.RendezvousAddr}
}

// fillFromRemote queries the targets' caches and re-publishes the
// results into the local cache with a finite lifetime, like JXTA's
// discovery response handling.
func (p *SWSProxy) fillFromRemote(ctx context.Context, targets []string, attr, value string) error {
	advs, err := p.disco.RemoteGetAdvertisements(ctx, targets, bpeer.SemanticAdvType, attr, value, 0)
	if err != nil {
		return fmt.Errorf("proxy: remote discovery: %w", err)
	}
	for _, adv := range advs {
		_ = p.disco.Publish(adv, p2p.DefaultLifetime)
	}
	return nil
}

// FindByName is the syntactic baseline the paper contrasts against
// (§3.1: plain WSDL "provides only syntactical information"): it
// matches advertisements purely on their advertised Name attribute,
// with no semantic checking at all. Experiment E5 uses it to quantify
// the precision/recall gap live through the proxy.
func (p *SWSProxy) FindByName(ctx context.Context, name string) ([]*bpeer.SemanticAdvertisement, error) {
	collect := func() []*bpeer.SemanticAdvertisement {
		var out []*bpeer.SemanticAdvertisement
		for _, a := range p.disco.GetLocalAdvertisements(bpeer.SemanticAdvType, "Name", name) {
			if sem, ok := a.(*bpeer.SemanticAdvertisement); ok {
				out = append(out, sem)
			}
		}
		return out
	}
	found := collect()
	if len(found) == 0 && p.shards != nil {
		// Exact Name query: route to the triple's ring owners first.
		if err := p.fillFromRemote(ctx,
			p.shards.AppendOwners(nil, bpeer.SemanticAdvType, "Name", name),
			"Name", name); err != nil {
			return nil, err
		}
		found = collect()
	}
	if len(found) == 0 {
		if err := p.fillFromRemote(ctx, p.remoteTargets(), "", ""); err != nil {
			return nil, err
		}
		found = collect()
	}
	return found, nil
}

// Reasoner returns the proxy's live compiled ontology.
func (p *SWSProxy) Reasoner() *ontology.Reasoner { return p.reasoner.Load() }

// SetReasoner swaps in a newly compiled ontology. Match results
// memoised against the old ontology version stop validating on the
// next lookup, so no stale semantic decision survives the swap.
func (p *SWSProxy) SetReasoner(r *ontology.Reasoner) {
	if r != nil {
		p.reasoner.Store(r)
	}
}

// MatchCacheStats snapshots the semantic match cache counters.
func (p *SWSProxy) MatchCacheStats() MatchCacheStats { return p.matches.stats() }

// DiscoveryStats snapshots the proxy's local discovery cache/index.
func (p *SWSProxy) DiscoveryStats() p2p.DiscoveryStats { return p.disco.Stats() }

// matchLocal resolves the signature against the local advertisement
// cache, memoising through the match cache: a hit skips the reasoner
// entirely. Memoised results validate against the discovery cache's
// membership generation and the ontology version (whole-cache flush),
// plus the expiry-partition generations of the advertisements they
// contain (per-result eviction) — so published/flushed/expired
// advertisements and ontology swaps invalidate memoised results
// before they can be served, while unrelated expiry churn leaves them
// alone.
func (p *SWSProxy) matchLocal(sig ontology.Signature) []GroupMatch {
	r := p.reasoner.Load()
	gen := p.disco.MemberGen()
	key := sigKey(sig)
	if cached, ok := p.matches.get(key, gen, r.Version(), p.disco.PartitionGen); ok {
		return cached
	}
	out := p.matchUncached(r, sig)
	p.matches.put(key, gen, r.Version(), out, matchPartition, p.disco.PartitionGen)
	return out
}

// matchPartition maps one matched advertisement onto its discovery
// expiry partition.
func matchPartition(m GroupMatch) uint32 {
	return p2p.ActionPartition(m.Adv.AdvType(), m.Adv.Attributes()["action"])
}

// matchUncached scans the local cache: the fast path queries the
// "action" attribute exactly (the paper's pseudocode, now served from
// the discovery index); the slow path runs the reasoner over every
// semantic advertisement so synonym actions (equivalent concepts with
// different URIs) still match.
func (p *SWSProxy) matchUncached(r *ontology.Reasoner, sig ontology.Signature) []GroupMatch {
	seen := make(map[p2p.ID]bool)
	var out []GroupMatch
	consider := func(advs []p2p.Advertisement) {
		for _, a := range advs {
			sem, ok := a.(*bpeer.SemanticAdvertisement)
			if !ok || seen[sem.GID] {
				continue
			}
			m := r.MatchSignature(sem.Signature(), sig)
			if m.Degree.Satisfies(p.cfg.MinDegree) {
				seen[sem.GID] = true
				out = append(out, GroupMatch{Adv: sem, Match: m})
			}
		}
	}
	consider(p.disco.GetLocalAdvertisements(bpeer.SemanticAdvType, "action", sig.Action))
	consider(p.disco.GetLocalAdvertisements(bpeer.SemanticAdvType, "", ""))
	return out
}

// rank orders matches best-first by degree then QoS-weighted score.
func (p *SWSProxy) rank(matches []GroupMatch) {
	score := func(g GroupMatch) float64 {
		return p.sel.Score(qos.Candidate{
			Peer:          string(g.Adv.GID),
			Profile:       g.Adv.QoS,
			SemanticScore: g.Match.Score,
		})
	}
	sort.SliceStable(matches, func(i, j int) bool {
		if matches[i].Match.Degree != matches[j].Match.Degree {
			return matches[i].Match.Degree < matches[j].Match.Degree
		}
		return score(matches[i]) > score(matches[j])
	})
}

// Invoke performs one semantic service request: discover → bind →
// call, with transparent re-binding on coordinator failure. It returns
// the translated response payload.
//
// With a Tracer configured, the invocation records a span tree whose
// phases tile the request's wall clock: "discovery" (semantic match),
// "bind"/"re-bind" (coordinator lookup), "call" (pipe round trip,
// continuing into the b-peer's own spans) and "election-wait" (the
// pauses spent waiting for a Bully election to converge) — the
// per-request decomposition of the paper's §5 worst-case-RTT anatomy.
func (p *SWSProxy) Invoke(ctx context.Context, sig ontology.Signature, op string, payload []byte) ([]byte, error) {
	// The idempotency key is fixed once per logical call, BEFORE the
	// attempt loop: every retry, re-bind and half-open probe of this
	// invocation reuses it, so a journaling group executes the
	// operation at most once no matter how the call is re-driven. The
	// SOAP stack mints it client-side (the MessageID header); calls
	// entering below SOAP get a proxy-local key.
	key := replog.KeyFromContext(ctx)
	if key == "" {
		key = p.peer.Addr() + "/k" + strconv.FormatUint(p.keySeq.Add(1), 10)
		ctx = replog.ContextWithKey(ctx, key)
	}
	ctx, span := p.cfg.Tracer.StartSpan(ctx, "proxy.invoke")
	span.SetAttr("proxy", p.cfg.Name)
	span.SetAttr("op", op)
	p.rtt.StampRequest(key)
	out, err := p.invokeTraced(ctx, sig, op, payload)
	if err == nil {
		p.rtt.StampReply(key)
	} else {
		p.rtt.Abandon(key)
	}
	span.EndWith(err)
	return out, err
}

func (p *SWSProxy) invokeTraced(ctx context.Context, sig ontology.Signature, op string, payload []byte) ([]byte, error) {
	dctx, dspan := p.cfg.Tracer.StartSpan(ctx, "discovery")
	dspan.SetAttr("action", string(sig.Action))
	matches, err := p.FindPeerGroupAdv(dctx, sig)
	dspan.SetAttr("matches", strconv.Itoa(len(matches)))
	dspan.EndWith(err)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for _, gm := range matches {
		out, err := p.invokeGroup(ctx, gm.Adv, op, payload)
		if err == nil {
			return p.cfg.Translator.TranslateResponse(sig, gm.Adv.Signature(), out)
		}
		lastErr = err
		// Application-level errors (the handler rejected the request)
		// are authoritative; infrastructure errors fall through to the
		// next matching group.
		var appErr *ApplicationError
		if errors.As(err, &appErr) {
			return nil, err
		}
		// A shed is a deliberate local decision, not a group failure:
		// driving the same request into the next matching group would
		// re-run the admission pipeline it was just rejected by and
		// feed the very overload it protects from.
		if errors.Is(err, loadctl.ErrRejected) {
			return nil, err
		}
	}
	return nil, lastErr
}

// ApplicationError wraps a service-level failure reported by a b-peer
// handler (as opposed to an infrastructure failure the proxy can mask
// with redundancy).
type ApplicationError struct {
	Group p2p.ID
	Msg   string
}

// Error implements error.
func (e *ApplicationError) Error() string {
	return fmt.Sprintf("proxy: application error from group %s: %s", e.Group, e.Msg)
}

// invokeGroup sends the request to the group's coordinator (or, for
// load-sharing groups, round-robin across the live replicas),
// following redirects and re-binding on failure.
func (p *SWSProxy) invokeGroup(ctx context.Context, adv *bpeer.SemanticAdvertisement, op string, payload []byte) ([]byte, error) {
	// Read-only ops on journaling (coordinated) groups take the
	// replica-balanced path: any replica serves them behind the
	// read-index barrier, so the proxy spreads them QoS-weighted
	// across the whole group instead of funnelling into the
	// coordinator.
	readOp := adv.EffectivePolicy() != bpeer.PolicyLoadSharing && adv.IsReadOp(op)
	attempts := p.invokeAttempts
	// Encoded once, outside the attempt loop: the idempotency key in
	// the wire request is structurally identical for every attempt of
	// this logical call (including breaker half-open probes). Reads
	// are unkeyed — they never enter the journal — and carry the
	// ReadOnly mark instead.
	var req []byte
	var err error
	if readOp {
		req, err = bpeer.EncodeReadRequest(op, payload)
		attempts = p.invokeReadBalanced
	} else {
		req, err = bpeer.EncodeRequest(op, payload, replog.KeyFromContext(ctx))
	}
	if err != nil {
		return nil, fmt.Errorf("proxy: encode request: %w", err)
	}
	br := p.breakerFor(adv.GID)
	adm := p.cfg.Admission
	if adm == nil {
		return attempts(ctx, adv, br, req)
	}
	// Admission runs once per group invocation, wrapping the whole
	// attempt loop: a rejection here happens before any binding lookup
	// or pipe I/O, and the release below feeds the full logical-call
	// latency (retries included) to the AIMD limiter. A pending
	// half-open probe bypasses every shed stage — it is the only way
	// the breaker can learn a condemned group recovered.
	release, aerr := adm.Admit(ctx, loadctl.ClientFromContext(ctx), br.ProbePending(time.Now()))
	if aerr != nil {
		p.health.Add("loadctl.shed", 1)
		return nil, fmt.Errorf("proxy: group %s: %w", adv.GID, aerr)
	}
	start := time.Now()
	out, err := attempts(ctx, adv, br, req)
	var appErr *ApplicationError
	failed := err != nil && !errors.As(err, &appErr)
	release(time.Since(start), failed)
	return out, err
}

// invokeAttempts drives the admitted request through the policy's
// attempt loop (coordinator re-binding, or round-robin replicas for
// load-sharing groups).
func (p *SWSProxy) invokeAttempts(ctx context.Context, adv *bpeer.SemanticAdvertisement, br *breaker, req []byte) ([]byte, error) {
	if adv.EffectivePolicy() == bpeer.PolicyLoadSharing {
		return p.invokeLoadShared(ctx, adv, br, req)
	}
	var lastErr error = ErrNoCoordinator
	// rebind flips after any failure so subsequent binding lookups are
	// recorded as "re-bind" — the failover cost the paper's §5 worst
	// case attributes to proxy re-binding.
	rebind := false
	for attempt := 0; attempt < p.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("proxy: invoke: %w", err)
		}
		if br != nil && !br.Allow(time.Now()) {
			// The group's breaker is open: shed the call instead of
			// burning attempts against a dead group, so Invoke can
			// fall through to the next semantically matching group.
			p.health.Add("breaker.rejected", 1)
			return nil, fmt.Errorf("proxy: group %s: %w", adv.GID, ErrCircuitOpen)
		}
		bnd, err := p.traceBinding(ctx, adv.GID, rebind)
		if err != nil {
			lastErr = err
			br.failure()
			p.sleep(ctx, attempt)
			continue
		}
		start := time.Now()
		cctx, cspan := p.cfg.Tracer.StartSpan(ctx, "call")
		cspan.SetAttr("coordinator", bnd.coordinator)
		callCtx, cancel := context.WithTimeout(cctx, p.cfg.CallTimeout)
		p.health.Add("calls.attempted", 1)
		resp, err := p.pipes.Call(callCtx, bnd.pipe, req)
		cancel()
		if err != nil {
			cspan.EndWith(err)
			// Timeout or transport failure: the coordinator is likely
			// dead. Invalidate and wait for the election.
			rebind = true
			p.invalidate(adv.GID, bnd)
			p.tracker.Observe(bnd.coordinator, time.Since(start), false)
			lastErr = fmt.Errorf("proxy: call coordinator %s: %w", bnd.coordinator, err)
			br.failure()
			p.sleep(ctx, attempt)
			continue
		}
		status, coord, _, errMsg, out, err := bpeer.DecodeResponse(resp)
		if err != nil {
			// An undecodable response is an infrastructure fault (a
			// corrupted link, not a rejecting service): re-bind and
			// back off like any other transport failure.
			cspan.EndWith(err)
			rebind = true
			p.invalidate(adv.GID, bnd)
			lastErr = err
			br.failure()
			p.sleep(ctx, attempt)
			continue
		}
		cspan.SetAttr("status", status)
		cspan.End()
		switch status {
		case "ok":
			p.tracker.Observe(bnd.coordinator, time.Since(start), true)
			br.success()
			return out, nil
		case "redirect":
			// The member answered with the real coordinator: re-bind.
			// The answer proves the group reachable, so the breaker's
			// failure streak resets.
			rebind = true
			p.invalidate(adv.GID, bnd)
			p.storeBinding(adv.GID, coord, nil)
			br.success()
			lastErr = fmt.Errorf("proxy: redirected to %s", coord)
		case "error":
			p.tracker.Observe(bnd.coordinator, time.Since(start), false)
			if isInfrastructureError(errMsg) {
				// "no coordinator elected" and similar: retry after
				// the election settles.
				rebind = true
				p.invalidate(adv.GID, bnd)
				lastErr = fmt.Errorf("proxy: group %s: %s", adv.GID, errMsg)
				br.failure()
				p.sleep(ctx, attempt)
				continue
			}
			// Application-level rejection: the infrastructure worked.
			br.success()
			return nil, &ApplicationError{Group: adv.GID, Msg: errMsg}
		default:
			lastErr = fmt.Errorf("proxy: unknown response status %q", status)
		}
	}
	return nil, lastErr
}

// traceBinding wraps bindingFor in a "bind" span (or "re-bind" once a
// failure has invalidated the previous coordinator).
func (p *SWSProxy) traceBinding(ctx context.Context, gid p2p.ID, rebind bool) (*binding, error) {
	name := "bind"
	if rebind {
		name = "re-bind"
	}
	bctx, bspan := p.cfg.Tracer.StartSpan(ctx, name)
	bnd, err := p.bindingFor(bctx, gid)
	if bnd != nil {
		bspan.SetAttr("coordinator", bnd.coordinator)
	}
	bspan.EndWith(err)
	return bnd, err
}

func isInfrastructureError(msg string) bool {
	return bpeer.IsInfraErrMsg(msg)
}

// InvokeGroup sends one request to a specific group (bypassing
// discovery and QoS ranking). The QoS ablation uses it as the
// "semantics-only, random selection" baseline.
func (p *SWSProxy) InvokeGroup(ctx context.Context, adv *bpeer.SemanticAdvertisement, op string, payload []byte) ([]byte, error) {
	return p.invokeGroup(ctx, adv, op, payload)
}

// sleep pauses between attempts with capped exponential backoff plus
// jitter, never sleeping past the caller's context deadline. The pause
// exists to let a Bully election converge, so it is recorded as an
// "election-wait" span — in the §5 RTT anatomy this is the election
// share of the worst case (re-binding work is under "re-bind").
func (p *SWSProxy) sleep(ctx context.Context, attempt int) {
	if ctx.Err() != nil {
		return
	}
	delay := p.backoffDelay(attempt)
	if deadline, ok := ctx.Deadline(); ok {
		if remaining := time.Until(deadline); remaining < delay {
			delay = remaining
		}
	}
	if delay <= 0 {
		return
	}
	p.health.Add("backoff.sleeps", 1)
	_, span := p.cfg.Tracer.StartSpan(ctx, "election-wait")
	span.SetAttr("delay", delay.String())
	defer span.End()
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// backoffDelay computes the attempt's pause: RetryDelay doubled per
// attempt, capped at RetryMaxDelay, with jitter drawn uniformly from
// the upper half of the window so concurrent retries decorrelate.
func (p *SWSProxy) backoffDelay(attempt int) time.Duration {
	if attempt > 16 {
		attempt = 16 // avoid shift overflow; the cap dominates anyway
	}
	d := p.cfg.RetryDelay << uint(attempt)
	if d <= 0 || d > p.cfg.RetryMaxDelay {
		d = p.cfg.RetryMaxDelay
	}
	half := d / 2
	p.mu.Lock()
	jitter := time.Duration(p.rng.Int63n(int64(half) + 1))
	p.mu.Unlock()
	return half + jitter
}

// invokeLoadShared spreads requests round-robin across the group's
// live replicas (bpeer.PolicyLoadSharing). Failed replicas are dropped
// from the cached set; the set is rebuilt from the rendezvous when it
// runs dry.
func (p *SWSProxy) invokeLoadShared(ctx context.Context, adv *bpeer.SemanticAdvertisement, br *breaker, req []byte) ([]byte, error) {
	var lastErr error = ErrNoCoordinator
	rebind := false
	for attempt := 0; attempt < p.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("proxy: invoke: %w", err)
		}
		if br != nil && !br.Allow(time.Now()) {
			p.health.Add("breaker.rejected", 1)
			return nil, fmt.Errorf("proxy: group %s: %w", adv.GID, ErrCircuitOpen)
		}
		bindName := "bind"
		if rebind {
			bindName = "re-bind"
		}
		bctx, bspan := p.cfg.Tracer.StartSpan(ctx, bindName)
		pipe, err := p.nextSharedPipe(bctx, adv.GID)
		bspan.EndWith(err)
		if err != nil {
			lastErr = err
			br.failure()
			p.sleep(ctx, attempt)
			continue
		}
		start := time.Now()
		cctx, cspan := p.cfg.Tracer.StartSpan(ctx, "call")
		cspan.SetAttr("replica", pipe.Addr)
		callCtx, cancel := context.WithTimeout(cctx, p.cfg.CallTimeout)
		p.health.Add("calls.attempted", 1)
		resp, err := p.pipes.Call(callCtx, pipe, req)
		cancel()
		if err != nil {
			cspan.EndWith(err)
			rebind = true
			p.dropSharedPipe(adv.GID, pipe)
			p.tracker.Observe(pipe.Addr, time.Since(start), false)
			lastErr = fmt.Errorf("proxy: call replica %s: %w", pipe.Addr, err)
			br.failure()
			continue
		}
		status, _, _, errMsg, out, err := bpeer.DecodeResponse(resp)
		if err != nil {
			// Corrupted response: infrastructure fault, try another
			// replica.
			cspan.EndWith(err)
			rebind = true
			p.dropSharedPipe(adv.GID, pipe)
			lastErr = err
			br.failure()
			continue
		}
		cspan.SetAttr("status", status)
		cspan.End()
		switch status {
		case "ok":
			p.tracker.Observe(pipe.Addr, time.Since(start), true)
			br.success()
			return out, nil
		case "error":
			p.tracker.Observe(pipe.Addr, time.Since(start), false)
			if isInfrastructureError(errMsg) {
				rebind = true
				p.dropSharedPipe(adv.GID, pipe)
				lastErr = fmt.Errorf("proxy: replica %s: %s", pipe.Addr, errMsg)
				br.failure()
				p.sleep(ctx, attempt)
				continue
			}
			br.success()
			return nil, &ApplicationError{Group: adv.GID, Msg: errMsg}
		default:
			lastErr = fmt.Errorf("proxy: unknown response status %q", status)
		}
	}
	return nil, lastErr
}

// nextSharedPipe returns the next replica pipe round-robin, building
// the set from the rendezvous membership when empty.
func (p *SWSProxy) nextSharedPipe(ctx context.Context, gid p2p.ID) (*p2p.PipeAdvertisement, error) {
	p.mu.Lock()
	sb := p.shared[gid]
	if sb != nil && len(sb.pipes) > 0 {
		pipe := sb.pipes[sb.next%len(sb.pipes)]
		sb.next++
		p.mu.Unlock()
		return pipe, nil
	}
	p.mu.Unlock()

	bindCtx, cancel := context.WithTimeout(ctx, p.cfg.BindTimeout)
	defer cancel()
	members, err := p.memberAddrs(bindCtx, gid)
	if err != nil {
		return nil, err
	}
	var pipes []*p2p.PipeAdvertisement
	var lastErr error
	for _, addr := range members {
		pipe, err := bpeer.QueryServicePipe(bindCtx, p.bindRes, addr)
		if err != nil {
			lastErr = err
			continue
		}
		pipes = append(pipes, pipe)
	}
	if len(pipes) == 0 {
		if lastErr != nil {
			return nil, fmt.Errorf("proxy: no reachable replicas: %w", lastErr)
		}
		return nil, ErrNoCoordinator
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	sb = &sharedBinding{pipes: pipes}
	p.shared[gid] = sb
	pipe := sb.pipes[0]
	sb.next = 1
	return pipe, nil
}

// dropSharedPipe removes a failed replica from the cached set.
func (p *SWSProxy) dropSharedPipe(gid p2p.ID, failed *p2p.PipeAdvertisement) {
	p.mu.Lock()
	defer p.mu.Unlock()
	sb := p.shared[gid]
	if sb == nil {
		return
	}
	kept := sb.pipes[:0]
	for _, pipe := range sb.pipes {
		if pipe != failed {
			kept = append(kept, pipe)
		}
	}
	sb.pipes = kept
}

// bindingFor returns the cached binding for the group or establishes a
// new one: ask the rendezvous for members, query them (highest rank
// first) for the coordinator, then fetch the coordinator's service
// pipe.
func (p *SWSProxy) bindingFor(ctx context.Context, gid p2p.ID) (*binding, error) {
	p.mu.Lock()
	if b, ok := p.bindings[gid]; ok && b.pipe != nil {
		p.mu.Unlock()
		return b, nil
	}
	var hint string
	if b, ok := p.bindings[gid]; ok {
		hint = b.coordinator // redirect target without a pipe yet
	}
	p.mu.Unlock()

	bindCtx, cancel := context.WithTimeout(ctx, p.cfg.BindTimeout)
	defer cancel()

	candidates, err := p.memberAddrs(bindCtx, gid)
	if err != nil {
		return nil, err
	}
	if hint != "" {
		candidates = append([]string{hint}, candidates...)
	}
	var lastErr error = ErrNoCoordinator
	asked := make(map[string]bool)
	for _, addr := range candidates {
		if asked[addr] {
			continue
		}
		asked[addr] = true
		coord, pipeID, err := bpeer.QueryCoordinator(bindCtx, p.bindRes, addr)
		if err != nil {
			lastErr = err
			continue
		}
		if pipeID == "" {
			// The member is not the coordinator; ask the coordinator
			// itself (unless we already did).
			if asked[coord] {
				continue
			}
			asked[coord] = true
			coord2, pipeID2, err := bpeer.QueryCoordinator(bindCtx, p.bindRes, coord)
			if err != nil || pipeID2 == "" {
				lastErr = fmt.Errorf("proxy: coordinator %s unreachable", coord)
				continue
			}
			coord, pipeID = coord2, pipeID2
		}
		pipeAdv := &p2p.PipeAdvertisement{
			PipeID: pipeID,
			Kind:   p2p.UnicastPipe,
			Name:   string(gid) + "/service",
			Addr:   coord,
		}
		return p.storeBinding(gid, coord, pipeAdv), nil
	}
	return nil, lastErr
}

// memberAddrs returns the group's member addresses, highest rank
// first (the likely coordinator).
func (p *SWSProxy) memberAddrs(ctx context.Context, gid p2p.ID) ([]string, error) {
	advs, err := p.rdv.Members(ctx, gid)
	if err != nil {
		return nil, fmt.Errorf("proxy: group members: %w", err)
	}
	sort.Slice(advs, func(i, j int) bool { return advs[i].Rank > advs[j].Rank })
	out := make([]string, 0, len(advs))
	for _, a := range advs {
		out = append(out, a.Addr)
	}
	return out, nil
}

func (p *SWSProxy) storeBinding(gid p2p.ID, coord string, pipe *p2p.PipeAdvertisement) *binding {
	p.mu.Lock()
	defer p.mu.Unlock()
	b := &binding{coordinator: coord, pipe: pipe}
	if last, ok := p.lastCoord[gid]; ok && last != coord {
		p.rebinds++
	}
	p.lastCoord[gid] = coord
	p.bindings[gid] = b
	return b
}

// invalidate drops the binding if it is still the one that failed.
func (p *SWSProxy) invalidate(gid p2p.ID, failed *binding) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if cur, ok := p.bindings[gid]; ok && cur == failed {
		delete(p.bindings, gid)
	}
}
