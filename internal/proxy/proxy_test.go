package proxy

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"whisper/internal/bpeer"
	"whisper/internal/ontology"
	"whisper/internal/p2p"
	"whisper/internal/qos"
	"whisper/internal/simnet"
)

// fixture wires a rendezvous, b-peer groups and a proxy on a
// zero-latency simulated network.
type fixture struct {
	net      *simnet.Network
	gen      *p2p.IDGen
	rdvPeer  *p2p.Peer
	reasoner *ontology.Reasoner
	proxy    *SWSProxy
	groups   map[string][]*bpeer.BPeer
	nextPort int
}

func studentSig() ontology.Signature {
	return ontology.Signature{
		Action:  ontology.ConceptStudentInformation,
		Inputs:  []string{ontology.ConceptStudentID},
		Outputs: []string{ontology.ConceptStudentInfo},
	}
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{
		net:      simnet.NewNetwork(simnet.WithLatency(simnet.ZeroLatency()), simnet.WithSeed(1)),
		gen:      p2p.NewIDGen(1),
		reasoner: ontology.NewReasoner(ontology.Combined()),
		groups:   make(map[string][]*bpeer.BPeer),
	}
	t.Cleanup(func() { _ = f.net.Close() })

	port, err := f.net.NewPort("rdv")
	if err != nil {
		t.Fatalf("rdv port: %v", err)
	}
	f.rdvPeer = p2p.NewPeer("rdv", f.gen.New(p2p.PeerIDKind), port)
	p2p.NewRendezvousService(f.rdvPeer, 2*time.Second)
	p2p.NewDiscoveryService(f.rdvPeer)
	f.rdvPeer.Start()
	t.Cleanup(func() { _ = f.rdvPeer.Close() })
	return f
}

func (f *fixture) port(t *testing.T, name string) *simnet.Port {
	t.Helper()
	f.nextPort++
	p, err := f.net.NewPort(fmt.Sprintf("%s-%d", name, f.nextPort))
	if err != nil {
		t.Fatalf("port %s: %v", name, err)
	}
	return p
}

// addGroup deploys a group of replicas serving the signature with the
// given handler.
func (f *fixture) addGroup(t *testing.T, name string, sig ontology.Signature, profile qos.Profile, replicas int, handler bpeer.Handler) []*bpeer.BPeer {
	t.Helper()
	gid := f.gen.New(p2p.GroupIDKind)
	var peers []*bpeer.BPeer
	for i := 0; i < replicas; i++ {
		bp, err := bpeer.New(f.port(t, name), bpeer.Config{
			Name:              fmt.Sprintf("%s-%d", name, i),
			Rank:              int64(i + 1),
			GroupID:           gid,
			GroupName:         name,
			Signature:         sig,
			QoS:               profile,
			RendezvousAddr:    "rdv",
			Handler:           handler,
			IDGen:             f.gen,
			HeartbeatInterval: 20 * time.Millisecond,
			HeartbeatTimeout:  80 * time.Millisecond,
			ElectionTimeout:   40 * time.Millisecond,
			LeaseInterval:     200 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("bpeer %s-%d: %v", name, i, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := bp.Start(ctx); err != nil {
			cancel()
			t.Fatalf("start %s-%d: %v", name, i, err)
		}
		cancel()
		t.Cleanup(func() { _ = bp.Close() })
		peers = append(peers, bp)
	}
	f.groups[name] = peers
	f.waitGroupReady(t, peers)
	return peers
}

func (f *fixture) waitGroupReady(t *testing.T, peers []*bpeer.BPeer) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		coord := peers[0].Coordinator()
		ready := coord != ""
		for _, p := range peers {
			if p.Coordinator() != coord {
				ready = false
			}
		}
		if ready {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("group never converged on a coordinator")
}

func (f *fixture) addProxy(t *testing.T, cfg Config) *SWSProxy {
	t.Helper()
	cfg.Name = "sws-proxy"
	cfg.RendezvousAddr = "rdv"
	if cfg.Reasoner == nil {
		cfg.Reasoner = f.reasoner
	}
	p, err := New(f.port(t, "proxy"), cfg)
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	p.Start()
	t.Cleanup(func() { _ = p.Close() })
	f.proxy = p
	return p
}

func echo(name string) bpeer.Handler {
	return bpeer.HandlerFunc(func(_ context.Context, op string, payload []byte) ([]byte, error) {
		return []byte(name + ":" + op + ":" + string(payload)), nil
	})
}

func TestProxyInvokeEndToEnd(t *testing.T) {
	f := newFixture(t)
	f.addGroup(t, "students", studentSig(), qos.Profile{Reliability: 0.99}, 3, echo("students"))
	p := f.addProxy(t, Config{})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out, err := p.Invoke(ctx, studentSig(), "StudentInformation", []byte("S1"))
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if string(out) != "students:StudentInformation:S1" {
		t.Errorf("out = %q", out)
	}
}

func TestProxyMatchesSynonymAdvertisement(t *testing.T) {
	f := newFixture(t)
	// The group advertises synonyms of the requested concepts:
	// StudentLookup ≡ StudentInformation etc.
	o := ontology.University()
	synSig := ontology.Signature{
		Action:  o.Term("StudentLookup"),
		Inputs:  []string{o.Term("MatriculationNumber")},
		Outputs: []string{o.Term("StudentRecord")},
	}
	f.addGroup(t, "students-syn", synSig, qos.Profile{}, 2, echo("syn"))
	p := f.addProxy(t, Config{})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	matches, err := p.FindPeerGroupAdv(ctx, studentSig())
	if err != nil {
		t.Fatalf("find: %v", err)
	}
	if len(matches) != 1 {
		t.Fatalf("matches = %d, want 1", len(matches))
	}
	if matches[0].Match.Degree != ontology.MatchExact {
		t.Errorf("degree = %v, want exact (synonyms)", matches[0].Match.Degree)
	}
	out, err := p.Invoke(ctx, studentSig(), "StudentInformation", []byte("S2"))
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if string(out) != "syn:StudentInformation:S2" {
		t.Errorf("out = %q", out)
	}
}

func TestProxyRejectsSemanticMismatch(t *testing.T) {
	f := newFixture(t)
	// Deploy a loans group; ask for student information.
	loanSig := ontology.Signature{
		Action:  ontology.ConceptLoanApproval,
		Inputs:  []string{ontology.ConceptLoanApplication},
		Outputs: []string{ontology.ConceptLoanDecision},
	}
	f.addGroup(t, "loans", loanSig, qos.Profile{}, 2, echo("loans"))
	p := f.addProxy(t, Config{})

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if _, err := p.Invoke(ctx, studentSig(), "StudentInformation", nil); !errors.Is(err, ErrNoMatch) {
		t.Errorf("err = %v, want ErrNoMatch", err)
	}
}

func TestProxyApplicationErrorPassesThrough(t *testing.T) {
	f := newFixture(t)
	f.addGroup(t, "students", studentSig(), qos.Profile{}, 2,
		bpeer.HandlerFunc(func(_ context.Context, _ string, _ []byte) ([]byte, error) {
			return nil, errors.New("student not enrolled")
		}))
	p := f.addProxy(t, Config{})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := p.Invoke(ctx, studentSig(), "StudentInformation", []byte("S1"))
	var appErr *ApplicationError
	if !errors.As(err, &appErr) {
		t.Fatalf("err = %v, want *ApplicationError", err)
	}
	if appErr.Msg != "student not enrolled" {
		t.Errorf("msg = %q", appErr.Msg)
	}
}

func TestProxyFailoverMasksCoordinatorCrash(t *testing.T) {
	f := newFixture(t)
	peers := f.addGroup(t, "students", studentSig(), qos.Profile{}, 3, echo("g"))
	p := f.addProxy(t, Config{CallTimeout: 300 * time.Millisecond})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := p.Invoke(ctx, studentSig(), "Op", []byte("warm")); err != nil {
		t.Fatalf("warm-up invoke: %v", err)
	}

	// Crash the coordinator (highest rank).
	if err := peers[2].Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	// The very next invoke must still succeed through re-binding.
	out, err := p.Invoke(ctx, studentSig(), "Op", []byte("after-crash"))
	if err != nil {
		t.Fatalf("invoke after crash: %v", err)
	}
	if string(out) != "g:Op:after-crash" {
		t.Errorf("out = %q", out)
	}
	if p.Rebinds() == 0 {
		t.Error("expected at least one re-binding after coordinator crash")
	}
}

func TestProxyPrefersBetterQoSGroup(t *testing.T) {
	f := newFixture(t)
	f.addGroup(t, "slow", studentSig(),
		qos.Profile{LatencyMillis: 500, Reliability: 0.5, Availability: 0.5}, 1, echo("slow"))
	f.addGroup(t, "fast", studentSig(),
		qos.Profile{LatencyMillis: 2, Reliability: 0.999, Availability: 0.999}, 1, echo("fast"))
	p := f.addProxy(t, Config{})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	matches, err := p.FindPeerGroupAdv(ctx, studentSig())
	if err != nil {
		t.Fatalf("find: %v", err)
	}
	if len(matches) != 2 {
		t.Fatalf("matches = %d, want 2", len(matches))
	}
	if matches[0].Adv.Name != "fast" {
		t.Errorf("best group = %s, want fast", matches[0].Adv.Name)
	}
	out, err := p.Invoke(ctx, studentSig(), "Op", nil)
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if string(out) != "fast:Op:" {
		t.Errorf("out = %q, want served by fast group", out)
	}
}

func TestProxyMinDegreeThreshold(t *testing.T) {
	f := newFixture(t)
	o := ontology.University()
	// Group advertises the more general StudentInformation action but
	// outputs only PersonInfo (a superclass of StudentInfo →
	// subsume-level output match).
	generalSig := ontology.Signature{
		Action:  ontology.ConceptStudentInformation,
		Inputs:  []string{ontology.ConceptStudentID},
		Outputs: []string{o.Term("PersonInfo")},
	}
	f.addGroup(t, "general", generalSig, qos.Profile{}, 1, echo("general"))

	strict := f.addProxy(t, Config{MinDegree: ontology.MatchPlugin})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if _, err := strict.FindPeerGroupAdv(ctx, studentSig()); !errors.Is(err, ErrNoMatch) {
		t.Errorf("strict proxy: err = %v, want ErrNoMatch", err)
	}
}

func TestProxyConfigValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := New(f.port(t, "x"), Config{RendezvousAddr: "rdv"}); err == nil {
		t.Error("expected error without reasoner")
	}
	if _, err := New(f.port(t, "y"), Config{Reasoner: f.reasoner}); err == nil {
		t.Error("expected error without rendezvous")
	}
}

func TestProxyRecordsRTT(t *testing.T) {
	f := newFixture(t)
	f.addGroup(t, "students", studentSig(), qos.Profile{}, 1, echo("g"))
	p := f.addProxy(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		if _, err := p.Invoke(ctx, studentSig(), "Op", nil); err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}
	lat, ratio, calls, ok := p.Tracker().Observed(f.groups["students"][0].Addr())
	if !ok || calls != 5 || ratio != 1 {
		t.Errorf("tracker: lat=%v ratio=%v calls=%d ok=%v", lat, ratio, calls, ok)
	}
}

// addLoadSharedGroup deploys a load-sharing group whose handlers tag
// responses with their replica name.
func (f *fixture) addLoadSharedGroup(t *testing.T, name string, sig ontology.Signature, replicas int) []*bpeer.BPeer {
	t.Helper()
	gid := f.gen.New(p2p.GroupIDKind)
	var peers []*bpeer.BPeer
	for i := 0; i < replicas; i++ {
		replica := fmt.Sprintf("%s-%d", name, i)
		bp, err := bpeer.New(f.port(t, name), bpeer.Config{
			Name:              replica,
			Rank:              int64(i + 1),
			GroupID:           gid,
			GroupName:         name,
			Signature:         sig,
			RendezvousAddr:    "rdv",
			Handler:           echo(replica),
			IDGen:             f.gen,
			HeartbeatInterval: 20 * time.Millisecond,
			HeartbeatTimeout:  80 * time.Millisecond,
			ElectionTimeout:   40 * time.Millisecond,
			LeaseInterval:     200 * time.Millisecond,
			LoadSharing:       true,
		})
		if err != nil {
			t.Fatalf("bpeer %s: %v", replica, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := bp.Start(ctx); err != nil {
			cancel()
			t.Fatalf("start %s: %v", replica, err)
		}
		cancel()
		t.Cleanup(func() { _ = bp.Close() })
		peers = append(peers, bp)
	}
	f.groups[name] = peers
	f.waitGroupReady(t, peers)
	return peers
}

func TestProxyLoadSharingSpreadsRequests(t *testing.T) {
	f := newFixture(t)
	f.addLoadSharedGroup(t, "shared", studentSig(), 3)
	p := f.addProxy(t, Config{})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	served := map[string]int{}
	for i := 0; i < 12; i++ {
		out, err := p.Invoke(ctx, studentSig(), "Op", nil)
		if err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
		// Response prefix is the replica name ("shared-K:Op:").
		served[strings.SplitN(string(out), ":", 2)[0]]++
	}
	if len(served) != 3 {
		t.Errorf("replicas serving = %v, want all 3", served)
	}
	for replica, n := range served {
		if n != 4 {
			t.Errorf("replica %s served %d, want 4 (round robin)", replica, n)
		}
	}
}

func TestProxyLoadSharingSurvivesReplicaCrash(t *testing.T) {
	f := newFixture(t)
	peers := f.addLoadSharedGroup(t, "shared", studentSig(), 3)
	p := f.addProxy(t, Config{CallTimeout: 300 * time.Millisecond})

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := p.Invoke(ctx, studentSig(), "Op", nil); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	if err := peers[0].Crash(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	// Every subsequent request must still succeed (dead replica is
	// dropped from the shared set after one failed call).
	for i := 0; i < 8; i++ {
		if _, err := p.Invoke(ctx, studentSig(), "Op", nil); err != nil {
			t.Fatalf("invoke %d after crash: %v", i, err)
		}
	}
}
