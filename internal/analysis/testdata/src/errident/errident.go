// Golden file for the errident analyzer: sentinel errors and wire
// strings crossing the pipe/SOAP boundaries must be checked through
// errors.Is/As or the declaring package's typed helper.
package erridenttest

import (
	"errors"
	"strings"

	"whisper/internal/bpeer"
)

// ErrNoRoute is a sentinel that gets wrapped before crossing the pipe.
var ErrNoRoute = errors.New("no route to peer")

// ErrMsgBusy is a wire string owned by this package: comparing it here
// (inside the typed helper) is the sanctioned pattern.
const ErrMsgBusy = "peer busy"

func badEq(err error) bool {
	return err == ErrNoRoute // want "ErrNoRoute is compared with ==; the sentinel is wrapped .* use errors.Is"
}

func badNeq(err error) bool {
	return err != ErrNoRoute // want "ErrNoRoute is compared with !="
}

func badSwitch(err error) string {
	switch err {
	case ErrNoRoute: // want "switch case compares the sentinel ErrNoRoute by identity"
		return "reroute"
	}
	return ""
}

func badCrossPkgSentinel(err error) bool {
	return err == bpeer.ErrStopped // want "bpeer.ErrStopped is compared with =="
}

func badWireStringEq(msg string) bool {
	return msg == bpeer.ErrMsgNoCoordinator // want "wire string bpeer.ErrMsgNoCoordinator is compared outside its declaring package"
}

func badWireStringSwitch(msg string) bool {
	switch msg {
	case bpeer.ErrMsgFailingOver: // want "switch case matches the wire string bpeer.ErrMsgFailingOver outside its declaring package"
		return true
	}
	return false
}

func badErrorText(err error) bool {
	return err.Error() == "no route to peer" // want "comparing err.Error\(\) text instead of error identity"
}

func badContains(err error) bool {
	return strings.Contains(err.Error(), "route") // want "strings.Contains on err.Error\(\) matches rendered text"
}

func badPrefixWireString(msg string) bool {
	return strings.HasPrefix(msg, bpeer.ErrMsgOutcomeUnknown) // want "strings.HasPrefix against the wire string bpeer.ErrMsgOutcomeUnknown"
}

// True negatives: unwrapping identity checks, nil checks, the
// declaring package's own wire string, and the typed helper.

func goodIs(err error) bool { return errors.Is(err, ErrNoRoute) }

func goodAs(err error) bool {
	var target *strings.Replacer
	_ = target
	return errors.As(err, &target)
}

func goodNil(err error) bool { return err == nil }

// IsBusyMsg is the typed helper owning ErrMsgBusy's format.
func IsBusyMsg(msg string) bool { return msg == ErrMsgBusy }

func goodDelegatesToHelper(msg string) bool { return bpeer.IsInfraErrMsg(msg) }

func goodPlainStrings(a, b string) bool { return a == b }

func suppressed(err error) bool {
	return err == ErrNoRoute //lint:allow errident same-stack comparison before the error ever crosses a boundary
}
