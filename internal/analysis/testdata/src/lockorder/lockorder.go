// Golden file for the lockorder analyzer. The go toolchain ignores
// testdata directories, so the deliberate inversions here never build.
package lockordertest

import "sync"

type ledger struct{ mu sync.Mutex }
type index struct{ mu sync.Mutex }

// The AB/BA inversion: commit acquires ledger then index, reindex
// acquires index then ledger. The cycle is reported once, at the
// earliest edge.

func commit(l *ledger, ix *index) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ix.mu.Lock() // want "lock-order cycle \(potential deadlock\): \(ledger\).mu → \(index\).mu .*; \(index\).mu → \(ledger\).mu .*; acquire these locks in one global order"
	ix.mu.Unlock()
}

func reindex(l *ledger, ix *index) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	l.mu.Lock()
	l.mu.Unlock()
}

// True negative: a consistent global order — every path takes cache.mu
// before store.mu — produces edges but no cycle.

type store struct{ mu sync.Mutex }
type cache struct{ mu sync.Mutex }

func fill(c *cache, s *store) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
}

func evict(c *cache, s *store) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
}

// True negative: sequential acquisitions (first released before the
// second is taken) create no ordering edge at all.

func sequential(l *ledger, s *store) {
	l.mu.Lock()
	l.mu.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
}

// Suppressed: a deliberate inversion behind a trylock-style protocol
// documented at the site.

type left struct{ mu sync.Mutex }
type right struct{ mu sync.Mutex }

func grabLR(a *left, b *right) {
	a.mu.Lock()
	defer a.mu.Unlock()
	//lint:allow lockorder ordered by peer ID at runtime; both orders exist statically but never in one process
	b.mu.Lock()
	b.mu.Unlock()
}

func grabRL(a *left, b *right) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}
