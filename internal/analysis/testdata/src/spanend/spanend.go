// Golden file for the spanend analyzer. The toy Tracer mirrors
// internal/trace: StartSpan returns (ctx, span), StartRemote returns
// the span alone.
package spanendtest

type Span struct{}

func (s *Span) End()              {}
func (s *Span) EndWith(err error) {}

type Tracer struct{}

func (t *Tracer) StartSpan(ctx any, name string) (any, *Span) { return ctx, &Span{} }
func (t *Tracer) StartRemote(parent any, name string) *Span   { return &Span{} }

func work() {}

func leaksFallThrough(tr *Tracer, ctx any) {
	ctx, span := tr.StartSpan(ctx, "op") // want "never ended on the fall-through path"
	_ = ctx
	_ = span
	work()
}

func leaksOnReturn(tr *Tracer, ctx any, err error) error {
	_, span := tr.StartSpan(ctx, "op")
	if err != nil {
		return err // want "is not ended on this return path"
	}
	span.End()
	return nil
}

func leaksRemote(tr *Tracer, parent any) {
	span := tr.StartRemote(parent, "rpc") // want "never ended on the fall-through path"
	_ = span
	work()
}

func leaksOnContinue(tr *Tracer, ctx any, items []error) {
	for _, err := range items {
		_, span := tr.StartSpan(ctx, "item")
		if err != nil {
			continue // want "is not ended on this continue path"
		}
		span.End()
	}
}

// True negatives: deferred End, EndWith on every branch, the named
// reply-closure pattern, a discarded no-op span, and a suppression.

func deferred(tr *Tracer, ctx any) {
	_, span := tr.StartSpan(ctx, "op")
	defer span.End()
	work()
}

func deferredLiteral(tr *Tracer, ctx any) {
	var err error
	_, span := tr.StartSpan(ctx, "op")
	defer func() {
		span.EndWith(err)
	}()
	work()
}

func everyBranch(tr *Tracer, ctx any, err error) error {
	_, span := tr.StartSpan(ctx, "op")
	if err != nil {
		span.EndWith(err)
		return err
	}
	span.End()
	return nil
}

func replyClosure(tr *Tracer, ctx any, err error) {
	_, span := tr.StartSpan(ctx, "req")
	reply := func(e error) { span.EndWith(e) }
	if err != nil {
		reply(err)
		return
	}
	work()
	reply(nil)
}

func discarded(tr *Tracer, ctx any) {
	_, _ = tr.StartSpan(ctx, "noop")
	work()
}

func endBeforeSwitch(tr *Tracer, ctx any, kind int) {
	for i := 0; i < kind; i++ {
		_, span := tr.StartSpan(ctx, "msg")
		span.End()
		switch kind {
		case 1:
			work()
		default:
			continue
		}
	}
}

func suppressed(tr *Tracer, ctx any) {
	_, span := tr.StartSpan(ctx, "fire-and-forget") //lint:allow spanend span handed to the collector goroutine, ended there
	_ = span
	work()
}
