// Golden file for the poolsafe analyzer. getBuf/putBuf mirror
// internal/soap's pooled-buffer helpers.
package poolsafetest

import (
	"bytes"
	"sync"
)

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getBuf() *bytes.Buffer {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putBuf(b *bytes.Buffer) {
	bufPool.Put(b)
}

type server struct {
	scratch *bytes.Buffer
}

func useAfterPut() string {
	b := getBuf()
	b.WriteString("envelope")
	putBuf(b)
	return b.String() // want "used after being returned to the pool"
}

func doublePut() {
	b := getBuf()
	putBuf(b)
	putBuf(b) // want "put back to the pool twice"
}

func (s *server) retain() {
	s.scratch = getBuf() // want "stored in a struct field"
}

// True negatives: deferred Put (runs after every use), rebinding the
// name to a fresh borrow, direct pool use, and a suppression.

func deferredPut() []byte {
	b := getBuf()
	defer bufPool.Put(b)
	b.WriteString("x")
	return append([]byte(nil), b.Bytes()...)
}

func rebind() {
	b := getBuf()
	putBuf(b)
	b = getBuf()
	b.WriteString("x")
	putBuf(b)
}

func direct() {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	bufPool.Put(b)
}

func branchScoped(cond bool) {
	b := getBuf()
	if cond {
		putBuf(b)
		return
	}
	b.WriteString("still borrowed on this branch")
	putBuf(b)
}

func suppressed() int {
	b := getBuf()
	putBuf(b)
	return b.Cap() //lint:allow poolsafe reading capacity of a maybe-recycled buffer is tolerated in this probe
}
