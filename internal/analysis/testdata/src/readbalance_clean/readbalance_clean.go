// True-negative golden file distilled from proxy/readbalance.go (the
// follower-read balancer added after PR 4): snapshot-under-lock with
// the network call outside the critical section, ctx threading through
// the invocation path, filtered in-place replica drops, and weighted
// selection over a snapshot. Every analyzer in the suite must read
// this as clean — zero diagnostics.
package readbalancecleantest

import (
	"context"
	"sync"
	"time"
)

type replica struct {
	addr  string
	score float64
}

type balancer struct {
	mu       sync.Mutex
	replicas []*replica
}

// snapshot copies the set under the lock so callers never invoke the
// network while holding it (the lockheld discipline).
func (b *balancer) snapshot() []*replica {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*replica, len(b.replicas))
	copy(out, b.replicas)
	return out
}

// drop filters in place: reslicing to zero length reuses the backing
// array, so churn does not reallocate.
func (b *balancer) drop(addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	kept := b.replicas[:0]
	for _, r := range b.replicas {
		if r.addr != addr {
			kept = append(kept, r)
		}
	}
	b.replicas = kept
}

// pick draws over the snapshot, outside the lock.
func (b *balancer) pick() *replica {
	reps := b.snapshot()
	var best *replica
	for _, r := range reps {
		if best == nil || r.score > best.score {
			best = r
		}
	}
	return best
}

type caller interface {
	Call(ctx context.Context, addr string, req []byte) ([]byte, error)
}

// invoke threads ctx through the blocking call and retries on another
// replica with a cancellable backoff.
func invoke(ctx context.Context, c caller, b *balancer, req []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		r := b.pick()
		if r == nil {
			break
		}
		resp, err := c.Call(ctx, r.addr, req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		b.drop(r.addr)
		select {
		case <-time.After(time.Duration(attempt+1) * 10 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}
