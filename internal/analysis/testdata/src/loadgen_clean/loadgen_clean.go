// Golden true-negative file for the loadgen package, loaded under
// whisper/internal/loadgen: an open-loop generator built on a seeded
// rand.Rand (including the allowlisted rand.NewZipf constructor) and
// an injected clock reads clean — zero diagnostics.
package loadgenclean

import (
	"context"
	"math/rand"
	"time"
)

type Clock interface{ Now() time.Time }

type arrival struct {
	at     time.Duration
	client int
}

// schedule draws every arrival from one seeded source, so a seed fully
// determines the offered load.
func schedule(seed int64, rate float64, window time.Duration, clients int) []arrival {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(clients-1))
	var out []arrival
	for at := time.Duration(0); at < window; {
		at += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		out = append(out, arrival{at: at, client: int(zipf.Uint64())})
	}
	return out
}

// run paces arrivals with timers against the injected clock and stops
// on caller cancellation — no wall-clock reads, no detached roots.
func run(ctx context.Context, clk Clock, arrivals []arrival, call func(context.Context, arrival) error) int {
	start := clk.Now()
	issued := 0
	for _, a := range arrivals {
		wait := a.at - clk.Now().Sub(start)
		if wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return issued
			}
		}
		issued++
		go func(a arrival) { _ = call(ctx, a) }(a)
	}
	return issued
}
