// Golden file for the interprocedural side of the lockheld analyzer:
// the blocking primitive sits in a callee (or a callee's callee), and
// the diagnostic lands at the call site under the held lock, naming
// the chain. The PR 4 intraprocedural analyzer could not see any of
// these.
package lockheldinterproctest

import "sync"

type hub struct {
	mu     sync.Mutex
	events chan int
}

func (h *hub) emit() { h.events <- 1 }

func (h *hub) emitAll() { h.emit() }

func (h *hub) badDirectCallee() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.emit() // want "h.mu is held across call to \(hub\).emit, which blocks \(channel send at .*\); release the lock before blocking"
}

func (h *hub) badTwoHops() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.emitAll() // want "held across call to \(hub\).emitAll, which blocks \(channel send at .* via \(hub\).emit\)"
}

// Cross-function via a plain function rather than a method.

func drain(h *hub) { <-h.events }

func (h *hub) badFuncCallee() {
	h.mu.Lock()
	defer h.mu.Unlock()
	drain(h) // want "held across call to drain, which blocks \(channel receive at .*\)"
}

// True negatives: a non-blocking callee under the lock, the blocking
// callee after release, and a goroutine hand-off.

func (h *hub) tally() int { return 1 }

func (h *hub) goodPureCallee() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.tally()
}

func (h *hub) goodReleasedFirst() {
	h.mu.Lock()
	h.mu.Unlock()
	h.emit()
}

func (h *hub) goodGoroutine() {
	h.mu.Lock()
	defer h.mu.Unlock()
	go h.emit() // runs on another goroutine, which holds nothing
}

func (h *hub) suppressed() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.emit() //lint:allow lockheld events is buffered for the worst-case fan-out; the send cannot park
}
