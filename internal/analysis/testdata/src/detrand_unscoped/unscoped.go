// True-negative golden file: detrand only applies to the deterministic
// engines; this package is loaded as whisper/internal/proxy, where the
// wall clock and global rand are allowed.
package unscoped

import (
	"math/rand"
	"time"
)

func jitter() time.Duration {
	start := time.Now()
	_ = rand.Intn(10)
	return time.Since(start)
}
