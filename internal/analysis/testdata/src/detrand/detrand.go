// Golden file for the detrand analyzer, loaded under
// whisper/internal/chaos so the determinism contract applies.
package detrandtest

import (
	"math/rand"
	"time"
)

type Clock interface{ Now() time.Time }

type engine struct {
	rng *rand.Rand
	clk Clock
}

func (e *engine) step() {
	_ = rand.Intn(10)     // want "global rand.Intn"
	_ = rand.Float64()    // want "global rand.Float64"
	start := time.Now()   // want "time.Now in a deterministic engine"
	_ = time.Since(start) // want "time.Since in a deterministic engine"
	_ = time.Until(start) // want "time.Until in a deterministic engine"
}

// True negatives: constructing the injected source, drawing from it,
// reading the injected clock, pure duration arithmetic, and an
// explicit suppression.

func (e *engine) seeded(seed int64) {
	e.rng = rand.New(rand.NewSource(seed))
	_ = e.rng.Intn(10)
	_ = e.clk.Now()
	_ = 5 * time.Millisecond
}

func (e *engine) suppressed() {
	_ = time.Now() //lint:allow detrand wall-clock timestamp only decorates the log line
}
