// Tests may measure real time and use ad-hoc randomness.
package detrandtest

import (
	"math/rand"
	"time"
)

func measure() time.Duration {
	start := time.Now()
	_ = rand.Intn(3)
	return time.Since(start)
}
