// Golden file for the retryloop analyzer: delays inside loops on the
// invocation path must be cancellable.
package retrylooptest

import (
	"context"
	"time"
)

func badSleep(attempts int) {
	for i := 0; i < attempts; i++ {
		time.Sleep(time.Second) // want "bare time.Sleep in a retry loop; select on a timer and ctx.Done\(\)"
	}
}

func badNakedAfter(ch chan int) {
	for range ch {
		<-time.After(time.Second) // want "naked <-time.After in a retry loop"
	}
}

func badTimerOnlySelect() {
	for {
		select { // want "select waits on timer channels only inside a retry loop"
		case <-time.After(time.Second):
		}
	}
}

// The interprocedural case: the sleep hides in a helper.

func settle() { time.Sleep(50 * time.Millisecond) }

func badHelperSleep(attempts int) {
	for i := 0; i < attempts; i++ {
		settle() // want "settle delays uncancellably \(time.Sleep at .*\) inside this retry loop"
	}
}

// True negatives: the sanctioned shapes.

func goodCtxSelect(ctx context.Context) {
	for {
		select {
		case <-time.After(time.Second):
		case <-ctx.Done():
			return
		}
	}
}

func goodEventWithTimeout(ch chan int) {
	for {
		select {
		case <-ch:
		case <-time.After(time.Second):
			return
		}
	}
}

func goodStopChannel(stopCh chan struct{}) {
	for {
		select {
		case <-time.After(time.Second):
		case <-stopCh:
			return
		}
	}
}

func goodSleepOutsideLoop() {
	time.Sleep(time.Millisecond)
}

func goodLitRestartsScope(ch chan func()) {
	for fn := range ch {
		_ = func() {
			time.Sleep(time.Millisecond) // the literal runs under its own caller's contract
		}
		fn()
	}
}

func suppressed() {
	for {
		time.Sleep(time.Millisecond) //lint:allow retryloop test-harness settle loop, bounded by the driver's watchdog
	}
}
