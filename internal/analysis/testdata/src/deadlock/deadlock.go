// Fixture for the interprocedural-deadlock miss-proof test: no single
// function ever acquires both locks directly, so a purely
// intraprocedural analysis (the PR 4 lockheld engine) derives no
// ordering at all — the cycle only exists through the call graph.
package deadlocktest

import "sync"

type journal struct{ mu sync.Mutex }
type state struct{ mu sync.Mutex }

type server struct {
	j journal
	s state
}

func (sv *server) appendEntry() {
	sv.j.mu.Lock()
	defer sv.j.mu.Unlock()
	sv.updateState() // acquires (state).mu while (journal).mu is held
}

func (sv *server) updateState() {
	sv.s.mu.Lock()
	defer sv.s.mu.Unlock()
}

func (sv *server) snapshot() {
	sv.s.mu.Lock()
	defer sv.s.mu.Unlock()
	sv.readJournal() // acquires (journal).mu while (state).mu is held
}

func (sv *server) readJournal() {
	sv.j.mu.Lock()
	defer sv.j.mu.Unlock()
}
