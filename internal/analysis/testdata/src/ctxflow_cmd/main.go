// True-negative golden file: under whisper/cmd/... a fresh root
// context is exactly right, and main cannot take one from anywhere.
package main

import "context"

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	run(ctx)
}

func run(ctx context.Context) {
	<-ctx.Done()
}
