// Golden true-negative file for the loadctl package, loaded under
// whisper/internal/loadctl where the detrand determinism contract and
// the ctxflow plumbing rules apply. The admission pipeline's idioms —
// injected clock, timers instead of sleeps, context-first APIs, no
// fresh root contexts — must all pass clean: zero diagnostics.
package loadctlclean

import (
	"context"
	"sync"
	"time"
)

type Clock interface{ Now() time.Time }

type controller struct {
	mu       sync.Mutex
	clk      Clock
	tokens   float64
	last     time.Time
	inflight int
}

// refillLocked reads only the injected clock; duration arithmetic on
// its readings is deterministic.
func (c *controller) refillLocked() {
	now := c.clk.Now()
	if elapsed := now.Sub(c.last); elapsed > 0 {
		c.tokens += elapsed.Seconds()
		c.last = now
	}
}

// Admit is context-first and waits on a timer plus cancellation, never
// a bare sleep.
func (c *controller) Admit(ctx context.Context, budget time.Duration) error {
	c.mu.Lock()
	c.refillLocked()
	c.inflight++
	c.mu.Unlock()

	timer := time.NewTimer(budget)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// estimate derives deadline budgets from context deadlines, not the
// wall clock.
func estimate(ctx context.Context, now time.Time) time.Duration {
	if deadline, ok := ctx.Deadline(); ok {
		return deadline.Sub(now)
	}
	return time.Second
}
