// Golden file for the replog journal-serving patterns, loaded under
// the import path whisper/internal/replog so the scoped rules apply.
// Every case here is a TRUE NEGATIVE: the shapes the journal code uses
// (reply closures that end the request span on every outcome, spans
// ended on both the error and success paths of replication, ctx-first
// plumbing with no detached roots) must produce zero diagnostics — and
// must need zero //lint:allow escapes.
package replogtest

import "context"

type Span struct{}

func (s *Span) End()              {}
func (s *Span) EndWith(err error) {}

type Tracer struct{}

func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}
func (t *Tracer) StartRemote(parent any, name string) *Span { return &Span{} }

type entry struct {
	key    string
	status int
}

type journal struct {
	entries map[string]*entry
}

func replicateOne(ctx context.Context, tr *Tracer, key string) error {
	ctx, span := tr.StartSpan(ctx, "replog.replicate")
	_ = ctx
	if key == "" {
		err := context.Canceled
		span.EndWith(err)
		return err
	}
	span.End()
	return nil
}

// handleJournaled mirrors the b-peer's keyed request flow: one span,
// one reply closure that ends it with the request's outcome on every
// exit path — cached replay, conflict, and fresh execution alike.
func handleJournaled(ctx context.Context, tr *Tracer, j *journal, key string) {
	_, span := tr.StartSpan(ctx, "bpeer.handle")
	reply := func(err error) { span.EndWith(err) }
	e, ok := j.entries[key]
	if !ok {
		reply(nil)
		return
	}
	switch e.status {
	case 0:
		if err := replicateOne(ctx, tr, key); err != nil {
			reply(err)
			return
		}
		reply(nil)
	default:
		reply(context.DeadlineExceeded)
	}
}

// applyReplicated ends its span on both the decode-failure and the
// apply path, the follower side of the propagate pipe.
func applyReplicated(ctx context.Context, tr *Tracer, j *journal, raw []byte) {
	_, span := tr.StartSpan(ctx, "replog.apply")
	if len(raw) == 0 {
		span.EndWith(context.Canceled)
		return
	}
	j.entries["k"] = &entry{key: "k"}
	span.End()
}

// catchUp bounds its state-transfer with the caller's ctx (never a
// fresh root) and ends the span via defer across the member sweep.
func catchUp(ctx context.Context, tr *Tracer, j *journal, members []string) error {
	ctx, span := tr.StartSpan(ctx, "replog.catchup")
	var err error
	defer func() { span.EndWith(err) }()
	for range members {
		select {
		case <-ctx.Done():
			err = ctx.Err()
			return err
		default:
		}
	}
	return nil
}

// Begin is ctx-free bookkeeping under a mutex; the blocking channel
// work stays in unexported helpers with ctx-first signatures.
func (j *journal) Begin(key string) *entry {
	e, ok := j.entries[key]
	if !ok {
		e = &entry{key: key}
		j.entries[key] = e
	}
	return e
}

func awaitAck(ctx context.Context, acks chan string) (string, error) {
	select {
	case a := <-acks:
		return a, nil
	case <-ctx.Done():
		return "", ctx.Err()
	}
}
