// Test files are exempt from the root-context and blocking-API rules.
package ctxflowtest

import "context"

func helperForTests() context.Context {
	return context.Background()
}

func (p *Pipe) BlockInTest() int {
	return <-p.ch
}
