// Golden file for the ctxflow analyzer, loaded under the import path
// whisper/internal/p2p so the scoped rules apply.
package ctxflowtest

import "context"

type Pipe struct {
	ch chan int
}

func Detached() {
	ctx := context.Background() // want "context.Background"
	_ = ctx
}

func Todo() {
	_ = context.TODO() // want "context.TODO"
}

func (p *Pipe) Recv() int { // want "exported Recv blocks"
	return <-p.ch
}

func (p *Pipe) Await() { // want "exported Await blocks"
	select {
	case <-p.ch:
	}
}

func ordered(a int, ctx context.Context) { // want "context.Context must be the first parameter"
	_ = a
	_ = ctx
}

// True negatives: context-first APIs, exempt lifecycle methods,
// non-parking selects, unexported helpers, and a suppressed root.

func (p *Pipe) RecvCtx(ctx context.Context) int {
	select {
	case v := <-p.ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

func (p *Pipe) Close() error {
	<-p.ch // lifecycle methods may block until teardown
	return nil
}

func (p *Pipe) TryRecv() (int, bool) {
	select {
	case v := <-p.ch:
		return v, true
	default:
		return 0, false
	}
}

func (p *Pipe) unexportedRecv() int {
	return <-p.ch
}

func allowedRoot() context.Context {
	//lint:allow ctxflow detached on purpose: root of the background sweeper
	return context.Background()
}
