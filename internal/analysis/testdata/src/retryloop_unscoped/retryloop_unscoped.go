// True-negative golden file for retryloop scoping: outside the
// invocation-path packages (here, a backend worker) the same delay
// shapes are legitimate — zero diagnostics.
package retryloopunscopedtest

import "time"

func warmCache(parts []string) {
	for range parts {
		time.Sleep(10 * time.Millisecond)
	}
}

func pollForever() {
	for {
		<-time.After(time.Second)
	}
}
