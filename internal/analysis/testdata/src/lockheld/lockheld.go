// Golden file for the lockheld analyzer. The go toolchain ignores
// testdata directories, so the deliberate violations here never build.
package lockheldtest

import (
	"sync"
	"time"
)

type pipe struct{}

func (pipe) Send(b []byte) error { return nil }

type peer struct {
	mu   sync.Mutex
	out  chan int
	pipe pipe
}

func (p *peer) badSend() {
	p.mu.Lock()
	p.out <- 1 // want "held across channel send"
	p.mu.Unlock()
}

func (p *peer) badSleep() {
	p.mu.Lock()
	defer p.mu.Unlock()
	time.Sleep(time.Millisecond) // want "held across time.Sleep"
}

func (p *peer) badRecv() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return <-p.out // want "held across channel receive"
}

func (p *peer) badSelect() {
	p.mu.Lock()
	defer p.mu.Unlock()
	select { // want "held across select"
	case v := <-p.out:
		_ = v
	}
}

func (p *peer) badPipeCall() {
	p.mu.Lock()
	defer p.mu.Unlock()
	_ = p.pipe.Send(nil) // want "held across Send call"
}

// True negatives: the same operations with the lock released first, a
// non-parking select, branch-local locks, and an explicit suppression.

func (p *peer) goodRelease() {
	p.mu.Lock()
	v := 1
	p.mu.Unlock()
	p.out <- v
}

func (p *peer) goodSelectDefault() {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case v := <-p.out:
		_ = v
	default:
	}
}

func (p *peer) goodBranchLocal(cond bool) {
	if cond {
		p.mu.Lock()
		p.mu.Unlock()
	}
	p.out <- 1
}

func (p *peer) goodGoroutine() {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		p.out <- 1 // runs on another goroutine, which holds nothing
	}()
}

func (p *peer) suppressed() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.out <- 2 //lint:allow lockheld buffered channel with a dedicated drainer, never parks
}
