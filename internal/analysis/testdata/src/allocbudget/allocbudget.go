// Golden file for the allocbudget analyzer: functions on the hot-path
// roster (here via //lint:hotpath directives) must not allocate in
// steady state.
package allocbudgettest

import "fmt"

//lint:hotpath
func hotFormat(id string) string {
	return fmt.Sprintf("peer-%s", id) // want "hot path hotFormat allocates per call: fmt.Sprintf; preallocate, pool, or hoist"
}

//lint:hotpath
func hotFreshMap(keys []string) map[string]bool {
	set := map[string]bool{} // want "hot path hotFreshMap allocates per call: constructs a fresh map per call"
	for _, k := range keys {
		set[k] = true
	}
	return set
}

//lint:hotpath
func hotGrow(items []int) []int {
	var out []int
	for _, v := range items {
		out = append(out, v*2) // want "hot path hotGrow allocates per loop iteration: append growth on out \(declared without capacity\)"
	}
	return out
}

// The interprocedural case: the allocation hides in a (non-hot)
// helper and is charged to the hot caller with the chain named.

func label(id string) string { return fmt.Sprintf("x-%s", id) }

//lint:hotpath
func hotVia(id string) string {
	return label(id) // want "hot path hotVia allocates per call: fmt.Sprintf at .* via label"
}

// The interface-dispatch case: the receiver type is unknown, but every
// name-matched candidate allocates.

type describer interface{ Describe() string }

type verbose struct{}

func (verbose) Describe() string { return fmt.Sprintf("verbose@%p", &struct{}{}) }

//lint:hotpath
func hotIface(d describer) string {
	return d.Describe() // want "hot path hotIface may reach \(verbose\).Describe, every candidate of which allocates"
}

// True negatives: a cold function may allocate; preallocation,
// constant folding and error-path formatting are free.

func coldFormat(id string) string { return fmt.Sprintf("cold-%s", id) }

//lint:hotpath
func hotPrealloc(items []int) []int {
	out := make([]int, 0, len(items))
	for _, v := range items {
		out = append(out, v*2)
	}
	return out
}

//lint:hotpath
func hotErrPathMaySpend(err error) string {
	if err != nil {
		return fmt.Sprintf("failed: %v", err)
	}
	return "ok"
}

const prefix = "whisper-"

//lint:hotpath
func hotConstConcat(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, prefix+"peer")
	}
	return out
}

//lint:hotpath
func hotSuppressed(id string) string {
	//lint:allow allocbudget interning lands with the shared string table; measured at 1 alloc/op in the gate
	return fmt.Sprintf("label-%s", id)
}
