// Golden true-negative file for the gossip package, loaded under
// whisper/internal/gossip: seeded randomness, an injected clock,
// cancellable round loops and allocation-free roster hot paths
// (Ring.AppendOwners, HashTriple are on hotpaths.txt) must read clean
// under the whole analyzer suite — zero diagnostics.
package gossipclean

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

type Clock interface{ Now() time.Time }

// Ring is a consistent-hash ring; AppendOwners is rostered in
// hotpaths.txt, so allocbudget checks it stays allocation-free: it
// appends into the caller's buffer and never builds scratch state.
type Ring struct {
	points  []uint64
	members []string
	owner   []int
}

// HashTriple mixes the discovery key into a ring position — rostered,
// pure arithmetic, zero allocations.
func HashTriple(advType, attr, value string) uint64 {
	h := uint64(1469598103934665603)
	for _, s := range []string{advType, attr, value} {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		h ^= 0xff
		h *= 1099511628211
	}
	return h
}

// AppendOwners appends the k distinct members owning the key to dst.
func (r *Ring) AppendOwners(dst []string, advType, attr, value string, k int) []string {
	if len(r.points) == 0 {
		return dst
	}
	h := HashTriple(advType, attr, value)
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.points[mid] < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start := len(dst)
	for i := 0; i < len(r.points) && len(dst)-start < k; i++ {
		m := r.members[r.owner[(lo+i)%len(r.points)]]
		dup := false
		for _, seen := range dst[start:] {
			if seen == m {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, m)
		}
	}
	return dst
}

// Owner returns the first owner of the key (rostered).
func (r *Ring) Owner(advType, attr, value string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := HashTriple(advType, attr, value)
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.points[mid] < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return r.members[r.owner[lo%len(r.points)]]
}

// Store mirrors the anti-entropy wire helpers on the roster: every
// encoder appends into the caller's buffer, every decoder appends into
// the caller's scratch slice.
type Store struct {
	origins []string
	counts  []uint64
	sigs    []uint64
}

type DigestEntry struct {
	Origin []byte
	Count  uint64
	Sig    uint64
}

// AppendDigest encodes the per-origin fingerprints into dst (rostered:
// steady-state reconciliation must not allocate).
func (s *Store) AppendDigest(dst []byte) []byte {
	for i := range s.origins {
		dst = append(dst, byte(len(s.origins[i])))
		dst = append(dst, s.origins[i]...)
		for shift := 0; shift < 64; shift += 8 {
			dst = append(dst, byte(s.counts[i]>>shift))
		}
		for shift := 0; shift < 64; shift += 8 {
			dst = append(dst, byte(s.sigs[i]>>shift))
		}
	}
	return dst
}

// ParseDigest decodes fingerprints into the caller's scratch slice
// (rostered).
func ParseDigest(dst []DigestEntry, b []byte) []DigestEntry {
	for len(b) > 0 {
		n := int(b[0])
		if 1+n+16 > len(b) {
			return dst
		}
		// The origin stays a subslice of the frame — converting to
		// string here would allocate per origin per reconciliation.
		e := DigestEntry{Origin: b[1 : 1+n]}
		b = b[1+n:]
		for shift := 0; shift < 64; shift += 8 {
			e.Count |= uint64(b[0]) << shift
			b = b[1:]
		}
		for shift := 0; shift < 64; shift += 8 {
			e.Sig |= uint64(b[0]) << shift
			b = b[1:]
		}
		dst = append(dst, e)
	}
	return dst
}

// AppendDelta emits the origins whose fingerprint differs from the
// peer's claim (rostered): a merge-join over two sorted lists, no
// scratch maps.
func (s *Store) AppendDelta(dst []byte, peer []DigestEntry) []byte {
	j := 0
	for i := range s.origins {
		for j < len(peer) && lessBytesString(peer[j].Origin, s.origins[i]) {
			j++
		}
		if j < len(peer) && eqBytesString(peer[j].Origin, s.origins[i]) &&
			peer[j].Count == s.counts[i] && peer[j].Sig == s.sigs[i] {
			continue
		}
		dst = append(dst, byte(len(s.origins[i])))
		dst = append(dst, s.origins[i]...)
	}
	return dst
}

// lessBytesString / eqBytesString compare a frame subslice against a
// stored origin without converting either side.
func lessBytesString(b []byte, s string) bool {
	for i := 0; i < len(b) && i < len(s); i++ {
		if b[i] != s[i] {
			return b[i] < s[i]
		}
	}
	return len(b) < len(s)
}

func eqBytesString(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := range b {
		if b[i] != s[i] {
			return false
		}
	}
	return true
}

// engine shows the sanctioned loop idioms: a seeded rand.Rand for
// jitter, the injected clock for time, and rounds that stop on the
// lifecycle channel — never an unconditional sleep, never a detached
// root context.
type engine struct {
	mu     sync.Mutex
	rng    *rand.Rand
	clock  Clock
	stopCh chan struct{}
	rounds int
}

func newEngine(seed int64, clock Clock) *engine {
	return &engine{
		rng:    rand.New(rand.NewSource(seed)),
		clock:  clock,
		stopCh: make(chan struct{}),
	}
}

func (e *engine) jittered(d time.Duration) time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return d + time.Duration(e.rng.Int63n(int64(d)/2+1)) - d/4
}

// loop paces rounds with a timer and exits on the stop channel: the
// retryloop analyzer accepts the select-on-timer shape because every
// wait is cancellable.
func (e *engine) loop(ctx context.Context, interval time.Duration, round func(context.Context) error) {
	t := time.NewTimer(e.jittered(interval))
	defer t.Stop()
	for {
		select {
		case <-t.C:
			e.exchange(ctx, round)
			t.Reset(e.jittered(interval))
		case <-e.stopCh:
			return
		case <-ctx.Done():
			return
		}
	}
}

// exchange derives its deadline from the caller's context — library
// code never mints context.Background().
func (e *engine) exchange(ctx context.Context, round func(context.Context) error) {
	callCtx, cancel := context.WithTimeout(ctx, 500*time.Millisecond)
	defer cancel()
	if err := round(callCtx); err != nil {
		return
	}
	e.mu.Lock()
	e.rounds++
	e.mu.Unlock()
}

func (e *engine) stop() { close(e.stopCh) }
