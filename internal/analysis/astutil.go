package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// fileImports maps each import's local name to its path for one file,
// so analyzers can resolve `rand.Intn` to math/rand without type
// information. Dot and blank imports are skipped (dot imports defeat
// syntactic resolution; none exist in this codebase and the style rules
// forbid them anyway).
func fileImports(f *ast.File) map[string]string {
	out := make(map[string]string, len(f.Imports))
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
			if name == "." || name == "_" {
				continue
			}
		}
		out[name] = path
	}
	return out
}

// pkgFuncCall reports whether call invokes a package-level function of
// the import path (e.g. time.Now), returning the function name.
func pkgFuncCall(imports map[string]string, call *ast.CallExpr) (path, name string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	ident, okIdent := sel.X.(*ast.Ident)
	if !okIdent {
		return "", "", false
	}
	path, okPath := imports[ident.Name]
	if !okPath {
		return "", "", false
	}
	return path, sel.Sel.Name, true
}

// methodCall reports whether call is a method call X.Name(...) on a
// non-package receiver, returning the receiver expression and name.
func methodCall(imports map[string]string, call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return nil, "", false
	}
	if ident, okIdent := sel.X.(*ast.Ident); okIdent {
		if _, isPkg := imports[ident.Name]; isPkg {
			return nil, "", false
		}
	}
	return sel.X, sel.Sel.Name, true
}

// exprString renders an expression compactly ("b.mu", "p.cfg.Tracer").
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}

// isContextType reports whether the type expression is context.Context
// as resolved through the file's imports.
func isContextType(imports map[string]string, expr ast.Expr) bool {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	ident, ok := sel.X.(*ast.Ident)
	return ok && imports[ident.Name] == "context"
}

// isTestFile reports whether the file position belongs to a _test.go
// file.
func isTestFile(p *Pass, f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// funcsOf invokes fn for every function body in the file: declared
// functions and methods plus every function literal. Literals nested
// inside a body are also visited on their own, so analyzers that track
// per-body state see each body exactly once.
func funcsOf(f *ast.File, fn func(name string, ft *ast.FuncType, body *ast.BlockStmt)) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fn(fd.Name.Name, fd.Type, fd.Body)
		inspectLits(fd.Body, fn)
	}
}

func inspectLits(body *ast.BlockStmt, fn func(string, *ast.FuncType, *ast.BlockStmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			fn("func literal", lit.Type, lit.Body)
		}
		return true
	})
}
