package analysis

import (
	_ "embed"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// FuncID names one declared function or method project-wide:
// "pkg/path.Func" for functions, "pkg/path.(Recv).Method" for methods
// (pointer receivers are normalized to the bare type name).
type FuncID string

// typeRef names a package-local named type, resolved syntactically.
// The zero value means "unknown"; the engine never guesses.
type typeRef struct {
	pkg  *Package
	name string
}

func (t typeRef) known() bool { return t.pkg != nil && t.name != "" }

// CallSite is one resolved project-internal call edge.
type CallSite struct {
	// Callee is the resolved target.
	Callee FuncID
	// Pos locates the call (or method-value reference) in the caller.
	Pos token.Position
}

// FuncInfo is one declared function or method plus everything the
// interprocedural layer derived about it.
type FuncInfo struct {
	// ID is the project-wide identity.
	ID FuncID
	// Name is the bare function or method name.
	Name string
	// Recv is the bare receiver type name ("" for plain functions).
	Recv string
	// Pkg owns the declaration.
	Pkg *Package
	// File holds the declaration.
	File *ast.File
	// Decl is the parsed declaration (Body non-nil).
	Decl *ast.FuncDecl
	// Hot marks the function as on the allocation-budget roster
	// (hotpaths.txt or a //lint:hotpath directive).
	Hot bool
	// Calls are the resolved call edges (exact resolutions only).
	Calls []CallSite
	// callsApprox are name-matched interface-method edges; only the
	// allocation propagation consumes them (a wrong match there costs a
	// suppressible diagnostic, not a false deadlock report).
	callsApprox []CallSite
	// Summary is the bottom-up interprocedural summary; nil until
	// computeSummaries runs.
	Summary *Summary
	// heldBlocks are the blocking-under-lock facts lockheld reports.
	heldBlocks []heldBlockFact

	imports map[string]string
	env     map[string]typeRef // receiver/param/local name -> type
}

type sentinelKind int

const (
	sentinelError  sentinelKind = iota + 1 // var ErrX = errors.New(...)
	sentinelString                         // const ErrMsgX = "..." (wire string)
)

// Project is a set of packages loaded and analyzed together. It owns
// the call graph, the per-function summaries, the sentinel index and
// the hot-path roster — everything analyzers reach through Pass.Proj.
//
// Everything is syntactic: receiver types are resolved from declared
// parameter/receiver/var types, composite literals and project
// constructor results; calls through interfaces, function values and
// shadowed names stay unresolved and simply contribute no edges (see
// DESIGN.md for the soundness discussion).
type Project struct {
	// Packages are the loaded packages, in load order.
	Packages []*Package

	// Funcs indexes every declared function and method.
	Funcs map[FuncID]*FuncInfo

	byPkg     map[*Package][]*FuncInfo
	pkgByPath map[string]*Package

	funcIndex     map[*Package]map[string]*FuncInfo
	methodIndex   map[*Package]map[string]map[string]*FuncInfo
	methodsByName map[string][]*FuncInfo
	structFields  map[*Package]map[string]map[string]ast.Expr
	consts        map[*Package]map[string]bool // package-level const names

	// sentinels maps "pkgpath.Name" to the sentinel kind for every
	// top-level Err*/ErrMsg* declaration in the project.
	sentinels map[string]sentinelKind

	// orderEdges is the global lock-acquisition-order graph.
	orderEdges map[lockEdge]*orderFact

	// rosterUnmatched are hotpaths.txt entries whose package is loaded
	// but whose function does not exist (drift protection).
	rosterUnmatched []string
}

//go:embed hotpaths.txt
var hotpathsTxt string

// NewProject indexes the packages, resolves the call graph and
// computes the interprocedural summaries bottom-up over SCCs.
func NewProject(pkgs ...*Package) *Project {
	p := &Project{
		Packages:      pkgs,
		Funcs:         map[FuncID]*FuncInfo{},
		byPkg:         map[*Package][]*FuncInfo{},
		pkgByPath:     map[string]*Package{},
		funcIndex:     map[*Package]map[string]*FuncInfo{},
		methodIndex:   map[*Package]map[string]map[string]*FuncInfo{},
		methodsByName: map[string][]*FuncInfo{},
		structFields:  map[*Package]map[string]map[string]ast.Expr{},
		consts:        map[*Package]map[string]bool{},
		sentinels:     map[string]sentinelKind{},
		orderEdges:    map[lockEdge]*orderFact{},
	}
	p.index()
	p.loadHotpaths()
	p.buildEnvs()
	p.buildCallGraph()
	p.computeSummaries()
	return p
}

// FuncsOf returns the declared functions of one package, in source
// order.
func (p *Project) FuncsOf(pkg *Package) []*FuncInfo { return p.byPkg[pkg] }

// SentinelKindOf reports the sentinel kind of "pkgpath.Name", or 0.
func (p *Project) sentinelKindOf(pkgPath, name string) sentinelKind {
	return p.sentinels[pkgPath+"."+name]
}

// index populates the function, method, struct-field, const and
// sentinel indexes from every package's declarations.
func (p *Project) index() {
	for _, pkg := range p.Packages {
		p.pkgByPath[pkg.ImportPath] = pkg
		p.funcIndex[pkg] = map[string]*FuncInfo{}
		p.methodIndex[pkg] = map[string]map[string]*FuncInfo{}
		p.structFields[pkg] = map[string]map[string]ast.Expr{}
		p.consts[pkg] = map[string]bool{}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					p.indexFunc(pkg, f, d)
				case *ast.GenDecl:
					p.indexGen(pkg, d)
				}
			}
		}
	}
}

func (p *Project) indexFunc(pkg *Package, file *ast.File, d *ast.FuncDecl) {
	if d.Body == nil {
		return
	}
	recv := recvTypeName(d)
	id := funcID(pkg.ImportPath, recv, d.Name.Name)
	fn := &FuncInfo{
		ID:      id,
		Name:    d.Name.Name,
		Recv:    recv,
		Pkg:     pkg,
		File:    file,
		Decl:    d,
		imports: fileImports(file),
	}
	if hasHotpathDirective(file, d) {
		fn.Hot = true
	}
	p.Funcs[id] = fn
	p.byPkg[pkg] = append(p.byPkg[pkg], fn)
	if recv == "" {
		p.funcIndex[pkg][d.Name.Name] = fn
	} else {
		byName := p.methodIndex[pkg][recv]
		if byName == nil {
			byName = map[string]*FuncInfo{}
			p.methodIndex[pkg][recv] = byName
		}
		byName[d.Name.Name] = fn
		p.methodsByName[d.Name.Name] = append(p.methodsByName[d.Name.Name], fn)
	}
}

func (p *Project) indexGen(pkg *Package, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if st, ok := s.Type.(*ast.StructType); ok {
				fields := map[string]ast.Expr{}
				for _, f := range st.Fields.List {
					for _, name := range f.Names {
						fields[name.Name] = f.Type
					}
				}
				p.structFields[pkg][s.Name.Name] = fields
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if d.Tok == token.CONST {
					p.consts[pkg][name.Name] = true
				}
				if !strings.HasPrefix(name.Name, "Err") {
					continue
				}
				key := pkg.ImportPath + "." + name.Name
				if strings.HasPrefix(name.Name, "ErrMsg") {
					p.sentinels[key] = sentinelString
					continue
				}
				if i < len(s.Values) {
					if call, ok := s.Values[i].(*ast.CallExpr); ok {
						if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
							if x, ok := sel.X.(*ast.Ident); ok &&
								(x.Name == "errors" && sel.Sel.Name == "New" || x.Name == "fmt" && sel.Sel.Name == "Errorf") {
								p.sentinels[key] = sentinelError
							}
						}
					}
				}
			}
		}
	}
}

// loadHotpaths marks roster entries from the embedded hotpaths.txt.
// Entries whose package is loaded but whose function is missing are
// recorded so allocbudget can report the drift; entries for packages
// outside the project (single-package vet runs) are silently skipped.
func (p *Project) loadHotpaths() {
	for _, line := range strings.Split(hotpathsTxt, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		id := FuncID(line)
		if fn, ok := p.Funcs[id]; ok {
			fn.Hot = true
			continue
		}
		if pkgPath := pkgPathOfID(line); p.pkgByPath[pkgPath] != nil {
			p.rosterUnmatched = append(p.rosterUnmatched, line)
		}
	}
}

// hasHotpathDirective reports whether a //lint:hotpath comment is
// attached to the declaration (doc comment) or trails its first line.
func hasHotpathDirective(file *ast.File, d *ast.FuncDecl) bool {
	if d.Doc != nil {
		for _, c := range d.Doc.List {
			if strings.HasPrefix(c.Text, "//lint:hotpath") {
				return true
			}
		}
	}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//lint:hotpath") &&
				c.Pos() > d.Pos() && c.Pos() < d.Body.Lbrace {
				return true
			}
		}
	}
	return false
}

func funcID(pkgPath, recv, name string) FuncID {
	if recv == "" {
		return FuncID(pkgPath + "." + name)
	}
	return FuncID(pkgPath + ".(" + recv + ")." + name)
}

// pkgPathOfID extracts the package path from a FuncID string.
func pkgPathOfID(id string) string {
	if i := strings.Index(id, ".("); i >= 0 {
		return id[:i]
	}
	if i := strings.LastIndexByte(id, '.'); i >= 0 {
		return id[:i]
	}
	return id
}

// recvTypeName returns the bare receiver type name of a method
// declaration ("" for functions): *BPeer and BPeer both yield "BPeer".
func recvTypeName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// --- type environment -------------------------------------------------

// buildEnvs resolves, per function, the named types of its receiver,
// parameters and first-bound locals. Two passes so a local bound from
// another function's result type resolves regardless of declaration
// order.
func (p *Project) buildEnvs() {
	for pass := 0; pass < 2; pass++ {
		for _, fn := range p.Funcs {
			p.buildEnv(fn)
		}
	}
}

func (p *Project) buildEnv(fn *FuncInfo) {
	env := map[string]typeRef{}
	if fn.Decl.Recv != nil && len(fn.Decl.Recv.List) > 0 {
		for _, name := range fn.Decl.Recv.List[0].Names {
			env[name.Name] = typeRef{pkg: fn.Pkg, name: fn.Recv}
		}
	}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := p.resolveTypeExpr(fn, field.Type)
			for _, name := range field.Names {
				if _, seen := env[name.Name]; !seen && t.known() {
					env[name.Name] = t
				}
			}
		}
	}
	addFields(fn.Decl.Type.Params)
	addFields(fn.Decl.Type.Results)

	// First-binding-wins locals: var decls with explicit types,
	// := bindings from composite literals and resolvable calls.
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok && vs.Type != nil {
						t := p.resolveTypeExpr(fn, vs.Type)
						for _, name := range vs.Names {
							if _, seen := env[name.Name]; !seen && t.known() {
								env[name.Name] = t
							}
						}
					}
				}
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if _, seen := env[id.Name]; seen {
					continue
				}
				fn.env = env // valueType may consult the partial env
				if t := p.valueType(fn, s.Rhs[i]); t.known() {
					env[id.Name] = t
				}
			}
		}
		return true
	})
	fn.env = env
}

// resolveTypeExpr resolves a syntactic type expression to a named
// project type: T, *T, pkg.T, *pkg.T.
func (p *Project) resolveTypeExpr(fn *FuncInfo, t ast.Expr) typeRef {
	for {
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
			continue
		}
		break
	}
	switch t := t.(type) {
	case *ast.Ident:
		return typeRef{pkg: fn.Pkg, name: t.Name}
	case *ast.SelectorExpr:
		if x, ok := t.X.(*ast.Ident); ok {
			if path, isImport := fn.imports[x.Name]; isImport {
				if pkg := p.pkgByPath[path]; pkg != nil {
					return typeRef{pkg: pkg, name: t.Sel.Name}
				}
			}
		}
	}
	return typeRef{}
}

// valueType resolves the type a value expression produces: composite
// literals, address-of literals, and calls whose callee resolves to a
// project function with a syntactic first result type.
func (p *Project) valueType(fn *FuncInfo, e ast.Expr) typeRef {
	switch e := e.(type) {
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return p.valueType(fn, e.X)
		}
	case *ast.CompositeLit:
		if e.Type != nil {
			return p.resolveTypeExpr(fn, e.Type)
		}
	case *ast.CallExpr:
		if callee := p.resolveCall(fn, e); callee != nil {
			res := callee.Decl.Type.Results
			if res != nil && len(res.List) > 0 {
				return p.resolveTypeExpr(callee, res.List[0].Type)
			}
		}
	}
	return typeRef{}
}

// exprType resolves the named type of an expression inside fn's body:
// identifiers via the env, field selectors via the struct index,
// address-of and resolvable calls.
func (p *Project) exprType(fn *FuncInfo, e ast.Expr) typeRef {
	switch e := e.(type) {
	case *ast.Ident:
		return fn.env[e.Name]
	case *ast.SelectorExpr:
		base := p.exprType(fn, e.X)
		if !base.known() {
			return typeRef{}
		}
		fields := p.structFields[base.pkg][base.name]
		if ft, ok := fields[e.Sel.Name]; ok {
			owner := &FuncInfo{Pkg: base.pkg, imports: fileImportsOfType(base.pkg, base.name)}
			return p.resolveTypeExpr(owner, ft)
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return p.exprType(fn, e.X)
		}
	case *ast.ParenExpr:
		return p.exprType(fn, e.X)
	case *ast.CallExpr:
		return p.valueType(fn, e)
	}
	return typeRef{}
}

// fileImportsOfType finds the imports of the file declaring the named
// type, so its field type expressions resolve in the right scope.
func fileImportsOfType(pkg *Package, name string) map[string]string {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.Name == name {
					return fileImports(f)
				}
			}
		}
	}
	return map[string]string{}
}

// --- call graph -------------------------------------------------------

// resolveCall resolves one call expression to a project function, or
// nil. Only exact resolutions: same-package functions, imported
// project-package functions, and methods whose receiver type is known.
func (p *Project) resolveCall(fn *FuncInfo, call *ast.CallExpr) *FuncInfo {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return p.funcIndex[fn.Pkg][f.Name]
	case *ast.SelectorExpr:
		return p.resolveSelector(fn, f)
	case *ast.ParenExpr:
		if sel, ok := f.X.(*ast.SelectorExpr); ok {
			return p.resolveSelector(fn, sel)
		}
	}
	return nil
}

// resolveSelector resolves pkg.Func or recv.Method references.
func (p *Project) resolveSelector(fn *FuncInfo, sel *ast.SelectorExpr) *FuncInfo {
	if x, ok := sel.X.(*ast.Ident); ok {
		if path, isImport := fn.imports[x.Name]; isImport {
			if pkg := p.pkgByPath[path]; pkg != nil {
				return p.funcIndex[pkg][sel.Sel.Name]
			}
			return nil
		}
	}
	recv := p.exprType(fn, sel.X)
	if !recv.known() {
		return nil
	}
	return p.methodIndex[recv.pkg][recv.name][sel.Sel.Name]
}

// buildCallGraph resolves every call (and method-value reference) in
// every function body into Calls, plus the name-matched approximate
// edges for allocation propagation.
func (p *Project) buildCallGraph() {
	for _, fn := range p.Funcs {
		funs := map[ast.Expr]bool{} // expressions in call-operator position
		ast.Inspect(fn.Decl, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				funs[call.Fun] = true
			}
			return true
		})
		ast.Inspect(fn.Decl, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if callee := p.resolveCall(fn, n); callee != nil {
					fn.Calls = append(fn.Calls, CallSite{Callee: callee.ID, Pos: fn.Pkg.Fset.Position(n.Pos())})
				} else if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					p.addApprox(fn, sel, n.Pos())
				}
			case *ast.SelectorExpr:
				// Method value (go b.run, handler registration): an edge
				// without a call operator.
				if funs[ast.Expr(n)] {
					return true
				}
				if callee := p.resolveSelector(fn, n); callee != nil {
					fn.Calls = append(fn.Calls, CallSite{Callee: callee.ID, Pos: fn.Pkg.Fset.Position(n.Pos())})
					return false
				}
			}
			return true
		})
	}
}

// addApprox records name-matched candidate edges for a method call
// whose receiver type is unknown (interface dispatch). Capped and
// deduplicated; consumers treat these as "may reach".
func (p *Project) addApprox(fn *FuncInfo, sel *ast.SelectorExpr, pos token.Pos) {
	if _, isPkg := fn.imports[exprString(sel.X)]; isPkg {
		return
	}
	cands := p.methodsByName[sel.Sel.Name]
	if len(cands) == 0 || len(cands) > 8 {
		return // absent or too common to mean anything
	}
	position := fn.Pkg.Fset.Position(pos)
	for _, c := range cands {
		fn.callsApprox = append(fn.callsApprox, CallSite{Callee: c.ID, Pos: position})
	}
}

// --- SCC ordering -----------------------------------------------------

// sccOrder returns the strongly connected components of the call graph
// in reverse topological order (callees before callers), Tarjan's
// algorithm, iterative.
func (p *Project) sccOrder() [][]*FuncInfo {
	ids := make([]FuncID, 0, len(p.Funcs))
	for id := range p.Funcs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	index := map[FuncID]int{}
	low := map[FuncID]int{}
	onStack := map[FuncID]bool{}
	var stack []FuncID
	var sccs [][]*FuncInfo
	next := 0

	type frame struct {
		id   FuncID
		edge int
	}
	var visit func(root FuncID)
	visit = func(root FuncID) {
		frames := []frame{{id: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			fn := p.Funcs[f.id]
			if f.edge < len(fn.Calls) {
				callee := fn.Calls[f.edge].Callee
				f.edge++
				if _, seen := index[callee]; !seen {
					index[callee] = next
					low[callee] = next
					next++
					stack = append(stack, callee)
					onStack[callee] = true
					frames = append(frames, frame{id: callee})
				} else if onStack[callee] {
					if index[callee] < low[f.id] {
						low[f.id] = index[callee]
					}
				}
				continue
			}
			// Post-order: pop the frame, maybe emit an SCC.
			done := f.id
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[done] < low[parent.id] {
					low[parent.id] = low[done]
				}
			}
			if low[done] == index[done] {
				var scc []*FuncInfo
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					scc = append(scc, p.Funcs[top])
					if top == done {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	for _, id := range ids {
		if _, seen := index[id]; !seen {
			visit(id)
		}
	}
	return sccs
}
