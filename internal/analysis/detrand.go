package analysis

import (
	"go/ast"
)

// DetRand keeps the deterministic engines deterministic. The chaos
// engine, the simulated network and the fault scheduler promise that a
// seed fully determines their behaviour — the chaos soak sweeps seeds
// in CI and a failure must replay byte-for-byte from its seed alone.
// Two things silently break that promise:
//
//   - the global math/rand source (rand.Intn, rand.Float64, ...),
//     which is process-wide and unseeded: use the engine's injected
//     *rand.Rand (constructing one with rand.New(rand.NewSource(seed))
//     is the approved pattern and is not flagged);
//   - raw wall-clock reads (time.Now, time.Since, time.Until): use the
//     engine's injected Clock so simulated runs can virtualize time.
//
// The rule applies to non-test files of internal/chaos, internal/simnet,
// internal/faults, internal/loadctl and internal/loadgen (the overload
// pipeline and its open-loop generator promise seed-reproducible runs
// too); tests may measure real time.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid global math/rand and raw wall-clock reads inside the deterministic engines",
	Run:  runDetRand,
}

// detRandScopedPkgs are the engines with a determinism contract.
var detRandScopedPkgs = map[string]bool{
	"whisper/internal/chaos":   true,
	"whisper/internal/simnet":  true,
	"whisper/internal/faults":  true,
	"whisper/internal/loadctl": true,
	"whisper/internal/loadgen": true,
	"whisper/internal/gossip":  true,
}

// randConstructors are the only package-level math/rand functions the
// engines may call: they build the injected seeded source (NewZipf
// draws exclusively from the *rand.Rand it is handed).
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// clockReads are the time functions that read the wall clock.
var clockReads = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runDetRand(pass *Pass) {
	if !detRandScopedPkgs[pass.ImportPath] {
		return
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		imports := fileImports(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgFuncCall(imports, call)
			if !ok {
				return true
			}
			switch {
			case (path == "math/rand" || path == "math/rand/v2") && !randConstructors[name]:
				pass.Reportf(call.Pos(), "global rand.%s in a deterministic engine: draw from the injected seeded *rand.Rand instead", name)
			case path == "time" && clockReads[name]:
				pass.Reportf(call.Pos(), "time.%s in a deterministic engine: read the injected Clock instead of the wall clock", name)
			}
			return true
		})
	}
}
