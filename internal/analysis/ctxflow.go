package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// CtxFlow enforces Whisper's context-plumbing rules:
//
//  1. Everywhere: a function that takes a context.Context must take it
//     as the first parameter.
//  2. In the invocation-path layers (internal/p2p, internal/proxy,
//     internal/soap, internal/bpeer): an exported function or method
//     that blocks (channel operations, selects without default,
//     time.Sleep) must accept a context.Context so callers can bound
//     it. Lifecycle methods (Close, Stop, Shutdown) are exempt — their
//     contract is "wait for teardown".
//  3. In library code — everything except main packages (cmd/,
//     examples/) and _test.go files — no context.Background() or
//     context.TODO(). Library code receives its context from the
//     caller; minting a fresh root silently detaches the call from
//     cancellation, deadlines and trace propagation. Long-lived
//     components derive a lifecycle context from the context their
//     Start method receives (see bpeer.Start).
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "enforce context-first APIs on blocking invocation paths and forbid fresh root contexts in library code",
	Run:  runCtxFlow,
}

// ctxScopedPkgs are the layers whose exported blocking APIs must take
// a context.
var ctxScopedPkgs = map[string]bool{
	"whisper/internal/p2p":   true,
	"whisper/internal/proxy": true,
	"whisper/internal/soap":  true,
	"whisper/internal/bpeer": true,
}

// ctxExemptMethods are lifecycle methods whose contract is to block
// until teardown completes.
var ctxExemptMethods = map[string]bool{
	"Close":    true,
	"Stop":     true,
	"Shutdown": true,
}

func runCtxFlow(pass *Pass) {
	scoped := ctxScopedPkgs[pass.ImportPath]
	inCmd := pass.ImportPath == "whisper/cmd" || strings.HasPrefix(pass.ImportPath, "whisper/cmd/")
	for _, f := range pass.Files {
		imports := fileImports(f)
		test := isTestFile(pass, f)

		// Rule 3: no fresh root contexts in library code. A main
		// package is command code wherever it lives (cmd/, examples/):
		// its entry point has no caller to receive a context from.
		if !inCmd && !test && f.Name.Name != "main" {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if path, name, ok := pkgFuncCall(imports, call); ok && path == "context" && (name == "Background" || name == "TODO") {
					pass.Reportf(call.Pos(), "context.%s() in library code: accept a context.Context from the caller (or derive a lifecycle context in Start) instead of minting a detached root", name)
				}
				return true
			})
		}

		// Rule 1: ctx-first, all functions in all packages.
		funcsOf(f, func(name string, ft *ast.FuncType, body *ast.BlockStmt) {
			checkCtxFirst(pass, imports, ft)
		})

		// Rule 2: exported blocking APIs in the scoped layers.
		if !scoped || test {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() || ctxExemptMethods[fd.Name.Name] {
				continue
			}
			if hasCtxParam(imports, fd.Type) {
				continue
			}
			if pos, what, blocks := directlyBlocks(fd.Body); blocks {
				pass.Reportf(fd.Pos(), "exported %s blocks (%s at %s) but takes no context.Context; callers cannot bound or cancel it",
					fd.Name.Name, what, pass.Fset.Position(pos))
			}
		}
	}
}

// checkCtxFirst flags a context.Context parameter anywhere but first.
func checkCtxFirst(pass *Pass, imports map[string]string, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for i, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(imports, field.Type) && !(i == 0 && pos == 0) {
			pass.Reportf(field.Pos(), "context.Context must be the first parameter")
		}
		pos += n
	}
}

// hasCtxParam reports whether any parameter is a context.Context.
func hasCtxParam(imports map[string]string, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isContextType(imports, field.Type) {
			return true
		}
	}
	return false
}

// directlyBlocks reports whether the body contains a blocking channel
// operation, a select without default, or time.Sleep, outside nested
// function literals and go statements (those run on other goroutines
// or under the literal's own contract).
func directlyBlocks(body *ast.BlockStmt) (token.Pos, string, bool) {
	var pos token.Pos
	var what string
	// A send or receive that is the comm of a select clause blocks (or
	// not) as part of the select, never on its own.
	comms := map[ast.Stmt]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if cc, ok := n.(*ast.CommClause); ok && cc.Comm != nil {
			comms[cc.Comm] = true
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if what != "" {
			return false
		}
		if s, ok := n.(ast.Stmt); ok && comms[s] {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			pos, what = n.Pos(), "channel send"
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pos, what = n.Pos(), "channel receive"
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				pos, what = n.Pos(), "select"
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if x, ok := sel.X.(*ast.Ident); ok && x.Name == "time" && sel.Sel.Name == "Sleep" {
					pos, what = n.Pos(), "time.Sleep"
				}
			}
		}
		return true
	})
	return pos, what, what != ""
}
