// Package analysis is Whisper's static-analysis suite: a small,
// dependency-free framework in the style of golang.org/x/tools'
// go/analysis, plus the project-specific analyzers that encode the
// house rules the generic linters cannot see (locks held across
// channel sends, context plumbing, span lifecycle, deterministic
// clocks and RNGs, pooled-buffer lifetimes).
//
// The framework is purely syntactic: analyzers work on parsed ASTs
// with per-file import resolution and never need type information, so
// the suite runs with only the standard library. cmd/whisperlint is
// the multichecker driver; it runs standalone (`go run
// ./cmd/whisperlint ./...`) and as a `go vet -vettool`.
//
// Violations that are intentional are suppressed in place with a
//
//	//lint:allow <rule>[,<rule>...] <reason>
//
// directive, either trailing the offending line or alone on the line
// above it. The reason is mandatory; a bare directive is itself
// reported (rule "directive").
package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one named rule over a package's syntax.
type Analyzer struct {
	// Name identifies the rule in diagnostics and //lint:allow
	// directives.
	Name string
	// Doc is the one-paragraph description shown by `whisperlint -doc`.
	Doc string
	// Run inspects one package and reports violations via pass.Reportf.
	// Interprocedural analyzers reach the call graph and per-function
	// summaries through pass.Proj. Nil for project-level analyzers.
	Run func(pass *Pass)
	// ProjectRun, when set, runs once per project instead of once per
	// package — for rules whose facts only exist globally (the
	// lock-acquisition-order graph). Reports via pass.ReportPosf.
	ProjectRun func(pass *Pass)
}

// Pass carries one package (or, for ProjectRun, one project) through
// one analyzer.
type Pass struct {
	// Analyzer is the rule being run.
	Analyzer *Analyzer
	// Fset maps positions for every file in the package (nil in a
	// ProjectRun pass; use ReportPosf there).
	Fset *token.FileSet
	// Files are the package's parsed files (including _test.go files;
	// analyzers that exempt tests check the filename suffix).
	Files []*ast.File
	// ImportPath is the package's import path; analyzers scoped to
	// specific layers (ctxflow, detrand) match against it.
	ImportPath string
	// Pkg is the package under analysis (nil in a ProjectRun pass).
	Pkg *Package
	// Proj is the project the package was loaded into. Always non-nil:
	// single-package runs (go vet -vettool invokes the driver once per
	// package) get a one-package project, so the interprocedural
	// analyzers degrade gracefully to package-local call graphs.
	Proj *Project

	diags []Diagnostic
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// ReportPosf records a violation at an already-resolved position (the
// summaries store resolved positions so facts can cross packages).
func (p *Pass) ReportPosf(pos token.Position, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     pos,
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	// Pos locates the violation.
	Pos token.Position
	// Rule is the reporting analyzer's name.
	Rule string
	// Message describes the violation.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Rule, d.Message)
}

// Package is one loaded package ready for analysis.
type Package struct {
	// Fset maps positions for Files.
	Fset *token.FileSet
	// ImportPath is the package's import path.
	ImportPath string
	// Files are the parsed files, comments included.
	Files []*ast.File
}

// LoadFiles parses the given Go files into a Package. Parsing keeps
// comments (the suppression directives live there) and tolerates
// nothing: a syntax error fails the load, exactly like go vet.
func LoadFiles(importPath string, filenames []string) (*Package, error) {
	fset := token.NewFileSet()
	pkg := &Package{Fset: fset, ImportPath: importPath}
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	return pkg, nil
}

// LoadDir parses every .go file directly inside dir (no recursion)
// into a Package under the given import path. Used by the golden-file
// tests; the driver loads via `go list` instead.
func LoadDir(importPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		files = append(files, filepath.Join(dir, e.Name()))
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	return LoadFiles(importPath, files)
}

// Run executes the analyzers over one package loaded as its own
// project, applies //lint:allow suppressions, and returns the
// surviving diagnostics ordered by position. Malformed directives (no
// reason) are reported under the pseudo-rule "directive".
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return RunProject(NewProject(pkg), analyzers)
}

// RunProject executes the analyzers over every package of the project:
// per-package rules see each package with the project attached through
// Pass.Proj; project-level rules (ProjectRun) run exactly once.
// Suppression directives from every package apply, and diagnostics
// come back ordered by position.
func RunProject(proj *Project, analyzers []*Analyzer) []Diagnostic {
	sup := make(suppressions)
	var diags []Diagnostic
	for _, pkg := range proj.Packages {
		pkgSup, bad := collectDirectives(pkg)
		for file, lines := range pkgSup {
			sup[file] = lines
		}
		diags = append(diags, bad...)
	}
	report := func(pass *Pass) {
		for _, d := range pass.diags {
			if !sup.allows(d) {
				diags = append(diags, d)
			}
		}
	}
	for _, a := range analyzers {
		if a.Run != nil {
			for _, pkg := range proj.Packages {
				pass := &Pass{Analyzer: a, Fset: pkg.Fset, Files: pkg.Files, ImportPath: pkg.ImportPath, Pkg: pkg, Proj: proj}
				a.Run(pass)
				report(pass)
			}
		}
		if a.ProjectRun != nil {
			pass := &Pass{Analyzer: a, Proj: proj}
			a.ProjectRun(pass)
			report(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Rule != diags[j].Rule {
			return diags[i].Rule < diags[j].Rule
		}
		return diags[i].Message < diags[j].Message
	})
	return diags
}

// directivePrefix introduces a suppression comment.
const directivePrefix = "//lint:allow"

// suppressions maps file → line → set of allowed rule names.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) allows(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	return lines[d.Pos.Line][d.Rule]
}

// collectDirectives indexes every //lint:allow directive in the
// package. A trailing directive suppresses its own line; a directive
// alone on a line suppresses the next line. Directives without a
// reason are reported.
func collectDirectives(pkg *Package) (suppressions, []Diagnostic) {
	sup := make(suppressions)
	var bad []Diagnostic
	sources := make(map[string][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:     pos,
						Rule:    "directive",
						Message: "malformed //lint:allow directive: want \"//lint:allow <rule>[,<rule>...] <reason>\"",
					})
					continue
				}
				line := pos.Line
				if startsLine(sources, pos) {
					line++ // directive on its own line covers the next one
				}
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					sup[pos.Filename] = byLine
				}
				rules := byLine[line]
				if rules == nil {
					rules = make(map[string]bool)
					byLine[line] = rules
				}
				for _, r := range strings.Split(fields[0], ",") {
					rules[strings.TrimSpace(r)] = true
				}
			}
		}
	}
	return sup, bad
}

// startsLine reports whether the comment at pos is the first
// non-whitespace token on its source line (then the directive covers
// the following line instead of its own).
func startsLine(sources map[string][]string, pos token.Position) bool {
	lines, ok := sources[pos.Filename]
	if !ok {
		if data, err := os.ReadFile(pos.Filename); err == nil {
			lines = strings.Split(string(data), "\n")
		}
		sources[pos.Filename] = lines
	}
	if pos.Line-1 >= len(lines) {
		return false
	}
	line := lines[pos.Line-1]
	if pos.Column-1 < len(line) {
		line = line[:pos.Column-1]
	}
	return strings.TrimSpace(line) == ""
}
