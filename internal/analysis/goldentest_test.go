package analysis

import (
	"fmt"
	"go/ast"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the expectation from a `// want "regexp"` comment,
// the same convention as x/tools' analysistest golden files.
var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// RunGolden runs the analyzer over the golden package in dir (loaded
// under importPath, which scoped analyzers match against) and checks
// its diagnostics against the `// want "regexp"` comments in the
// files: every diagnostic must match a want on its exact line, and
// every want must be hit. Suppression directives in the golden files
// are honored, so suppressed lines simply carry no want.
func RunGolden(t *testing.T, a *Analyzer, importPath, dir string) {
	t.Helper()
	pkg, err := LoadDir(importPath, dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	hit := map[key][]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pkg.Fset.Position(c.Pos()), m[1], err)
				}
				k := key{pkg.Fset.Position(c.Pos()).Filename, pkg.Fset.Position(c.Pos()).Line}
				wants[k] = append(wants[k], re)
				hit[k] = append(hit[k], false)
			}
		}
		stripWantComments(f)
	}

	for _, d := range Run(pkg, []*Analyzer{a}) {
		if d.Rule == "directive" {
			t.Errorf("golden file has a malformed directive: %s", d)
			continue
		}
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		for i, re := range wants[k] {
			if !hit[k][i] && re.MatchString(d.Message) {
				hit[k][i] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, res := range hit {
		for i, ok := range res {
			if !ok {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, wants[k][i])
			}
		}
	}
}

// stripWantComments blanks want expectations out of the comment list
// so an analyzer never trips over the text of an expectation (e.g.
// ctxflow matching "context.Background" inside a want string is
// impossible anyway, but suppression parsing must not see them
// either).
func stripWantComments(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if wantRe.MatchString(c.Text) {
				c.Text = fmt.Sprintf("// want-checked (%s)", strings.Repeat("x", 3))
			}
		}
	}
}
