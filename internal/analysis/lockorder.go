package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// LockOrder builds the global lock-acquisition-order graph — an edge
// A→B whenever some function acquires B while holding A, including
// acquisitions reached through callees via the interprocedural
// summaries — and reports every cycle as a potential deadlock. Mutex
// identity is the struct field path keyed by the owning named type
// ((BPeer).mu is one lock no matter which method touches it), so an
// inversion between, say, replog's journal lock and bpeer's state lock
// is visible even though no single function ever holds both orders.
//
// A cycle means two goroutines can each hold one lock while waiting
// for the other: the classic AB/BA deadlock, which no test catches
// until the wrong interleaving lands. The report names every edge of
// the cycle with the function and position that creates it; fix it by
// making every path acquire the locks in one global order (or by
// narrowing one side's critical section so the nested acquisition
// disappears).
var LockOrder = &Analyzer{
	Name:       "lockorder",
	Doc:        "report cycles in the global lock-acquisition-order graph (potential AB/BA deadlocks), interprocedurally",
	ProjectRun: runLockOrder,
}

func runLockOrder(pass *Pass) {
	edges := pass.Proj.orderEdges
	if len(edges) == 0 {
		return
	}
	// Adjacency over lock IDs, deterministic order.
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
		nodes[e.from], nodes[e.to] = true, true
	}
	for _, out := range adj {
		sort.Strings(out)
	}
	ids := make([]string, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	for _, scc := range stringSCCs(ids, adj) {
		if len(scc) < 2 {
			continue
		}
		reportCycle(pass, scc, edges)
	}
}

// reportCycle reports one strongly connected lock set as a deadlock
// candidate, anchored at its earliest edge position so a //lint:allow
// suppression has a stable line to live on.
func reportCycle(pass *Pass, scc []string, edges map[lockEdge]*orderFact) {
	in := map[string]bool{}
	for _, id := range scc {
		in[id] = true
	}
	type evidence struct {
		edge lockEdge
		fact *orderFact
	}
	var evs []evidence
	for e, f := range edges {
		if in[e.from] && in[e.to] {
			evs = append(evs, evidence{edge: e, fact: f})
		}
	}
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i].fact.pos, evs[j].fact.pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return evs[i].edge.from < evs[j].edge.from
	})
	parts := make([]string, 0, len(evs))
	for _, ev := range evs {
		parts = append(parts, fmt.Sprintf("%s → %s (in %s at %s%s)",
			shortLockID(ev.edge.from), shortLockID(ev.edge.to),
			shortFuncID(ev.fact.fn), ev.fact.pos, viaString(ev.fact.via)))
	}
	pass.ReportPosf(evs[0].fact.pos,
		"lock-order cycle (potential deadlock): %s; acquire these locks in one global order",
		strings.Join(parts, "; "))
}

// shortLockID drops the package path from a canonical lock ID.
func shortLockID(id string) string {
	if i := strings.Index(id, ".("); i >= 0 {
		return id[i+1:]
	}
	if i := strings.LastIndexByte(id, '/'); i >= 0 {
		id = id[i+1:]
	}
	return id
}

// stringSCCs is Tarjan over a string-keyed graph, iterative, with
// deterministic output order.
func stringSCCs(ids []string, adj map[string][]string) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	type frame struct {
		id   string
		edge int
	}
	for _, root := range ids {
		if _, seen := index[root]; seen {
			continue
		}
		frames := []frame{{id: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.edge < len(adj[f.id]) {
				to := adj[f.id][f.edge]
				f.edge++
				if _, seen := index[to]; !seen {
					index[to], low[to] = next, next
					next++
					stack = append(stack, to)
					onStack[to] = true
					frames = append(frames, frame{id: to})
				} else if onStack[to] && index[to] < low[f.id] {
					low[f.id] = index[to]
				}
				continue
			}
			done := f.id
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[done] < low[parent.id] {
					low[parent.id] = low[done]
				}
			}
			if low[done] == index[done] {
				var scc []string
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					scc = append(scc, top)
					if top == done {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}
