package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
)

// ErrIdent enforces error-identity discipline at the pipe and SOAP
// boundaries. Errors in Whisper cross process boundaries twice — once
// through the p2p pipe as a response status, once through the SOAP
// fault envelope — so the value that comes back is never the sentinel
// that went in: it has been wrapped by fmt.Errorf("...: %w", err) or
// flattened to its wire string. Identity checks must therefore go
// through errors.Is / errors.As (which unwrap), or through the typed
// helper the declaring package exports for wire strings
// (bpeer.IsInfraErrMsg); the analyzer flags the comparisons that break
// under wrapping:
//
//   - `err == ErrX` / `err != ErrX` / `switch err { case ErrX: }` on a
//     sentinel declared with errors.New or fmt.Errorf;
//   - `msg == pkg.ErrMsgX` from outside the declaring package — wire
//     strings are compared inside the package that owns them, behind a
//     helper, so the format can change in one place;
//   - `err.Error() == ...` and strings.Contains/HasPrefix/HasSuffix on
//     an error's string — matching rendered text instead of identity.
//
// Comparisons to nil and test files are exempt; the declaring package
// may compare its own ErrMsg* strings (that is where the helper
// lives).
var ErrIdent = &Analyzer{
	Name: "errident",
	Doc:  "require errors.Is/As or typed helpers for sentinel errors crossing pipe/SOAP boundaries; forbid == and string matching",
	Run:  runErrIdent,
}

// errSentinelName and errMsgName classify sentinel references into
// packages outside the loaded project (single-package vet runs) by the
// project's own naming convention.
var (
	errMsgName      = regexp.MustCompile(`^ErrMsg[A-Z]`)
	errSentinelName = regexp.MustCompile(`^Err[A-Z]`)
)

func runErrIdent(pass *Pass) {
	for _, fn := range pass.Proj.FuncsOf(pass.Pkg) {
		if isTestFile(pass, fn.File) {
			continue
		}
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkComparison(pass, fn, n)
				}
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				for _, c := range n.Body.List {
					cc, ok := c.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if kind, name, cross := sentinelRef(pass, fn, e); kind == sentinelError {
							pass.Reportf(e.Pos(), "switch case compares the sentinel %s by identity; wrapped errors never match — use if errors.Is(err, %s) instead", name, name)
						} else if kind == sentinelString && cross {
							pass.Reportf(e.Pos(), "switch case matches the wire string %s outside its declaring package; call the declaring package's helper so the format stays private", name)
						}
					}
				}
			case *ast.CallExpr:
				checkStringMatch(pass, fn, n)
			}
			return true
		})
	}
}

// checkComparison flags ==/!= against error sentinels and
// cross-package wire strings, and .Error() text equality.
func checkComparison(pass *Pass, fn *FuncInfo, b *ast.BinaryExpr) {
	if isNilIdent(b.X) || isNilIdent(b.Y) {
		return
	}
	for _, side := range []ast.Expr{b.X, b.Y} {
		kind, name, cross := sentinelRef(pass, fn, side)
		switch {
		case kind == sentinelError:
			pass.Reportf(b.Pos(), "%s is compared with %s; the sentinel is wrapped before it crosses the pipe/SOAP boundary, so use errors.Is(err, %s)", name, b.Op, name)
			return
		case kind == sentinelString && cross:
			pass.Reportf(b.Pos(), "wire string %s is compared outside its declaring package; use the declaring package's typed helper (e.g. bpeer.IsInfraErrMsg) so the format can change in one place", name)
			return
		}
	}
	if isErrorCall(b.X) || isErrorCall(b.Y) {
		pass.Reportf(b.Pos(), "comparing err.Error() text instead of error identity; wrapping changes the text — use errors.Is/errors.As")
	}
}

// checkStringMatch flags strings.Contains/HasPrefix/HasSuffix applied
// to an error's rendered text or a sentinel wire string from another
// package.
func checkStringMatch(pass *Pass, fn *FuncInfo, call *ast.CallExpr) {
	path, name, ok := pkgFuncCall(fn.imports, call)
	if !ok || path != "strings" {
		return
	}
	switch name {
	case "Contains", "HasPrefix", "HasSuffix", "EqualFold":
	default:
		return
	}
	for _, arg := range call.Args {
		if isErrorCall(arg) {
			pass.Reportf(call.Pos(), "strings.%s on err.Error() matches rendered text, which breaks when a wrapper adds context; use errors.Is/errors.As", name)
			return
		}
		if kind, sname, cross := sentinelRef(pass, fn, arg); kind == sentinelString && cross {
			pass.Reportf(call.Pos(), "strings.%s against the wire string %s outside its declaring package; use the declaring package's typed helper", name, sname)
			return
		}
	}
}

// sentinelRef resolves an expression to a sentinel declaration: the
// kind, its display name, and whether the reference crosses out of the
// declaring package. Unloaded imports fall back to the naming
// convention (ErrMsg* = wire string, Err* = error sentinel).
func sentinelRef(pass *Pass, fn *FuncInfo, e ast.Expr) (kind sentinelKind, name string, cross bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return pass.Proj.sentinelKindOf(pass.ImportPath, e.Name), e.Name, false
	case *ast.SelectorExpr:
		x, ok := e.X.(*ast.Ident)
		if !ok {
			return 0, "", false
		}
		path, isImport := fn.imports[x.Name]
		if !isImport {
			return 0, "", false
		}
		display := x.Name + "." + e.Sel.Name
		if pass.Proj.pkgByPath[path] != nil {
			return pass.Proj.sentinelKindOf(path, e.Sel.Name), display, true
		}
		// Import outside the loaded project: classify by name.
		if errMsgName.MatchString(e.Sel.Name) {
			return sentinelString, display, true
		}
		if errSentinelName.MatchString(e.Sel.Name) {
			return sentinelError, display, true
		}
	}
	return 0, "", false
}

// isErrorCall matches x.Error() with no arguments.
func isErrorCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Error"
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
