package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadSrc parses one source string as a single-file package.
func loadSrc(t *testing.T, importPath, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "src.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadFiles(importPath, []string{path})
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func TestSuppressionTrailingAndPreceding(t *testing.T) {
	pkg := loadSrc(t, "whisper/internal/chaos", `package p

import "math/rand"

func trailing() {
	_ = rand.Intn(3) //lint:allow detrand seed sweep draws from process entropy on purpose
}

func preceding() {
	//lint:allow detrand covered by the replay harness
	_ = rand.Intn(3)
}

func unsuppressed() {
	_ = rand.Intn(3)
}
`)
	diags := Run(pkg, []*Analyzer{DetRand})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (only the unsuppressed call): %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 15 {
		t.Errorf("surviving diagnostic on line %d, want 15: %v", diags[0].Pos.Line, diags[0])
	}
}

func TestSuppressionRuleList(t *testing.T) {
	pkg := loadSrc(t, "whisper/internal/chaos", `package p

import (
	"math/rand"
	"time"
)

func both() (int, time.Time) {
	return rand.Intn(3), time.Now() //lint:allow detrand,lockheld demonstrating multi-rule suppression
}
`)
	if diags := Run(pkg, []*Analyzer{DetRand}); len(diags) != 0 {
		t.Errorf("multi-rule directive did not suppress: %v", diags)
	}
}

func TestSuppressionWrongRuleDoesNotApply(t *testing.T) {
	pkg := loadSrc(t, "whisper/internal/chaos", `package p

import "math/rand"

func wrong() {
	_ = rand.Intn(3) //lint:allow lockheld wrong rule name, must not suppress detrand
}
`)
	diags := Run(pkg, []*Analyzer{DetRand})
	if len(diags) != 1 || diags[0].Rule != "detrand" {
		t.Errorf("want the detrand diagnostic to survive a mismatched directive, got %v", diags)
	}
}

func TestMalformedDirectiveReported(t *testing.T) {
	pkg := loadSrc(t, "whisper/internal/chaos", `package p

import "math/rand"

func bare() {
	_ = rand.Intn(3) //lint:allow detrand
}
`)
	diags := Run(pkg, []*Analyzer{DetRand})
	var sawDirective, sawDetrand bool
	for _, d := range diags {
		switch d.Rule {
		case "directive":
			sawDirective = true
			if !strings.Contains(d.Message, "malformed") {
				t.Errorf("directive diagnostic message = %q", d.Message)
			}
		case "detrand":
			sawDetrand = true
		}
	}
	if !sawDirective {
		t.Errorf("reason-less directive not reported: %v", diags)
	}
	if !sawDetrand {
		t.Errorf("reason-less directive must not suppress; got %v", diags)
	}
}

func TestDiagnosticsSortedAndStable(t *testing.T) {
	pkg := loadSrc(t, "whisper/internal/chaos", `package p

import (
	"math/rand"
	"time"
)

func z() { _ = time.Now() }
func a() { _ = rand.Intn(3) }
`)
	diags := Run(pkg, []*Analyzer{DetRand})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	if diags[0].Pos.Line > diags[1].Pos.Line {
		t.Errorf("diagnostics not ordered by position: %v", diags)
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) < 5 {
		t.Fatalf("suite has %d analyzers, want at least 5", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || (a.Run == nil && a.ProjectRun == nil) {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not round-trip", a.Name)
		}
	}
	for _, want := range []string{"lockheld", "ctxflow", "spanend", "detrand", "poolsafe",
		"lockorder", "allocbudget", "retryloop", "errident"} {
		if !seen[want] {
			t.Errorf("suite is missing %q", want)
		}
	}
	if ByName("nosuch") != nil {
		t.Errorf("ByName(nosuch) != nil")
	}
}
