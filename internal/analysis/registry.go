package analysis

// All returns the full whisperlint analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AllocBudget,
		CtxFlow,
		DetRand,
		ErrIdent,
		LockHeld,
		LockOrder,
		PoolSafe,
		RetryLoop,
		SpanEnd,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
