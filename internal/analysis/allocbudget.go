package analysis

import (
	"sort"
	"strings"
)

// AllocBudget holds the hot-path roster to a steady-state allocation
// budget. The roster — internal/analysis/hotpaths.txt plus any
// function carrying a //lint:hotpath directive — names the functions
// on the invocation and discovery paths that the gate benchmarks
// (BENCH_gate.json) measure; an allocation that creeps into one of
// them is a per-request cost that compounds under load long before a
// benchmark run notices.
//
// The facts come from the interprocedural summaries: fmt.Sprintf-style
// formatting, per-call map literals, make/conversion/closure work
// inside loops, append growth on capacity-less slices, string
// concatenation in loops — each reported at the allocation site with
// the call chain when the cost hides in a callee. Allocations on
// error-handling branches are excluded (failure paths may spend).
// Interface calls that cannot be resolved exactly are reported as
// "may reach" when every name-matched candidate allocates.
//
// Roster entries that no longer match a declared function are reported
// too, so the roster cannot silently rot as functions are renamed.
var AllocBudget = &Analyzer{
	Name:       "allocbudget",
	Doc:        "report steady-state allocations in hot-path roster functions (hotpaths.txt or //lint:hotpath)",
	Run:        runAllocBudget,
	ProjectRun: runAllocBudgetProject,
}

func runAllocBudget(pass *Pass) {
	for _, fn := range pass.Proj.FuncsOf(pass.Pkg) {
		if !fn.Hot || isTestFile(pass, fn.File) {
			continue
		}
		for _, f := range fn.Summary.Allocs {
			freq := "per call"
			if f.Loop {
				freq = "per loop iteration"
			}
			pass.ReportPosf(f.Pos, "hot path %s allocates %s: %s%s; preallocate, pool, or hoist it out of the steady state",
				shortFuncID(fn.ID), freq, f.What, viaString(f.Via))
		}
		reportApproxAllocs(pass, fn)
	}
}

// reportApproxAllocs reports interface-dispatch call sites in a hot
// function whose every name-matched candidate implementation
// allocates: the engine cannot prove which implementation runs, but
// when all of them allocate the cost is certain even if the callee is
// not. One report per call site.
func reportApproxAllocs(pass *Pass, fn *FuncInfo) {
	type site struct {
		pos  string
		line int
	}
	byPos := map[site][]CallSite{}
	for _, cs := range fn.callsApprox {
		k := site{pos: cs.Pos.Filename, line: cs.Pos.Line}
		byPos[k] = append(byPos[k], cs)
	}
	keys := make([]site, 0, len(byPos))
	for k := range byPos {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pos != keys[j].pos {
			return keys[i].pos < keys[j].pos
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		cands := byPos[k]
		all := true
		names := make([]string, 0, len(cands))
		for _, cs := range cands {
			callee := pass.Proj.Funcs[cs.Callee]
			if callee == nil || callee.Summary == nil || len(callee.Summary.Allocs) == 0 {
				all = false
				break
			}
			names = append(names, string(shortFuncID(cs.Callee)))
		}
		if !all || len(names) == 0 {
			continue
		}
		pass.ReportPosf(cands[0].Pos, "hot path %s may reach %s, every candidate of which allocates; cache the result or move it off the hot path",
			shortFuncID(fn.ID), strings.Join(names, " / "))
	}
}

// runAllocBudgetProject reports hotpaths.txt entries whose package is
// loaded but whose function no longer exists — roster drift after a
// rename or deletion.
func runAllocBudgetProject(pass *Pass) {
	for _, entry := range pass.Proj.rosterUnmatched {
		pkg := pass.Proj.pkgByPath[pkgPathOfID(entry)]
		if pkg == nil || len(pkg.Files) == 0 {
			continue
		}
		pass.ReportPosf(pkg.Fset.Position(pkg.Files[0].Package),
			"hotpaths.txt names %s but no such function is declared; update the roster after the rename", entry)
	}
}
