package analysis

import (
	"path/filepath"
	"testing"
)

// td resolves a golden-package directory under testdata/src.
func td(name string) string {
	return filepath.Join("testdata", "src", name)
}

// The import paths passed here stand in for the real packages the
// scoped analyzers guard; go tooling never builds testdata, so the
// deliberate violations are inert.

func TestLockHeldGolden(t *testing.T) {
	RunGolden(t, LockHeld, "whisper/internal/election", td("lockheld"))
}

func TestCtxFlowGolden(t *testing.T) {
	RunGolden(t, CtxFlow, "whisper/internal/p2p", td("ctxflow"))
}

func TestCtxFlowCmdGolden(t *testing.T) {
	// Under cmd/ a fresh root context is legitimate: zero diagnostics.
	RunGolden(t, CtxFlow, "whisper/cmd/whisperlint", td("ctxflow_cmd"))
}

func TestSpanEndGolden(t *testing.T) {
	RunGolden(t, SpanEnd, "whisper/internal/proxy", td("spanend"))
}

func TestSpanEndReplogGolden(t *testing.T) {
	// The journal's serving patterns (reply closures, per-branch
	// EndWith, deferred catch-up spans) are clean without escapes:
	// zero diagnostics.
	RunGolden(t, SpanEnd, "whisper/internal/replog", td("replog"))
}

func TestCtxFlowReplogGolden(t *testing.T) {
	// Same package under ctxflow: ctx-first plumbing, no detached
	// roots, blocking confined to ctx-aware helpers.
	RunGolden(t, CtxFlow, "whisper/internal/replog", td("replog"))
}

func TestDetRandGolden(t *testing.T) {
	RunGolden(t, DetRand, "whisper/internal/chaos", td("detrand"))
}

func TestDetRandUnscopedGolden(t *testing.T) {
	// Outside the deterministic engines the wall clock is fine.
	RunGolden(t, DetRand, "whisper/internal/proxy", td("detrand_unscoped"))
}

func TestPoolSafeGolden(t *testing.T) {
	RunGolden(t, PoolSafe, "whisper/internal/soap", td("poolsafe"))
}

func TestDetRandLoadctlGolden(t *testing.T) {
	// The admission pipeline is detrand-scoped: its injected-clock and
	// timer idioms must read clean — zero diagnostics.
	RunGolden(t, DetRand, "whisper/internal/loadctl", td("loadctl_clean"))
}

func TestCtxFlowLoadctlGolden(t *testing.T) {
	RunGolden(t, CtxFlow, "whisper/internal/loadctl", td("loadctl_clean"))
}

func TestDetRandLoadgenGolden(t *testing.T) {
	// The generator's seeded rand.Rand (and the allowlisted
	// rand.NewZipf constructor) are the sanctioned randomness.
	RunGolden(t, DetRand, "whisper/internal/loadgen", td("loadgen_clean"))
}

func TestCtxFlowLoadgenGolden(t *testing.T) {
	RunGolden(t, CtxFlow, "whisper/internal/loadgen", td("loadgen_clean"))
}

func TestLockOrderGolden(t *testing.T) {
	RunGolden(t, LockOrder, "whisper/internal/bpeer", td("lockorder"))
}

func TestLockHeldInterprocGolden(t *testing.T) {
	// Blocking primitives reached through callees: the PR 4
	// intraprocedural engine saw none of these.
	RunGolden(t, LockHeld, "whisper/internal/election", td("lockheld_interproc"))
}

func TestRetryLoopGolden(t *testing.T) {
	RunGolden(t, RetryLoop, "whisper/internal/proxy", td("retryloop"))
}

func TestRetryLoopUnscopedGolden(t *testing.T) {
	// Outside the invocation-path packages the same delay shapes are
	// fine: zero diagnostics.
	RunGolden(t, RetryLoop, "whisper/internal/backend", td("retryloop_unscoped"))
}

func TestErrIdentGolden(t *testing.T) {
	RunGolden(t, ErrIdent, "whisper/internal/proxy", td("errident"))
}

func TestAllocBudgetGolden(t *testing.T) {
	RunGolden(t, AllocBudget, "whisper/internal/hotfix", td("allocbudget"))
}

func TestReadBalanceCleanGolden(t *testing.T) {
	// The follower-read balancer idioms (snapshot under lock, network
	// call outside the critical section, cancellable backoff) must read
	// clean under the whole suite.
	for _, a := range All() {
		RunGolden(t, a, "whisper/internal/proxy", td("readbalance_clean"))
	}
}

func TestGossipCleanGolden(t *testing.T) {
	// The gossip engine idioms (seeded jitter, injected clock,
	// stop-channel rounds, append-into-dst roster hot paths) under the
	// whole suite — the package is detrand-, retryloop- and
	// hotpath-scoped, so these are live true negatives.
	for _, a := range All() {
		RunGolden(t, a, "whisper/internal/gossip", td("gossip_clean"))
	}
}

func TestLoadctlFullSuiteGolden(t *testing.T) {
	// The admission pipeline stays clean under the interprocedural
	// analyzers added in this PR, not just its original two.
	for _, a := range []*Analyzer{LockHeld, LockOrder, RetryLoop, ErrIdent, AllocBudget} {
		RunGolden(t, a, "whisper/internal/loadctl", td("loadctl_clean"))
	}
}

func TestLoadgenFullSuiteGolden(t *testing.T) {
	for _, a := range []*Analyzer{LockHeld, LockOrder, RetryLoop, ErrIdent, AllocBudget} {
		RunGolden(t, a, "whisper/internal/loadgen", td("loadgen_clean"))
	}
}

func TestReplogFullSuiteGolden(t *testing.T) {
	// The journal read path (leases, read-index barrier) under the new
	// analyzers.
	for _, a := range []*Analyzer{LockHeld, LockOrder, RetryLoop, ErrIdent, AllocBudget} {
		RunGolden(t, a, "whisper/internal/replog", td("replog"))
	}
}
