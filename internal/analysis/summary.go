package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Fact locates one derived behavior together with the call chain that
// reaches it from the summarized function (empty Via = direct).
type Fact struct {
	// What names the primitive ("channel send", "time.Sleep",
	// "fmt.Sprintf", "append growth", ...).
	What string
	// Pos is where the primitive operation sits (possibly in a callee).
	Pos token.Position
	// Via is the call chain from the summarized function to Pos.
	Via []FuncID
	// Loop marks a fact that executes once per loop iteration.
	Loop bool
}

// viaString renders the call chain for diagnostics.
func viaString(via []FuncID) string {
	if len(via) == 0 {
		return ""
	}
	parts := make([]string, len(via))
	for i, id := range via {
		parts[i] = shortFuncID(id)
	}
	return " via " + strings.Join(parts, " → ")
}

// shortFuncID drops the package path from a FuncID for messages.
func shortFuncID(id FuncID) string {
	s := string(id)
	if i := strings.Index(s, ".("); i >= 0 {
		return s[i+1:]
	}
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		s = s[i+1:]
	}
	if i := strings.IndexByte(s, '.'); i >= 0 {
		return s[i+1:]
	}
	return s
}

// acqFact records one lock acquisition reachable from a function.
type acqFact struct {
	display string
	pos     token.Position
	via     []FuncID
}

// Summary is the bottom-up interprocedural summary of one declared
// function: whether calling it can park the goroutine, whether it
// delays uncancellably, which locks it (transitively) acquires, and
// its steady-state allocation facts. Function literals inside the body
// are excluded — they run under their own goroutine's or caller's
// contract — except for allocation facts, where an inline helper
// closure's cost is attributed to the function constructing it.
type Summary struct {
	// Blocking is non-nil when calling the function can park the
	// goroutine: channel operation, select without default, time.Sleep,
	// a messaging call (Send/Call/Query/Invoke/Propagate), or a call to
	// a function that blocks.
	Blocking *Fact
	// SleepBare is non-nil when the function delays without selecting
	// on a cancellation signal: bare time.Sleep, a naked <-time.After,
	// or a select whose only arms are timers.
	SleepBare *Fact
	// Acquires maps canonical lock IDs to the acquisition reachable
	// from this function (directly or through callees).
	Acquires map[string]acqFact
	// Allocs are steady-state allocation facts (capped at allocCap).
	Allocs []Fact
}

// allocCap bounds the allocation facts kept per function.
const allocCap = 4

// heldBlockFact is one blocking-operation-under-held-lock occurrence,
// reported by the lockheld analyzer.
type heldBlockFact struct {
	lockDisplay string
	lockPos     token.Position
	what        string
	pos         token.Position
}

// lockEdge is one ordered pair in the global lock-acquisition graph:
// from held while to is acquired.
type lockEdge struct{ from, to string }

// orderFact is the evidence for one lock-order edge.
type orderFact struct {
	fromDisplay, toDisplay string
	pos                    token.Position
	fn                     FuncID
	via                    []FuncID
}

// computeSummaries runs the bottom-up summary computation: SCCs in
// reverse topological order (callees first), iterating each SCC to a
// fixpoint (the facts are monotone booleans and sets, so the sizes
// converge), then a final emitting pass that materializes the
// blocking-under-lock facts and the global lock-order edges exactly
// once.
func (p *Project) computeSummaries() {
	sccs := p.sccOrder()
	for _, scc := range sccs {
		for _, fn := range scc {
			if fn.Summary == nil {
				fn.Summary = &Summary{Acquires: map[string]acqFact{}}
			}
		}
		for round := 0; round <= len(scc); round++ {
			changed := false
			for _, fn := range scc {
				if p.summarize(fn, false) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	for _, fn := range p.Funcs {
		p.summarize(fn, true)
	}
}

// summarize recomputes fn's summary from its body and current callee
// summaries, reporting whether it grew. With emit set it also records
// heldBlocks and global order edges.
func (p *Project) summarize(fn *FuncInfo, emit bool) bool {
	old := fn.Summary
	w := &sumWalker{
		p:    p,
		fn:   fn,
		emit: emit,
		sum:  &Summary{Acquires: map[string]acqFact{}},
	}
	w.growers = collectGrowers(fn.Decl.Body)
	if emit {
		fn.heldBlocks = nil
	}
	w.stmts(fn.Decl.Body.List, map[string]heldLock{})
	fn.Summary = w.sum
	return summaryGrew(old, w.sum)
}

func summaryGrew(old, cur *Summary) bool {
	if old == nil {
		return true
	}
	return (old.Blocking == nil) != (cur.Blocking == nil) ||
		(old.SleepBare == nil) != (cur.SleepBare == nil) ||
		len(old.Acquires) != len(cur.Acquires) ||
		len(old.Allocs) != len(cur.Allocs)
}

// heldLock is one held mutex: canonical ID keyed, display + position
// carried for messages.
type heldLock struct {
	display string
	pos     token.Position
}

// collectGrowers finds slice variables declared without capacity
// (var s []T, s := []T{}, s := make([]T, n) with no cap) — appending
// to one of these inside a loop reallocates as it grows.
func collectGrowers(body *ast.BlockStmt) map[string]bool {
	growers := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) == 0 {
						if _, isSlice := vs.Type.(*ast.ArrayType); isSlice {
							for _, name := range vs.Names {
								growers[name.Name] = true
							}
						}
					}
				}
			}
		case *ast.AssignStmt:
			if s.Tok != token.DEFINE || len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				switch rhs := s.Rhs[i].(type) {
				case *ast.CompositeLit:
					if _, isSlice := rhs.Type.(*ast.ArrayType); isSlice && len(rhs.Elts) == 0 {
						growers[id.Name] = true
					}
				case *ast.CallExpr:
					if f, ok := rhs.Fun.(*ast.Ident); ok && f.Name == "make" && len(rhs.Args) < 3 {
						if _, isSlice := rhs.Args[0].(*ast.ArrayType); isSlice {
							growers[id.Name] = true
						}
					}
				}
			}
		}
		return true
	})
	return growers
}

// sumWalker performs the branch-sensitive facts walk over one function
// body (and, recursively with fresh held sets, its function literals).
type sumWalker struct {
	p    *Project
	fn   *FuncInfo
	emit bool
	sum  *Summary

	// inLit: walking a nested function literal. Blocking, SleepBare
	// and Acquires are not merged into the summary there (the literal
	// runs under its own contract); alloc facts and lock facts are.
	inLit     bool
	loopDepth int
	errDepth  int
	growers   map[string]bool
}

func (w *sumWalker) position(pos token.Pos) token.Position {
	return w.fn.Pkg.Fset.Position(pos)
}

// --- fact recording ---------------------------------------------------

func (w *sumWalker) blocking(held map[string]heldLock, pos token.Pos, what string, via []FuncID, factPos token.Position) {
	if !w.inLit && w.sum.Blocking == nil {
		fp := factPos
		if len(via) == 0 {
			fp = w.position(pos)
		}
		w.sum.Blocking = &Fact{What: what, Pos: fp, Via: via}
	}
	if w.emit && len(held) > 0 {
		reported := what
		if len(via) > 0 {
			reported = fmt.Sprintf("call to %s, which blocks (%s at %s%s)", shortFuncID(via[0]), what, factPos, viaString(via[1:]))
		}
		for _, h := range held {
			w.fn.heldBlocks = append(w.fn.heldBlocks, heldBlockFact{
				lockDisplay: h.display,
				lockPos:     h.pos,
				what:        reported,
				pos:         w.position(pos),
			})
		}
	}
}

func (w *sumWalker) sleepBare(pos token.Pos, what string, via []FuncID, factPos token.Position) {
	if w.inLit || w.sum.SleepBare != nil {
		return
	}
	fp := factPos
	if len(via) == 0 {
		fp = w.position(pos)
	}
	w.sum.SleepBare = &Fact{What: what, Pos: fp, Via: via}
}

func (w *sumWalker) alloc(pos token.Pos, what string, via []FuncID, loop bool) {
	if w.errDepth > 0 || len(w.sum.Allocs) >= allocCap {
		return
	}
	for _, f := range w.sum.Allocs {
		if f.What == what && len(f.Via) == len(via) {
			return
		}
	}
	w.sum.Allocs = append(w.sum.Allocs, Fact{What: what, Pos: w.position(pos), Via: via, Loop: loop || w.loopDepth > 0})
}

// acquire registers a direct lock acquisition: order edges from every
// held lock, then the held set and the summary grow.
func (w *sumWalker) acquire(held map[string]heldLock, recv ast.Expr, pos token.Pos) {
	id, display := w.lockID(recv)
	position := w.position(pos)
	if w.emit {
		for hid, h := range held {
			if hid == id {
				continue
			}
			w.orderEdge(hid, id, h.display, display, position, nil)
		}
	}
	held[id] = heldLock{display: display, pos: position}
	if !w.inLit {
		if _, ok := w.sum.Acquires[id]; !ok {
			w.sum.Acquires[id] = acqFact{display: display, pos: position}
		}
	}
}

func (w *sumWalker) orderEdge(from, to, fromDisplay, toDisplay string, pos token.Position, via []FuncID) {
	edge := lockEdge{from: from, to: to}
	if _, seen := w.p.orderEdges[edge]; seen {
		return
	}
	w.p.orderEdges[edge] = &orderFact{
		fromDisplay: fromDisplay,
		toDisplay:   toDisplay,
		pos:         pos,
		fn:          w.fn.ID,
		via:         via,
	}
}

// lockID canonicalizes a mutex receiver expression: field paths are
// keyed by the owning named type ("pkg.(BPeer).mu") so b.mu in every
// method of BPeer is the same lock; package-level mutexes by package
// path; anything unresolvable by its expression text scoped to the
// package.
func (w *sumWalker) lockID(recv ast.Expr) (id, display string) {
	display = exprString(recv)
	if sel, ok := recv.(*ast.SelectorExpr); ok {
		base := w.p.exprType(w.fn, sel.X)
		if base.known() {
			return base.pkg.ImportPath + ".(" + base.name + ")." + sel.Sel.Name, display
		}
	}
	if id, ok := recv.(*ast.Ident); ok {
		if _, local := w.fn.env[id.Name]; !local {
			return w.fn.Pkg.ImportPath + "." + id.Name, display
		}
	}
	return w.fn.Pkg.ImportPath + ":" + display, display
}

// --- statement walk ---------------------------------------------------

func (w *sumWalker) stmts(list []ast.Stmt, held map[string]heldLock) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func copyHeldLocks(held map[string]heldLock) map[string]heldLock {
	out := make(map[string]heldLock, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (w *sumWalker) stmt(s ast.Stmt, held map[string]heldLock) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if recv, name, ok := methodCall(w.fn.imports, call); ok && len(call.Args) == 0 {
				switch name {
				case "Lock", "RLock":
					w.acquire(held, recv, call.Pos())
					return
				case "Unlock", "RUnlock":
					id, _ := w.lockID(recv)
					delete(held, id)
					return
				}
			}
		}
		w.exprs(held, s.X)
	case *ast.AssignStmt:
		w.checkAppendGrowth(s)
		w.checkConcat(s)
		w.exprs(held, s.Rhs...)
		w.exprs(held, s.Lhs...)
	case *ast.SendStmt:
		w.blocking(held, s.Pos(), "channel send", nil, token.Position{})
		w.exprs(held, s.Chan, s.Value)
	case *ast.ReturnStmt:
		w.exprs(held, s.Results...)
	case *ast.IncDecStmt:
		w.exprs(held, s.X)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.exprs(held, s.Cond)
		guarded := mentionsErr(s.Cond)
		if guarded {
			w.errDepth++
		}
		w.stmts(s.Body.List, copyHeldLocks(held))
		if guarded {
			w.errDepth--
		}
		if s.Else != nil {
			w.stmt(s.Else, copyHeldLocks(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.exprs(held, s.Cond)
		}
		w.loopDepth++
		inner := copyHeldLocks(held)
		w.stmts(s.Body.List, inner)
		if s.Post != nil {
			w.stmt(s.Post, inner)
		}
		w.loopDepth--
	case *ast.RangeStmt:
		w.exprs(held, s.X)
		w.loopDepth++
		w.stmts(s.Body.List, copyHeldLocks(held))
		w.loopDepth--
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.exprs(held, s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.exprs(held, cc.List...)
				w.stmts(cc.Body, copyHeldLocks(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeldLocks(held))
			}
		}
	case *ast.SelectStmt:
		w.selectStmt(s, held)
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.exprs(held, vs.Values...)
				}
			}
		}
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred calls run after the body (a deferred Unlock keeps the
		// lock held for the rest of it — modeled by leaving the held set
		// untouched); go statements run on another goroutine that does
		// not hold this one's locks. Their function literals are walked
		// separately with a fresh held set.
		var call *ast.CallExpr
		if d, ok := s.(*ast.DeferStmt); ok {
			call = d.Call
		} else {
			call = s.(*ast.GoStmt).Call
		}
		if lit, ok := call.Fun.(*ast.FuncLit); ok {
			w.walkLit(lit)
		}
	}
}

// selectStmt: a select without default parks; one whose only arms are
// timers is additionally an uncancellable delay.
func (w *sumWalker) selectStmt(s *ast.SelectStmt, held map[string]heldLock) {
	hasDefault := false
	timerArms, otherArms, doneArms := 0, 0, 0
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			hasDefault = true
			continue
		}
		switch classifyComm(cc.Comm) {
		case commTimer:
			timerArms++
		case commDone:
			doneArms++
		default:
			otherArms++
		}
	}
	if !hasDefault {
		w.blocking(held, s.Pos(), "select", nil, token.Position{})
		if timerArms > 0 && doneArms == 0 && otherArms == 0 {
			w.sleepBare(s.Pos(), "select on timer channels only", nil, token.Position{})
		}
	}
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		w.stmts(cc.Body, copyHeldLocks(held))
	}
}

type commKind int

const (
	commOther commKind = iota
	commTimer
	commDone
)

// classifyComm categorizes one select arm: a timer receive
// (<-time.After(...), <-t.C), a cancellation receive (<-ctx.Done(),
// <-stopCh and friends), or anything else (a real event).
func classifyComm(comm ast.Stmt) commKind {
	var recv ast.Expr
	switch c := comm.(type) {
	case *ast.ExprStmt:
		if u, ok := c.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			recv = u.X
		}
	case *ast.AssignStmt:
		if len(c.Rhs) == 1 {
			if u, ok := c.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				recv = u.X
			}
		}
	}
	if recv == nil {
		return commOther
	}
	switch e := recv.(type) {
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if x, ok := sel.X.(*ast.Ident); ok && x.Name == "time" &&
				(sel.Sel.Name == "After" || sel.Sel.Name == "Tick") {
				return commTimer
			}
			if sel.Sel.Name == "Done" {
				return commDone
			}
		}
	case *ast.SelectorExpr:
		if e.Sel.Name == "C" {
			return commTimer
		}
	case *ast.Ident:
		if isDoneName(e.Name) {
			return commDone
		}
	}
	return commOther
}

// isDoneName recognizes cancellation-channel naming.
func isDoneName(name string) bool {
	l := strings.ToLower(name)
	for _, k := range []string{"done", "stop", "quit", "clos", "cancel", "deadline"} {
		if strings.Contains(l, k) {
			return true
		}
	}
	return false
}

// mentionsErr reports whether a condition inspects an error variable —
// allocation facts under such branches are failure-path costs, not
// steady state.
func mentionsErr(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			l := strings.ToLower(id.Name)
			if l == "err" || strings.HasSuffix(l, "err") || l == "ok" {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkAppendGrowth flags x = append(x, ...) in a loop when x was
// declared without capacity in this function.
func (w *sumWalker) checkAppendGrowth(s *ast.AssignStmt) {
	if w.loopDepth == 0 || len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return
	}
	lhs, ok := s.Lhs[0].(*ast.Ident)
	if !ok || !w.growers[lhs.Name] {
		return
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	if f, ok := call.Fun.(*ast.Ident); ok && f.Name == "append" {
		w.alloc(call.Pos(), "append growth on "+lhs.Name+" (declared without capacity)", nil, true)
	}
}

// checkConcat flags string building by + / += in a loop.
func (w *sumWalker) checkConcat(s *ast.AssignStmt) {
	if w.loopDepth == 0 {
		return
	}
	if s.Tok == token.ADD_ASSIGN && len(s.Rhs) == 1 && isStringish(w, s.Rhs[0]) {
		w.alloc(s.Pos(), "string += concatenation", nil, true)
	}
}

// isStringish: a string literal, or a .Error()/Sprintf-style call.
func isStringish(w *sumWalker, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		return e.Kind == token.STRING
	case *ast.BinaryExpr:
		return e.Op == token.ADD && (isStringish(w, e.X) || isStringish(w, e.Y))
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Error" && len(e.Args) == 0 {
			return true
		}
	}
	return false
}

// isConstOperand reports whether the expression is a compile-time
// constant (literal or package-level const) — constant folding makes
// such concatenations free.
func (w *sumWalker) isConstOperand(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		return w.p.consts[w.fn.Pkg][e.Name]
	case *ast.SelectorExpr:
		if x, ok := e.X.(*ast.Ident); ok {
			if path, isImport := w.fn.imports[x.Name]; isImport {
				if pkg := w.p.pkgByPath[path]; pkg != nil {
					return w.p.consts[pkg][e.Sel.Name]
				}
			}
		}
	case *ast.BinaryExpr:
		return e.Op == token.ADD && w.isConstOperand(e.X) && w.isConstOperand(e.Y)
	}
	return false
}

// --- expression walk --------------------------------------------------

// exprs scans expressions for blocking operations, project calls and
// allocation sites. Function literals are walked separately with a
// fresh held set.
func (w *sumWalker) exprs(held map[string]heldLock, list ...ast.Expr) {
	for _, e := range list {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				if w.loopDepth > 0 {
					w.alloc(n.Pos(), "closure constructed per loop iteration", nil, true)
				}
				w.walkLit(n)
				return false
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					w.blocking(held, n.Pos(), "channel receive", nil, token.Position{})
					if call, ok := n.X.(*ast.CallExpr); ok {
						if path, name, ok := pkgFuncCall(w.fn.imports, call); ok && path == "time" && (name == "After" || name == "Tick") {
							w.sleepBare(n.Pos(), "naked <-time."+name, nil, token.Position{})
						}
					}
				}
			case *ast.BinaryExpr:
				if n.Op == token.ADD && w.loopDepth > 0 &&
					(isStringish(w, n.X) || isStringish(w, n.Y)) &&
					!(w.isConstOperand(n.X) && w.isConstOperand(n.Y)) {
					w.alloc(n.Pos(), "string + concatenation", nil, true)
				}
			case *ast.CompositeLit:
				if w.loopDepth > 0 {
					switch n.Type.(type) {
					case *ast.MapType:
						w.alloc(n.Pos(), "map literal", nil, true)
					}
				} else {
					if _, isMap := n.Type.(*ast.MapType); isMap {
						w.alloc(n.Pos(), "constructs a fresh map per call", nil, false)
					}
				}
			case *ast.CallExpr:
				w.callExpr(held, n)
			}
			return true
		})
	}
}

// callExpr handles one call: builtin allocators, blocking primitives,
// stdlib formatting, and resolved project callees whose summaries
// propagate.
func (w *sumWalker) callExpr(held map[string]heldLock, call *ast.CallExpr) {
	// Builtins and conversions.
	if f, ok := call.Fun.(*ast.Ident); ok {
		switch f.Name {
		case "make":
			if w.loopDepth > 0 {
				w.alloc(call.Pos(), "make per loop iteration", nil, true)
			}
		case "string":
			if w.loopDepth > 0 && len(call.Args) == 1 && !w.isConstOperand(call.Args[0]) {
				w.alloc(call.Pos(), "string conversion per loop iteration", nil, true)
			}
		}
	}
	if at, ok := call.Fun.(*ast.ArrayType); ok && w.loopDepth > 0 &&
		len(call.Args) == 1 && !isNilIdent(call.Args[0]) { // []byte(nil) is free
		if id, ok := at.Elt.(*ast.Ident); ok && (id.Name == "byte" || id.Name == "rune") {
			w.alloc(call.Pos(), "[]"+id.Name+" conversion per loop iteration", nil, true)
		}
	}

	if path, name, ok := pkgFuncCall(w.fn.imports, call); ok {
		if path == "time" && name == "Sleep" {
			w.blocking(held, call.Pos(), "time.Sleep", nil, token.Position{})
			w.sleepBare(call.Pos(), "time.Sleep", nil, token.Position{})
			return
		}
		if path == "fmt" && (name == "Sprintf" || name == "Sprint" || name == "Sprintln") {
			w.alloc(call.Pos(), "fmt."+name, nil, false)
			return
		}
		// pkg.Func into a loaded project package.
		if pkg := w.p.pkgByPath[path]; pkg != nil {
			if callee := w.p.funcIndex[pkg][name]; callee != nil {
				w.propagate(held, call.Pos(), callee)
			}
			return
		}
		return
	}

	if recv, name, ok := methodCall(w.fn.imports, call); ok {
		if blockingMethods[name] {
			w.blocking(held, call.Pos(), name+" call", nil, token.Position{})
		}
		_ = recv
	}
	if callee := w.p.resolveCall(w.fn, call); callee != nil {
		w.propagate(held, call.Pos(), callee)
	}
}

// propagate merges a resolved callee's summary into the walk: blocking
// and bare-sleep facts gain a via hop, the callee's transitive lock
// acquisitions order against every held lock, and allocation facts
// flow up.
func (w *sumWalker) propagate(held map[string]heldLock, pos token.Pos, callee *FuncInfo) {
	cs := callee.Summary
	if cs == nil {
		return
	}
	if cs.Blocking != nil {
		via := append([]FuncID{callee.ID}, cs.Blocking.Via...)
		w.blocking(held, pos, cs.Blocking.What, via, cs.Blocking.Pos)
	}
	if cs.SleepBare != nil {
		via := append([]FuncID{callee.ID}, cs.SleepBare.Via...)
		w.sleepBare(pos, cs.SleepBare.What, via, cs.SleepBare.Pos)
	}
	if len(cs.Acquires) > 0 {
		callPos := w.position(pos)
		for id, acq := range cs.Acquires {
			if w.emit {
				for hid, h := range held {
					if hid == id {
						continue
					}
					via := append([]FuncID{callee.ID}, acq.via...)
					w.orderEdge(hid, id, h.display, acq.display, callPos, via)
				}
			}
			if !w.inLit {
				if _, ok := w.sum.Acquires[id]; !ok {
					w.sum.Acquires[id] = acqFact{
						display: acq.display,
						pos:     callPos,
						via:     append([]FuncID{callee.ID}, acq.via...),
					}
				}
			}
		}
	}
	if len(cs.Allocs) > 0 {
		f := cs.Allocs[0]
		w.alloc(pos, f.What+" at "+f.Pos.String(), append([]FuncID{callee.ID}, f.Via...), f.Loop)
	}
}

// walkLit walks a function literal body as its own context: fresh held
// set, fresh loop depth, facts attributed to the enclosing declared
// function but excluded from its blocking/lock summary.
func (w *sumWalker) walkLit(lit *ast.FuncLit) {
	inner := &sumWalker{
		p:       w.p,
		fn:      w.fn,
		emit:    w.emit,
		sum:     w.sum,
		inLit:   true,
		growers: collectGrowers(lit.Body),
	}
	inner.stmts(lit.Body.List, map[string]heldLock{})
}
