package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// readmeRowRe matches one analyzer row of the README's static-analysis
// table: "| `name` | invariant |".
var readmeRowRe = regexp.MustCompile("(?m)^\\| `([a-z]+)` \\|")

// TestReadmeTableMatchesRegistry diffs the README analyzer table
// against the registry, both ways: an analyzer added without
// documentation fails, and a stale row for a removed analyzer fails.
// (whisperlint -list cannot drift — it iterates All() directly.)
func TestReadmeTableMatchesRegistry(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "README.md"))
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	// Scope to the "## Static analysis" section so rows of unrelated
	// tables (scenarios, package map) don't match.
	_, section, found := strings.Cut(string(data), "## Static analysis")
	if !found {
		t.Fatal("README.md has no \"## Static analysis\" section")
	}
	if end := strings.Index(section, "\n## "); end >= 0 {
		section = section[:end]
	}
	documented := map[string]bool{}
	for _, m := range readmeRowRe.FindAllStringSubmatch(section, -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("no analyzer rows found in README.md; table format changed?")
	}
	registered := map[string]bool{}
	for _, a := range All() {
		registered[a.Name] = true
		if !documented[a.Name] {
			t.Errorf("analyzer %q is registered but has no README table row", a.Name)
		}
	}
	for name := range documented {
		if !registered[name] {
			t.Errorf("README documents analyzer %q which is not in analysis.All()", name)
		}
	}
}
