package analysis

import (
	"strings"
	"testing"
)

// projectOf builds a one-package project from source.
func projectOf(t *testing.T, importPath, src string) (*Project, *Package) {
	t.Helper()
	pkg := loadSrc(t, importPath, src)
	return NewProject(pkg), pkg
}

func summaryOf(t *testing.T, p *Project, id FuncID) *Summary {
	t.Helper()
	fn := p.Funcs[id]
	if fn == nil {
		var have []string
		for k := range p.Funcs {
			have = append(have, string(k))
		}
		t.Fatalf("no function %s in project (have %s)", id, strings.Join(have, ", "))
	}
	return fn.Summary
}

func TestCallGraphMutualRecursionFixpoint(t *testing.T) {
	p, _ := projectOf(t, "whisper/internal/x", `package p

func ping(ch chan int, n int) {
	if n == 0 {
		ch <- 1
		return
	}
	pong(ch, n-1)
}

func pong(ch chan int, n int) {
	ping(ch, n)
}

func pure(n int) int {
	if n == 0 {
		return 0
	}
	return pure(n - 1)
}
`)
	// The blocking fact must propagate around the ping<->pong cycle to
	// both members of the SCC.
	for _, id := range []FuncID{"whisper/internal/x.ping", "whisper/internal/x.pong"} {
		if s := summaryOf(t, p, id); s.Blocking == nil {
			t.Errorf("%s: Blocking = nil, want channel-send fact through the recursion", id)
		}
	}
	if s := summaryOf(t, p, "whisper/internal/x.pure"); s.Blocking != nil {
		t.Errorf("pure self-recursion gained a blocking fact: %+v", s.Blocking)
	}
}

func TestCallGraphMethodValueEdge(t *testing.T) {
	p, _ := projectOf(t, "whisper/internal/x", `package p

type worker struct{ ch chan int }

func (w *worker) run() { w.ch <- 1 }

func (w *worker) start() func() {
	return w.run // method value: an edge without a call operator
}
`)
	fn := p.Funcs["whisper/internal/x.(worker).start"]
	if fn == nil {
		t.Fatal("start not indexed")
	}
	found := false
	for _, cs := range fn.Calls {
		if cs.Callee == "whisper/internal/x.(worker).run" {
			found = true
		}
	}
	if !found {
		t.Errorf("method-value reference w.run produced no call edge; edges: %+v", fn.Calls)
	}
}

func TestCallGraphConstructorTypedLocal(t *testing.T) {
	p, _ := projectOf(t, "whisper/internal/x", `package p

import "sync"

type box struct {
	mu sync.Mutex
	ch chan int
}

func newBox() *box { return &box{} }

func useConstructor() {
	b := newBox()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- 1
}
`)
	fn := p.Funcs["whisper/internal/x.useConstructor"]
	if fn == nil {
		t.Fatal("useConstructor not indexed")
	}
	// The local b resolves through newBox's result type, so the lock
	// canonicalizes to the named field path and the held-block fires.
	if len(fn.heldBlocks) != 1 {
		t.Fatalf("heldBlocks = %+v, want exactly one (send under b.mu)", fn.heldBlocks)
	}
	s := summaryOf(t, p, "whisper/internal/x.useConstructor")
	if _, ok := s.Acquires["whisper/internal/x.(box).mu"]; !ok {
		t.Errorf("lock not canonicalized by field path; acquires: %+v", s.Acquires)
	}
}

func TestCallGraphCrossPackageEdge(t *testing.T) {
	pkgA := loadSrc(t, "whisper/internal/wire", `package wire

func Flush(ch chan int) { ch <- 1 }
`)
	pkgB := loadSrc(t, "whisper/internal/client", `package client

import "whisper/internal/wire"

func Push(ch chan int) { wire.Flush(ch) }
`)
	p := NewProject(pkgA, pkgB)
	s := summaryOf(t, p, "whisper/internal/client.Push")
	if s.Blocking == nil {
		t.Fatal("cross-package blocking fact did not propagate")
	}
	if len(s.Blocking.Via) == 0 || s.Blocking.Via[0] != "whisper/internal/wire.Flush" {
		t.Errorf("via chain = %+v, want [wire.Flush]", s.Blocking.Via)
	}
}

func TestCallGraphApproxEdgesNeverCarryLockFacts(t *testing.T) {
	p, _ := projectOf(t, "whisper/internal/x", `package p

import "sync"

type locker struct{ mu sync.Mutex }

// Grab matches by name only from the interface call below.
func (l *locker) Grab() {
	l.mu.Lock()
	l.mu.Unlock()
}

type grabber interface{ Grab() }

func dispatch(g grabber) {
	g.Grab()
}
`)
	s := summaryOf(t, p, "whisper/internal/x.dispatch")
	if len(s.Acquires) != 0 {
		t.Errorf("approximate (name-matched) edge leaked lock facts: %+v", s.Acquires)
	}
	fn := p.Funcs["whisper/internal/x.dispatch"]
	if len(fn.callsApprox) == 0 {
		t.Errorf("expected an approximate edge for the interface dispatch")
	}
}

// TestInterproceduralDeadlockFixture is the miss-proof the PR demands:
// the deadlock fixture's AB/BA inversion exists only through the call
// graph. The full engine reports it; the same engine with every call
// edge stripped — which is exactly the PR 4 intraprocedural view —
// provably reports nothing.
func TestInterproceduralDeadlockFixture(t *testing.T) {
	pkg, err := LoadDir("whisper/internal/replog", td("deadlock"))
	if err != nil {
		t.Fatal(err)
	}
	proj := NewProject(pkg)

	diags := RunProject(proj, []*Analyzer{LockOrder})
	if len(diags) == 0 {
		t.Fatal("interprocedural engine missed the cross-function lock-order cycle")
	}
	msg := diags[0].Message
	for _, lock := range []string{"(journal).mu", "(state).mu"} {
		if !strings.Contains(msg, lock) {
			t.Errorf("cycle report does not name %s: %s", lock, msg)
		}
	}

	// Emulate the PR 4 intraprocedural engine: re-summarize every
	// function while hiding all callee summaries, so propagation has
	// nothing to merge (the walk itself only sees each body's own
	// primitives). No function acquires both locks directly, so no
	// ordering and no held-block survives.
	intra := NewProject(pkg)
	intra.orderEdges = map[lockEdge]*orderFact{}
	for _, fn := range intra.Funcs {
		fn.Summary = nil
		fn.heldBlocks = nil
	}
	saved := map[FuncID]*Summary{}
	for id, fn := range intra.Funcs {
		intra.summarize(fn, true)
		saved[id] = fn.Summary
		fn.Summary = nil // keep later functions blind to this one
	}
	for id, fn := range intra.Funcs {
		fn.Summary = saved[id]
	}
	if diags := RunProject(intra, []*Analyzer{LockOrder, LockHeld}); len(diags) != 0 {
		t.Fatalf("intraprocedural view unexpectedly reported: %v", diags)
	}
}

func TestHotpathDirectiveAndRoster(t *testing.T) {
	p, _ := projectOf(t, "whisper/internal/x", `package p

//lint:hotpath
func annotated() {}

func plain() {}
`)
	if !p.Funcs["whisper/internal/x.annotated"].Hot {
		t.Error("//lint:hotpath directive not honored")
	}
	if p.Funcs["whisper/internal/x.plain"].Hot {
		t.Error("plain function marked hot")
	}
	// The embedded roster marks the real soap hot paths when that
	// package is loaded; here (different package) it must not, and no
	// drift may be recorded for unloaded packages.
	if len(p.rosterUnmatched) != 0 {
		t.Errorf("roster drift recorded for unloaded packages: %v", p.rosterUnmatched)
	}
}

func TestRosterDriftReported(t *testing.T) {
	// A loaded package whose roster entry names a missing function must
	// surface as an allocbudget diagnostic.
	pkg := loadSrc(t, "whisper/internal/soap", `package soap

func Unrelated() {}
`)
	p := NewProject(pkg)
	if len(p.rosterUnmatched) == 0 {
		t.Fatal("expected roster drift for whisper/internal/soap entries")
	}
	diags := RunProject(p, []*Analyzer{AllocBudget})
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "hotpaths.txt names") {
			found = true
		}
	}
	if !found {
		t.Errorf("roster drift not reported; diags: %v", diags)
	}
}
