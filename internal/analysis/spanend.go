package analysis

import (
	"go/ast"
	"go/token"
)

// SpanEnd verifies that every trace span reaches End (or EndWith) on
// every path out of the function that starts it. An unended span never
// reaches the collector: the trace tree silently loses the subtree,
// failover phases disappear from the §5 RTT anatomy, and — because
// spans pin their tracer until ended — long soaks leak memory.
//
// A span is "started" by an assignment whose right-hand side calls
// StartSpan or StartRemote. The analyzer then requires, on every
// return (and every `continue` of the loop iteration the span was
// started in), that one of the following happened first:
//
//   - span.End(...) / span.EndWith(...) was called,
//   - a defer was registered that ends the span (directly, through a
//     function literal, or through a named local closure that ends it),
//   - a named local closure that ends the span was invoked (the
//     reply-closure pattern in bpeer.handleRequest).
//
// The walk is branch-sensitive: an End inside `if err != nil { ... }`
// satisfies only that arm. Spans assigned to `_` are ignored (the
// no-op tracer path), and bodies of nested function literals and go
// statements are analyzed as their own functions.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "verify every started trace span is ended on all return paths",
	Run:  runSpanEnd,
}

// spanStartMethods are the span-minting methods of internal/trace.
var spanStartMethods = map[string]bool{
	"StartSpan":   true, // returns (ctx, span)
	"StartRemote": true, // returns span
}

func runSpanEnd(pass *Pass) {
	for _, f := range pass.Files {
		funcsOf(f, func(name string, ft *ast.FuncType, body *ast.BlockStmt) {
			for _, st := range spanStarts(body) {
				t := &spanTracker{
					pass:   pass,
					span:   st.name,
					start:  st.stmt,
					define: st.define,
					enders: endingClosures(body, st.name),
				}
				t.check(body)
			}
		})
	}
}

// spanStart is one span-creating assignment in a function body.
type spanStart struct {
	stmt   *ast.AssignStmt
	name   string
	define bool
}

// spanStarts finds the span-creating assignments directly in body
// (nested function literals are separate bodies).
func spanStarts(body *ast.BlockStmt) []spanStart {
	var out []spanStart
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !spanStartMethods[sel.Sel.Name] {
			return true
		}
		var target ast.Expr
		switch sel.Sel.Name {
		case "StartSpan":
			if len(as.Lhs) != 2 {
				return true
			}
			target = as.Lhs[1]
		case "StartRemote":
			if len(as.Lhs) != 1 {
				return true
			}
			target = as.Lhs[0]
		}
		ident, ok := target.(*ast.Ident)
		if !ok || ident.Name == "_" {
			return true
		}
		out = append(out, spanStart{stmt: as, name: ident.Name, define: as.Tok == token.DEFINE})
		return true
	})
	return out
}

// endingClosures finds local closures that end the span, e.g.
// `reply := func() { ...; span.End(); ... }`; a call to such a closure
// counts as ending the span.
func endingClosures(body *ast.BlockStmt, span string) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		name, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		lit, ok := as.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		if callsEnd(lit.Body, span, nil) {
			out[name.Name] = true
		}
		return true
	})
	return out
}

// callsEnd reports whether the node contains span.End/EndWith or a
// call to a known ending closure, descending into function literals
// only when enders is nil (used to classify closure bodies).
func callsEnd(n ast.Node, span string, enders map[string]bool) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if _, ok := c.(*ast.FuncLit); ok && enders != nil {
			return false
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if x, ok := fun.X.(*ast.Ident); ok && x.Name == span &&
				(fun.Sel.Name == "End" || fun.Sel.Name == "EndWith") {
				found = true
			}
		case *ast.Ident:
			if enders[fun.Name] {
				found = true
			}
		}
		return true
	})
	return found
}

type spanTracker struct {
	pass   *Pass
	span   string
	start  *ast.AssignStmt
	define bool
	enders map[string]bool
}

// check locates the statement list holding the start assignment and
// tracks the span through the rest of the function.
func (t *spanTracker) check(body *ast.BlockStmt) {
	home, idx, top := findStmt(body.List, t.start, true)
	if home == nil {
		return // start buried in an unusual position (if-init etc.)
	}
	ended, fellOff := t.track(home[idx+1:], false, 0)
	if fellOff && !ended && (t.define || top) {
		t.pass.Reportf(t.start.Pos(), "span %s is never ended on the fall-through path; call %s.End (or defer it) before the function returns", t.span, t.span)
	}
}

// findStmt locates target as a direct element of list or of any nested
// statement list, returning the containing list, the index, and
// whether that list is the function's top-level body.
func findStmt(list []ast.Stmt, target ast.Stmt, top bool) ([]ast.Stmt, int, bool) {
	for i, s := range list {
		if s == target {
			return list, i, top
		}
		for _, sub := range sublists(s) {
			if l, idx, t := findStmt(sub, target, false); l != nil {
				return l, idx, t
			}
		}
	}
	return nil, 0, false
}

// sublists returns the nested statement lists of one statement.
func sublists(s ast.Stmt) [][]ast.Stmt {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return [][]ast.Stmt{s.List}
	case *ast.IfStmt:
		out := [][]ast.Stmt{s.Body.List}
		if s.Else != nil {
			out = append(out, []ast.Stmt{s.Else})
		}
		return out
	case *ast.ForStmt:
		return [][]ast.Stmt{s.Body.List}
	case *ast.RangeStmt:
		return [][]ast.Stmt{s.Body.List}
	case *ast.SwitchStmt:
		return clauseLists(s.Body)
	case *ast.TypeSwitchStmt:
		return clauseLists(s.Body)
	case *ast.SelectStmt:
		return clauseLists(s.Body)
	case *ast.LabeledStmt:
		return [][]ast.Stmt{{s.Stmt}}
	}
	return nil
}

func clauseLists(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			out = append(out, c.Body)
		case *ast.CommClause:
			out = append(out, c.Body)
		}
	}
	return out
}

// track walks a statement list with the span live and `ended` state,
// reporting exits (returns, same-loop continues) reached before the
// span ended. It returns the ended state at fall-off and whether
// control can fall off the end at all.
func (t *spanTracker) track(list []ast.Stmt, ended bool, loopDepth int) (endedAtFallOff, fellOff bool) {
	for _, s := range list {
		switch s := s.(type) {
		case *ast.DeferStmt:
			if t.deferEnds(s) {
				ended = true
			}
		case *ast.ReturnStmt:
			// An End inside the return expression itself counts
			// (e.g. `return putSpan(span)`-style helpers).
			if !ended && !callsEnd(s, t.span, t.enders) {
				t.report(s.Pos(), "return")
			}
			return ended, false
		case *ast.BranchStmt:
			if s.Tok == token.CONTINUE && loopDepth == 0 {
				if !ended {
					t.report(s.Pos(), "continue")
				}
				return ended, false
			}
		case *ast.IfStmt:
			bodyEnded, bodyFell := t.track(s.Body.List, ended, loopDepth)
			var paths []bool
			if bodyFell {
				paths = append(paths, bodyEnded)
			}
			if s.Else != nil {
				elseEnded, elseFell := t.track([]ast.Stmt{s.Else}, ended, loopDepth)
				if elseFell {
					paths = append(paths, elseEnded)
				}
			} else {
				paths = append(paths, ended)
			}
			if len(paths) == 0 {
				return ended, false // both arms exit; the rest is unreachable
			}
			ended = allTrue(paths)
		case *ast.ForStmt:
			t.track(s.Body.List, ended, loopDepth+1)
		case *ast.RangeStmt:
			t.track(s.Body.List, ended, loopDepth+1)
		case *ast.SwitchStmt, *ast.TypeSwitchStmt:
			var clauses [][]ast.Stmt
			hasDefault := false
			switch sw := s.(type) {
			case *ast.SwitchStmt:
				clauses, hasDefault = clausesWithDefault(sw.Body)
			case *ast.TypeSwitchStmt:
				clauses, hasDefault = clausesWithDefault(sw.Body)
			}
			var paths []bool
			if !hasDefault {
				paths = append(paths, ended) // no case taken: state unchanged
			}
			for _, cl := range clauses {
				if cEnded, cFell := t.track(cl, ended, loopDepth); cFell {
					paths = append(paths, cEnded)
				}
			}
			if len(paths) == 0 {
				return ended, false
			}
			ended = allTrue(paths)
		case *ast.SelectStmt:
			var paths []bool
			for _, cl := range clauseLists(s.Body) {
				if cEnded, cFell := t.track(cl, ended, loopDepth); cFell {
					paths = append(paths, cEnded)
				}
			}
			if len(paths) == 0 {
				return ended, false
			}
			ended = allTrue(paths)
		case *ast.BlockStmt:
			blockEnded, blockFell := t.track(s.List, ended, loopDepth)
			if !blockFell {
				return blockEnded, false
			}
			ended = blockEnded
		case *ast.LabeledStmt:
			lEnded, lFell := t.track([]ast.Stmt{s.Stmt}, ended, loopDepth)
			if !lFell {
				return lEnded, false
			}
			ended = lEnded
		case *ast.GoStmt:
			// Runs elsewhere; its literal is analyzed as its own body.
		default:
			if callsEnd(s, t.span, t.enders) {
				ended = true
			}
		}
	}
	return ended, true
}

func clausesWithDefault(body *ast.BlockStmt) ([][]ast.Stmt, bool) {
	var out [][]ast.Stmt
	hasDefault := false
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			out = append(out, cc.Body)
			if cc.List == nil {
				hasDefault = true
			}
		}
	}
	return out, hasDefault
}

// deferEnds reports whether the defer statement ends the span: a
// direct span.End/EndWith, a function literal containing one, or a
// known ending closure.
func (t *spanTracker) deferEnds(d *ast.DeferStmt) bool {
	switch fun := d.Call.Fun.(type) {
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok && x.Name == t.span &&
			(fun.Sel.Name == "End" || fun.Sel.Name == "EndWith") {
			return true
		}
	case *ast.FuncLit:
		return callsEnd(fun.Body, t.span, nil)
	case *ast.Ident:
		return t.enders[fun.Name]
	}
	return false
}

func (t *spanTracker) report(pos token.Pos, exit string) {
	t.pass.Reportf(pos, "span %s (started at %s) is not ended on this %s path",
		t.span, t.pass.Fset.Position(t.start.Pos()), exit)
}

func allTrue(bs []bool) bool {
	for _, b := range bs {
		if !b {
			return false
		}
	}
	return true
}
