package analysis

import (
	"go/ast"
	"go/token"
)

// LockHeld reports mutexes held across blocking operations: channel
// sends and receives, selects without a default, time.Sleep, and
// calls into the blocking messaging layer (Send/Call/Query/Invoke/
// Propagate). This is the defect class behind the PR 3 Bully-election
// races: a goroutine that parks while holding a lock stalls every
// other path through that lock, and on the election/heartbeat paths
// that turns a single slow peer into a cluster-wide convergence stall.
//
// The analyzer tracks Lock/RLock calls per function body and flags any
// blocking operation reached while a lock is held. A deferred Unlock
// keeps the lock held for the rest of the body (that is the point:
// `mu.Lock(); defer mu.Unlock()` followed by a channel send is the
// bug, not a false positive). Branches are analyzed with copies of the
// held set, so a lock acquired inside one arm does not leak into the
// code after it.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "report mutexes held across channel operations, selects, time.Sleep and messaging calls",
	Run:  runLockHeld,
}

// blockingMethods are method names that block on network or pipe
// round-trips in this codebase (p2p pipes, resolvers, peers, SOAP).
var blockingMethods = map[string]bool{
	"Send":      true,
	"Call":      true,
	"Query":     true,
	"Invoke":    true,
	"Propagate": true,
}

func runLockHeld(pass *Pass) {
	for _, f := range pass.Files {
		imports := fileImports(f)
		funcsOf(f, func(name string, ft *ast.FuncType, body *ast.BlockStmt) {
			w := &lockWalker{pass: pass, imports: imports}
			w.stmts(body.List, map[string]token.Pos{})
		})
	}
}

type lockWalker struct {
	pass    *Pass
	imports map[string]string
}

// stmts walks one statement list, threading the held-lock set through
// sequential statements and handing copies to branch bodies.
func (w *lockWalker) stmts(list []ast.Stmt, held map[string]token.Pos) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (w *lockWalker) stmt(s ast.Stmt, held map[string]token.Pos) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if recv, name, ok := methodCall(w.imports, call); ok {
				switch name {
				case "Lock", "RLock":
					if len(call.Args) == 0 {
						held[exprString(recv)] = call.Pos()
						return
					}
				case "Unlock", "RUnlock":
					if len(call.Args) == 0 {
						delete(held, exprString(recv))
						return
					}
				}
			}
		}
		w.exprs(held, s.X)
	case *ast.AssignStmt:
		w.exprs(held, s.Rhs...)
		w.exprs(held, s.Lhs...)
	case *ast.SendStmt:
		w.blocking(held, s.Pos(), "channel send")
		w.exprs(held, s.Chan, s.Value)
	case *ast.ReturnStmt:
		w.exprs(held, s.Results...)
	case *ast.IncDecStmt:
		w.exprs(held, s.X)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.exprs(held, s.Cond)
		w.stmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.exprs(held, s.Cond)
		}
		inner := copyHeld(held)
		w.stmts(s.Body.List, inner)
		if s.Post != nil {
			w.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		w.exprs(held, s.X)
		w.stmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.exprs(held, s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.exprs(held, cc.List...)
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		w.selectStmt(s, held)
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.exprs(held, vs.Values...)
				}
			}
		}
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred calls run after the body (any deferred Unlock keeps
		// the lock held until then, which is exactly what we model by
		// leaving the held set untouched); go statements run on another
		// goroutine that does not hold this one's locks. Their function
		// literals are analyzed separately by funcsOf.
	}
}

// selectStmt flags a blocking select while a lock is held. A select
// with a default clause never parks, so only its clause bodies are
// walked.
func (w *lockWalker) selectStmt(s *ast.SelectStmt, held map[string]token.Pos) {
	hasDefault := false
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		w.blocking(held, s.Pos(), "select")
	}
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		w.stmts(cc.Body, copyHeld(held))
	}
}

// exprs scans expressions (not nested statements) for blocking
// operations: channel receives, time.Sleep and messaging calls.
// Function literals are skipped; their bodies run elsewhere.
func (w *lockWalker) exprs(held map[string]token.Pos, list ...ast.Expr) {
	if len(held) == 0 {
		return
	}
	for _, e := range list {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					w.blocking(held, n.Pos(), "channel receive")
				}
			case *ast.CallExpr:
				if path, name, ok := pkgFuncCall(w.imports, n); ok {
					if path == "time" && name == "Sleep" {
						w.blocking(held, n.Pos(), "time.Sleep")
					}
					return true
				}
				if _, name, ok := methodCall(w.imports, n); ok && blockingMethods[name] {
					w.blocking(held, n.Pos(), name+" call")
				}
			}
			return true
		})
	}
}

func (w *lockWalker) blocking(held map[string]token.Pos, pos token.Pos, what string) {
	for lock, at := range held {
		w.pass.Reportf(pos, "%s is held across %s (acquired at %s); release the lock before blocking",
			lock, what, w.pass.Fset.Position(at))
	}
}
