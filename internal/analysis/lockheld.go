package analysis

// LockHeld reports mutexes held across blocking operations: channel
// sends and receives, selects without a default, time.Sleep, calls
// into the blocking messaging layer (Send/Call/Query/Invoke/
// Propagate) — and, since the interprocedural engine, calls to any
// project function whose summary says it blocks, so a channel send
// reached *through* a helper under a held mutex is caught too. This is
// the defect class behind the PR 3 Bully-election races: a goroutine
// that parks while holding a lock stalls every other path through that
// lock, and on the election/heartbeat paths that turns a single slow
// peer into a cluster-wide convergence stall.
//
// The facts come from the summary walk (internal to the engine): locks
// are tracked per function body with branch-sensitive held sets, a
// deferred Unlock keeps the lock held for the rest of the body (that
// is the point: `mu.Lock(); defer mu.Unlock()` followed by a channel
// send is the bug, not a false positive), and a call to a function
// whose bottom-up summary blocks is treated exactly like the primitive
// it reaches, with the call chain named in the message.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "report mutexes held across channel operations, selects, time.Sleep, messaging calls and calls that transitively block",
	Run:  runLockHeld,
}

// blockingMethods are method names that block on network or pipe
// round-trips in this codebase (p2p pipes, resolvers, peers, SOAP).
var blockingMethods = map[string]bool{
	"Send":      true,
	"Call":      true,
	"Query":     true,
	"Invoke":    true,
	"Propagate": true,
}

func runLockHeld(pass *Pass) {
	for _, fn := range pass.Proj.FuncsOf(pass.Pkg) {
		for _, f := range fn.heldBlocks {
			pass.ReportPosf(f.pos, "%s is held across %s (acquired at %s); release the lock before blocking",
				f.lockDisplay, f.what, f.lockPos)
		}
	}
}
