package analysis

import (
	"go/ast"
	"strings"
)

// PoolSafe guards the sync.Pool buffer recycling on the SOAP hot path.
// A pooled buffer is free for reuse the moment it is Put back: any
// later read aliases another goroutine's in-flight envelope, which is
// a data race that corrupts payloads only under load. And a pooled
// object stored in a struct field outlives the function that borrowed
// it, pinning the buffer (defeating the pool) or worse, escaping it.
//
// Two rules, matched syntactically against pool-shaped calls (a .Put/
// .Get method on a receiver whose name contains "pool", or this
// package's putBuf/getBuf helpers):
//
//  1. after Put(x) (or putBuf(x)), the variable x must not be used
//     again in the remainder of the enclosing statement list, unless
//     it is first reassigned;
//  2. the result of Get()/getBuf() must not be assigned to a struct
//     field.
var PoolSafe = &Analyzer{
	Name: "poolsafe",
	Doc:  "forbid use-after-Put of pooled buffers and retention of pooled objects in struct fields",
	Run:  runPoolSafe,
}

func runPoolSafe(pass *Pass) {
	for _, f := range pass.Files {
		imports := fileImports(f)
		funcsOf(f, func(name string, ft *ast.FuncType, body *ast.BlockStmt) {
			checkPoolUse(pass, imports, body.List)
		})
	}
}

// poolReceiver reports whether the expression names a pool ("bufPool",
// "p.pool", "connPool"...).
func poolReceiver(e ast.Expr) bool {
	return strings.Contains(strings.ToLower(exprString(e)), "pool")
}

// releasedVar returns the identifier released by the call, if the call
// is a pool Put (method .Put on a pool receiver, or a local put helper
// like putBuf).
func releasedVar(imports map[string]string, call *ast.CallExpr) *ast.Ident {
	if len(call.Args) == 0 {
		return nil
	}
	arg, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	if recv, name, isMethod := methodCall(imports, call); isMethod {
		if name == "Put" && poolReceiver(recv) {
			return arg
		}
		return nil
	}
	if fun, ok := call.Fun.(*ast.Ident); ok && strings.HasPrefix(strings.ToLower(fun.Name), "put") && strings.Contains(strings.ToLower(fun.Name), "buf") {
		return arg
	}
	return nil
}

// poolGetCall reports whether the call borrows from a pool (.Get on a
// pool receiver or a local getBuf-style helper).
func poolGetCall(imports map[string]string, call *ast.CallExpr) bool {
	if recv, name, isMethod := methodCall(imports, call); isMethod {
		return name == "Get" && poolReceiver(recv)
	}
	if fun, ok := call.Fun.(*ast.Ident); ok {
		l := strings.ToLower(fun.Name)
		return strings.HasPrefix(l, "get") && strings.Contains(l, "buf")
	}
	return false
}

// checkPoolUse scans one statement list. Releases found at any nesting
// level apply to the remainder of the list they occur in; deeper lists
// are scanned recursively with their own contexts.
func checkPoolUse(pass *Pass, imports map[string]string, list []ast.Stmt) {
	released := map[string]ast.Node{} // var name → the releasing call
	for _, s := range list {
		// Rule 2: pooled object stored in a struct field.
		if as, ok := s.(*ast.AssignStmt); ok {
			for i, rhs := range as.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !poolGetCall(imports, call) {
					continue
				}
				if i < len(as.Lhs) {
					if _, isField := as.Lhs[i].(*ast.SelectorExpr); isField {
						pass.Reportf(as.Pos(), "pooled object stored in a struct field outlives the borrow; copy the bytes out instead")
					}
				}
			}
		}

		// Rule 1: flag uses of already-released vars, then record any
		// release this statement performs. Within one statement the
		// release argument itself is not a "use".
		if len(released) > 0 {
			flagReleasedUses(pass, imports, s, released)
		}

		// Reassignment revives the name (a fresh Get, or any new value).
		if as, ok := s.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					delete(released, id.Name)
				}
			}
		}

		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
				// A deferred Put releases at return, after every use in
				// the body; go statements run elsewhere.
				return false
			case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
				// A release inside a branch body is conditional (often
				// followed by a return); it must not poison the code
				// after the branch. The recursive pass below checks the
				// branch body on its own terms.
				return false
			case *ast.CallExpr:
				if id := releasedVar(imports, n); id != nil {
					released[id.Name] = n
				}
			}
			return true
		})
		// Nested lists get their own pass so releases inside a branch
		// do not poison the other branch; a release inside a branch
		// followed by a use after the branch is rare enough to accept.
		for _, sub := range sublists(s) {
			checkPoolUse(pass, imports, sub)
		}
	}
}

// flagReleasedUses reports reads of released variables inside stmt,
// skipping the argument position of further release calls and nested
// function literals.
func flagReleasedUses(pass *Pass, imports map[string]string, stmt ast.Stmt, released map[string]ast.Node) {
	// A plain `x = ...` rebinds x rather than reading it; only flag the
	// right-hand side (and any non-identifier left-hand side, like a
	// field write through a released pointer).
	if as, ok := stmt.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if _, isIdent := lhs.(*ast.Ident); !isIdent {
				flagReleasedUsesExpr(pass, imports, lhs, released)
			}
		}
		for _, rhs := range as.Rhs {
			flagReleasedUsesExpr(pass, imports, rhs, released)
		}
		return
	}
	flagReleasedUsesNode(pass, imports, stmt, released)
}

func flagReleasedUsesExpr(pass *Pass, imports map[string]string, e ast.Expr, released map[string]ast.Node) {
	flagReleasedUsesNode(pass, imports, e, released)
}

func flagReleasedUsesNode(pass *Pass, imports map[string]string, root ast.Node, released map[string]ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if id := releasedVar(imports, n); id != nil {
				// Double-Put: flag it as a use (putting twice corrupts
				// the pool), then stop descending into the argument.
				if _, twice := released[id.Name]; twice {
					pass.Reportf(n.Pos(), "%s is put back to the pool twice", id.Name)
				}
				return false
			}
		case *ast.Ident:
			if rel, ok := released[n.Name]; ok {
				pass.Reportf(n.Pos(), "%s is used after being returned to the pool at %s",
					n.Name, pass.Fset.Position(rel.Pos()))
			}
		}
		return true
	})
}
