package analysis

import (
	"go/ast"
	"go/token"
)

// RetryLoop enforces retry discipline on the invocation path: a loop
// that delays between attempts (retry, rejoin, poll) must be
// cancellable, because a bare time.Sleep outlives the caller's
// deadline — the proxy keeps a client waiting on a dead coordinator
// long after its context expired, which is exactly the failover-bound
// the paper's measurements depend on. Inside a loop in a scoped
// package the analyzer flags:
//
//   - time.Sleep, directly or through a callee whose interprocedural
//     summary sleeps uncancellably;
//   - a naked <-time.After / <-time.Tick receive outside a select;
//   - a select whose only arms are timers (a sleep in disguise).
//
// The sanctioned shapes are a select that pairs the timer with
// ctx.Done() (or a stop/done channel) — see SWSProxy.sleep, which also
// caps and jitters the backoff — or a timeout arm next to a real event
// arm (a bounded wait, not a delay).
var RetryLoop = &Analyzer{
	Name: "retryloop",
	Doc:  "forbid uncancellable delays (bare time.Sleep, timer-only selects) inside loops on the invocation path",
	Run:  runRetryLoop,
}

// retryScopedPkgs are the layers whose loops must respect deadlines.
var retryScopedPkgs = map[string]bool{
	"whisper/internal/p2p":      true,
	"whisper/internal/proxy":    true,
	"whisper/internal/bpeer":    true,
	"whisper/internal/election": true,
	"whisper/internal/replog":   true,
	"whisper/internal/soap":     true,
	"whisper/internal/loadctl":  true,
	"whisper/internal/gossip":   true,
}

func runRetryLoop(pass *Pass) {
	if !retryScopedPkgs[pass.ImportPath] {
		return
	}
	for _, fn := range pass.Proj.FuncsOf(pass.Pkg) {
		if isTestFile(pass, fn.File) {
			continue
		}
		rw := &retryWalker{pass: pass, fn: fn}
		rw.walkBody(fn.Decl.Body, 0)
	}
}

type retryWalker struct {
	pass *Pass
	fn   *FuncInfo
}

// walkBody scans one body at the given loop depth; loops increase the
// depth, function literals restart it (their loop context is their
// own).
func (w *retryWalker) walkBody(body *ast.BlockStmt, depth int) {
	selectComms := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if cc, ok := n.(*ast.CommClause); ok && cc.Comm != nil {
			selectComms[cc.Comm] = true
		}
		return true
	})
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			switch m := m.(type) {
			case *ast.FuncLit:
				w.walkBody(m.Body, 0)
				return false
			case *ast.ForStmt:
				if m.Init != nil {
					walk(m.Init, depth)
				}
				if m.Cond != nil {
					walk(m.Cond, depth)
				}
				walk(m.Body, depth+1)
				if m.Post != nil {
					walk(m.Post, depth+1)
				}
				return false
			case *ast.RangeStmt:
				walk(m.X, depth)
				walk(m.Body, depth+1)
				return false
			case *ast.SelectStmt:
				if depth > 0 {
					w.checkSelect(m)
				}
				return true
			case *ast.UnaryExpr:
				if depth > 0 && m.Op == token.ARROW && !selectComms[parentComm(selectComms, m)] {
					if call, ok := m.X.(*ast.CallExpr); ok {
						if path, name, ok := pkgFuncCall(w.fn.imports, call); ok && path == "time" && (name == "After" || name == "Tick") {
							w.pass.Reportf(m.Pos(), "naked <-time.%s in a retry loop; select on it together with ctx.Done() so the delay dies with the caller", name)
						}
					}
				}
			case *ast.CallExpr:
				if depth == 0 {
					return true
				}
				if path, name, ok := pkgFuncCall(w.fn.imports, m); ok && path == "time" && name == "Sleep" {
					w.pass.Reportf(m.Pos(), "bare time.Sleep in a retry loop; select on a timer and ctx.Done() with backoff+jitter instead (see SWSProxy.sleep)")
					return true
				}
				if callee := w.pass.Proj.resolveCall(w.fn, m); callee != nil && callee.Summary != nil && callee.Summary.SleepBare != nil {
					f := callee.Summary.SleepBare
					w.pass.Reportf(m.Pos(), "%s delays uncancellably (%s at %s%s) inside this retry loop; thread ctx and select on ctx.Done()",
						shortFuncID(callee.ID), f.What, f.Pos, viaString(f.Via))
				}
			}
			return true
		})
	}
	walk(body, depth)
}

// parentComm: a receive that IS a select comm is judged as part of the
// select, not on its own. The comm statements wrap the receive in an
// ExprStmt or AssignStmt, so membership is checked on the expression's
// enclosing statement; we approximate by checking the expression
// itself (comms map holds statements, so lookups on the expr miss —
// the caller resolves via the wrapper).
func parentComm(comms map[ast.Node]bool, recv *ast.UnaryExpr) ast.Node {
	for n := range comms {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if s.X == recv {
				return n
			}
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 && s.Rhs[0] == recv {
				return n
			}
		}
	}
	return nil
}

// checkSelect flags a select used as a pure delay: all arms timers, no
// cancellation arm, no event arm.
func (w *retryWalker) checkSelect(s *ast.SelectStmt) {
	timer, done, other, def := 0, 0, 0, 0
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			def++
			continue
		}
		switch classifyComm(cc.Comm) {
		case commTimer:
			timer++
		case commDone:
			done++
		default:
			other++
		}
	}
	if def == 0 && timer > 0 && done == 0 && other == 0 {
		w.pass.Reportf(s.Pos(), "select waits on timer channels only inside a retry loop; add a ctx.Done() (or stop-channel) arm so the delay is cancellable")
	}
}
