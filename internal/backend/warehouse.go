package backend

import (
	"fmt"
	"sync"
	"time"
)

// DataWarehouse stores the same student information as the operational
// database, but in a star schema: a fact table of enrollment facts
// referencing person and program dimensions. Answering a lookup
// requires joining the dimensions back together, which is why the
// warehouse is configured slower than the operational store — it is
// the semantically equivalent but structurally different replica of
// the paper's §4.1 scenario.
type DataWarehouse struct {
	mu        sync.RWMutex
	persons   map[int]personDim
	programs  map[int]programDim
	facts     map[string]enrollmentFact // keyed by natural student ID
	available bool
	delay     time.Duration
	nextKey   int
}

type personDim struct {
	key   int
	name  string
	email string
}

type programDim struct {
	key  int
	name string
}

type enrollmentFact struct {
	studentID  string
	personKey  int
	programKey int
	year       int
}

var _ StudentStore = (*DataWarehouse)(nil)

// NewDataWarehouse loads the records into a star schema. delay
// simulates the heavier per-query join cost.
func NewDataWarehouse(records []StudentRecord, delay time.Duration) *DataWarehouse {
	w := &DataWarehouse{
		persons:   make(map[int]personDim),
		programs:  make(map[int]programDim),
		facts:     make(map[string]enrollmentFact),
		available: true,
		delay:     delay,
	}
	programKeys := make(map[string]int)
	for _, r := range records {
		w.nextKey++
		pk := w.nextKey
		w.persons[pk] = personDim{key: pk, name: r.Name, email: r.Email}
		gk, ok := programKeys[r.Program]
		if !ok {
			w.nextKey++
			gk = w.nextKey
			programKeys[r.Program] = gk
			w.programs[gk] = programDim{key: gk, name: r.Program}
		}
		w.facts[r.ID] = enrollmentFact{studentID: r.ID, personKey: pk, programKey: gk, year: r.Year}
	}
	return w
}

// Name implements StudentStore.
func (w *DataWarehouse) Name() string { return "data-warehouse" }

// Student implements StudentStore; it reconstructs the record by
// joining the fact row with its dimensions.
func (w *DataWarehouse) Student(id string) (StudentRecord, error) {
	w.mu.RLock()
	up := w.available
	fact, ok := w.facts[id]
	var person personDim
	var program programDim
	if ok {
		person = w.persons[fact.personKey]
		program = w.programs[fact.programKey]
	}
	delay := w.delay
	w.mu.RUnlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if !up {
		return StudentRecord{}, fmt.Errorf("data warehouse: %w", ErrUnavailable)
	}
	if !ok {
		return StudentRecord{}, fmt.Errorf("student %q: %w", id, ErrNotFound)
	}
	return StudentRecord{
		ID:      fact.studentID,
		Name:    person.name,
		Program: program.name,
		Year:    fact.year,
		Email:   person.email,
		Source:  w.Name(),
	}, nil
}

// SetAvailable implements StudentStore.
func (w *DataWarehouse) SetAvailable(up bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.available = up
}

// Available implements StudentStore.
func (w *DataWarehouse) Available() bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.available
}

// FactCount returns the number of enrollment facts (testing).
func (w *DataWarehouse) FactCount() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.facts)
}
