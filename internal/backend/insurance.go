package backend

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ClaimStatus enumerates insurance claim processing outcomes.
type ClaimStatus string

// Claim statuses.
const (
	ClaimApproved ClaimStatus = "approved"
	ClaimRejected ClaimStatus = "rejected"
	ClaimPending  ClaimStatus = "pending-review"
)

// Claim is an insurance claim submitted for processing.
type Claim struct {
	ID         string  `xml:"ID"`
	PolicyID   string  `xml:"PolicyID"`
	Amount     float64 `xml:"Amount"`
	Category   string  `xml:"Category"`
	Descriptor string  `xml:"Descriptor,omitempty"`
}

// ClaimDecision is the outcome of processing a claim.
type ClaimDecision struct {
	ClaimID string      `xml:"ClaimID"`
	Status  ClaimStatus `xml:"Status"`
	Payout  float64     `xml:"Payout"`
	Reason  string      `xml:"Reason,omitempty"`
	Source  string      `xml:"Source"`
}

// ClaimProcessor adjudicates insurance claims: the backend behind the
// paper's "insurance claim processing" motivating application. Rules
// are deterministic so replicas agree on decisions:
//
//   - unknown policies are rejected,
//   - claims above the policy limit go to manual review,
//   - otherwise the claim is approved with a payout net of the
//     deductible.
type ClaimProcessor struct {
	mu        sync.RWMutex
	policies  map[string]policy
	processed map[string]ClaimDecision
	available bool
	delay     time.Duration
	name      string
}

type policy struct {
	limit      float64
	deductible float64
}

// NewClaimProcessor seeds a processor with n policies ("P0001"..).
// name distinguishes replicas in decision provenance.
func NewClaimProcessor(name string, numPolicies int, seed int64, delay time.Duration) *ClaimProcessor {
	rng := rand.New(rand.NewSource(seed))
	policies := make(map[string]policy, numPolicies)
	for i := 1; i <= numPolicies; i++ {
		policies[fmt.Sprintf("P%04d", i)] = policy{
			limit:      1000 + float64(rng.Intn(20))*500,
			deductible: float64(50 + rng.Intn(5)*50),
		}
	}
	return &ClaimProcessor{
		policies:  policies,
		processed: make(map[string]ClaimDecision),
		available: true,
		delay:     delay,
		name:      name,
	}
}

// Name identifies the processor replica.
func (p *ClaimProcessor) Name() string { return p.name }

// SetAvailable flips availability (fault injection).
func (p *ClaimProcessor) SetAvailable(up bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.available = up
}

// Available reports availability.
func (p *ClaimProcessor) Available() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.available
}

// Process adjudicates the claim. Reprocessing a claim ID returns the
// recorded decision (idempotent, so failover retries are safe).
func (p *ClaimProcessor) Process(c Claim) (ClaimDecision, error) {
	p.mu.Lock()
	up := p.available
	prior, seen := p.processed[c.ID]
	delay := p.delay
	p.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if !up {
		return ClaimDecision{}, fmt.Errorf("claim processor %s: %w", p.name, ErrUnavailable)
	}
	if seen {
		return prior, nil
	}
	if c.ID == "" {
		return ClaimDecision{}, fmt.Errorf("claim without ID: %w", ErrNotFound)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	pol, ok := p.policies[c.PolicyID]
	d := ClaimDecision{ClaimID: c.ID, Source: p.name}
	switch {
	case !ok:
		d.Status = ClaimRejected
		d.Reason = fmt.Sprintf("unknown policy %q", c.PolicyID)
	case c.Amount <= 0:
		d.Status = ClaimRejected
		d.Reason = "non-positive amount"
	case c.Amount > pol.limit:
		d.Status = ClaimPending
		d.Reason = fmt.Sprintf("amount %.2f exceeds policy limit %.2f", c.Amount, pol.limit)
	default:
		d.Status = ClaimApproved
		d.Payout = c.Amount - pol.deductible
		if d.Payout < 0 {
			d.Payout = 0
		}
	}
	p.processed[c.ID] = d
	return d, nil
}

// ProcessedCount returns how many distinct claims were adjudicated.
func (p *ClaimProcessor) ProcessedCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.processed)
}
