package backend

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// LoanApplication is a bank-loan request: the paper's "bank loan
// management" motivating application.
type LoanApplication struct {
	ID          string  `xml:"ID"`
	ApplicantID string  `xml:"ApplicantID"`
	Amount      float64 `xml:"Amount"`
	TermMonths  int     `xml:"TermMonths"`
	Purpose     string  `xml:"Purpose,omitempty"`
}

// LoanDecision is the outcome of evaluating an application.
type LoanDecision struct {
	ApplicationID string  `xml:"ApplicationID"`
	Approved      bool    `xml:"Approved"`
	RatePercent   float64 `xml:"RatePercent"`
	CreditScore   int     `xml:"CreditScore"`
	Reason        string  `xml:"Reason,omitempty"`
	Source        string  `xml:"Source"`
}

// LoanEngine scores applicants and decides loan applications with
// deterministic rules so replicated peers agree:
//
//   - credit score is a stable hash of the applicant ID into [300,850],
//   - scores under 500 are declined,
//   - the rate decreases with score and increases with term length,
//   - amounts above 50x the score are declined as over-leveraged.
type LoanEngine struct {
	mu        sync.RWMutex
	decided   map[string]LoanDecision
	available bool
	delay     time.Duration
	name      string
}

// NewLoanEngine creates an engine replica. seed is reserved for
// future stochastic extensions and currently unused.
func NewLoanEngine(name string, seed int64, delay time.Duration) *LoanEngine {
	_ = seed
	return &LoanEngine{
		decided:   make(map[string]LoanDecision),
		available: true,
		delay:     delay,
		name:      name,
	}
}

// Name identifies the engine replica.
func (e *LoanEngine) Name() string { return e.name }

// SetAvailable flips availability (fault injection).
func (e *LoanEngine) SetAvailable(up bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.available = up
}

// Available reports availability.
func (e *LoanEngine) Available() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.available
}

// CreditScore computes the applicant's deterministic score in
// [300, 850].
func CreditScore(applicantID string) int {
	var h uint32 = 2166136261
	for i := 0; i < len(applicantID); i++ {
		h ^= uint32(applicantID[i])
		h *= 16777619
	}
	return 300 + int(h%551)
}

// Decide evaluates the application. Decisions are idempotent per
// application ID.
func (e *LoanEngine) Decide(app LoanApplication) (LoanDecision, error) {
	e.mu.Lock()
	up := e.available
	prior, seen := e.decided[app.ID]
	delay := e.delay
	e.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if !up {
		return LoanDecision{}, fmt.Errorf("loan engine %s: %w", e.name, ErrUnavailable)
	}
	if seen {
		return prior, nil
	}
	if strings.TrimSpace(app.ID) == "" || strings.TrimSpace(app.ApplicantID) == "" {
		return LoanDecision{}, fmt.Errorf("loan application missing IDs: %w", ErrNotFound)
	}

	score := CreditScore(app.ApplicantID)
	d := LoanDecision{ApplicationID: app.ID, CreditScore: score, Source: e.name}
	switch {
	case app.Amount <= 0 || app.TermMonths <= 0:
		d.Reason = "invalid amount or term"
	case score < 500:
		d.Reason = fmt.Sprintf("credit score %d below threshold 500", score)
	case app.Amount > float64(score)*50:
		d.Reason = fmt.Sprintf("amount %.2f over-leveraged for score %d", app.Amount, score)
	default:
		d.Approved = true
		// Base 3%, + up to 7% for risk, + 0.02%/month of term.
		d.RatePercent = 3 + 7*(850-float64(score))/550 + 0.02*float64(app.TermMonths)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.decided[app.ID] = d
	return d, nil
}

// DecidedCount returns how many distinct applications were decided.
func (e *LoanEngine) DecidedCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.decided)
}
