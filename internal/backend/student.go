// Package backend implements the data backends the paper's b-peers
// wrap: the operational student database and the data warehouse of the
// §4.1 scenario ("if the operational database is unavailable, a
// semantically equivalent peer can automatically and transparently
// handle the service request by retrieving the same information from a
// data warehouse"), plus the insurance-claim and bank-loan domains the
// paper's introduction motivates.
//
// All stores are in-memory with injectable failures and configurable
// artificial processing delay, standing in for the paper's relational
// database (which we cannot ship) while exercising the identical code
// path: lookup by key, domain error, availability failure.
package backend

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"
)

// Errors shared by all backends.
var (
	// ErrNotFound is returned when the requested entity does not
	// exist. It maps to a soap:Client fault at the service boundary.
	ErrNotFound = errors.New("backend: not found")
	// ErrUnavailable is returned when the backing store is down. It is
	// the failure Whisper's redundancy masks.
	ErrUnavailable = errors.New("backend: store unavailable")
)

// StudentRecord is the student information returned by the paper's
// StudentInformation operation.
type StudentRecord struct {
	ID      string `xml:"ID"`
	Name    string `xml:"Name"`
	Program string `xml:"Program"`
	Year    int    `xml:"Year"`
	Email   string `xml:"Email"`
	// Source names the store that answered (useful to observe
	// transparent failover in the examples and tests).
	Source string `xml:"Source"`
}

// StudentStore is the query surface both student backends share.
type StudentStore interface {
	// Name identifies the store ("operational-db", "data-warehouse").
	Name() string
	// Student returns the record for the ID, ErrNotFound when absent,
	// or ErrUnavailable when the store is failed.
	Student(id string) (StudentRecord, error)
	// SetAvailable flips the store's availability (fault injection).
	SetAvailable(up bool)
	// Available reports the store's current availability.
	Available() bool
}

// SeedStudents deterministically generates n student records. IDs are
// "S0001".."Sn"; fields are derived from the seed.
func SeedStudents(n int, seed int64) []StudentRecord {
	rng := rand.New(rand.NewSource(seed))
	programs := []string{"Informatics", "Mathematics", "Biology", "Economics", "Design"}
	firstNames := []string{"Maria", "Joao", "Ana", "Pedro", "Ines", "Rui", "Carla", "Tiago"}
	lastNames := []string{"Silva", "Santos", "Ferreira", "Costa", "Oliveira", "Sousa"}
	out := make([]StudentRecord, 0, n)
	for i := 1; i <= n; i++ {
		id := fmt.Sprintf("S%04d", i)
		name := firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
		out = append(out, StudentRecord{
			ID:      id,
			Name:    name,
			Program: programs[rng.Intn(len(programs))],
			Year:    1 + rng.Intn(5),
			Email:   "student" + strconv.Itoa(i) + "@uma.pt",
		})
	}
	return out
}

// OperationalDB is the primary student store: a row-per-student table
// keyed by ID, answering quickly.
type OperationalDB struct {
	mu        sync.RWMutex
	rows      map[string]StudentRecord
	available bool
	delay     time.Duration
}

var _ StudentStore = (*OperationalDB)(nil)

// NewOperationalDB loads the records into a fresh operational store.
// delay simulates per-query processing time (0 for tests).
func NewOperationalDB(records []StudentRecord, delay time.Duration) *OperationalDB {
	rows := make(map[string]StudentRecord, len(records))
	for _, r := range records {
		rows[r.ID] = r
	}
	return &OperationalDB{rows: rows, available: true, delay: delay}
}

// Name implements StudentStore.
func (db *OperationalDB) Name() string { return "operational-db" }

// Student implements StudentStore.
func (db *OperationalDB) Student(id string) (StudentRecord, error) {
	db.mu.RLock()
	up := db.available
	rec, ok := db.rows[id]
	delay := db.delay
	db.mu.RUnlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if !up {
		return StudentRecord{}, fmt.Errorf("operational db: %w", ErrUnavailable)
	}
	if !ok {
		return StudentRecord{}, fmt.Errorf("student %q: %w", id, ErrNotFound)
	}
	rec.Source = db.Name()
	return rec, nil
}

// SetAvailable implements StudentStore.
func (db *OperationalDB) SetAvailable(up bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.available = up
}

// Available implements StudentStore.
func (db *OperationalDB) Available() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.available
}

// Insert adds or replaces a record.
func (db *OperationalDB) Insert(rec StudentRecord) {
	db.mu.Lock()
	defer db.mu.Unlock()
	rec.Source = ""
	db.rows[rec.ID] = rec
}

// Len returns the row count.
func (db *OperationalDB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.rows)
}
