package backend

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestSeedStudentsDeterministic(t *testing.T) {
	a := SeedStudents(50, 7)
	b := SeedStudents(50, 7)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("lengths = %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if a[0].ID != "S0001" || a[49].ID != "S0050" {
		t.Errorf("IDs = %s..%s", a[0].ID, a[49].ID)
	}
}

func TestOperationalDBLookup(t *testing.T) {
	recs := SeedStudents(10, 1)
	db := NewOperationalDB(recs, 0)
	if db.Len() != 10 {
		t.Errorf("len = %d", db.Len())
	}
	got, err := db.Student("S0003")
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	if got.Name != recs[2].Name || got.Source != "operational-db" {
		t.Errorf("got = %+v", got)
	}
	if _, err := db.Student("S9999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing = %v, want ErrNotFound", err)
	}
}

func TestOperationalDBFailure(t *testing.T) {
	db := NewOperationalDB(SeedStudents(5, 1), 0)
	db.SetAvailable(false)
	if db.Available() {
		t.Error("still available after SetAvailable(false)")
	}
	if _, err := db.Student("S0001"); !errors.Is(err, ErrUnavailable) {
		t.Errorf("err = %v, want ErrUnavailable", err)
	}
	db.SetAvailable(true)
	if _, err := db.Student("S0001"); err != nil {
		t.Errorf("after restore: %v", err)
	}
}

func TestOperationalDBInsert(t *testing.T) {
	db := NewOperationalDB(nil, 0)
	db.Insert(StudentRecord{ID: "S0001", Name: "New"})
	got, err := db.Student("S0001")
	if err != nil || got.Name != "New" {
		t.Errorf("got = %+v, %v", got, err)
	}
}

func TestWarehouseEquivalentToOperational(t *testing.T) {
	recs := SeedStudents(40, 3)
	db := NewOperationalDB(recs, 0)
	wh := NewDataWarehouse(recs, 0)
	if wh.FactCount() != 40 {
		t.Errorf("fact count = %d", wh.FactCount())
	}
	// Same query against both stores yields the same student data,
	// differing only in Source — the property Whisper's transparent
	// failover relies on.
	for _, r := range recs {
		a, errA := db.Student(r.ID)
		b, errB := wh.Student(r.ID)
		if errA != nil || errB != nil {
			t.Fatalf("lookups: %v, %v", errA, errB)
		}
		if a.Source == b.Source {
			t.Fatal("sources should differ")
		}
		a.Source, b.Source = "", ""
		if a != b {
			t.Fatalf("stores disagree on %s: %+v vs %+v", r.ID, a, b)
		}
	}
}

func TestWarehouseFailure(t *testing.T) {
	wh := NewDataWarehouse(SeedStudents(5, 1), 0)
	wh.SetAvailable(false)
	if _, err := wh.Student("S0001"); !errors.Is(err, ErrUnavailable) {
		t.Errorf("err = %v, want ErrUnavailable", err)
	}
	if _, err := wh.Student("S9999"); !errors.Is(err, ErrUnavailable) {
		t.Errorf("unavailable dominates not-found: %v", err)
	}
	wh.SetAvailable(true)
	if _, err := wh.Student("S9999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestClaimProcessorRules(t *testing.T) {
	p := NewClaimProcessor("replica-1", 10, 1, 0)
	tests := []struct {
		name  string
		claim Claim
		want  ClaimStatus
	}{
		{"approved", Claim{ID: "C1", PolicyID: "P0001", Amount: 100}, ClaimApproved},
		{"unknown policy", Claim{ID: "C2", PolicyID: "P9999", Amount: 100}, ClaimRejected},
		{"zero amount", Claim{ID: "C3", PolicyID: "P0001", Amount: 0}, ClaimRejected},
		{"over limit", Claim{ID: "C4", PolicyID: "P0001", Amount: 1e9}, ClaimPending},
	}
	for _, tt := range tests {
		d, err := p.Process(tt.claim)
		if err != nil {
			t.Fatalf("%s: %v", tt.name, err)
		}
		if d.Status != tt.want {
			t.Errorf("%s: status = %s, want %s (%s)", tt.name, d.Status, tt.want, d.Reason)
		}
		if d.Source != "replica-1" {
			t.Errorf("%s: source = %q", tt.name, d.Source)
		}
	}
	if p.ProcessedCount() != 4 {
		t.Errorf("processed = %d", p.ProcessedCount())
	}
}

func TestClaimProcessorIdempotent(t *testing.T) {
	p := NewClaimProcessor("r", 10, 1, 0)
	c := Claim{ID: "C1", PolicyID: "P0001", Amount: 200}
	d1, err := p.Process(c)
	if err != nil {
		t.Fatalf("process: %v", err)
	}
	d2, err := p.Process(c)
	if err != nil {
		t.Fatalf("reprocess: %v", err)
	}
	if d1 != d2 {
		t.Errorf("decisions differ: %+v vs %+v", d1, d2)
	}
	if p.ProcessedCount() != 1 {
		t.Errorf("processed = %d, want 1", p.ProcessedCount())
	}
}

func TestClaimProcessorReplicasAgree(t *testing.T) {
	a := NewClaimProcessor("a", 10, 1, 0)
	b := NewClaimProcessor("b", 10, 1, 0)
	claim := Claim{ID: "C1", PolicyID: "P0002", Amount: 400}
	da, errA := a.Process(claim)
	db, errB := b.Process(claim)
	if errA != nil || errB != nil {
		t.Fatalf("process: %v %v", errA, errB)
	}
	da.Source, db.Source = "", ""
	if da != db {
		t.Errorf("replicas disagree: %+v vs %+v", da, db)
	}
}

func TestClaimProcessorUnavailable(t *testing.T) {
	p := NewClaimProcessor("r", 5, 1, 0)
	p.SetAvailable(false)
	if _, err := p.Process(Claim{ID: "C1", PolicyID: "P0001", Amount: 1}); !errors.Is(err, ErrUnavailable) {
		t.Errorf("err = %v", err)
	}
	if p.Available() {
		t.Error("Available() = true after SetAvailable(false)")
	}
}

func TestLoanEngineRules(t *testing.T) {
	e := NewLoanEngine("bank-a", 1, 0)
	// Find applicant IDs with known score bands.
	var lowID, highID string
	for i := 0; i < 10000 && (lowID == "" || highID == ""); i++ {
		id := "A" + string(rune('0'+i%10)) + string(rune('a'+i%26)) + string(rune('A'+(i/26)%26))
		if CreditScore(id) < 500 && lowID == "" {
			lowID = id
		}
		if CreditScore(id) >= 700 && highID == "" {
			highID = id
		}
	}
	if lowID == "" || highID == "" {
		t.Fatal("could not find score-band applicants")
	}

	d, err := e.Decide(LoanApplication{ID: "L1", ApplicantID: highID, Amount: 1000, TermMonths: 12})
	if err != nil {
		t.Fatalf("decide: %v", err)
	}
	if !d.Approved {
		t.Errorf("high-score applicant declined: %+v", d)
	}
	if d.RatePercent <= 0 {
		t.Errorf("approved loan has no rate: %+v", d)
	}

	d, err = e.Decide(LoanApplication{ID: "L2", ApplicantID: lowID, Amount: 1000, TermMonths: 12})
	if err != nil {
		t.Fatalf("decide: %v", err)
	}
	if d.Approved {
		t.Errorf("low-score applicant approved: %+v", d)
	}

	d, err = e.Decide(LoanApplication{ID: "L3", ApplicantID: highID, Amount: 1e9, TermMonths: 12})
	if err != nil {
		t.Fatalf("decide: %v", err)
	}
	if d.Approved {
		t.Errorf("over-leveraged loan approved: %+v", d)
	}

	if _, err := e.Decide(LoanApplication{ID: "", ApplicantID: "x", Amount: 1, TermMonths: 1}); err == nil {
		t.Error("expected error for missing ID")
	}
	if e.DecidedCount() != 3 {
		t.Errorf("decided = %d", e.DecidedCount())
	}
}

func TestLoanEngineIdempotentAndReplicasAgree(t *testing.T) {
	a := NewLoanEngine("a", 1, 0)
	b := NewLoanEngine("b", 2, 0)
	app := LoanApplication{ID: "L1", ApplicantID: "APPL-77", Amount: 5000, TermMonths: 24}
	d1, err := a.Decide(app)
	if err != nil {
		t.Fatalf("decide: %v", err)
	}
	d2, err := a.Decide(app)
	if err != nil {
		t.Fatalf("re-decide: %v", err)
	}
	if d1 != d2 {
		t.Error("engine not idempotent")
	}
	d3, err := b.Decide(app)
	if err != nil {
		t.Fatalf("replica decide: %v", err)
	}
	d1.Source, d3.Source = "", ""
	if d1 != d3 {
		t.Errorf("replicas disagree: %+v vs %+v", d1, d3)
	}
}

func TestLoanEngineUnavailable(t *testing.T) {
	e := NewLoanEngine("x", 1, 0)
	e.SetAvailable(false)
	if _, err := e.Decide(LoanApplication{ID: "L1", ApplicantID: "A", Amount: 1, TermMonths: 1}); !errors.Is(err, ErrUnavailable) {
		t.Errorf("err = %v", err)
	}
}

func TestCreditScoreBoundsProperty(t *testing.T) {
	prop := func(id string) bool {
		s := CreditScore(id)
		return s >= 300 && s <= 850
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCreditScoreDeterministicProperty(t *testing.T) {
	prop := func(id string) bool { return CreditScore(id) == CreditScore(id) }
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
