// Package wsdl implements the subset of WSDL plus the WSDL-S semantic
// extensions that Whisper uses to describe semantic Web services.
//
// The model mirrors the paper's §3.1 sample: a definitions document
// holding interfaces whose operations carry an <action element="..."/>
// functional annotation and <input>/<output> message references whose
// element attributes point at ontology concepts through namespace
// prefixes (e.g. sm:StudentID).
package wsdl

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"whisper/internal/ontology"
)

// Definitions is the root of a WSDL-S document.
type Definitions struct {
	// Name names the service (the paper's "StudentManagement").
	Name string
	// TargetNamespace is the document's own namespace.
	TargetNamespace string
	// Namespaces maps prefix to namespace URI (from xmlns:prefix
	// attributes).
	Namespaces map[string]string
	// Interfaces are the port types.
	Interfaces []Interface
}

// Interface is a WSDL interface (portType): a named operation set.
type Interface struct {
	Name       string
	Operations []Operation
}

// Operation is one operation with its WSDL-S semantic annotations.
type Operation struct {
	// Name is the syntactic operation name.
	Name string
	// Action is the functional-semantics concept reference
	// (QName such as "sm:StudentInformation"); empty when the
	// operation carries no WSDL-S annotation.
	Action string
	// Inputs and Outputs are the annotated message references.
	Inputs  []MessageRef
	Outputs []MessageRef
	// Faults lists declared wsdl:fault message references.
	Faults []MessageRef
}

// MessageRef references a message element and its semantic annotation.
type MessageRef struct {
	// Label is the messageLabel attribute.
	Label string
	// Element is the QName of the (semantically annotated) element.
	Element string
}

// IsSemantic reports whether the operation carries WSDL-S annotations
// (an action concept).
func (op Operation) IsSemantic() bool { return op.Action != "" }

// Interface returns the named interface or nil.
func (d *Definitions) Interface(name string) *Interface {
	for i := range d.Interfaces {
		if d.Interfaces[i].Name == name {
			return &d.Interfaces[i]
		}
	}
	return nil
}

// Operation returns the named operation searching all interfaces, or
// nil.
func (d *Definitions) Operation(name string) *Operation {
	for i := range d.Interfaces {
		for j := range d.Interfaces[i].Operations {
			if d.Interfaces[i].Operations[j].Name == name {
				return &d.Interfaces[i].Operations[j]
			}
		}
	}
	return nil
}

// Operations lists every operation across interfaces, sorted by name.
func (d *Definitions) Operations() []Operation {
	var out []Operation
	for _, itf := range d.Interfaces {
		out = append(out, itf.Operations...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ResolveQName expands a prefixed QName ("sm:StudentID") to a full
// concept URI using the document's namespace map. Full URIs pass
// through unchanged; unprefixed names resolve against the target
// namespace.
func (d *Definitions) ResolveQName(q string) (string, error) {
	if q == "" {
		return "", fmt.Errorf("wsdl: empty QName")
	}
	if strings.Contains(q, "://") {
		return q, nil // already a URI
	}
	prefix, local, ok := strings.Cut(q, ":")
	if !ok {
		return joinNS(d.TargetNamespace, q), nil
	}
	ns, found := d.Namespaces[prefix]
	if !found {
		return "", fmt.Errorf("wsdl: undeclared namespace prefix %q in %q", prefix, q)
	}
	return joinNS(ns, local), nil
}

func joinNS(ns, local string) string {
	if strings.HasSuffix(ns, "#") || strings.HasSuffix(ns, "/") {
		return ns + local
	}
	return ns + "#" + local
}

// Signature resolves the operation's WSDL-S annotations into an
// ontology signature (action + input/output concept URIs).
func (d *Definitions) Signature(opName string) (ontology.Signature, error) {
	op := d.Operation(opName)
	if op == nil {
		return ontology.Signature{}, fmt.Errorf("wsdl: operation %q not found", opName)
	}
	if !op.IsSemantic() {
		return ontology.Signature{}, fmt.Errorf("wsdl: operation %q has no WSDL-S annotations", opName)
	}
	var sig ontology.Signature
	var err error
	if sig.Action, err = d.ResolveQName(op.Action); err != nil {
		return ontology.Signature{}, fmt.Errorf("wsdl: action of %q: %w", opName, err)
	}
	for _, in := range op.Inputs {
		uri, err := d.ResolveQName(in.Element)
		if err != nil {
			return ontology.Signature{}, fmt.Errorf("wsdl: input %q of %q: %w", in.Label, opName, err)
		}
		sig.Inputs = append(sig.Inputs, uri)
	}
	for _, out := range op.Outputs {
		uri, err := d.ResolveQName(out.Element)
		if err != nil {
			return ontology.Signature{}, fmt.Errorf("wsdl: output %q of %q: %w", out.Label, opName, err)
		}
		sig.Outputs = append(sig.Outputs, uri)
	}
	return sig, nil
}

// Validate checks structural well-formedness: non-empty names, unique
// operation names, resolvable annotation QNames.
func (d *Definitions) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("wsdl: definitions has no name")
	}
	seen := map[string]bool{}
	for _, itf := range d.Interfaces {
		if itf.Name == "" {
			return fmt.Errorf("wsdl: interface without name in %s", d.Name)
		}
		for _, op := range itf.Operations {
			if op.Name == "" {
				return fmt.Errorf("wsdl: operation without name in interface %s", itf.Name)
			}
			if seen[op.Name] {
				return fmt.Errorf("wsdl: duplicate operation %q", op.Name)
			}
			seen[op.Name] = true
			if !op.IsSemantic() {
				continue
			}
			if _, err := d.Signature(op.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

// --- builder ----------------------------------------------------------

// New creates an empty definitions document.
func New(name, targetNamespace string) *Definitions {
	return &Definitions{
		Name:            name,
		TargetNamespace: targetNamespace,
		Namespaces:      make(map[string]string),
	}
}

// DeclareNamespace binds a prefix to a namespace URI.
func (d *Definitions) DeclareNamespace(prefix, uri string) *Definitions {
	d.Namespaces[prefix] = uri
	return d
}

// AddInterface appends an interface and returns a pointer for adding
// operations.
func (d *Definitions) AddInterface(name string) *Interface {
	d.Interfaces = append(d.Interfaces, Interface{Name: name})
	return &d.Interfaces[len(d.Interfaces)-1]
}

// AddOperation appends an operation with WSDL-S annotations.
func (i *Interface) AddOperation(name, action string, inputs, outputs []MessageRef) *Operation {
	i.Operations = append(i.Operations, Operation{
		Name: name, Action: action, Inputs: inputs, Outputs: outputs,
	})
	return &i.Operations[len(i.Operations)-1]
}

// In is a convenience constructor for an input message reference.
func In(label, element string) MessageRef { return MessageRef{Label: label, Element: element} }

// Out is a convenience constructor for an output message reference.
func Out(label, element string) MessageRef { return MessageRef{Label: label, Element: element} }

// --- XML codec ---------------------------------------------------------

type xmlDefinitions struct {
	XMLName    xml.Name       `xml:"definitions"`
	Name       string         `xml:"name,attr"`
	TargetNS   string         `xml:"targetNamespace,attr"`
	Attrs      []xml.Attr     `xml:",any,attr"`
	Interfaces []xmlInterface `xml:"interface"`
}

type xmlInterface struct {
	Name       string         `xml:"name,attr"`
	Operations []xmlOperation `xml:"operation"`
}

type xmlOperation struct {
	Name    string      `xml:"name,attr"`
	Action  *xmlAction  `xml:"action"`
	Inputs  []xmlMsgRef `xml:"input"`
	Outputs []xmlMsgRef `xml:"output"`
	Faults  []xmlMsgRef `xml:"outfault"`
}

type xmlAction struct {
	Element string `xml:"element,attr"`
}

type xmlMsgRef struct {
	Label   string `xml:"messageLabel,attr"`
	Element string `xml:"element,attr"`
}

// Parse reads a WSDL-S document.
func Parse(r io.Reader) (*Definitions, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("wsdl: read: %w", err)
	}
	return ParseBytes(data)
}

// ParseBytes parses a WSDL-S document from memory.
func ParseBytes(data []byte) (*Definitions, error) {
	var doc xmlDefinitions
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("wsdl: parse: %w", err)
	}
	d := New(doc.Name, doc.TargetNS)
	for _, attr := range doc.Attrs {
		// xmlns:prefix attributes arrive with Space=="xmlns".
		if attr.Name.Space == "xmlns" {
			d.Namespaces[attr.Name.Local] = attr.Value
		}
	}
	for _, xi := range doc.Interfaces {
		itf := Interface{Name: xi.Name}
		for _, xo := range xi.Operations {
			op := Operation{Name: xo.Name}
			if xo.Action != nil {
				op.Action = xo.Action.Element
			}
			for _, m := range xo.Inputs {
				op.Inputs = append(op.Inputs, MessageRef{Label: m.Label, Element: m.Element})
			}
			for _, m := range xo.Outputs {
				op.Outputs = append(op.Outputs, MessageRef{Label: m.Label, Element: m.Element})
			}
			for _, m := range xo.Faults {
				op.Faults = append(op.Faults, MessageRef{Label: m.Label, Element: m.Element})
			}
			itf.Operations = append(itf.Operations, op)
		}
		d.Interfaces = append(d.Interfaces, itf)
	}
	return d, nil
}

// ParseString parses a WSDL-S document from a string.
func ParseString(s string) (*Definitions, error) { return ParseBytes([]byte(s)) }

// Serialize writes the document as XML; the output parses back with
// Parse.
func (d *Definitions) Serialize() []byte {
	var b strings.Builder
	b.WriteString(xml.Header)
	b.WriteString(`<definitions name="` + xmlEscape(d.Name) + `"`)
	if d.TargetNamespace != "" {
		b.WriteString(` targetNamespace="` + xmlEscape(d.TargetNamespace) + `"`)
	}
	prefixes := make([]string, 0, len(d.Namespaces))
	for p := range d.Namespaces {
		prefixes = append(prefixes, p)
	}
	sort.Strings(prefixes)
	for _, p := range prefixes {
		b.WriteString(` xmlns:` + p + `="` + xmlEscape(d.Namespaces[p]) + `"`)
	}
	b.WriteString(">\n")
	for _, itf := range d.Interfaces {
		b.WriteString(`  <interface name="` + xmlEscape(itf.Name) + `">` + "\n")
		for _, op := range itf.Operations {
			b.WriteString(`    <operation name="` + xmlEscape(op.Name) + `">` + "\n")
			if op.Action != "" {
				b.WriteString(`      <action element="` + xmlEscape(op.Action) + `"/>` + "\n")
			}
			for _, m := range op.Inputs {
				b.WriteString(`      <input messageLabel="` + xmlEscape(m.Label) +
					`" element="` + xmlEscape(m.Element) + `"/>` + "\n")
			}
			for _, m := range op.Outputs {
				b.WriteString(`      <output messageLabel="` + xmlEscape(m.Label) +
					`" element="` + xmlEscape(m.Element) + `"/>` + "\n")
			}
			for _, m := range op.Faults {
				b.WriteString(`      <outfault messageLabel="` + xmlEscape(m.Label) +
					`" element="` + xmlEscape(m.Element) + `"/>` + "\n")
			}
			b.WriteString("    </operation>\n")
		}
		b.WriteString("  </interface>\n")
	}
	b.WriteString("</definitions>\n")
	return []byte(b.String())
}

func xmlEscape(s string) string {
	var b strings.Builder
	_ = xml.EscapeText(&b, []byte(s))
	return b.String()
}

// StudentManagement builds the paper's §3.1 running-example WSDL-S
// document for the StudentManagement service.
func StudentManagement() *Definitions {
	d := New("StudentManagement", "http://uma.pt/services/StudentManagement")
	d.DeclareNamespace("sm", ontology.UniversityNS)
	itf := d.AddInterface("StudentManagementUMA")
	itf.AddOperation("StudentInformation", "sm:StudentInformation",
		[]MessageRef{In("ID", "sm:StudentID")},
		[]MessageRef{Out("student", "sm:StudentInfo")},
	)
	return d
}
