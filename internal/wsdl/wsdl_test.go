package wsdl

import (
	"strings"
	"testing"

	"whisper/internal/ontology"
)

// paperWSDL is the WSDL-S sample from §3.1 of the paper, lightly
// completed (the paper elides boilerplate with "...").
const paperWSDL = `<?xml version="1.0" encoding="utf-8"?>
<definitions name="StudentManagement"
             targetNamespace="http://uma.pt/services/StudentManagement"
             xmlns:sm="http://uma.pt/ontologies/StudentManagement">
  <interface name="StudentManagementUMA">
    <operation name="StudentInformation">
      <action element="sm:StudentInformation"/>
      <input messageLabel="ID" element="sm:StudentID"/>
      <output messageLabel="student" element="sm:StudentInfo"/>
    </operation>
  </interface>
</definitions>`

func TestParsePaperSample(t *testing.T) {
	d, err := ParseString(paperWSDL)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if d.Name != "StudentManagement" {
		t.Errorf("name = %q", d.Name)
	}
	if got := d.Namespaces["sm"]; got != ontology.UniversityNS {
		t.Errorf("sm namespace = %q", got)
	}
	itf := d.Interface("StudentManagementUMA")
	if itf == nil {
		t.Fatal("interface missing")
	}
	op := d.Operation("StudentInformation")
	if op == nil {
		t.Fatal("operation missing")
	}
	if !op.IsSemantic() {
		t.Error("operation should carry WSDL-S annotations")
	}
	if op.Action != "sm:StudentInformation" {
		t.Errorf("action = %q", op.Action)
	}
	if len(op.Inputs) != 1 || op.Inputs[0].Label != "ID" || op.Inputs[0].Element != "sm:StudentID" {
		t.Errorf("inputs = %+v", op.Inputs)
	}
	if len(op.Outputs) != 1 || op.Outputs[0].Label != "student" {
		t.Errorf("outputs = %+v", op.Outputs)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestSignatureResolution(t *testing.T) {
	d, err := ParseString(paperWSDL)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sig, err := d.Signature("StudentInformation")
	if err != nil {
		t.Fatalf("signature: %v", err)
	}
	if sig.Action != ontology.ConceptStudentInformation {
		t.Errorf("action = %q, want %q", sig.Action, ontology.ConceptStudentInformation)
	}
	if len(sig.Inputs) != 1 || sig.Inputs[0] != ontology.ConceptStudentID {
		t.Errorf("inputs = %v", sig.Inputs)
	}
	if len(sig.Outputs) != 1 || sig.Outputs[0] != ontology.ConceptStudentInfo {
		t.Errorf("outputs = %v", sig.Outputs)
	}
}

func TestResolveQName(t *testing.T) {
	d := New("S", "http://tns.example")
	d.DeclareNamespace("a", "http://a.example/onto")
	d.DeclareNamespace("b", "http://b.example/onto#")
	tests := []struct {
		q, want string
		wantErr bool
	}{
		{"a:Thing2", "http://a.example/onto#Thing2", false},
		{"b:Thing2", "http://b.example/onto#Thing2", false},
		{"Bare", "http://tns.example#Bare", false},
		{"http://full.example/x#Y", "http://full.example/x#Y", false},
		{"nope:X", "", true},
		{"", "", true},
	}
	for _, tt := range tests {
		got, err := d.ResolveQName(tt.q)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ResolveQName(%q): expected error", tt.q)
			}
			continue
		}
		if err != nil {
			t.Errorf("ResolveQName(%q): %v", tt.q, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ResolveQName(%q) = %q, want %q", tt.q, got, tt.want)
		}
	}
}

func TestSignatureErrors(t *testing.T) {
	d := StudentManagement()
	if _, err := d.Signature("NoSuchOp"); err == nil {
		t.Error("expected error for unknown operation")
	}
	itf := d.Interface("StudentManagementUMA")
	itf.AddOperation("Syntactic", "", nil, nil)
	if _, err := d.Signature("Syntactic"); err == nil {
		t.Error("expected error for non-semantic operation")
	}
}

func TestValidateDuplicateOperations(t *testing.T) {
	d := New("S", "http://x")
	itf := d.AddInterface("I")
	itf.AddOperation("Op", "", nil, nil)
	itf.AddOperation("Op", "", nil, nil)
	if err := d.Validate(); err == nil {
		t.Error("expected duplicate operation error")
	}
}

func TestValidateUndeclaredPrefix(t *testing.T) {
	d := New("S", "http://x")
	itf := d.AddInterface("I")
	itf.AddOperation("Op", "ghost:Action", nil, nil)
	if err := d.Validate(); err == nil {
		t.Error("expected undeclared prefix error")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	src := StudentManagement()
	data := src.Serialize()
	back, err := ParseBytes(data)
	if err != nil {
		t.Fatalf("round-trip parse: %v\n%s", err, data)
	}
	if back.Name != src.Name || back.TargetNamespace != src.TargetNamespace {
		t.Errorf("header mismatch: %q/%q", back.Name, back.TargetNamespace)
	}
	sigSrc, err := src.Signature("StudentInformation")
	if err != nil {
		t.Fatalf("src signature: %v", err)
	}
	sigBack, err := back.Signature("StudentInformation")
	if err != nil {
		t.Fatalf("back signature: %v", err)
	}
	if !sigSrc.Equal(sigBack) {
		t.Errorf("signatures differ after round trip: %+v vs %+v", sigSrc, sigBack)
	}
}

func TestSerializeEscaping(t *testing.T) {
	d := New(`Evil"Name<`, "http://x")
	data := string(d.Serialize())
	if strings.Contains(data, `Evil"Name<`) {
		t.Error("unescaped attribute value in output")
	}
	if _, err := ParseBytes([]byte(data)); err != nil {
		t.Errorf("escaped output must re-parse: %v", err)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := ParseString("<definitions"); err == nil {
		t.Error("expected parse error")
	}
}

func TestOperationsSorted(t *testing.T) {
	d := New("S", "http://x")
	itf := d.AddInterface("I")
	itf.AddOperation("Zeta", "", nil, nil)
	itf.AddOperation("Alpha", "", nil, nil)
	ops := d.Operations()
	if len(ops) != 2 || ops[0].Name != "Alpha" || ops[1].Name != "Zeta" {
		t.Errorf("operations = %+v", ops)
	}
}
