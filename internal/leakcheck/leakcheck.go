// Package leakcheck fails a test binary when project goroutines
// outlive the tests. The long-lived components (peers, failure
// detectors, lease loops, proxies) all promise to stop their
// goroutines on Close; a leak here means some teardown path forgot
// one, which in production turns every failover test cycle into
// accumulated idle goroutines and pinned transports.
//
// Usage, once per test package:
//
//	func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
//
// The checker is intentionally homegrown (no external dependency): it
// snapshots all goroutine stacks and treats any stack that runs
// project code (import path prefix "whisper/") as a leak. Runtime,
// testing-framework and third-party goroutines are ignored, so slow
// system goroutines never flake the suite; genuinely slow project
// teardowns get a retry window before the verdict.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// projectPrefix marks stack frames belonging to this module.
const projectPrefix = "whisper/"

// gracePeriod is how long Check retries before declaring a leak:
// teardown goroutines that are mid-exit when the last test finishes
// get this long to disappear.
const gracePeriod = 5 * time.Second

// VerifyTestMain runs the package's tests and then verifies that no
// project goroutines survived. Leaks turn a passing run into a
// failing one; an already-failing run is reported as-is.
func VerifyTestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := Check(gracePeriod); err != nil {
			fmt.Fprintf(os.Stderr, "leakcheck: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

// Check polls until no project goroutines remain or the timeout
// expires, then reports the survivors.
func Check(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		leaked := leakedGoroutines()
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%d goroutine(s) still running project code after %v:\n\n%s",
				len(leaked), timeout, strings.Join(leaked, "\n\n"))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// leakedGoroutines snapshots every goroutine and returns the stacks
// that run project code, excluding the goroutine performing the check
// (the test main goroutine, which sits in VerifyTestMain).
func leakedGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	for n == len(buf) {
		buf = make([]byte, 2*len(buf))
		n = runtime.Stack(buf, true)
	}
	var out []string
	for _, g := range strings.Split(strings.TrimSpace(string(buf[:n])), "\n\n") {
		if !strings.Contains(g, projectPrefix) {
			continue
		}
		if strings.Contains(g, "leakcheck.VerifyTestMain") || strings.Contains(g, "leakcheck.Check") {
			continue
		}
		out = append(out, g)
	}
	return out
}
