package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestMain(m *testing.M) { VerifyTestMain(m) }

// parked parks goroutines on a channel so the snapshot sees project
// frames, then releases them.
func parked(n int) (release func()) {
	gate := make(chan struct{})
	ready := make(chan struct{})
	for i := 0; i < n; i++ {
		go func() {
			ready <- struct{}{}
			<-gate
		}()
	}
	for i := 0; i < n; i++ {
		<-ready
	}
	return func() { close(gate) }
}

func TestDetectsProjectGoroutine(t *testing.T) {
	release := parked(2)
	defer release()

	leaked := leakedGoroutines()
	if len(leaked) < 2 {
		t.Fatalf("got %d leaked stacks, want at least 2", len(leaked))
	}
	for _, g := range leaked {
		if !strings.Contains(g, projectPrefix) {
			t.Errorf("reported stack without project frames:\n%s", g)
		}
	}

	if err := Check(10 * time.Millisecond); err == nil {
		t.Error("Check passed while project goroutines were parked")
	}
}

func TestCheckWaitsForTeardown(t *testing.T) {
	release := parked(1)
	go func() {
		time.Sleep(50 * time.Millisecond)
		release()
	}()
	if err := Check(2 * time.Second); err != nil {
		t.Fatalf("Check did not tolerate a slow teardown: %v", err)
	}
}

func TestCleanPasses(t *testing.T) {
	if err := Check(time.Second); err != nil {
		t.Fatalf("Check on a quiet process: %v", err)
	}
}
