package chaos

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Checker accumulates invariant verdicts during a chaos run. The four
// invariants mirror the guarantees the paper's fault-tolerant
// architecture promises its clients:
//
//  1. No lost acknowledged request: every response the proxy returns
//     as success must decode to the payload the service computed
//     (corruption or replay must never surface as a silent wrong
//     answer).
//  2. The proxy never deadlocks: every call returns within its
//     context deadline plus a small grace period.
//  3. Single coordinator: once churn stops and the system quiesces,
//     all running replicas converge on exactly one coordinator that
//     is itself running.
//  4. No stale follower read: a read issued at read-index N never
//     observes a committed prefix older than N (the replica's
//     WaitCommitted barrier held).
//  5. Bounded dissemination: every advertisement published to the
//     sharded discovery fleet becomes visible on all live shards
//     within the gossip convergence bound.
//  6. No resurrection: an advertisement removed by tombstone (or
//     expiry) never reappears on any shard — stale live copies must
//     lose to the tombstone's version everywhere.
//
// All methods are safe for concurrent use by client workers.
type Checker struct {
	mu           sync.Mutex
	violations   []string
	acked        int64
	failed       int64
	reads        int64
	convergences int64
}

// NewChecker creates an empty checker.
func NewChecker() *Checker { return &Checker{} }

// RecordResponse records an acknowledged (successful) call. got must
// equal want; a mismatch means an acknowledged request was lost or
// corrupted in flight — invariant 1.
func (c *Checker) RecordResponse(id, got, want string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.acked++
	if got != want {
		c.violations = append(c.violations,
			fmt.Sprintf("acked request %s corrupted: got %q, want %q", id, got, want))
	}
}

// RecordFailure records a call the proxy answered with an error.
// Failures are allowed under churn (availability is measured, not
// asserted); they only feed the availability ratio.
func (c *Checker) RecordFailure(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failed++
	_ = id
}

// RecordOverdue records a call that outlived its context deadline by
// more than the grace period — invariant 2 (proxy deadlock / unbounded
// blocking).
func (c *Checker) RecordOverdue(id string, took, limit time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.violations = append(c.violations,
		fmt.Sprintf("call %s took %v, deadline+grace was %v (proxy must return within its deadline)", id, took, limit))
}

// RecordRead records one follower-served read: the read-index it was
// issued at and the committed sequence the serving replica had applied
// when it executed. observedSeq < readIndex means the replica served
// stale state past the barrier — invariant 4. Wire it to the proxy's
// ReadObserver (id names the serving replica).
func (c *Checker) RecordRead(id string, readIndex, observedSeq uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reads++
	if observedSeq < readIndex {
		c.violations = append(c.violations,
			fmt.Sprintf("stale read from %s: observed seq %d < read-index %d", id, observedSeq, readIndex))
	}
}

// Reads returns how many follower-served reads were checked.
func (c *Checker) Reads() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reads
}

// RecordConvergence records one advertisement's measured dissemination
// time across the live shard fleet. took > bound means the epidemic
// failed invariant 5 (the publish stayed invisible on some live shard
// past the convergence bound).
func (c *Checker) RecordConvergence(key string, took, bound time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.convergences++
	if took > bound {
		c.violations = append(c.violations,
			fmt.Sprintf("advertisement %s took %v to reach all live shards, bound was %v", key, took, bound))
	}
}

// Convergences returns how many dissemination measurements were
// checked.
func (c *Checker) Convergences() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.convergences
}

// RecordResurrection records invariant 6's violation: an advertisement
// removed by tombstone or expiry reappeared on a shard.
func (c *Checker) RecordResurrection(key, shard string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.violations = append(c.violations,
		fmt.Sprintf("dead advertisement %s resurrected on shard %s", key, shard))
}

// Violationf records an arbitrary invariant violation.
func (c *Checker) Violationf(format string, args ...any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.violations = append(c.violations, fmt.Sprintf(format, args...))
}

// Acked and Failed return the call outcome tallies; their ratio is the
// measured availability.
func (c *Checker) Acked() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.acked
}

func (c *Checker) Failed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed
}

// Availability returns acked/(acked+failed), or 0 with no calls.
func (c *Checker) Availability() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.acked + c.failed
	if total == 0 {
		return 0
	}
	return float64(c.acked) / float64(total)
}

// Violations returns the recorded invariant violations.
func (c *Checker) Violations() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.violations...)
}

// Ok reports whether no invariant was violated.
func (c *Checker) Ok() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.violations) == 0
}

// CoordView is a snapshot of the group's coordinator beliefs, keyed by
// running replica name.
type CoordView struct {
	// Coordinators maps each running replica to the coordinator
	// address it believes in ("" when unknown).
	Coordinators map[string]string
	// Addrs maps each running replica to its own address.
	Addrs map[string]string
}

// converged reports whether the view satisfies invariant 3 and, when
// it does not, why.
func (v CoordView) converged() (bool, string) {
	if len(v.Coordinators) == 0 {
		return false, "no running replicas"
	}
	var coord string
	for name, c := range v.Coordinators {
		if c == "" {
			return false, fmt.Sprintf("replica %s has no coordinator", name)
		}
		if coord == "" {
			coord = c
		} else if c != coord {
			return false, fmt.Sprintf("split view: %s vs %s", c, coord)
		}
	}
	for _, addr := range v.Addrs {
		if addr == coord {
			return true, ""
		}
	}
	return false, fmt.Sprintf("coordinator %s is not a running replica", coord)
}

// WaitSingleCoordinator polls the view until every running replica
// agrees on exactly one coordinator that is itself running, or ctx
// expires — in which case a violation is recorded and an error
// returned. Call after Engine.Quiesce.
func (c *Checker) WaitSingleCoordinator(ctx context.Context, view func() CoordView) error {
	var lastReason string
	for {
		v := view()
		ok, reason := v.converged()
		if ok {
			return nil
		}
		lastReason = reason
		select {
		case <-ctx.Done():
			c.Violationf("no single-coordinator convergence after quiesce: %s", lastReason)
			return fmt.Errorf("chaos: convergence: %s: %w", lastReason, ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
	}
}
