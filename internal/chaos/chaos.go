// Package chaos drives seeded, randomized fault injection against a
// Whisper deployment: continuous b-peer crash–restart churn with
// configurable MTBF/MTTR, rolling network partitions and transient
// link degradation (extra delay, drops, duplication, corruption) over
// a simulated network. Where internal/faults executes hand-written
// deterministic schedules, chaos generates the schedule from a seed —
// the same seed always yields the same fault sequence — in the style
// of Jepsen-like randomized fault benchmarking. The companion Checker
// (invariants.go) verifies the system-level invariants the paper's
// fault-tolerance claims rest on.
package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"whisper/internal/metrics"
	"whisper/internal/simnet"
)

// Target is one crash–restartable component (b-peers satisfy it via a
// thin adapter; see bench.E10 and the soak test).
type Target interface {
	// Name identifies the target in the event log.
	Name() string
	// Addr is the target's transport address (used for partitions and
	// link degradation).
	Addr() string
	// Running reports whether the target is currently up.
	Running() bool
	// Crash kills the target abruptly (no farewell traffic).
	Crash() error
	// Restart revives a crashed target so it rejoins its group.
	Restart(ctx context.Context) error
}

// Config tunes the engine. MTBF/MTTR follow exponential distributions,
// so the steady-state per-target unavailability is MTTR/(MTBF+MTTR) —
// the quantity the paper's static-redundancy availability formula
// (A = 1 − U^n) is built from.
type Config struct {
	// Seed makes the generated fault sequence deterministic; zero
	// selects seed 1.
	Seed int64
	// MTBF is the mean time between failures per target; zero disables
	// crash–restart churn.
	MTBF time.Duration
	// MTTR is the mean time to repair a crashed target (default
	// MTBF/4).
	MTTR time.Duration
	// MinAlive keeps at least this many targets running; a crash that
	// would violate it is skipped and rescheduled. Zero selects the
	// default of 1; negative removes the floor entirely (even the last
	// target may crash, as a true availability measurement requires).
	MinAlive int
	// Network enables network faults when non-nil.
	Network *simnet.Network
	// Addrs are the addresses eligible for partitions and link
	// degradation (defaults to the targets' addresses).
	Addrs []string
	// PartitionMTBF is the mean interval between rolling partitions;
	// zero disables them.
	PartitionMTBF time.Duration
	// PartitionMTTR is the mean partition duration (default
	// PartitionMTBF/4).
	PartitionMTTR time.Duration
	// DegradeMTBF is the mean interval between link degradations; zero
	// disables them.
	DegradeMTBF time.Duration
	// DegradeMTTR is the mean degradation duration (default
	// DegradeMTBF/4).
	DegradeMTTR time.Duration
	// DegradeDelay is the extra one-way delay on a degraded link.
	DegradeDelay time.Duration
	// DropRate, DupRate and CorruptRate apply to a degraded link for
	// the duration of the degradation window.
	DropRate    float64
	DupRate     float64
	CorruptRate float64
	// Clock is the engine's time source (default simnet.WallClock);
	// inject a virtual clock to make fault pacing fully simulated.
	Clock simnet.Clock
}

// Event is one executed fault or repair.
type Event struct {
	// At is the offset from engine start.
	At time.Duration
	// Kind is the event class: "crash", "restart", "crash.skipped",
	// "partition", "heal", "degrade" or "restore".
	Kind string
	// Detail names the affected target or link.
	Detail string
	// Err is the action's result (crash/restart errors are recorded,
	// not fatal).
	Err error
}

// Engine generates and executes the fault sequence. Create with New,
// drive with Run (blocking) and stop via the context; Quiesce then
// heals the network and revives every crashed target so invariants can
// be checked on a converged system.
type Engine struct {
	cfg     Config
	targets []Target
	rng     *rand.Rand
	clock   simnet.Clock
	counts  *metrics.Counter

	mu         sync.Mutex
	events     []Event
	partitions map[[2]string]bool
	degraded   map[[2]string]bool
}

// New creates an engine over the targets. The configuration is
// validated lazily: an engine with no churn and no network faults
// simply does nothing.
func New(cfg Config, targets ...Target) *Engine {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MTTR <= 0 {
		cfg.MTTR = cfg.MTBF / 4
	}
	if cfg.MinAlive == 0 {
		cfg.MinAlive = 1
	} else if cfg.MinAlive < 0 {
		cfg.MinAlive = 0
	}
	if cfg.PartitionMTTR <= 0 {
		cfg.PartitionMTTR = cfg.PartitionMTBF / 4
	}
	if cfg.DegradeMTTR <= 0 {
		cfg.DegradeMTTR = cfg.DegradeMTBF / 4
	}
	if len(cfg.Addrs) == 0 {
		for _, t := range targets {
			cfg.Addrs = append(cfg.Addrs, t.Addr())
		}
	}
	if cfg.Clock == nil {
		cfg.Clock = simnet.WallClock{}
	}
	return &Engine{
		cfg:        cfg,
		targets:    targets,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		clock:      cfg.Clock,
		counts:     metrics.NewCounter(),
		partitions: make(map[[2]string]bool),
		degraded:   make(map[[2]string]bool),
	}
}

// Counts returns the engine's event counters (labels match Event.Kind,
// plus "error" for failed crash/restart actions).
func (e *Engine) Counts() *metrics.Counter { return e.counts }

// Events returns the executed events so far.
func (e *Engine) Events() []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Event(nil), e.events...)
}

// pending is one scheduled fault with an absolute offset from start.
type pending struct {
	at   time.Duration
	fire func(now time.Duration) // returns follow-up events via schedule
}

// Run executes the seeded fault sequence until ctx is done. Fault
// times are absolute offsets from start drawn once from the seeded
// generator, so the sequence (which target, which link, when) is
// identical for a given seed regardless of how long individual
// crash/restart actions take.
func (e *Engine) Run(ctx context.Context) {
	start := e.clock.Now()
	var queue []pending
	schedule := func(at time.Duration, fire func(now time.Duration)) {
		queue = append(queue, pending{at: at, fire: fire})
	}

	if e.cfg.MTBF > 0 {
		for _, t := range e.targets {
			e.scheduleCrash(ctx, schedule, t, e.expDur(e.cfg.MTBF))
		}
	}
	if e.cfg.Network != nil && e.cfg.PartitionMTBF > 0 && len(e.cfg.Addrs) >= 2 {
		e.schedulePartition(schedule, e.expDur(e.cfg.PartitionMTBF))
	}
	if e.cfg.Network != nil && e.cfg.DegradeMTBF > 0 && len(e.cfg.Addrs) >= 2 {
		e.scheduleDegrade(schedule, e.expDur(e.cfg.DegradeMTBF))
	}

	for len(queue) > 0 {
		// Pop the earliest event (stable for equal times: lowest index).
		best := 0
		for i, p := range queue {
			if p.at < queue[best].at {
				best = i
			}
		}
		next := queue[best]
		queue = append(queue[:best], queue[best+1:]...)

		if wait := next.at - e.clock.Now().Sub(start); wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return
			}
		}
		if ctx.Err() != nil {
			return
		}
		next.fire(next.at)
	}
}

// scheduleCrash arms the next crash of t at offset `at`.
func (e *Engine) scheduleCrash(ctx context.Context, schedule func(time.Duration, func(time.Duration)), t Target, at time.Duration) {
	schedule(at, func(now time.Duration) {
		if !t.Running() || e.runningCount() <= e.cfg.MinAlive {
			e.record(Event{At: now, Kind: "crash.skipped", Detail: t.Name()})
			e.scheduleCrash(ctx, schedule, t, now+e.expDur(e.cfg.MTBF))
			return
		}
		err := t.Crash()
		e.record(Event{At: now, Kind: "crash", Detail: t.Name(), Err: err})
		repairAt := now + e.expDur(e.cfg.MTTR)
		schedule(repairAt, func(now time.Duration) {
			var err error
			if !t.Running() {
				err = t.Restart(ctx)
			}
			e.record(Event{At: now, Kind: "restart", Detail: t.Name(), Err: err})
			e.scheduleCrash(ctx, schedule, t, now+e.expDur(e.cfg.MTBF))
		})
	})
}

// schedulePartition arms the next rolling partition.
func (e *Engine) schedulePartition(schedule func(time.Duration, func(time.Duration)), at time.Duration) {
	a, b := e.pickPair()
	healAt := at + e.expDur(e.cfg.PartitionMTTR)
	schedule(at, func(now time.Duration) {
		e.cfg.Network.Partition(a, b)
		e.mu.Lock()
		e.partitions[[2]string{a, b}] = true
		e.mu.Unlock()
		e.record(Event{At: now, Kind: "partition", Detail: a + "|" + b})
	})
	schedule(healAt, func(now time.Duration) {
		e.cfg.Network.Heal(a, b)
		e.mu.Lock()
		delete(e.partitions, [2]string{a, b})
		e.mu.Unlock()
		e.record(Event{At: now, Kind: "heal", Detail: a + "|" + b})
		e.schedulePartition(schedule, now+e.expDur(e.cfg.PartitionMTBF))
	})
}

// scheduleDegrade arms the next transient link degradation: extra
// delay plus drop/duplication/corruption rates on one random link.
func (e *Engine) scheduleDegrade(schedule func(time.Duration, func(time.Duration)), at time.Duration) {
	a, b := e.pickPair()
	restoreAt := at + e.expDur(e.cfg.DegradeMTTR)
	schedule(at, func(now time.Duration) {
		e.applyDegrade(a, b, true)
		e.mu.Lock()
		e.degraded[[2]string{a, b}] = true
		e.mu.Unlock()
		e.record(Event{At: now, Kind: "degrade", Detail: a + "|" + b})
	})
	schedule(restoreAt, func(now time.Duration) {
		e.applyDegrade(a, b, false)
		e.mu.Lock()
		delete(e.degraded, [2]string{a, b})
		e.mu.Unlock()
		e.record(Event{At: now, Kind: "restore", Detail: a + "|" + b})
		e.scheduleDegrade(schedule, now+e.expDur(e.cfg.DegradeMTBF))
	})
}

func (e *Engine) applyDegrade(a, b string, on bool) {
	net := e.cfg.Network
	if on {
		net.SetLinkDelay(a, b, e.cfg.DegradeDelay)
		net.SetLinkDropRate(a, b, e.cfg.DropRate)
		net.SetLinkDuplicateRate(a, b, e.cfg.DupRate)
		net.SetLinkCorruptRate(a, b, e.cfg.CorruptRate)
		return
	}
	net.SetLinkDelay(a, b, 0)
	net.SetLinkDropRate(a, b, -1)
	net.SetLinkDuplicateRate(a, b, -1)
	net.SetLinkCorruptRate(a, b, -1)
}

// Quiesce heals every network fault the engine introduced and revives
// every crashed target, waiting for each restart to complete. Call it
// after Run returns, before checking convergence invariants.
func (e *Engine) Quiesce(ctx context.Context) error {
	e.mu.Lock()
	partitions := make([][2]string, 0, len(e.partitions))
	for k := range e.partitions {
		partitions = append(partitions, k)
	}
	degraded := make([][2]string, 0, len(e.degraded))
	for k := range e.degraded {
		degraded = append(degraded, k)
	}
	e.partitions = make(map[[2]string]bool)
	e.degraded = make(map[[2]string]bool)
	e.mu.Unlock()

	for _, k := range partitions {
		e.cfg.Network.Heal(k[0], k[1])
	}
	for _, k := range degraded {
		e.applyDegrade(k[0], k[1], false)
	}
	var firstErr error
	for _, t := range e.targets {
		if t.Running() {
			continue
		}
		err := t.Restart(ctx)
		e.record(Event{Kind: "restart", Detail: t.Name(), Err: err})
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("chaos: quiesce restart %s: %w", t.Name(), err)
		}
	}
	return firstErr
}

func (e *Engine) runningCount() int {
	n := 0
	for _, t := range e.targets {
		if t.Running() {
			n++
		}
	}
	return n
}

// pickPair draws two distinct fault-eligible addresses.
func (e *Engine) pickPair() (string, string) {
	addrs := e.cfg.Addrs
	i := e.rng.Intn(len(addrs))
	j := e.rng.Intn(len(addrs) - 1)
	if j >= i {
		j++
	}
	return addrs[i], addrs[j]
}

// expDur draws from an exponential distribution with the given mean,
// floored at 1ms so back-to-back events stay schedulable.
func (e *Engine) expDur(mean time.Duration) time.Duration {
	d := time.Duration(e.rng.ExpFloat64() * float64(mean))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

func (e *Engine) record(ev Event) {
	e.mu.Lock()
	e.events = append(e.events, ev)
	e.mu.Unlock()
	e.counts.Add(ev.Kind, 1)
	if ev.Err != nil {
		e.counts.Add("error", 1)
	}
}
