package chaos

import (
	"sort"
	"sync"
)

// OpLedger tracks business-operation executions and acknowledgements
// during a soak, independent of the transport: handlers call RecordExec
// with the operation's business ID every time they actually run it, and
// the client calls RecordAck when a call for that ID succeeds. The two
// exactly-once invariants fall out directly:
//
//   - no operation executed twice: Duplicates() is empty
//   - no acked operation lost:     LostAcked() is empty
//
// The ledger key is the business ID carried in the payload (the payment
// ID, the claim number), NOT the transport idempotency key — duplicate
// executions are a business-level fact, however they were keyed on the
// wire.
type OpLedger struct {
	mu    sync.Mutex
	execs map[string]int
	acks  map[string]int
}

// NewOpLedger creates an empty ledger.
func NewOpLedger() *OpLedger {
	return &OpLedger{
		execs: make(map[string]int),
		acks:  make(map[string]int),
	}
}

// RecordExec records one actual execution of the operation.
func (l *OpLedger) RecordExec(id string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.execs[id]++
}

// RecordAck records one successful client acknowledgement.
func (l *OpLedger) RecordAck(id string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.acks[id]++
}

// Execs returns how many times the operation actually executed.
func (l *OpLedger) Execs(id string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.execs[id]
}

// Duplicates returns the sorted IDs of operations that executed more
// than once — each one a violated exactly-once guarantee.
func (l *OpLedger) Duplicates() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []string
	for id, n := range l.execs {
		if n > 1 {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// LostAcked returns the sorted IDs of operations that were acked to the
// client but never executed — each one a lost acknowledged operation.
func (l *OpLedger) LostAcked() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []string
	for id := range l.acks {
		if l.execs[id] == 0 {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Counts returns (distinct executed, total executions, distinct acked).
func (l *OpLedger) Counts() (executed, executions, acked int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, n := range l.execs {
		executions += n
	}
	return len(l.execs), executions, len(l.acks)
}
