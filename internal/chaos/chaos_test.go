package chaos

import (
	"context"
	"sync"
	"testing"
	"time"

	"whisper/internal/simnet"
)

// fakeTarget is an in-memory crash–restartable component.
type fakeTarget struct {
	name, addr string

	mu       sync.Mutex
	running  bool
	crashes  int
	restarts int
}

func newFakeTarget(name string) *fakeTarget {
	return &fakeTarget{name: name, addr: name, running: true}
}

func (f *fakeTarget) Name() string { return f.name }
func (f *fakeTarget) Addr() string { return f.addr }

func (f *fakeTarget) Running() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.running
}

func (f *fakeTarget) Crash() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.running = false
	f.crashes++
	return nil
}

func (f *fakeTarget) Restart(context.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.running = true
	f.restarts++
	return nil
}

func runEngine(seed int64, window time.Duration) []string {
	targets := []Target{newFakeTarget("a"), newFakeTarget("b"), newFakeTarget("c")}
	eng := New(Config{
		Seed: seed,
		MTBF: 20 * time.Millisecond,
		MTTR: 5 * time.Millisecond,
	}, targets...)
	ctx, cancel := context.WithTimeout(context.Background(), window)
	defer cancel()
	eng.Run(ctx)
	var seq []string
	for _, ev := range eng.Events() {
		seq = append(seq, ev.Kind+":"+ev.Detail)
	}
	return seq
}

func TestEngineDeterministicPerSeed(t *testing.T) {
	a := runEngine(42, 300*time.Millisecond)
	b := runEngine(42, 300*time.Millisecond)
	if len(a) < 5 {
		t.Fatalf("engine produced only %d events, want a busy run", len(a))
	}
	// The wall-clock cutoff may truncate one run slightly earlier, but
	// the generated sequences must agree on their common prefix.
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			t.Fatalf("seed 42 diverged at event %d: %q vs %q\nrun1=%v\nrun2=%v", i, a[i], b[i], a, b)
		}
	}
	c := runEngine(7, 300*time.Millisecond)
	same := len(c) == len(a)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical fault sequences")
	}
}

func TestEngineRespectsMinAlive(t *testing.T) {
	t1, t2 := newFakeTarget("a"), newFakeTarget("b")
	eng := New(Config{
		Seed:     3,
		MTBF:     5 * time.Millisecond,
		MTTR:     time.Millisecond,
		MinAlive: 2,
	}, t1, t2)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	eng.Run(ctx)
	if got := eng.Counts().Get("crash"); got != 0 {
		t.Errorf("crashes = %d, want 0 with MinAlive == target count", got)
	}
	if eng.Counts().Get("crash.skipped") == 0 {
		t.Error("expected skipped crash attempts")
	}
}

func TestEngineQuiesceHealsAndRestarts(t *testing.T) {
	net := simnet.NewNetwork(simnet.WithLatency(simnet.ZeroLatency()))
	t.Cleanup(func() { _ = net.Close() })
	pa, err := net.NewPort("a")
	if err != nil {
		t.Fatalf("port: %v", err)
	}
	pb, err := net.NewPort("b")
	if err != nil {
		t.Fatalf("port: %v", err)
	}
	_ = pa

	t1, t2 := newFakeTarget("a"), newFakeTarget("b")
	eng := New(Config{
		Seed:          1,
		MTBF:          10 * time.Millisecond,
		MTTR:          time.Hour, // crashed targets stay down until Quiesce
		Network:       net,
		PartitionMTBF: 5 * time.Millisecond,
		PartitionMTTR: time.Hour, // partitions stay up until Quiesce
	}, t1, t2)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	eng.Run(ctx)

	if eng.Counts().Get("crash") == 0 {
		t.Fatal("no crashes generated")
	}
	if eng.Counts().Get("partition") == 0 {
		t.Fatal("no partitions generated")
	}
	if err := eng.Quiesce(context.Background()); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	if !t1.Running() || !t2.Running() {
		t.Error("quiesce left a target down")
	}
	// The a|b partition must be healed: a message crosses the link.
	if err := pa.Send("b", simnet.Message{Proto: "t"}); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case <-pb.Recv():
	case <-time.After(time.Second):
		t.Error("link still partitioned after quiesce")
	}
}

func TestCheckerRecordsCorruptedAck(t *testing.T) {
	c := NewChecker()
	c.RecordResponse("r1", "hello", "hello")
	c.RecordFailure("r2")
	if !c.Ok() {
		t.Fatalf("unexpected violations: %v", c.Violations())
	}
	if got := c.Availability(); got != 0.5 {
		t.Errorf("availability = %v, want 0.5", got)
	}
	c.RecordResponse("r3", "garbled", "hello")
	if c.Ok() {
		t.Error("corrupted acknowledged response not flagged")
	}
}

func TestCheckerOverdue(t *testing.T) {
	c := NewChecker()
	c.RecordOverdue("r1", 3*time.Second, time.Second)
	if c.Ok() {
		t.Error("overdue call not flagged")
	}
}

func TestWaitSingleCoordinator(t *testing.T) {
	c := NewChecker()
	var mu sync.Mutex
	coord := ""
	view := func() CoordView {
		mu.Lock()
		defer mu.Unlock()
		return CoordView{
			Coordinators: map[string]string{"a": coord, "b": coord},
			Addrs:        map[string]string{"a": "a", "b": "b"},
		}
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		mu.Lock()
		coord = "b"
		mu.Unlock()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := c.WaitSingleCoordinator(ctx, view); err != nil {
		t.Fatalf("convergence: %v", err)
	}
	if !c.Ok() {
		t.Errorf("violations: %v", c.Violations())
	}
}

func TestWaitSingleCoordinatorTimeout(t *testing.T) {
	c := NewChecker()
	// The believed coordinator is not among the running replicas.
	view := func() CoordView {
		return CoordView{
			Coordinators: map[string]string{"a": "ghost"},
			Addrs:        map[string]string{"a": "a"},
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := c.WaitSingleCoordinator(ctx, view); err == nil {
		t.Fatal("expected convergence timeout")
	}
	if c.Ok() {
		t.Error("timeout must record a violation")
	}
}

func TestEngineSplitViewDetected(t *testing.T) {
	v := CoordView{
		Coordinators: map[string]string{"a": "a", "b": "b"},
		Addrs:        map[string]string{"a": "a", "b": "b"},
	}
	ok, reason := v.converged()
	if ok {
		t.Fatal("split view reported as converged")
	}
	if reason == "" {
		t.Error("want a reason for the split view")
	}
}
