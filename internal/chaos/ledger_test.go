package chaos

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestOpLedgerExactlyOnceClean(t *testing.T) {
	l := NewOpLedger()
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("op-%d", i)
		l.RecordExec(id)
		l.RecordAck(id)
	}
	if d := l.Duplicates(); len(d) != 0 {
		t.Errorf("Duplicates = %v, want none", d)
	}
	if lost := l.LostAcked(); len(lost) != 0 {
		t.Errorf("LostAcked = %v, want none", lost)
	}
	executed, executions, acked := l.Counts()
	if executed != 5 || executions != 5 || acked != 5 {
		t.Errorf("Counts = (%d,%d,%d), want (5,5,5)", executed, executions, acked)
	}
}

func TestOpLedgerDetectsDuplicates(t *testing.T) {
	l := NewOpLedger()
	l.RecordExec("op-1")
	l.RecordExec("op-1") // retried after a reply-loss crash: re-executed
	l.RecordExec("op-2")
	if got := l.Duplicates(); !reflect.DeepEqual(got, []string{"op-1"}) {
		t.Errorf("Duplicates = %v, want [op-1]", got)
	}
	if got := l.Execs("op-1"); got != 2 {
		t.Errorf("Execs(op-1) = %d, want 2", got)
	}
}

func TestOpLedgerDetectsLostAcks(t *testing.T) {
	l := NewOpLedger()
	l.RecordAck("phantom") // acked but never executed anywhere
	l.RecordExec("real")
	l.RecordAck("real")
	if got := l.LostAcked(); !reflect.DeepEqual(got, []string{"phantom"}) {
		t.Errorf("LostAcked = %v, want [phantom]", got)
	}
}

func TestOpLedgerConcurrent(t *testing.T) {
	l := NewOpLedger()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := fmt.Sprintf("op-%d-%d", g, i)
				l.RecordExec(id)
				l.RecordAck(id)
			}
		}(g)
	}
	wg.Wait()
	executed, executions, acked := l.Counts()
	if executed != 800 || executions != 800 || acked != 800 {
		t.Errorf("Counts = (%d,%d,%d), want (800,800,800)", executed, executions, acked)
	}
}
