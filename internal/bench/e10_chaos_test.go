package bench

import (
	"context"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"whisper/internal/chaos"
)

// chaosSoakSeeds returns the seed sweep: the CHAOS_SEEDS env var
// (comma-separated) when set, five fixed seeds otherwise.
func chaosSoakSeeds(t *testing.T) []int64 {
	raw := os.Getenv("CHAOS_SEEDS")
	if raw == "" {
		return []int64{1, 2, 3, 4, 5}
	}
	var seeds []int64
	for _, f := range strings.Split(raw, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEEDS: bad seed %q: %v", f, err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// TestChaosSoak runs the seeded chaos engine against a full 3-replica
// cluster for each seed and checks the invariants: no acknowledged
// request returns a wrong answer, every call returns within its
// deadline plus grace, and after quiescing the group converges on a
// single running coordinator. The fault sequence is deterministic per
// seed (see chaos.TestEngineDeterministicPerSeed), so a failing seed
// reproduces exactly.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	for _, seed := range chaosSoakSeeds(t) {
		seed := seed
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			soakOneSeed(t, seed)
		})
	}
}

func soakOneSeed(t *testing.T, seed int64) {
	c, err := NewCluster(context.Background(), ClusterOptions{Peers: 3, Seed: seed})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })

	warmCtx, warmCancel := context.WithTimeout(context.Background(), 30*time.Second)
	_, err = c.Invoke(warmCtx, c.StudentID(0))
	warmCancel()
	if err != nil {
		t.Fatalf("warm-up: %v", err)
	}

	// Aggressive churn (same U = 0.2 as the paper-scale MTBF 2s /
	// MTTR 500ms sweep, compressed 4x for test runtime) so every seed
	// sees several crash–restart cycles inside the window.
	eng := chaos.New(chaos.Config{
		Seed: seed,
		MTBF: 500 * time.Millisecond,
		MTTR: 125 * time.Millisecond,
	}, GroupTargets(c.Group)...)

	runCtx, stopChaos := context.WithCancel(context.Background())
	chaosDone := make(chan struct{})
	go func() { eng.Run(runCtx); close(chaosDone) }()

	check := chaos.NewChecker()
	const callTimeout = 2 * time.Second
	const grace = 2 * time.Second
	deadline := time.Now().Add(1500 * time.Millisecond)
	for i := 0; time.Now().Before(deadline); i++ {
		id := c.StudentID(i)
		callCtx, cancel := context.WithTimeout(context.Background(), callTimeout)
		start := time.Now()
		body, err := c.Invoke(callCtx, id)
		took := time.Since(start)
		cancel()
		if took > callTimeout+grace {
			check.RecordOverdue(id, took, callTimeout+grace)
		}
		if err != nil {
			check.RecordFailure(id)
		} else {
			want := "<ID>" + id + "</ID>"
			got := want
			if !strings.Contains(string(body), want) {
				got = string(body)
			}
			check.RecordResponse(id, got, want)
		}
		time.Sleep(10 * time.Millisecond)
	}

	stopChaos()
	<-chaosDone
	quiesceCtx, qCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer qCancel()
	if err := eng.Quiesce(quiesceCtx); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	convCtx, cCancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cCancel()
	if err := check.WaitSingleCoordinator(convCtx, func() chaos.CoordView { return GroupView(c.Group) }); err != nil {
		t.Errorf("convergence: %v", err)
	}

	if v := check.Violations(); len(v) > 0 {
		t.Errorf("invariant violations: %s", strings.Join(v, "; "))
	}
	if check.Acked() == 0 {
		t.Error("no request was acknowledged during the soak")
	}
	crashes, restarts := eng.Counts().Get("crash"), eng.Counts().Get("restart")
	t.Logf("seed %d: crashes=%d restarts=%d acked=%d failed=%d availability=%.3f",
		seed, crashes, restarts, check.Acked(), check.Failed(), check.Availability())
	if crashes != restarts {
		t.Errorf("crashes=%d restarts=%d, want every crash repaired (quiesce revives stragglers)", crashes, restarts)
	}
	// With 2 of 3 replicas guaranteed up (MinAlive default 1 lets at
	// most 2 be down, failover masks the rest), availability must beat
	// the single-peer steady-state baseline MTBF/(MTBF+MTTR) = 0.8.
	if a := check.Availability(); a <= 0.8 {
		t.Errorf("availability = %.3f, want > 0.8 (single-peer baseline)", a)
	}
}

// TestChaosRestartRejoinsAndWinsElection verifies the full
// crash–restart cycle at the group level: the highest-ranked
// coordinator is crashed abruptly, a lower-ranked survivor takes over,
// and when the crashed replica restarts it rejoins the rendezvous
// group, re-enters the Bully election as a challenger, wins (highest
// rank), and the proxy re-binds to it transparently.
func TestChaosRestartRejoinsAndWinsElection(t *testing.T) {
	c, err := NewCluster(context.Background(), ClusterOptions{Peers: 3, Seed: 1})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if _, err := c.Invoke(ctx, c.StudentID(0)); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	coordAddr := c.Group.Coordinator()
	var coordName string
	for _, bp := range c.Group.Peers() {
		if bp.Addr() == coordAddr {
			coordName = bp.Name()
		}
	}
	if coordName == "" {
		t.Fatalf("coordinator %q not found among peers", coordAddr)
	}

	if err := c.Group.CrashPeer(coordName); err != nil {
		t.Fatalf("crash: %v", err)
	}
	if err := c.Group.WaitReady(ctx); err != nil {
		t.Fatalf("failover: %v", err)
	}
	if got := c.Group.Coordinator(); got == coordAddr {
		t.Fatalf("coordinator unchanged (%s) after crash", got)
	}
	if _, err := c.Invoke(ctx, c.StudentID(1)); err != nil {
		t.Fatalf("invoke during outage: %v", err)
	}

	if err := c.Group.RestartPeer(ctx, coordName); err != nil {
		t.Fatalf("restart: %v", err)
	}
	// The restarted replica holds the highest rank, so it must win the
	// election it triggers on rejoining.
	for {
		if c.Group.Coordinator() == coordAddr {
			break
		}
		select {
		case <-ctx.Done():
			t.Fatalf("restarted high-rank replica never reclaimed coordinatorship (coordinator=%s)", c.Group.Coordinator())
		case <-time.After(10 * time.Millisecond):
		}
	}
	if err := c.Group.WaitReady(ctx); err != nil {
		t.Fatalf("post-restart convergence: %v", err)
	}
	// The proxy re-binds to the restarted coordinator transparently.
	if _, err := c.Invoke(ctx, c.StudentID(2)); err != nil {
		t.Fatalf("invoke after restart: %v", err)
	}
}
