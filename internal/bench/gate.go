package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// This file implements the bench-gate: parsing `go test -bench
// -benchmem -count=N` output, aggregating the repeated samples
// benchstat-style, and comparing the aggregate against a committed
// JSON baseline with regression thresholds. cmd/benchgate is the thin
// CLI over it; the CI bench-gate job fails the build on regressions.

// GateBenchmark is the aggregated result of one benchmark across its
// -count samples.
type GateBenchmark struct {
	// Name is "import/path.BenchmarkFoo" (CPU suffix stripped).
	Name string `json:"name"`
	// Samples is how many -count runs were aggregated.
	Samples int `json:"samples"`
	// NsPerOp is the median ns/op across samples — the stable center
	// benchstat would report.
	NsPerOp float64 `json:"ns_per_op"`
	// P95NsPerOp is the 95th-percentile ns/op across samples — the
	// tail the gate thresholds, so a benchmark that got noisy (not
	// just slower on average) also trips.
	P95NsPerOp float64 `json:"p95_ns_per_op"`
	// BytesPerOp is the median B/op (-benchmem).
	BytesPerOp float64 `json:"bytes_per_op"`
	// AllocsPerOp is the median allocs/op (-benchmem) — machine
	// independent, so the tightest regression signal the gate has.
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// GateBaseline is the committed BENCH_gate.json schema.
type GateBaseline struct {
	// Note documents how to regenerate the file.
	Note string `json:"note,omitempty"`
	// Benchmarks maps benchmark name to its aggregate.
	Benchmarks map[string]GateBenchmark `json:"benchmarks"`
}

// benchSample is one parsed benchmark result line.
type benchSample struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
}

// ParseBenchOutput parses `go test -bench` text: "pkg:" lines
// attribute the following benchmark lines to their package, and each
// "BenchmarkX-N  iter  ns/op [B/op allocs/op]" line becomes a sample
// under "pkg.BenchmarkX". Unrecognized lines are skipped, so the full
// test output can be piped in unfiltered.
func ParseBenchOutput(r io.Reader) (map[string][]benchSample, error) {
	out := make(map[string][]benchSample)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Minimum shape: name, iterations, value, "ns/op".
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			// Strip the GOMAXPROCS suffix ("-8").
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if pkg != "" {
			name = pkg + "." + name
		}
		var s benchSample
		seenNs := false
		// Scan value/unit pairs after the iteration count.
		for i := 3; i < len(fields); i++ {
			val, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				continue
			}
			switch fields[i] {
			case "ns/op":
				s.nsPerOp = val
				seenNs = true
			case "B/op":
				s.bytesPerOp = val
			case "allocs/op":
				s.allocsPerOp = val
			}
		}
		if !seenNs {
			continue
		}
		out[name] = append(out[name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: scan output: %w", err)
	}
	return out, nil
}

// AggregateSamples folds -count repetitions into one GateBenchmark
// per benchmark: median for centers, nearest-rank p95 for the time
// tail.
func AggregateSamples(samples map[string][]benchSample) map[string]GateBenchmark {
	out := make(map[string]GateBenchmark, len(samples))
	for name, ss := range samples {
		if len(ss) == 0 {
			continue
		}
		ns := make([]float64, len(ss))
		bs := make([]float64, len(ss))
		as := make([]float64, len(ss))
		for i, s := range ss {
			ns[i], bs[i], as[i] = s.nsPerOp, s.bytesPerOp, s.allocsPerOp
		}
		out[name] = GateBenchmark{
			Name:        name,
			Samples:     len(ss),
			NsPerOp:     median(ns),
			P95NsPerOp:  percentileNearestRank(ns, 95),
			BytesPerOp:  median(bs),
			AllocsPerOp: median(as),
		}
	}
	return out
}

func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func percentileNearestRank(vals []float64, p float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// Regression is one gate finding.
type Regression struct {
	// Benchmark names the offender.
	Benchmark string `json:"benchmark"`
	// Metric is "p95_ns_per_op" or "allocs_per_op".
	Metric string `json:"metric"`
	// Baseline and Current are the compared values.
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	// Ratio is Current/Baseline.
	Ratio float64 `json:"ratio"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.6g -> %.6g (%.2fx)",
		r.Benchmark, r.Metric, r.Baseline, r.Current, r.Ratio)
}

// CompareToBaseline checks current aggregates against the baseline
// with the given fractional threshold (0.20 = fail on >20% growth of
// p95 ns/op or allocs/op). Benchmarks absent from either side are
// returned in missing/fresh, not failed — new benchmarks must be
// committable, and renames must not brick CI — but the lists are
// surfaced so the baseline can be refreshed deliberately.
func CompareToBaseline(baseline, current map[string]GateBenchmark, threshold float64) (regs []Regression, missing, fresh []string) {
	for name, base := range baseline {
		cur, ok := current[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		if base.P95NsPerOp > 0 && cur.P95NsPerOp > base.P95NsPerOp*(1+threshold) {
			regs = append(regs, Regression{
				Benchmark: name,
				Metric:    "p95_ns_per_op",
				Baseline:  base.P95NsPerOp,
				Current:   cur.P95NsPerOp,
				Ratio:     cur.P95NsPerOp / base.P95NsPerOp,
			})
		}
		// Allocation regressions also need at least one whole extra
		// alloc/op: 20% of a 2-alloc benchmark is less than one
		// allocation, which cannot regress fractionally.
		if cur.AllocsPerOp > base.AllocsPerOp*(1+threshold) && cur.AllocsPerOp-base.AllocsPerOp >= 1 {
			regs = append(regs, Regression{
				Benchmark: name,
				Metric:    "allocs_per_op",
				Baseline:  base.AllocsPerOp,
				Current:   cur.AllocsPerOp,
				Ratio:     cur.AllocsPerOp / math.Max(base.AllocsPerOp, 1),
			})
		}
	}
	for name := range current {
		if _, ok := baseline[name]; !ok {
			fresh = append(fresh, name)
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Benchmark != regs[j].Benchmark {
			return regs[i].Benchmark < regs[j].Benchmark
		}
		return regs[i].Metric < regs[j].Metric
	})
	sort.Strings(missing)
	sort.Strings(fresh)
	return regs, missing, fresh
}

// LoadGateBaseline reads a committed BENCH_gate.json.
func LoadGateBaseline(path string) (*GateBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: read baseline: %w", err)
	}
	var b GateBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: parse baseline %s: %w", path, err)
	}
	if b.Benchmarks == nil {
		b.Benchmarks = make(map[string]GateBenchmark)
	}
	return &b, nil
}

// WriteGateBaseline writes the aggregates as a fresh baseline file.
func WriteGateBaseline(path string, benchmarks map[string]GateBenchmark) error {
	b := GateBaseline{
		Note:       "regenerate with: go test -bench . -benchmem -count=6 ./internal/p2p ./internal/proxy ./internal/soap ./internal/replog | go run ./cmd/benchgate -update " + path,
		Benchmarks: benchmarks,
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal baseline: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench: write baseline: %w", err)
	}
	return nil
}
