package bench

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file implements the follower gate: validating a
// BENCH_followers.json report against E13's acceptance bounds. Like
// the overload gate it checks absolute properties of one report — the
// read-scaling headline either holds or it does not.

// FollowerBounds are the E13 acceptance thresholds.
type FollowerBounds struct {
	// MinScaling is the required follower/coordinator goodput ratio at
	// the largest replica count (default 2.5).
	MinScaling float64
	// MinSpread is the minimum number of distinct replicas that must
	// have served reads at the largest replica count (default 2).
	MinSpread int
}

func (b *FollowerBounds) applyDefaults() {
	if b.MinScaling <= 0 {
		b.MinScaling = 2.5
	}
	if b.MinSpread <= 0 {
		b.MinSpread = 2
	}
}

// followerReplicaCounts extracts the sorted replica counts present by
// scanning "followers.<n>.goodput" metric keys.
func followerReplicaCounts(r *Report) []int {
	var out []int
	for key := range r.Metrics {
		rest, ok := strings.CutPrefix(key, "followers.")
		if !ok {
			continue
		}
		ns, ok := strings.CutSuffix(rest, ".goodput")
		if !ok {
			continue
		}
		n, err := strconv.Atoi(ns)
		if err != nil {
			continue
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// CheckFollowers validates an E13 report against the acceptance bounds
// and returns one finding per violated property (empty = gate passes):
//
//   - follower goodput at the largest replica count is at least
//     MinScaling times the coordinator-only goodput;
//   - no follower configuration observed a stale read (the read-index
//     barrier held everywhere);
//   - the staleness invariant was actually exercised: every follower
//     configuration checked at least one read;
//   - reads at the largest replica count spread across at least
//     MinSpread distinct replicas (the balancer balances).
func CheckFollowers(r *Report, bounds FollowerBounds) []string {
	bounds.applyDefaults()
	var findings []string

	counts := followerReplicaCounts(r)
	if len(counts) == 0 {
		return []string{"report has no followers.<n>.goodput metrics"}
	}
	top := counts[len(counts)-1]
	key := func(n int, suffix string) string { return fmt.Sprintf("followers.%d.%s", n, suffix) }

	coord, ok1 := overloadMetric(r, "coordinator.goodput")
	topGood, ok2 := overloadMetric(r, key(top, "goodput"))
	switch {
	case !ok1 || !ok2:
		findings = append(findings, fmt.Sprintf("missing goodput metrics (coordinator=%v followers.%d=%v)", ok1, top, ok2))
	case coord <= 0:
		findings = append(findings, "coordinator-only goodput is zero; nothing to scale against")
	case topGood < bounds.MinScaling*coord:
		findings = append(findings, fmt.Sprintf(
			"read scaling too shallow at %d replicas: followers %.1f/s vs coordinator %.1f/s (%.2fx, need >=%.1fx)",
			top, topGood, coord, topGood/coord, bounds.MinScaling))
	}

	for _, n := range counts {
		if v, ok := overloadMetric(r, key(n, "stale")); ok && v != 0 {
			findings = append(findings, fmt.Sprintf(
				"followers.%d observed %.0f stale read(s), want 0 (read-index barrier violated)", n, v))
		}
		if v, ok := overloadMetric(r, key(n, "checked")); !ok || v <= 0 {
			findings = append(findings, fmt.Sprintf(
				"followers.%d checked %.0f read(s) against the staleness invariant, want > 0", n, v))
		}
	}

	if v, ok := overloadMetric(r, key(top, "spread")); ok && int(v) < bounds.MinSpread {
		findings = append(findings, fmt.Sprintf(
			"reads at %d replicas served by %.0f replica(s), want >=%d (balancer not spreading)", top, v, bounds.MinSpread))
	}
	sort.Strings(findings)
	return findings
}
