package bench

import (
	"strings"
	"testing"
)

// overloadReport builds a synthetic E12 report. goodput maps
// "config.multx" to goodput; p99 maps protected multipliers to p99 ns.
func overloadReport(goodput map[string]float64, p99 map[string]float64, violations, duplicates float64) *Report {
	r := NewReport("overload", &Table{Title: "test"})
	for key, g := range goodput {
		r.AddScalar(key+".goodput", "req/s", g)
		r.AddScalar(key+".duplicates", "count", duplicates)
	}
	for key, v := range p99 {
		r.AddScalar(key, "ns", v)
	}
	for key := range goodput {
		if strings.HasPrefix(key, "protected.") {
			r.AddScalar(key+".violations", "count", violations)
		}
	}
	return r
}

func healthyOverloadReport() *Report {
	return overloadReport(
		map[string]float64{
			"protected.1x": 80, "unprotected.1x": 80,
			"protected.10x": 110, "unprotected.10x": 30,
		},
		map[string]float64{"protected.1x.p99": 30e6, "protected.10x.p99": 50e6},
		0, 0)
}

func TestCheckOverloadPasses(t *testing.T) {
	if findings := CheckOverload(healthyOverloadReport(), OverloadBounds{}); len(findings) != 0 {
		t.Fatalf("healthy report failed the gate: %v", findings)
	}
}

func TestCheckOverloadShallowKnee(t *testing.T) {
	r := healthyOverloadReport()
	r.AddScalar("unprotected.10x.goodput", "req/s", 60) // only 1.8x below protected
	findings := CheckOverload(r, OverloadBounds{})
	if len(findings) != 1 || !strings.Contains(findings[0], "goodput knee too shallow") {
		t.Fatalf("want one shallow-knee finding, got %v", findings)
	}
}

func TestCheckOverloadP99Degrades(t *testing.T) {
	r := healthyOverloadReport()
	r.AddScalar("protected.10x.p99", "ns", 90e6) // 3x the 1x p99
	findings := CheckOverload(r, OverloadBounds{})
	if len(findings) != 1 || !strings.Contains(findings[0], "admitted p99 degrades") {
		t.Fatalf("want one p99 finding, got %v", findings)
	}
}

func TestCheckOverloadViolationsAndDuplicates(t *testing.T) {
	r := overloadReport(
		map[string]float64{
			"protected.1x": 80, "unprotected.1x": 80,
			"protected.10x": 110, "unprotected.10x": 30,
		},
		map[string]float64{"protected.1x.p99": 30e6, "protected.10x.p99": 50e6},
		2, 1)
	findings := CheckOverload(r, OverloadBounds{})
	var sawViolation, sawDuplicate bool
	for _, f := range findings {
		if strings.Contains(f, "missed their deadline") {
			sawViolation = true
		}
		if strings.Contains(f, "duplicate execution") {
			sawDuplicate = true
		}
	}
	if !sawViolation || !sawDuplicate {
		t.Fatalf("want deadline-violation and duplicate findings, got %v", findings)
	}
}

func TestCheckOverloadCustomBounds(t *testing.T) {
	// The healthy report has a 3.67x knee and 1.67x p99 growth; tighter
	// custom bounds must trip both checks.
	findings := CheckOverload(healthyOverloadReport(), OverloadBounds{MinGoodputRatio: 5, MaxP99Ratio: 1.2})
	if len(findings) != 2 {
		t.Fatalf("want 2 findings under tightened bounds, got %v", findings)
	}
}

func TestCheckOverloadNeedsTwoMultipliers(t *testing.T) {
	r := overloadReport(
		map[string]float64{"protected.1x": 80, "unprotected.1x": 80},
		map[string]float64{"protected.1x.p99": 30e6},
		0, 0)
	findings := CheckOverload(r, OverloadBounds{})
	if len(findings) != 1 || !strings.Contains(findings[0], "need at least 2") {
		t.Fatalf("want single-multiplier finding, got %v", findings)
	}
}

func TestLoadReportRoundTrip(t *testing.T) {
	r := healthyOverloadReport()
	dir := t.TempDir()
	path, err := r.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Experiment != "overload" {
		t.Fatalf("experiment = %q", loaded.Experiment)
	}
	if findings := CheckOverload(loaded, OverloadBounds{}); len(findings) != 0 {
		t.Fatalf("round-tripped report failed the gate: %v", findings)
	}
}
