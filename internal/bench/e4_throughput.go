package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"whisper/internal/metrics"
)

// ThroughputOptions configures experiment E4: closed-loop throughput
// and latency as the group grows ("the proposed solution was able to
// scale to meet desired throughput and latency requirements").
type ThroughputOptions struct {
	// PeerCounts sweeps group sizes; nil selects {2, 4, 8}.
	PeerCounts []int
	// Clients is the closed-loop client count.
	Clients int
	// Duration is the measured window per point.
	Duration time.Duration
	// ServiceTime is the per-request backend processing time; it is
	// what makes the serving replica the bottleneck (zero hides the
	// load-sharing effect behind network latency).
	ServiceTime time.Duration
	// Seed drives randomness.
	Seed int64
}

func (o *ThroughputOptions) applyDefaults() {
	if len(o.PeerCounts) == 0 {
		o.PeerCounts = []int{2, 4, 8}
	}
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Duration <= 0 {
		o.Duration = 1500 * time.Millisecond
	}
	if o.ServiceTime <= 0 {
		o.ServiceTime = 2 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// ThroughputPoint is one sweep point.
type ThroughputPoint struct {
	Peers      int
	Policy     string
	Requests   int64
	Errors     int64
	Throughput float64 // requests per second
	Latency    *metrics.Histogram
}

// Throughput runs E4.
func Throughput(ctx context.Context, opts ThroughputOptions) (*Table, []ThroughputPoint, error) {
	opts.applyDefaults()
	var points []ThroughputPoint
	for _, loadSharing := range []bool{false, true} {
		for _, n := range opts.PeerCounts {
			p, err := throughputPoint(ctx, n, loadSharing, opts)
			if err != nil {
				return nil, nil, fmt.Errorf("bench: throughput at %d peers: %w", n, err)
			}
			points = append(points, p)
		}
	}
	t := &Table{
		Title:   fmt.Sprintf("Throughput & latency vs. group size (%d closed-loop clients, %v service time, %v window)", opts.Clients, opts.ServiceTime, opts.Duration),
		Columns: []string{"policy", "b-peers", "req/s", "p50", "p99", "max", "errors"},
	}
	for _, p := range points {
		t.AddRow(
			p.Policy,
			fmt.Sprintf("%d", p.Peers),
			fmt.Sprintf("%.0f", p.Throughput),
			p.Latency.Percentile(50).String(),
			p.Latency.Percentile(99).String(),
			p.Latency.Max().String(),
			fmt.Sprintf("%d", p.Errors),
		)
	}
	t.AddNote("coordinated (the paper's static redundancy): one coordinator serves, throughput flat in group size")
	t.AddNote("load-sharing (the §4 extension): every replica serves, spreading load across the group")
	return t, points, nil
}

func throughputPoint(ctx context.Context, peers int, loadSharing bool, opts ThroughputOptions) (ThroughputPoint, error) {
	c, err := NewCluster(ctx, ClusterOptions{
		Peers: peers, Seed: opts.Seed, LoadSharing: loadSharing,
		BackendDelay: opts.ServiceTime,
	})
	if err != nil {
		return ThroughputPoint{}, err
	}
	defer func() { _ = c.Close() }()

	ctx, cancel := context.WithTimeout(ctx, opts.Duration+60*time.Second)
	defer cancel()
	if _, err := c.Invoke(ctx, c.StudentID(0)); err != nil { // warm bindings
		return ThroughputPoint{}, err
	}

	policy := "coordinated"
	if loadSharing {
		policy = "load-sharing"
	}
	point := ThroughputPoint{Peers: peers, Policy: policy, Latency: metrics.NewHistogram()}
	var requests, errs atomic.Int64
	deadline := time.Now().Add(opts.Duration)
	var wg sync.WaitGroup
	for cl := 0; cl < opts.Clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				start := time.Now()
				_, err := c.Invoke(ctx, c.StudentID(cl*1000+i))
				point.Latency.Observe(time.Since(start))
				requests.Add(1)
				if err != nil {
					errs.Add(1)
				}
			}
		}(cl)
	}
	wg.Wait()
	point.Requests = requests.Load()
	point.Errors = errs.Load()
	point.Throughput = float64(point.Requests) / opts.Duration.Seconds()
	return point, nil
}
