// Package bench implements the experiment harness that regenerates
// every measurement in the paper's evaluation (§5) plus the ablations
// DESIGN.md calls out: Figure 4 (messages vs. b-peers), steady-state
// RTT, worst-case failover RTT, throughput scaling, discovery
// precision/recall, backend failover, QoS selection and Bully election
// cost. Each experiment returns a Table whose rows mirror what the
// paper reports; cmd/whisper-bench prints them and EXPERIMENTS.md
// records paper-vs-measured values.
package bench

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	// Title names the experiment (e.g. "Figure 4").
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold the formatted cells.
	Rows [][]string
	// Notes carry free-form observations appended below the table.
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends an observation.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString("== " + t.Title + " ==\n")
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) && len(cell) < widths[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total > 2 {
		b.WriteString(strings.Repeat("-", total-2) + "\n")
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (header row + data rows);
// notes are emitted as trailing comment lines.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteString("\n")
	}
	writeCSVRow(t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("# " + n + "\n")
	}
	return b.String()
}
