package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"whisper/internal/metrics"
)

// Metric is one measured quantity in machine-readable form. Latency
// distributions carry nanosecond percentiles; scalar metrics (e.g.
// throughput) carry only Mean with their own unit.
type Metric struct {
	// Unit names the measurement unit ("ns", "req/s", "count", ...).
	Unit string `json:"unit"`
	// Count is the number of observations behind the metric.
	Count int `json:"count,omitempty"`
	// Mean is the average (or the value itself for scalar metrics).
	Mean float64 `json:"mean"`
	// P50, P95, P99 are distribution percentiles (zero for scalars).
	P50 float64 `json:"p50,omitempty"`
	P95 float64 `json:"p95,omitempty"`
	P99 float64 `json:"p99,omitempty"`
	// Min and Max bound the observations.
	Min float64 `json:"min,omitempty"`
	Max float64 `json:"max,omitempty"`
}

// Report is the machine-readable form of one experiment run, written
// as BENCH_<experiment>.json. It carries the human-facing table
// verbatim plus structured metrics for tooling (the bench-gate CI job
// consumes the same shape for `go test -bench` baselines via the gate
// types).
type Report struct {
	// Experiment is the runner name ("rtt", "figure4", ...).
	Experiment string `json:"experiment"`
	// Title is the table title ("Figure 4", ...).
	Title string `json:"title"`
	// Columns/Rows/Notes mirror the printed Table.
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
	// Metrics holds structured distributions keyed by name.
	Metrics map[string]Metric `json:"metrics,omitempty"`
}

// NewReport wraps a finished experiment table.
func NewReport(experiment string, t *Table) *Report {
	return &Report{
		Experiment: experiment,
		Title:      t.Title,
		Columns:    t.Columns,
		Rows:       t.Rows,
		Notes:      t.Notes,
		Metrics:    make(map[string]Metric),
	}
}

// AddHistogram records a latency distribution (nil histograms are
// skipped so runners can pass through optional results).
func (r *Report) AddHistogram(name string, h *metrics.Histogram) {
	if h == nil || h.Count() == 0 {
		return
	}
	r.Metrics[name] = Metric{
		Unit:  "ns",
		Count: h.Count(),
		Mean:  float64(h.Mean()),
		P50:   float64(h.Percentile(50)),
		P95:   float64(h.Percentile(95)),
		P99:   float64(h.Percentile(99)),
		Min:   float64(h.Min()),
		Max:   float64(h.Max()),
	}
}

// AddScalar records a single-valued metric such as throughput.
func (r *Report) AddScalar(name, unit string, value float64) {
	r.Metrics[name] = Metric{Unit: unit, Mean: value}
}

// WriteFile writes the report as BENCH_<experiment>.json under dir
// and returns the path.
func (r *Report) WriteFile(dir string) (string, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("bench: marshal report: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", r.Experiment))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("bench: write report: %w", err)
	}
	return path, nil
}
