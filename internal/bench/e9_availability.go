package bench

import (
	"context"
	"fmt"
	"time"

	"whisper/internal/baseline"
	"whisper/internal/metrics"
)

// AvailabilityOptions configures experiment E9: client-visible
// availability under a replica crash, Whisper vs. the strategies the
// paper positions itself against (no replication; WS-FTM-style
// client-side retry, reference [3]).
type AvailabilityOptions struct {
	// Requests per strategy.
	Requests int
	// CrashAfter is the request index at which the serving replica
	// crashes.
	CrashAfter int
	// Pacing is the inter-request gap (client think time).
	Pacing time.Duration
	// OutageWindow is how long the single server stays down before an
	// operator restarts it (its MTTR).
	OutageWindow time.Duration
	// Seed drives randomness.
	Seed int64
}

func (o *AvailabilityOptions) applyDefaults() {
	if o.Requests <= 0 {
		o.Requests = 60
	}
	if o.CrashAfter <= 0 {
		o.CrashAfter = o.Requests / 3
	}
	if o.Pacing <= 0 {
		o.Pacing = 10 * time.Millisecond
	}
	if o.OutageWindow <= 0 {
		o.OutageWindow = 300 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// AvailabilityResult is the outcome for one strategy.
type AvailabilityResult struct {
	Strategy string
	// EndpointsAtClient is how many endpoints the client must know.
	EndpointsAtClient int
	Errors            int
	Latency           *metrics.Histogram
	// ExtraAttempts counts failed attempts clients had to make beyond
	// one per request (client-retry pays these; Whisper hides them).
	ExtraAttempts int64
}

// Availability runs E9 and returns the comparison table.
func Availability(ctx context.Context, opts AvailabilityOptions) (*Table, []AvailabilityResult, error) {
	opts.applyDefaults()
	var results []AvailabilityResult

	whisperRes, err := availabilityWhisper(ctx, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: availability whisper: %w", err)
	}
	results = append(results, whisperRes)
	results = append(results, availabilityClientRetry(ctx, opts))
	results = append(results, availabilitySingle(ctx, opts))

	t := &Table{
		Title: fmt.Sprintf("Client-visible availability under replica crash (%d requests, crash after %d)",
			opts.Requests, opts.CrashAfter),
		Columns: []string{"strategy", "endpoints@client", "errors", "extra attempts", "mean", "max"},
	}
	for _, r := range results {
		t.AddRow(r.Strategy,
			fmt.Sprintf("%d", r.EndpointsAtClient),
			fmt.Sprintf("%d", r.Errors),
			fmt.Sprintf("%d", r.ExtraAttempts),
			r.Latency.Mean().String(), r.Latency.Max().String())
	}
	t.AddNote("Whisper masks the crash behind ONE endpoint (transparent); WS-FTM-style client retry also masks it but every client must hold the replica list and pay failed attempts; no replication simply fails for the outage window")
	return t, results, nil
}

func availabilityWhisper(ctx context.Context, opts AvailabilityOptions) (AvailabilityResult, error) {
	c, err := NewCluster(ctx, ClusterOptions{Peers: 3, Seed: opts.Seed})
	if err != nil {
		return AvailabilityResult{}, err
	}
	defer func() { _ = c.Close() }()
	res := AvailabilityResult{
		Strategy:          "Whisper (transparent P2P failover)",
		EndpointsAtClient: 1,
		Latency:           metrics.NewHistogram(),
	}
	ctx, cancel := context.WithTimeout(ctx, 120*time.Second)
	defer cancel()
	if _, err := c.Invoke(ctx, c.StudentID(0)); err != nil { // warm up
		return AvailabilityResult{}, err
	}
	for i := 0; i < opts.Requests; i++ {
		if i == opts.CrashAfter {
			if _, err := c.Group.CrashCoordinator(); err != nil {
				return AvailabilityResult{}, err
			}
		}
		start := time.Now()
		if _, err := c.Invoke(ctx, c.StudentID(i)); err != nil {
			res.Errors++
		}
		res.Latency.Observe(time.Since(start))
		time.Sleep(opts.Pacing)
	}
	return res, nil
}

// availabilityEndpoints builds three replicas with a 1ms service time.
func availabilityEndpoints() []*baseline.FuncEndpoint {
	mk := func(tag string) *baseline.FuncEndpoint {
		return baseline.NewFuncEndpoint(func(_ context.Context, _ string, _ []byte) ([]byte, error) {
			time.Sleep(time.Millisecond)
			return []byte("<StudentInfo source=\"" + tag + "\"/>"), nil
		})
	}
	return []*baseline.FuncEndpoint{mk("r1"), mk("r2"), mk("r3")}
}

func availabilityClientRetry(ctx context.Context, opts AvailabilityOptions) AvailabilityResult {
	eps := availabilityEndpoints()
	cr := baseline.NewClientRetry(eps[0], eps[1], eps[2])
	res := AvailabilityResult{
		Strategy:          "WS-FTM-style client retry [3]",
		EndpointsAtClient: len(eps),
		Latency:           metrics.NewHistogram(),
	}
	for i := 0; i < opts.Requests; i++ {
		if i == opts.CrashAfter {
			eps[0].SetAvailable(false) // the preferred replica dies
		}
		start := time.Now()
		if _, err := cr.Invoke(ctx, "StudentInformation", nil); err != nil {
			res.Errors++
		}
		res.Latency.Observe(time.Since(start))
		time.Sleep(opts.Pacing)
	}
	res.ExtraAttempts = cr.Attempts() - int64(opts.Requests)
	return res
}

func availabilitySingle(ctx context.Context, opts AvailabilityOptions) AvailabilityResult {
	eps := availabilityEndpoints()
	single := baseline.NewSingleServer(eps[0])
	res := AvailabilityResult{
		Strategy:          "no replication (plain Web service)",
		EndpointsAtClient: 1,
		Latency:           metrics.NewHistogram(),
	}
	var downUntil time.Time
	for i := 0; i < opts.Requests; i++ {
		if i == opts.CrashAfter {
			eps[0].SetAvailable(false)
			downUntil = time.Now().Add(opts.OutageWindow)
		}
		if !downUntil.IsZero() && !eps[0].Available() && time.Now().After(downUntil) {
			eps[0].SetAvailable(true) // operator restarted it
		}
		start := time.Now()
		if _, err := single.Invoke(ctx, "StudentInformation", nil); err != nil {
			res.Errors++
		}
		res.Latency.Observe(time.Since(start))
		time.Sleep(opts.Pacing)
	}
	return res
}
