package bench

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestFailoverTraceAnatomy runs one traced E3 trial and checks the
// acceptance shape of the span tree: a single connected trace whose
// spans cover discovery, bind, election-wait, re-bind and the backend,
// and whose depth-1 phase durations sum (within tolerance) to the
// observed worst-case request RTT.
func TestFailoverTraceAnatomy(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	_, res, err := Failover(context.Background(), FailoverOptions{Peers: 3, Trials: 1, Seed: 7, Trace: true})
	if err != nil {
		t.Fatalf("failover: %v", err)
	}
	if res.Trace == nil {
		t.Fatal("tracing was enabled but no trace summary was captured")
	}
	s := res.Trace

	names := s.SpanNames()
	for _, want := range []string{
		"client.request", "proxy.invoke", "discovery", "bind",
		"election-wait", "re-bind", "call", "bpeer.request", "backend",
	} {
		if !names[want] {
			t.Errorf("trace is missing a %q span; report:\n%s", want, s.Report)
		}
	}

	// The phases tile proxy.invoke, which spans nearly the whole
	// client-observed RTT; the untraced remainder is loop bookkeeping
	// between spans (microseconds each), so allow 10% + 10ms slack.
	sum := s.PhaseSum()
	tol := s.RTT/10 + 10*time.Millisecond
	if diff := s.RTT - sum; diff < 0 || diff > tol {
		t.Errorf("phase sum %v vs client RTT %v (diff %v, tolerance %v)", sum, s.RTT, s.RTT-sum, tol)
	}

	for _, want := range []string{"phase breakdown of proxy.invoke:", "election-wait", "re-bind"} {
		if !strings.Contains(s.Report, want) {
			t.Errorf("report missing %q:\n%s", want, s.Report)
		}
	}
}
