package bench

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"whisper/internal/chaos"
	"whisper/internal/replog"
)

// TestFollowerSoak churns a 3-replica follower-read cluster (seeded
// crash–restart cycles) while concurrent readers and a keyed writer
// hammer it, and checks E13's invariant: no read ever observes a
// committed prefix older than the read-index it was issued at, no
// matter which replica served it or what crashed around it. Read
// errors are tolerated under churn (availability is E10's business);
// staleness is not. Seeds come from CHAOS_SEEDS like the chaos soak.
func TestFollowerSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("follower soak skipped in -short mode")
	}
	for _, seed := range chaosSoakSeeds(t) {
		seed := seed
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			followerSoakOneSeed(t, seed)
		})
	}
}

func followerSoakOneSeed(t *testing.T, seed int64) {
	opts := FollowersOptions{Seed: seed}
	opts.applyDefaults()
	c, err := newFollowersCluster(context.Background(), opts, 3, true)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	t.Cleanup(c.Close)

	warmCtx, warmCancel := context.WithTimeout(context.Background(), 30*time.Second)
	wctx := replog.ContextWithKey(warmCtx, "w-warm")
	if _, err := c.invoke(wctx, "UpdateStudent", []byte("warm")); err != nil {
		warmCancel()
		t.Fatalf("warm write: %v", err)
	}
	if _, err := c.invoke(warmCtx, "StudentInformation", StudentRequestXML("S0001")); err != nil {
		warmCancel()
		t.Fatalf("warm read: %v", err)
	}
	warmCancel()

	eng := chaos.New(chaos.Config{
		Seed: seed,
		MTBF: 500 * time.Millisecond,
		MTTR: 125 * time.Millisecond,
	}, GroupTargets(c.group)...)
	runCtx, stopChaos := context.WithCancel(context.Background())
	chaosDone := make(chan struct{})
	go func() { eng.Run(runCtx); close(chaosDone) }()

	var (
		mu     sync.Mutex
		reads  int
		writes int
	)
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
			}
			callCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			kctx := replog.ContextWithKey(callCtx, fmt.Sprintf("w-%06d", i))
			_, err := c.invoke(kctx, "UpdateStudent", []byte(fmt.Sprintf("w-%06d", i)))
			cancel()
			if err == nil {
				mu.Lock()
				writes++
				mu.Unlock()
			}
		}
	}()
	var readers sync.WaitGroup
	deadline := time.Now().Add(1500 * time.Millisecond)
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for time.Now().Before(deadline) {
				callCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				_, err := c.invoke(callCtx, "StudentInformation", StudentRequestXML("S0001"))
				cancel()
				if err == nil {
					mu.Lock()
					reads++
					mu.Unlock()
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()

	stopChaos()
	<-chaosDone
	quiesceCtx, qCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer qCancel()
	if err := eng.Quiesce(quiesceCtx); err != nil {
		t.Fatalf("quiesce: %v", err)
	}

	if v := c.checker.Violations(); len(v) > 0 {
		t.Errorf("staleness violations: %s", strings.Join(v, "; "))
	}
	if c.checker.Reads() == 0 {
		t.Error("no follower read was checked during the soak")
	}
	if reads == 0 {
		t.Error("no read succeeded during the soak")
	}
	crashes := eng.Counts().Get("crash")
	t.Logf("seed %d: crashes=%d reads=%d writes=%d checked=%d",
		seed, crashes, reads, writes, c.checker.Reads())
}

// followersReport builds a synthetic E13 report for gate tests.
func followersReport(metrics map[string]float64) *Report {
	r := &Report{Experiment: "followers", Metrics: make(map[string]Metric)}
	for k, v := range metrics {
		r.Metrics[k] = Metric{Unit: "x", Mean: v}
	}
	return r
}

// TestCheckFollowersGate exercises the E13 gate's acceptance logic on
// synthetic reports.
func TestCheckFollowersGate(t *testing.T) {
	good := map[string]float64{
		"coordinator.goodput": 100,
		"followers.1.goodput": 120, "followers.1.checked": 400, "followers.1.stale": 0, "followers.1.spread": 1,
		"followers.3.goodput": 300, "followers.3.checked": 1200, "followers.3.stale": 0, "followers.3.spread": 3,
	}
	if findings := CheckFollowers(followersReport(good), FollowerBounds{}); len(findings) != 0 {
		t.Fatalf("good report failed the gate: %v", findings)
	}

	shallow := map[string]float64{}
	for k, v := range good {
		shallow[k] = v
	}
	shallow["followers.3.goodput"] = 200 // 2x < 2.5x
	findings := CheckFollowers(followersReport(shallow), FollowerBounds{})
	if len(findings) != 1 || !strings.Contains(findings[0], "scaling too shallow") {
		t.Fatalf("shallow scaling not caught: %v", findings)
	}

	stale := map[string]float64{}
	for k, v := range good {
		stale[k] = v
	}
	stale["followers.3.stale"] = 2
	findings = CheckFollowers(followersReport(stale), FollowerBounds{})
	if len(findings) != 1 || !strings.Contains(findings[0], "stale read") {
		t.Fatalf("stale reads not caught: %v", findings)
	}

	unchecked := map[string]float64{}
	for k, v := range good {
		unchecked[k] = v
	}
	unchecked["followers.3.checked"] = 0
	findings = CheckFollowers(followersReport(unchecked), FollowerBounds{})
	if len(findings) != 1 || !strings.Contains(findings[0], "staleness invariant") {
		t.Fatalf("unexercised invariant not caught: %v", findings)
	}

	narrow := map[string]float64{}
	for k, v := range good {
		narrow[k] = v
	}
	narrow["followers.3.spread"] = 1
	findings = CheckFollowers(followersReport(narrow), FollowerBounds{})
	if len(findings) != 1 || !strings.Contains(findings[0], "balancer not spreading") {
		t.Fatalf("narrow spread not caught: %v", findings)
	}

	if findings := CheckFollowers(followersReport(nil), FollowerBounds{}); len(findings) != 1 {
		t.Fatalf("empty report not caught: %v", findings)
	}
}
