package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"whisper/internal/bpeer"
	"whisper/internal/core"
	"whisper/internal/metrics"
	"whisper/internal/qos"
	"whisper/internal/simnet"
)

// QoSOptions configures experiment E7: QoS-aware peer-group selection
// (paper §2.4) against a semantics-only random baseline.
type QoSOptions struct {
	// Requests per strategy.
	Requests int
	// Seed drives randomness.
	Seed int64
	// PremiumDelay and BudgetDelay are the handler processing times of
	// the two groups.
	PremiumDelay time.Duration
	BudgetDelay  time.Duration
	// BudgetFailRate is the fraction of requests the budget group
	// fails (application errors).
	BudgetFailRate float64
}

func (o *QoSOptions) applyDefaults() {
	if o.Requests <= 0 {
		o.Requests = 60
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.PremiumDelay <= 0 {
		o.PremiumDelay = 1 * time.Millisecond
	}
	if o.BudgetDelay <= 0 {
		o.BudgetDelay = 15 * time.Millisecond
	}
	if o.BudgetFailRate == 0 {
		o.BudgetFailRate = 0.2
	}
}

// QoSStrategyResult is the outcome of one selection strategy.
type QoSStrategyResult struct {
	Strategy string
	Latency  *metrics.Histogram
	Success  int
	Failed   int
}

// QoSSelection runs E7.
func QoSSelection(ctx context.Context, opts QoSOptions) (*Table, []QoSStrategyResult, error) {
	opts.applyDefaults()
	net := simnet.NewNetwork(simnet.WithLatency(simnet.NewLANModel(opts.Seed)), simnet.WithSeed(opts.Seed))
	defer func() { _ = net.Close() }()
	dep, err := core.NewDeployment(core.Config{
		Transport: core.SimulatedTransport(net),
		Seed:      opts.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	defer func() { _ = dep.Close() }()

	sig := StudentSignature()
	rng := rand.New(rand.NewSource(opts.Seed))
	mkHandler := func(delay time.Duration, failRate float64) bpeer.Handler {
		return bpeer.HandlerFunc(func(_ context.Context, _ string, _ []byte) ([]byte, error) {
			time.Sleep(delay)
			if failRate > 0 && rng.Float64() < failRate {
				return nil, fmt.Errorf("budget peer overloaded")
			}
			return []byte("<StudentInfo><ID>S0001</ID></StudentInfo>"), nil
		})
	}

	ctx, cancel := context.WithTimeout(ctx, 180*time.Second)
	defer cancel()
	if _, derr := dep.DeployGroup(ctx, core.GroupSpec{
		Name:      "premium",
		Signature: sig,
		QoS:       qos.Profile{LatencyMillis: 1, CostPerCall: 2, Reliability: 0.999, Availability: 0.999},
		Handler:   mkHandler(opts.PremiumDelay, 0),
		Count:     2,
	}); derr != nil {
		return nil, nil, fmt.Errorf("bench: premium group: %w", derr)
	}
	if _, derr := dep.DeployGroup(ctx, core.GroupSpec{
		Name:      "budget",
		Signature: sig,
		QoS:       qos.Profile{LatencyMillis: 15, CostPerCall: 0.1, Reliability: 0.8, Availability: 0.9},
		Handler:   mkHandler(opts.BudgetDelay, opts.BudgetFailRate),
		Count:     2,
	}); derr != nil {
		return nil, nil, fmt.Errorf("bench: budget group: %w", derr)
	}

	p, err := dep.NewProxy("qos-proxy", core.ProxyOptions{})
	if err != nil {
		return nil, nil, err
	}
	defer func() { _ = p.Close() }()

	matches, err := p.FindPeerGroupAdv(ctx, sig)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: discovery: %w", err)
	}
	if len(matches) != 2 {
		return nil, nil, fmt.Errorf("bench: expected 2 matching groups, got %d", len(matches))
	}

	// Strategy A — random among semantically acceptable groups (the
	// architecture without §2.4).
	random := QoSStrategyResult{Strategy: "random (semantics only)", Latency: metrics.NewHistogram()}
	for i := 0; i < opts.Requests; i++ {
		gm := matches[rng.Intn(len(matches))]
		start := time.Now()
		_, err := p.InvokeGroup(ctx, gm.Adv, "StudentInformation", StudentRequestXML("S0001"))
		random.Latency.Observe(time.Since(start))
		if err != nil {
			random.Failed++
		} else {
			random.Success++
		}
	}

	// Strategy B — QoS-aware ranked selection (Invoke uses the
	// selector and falls through on failure).
	aware := QoSStrategyResult{Strategy: "QoS-aware (§2.4)", Latency: metrics.NewHistogram()}
	for i := 0; i < opts.Requests; i++ {
		start := time.Now()
		_, err := p.Invoke(ctx, sig, "StudentInformation", StudentRequestXML("S0001"))
		aware.Latency.Observe(time.Since(start))
		if err != nil {
			aware.Failed++
		} else {
			aware.Success++
		}
	}

	results := []QoSStrategyResult{random, aware}
	t := &Table{
		Title:   fmt.Sprintf("QoS-based peer selection (%d requests per strategy)", opts.Requests),
		Columns: []string{"strategy", "mean", "p99", "success", "failed"},
	}
	for _, r := range results {
		t.AddRow(r.Strategy, r.Latency.Mean().String(), r.Latency.Percentile(99).String(),
			fmt.Sprintf("%d", r.Success), fmt.Sprintf("%d", r.Failed))
	}
	t.AddNote("both groups match the request semantics exactly; only the §2.4 QoS model separates them")
	return t, results, nil
}
