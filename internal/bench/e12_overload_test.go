package bench

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"whisper/internal/chaos"
	"whisper/internal/loadctl"
	"whisper/internal/loadgen"
	"whisper/internal/replog"
)

// TestOverloadKnee runs a reduced E12 sweep and asserts the shape of
// the goodput knee: past saturation the protected proxy keeps serving
// (shedding the excess early) while the unprotected one collapses. The
// full-scale knee ratios (≥3× goodput, ≤2× admitted p99) are enforced
// on BENCH_overload.json by benchgate -overload; here the bounds are
// the structural ones that must hold at any scale.
func TestOverloadKnee(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	table, res, err := Overload(ctx, OverloadOptions{
		Multipliers: []float64{1, 10},
		Window:      800 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatalf("overload: %v", err)
	}
	t.Logf("\n%s", table.String())

	prot10, unprot10 := res.Point("protected", 10), res.Point("unprotected", 10)
	prot1 := res.Point("protected", 1)
	if prot10 == nil || unprot10 == nil || prot1 == nil {
		t.Fatal("missing sweep points")
	}
	if prot10.Goodput < 2*unprot10.Goodput {
		t.Errorf("no knee: protected goodput %.0f/s vs unprotected %.0f/s at 10x", prot10.Goodput, unprot10.Goodput)
	}
	if prot10.Shed == 0 {
		t.Error("protected proxy shed nothing at 10x offered load")
	}
	for _, p := range res.Points {
		if p.Config == "protected" && p.Violations != 0 {
			t.Errorf("%s %gx: %d deadline-violating admitted requests, want 0", p.Config, p.Multiplier, p.Violations)
		}
		if p.Duplicates != 0 {
			t.Errorf("%s %gx: %d duplicate executions, want 0", p.Config, p.Multiplier, p.Duplicates)
		}
	}
	if prot1.ShedRate > 0.05 {
		t.Errorf("protected proxy sheds %.0f%% at 1x load, want ~none", 100*prot1.ShedRate)
	}
}

// TestOverloadSoakExactlyOnce is the satellite soak: 10× overload plus
// crash–restart churn against a journaled group behind the protected
// proxy. Two invariants: no operation executes twice (sheds and
// retries never break exactly-once), and every shed is a clean
// rejection — a request the admission pipeline rejected must never
// have reached a handler.
func TestOverloadSoakExactlyOnce(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	opts := OverloadOptions{}
	opts.applyDefaults()
	const baseRate = 80.0

	adm := loadctl.NewController(admissionConfig(baseRate, opts))
	c, err := newOverloadCluster(ctx, opts, adm)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	defer c.Close()
	if err := c.warm(ctx, opts); err != nil {
		t.Fatalf("warm: %v", err)
	}

	eng := chaos.New(chaos.Config{Seed: 7, MTBF: 900 * time.Millisecond, MTTR: 200 * time.Millisecond},
		GroupTargets(c.group)...)
	runCtx, stopChaos := context.WithCancel(ctx)
	chaosDone := make(chan struct{})
	go func() { eng.Run(runCtx); close(chaosDone) }()

	var (
		mu      sync.Mutex
		seq     int
		shedIDs []string
	)
	res := loadgen.Run(ctx, loadgen.Options{
		Rate:    10 * baseRate,
		Window:  1500 * time.Millisecond,
		Timeout: 300 * time.Millisecond,
		Seed:    7,
	}, func(cctx context.Context, req loadgen.Request) error {
		mu.Lock()
		seq++
		id := fmt.Sprintf("soak-%06d", seq)
		mu.Unlock()
		cctx = replog.ContextWithKey(cctx, "k-"+id)
		_, err := c.proxy.Invoke(cctx, PaymentSignature(), "ProcessPayment", PaymentRequestXML(id))
		if err == nil {
			c.ledger.RecordAck(id)
		} else if errors.Is(err, loadctl.ErrRejected) {
			mu.Lock()
			shedIDs = append(shedIDs, id)
			mu.Unlock()
		}
		return err
	})

	stopChaos()
	<-chaosDone
	qctx, qcancel := context.WithTimeout(ctx, 30*time.Second)
	err = eng.Quiesce(qctx)
	qcancel()
	if err != nil {
		t.Fatalf("quiesce: %v", err)
	}

	t.Logf("soak: offered=%d good=%d shed=%d errors=%d late=%d crashes under churn",
		res.Offered, res.Good, res.Shed, res.Errors, res.Violations)
	if res.Offered == 0 || res.Good == 0 {
		t.Fatalf("soak produced no traffic: %+v", res)
	}
	if res.Shed == 0 {
		t.Fatal("10x overload shed nothing; the pipeline is not engaged")
	}
	if dups := c.ledger.Duplicates(); len(dups) > 0 {
		t.Errorf("exactly-once violated under overload+churn: %d duplicate executions (first: %v)", len(dups), dups[0])
	}
	if lost := c.ledger.LostAcked(); len(lost) > 0 {
		t.Errorf("%d acked operations never executed (first: %v)", len(lost), lost[0])
	}
	for _, id := range shedIDs {
		if n := c.ledger.Execs(id); n != 0 {
			t.Fatalf("shed request %s executed %d times: a shed must be a clean rejection before any pipe I/O", id, n)
		}
	}
}
