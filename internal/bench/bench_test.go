package bench

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"whisper/internal/simnet"
)

// The experiment smoke tests run each experiment with minimal
// parameters: they verify that the harness produces well-formed
// tables and that the headline *shape* of each result holds (linear
// growth, semantic > syntactic, failover bounded, ...). The full
// parameterizations run via cmd/whisper-bench and the root
// bench_test.go.

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	tab.AddNote("n=%d", 7)
	s := tab.String()
	for _, want := range []string{"== T ==", "a", "bb", "333", "note: n=7"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestClusterInvoke(t *testing.T) {
	c, err := NewCluster(context.Background(), ClusterOptions{Peers: 2, Seed: 1, Latency: simnet.ZeroLatency()})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	out, err := c.Invoke(ctx, "S0001")
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if !strings.Contains(string(out), "S0001") {
		t.Errorf("out = %q", out)
	}
}

func TestFigure4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tab, points, err := Figure4(context.Background(), Figure4Options{
		PeerCounts: []int{2, 4, 6},
		Window:     600 * time.Millisecond,
		Requests:   20,
		Settle:     200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("figure4: %v", err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Monotone growth in total messages with group size.
	for i := 1; i < len(points); i++ {
		if points[i].Total <= points[i-1].Total {
			t.Errorf("total messages not increasing: %d peers → %d msgs, %d peers → %d msgs",
				points[i-1].Peers, points[i-1].Total, points[i].Peers, points[i].Total)
		}
	}
	// Every protocol family must appear.
	for _, proto := range []string{"heartbeat", "pipe", "rendezvous"} {
		if points[0].PerProto[proto] == 0 {
			t.Errorf("protocol %s not observed: %v", proto, points[0].PerProto)
		}
	}
	if len(tab.Rows) != 3 {
		t.Errorf("table rows = %d", len(tab.Rows))
	}
}

func TestRTTShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tab, res, err := RTT(context.Background(), RTTOptions{Samples: 40, Peers: 2})
	if err != nil {
		t.Fatalf("rtt: %v", err)
	}
	// The LAN model is calibrated to the paper's ~0.5ms message RTT;
	// allow generous slack for scheduler noise.
	mean := res.Transport.Mean()
	if mean < 300*time.Microsecond || mean > 5*time.Millisecond {
		t.Errorf("transport RTT mean = %v, want ~0.5ms–ish", mean)
	}
	if res.Invocation.Mean() < res.Transport.Mean() {
		t.Errorf("invocation RTT %v should exceed raw message RTT %v",
			res.Invocation.Mean(), res.Transport.Mean())
	}
	if len(tab.Rows) != 2 {
		t.Errorf("table rows = %d", len(tab.Rows))
	}
}

func TestFailoverShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	_, res, err := Failover(context.Background(), FailoverOptions{Peers: 3, Trials: 1})
	if err != nil {
		t.Fatalf("failover: %v", err)
	}
	if res.Unavailability.Count() != 1 {
		t.Fatalf("unavailability samples = %d", res.Unavailability.Count())
	}
	// The worst case must dwarf the steady state (paper: sub-ms vs
	// seconds; our timeouts compress "seconds" to hundreds of ms).
	if res.Unavailability.Max() < 10*res.SteadyRTT.Percentile(50) {
		t.Errorf("unavailability %v should dwarf steady-state p50 %v",
			res.Unavailability.Max(), res.SteadyRTT.Percentile(50))
	}
	if res.WorstRTT == 0 {
		t.Error("worst RTT not recorded")
	}
}

func TestThroughputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	_, points, err := Throughput(context.Background(), ThroughputOptions{
		PeerCounts:  []int{2, 4},
		Clients:     4,
		Duration:    500 * time.Millisecond,
		ServiceTime: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("throughput: %v", err)
	}
	byKey := map[string]ThroughputPoint{}
	for _, p := range points {
		if p.Throughput <= 0 {
			t.Errorf("%s/%d peers: throughput = %v", p.Policy, p.Peers, p.Throughput)
		}
		if p.Errors > p.Requests/10 {
			t.Errorf("%s/%d peers: %d/%d errors", p.Policy, p.Peers, p.Errors, p.Requests)
		}
		byKey[fmt.Sprintf("%s/%d", p.Policy, p.Peers)] = p
	}
	// Load-sharing must scale with replicas while coordinated stays
	// roughly flat (the serving replica is the bottleneck).
	if byKey["load-sharing/4"].Throughput <= 1.3*byKey["coordinated/4"].Throughput {
		t.Errorf("load-sharing (%.0f req/s) should clearly beat coordinated (%.0f req/s) at 4 peers",
			byKey["load-sharing/4"].Throughput, byKey["coordinated/4"].Throughput)
	}
}

func TestDiscoveryQualityShape(t *testing.T) {
	tab, err := DiscoveryQuality(context.Background(), DiscoveryOptions{})
	if err != nil {
		t.Fatalf("discovery: %v", err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Row cells: matcher, precision, recall, F1, ...
	synF1, semF1 := tab.Rows[0][3], tab.Rows[1][3]
	if !(semF1 > synF1) { // string compare works for "0.xx" forms
		t.Errorf("semantic F1 %s should beat syntactic F1 %s", semF1, synF1)
	}
	if tab.Rows[1][1] != "1.00" || tab.Rows[1][2] != "1.00" {
		t.Errorf("semantic matcher should be perfect on the corpus: %v", tab.Rows[1])
	}
}

func TestBackendFailoverShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	_, res, err := BackendFailover(context.Background(), BackendFailoverOptions{Requests: 30, OutageAfter: 10})
	if err != nil {
		t.Fatalf("backend failover: %v", err)
	}
	if res.FromDB == 0 || res.FromWH == 0 {
		t.Errorf("expected answers from both stores: db=%d wh=%d", res.FromDB, res.FromWH)
	}
	if res.Failed > 0 {
		t.Errorf("outage leaked %d failures to clients", res.Failed)
	}
	if res.SwitchTime <= 0 || res.SwitchTime > 5*time.Second {
		t.Errorf("switch time = %v", res.SwitchTime)
	}
}

func TestQoSSelectionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	_, results, err := QoSSelection(context.Background(), QoSOptions{Requests: 30})
	if err != nil {
		t.Fatalf("qos: %v", err)
	}
	random, aware := results[0], results[1]
	if aware.Latency.Mean() >= random.Latency.Mean() {
		t.Errorf("QoS-aware mean %v should beat random %v",
			aware.Latency.Mean(), random.Latency.Mean())
	}
	if aware.Failed > random.Failed {
		t.Errorf("QoS-aware failures %d should not exceed random %d",
			aware.Failed, random.Failed)
	}
}

func TestElectionCostShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	_, points, err := ElectionCost(context.Background(), ElectionOptions{GroupSizes: []int{2, 4, 8}, Trials: 1})
	if err != nil {
		t.Fatalf("election: %v", err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].AvgMessages <= points[i-1].AvgMessages {
			t.Errorf("election messages should grow with peers: %v then %v",
				points[i-1].AvgMessages, points[i].AvgMessages)
		}
	}
	// Super-linear growth (the cascade): messages at 8 peers should
	// exceed 2x messages at 4 peers.
	if points[2].AvgMessages < 2*points[1].AvgMessages {
		t.Errorf("expected super-linear growth: n=4 → %.0f msgs, n=8 → %.0f msgs",
			points[1].AvgMessages, points[2].AvgMessages)
	}
}

func TestDiscoveryQualityLiveShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	tab, err := DiscoveryQualityLive(context.Background(), DiscoveryOptions{})
	if err != nil {
		t.Fatalf("live discovery: %v", err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	synF1, semF1 := tab.Rows[0][3], tab.Rows[1][3]
	if !(semF1 > synF1) {
		t.Errorf("live: semantic F1 %s should beat syntactic F1 %s", semF1, synF1)
	}
}

func TestAvailabilityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("macro experiment")
	}
	_, results, err := Availability(context.Background(), AvailabilityOptions{Requests: 30, CrashAfter: 10, Pacing: 2 * time.Millisecond})
	if err != nil {
		t.Fatalf("availability: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	whisperRes, retry, single := results[0], results[1], results[2]
	if whisperRes.Errors != 0 {
		t.Errorf("whisper leaked %d errors", whisperRes.Errors)
	}
	if whisperRes.EndpointsAtClient != 1 {
		t.Errorf("whisper endpoints@client = %d, want 1", whisperRes.EndpointsAtClient)
	}
	if retry.ExtraAttempts == 0 {
		t.Error("client-retry should pay extra attempts after the crash")
	}
	if single.Errors == 0 {
		t.Error("single server should fail during the outage window")
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"a", "b"}}
	tab.AddRow("1", `va"l,ue`)
	tab.AddNote("hello")
	csv := tab.CSV()
	for _, want := range []string{"a,b\n", `1,"va""l,ue"`, "# hello"} {
		if !strings.Contains(csv, want) {
			t.Errorf("csv missing %q:\n%s", want, csv)
		}
	}
}
