package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: whisper/internal/p2p
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDiscoveryLocalQuery-8   	 4523342	       265.1 ns/op	      40 B/op	       2 allocs/op
BenchmarkDiscoveryLocalQuery-8   	 4498210	       270.4 ns/op	      40 B/op	       2 allocs/op
BenchmarkDiscoveryLocalQuery-8   	 4551102	       262.9 ns/op	      40 B/op	       2 allocs/op
PASS
ok  	whisper/internal/p2p	5.1s
pkg: whisper/internal/soap
BenchmarkEncodeFault-8           	 2725090	       432.9 ns/op	     344 B/op	       4 allocs/op
PASS
ok  	whisper/internal/soap	1.2s
`

func TestParseBenchOutput(t *testing.T) {
	samples, err := ParseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	q := samples["whisper/internal/p2p.BenchmarkDiscoveryLocalQuery"]
	if len(q) != 3 {
		t.Fatalf("query samples = %d, want 3", len(q))
	}
	if q[1].nsPerOp != 270.4 || q[1].bytesPerOp != 40 || q[1].allocsPerOp != 2 {
		t.Errorf("sample = %+v", q[1])
	}
	f := samples["whisper/internal/soap.BenchmarkEncodeFault"]
	if len(f) != 1 || f[0].allocsPerOp != 4 {
		t.Errorf("fault samples = %+v", f)
	}
}

func TestAggregateSamples(t *testing.T) {
	samples, _ := ParseBenchOutput(strings.NewReader(sampleBenchOutput))
	agg := AggregateSamples(samples)
	q := agg["whisper/internal/p2p.BenchmarkDiscoveryLocalQuery"]
	if q.Samples != 3 {
		t.Fatalf("samples = %d, want 3", q.Samples)
	}
	if q.NsPerOp != 265.1 {
		t.Errorf("median ns/op = %v, want 265.1", q.NsPerOp)
	}
	if q.P95NsPerOp != 270.4 {
		t.Errorf("p95 ns/op = %v, want 270.4 (nearest-rank max of 3)", q.P95NsPerOp)
	}
	if q.AllocsPerOp != 2 {
		t.Errorf("allocs/op = %v, want 2", q.AllocsPerOp)
	}
}

func TestCompareToBaseline(t *testing.T) {
	base := map[string]GateBenchmark{
		"a":    {Name: "a", P95NsPerOp: 100, AllocsPerOp: 10},
		"b":    {Name: "b", P95NsPerOp: 100, AllocsPerOp: 10},
		"c":    {Name: "c", P95NsPerOp: 100, AllocsPerOp: 2},
		"gone": {Name: "gone", P95NsPerOp: 1, AllocsPerOp: 1},
	}
	cur := map[string]GateBenchmark{
		"a":   {Name: "a", P95NsPerOp: 115, AllocsPerOp: 10},  // within 20%
		"b":   {Name: "b", P95NsPerOp: 130, AllocsPerOp: 13},  // both regressed
		"c":   {Name: "c", P95NsPerOp: 100, AllocsPerOp: 2.4}, // +20% but <1 alloc
		"new": {Name: "new", P95NsPerOp: 5, AllocsPerOp: 1},
	}
	regs, missing, fresh := CompareToBaseline(base, cur, 0.20)
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want 2 on b", regs)
	}
	for _, r := range regs {
		if r.Benchmark != "b" {
			t.Errorf("unexpected regression %v", r)
		}
	}
	if len(missing) != 1 || missing[0] != "gone" {
		t.Errorf("missing = %v", missing)
	}
	if len(fresh) != 1 || fresh[0] != "new" {
		t.Errorf("fresh = %v", fresh)
	}
}

func TestGateBaselineRoundTrip(t *testing.T) {
	samples, _ := ParseBenchOutput(strings.NewReader(sampleBenchOutput))
	agg := AggregateSamples(samples)
	path := filepath.Join(t.TempDir(), "BENCH_gate.json")
	if err := WriteGateBaseline(path, agg); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadGateBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	regs, missing, fresh := CompareToBaseline(loaded.Benchmarks, agg, 0.20)
	if len(regs)+len(missing)+len(fresh) != 0 {
		t.Errorf("self-comparison not clean: regs=%v missing=%v fresh=%v", regs, missing, fresh)
	}
}

func TestReportWriteFile(t *testing.T) {
	tab := &Table{Title: "E2", Columns: []string{"path", "p50"}}
	tab.AddRow("transport", "1ms")
	r := NewReport("rtt", tab)
	r.AddScalar("throughput", "req/s", 123.4)
	dir := t.TempDir()
	path, err := r.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_rtt.json" {
		t.Errorf("path = %s", path)
	}
	loaded, err := LoadGateBaseline(path) // wrong schema must still be JSON
	if err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	_ = loaded
}
