package bench

import (
	"context"
	"strconv"
	"strings"
	"testing"
	"time"

	"whisper/internal/baseline"
	"whisper/internal/chaos"
)

// TestJournalSoak drives the journaled ("replog") strategy of E11
// under compressed crash–restart churn (the PR-2 soak schedule) and
// checks the exactly-once invariants: no payment executes twice and no
// acknowledged payment is lost, for every seed. The fault schedule is
// deterministic per seed, so a failing seed reproduces exactly.
func TestJournalSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("journal soak skipped in -short mode")
	}
	for _, seed := range chaosSoakSeeds(t) {
		seed := seed
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			res, err := ExactlyOnceWhisper(context.Background(), ExactlyOnceOptions{
				SteadyOps: 10,
				OpDelay:   20 * time.Millisecond,
				MTBF:      500 * time.Millisecond,
				MTTR:      125 * time.Millisecond,
				Window:    1500 * time.Millisecond,
				Seed:      seed,
			}, true)
			if err != nil {
				t.Fatalf("soak: %v", err)
			}
			t.Logf("seed %d: ops=%d acked=%d executed=%d executions=%d crashes=%d",
				seed, res.Ops, res.Acked, res.Executed, res.Executions, res.Crashes)
			if len(res.Duplicates) > 0 {
				t.Errorf("duplicate executions under churn: %s", strings.Join(res.Duplicates, ", "))
			}
			if len(res.LostAcked) > 0 {
				t.Errorf("acknowledged ops never executed: %s", strings.Join(res.LostAcked, ", "))
			}
			if res.Acked == 0 {
				t.Error("no operation was acknowledged during the soak")
			}
		})
	}
}

// TestJournalBaselineDuplicatesOnLostReply pins the hazard the journal
// closes, deterministically: a WS-FTM-style endpoint executes the
// payment, crashes before the receipt is delivered, and the client's
// replica-list retry re-executes it on the next endpoint — a duplicate
// payment the ledger catches.
func TestJournalBaselineDuplicatesOnLostReply(t *testing.T) {
	ledger := chaos.NewOpLedger()
	var first *baseline.FuncEndpoint
	first = baseline.NewFuncEndpoint(func(_ context.Context, _ string, payload []byte) ([]byte, error) {
		id, err := paymentID(payload)
		if err != nil {
			return nil, err
		}
		ledger.RecordExec(id)
		// Crash after the state change, before the reply.
		first.SetAvailable(false)
		return nil, baseline.ErrEndpointDown
	})
	second := baseline.NewFuncEndpoint(func(_ context.Context, _ string, payload []byte) ([]byte, error) {
		id, err := paymentID(payload)
		if err != nil {
			return nil, err
		}
		ledger.RecordExec(id)
		return []byte("<Receipt><ID>" + id + "</ID></Receipt>"), nil
	})
	client := baseline.NewClientRetry(first, second)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out, err := client.Invoke(ctx, "ProcessPayment", PaymentRequestXML("pay-777"))
	if err != nil {
		t.Fatalf("client retry: %v", err)
	}
	if !strings.Contains(string(out), "pay-777") {
		t.Fatalf("unexpected receipt %q", out)
	}
	ledger.RecordAck("pay-777")

	if got := ledger.Execs("pay-777"); got != 2 {
		t.Fatalf("payment executed %d times, want 2 (the baseline duplicates on a lost reply)", got)
	}
	if dups := ledger.Duplicates(); len(dups) != 1 || dups[0] != "pay-777" {
		t.Fatalf("Duplicates = %v, want [pay-777]", dups)
	}
}
