package bench

import (
	"context"
	"fmt"
	"time"

	"whisper/internal/metrics"
	"whisper/internal/p2p"
	"whisper/internal/simnet"
)

// RTTOptions configures experiment E2: steady-state round-trip times
// on the LAN-calibrated network (the paper reports ~0.5 ms average
// message RTT).
type RTTOptions struct {
	// Samples is the number of measured round trips per series.
	Samples int
	// Peers is the group size.
	Peers int
	// Seed drives randomness.
	Seed int64
}

func (o *RTTOptions) applyDefaults() {
	if o.Samples <= 0 {
		o.Samples = 200
	}
	if o.Peers <= 0 {
		o.Peers = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// RTTResult carries the two measured distributions.
type RTTResult struct {
	// Transport is the raw message ping/pong RTT between two peers —
	// the quantity the paper's monitor timestamps.
	Transport *metrics.Histogram
	// Invocation is the full semantic service invocation RTT
	// (proxy → coordinator → backend → back).
	Invocation *metrics.Histogram
}

// RTT runs E2.
func RTT(ctx context.Context, opts RTTOptions) (*Table, *RTTResult, error) {
	opts.applyDefaults()
	res := &RTTResult{}

	// --- raw transport RTT: two bare peers exchanging ping/pong on
	// the LAN model, exactly the paper's "request packet time-stamped
	// by the monitor ... reply packet time-stamped".
	transport, err := measureTransportRTT(ctx, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: transport RTT: %w", err)
	}
	res.Transport = transport

	// --- full invocation RTT through the Whisper stack.
	c, err := NewCluster(ctx, ClusterOptions{Peers: opts.Peers, Seed: opts.Seed})
	if err != nil {
		return nil, nil, err
	}
	defer func() { _ = c.Close() }()
	ctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	if _, err := c.Invoke(ctx, c.StudentID(0)); err != nil { // warm binding
		return nil, nil, err
	}
	inv := metrics.NewHistogram()
	for i := 0; i < opts.Samples; i++ {
		start := time.Now()
		if _, err := c.Invoke(ctx, c.StudentID(i)); err != nil {
			return nil, nil, fmt.Errorf("bench: invoke %d: %w", i, err)
		}
		inv.Observe(time.Since(start))
	}
	res.Invocation = inv

	t := &Table{
		Title:   fmt.Sprintf("RTT (LAN model, %d samples): paper reports ~0.5 ms average message RTT", opts.Samples),
		Columns: []string{"series", "mean", "p50", "p99", "min", "max"},
	}
	addHist := func(name string, h *metrics.Histogram) {
		t.AddRow(name,
			h.Mean().String(), h.Percentile(50).String(), h.Percentile(99).String(),
			h.Min().String(), h.Max().String())
	}
	addHist("message ping/pong", res.Transport)
	addHist("service invocation", res.Invocation)
	t.AddNote("one message RTT ≈ 2× one-way LAN latency (250µs) → ~0.5ms, matching the paper")
	return t, res, nil
}

func measureTransportRTT(ctx context.Context, opts RTTOptions) (*metrics.Histogram, error) {
	net := simnet.NewNetwork(simnet.WithLatency(simnet.NewLANModel(opts.Seed)), simnet.WithSeed(opts.Seed))
	defer func() { _ = net.Close() }()
	gen := p2p.NewIDGen(opts.Seed)

	portA, err := net.NewPort("monitor")
	if err != nil {
		return nil, err
	}
	portB, err := net.NewPort("responder")
	if err != nil {
		return nil, err
	}
	a := p2p.NewPeer("monitor", gen.New(p2p.PeerIDKind), portA)
	b := p2p.NewPeer("responder", gen.New(p2p.PeerIDKind), portB)
	defer func() { _ = a.Close() }()
	defer func() { _ = b.Close() }()
	ra := p2p.NewResolver(a)
	rb := p2p.NewResolver(b)
	rb.RegisterHandler("echo", func(_ string, payload []byte) ([]byte, error) {
		return payload, nil
	})
	a.Start()
	b.Start()

	hist := metrics.NewHistogram()
	ctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	payload := []byte("rtt-probe")
	for i := 0; i < opts.Samples; i++ {
		start := time.Now()
		if _, err := ra.Query(ctx, b.Addr(), "echo", payload); err != nil {
			return nil, err
		}
		hist.Observe(time.Since(start))
	}
	return hist, nil
}
