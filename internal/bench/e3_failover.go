package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"whisper/internal/metrics"
)

// FailoverOptions configures experiment E3: the worst-case RTT when
// the coordinator fails mid-load. The paper attributes the
// multi-second worst case to (a) the time to elect a new coordinator
// and (b) the time to re-bind the SWS-proxy to the elected b-peer.
type FailoverOptions struct {
	// Peers is the group size.
	Peers int
	// Seed drives randomness.
	Seed int64
	// Trials repeats the crash to average the components.
	Trials int
	// Trace equips each trial's cluster with distributed tracing and
	// captures the span tree of the slowest recovery request into the
	// result's Trace field (the whisper-bench -trace flag).
	Trace bool
}

func (o *FailoverOptions) applyDefaults() {
	if o.Peers <= 0 {
		o.Peers = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Trials <= 0 {
		o.Trials = 3
	}
}

// FailoverResult aggregates the incident anatomy across trials.
type FailoverResult struct {
	// SteadyRTT is the pre-crash request RTT distribution.
	SteadyRTT *metrics.Histogram
	// DetectElect measures crash → surviving replicas agree on the
	// new coordinator (failure detection + Bully election).
	DetectElect *metrics.Histogram
	// Unavailability measures crash → first successful request
	// (detection + election + proxy re-binding + retry).
	Unavailability *metrics.Histogram
	// WorstRTT is the slowest successful request observed during the
	// incidents.
	WorstRTT time.Duration
	// Trace is the span-tree anatomy of the slowest recovery request
	// (nil unless FailoverOptions.Trace).
	Trace *TraceSummary
}

// Failover runs E3: for each trial it deploys a fresh cluster, drives
// load, crashes the coordinator and measures the recovery anatomy.
func Failover(ctx context.Context, opts FailoverOptions) (*Table, *FailoverResult, error) {
	opts.applyDefaults()
	res := &FailoverResult{
		SteadyRTT:      metrics.NewHistogram(),
		DetectElect:    metrics.NewHistogram(),
		Unavailability: metrics.NewHistogram(),
	}
	for trial := 0; trial < opts.Trials; trial++ {
		if err := failoverTrial(ctx, opts, int64(trial), res); err != nil {
			return nil, nil, fmt.Errorf("bench: failover trial %d: %w", trial, err)
		}
	}

	t := &Table{
		Title:   fmt.Sprintf("Worst-case RTT anatomy under coordinator failure (%d peers, %d trials)", opts.Peers, opts.Trials),
		Columns: []string{"component", "mean", "p50", "max"},
	}
	t.AddRow("steady-state request RTT",
		res.SteadyRTT.Mean().String(), res.SteadyRTT.Percentile(50).String(), res.SteadyRTT.Max().String())
	t.AddRow("failure detection + election",
		res.DetectElect.Mean().String(), res.DetectElect.Percentile(50).String(), res.DetectElect.Max().String())
	t.AddRow("total unavailability (to first success)",
		res.Unavailability.Mean().String(), res.Unavailability.Percentile(50).String(), res.Unavailability.Max().String())
	t.AddRow("worst successful request RTT", res.WorstRTT.String(), "-", "-")
	t.AddNote("paper: worst-case RTT reaches seconds, dominated by election time and proxy re-binding; steady state stays sub-millisecond")
	return t, res, nil
}

func failoverTrial(ctx context.Context, opts FailoverOptions, trial int64, res *FailoverResult) error {
	c, err := NewCluster(ctx, ClusterOptions{Peers: opts.Peers, Seed: opts.Seed + trial, Tracing: opts.Trace})
	if err != nil {
		return err
	}
	defer func() { _ = c.Close() }()
	ctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()

	// Steady-state load before the incident.
	for i := 0; i < 30; i++ {
		start := time.Now()
		if _, err := c.Invoke(ctx, c.StudentID(i)); err != nil {
			return err
		}
		res.SteadyRTT.Observe(time.Since(start))
	}

	// Watch for the survivors to agree on a new coordinator.
	oldCoord := c.Group.Coordinator()
	var agreeOnce sync.Once
	agreed := make(chan time.Time, 1)
	stopWatch := make(chan struct{})
	go func() {
		ticker := time.NewTicker(2 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				peers := c.Group.Peers()
				if len(peers) == 0 {
					continue
				}
				coord := peers[0].Coordinator()
				ok := coord != "" && coord != oldCoord
				for _, p := range peers[1:] {
					if p.Coordinator() != coord {
						ok = false
						break
					}
				}
				if ok {
					agreeOnce.Do(func() { agreed <- time.Now() })
					return
				}
			case <-stopWatch:
				return
			}
		}
	}()

	crashAt := time.Now()
	if _, err := c.Group.CrashCoordinator(); err != nil {
		close(stopWatch)
		return err
	}

	// Hammer the service until a request succeeds again; the slowest
	// successful request during the incident is the worst-case RTT.
	// Under -trace each request runs under a client root span, and the
	// slowest successful one's span tree is kept as the incident
	// anatomy (proxy phases + b-peer spans joined over the pipe).
	tracer := c.Dep.Tracer()
	var firstSuccess time.Time
	for {
		rctx, span := tracer.StartSpan(ctx, "client.request")
		start := time.Now()
		_, err := c.Invoke(rctx, c.StudentID(0))
		rtt := time.Since(start)
		span.EndWith(err)
		if err == nil {
			if rtt > res.WorstRTT {
				res.WorstRTT = rtt
			}
			if opts.Trace && (res.Trace == nil || rtt > res.Trace.RTT) {
				if sum, serr := SummarizeTrace(c.Dep.TraceCollector(), span.Context().TraceID, rtt); serr == nil {
					res.Trace = sum
				}
			}
			firstSuccess = time.Now()
			break
		}
		if ctx.Err() != nil {
			close(stopWatch)
			return fmt.Errorf("service never recovered: %w", err)
		}
	}
	res.Unavailability.Observe(firstSuccess.Sub(crashAt))

	select {
	case at := <-agreed:
		res.DetectElect.Observe(at.Sub(crashAt))
	case <-time.After(10 * time.Second):
		close(stopWatch)
		return fmt.Errorf("survivors never agreed on a new coordinator")
	}
	close(stopWatch)
	return nil
}
