package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"whisper/internal/bpeer"
	"whisper/internal/chaos"
	"whisper/internal/core"
	"whisper/internal/loadctl"
	"whisper/internal/loadgen"
	"whisper/internal/proxy"
	"whisper/internal/qos"
	"whisper/internal/replog"
	"whisper/internal/simnet"
)

// OverloadOptions configures experiment E12: open-loop overload sweeps
// (1×/5×/10× of a calibrated base rate) against a protected proxy
// (loadctl admission pipeline) and an unprotected one. The headline is
// the knee of the goodput curve: without admission control goodput
// collapses past saturation — every queue fills until all deadlines
// fire — while the protected proxy sheds the excess early and keeps
// serving at capacity.
type OverloadOptions struct {
	// Replicas is the group size (default 3).
	Replicas int
	// Workers is the backend's concurrent capacity — requests beyond
	// it queue on the handler's semaphore (default 2).
	Workers int
	// ServiceTime is the per-request backend work (default 5ms).
	ServiceTime time.Duration
	// BaseRate is the 1× offered load in req/s; <=0 measures the
	// cluster's closed-loop capacity first and uses 70% of it.
	BaseRate float64
	// Multipliers are the offered-load multiples swept
	// (default 1, 5, 10).
	Multipliers []float64
	// Window is the open-loop generation window per point
	// (default 1.5s).
	Window time.Duration
	// Timeout is each request's end-to-end deadline (default 250ms).
	Timeout time.Duration
	// Clients is the number of Zipf-skewed caller identities
	// (default 8).
	Clients int
	// Seed drives the arrival schedules and all other randomness. The
	// protected and unprotected runs of the same multiplier share one
	// schedule, so the comparison is paired.
	Seed int64
}

func (o *OverloadOptions) applyDefaults() {
	if o.Replicas <= 0 {
		o.Replicas = 3
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.ServiceTime <= 0 {
		o.ServiceTime = 5 * time.Millisecond
	}
	if len(o.Multipliers) == 0 {
		o.Multipliers = []float64{1, 5, 10}
	}
	if o.Window <= 0 {
		o.Window = 1500 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = 250 * time.Millisecond
	}
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// OverloadPoint is one (configuration, multiplier) measurement.
type OverloadPoint struct {
	// Config is "protected" or "unprotected".
	Config string
	// Multiplier is the offered-load multiple of BaseRate; Rate the
	// resulting offered req/s.
	Multiplier float64
	Rate       float64
	// Offered/Good/Violations/Shed/Errors classify every arrival:
	// Good completed within deadline, Violations completed after it
	// (admitted work the caller had abandoned), Shed were rejected by
	// admission, Errors failed any other way.
	Offered    int
	Good       int
	Violations int
	Shed       int
	Errors     int
	// Goodput is Good per second; ShedRate the shed fraction.
	Goodput  float64
	ShedRate float64
	// P50/P99 are latency percentiles of Good requests.
	P50, P99 time.Duration
	// Duplicates counts exactly-once violations in the op ledger: a
	// shed must be a clean rejection, never a duplicate execution.
	Duplicates int
	// Limit is the AIMD concurrency limit at the end of the window
	// (0 for the unprotected configuration).
	Limit float64
}

// OverloadResult is the full E12 sweep.
type OverloadResult struct {
	// Capacity is the measured closed-loop capacity (req/s); BaseRate
	// the 1× offered load derived from it.
	Capacity float64
	BaseRate float64
	Points   []OverloadPoint
}

// overloadHandler models a backend with finite concurrency: Workers
// slots, ServiceTime of work per request. The execution is recorded in
// the ledger before the work happens, so a duplicate re-execution of
// an already-journaled operation is caught even when its reply was
// lost.
func overloadHandler(ledger *chaos.OpLedger, workers int, service time.Duration) bpeer.Handler {
	sem := make(chan struct{}, workers)
	return bpeer.HandlerFunc(func(ctx context.Context, _ string, payload []byte) ([]byte, error) {
		id, err := paymentID(payload)
		if err != nil {
			return nil, err
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		defer func() { <-sem }()
		ledger.RecordExec(id)
		timer := time.NewTimer(service)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return []byte("<Receipt><ID>" + id + "</ID></Receipt>"), nil
	})
}

// overloadCluster is one deployment under test: a journaled claim
// group behind either a protected or an unprotected proxy.
type overloadCluster struct {
	net    *simnet.Network
	dep    *core.Deployment
	group  *core.Group
	proxy  *proxy.SWSProxy
	ledger *chaos.OpLedger
	adm    *loadctl.Controller
}

func (c *overloadCluster) Close() {
	_ = c.proxy.Close()
	_ = c.dep.Close()
	_ = c.net.Close()
}

// newOverloadCluster deploys a fresh cluster. adm == nil is the
// unprotected configuration.
func newOverloadCluster(ctx context.Context, opts OverloadOptions, adm *loadctl.Controller) (*overloadCluster, error) {
	net := simnet.NewNetwork(simnet.WithLatency(simnet.NewLANModel(opts.Seed+1)), simnet.WithSeed(opts.Seed))
	dep, err := core.NewDeployment(core.Config{
		Transport: core.SimulatedTransport(net),
		Seed:      opts.Seed,
		Timings: core.Timings{
			HeartbeatInterval: 50 * time.Millisecond,
			HeartbeatTimeout:  200 * time.Millisecond,
			ElectionTimeout:   100 * time.Millisecond,
			LeaseInterval:     500 * time.Millisecond,
			RendezvousLease:   5 * time.Second,
			BindTimeout:       time.Second,
			CallTimeout:       2 * opts.Timeout,
			RetryDelay:        25 * time.Millisecond,
		},
	})
	if err != nil {
		_ = net.Close()
		return nil, err
	}
	c := &overloadCluster{net: net, dep: dep, ledger: chaos.NewOpLedger(), adm: adm}
	deployCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	c.group, err = dep.DeployGroup(deployCtx, core.GroupSpec{
		Name:      "ClaimProcessing",
		Signature: PaymentSignature(),
		QoS:       qos.Profile{LatencyMillis: 5, Reliability: 0.99, Availability: 0.99},
		Handler:   overloadHandler(c.ledger, opts.Workers, opts.ServiceTime),
		Count:     opts.Replicas,
	})
	cancel()
	if err != nil {
		c.Close()
		return nil, err
	}
	c.proxy, err = dep.NewProxy("claims-proxy", core.ProxyOptions{Admission: adm})
	if err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// call drives one generated arrival through the proxy under a fresh
// idempotency key, acking the ledger on success.
func (c *overloadCluster) call(ctx context.Context, idPrefix string, seq int) error {
	id := fmt.Sprintf("%s-%06d", idPrefix, seq)
	cctx := replog.ContextWithKey(ctx, "k-"+id)
	_, err := c.proxy.Invoke(cctx, PaymentSignature(), "ProcessPayment", PaymentRequestXML(id))
	if err == nil {
		c.ledger.RecordAck(id)
	}
	return err
}

// warm drives a few sequential requests so discovery, the coordinator
// binding and (when protected) the service estimate are primed before
// the measured window.
func (c *overloadCluster) warm(ctx context.Context, opts OverloadOptions) error {
	for i := 0; i < 20; i++ {
		wctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		// One identity per warm call: warming must prime the pipeline,
		// not drain any one client's token bucket.
		err := c.call(loadctl.ContextWithClient(wctx, fmt.Sprintf("warm-%d", i)), "warm", i)
		cancel()
		if err != nil {
			return fmt.Errorf("warm call %d: %w", i, err)
		}
	}
	return nil
}

// measureCapacity runs a short closed loop (2×Workers clients, so the
// backend stays saturated but queues stay short) against a fresh
// unprotected cluster and reports the sustained req/s.
func measureCapacity(ctx context.Context, opts OverloadOptions) (float64, error) {
	c, err := newOverloadCluster(ctx, opts, nil)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if err := c.warm(ctx, opts); err != nil {
		return 0, err
	}
	const window = 600 * time.Millisecond
	var (
		mu   sync.Mutex
		done int
	)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < 2*opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; time.Since(start) < window; i++ {
				cctx, cancel := context.WithTimeout(ctx, time.Second)
				err := c.call(cctx, fmt.Sprintf("cal-%d", w), i)
				cancel()
				if err == nil {
					mu.Lock()
					done++
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if done == 0 {
		return 0, fmt.Errorf("bench: capacity calibration completed zero requests")
	}
	return float64(done) / elapsed.Seconds(), nil
}

// admissionConfig derives the protected proxy's pipeline from the base
// rate: each client may claim at most half the total capacity (so a
// Zipf-hot caller cannot starve the rest), the AIMD limit discovers
// sustainable concurrency on its own, and queue waits are bounded by
// the request deadline.
func admissionConfig(baseRate float64, opts OverloadOptions) loadctl.Config {
	rate := baseRate / 2
	if rate < 1 {
		rate = 1
	}
	return loadctl.Config{
		Rate:         rate,
		Burst:        rate/4 + 1,
		InitialLimit: 4,
		MinLimit:     1,
		MaxLimit:     64,
		Tolerance:    2.5,
		Backoff:      0.75,
		// The queue is deliberately short: every queued request adds
		// its own wait to the latency of admitted work, and E12's
		// acceptance bound is p99(admitted, 10x) ≤ 2×p99(1x). Excess
		// belongs shed, not queued.
		MaxQueue: 3,
		MaxWait:  opts.Timeout / 8,
	}
}

// runOverloadPoint measures one (configuration, multiplier) cell on a
// fresh cluster.
func runOverloadPoint(ctx context.Context, opts OverloadOptions, baseRate, mult float64, protected bool) (OverloadPoint, error) {
	cfg := "unprotected"
	var adm *loadctl.Controller
	if protected {
		cfg = "protected"
		adm = loadctl.NewController(admissionConfig(baseRate, opts))
	}
	point := OverloadPoint{Config: cfg, Multiplier: mult, Rate: baseRate * mult}
	c, err := newOverloadCluster(ctx, opts, adm)
	if err != nil {
		return point, err
	}
	defer c.Close()
	if err := c.warm(ctx, opts); err != nil {
		return point, err
	}

	seq := 0
	var mu sync.Mutex
	prefix := fmt.Sprintf("%s-%gx", cfg, mult)
	res := loadgen.Run(ctx, loadgen.Options{
		Rate:    point.Rate,
		Window:  opts.Window,
		Clients: opts.Clients,
		Timeout: opts.Timeout,
		// Same seed for both configurations of a multiplier: the
		// offered schedules are identical, the comparison paired.
		Seed: opts.Seed*1000 + int64(mult*10),
	}, func(cctx context.Context, req loadgen.Request) error {
		mu.Lock()
		seq++
		n := seq
		mu.Unlock()
		return c.call(cctx, prefix, n)
	})

	point.Offered = res.Offered
	point.Good = res.Good
	point.Violations = res.Violations
	point.Shed = res.Shed
	point.Errors = res.Errors
	point.Goodput = res.Goodput()
	point.ShedRate = res.ShedRate()
	point.P50 = res.Latency.Percentile(50)
	point.P99 = res.Latency.Percentile(99)
	point.Duplicates = len(c.ledger.Duplicates())
	if adm != nil {
		point.Limit = adm.Snapshot().Limit
	}
	return point, nil
}

// Overload runs E12 and returns the sweep table plus the raw points.
func Overload(ctx context.Context, opts OverloadOptions) (*Table, *OverloadResult, error) {
	opts.applyDefaults()
	result := &OverloadResult{BaseRate: opts.BaseRate}
	if result.BaseRate <= 0 {
		capacity, err := measureCapacity(ctx, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: overload calibration: %w", err)
		}
		result.Capacity = capacity
		result.BaseRate = 0.7 * capacity
	}
	for _, mult := range opts.Multipliers {
		for _, protected := range []bool{false, true} {
			point, err := runOverloadPoint(ctx, opts, result.BaseRate, mult, protected)
			if err != nil {
				return nil, nil, fmt.Errorf("bench: overload %s %gx: %w", point.Config, mult, err)
			}
			result.Points = append(result.Points, point)
		}
	}

	t := &Table{
		Title: fmt.Sprintf("Overload goodput knee (base %.0f req/s, window %v, deadline %v, seed %d)",
			result.BaseRate, opts.Window, opts.Timeout, opts.Seed),
		Columns: []string{"config", "offered load", "offered", "good", "shed", "errors", "late", "goodput", "shed rate", "p50", "p99", "dups", "limit"},
	}
	for _, p := range result.Points {
		limit := "-"
		if p.Config == "protected" {
			limit = fmt.Sprintf("%.1f", p.Limit)
		}
		t.AddRow(p.Config,
			fmt.Sprintf("%.0f/s (%gx)", p.Rate, p.Multiplier),
			fmt.Sprintf("%d", p.Offered),
			fmt.Sprintf("%d", p.Good),
			fmt.Sprintf("%d", p.Shed),
			fmt.Sprintf("%d", p.Errors),
			fmt.Sprintf("%d", p.Violations),
			fmt.Sprintf("%.0f/s", p.Goodput),
			fmt.Sprintf("%.0f%%", 100*p.ShedRate),
			p.P50.String(),
			p.P99.String(),
			fmt.Sprintf("%d", p.Duplicates),
			limit)
	}
	if result.Capacity > 0 {
		t.AddNote("closed-loop capacity calibrated at %.0f req/s; 1x offered load is 70%% of it", result.Capacity)
	}
	maxMult := opts.Multipliers[len(opts.Multipliers)-1]
	if prot, unprot := result.Point("protected", maxMult), result.Point("unprotected", maxMult); prot != nil && unprot != nil {
		t.AddNote("knee at %gx: protected goodput %.0f/s vs unprotected %.0f/s; protected sheds %.0f%% early instead of timing everything out",
			maxMult, prot.Goodput, unprot.Goodput, 100*prot.ShedRate)
	}
	t.AddNote("admission pipeline: per-client token bucket -> deadline check vs p95 estimate -> AIMD concurrency limit with EDF queue -> circuit breaker; sheds happen before any pipe I/O")
	return t, result, nil
}

// Point returns the measurement for (config, multiplier), or nil.
func (r *OverloadResult) Point(config string, mult float64) *OverloadPoint {
	for i := range r.Points {
		if r.Points[i].Config == config && r.Points[i].Multiplier == mult {
			return &r.Points[i]
		}
	}
	return nil
}
