package bench

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"whisper/internal/chaos"
	"whisper/internal/core"
	"whisper/internal/metrics"
)

// ChaosOptions configures experiment E10: client-visible availability
// under sustained crash–restart churn, measured against the paper's
// static-redundancy prediction A = 1 − U^n with per-replica
// unavailability U = MTTR/(MTBF+MTTR).
type ChaosOptions struct {
	// GroupSizes are the replica counts to sweep (default 1,2,3).
	GroupSizes []int
	// MTBF is the mean time between failures per replica (default 2s).
	MTBF time.Duration
	// MTTR is the mean time to repair (default 500ms).
	MTTR time.Duration
	// Window is the measurement window per group size (default 8s).
	Window time.Duration
	// Pacing is the client's inter-request gap (default 20ms).
	Pacing time.Duration
	// NetFaults additionally enables rolling partitions and transient
	// link degradation (drops, duplication, corruption) between the
	// replicas.
	NetFaults bool
	// Seed drives the fault sequence and all other randomness.
	Seed int64
}

func (o *ChaosOptions) applyDefaults() {
	if len(o.GroupSizes) == 0 {
		o.GroupSizes = []int{1, 2, 3}
	}
	if o.MTBF <= 0 {
		o.MTBF = 2 * time.Second
	}
	if o.MTTR <= 0 {
		o.MTTR = 500 * time.Millisecond
	}
	if o.Window <= 0 {
		o.Window = 8 * time.Second
	}
	if o.Pacing <= 0 {
		o.Pacing = 20 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// ChaosResult is the outcome for one group size.
type ChaosResult struct {
	Peers     int
	Crashes   int64
	Restarts  int64
	Requests  int
	Errors    int
	Measured  float64 // acked / (acked+failed)
	Predicted float64 // 1 − U^n
	Latency   *metrics.Histogram
	// Violations are invariant-checker findings (empty on a clean run).
	Violations []string
	// Health is the proxy's resilience counter snapshot (breaker
	// transitions, backoff sleeps, attempts).
	Health map[string]int64
}

// GroupTargets adapts a deployed group's replicas to chaos targets
// driven through Group.CrashPeer / Group.RestartPeer.
func GroupTargets(g *core.Group) []chaos.Target {
	var out []chaos.Target
	for _, bp := range g.Peers() {
		out = append(out, &groupTarget{g: g, name: bp.Name(), addr: bp.Addr()})
	}
	return out
}

type groupTarget struct {
	g    *core.Group
	name string
	addr string
}

func (t *groupTarget) Name() string { return t.name }
func (t *groupTarget) Addr() string { return t.addr }

func (t *groupTarget) Running() bool {
	for _, bp := range t.g.Peers() {
		if bp.Name() == t.name {
			return bp.Running()
		}
	}
	return false
}

func (t *groupTarget) Crash() error { return t.g.CrashPeer(t.name) }

func (t *groupTarget) Restart(ctx context.Context) error { return t.g.RestartPeer(ctx, t.name) }

// GroupView snapshots the group's coordinator beliefs for the
// invariant checker's convergence test.
func GroupView(g *core.Group) chaos.CoordView {
	v := chaos.CoordView{
		Coordinators: make(map[string]string),
		Addrs:        make(map[string]string),
	}
	for _, bp := range g.RunningPeers() {
		v.Coordinators[bp.Name()] = bp.Coordinator()
		v.Addrs[bp.Name()] = bp.Addr()
	}
	return v
}

// Chaos runs E10 and returns the availability-vs-prediction table.
func Chaos(ctx context.Context, opts ChaosOptions) (*Table, []ChaosResult, error) {
	opts.applyDefaults()
	var results []ChaosResult
	for _, n := range opts.GroupSizes {
		res, err := chaosRun(ctx, opts, n)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: chaos n=%d: %w", n, err)
		}
		results = append(results, res)
	}

	u := unavailability(opts.MTBF, opts.MTTR)
	t := &Table{
		Title: fmt.Sprintf("Availability under sustained churn (MTBF %v, MTTR %v, %v window, seed %d)",
			opts.MTBF, opts.MTTR, opts.Window, opts.Seed),
		Columns: []string{"peers", "crashes", "restarts", "requests", "errors", "measured A", "predicted 1-U^n", "p95"},
	}
	for _, r := range results {
		t.AddRow(fmt.Sprintf("%d", r.Peers),
			fmt.Sprintf("%d", r.Crashes),
			fmt.Sprintf("%d", r.Restarts),
			fmt.Sprintf("%d", r.Requests),
			fmt.Sprintf("%d", r.Errors),
			fmt.Sprintf("%.4f", r.Measured),
			fmt.Sprintf("%.4f", r.Predicted),
			r.Latency.Percentile(95).String())
	}
	t.AddNote(fmt.Sprintf("per-replica unavailability U = MTTR/(MTBF+MTTR) = %.3f; the paper's static-redundancy prediction is A = 1-U^n (single peer: %.3f)",
		u, 1-u))
	for _, r := range results {
		if len(r.Violations) > 0 {
			t.AddNote(fmt.Sprintf("n=%d INVARIANT VIOLATIONS: %s", r.Peers, strings.Join(r.Violations, "; ")))
		}
	}
	if len(results) > 0 {
		last := results[len(results)-1]
		t.AddNote(fmt.Sprintf("proxy resilience (n=%d): attempts=%d backoff-sleeps=%d breaker opened=%d half-open=%d closed=%d rejected=%d",
			last.Peers, last.Health["calls.attempted"], last.Health["backoff.sleeps"],
			last.Health["breaker.opened"], last.Health["breaker.half_open"],
			last.Health["breaker.closed"], last.Health["breaker.rejected"]))
	}
	return t, results, nil
}

func unavailability(mtbf, mttr time.Duration) float64 {
	return float64(mttr) / float64(mtbf+mttr)
}

func chaosRun(ctx context.Context, opts ChaosOptions, peers int) (ChaosResult, error) {
	c, err := NewCluster(ctx, ClusterOptions{Peers: peers, Seed: opts.Seed})
	if err != nil {
		return ChaosResult{}, err
	}
	defer func() { _ = c.Close() }()

	res := ChaosResult{
		Peers:     peers,
		Latency:   metrics.NewHistogram(),
		Predicted: 1 - math.Pow(unavailability(opts.MTBF, opts.MTTR), float64(peers)),
	}

	warmCtx, warmCancel := context.WithTimeout(ctx, 30*time.Second)
	_, err = c.Invoke(warmCtx, c.StudentID(0))
	warmCancel()
	if err != nil {
		return ChaosResult{}, fmt.Errorf("warm-up: %w", err)
	}

	cfg := chaos.Config{
		Seed:     opts.Seed,
		MTBF:     opts.MTBF,
		MTTR:     opts.MTTR,
		MinAlive: -1, // a true availability measurement lets the last replica die too
	}
	if opts.NetFaults {
		cfg.Network = c.Net
		cfg.PartitionMTBF = 4 * opts.MTBF
		cfg.PartitionMTTR = opts.MTTR
		cfg.DegradeMTBF = 2 * opts.MTBF
		cfg.DegradeMTTR = opts.MTTR
		cfg.DegradeDelay = 5 * time.Millisecond
		cfg.DropRate = 0.05
		cfg.DupRate = 0.05
		cfg.CorruptRate = 0.02
	}
	eng := chaos.New(cfg, GroupTargets(c.Group)...)

	runCtx, stopChaos := context.WithCancel(ctx)
	chaosDone := make(chan struct{})
	go func() { eng.Run(runCtx); close(chaosDone) }()

	check := chaos.NewChecker()
	deadline := time.Now().Add(opts.Window)
	// A request that cannot be served within the timeout counts as
	// unavailable — retries mask shorter outages, which is exactly the
	// transparency the architecture claims.
	callTimeout := time.Second
	const grace = time.Second
	for i := 0; time.Now().Before(deadline); i++ {
		id := c.StudentID(i)
		callCtx, cancel := context.WithTimeout(ctx, callTimeout)
		start := time.Now()
		body, err := c.Invoke(callCtx, id)
		took := time.Since(start)
		cancel()
		res.Latency.Observe(took)
		res.Requests++
		if took > callTimeout+grace {
			check.RecordOverdue(id, took, callTimeout+grace)
		}
		if err != nil {
			check.RecordFailure(id)
			res.Errors++
		} else {
			want := "<ID>" + id + "</ID>"
			got := want
			if !strings.Contains(string(body), want) {
				got = string(body)
			}
			check.RecordResponse(id, got, want)
		}
		time.Sleep(opts.Pacing)
	}

	stopChaos()
	<-chaosDone
	quiesceCtx, qCancel := context.WithTimeout(ctx, 30*time.Second)
	defer qCancel()
	if err := eng.Quiesce(quiesceCtx); err != nil {
		check.Violationf("quiesce failed: %v", err)
	}
	convCtx, cCancel := context.WithTimeout(ctx, 10*time.Second)
	defer cCancel()
	_ = check.WaitSingleCoordinator(convCtx, func() chaos.CoordView { return GroupView(c.Group) })

	counts := eng.Counts()
	res.Crashes = counts.Get("crash")
	res.Restarts = counts.Get("restart")
	res.Measured = check.Availability()
	res.Violations = check.Violations()
	res.Health = c.Service.Proxy().Health().Snapshot()
	return res, nil
}
