package bench

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// This file implements the gossip gate: validating a BENCH_gossip.json
// report against E14's acceptance bounds. Like the overload and
// follower gates it checks absolute properties of one report — the
// epidemic either beats the flood baseline and spreads sublinearly, or
// it does not.

// GossipBounds are the E14 acceptance thresholds.
type GossipBounds struct {
	// MinRatio is the required flood/gossip message ratio at EVERY
	// swept advertisement count (default 10).
	MinRatio float64
	// MaxRoundsFactor scales the O(log n) check on the convergence
	// sweep: spread at n peers must finish within MaxRoundsFactor ×
	// (1 + log2 n) rumor intervals. Epidemic dissemination needs
	// ~log n infection rounds plus a short coupon-collector tail;
	// linear dissemination needs ~n rounds and blows through the
	// bound as the fleet grows. Default 2.
	MaxRoundsFactor float64
	// ConvergenceBound caps publish-to-everywhere-visible time at
	// every advertisement count (default 60s). It is a livelock
	// backstop, not a throughput claim: the epidemic properties are
	// the message ratio and the rounds curve, while absolute
	// convergence time scales with total data volume and the host's
	// serialization throughput (the 100k-ad point moves ~500MB of
	// entry frames, ~35s on a single core). A protocol livelock — the
	// failure mode this bound exists for — parks a point at the
	// harness's two-minute timeout, far beyond it.
	ConvergenceBound time.Duration
}

func (b *GossipBounds) applyDefaults() {
	if b.MinRatio <= 0 {
		b.MinRatio = 10
	}
	if b.MaxRoundsFactor <= 0 {
		b.MaxRoundsFactor = 2
	}
	if b.ConvergenceBound <= 0 {
		b.ConvergenceBound = 60 * time.Second
	}
}

// gossipCounts extracts the sorted values present for a metric family
// "<prefix>.<n>.<suffix>".
func gossipCounts(r *Report, prefix, suffix string) []int {
	var out []int
	for key := range r.Metrics {
		rest, ok := strings.CutPrefix(key, prefix+".")
		if !ok {
			continue
		}
		ns, ok := strings.CutSuffix(rest, "."+suffix)
		if !ok {
			continue
		}
		n, err := strconv.Atoi(ns)
		if err != nil {
			continue
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// CheckGossip validates an E14 report against the acceptance bounds
// and returns one finding per violated property (empty = gate passes):
//
//   - at every swept advertisement count the epidemic used at least
//     MinRatio times fewer messages than the flood baseline;
//   - every configuration converged (publish to visible-on-all-shards)
//     within ConvergenceBound;
//   - the convergence sweep stays on the epidemic's O(log n) curve:
//     at every fleet size the spread finished within MaxRoundsFactor
//     × (1 + log2 peers) rumor rounds (measured rounds when the report
//     carries them, wall-clock spread over the interval otherwise).
func CheckGossip(r *Report, bounds GossipBounds) []string {
	bounds.applyDefaults()
	var findings []string

	adCounts := gossipCounts(r, "gossip", "ratio")
	if len(adCounts) == 0 {
		return []string{"report has no gossip.<ads>.ratio metrics"}
	}
	for _, ads := range adCounts {
		key := fmt.Sprintf("gossip.%d.ratio", ads)
		ratio, ok := overloadMetric(r, key)
		if !ok {
			findings = append(findings, fmt.Sprintf("missing metric %s", key))
			continue
		}
		if ratio < bounds.MinRatio {
			findings = append(findings, fmt.Sprintf(
				"%d ads: flood/gossip message ratio %.1fx < required %.1fx", ads, ratio, bounds.MinRatio))
		}
		convKey := fmt.Sprintf("gossip.%d.convergence", ads)
		if conv, ok := overloadMetric(r, convKey); ok {
			if time.Duration(conv) > bounds.ConvergenceBound {
				findings = append(findings, fmt.Sprintf(
					"%d ads: convergence %v exceeds bound %v", ads, time.Duration(conv), bounds.ConvergenceBound))
			}
		} else {
			findings = append(findings, fmt.Sprintf("missing metric %s", convKey))
		}
	}

	peerCounts := gossipCounts(r, "sweep", "spread")
	if len(peerCounts) < 2 {
		findings = append(findings, "convergence sweep has fewer than two fleet sizes")
		return findings
	}
	interval, ok := overloadMetric(r, "sweep.interval")
	if !ok || interval <= 0 {
		findings = append(findings, "report has no sweep.interval metric")
		return findings
	}
	for _, n := range peerCounts {
		limit := bounds.MaxRoundsFactor * (1 + math.Log2(float64(n)))
		// Prefer the measured rumor-round count: rounds are the
		// epidemic bound's native unit, and wall-clock spread divided
		// by the nominal interval overstates them whenever rounds run
		// long (race detector, loaded CI workers stretch the effective
		// period). Older reports without the metric fall back to the
		// wall-clock quotient.
		if rounds, ok := overloadMetric(r, fmt.Sprintf("sweep.%d.rounds", n)); ok && rounds > 0 {
			if rounds > limit {
				findings = append(findings, fmt.Sprintf(
					"convergence not O(log n): %d peers took %.0f rumor rounds, bound %.1f rounds (%.1f × (1 + log2 %d))",
					n, rounds, limit, bounds.MaxRoundsFactor, n))
			}
			continue
		}
		spread, ok := overloadMetric(r, fmt.Sprintf("sweep.%d.spread", n))
		if !ok {
			findings = append(findings, fmt.Sprintf("missing metric sweep.%d.spread", n))
			continue
		}
		rounds := spread / interval
		if rounds > limit {
			findings = append(findings, fmt.Sprintf(
				"convergence not O(log n): %d peers spread in %v = %.1f rounds of %v, bound %.1f rounds (%.1f × (1 + log2 %d))",
				n, time.Duration(spread), rounds, time.Duration(interval),
				limit, bounds.MaxRoundsFactor, n))
		}
	}
	return findings
}
