package bench

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"whisper/internal/bpeer"
	"whisper/internal/core"
	"whisper/internal/ontology"
	"whisper/internal/proxy"
	"whisper/internal/simnet"
)

// DiscoveryOptions configures experiment E5: discovery precision and
// recall, syntactic vs. semantic. The paper (§3.1, §4.3) motivates
// semantic advertisements with the "high recall and low precision"
// of syntactic-only search; this experiment quantifies the claim on a
// corpus with synonym and homonym traps.
type DiscoveryOptions struct {
	// MinDegree is the semantic acceptance threshold.
	MinDegree ontology.MatchDegree
}

func (o *DiscoveryOptions) applyDefaults() {
	if o.MinDegree == 0 {
		o.MinDegree = ontology.MatchSubsume
	}
}

// corpusEntry is one advertised service in the evaluation corpus.
type corpusEntry struct {
	// Name is the syntactic operation name an attribute search sees.
	Name string
	// Sig is the semantic signature the advertisement carries.
	Sig ontology.Signature
	// Relevant is the ground-truth label for the student-information
	// request.
	Relevant bool
}

// discoveryCorpus builds the evaluation corpus against the combined
// ontology. Traps:
//
//   - synonym advertisements use equivalent concepts under different
//     names (syntactic search misses them → recall loss),
//   - homonym advertisements reuse the "StudentInformation" operation
//     name for semantically disjoint functionality (syntactic search
//     returns them → precision loss).
func discoveryCorpus() []corpusEntry {
	u := ontology.University()
	b := ontology.B2B()
	return []corpusEntry{
		// Exact match, exact name.
		{
			Name: "StudentInformation",
			Sig: ontology.Signature{
				Action:  ontology.ConceptStudentInformation,
				Inputs:  []string{ontology.ConceptStudentID},
				Outputs: []string{ontology.ConceptStudentInfo},
			},
			Relevant: true,
		},
		// Synonym concepts, different name: semantic hit, syntactic miss.
		{
			Name: "PupilLookup",
			Sig: ontology.Signature{
				Action:  u.Term("StudentLookup"),
				Inputs:  []string{u.Term("MatriculationNumber")},
				Outputs: []string{u.Term("StudentRecord")},
			},
			Relevant: true,
		},
		// More specific service (plugin match), different name.
		{
			Name: "TranscriptFetch",
			Sig: ontology.Signature{
				Action:  u.Term("TranscriptRetrieval"),
				Inputs:  []string{ontology.ConceptStudentID},
				Outputs: []string{u.Term("TranscriptInfo")},
			},
			Relevant: true,
		},
		// Homonym: same operation name, disjoint semantics (grade
		// submission writes grades, it does not retrieve records).
		{
			Name: "StudentInformation",
			Sig: ontology.Signature{
				Action:  u.Term("GradeSubmission"),
				Inputs:  []string{ontology.ConceptStudentID},
				Outputs: []string{u.Term("GradeReport")},
			},
			Relevant: false,
		},
		// Homonym in another domain: insurance "information" service.
		{
			Name: "StudentInformationInsurance",
			Sig: ontology.Signature{
				Action:  b.Term("ClaimProcessing"),
				Inputs:  []string{b.Term("ClaimID")},
				Outputs: []string{b.Term("ClaimStatus")},
			},
			Relevant: false,
		},
		// Employee directory: related name, disjoint output concept.
		{
			Name: "EmployeeInformation",
			Sig: ontology.Signature{
				Action:  u.Term("StudentInformation"), // mislabeled action
				Inputs:  []string{u.Term("EmployeeID")},
				Outputs: []string{u.Term("EmployeeInfo")},
			},
			Relevant: false,
		},
		// Unrelated services.
		{
			Name: "LoanDecision",
			Sig: ontology.Signature{
				Action:  b.Term("LoanApproval"),
				Inputs:  []string{b.Term("LoanApplication")},
				Outputs: []string{b.Term("LoanDecision")},
			},
			Relevant: false,
		},
		{
			Name: "CarePlanner",
			Sig: ontology.Signature{
				Action:  b.Term("CarePlanning"),
				Inputs:  []string{b.Term("PatientID")},
				Outputs: []string{b.Term("TreatmentPlan")},
			},
			Relevant: false,
		},
	}
}

// prf computes precision, recall and F1.
func prf(tp, fp, fn int) (p, r, f1 float64) {
	if tp+fp > 0 {
		p = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		r = float64(tp) / float64(tp+fn)
	}
	if p+r > 0 {
		f1 = 2 * p * r / (p + r)
	}
	return p, r, f1
}

// DiscoveryQuality runs E5 and reports precision/recall/F1 for the
// syntactic keyword matcher and the semantic matcher.
func DiscoveryQuality(ctx context.Context, opts DiscoveryOptions) (*Table, error) {
	opts.applyDefaults()
	reasoner := ontology.NewReasoner(ontology.Combined())
	corpus := discoveryCorpus()
	request := StudentSignature()

	// Syntactic baseline: keyword match on the operation name, the
	// only information WSDL exposes (paper §3.1).
	synTP, synFP, synFN := 0, 0, 0
	// Semantic: signature matching at the configured threshold.
	semTP, semFP, semFN := 0, 0, 0

	for _, e := range corpus {
		syntacticHit := strings.Contains(strings.ToLower(e.Name), "studentinformation")
		semanticHit := reasoner.MatchSignature(e.Sig, request).Degree.Satisfies(opts.MinDegree)
		switch {
		case syntacticHit && e.Relevant:
			synTP++
		case syntacticHit && !e.Relevant:
			synFP++
		case !syntacticHit && e.Relevant:
			synFN++
		}
		switch {
		case semanticHit && e.Relevant:
			semTP++
		case semanticHit && !e.Relevant:
			semFP++
		case !semanticHit && e.Relevant:
			semFN++
		}
	}

	t := &Table{
		Title:   fmt.Sprintf("Discovery quality on %d-advertisement corpus (threshold=%v)", len(corpus), opts.MinDegree),
		Columns: []string{"matcher", "precision", "recall", "F1", "TP", "FP", "FN"},
	}
	p, r, f1 := prf(synTP, synFP, synFN)
	t.AddRow("syntactic (operation name)", fmt.Sprintf("%.2f", p), fmt.Sprintf("%.2f", r),
		fmt.Sprintf("%.2f", f1), fmt.Sprintf("%d", synTP), fmt.Sprintf("%d", synFP), fmt.Sprintf("%d", synFN))
	p, r, f1 = prf(semTP, semFP, semFN)
	t.AddRow("semantic (WSDL-S + ontology)", fmt.Sprintf("%.2f", p), fmt.Sprintf("%.2f", r),
		fmt.Sprintf("%.2f", f1), fmt.Sprintf("%d", semTP), fmt.Sprintf("%d", semFP), fmt.Sprintf("%d", semFN))
	t.AddNote("paper §4.3: syntactic discovery retrieves peers with \"low precision (many b-peers you do not want) and low recall (missed the b-peers you really need)\"")
	return t, nil
}

// DiscoveryQualityLive runs the same comparison through the actual
// system: every corpus entry is deployed as a live b-peer group whose
// semantic advertisement reaches the rendezvous; one SWS-proxy then
// discovers via the reasoner (FindPeerGroupAdv) and via the syntactic
// name match (FindByName), and precision/recall are computed from
// what each returns.
func DiscoveryQualityLive(ctx context.Context, opts DiscoveryOptions) (*Table, error) {
	opts.applyDefaults()
	net := simnet.NewNetwork(simnet.WithLatency(simnet.ZeroLatency()), simnet.WithSeed(1))
	defer func() { _ = net.Close() }()
	dep, err := core.NewDeployment(core.Config{Transport: core.SimulatedTransport(net), Seed: 1})
	if err != nil {
		return nil, err
	}
	defer func() { _ = dep.Close() }()

	corpus := discoveryCorpus()
	ctx, cancel := context.WithTimeout(ctx, 120*time.Second)
	defer cancel()
	// Deploy one single-replica group per corpus entry. Group names
	// must be unique per deployment, so duplicates get a suffix; the
	// syntactic searcher uses a prefix wildcard, matching how a
	// keyword search over WSDL operation names behaves.
	relevantByGID := make(map[string]bool)
	used := make(map[string]int)
	for i, e := range corpus {
		gname := e.Name
		if used[e.Name] > 0 {
			gname = fmt.Sprintf("%s#%d", e.Name, i)
		}
		used[e.Name]++
		g, derr := dep.DeployGroup(ctx, core.GroupSpec{
			Name:      gname,
			Signature: e.Sig,
			Handler: bpeer.HandlerFunc(func(_ context.Context, _ string, _ []byte) ([]byte, error) {
				return []byte("<ok/>"), nil
			}),
			Count: 1,
		})
		if derr != nil {
			return nil, fmt.Errorf("bench: deploy corpus group %q: %w", gname, derr)
		}
		relevantByGID[string(g.ID())] = e.Relevant
	}

	p, err := dep.NewProxy("e5-proxy", core.ProxyOptions{MinDegree: opts.MinDegree})
	if err != nil {
		return nil, err
	}
	defer func() { _ = p.Close() }()

	// Semantic discovery through the proxy.
	semTP, semFP := 0, 0
	matches, err := p.FindPeerGroupAdv(ctx, StudentSignature())
	if err != nil && !errors.Is(err, proxy.ErrNoMatch) {
		return nil, fmt.Errorf("bench: semantic discovery: %w", err)
	}
	semFound := make(map[string]bool)
	for _, gm := range matches {
		semFound[string(gm.Adv.GID)] = true
		if relevantByGID[string(gm.Adv.GID)] {
			semTP++
		} else {
			semFP++
		}
	}
	// Syntactic discovery: search by the operation name, counting a
	// corpus entry as retrieved when its original name matches.
	synTP, synFP := 0, 0
	synFoundAdvs, err := p.FindByName(ctx, "StudentInformation*")
	if err != nil {
		return nil, fmt.Errorf("bench: syntactic discovery: %w", err)
	}
	synFound := make(map[string]bool)
	for _, adv := range synFoundAdvs {
		gid := string(adv.GID)
		if synFound[gid] {
			continue
		}
		synFound[gid] = true
		if relevantByGID[gid] {
			synTP++
		} else {
			synFP++
		}
	}
	relevantTotal := 0
	for _, rel := range relevantByGID {
		if rel {
			relevantTotal++
		}
	}
	semFN := relevantTotal - semTP
	synFN := relevantTotal - synTP

	t := &Table{
		Title:   "Discovery quality — live through the SWS-proxy and rendezvous",
		Columns: []string{"matcher", "precision", "recall", "F1", "TP", "FP", "FN"},
	}
	pV, rV, f1 := prf(synTP, synFP, synFN)
	t.AddRow("syntactic (FindByName)", fmt.Sprintf("%.2f", pV), fmt.Sprintf("%.2f", rV),
		fmt.Sprintf("%.2f", f1), fmt.Sprintf("%d", synTP), fmt.Sprintf("%d", synFP), fmt.Sprintf("%d", synFN))
	pV, rV, f1 = prf(semTP, semFP, semFN)
	t.AddRow("semantic (FindPeerGroupAdv)", fmt.Sprintf("%.2f", pV), fmt.Sprintf("%.2f", rV),
		fmt.Sprintf("%.2f", f1), fmt.Sprintf("%d", semTP), fmt.Sprintf("%d", semFP), fmt.Sprintf("%d", semFN))
	t.AddNote("same corpus as the matcher-level table, but deployed as real groups and discovered through the rendezvous")
	return t, nil
}
