package bench

import (
	"fmt"
	"strings"
	"time"

	"whisper/internal/trace"
)

// TraceSummary is the phase anatomy of one traced invocation: the
// span tree plus the aggregated depth-1 phases of the proxy's invoke
// span. It is the per-request evidence behind the paper's §5 claim
// that the worst-case RTT is dominated by election time and proxy
// re-binding.
type TraceSummary struct {
	// TraceID identifies the invocation's trace in the collector.
	TraceID trace.ID
	// RTT is the client-observed round trip of the invocation.
	RTT time.Duration
	// Root is the assembled span tree (the client's root span).
	Root *trace.Node
	// Invoke is the proxy.invoke node within Root.
	Invoke *trace.Node
	// Phases aggregates Invoke's direct children (discovery, bind,
	// re-bind, election-wait, call). The phases tile the invocation
	// timeline, so their sum approximates the RTT.
	Phases []trace.Phase
	// Report is the printable tree + breakdown.
	Report string
}

// PhaseSum totals the phase durations.
func (s *TraceSummary) PhaseSum() time.Duration {
	var sum time.Duration
	for _, ph := range s.Phases {
		sum += ph.Total
	}
	return sum
}

// SpanNames lists every span name in the tree (for presence checks).
func (s *TraceSummary) SpanNames() map[string]bool {
	out := make(map[string]bool)
	s.Root.Walk(func(n *trace.Node) { out[n.Record.Name] = true })
	return out
}

// SummarizeTrace assembles the span-tree summary of one traced
// invocation from the collector. rtt is the client-observed round
// trip, reported alongside the phase sum.
func SummarizeTrace(col *trace.Collector, id trace.ID, rtt time.Duration) (*TraceSummary, error) {
	if col == nil {
		return nil, fmt.Errorf("bench: tracing is not enabled")
	}
	root, orphans := trace.BuildTree(col.Trace(id), id)
	if root == nil {
		return nil, fmt.Errorf("bench: trace %s not collected", id)
	}
	inv := root.Find("proxy.invoke")
	if inv == nil {
		return nil, fmt.Errorf("bench: trace %s has no proxy.invoke span", id)
	}
	s := &TraceSummary{
		TraceID: id,
		RTT:     rtt,
		Root:    root,
		Invoke:  inv,
		Phases:  inv.Breakdown(),
	}

	var b strings.Builder
	fmt.Fprintf(&b, "trace %s (client RTT %v)\n", id, rtt.Round(time.Microsecond))
	b.WriteString(root.Format())
	for _, o := range orphans {
		b.WriteString("(detached)\n")
		b.WriteString(o.Format())
	}
	b.WriteString("phase breakdown of proxy.invoke:\n")
	invDur := inv.Record.Duration()
	for _, ph := range s.Phases {
		pct := 0.0
		if invDur > 0 {
			pct = 100 * float64(ph.Total) / float64(invDur)
		}
		fmt.Fprintf(&b, "  %-15s %12v  x%-2d (%5.1f%%)\n",
			ph.Name, ph.Total.Round(time.Microsecond), ph.Count, pct)
	}
	fmt.Fprintf(&b, "  %-15s %12v  (proxy.invoke %v, client RTT %v)\n", "sum",
		s.PhaseSum().Round(time.Microsecond), invDur.Round(time.Microsecond),
		rtt.Round(time.Microsecond))
	s.Report = b.String()
	return s, nil
}
